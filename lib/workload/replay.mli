(** Replay an update stream against a service, with hooks for sampling
    between events — the measurement loop behind Figs. 12–14. *)

type probe_point = {
  index : int;  (** events applied so far *)
  time : float;  (** simulation time of the event just applied *)
  elapsed : float;  (** time since the previous event (0 for the first) *)
}

val run :
  ?on_event:(probe_point -> Update_gen.event -> unit) ->
  Plookup.Service.t ->
  Update_gen.stream ->
  unit
(** Place the initial population, then apply every event in order.
    [on_event] fires after each event is applied. *)

val run_timed :
  service:Plookup.Service.t ->
  stream:Update_gen.stream ->
  failed:(Plookup.Service.t -> bool) ->
  float
(** Time-weighted failure fraction (Fig. 12): the share of simulated
    time during which [failed service] holds, evaluated on each
    inter-event interval (the system is constant between events). *)

val messages_for_updates :
  service:Plookup.Service.t -> stream:Update_gen.stream -> int
(** Total messages received by servers while replaying the update events
    only — placement traffic excluded (Fig. 14 counts update overhead). *)
