open Plookup_store
open Plookup_util
module Net = Plookup_net.Net

type t = { cluster : Cluster.t; x : int }

let handle_data t dst _src (msg : Msg.data) : Msg.reply =
  let net = Cluster.net t.cluster in
  let local = Cluster.store t.cluster dst in
  match msg with
  | Msg.Place entries ->
    (* Broadcast only the first x of the h entries. *)
    ignore
      (Net.broadcast net ~src:(Net.Server dst) (Msg.store_batch (List_util.take t.x entries)));
    Msg.Ack
  | Msg.Add e ->
    (* Selective broadcast: only while below x, and only for new ids. *)
    if Server_store.cardinal local < t.x && not (Server_store.mem local e) then
      ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.store e));
    Msg.Ack
  | Msg.Delete e ->
    if Server_store.mem local e then
      ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.remove e));
    Msg.Ack
  | Msg.Lookup target -> Strategy_common.lookup_reply t.cluster dst target

let create cluster ~x =
  if x <= 0 then invalid_arg "Fixed.create: x must be positive";
  let t = { cluster; x } in
  Strategy_common.install cluster ~data:(handle_data t);
  t

let x t = t.x
let cluster t = t.cluster

let place t entries = Strategy_common.to_random_server t.cluster (Msg.place (Entry.dedup entries))
let add t e = Strategy_common.to_random_server t.cluster (Msg.add e)
let delete t e = Strategy_common.to_random_server t.cluster (Msg.delete e)
let partial_lookup ?reachable t target = Probe.single ?reachable t.cluster ~t:target

module Strategy = struct
  type nonrec t = t

  let meta =
    { Strategy_intf.name = "Fixed";
      keys = [ "fixed" ];
      arity = 1;
      param_doc = "X = entries replicated on every server";
      storage_doc = "x*n";
      ablation = false;
      rank = 20 }

  let analytic_storage ~n ~h:_ ~params =
    float_of_int (Strategy_common.one_param ~who:"Fixed" ~what:"x" params * n)

  let params_for_budget ~n ~h:_ ~total ~params:_ = [ max 1 (total / n) ]

  let create ?resync_stores:_ cluster ~params =
    create cluster ~x:(Strategy_common.one_param ~who:"Fixed.create" ~what:"x" params)

  let place t ?budget:_ entries = place t entries
  let add = add
  let delete = delete
  let partial_lookup = partial_lookup
  let can_update t = Strategy_common.any_up t.cluster
  let repair_plan _ = Strategy_intf.Mirror
end

let () = Strategy_registry.register (module Strategy)
