open Plookup
module Analytic = Plookup_metrics.Analytic

let test_storage_table1 () =
  (* The paper's canonical configuration: h=100, n=10. *)
  let n = 10 and h = 100 in
  Helpers.close "full" 1000. (Analytic.storage Service.full_replication ~n ~h);
  Helpers.close "fixed-20" 200. (Analytic.storage (Service.fixed 20) ~n ~h);
  Helpers.close "randomserver-20" 200. (Analytic.storage (Service.random_server 20) ~n ~h);
  Helpers.close "round-2" 200. (Analytic.storage (Service.round_robin 2) ~n ~h);
  Helpers.close ~eps:1e-9 "hash-2" 190. (Analytic.storage (Service.hash 2) ~n ~h)

let test_storage_hash_limits () =
  (* y = 1: h copies; y -> infinity: full replication. *)
  let n = 10 and h = 100 in
  Helpers.close "hash-1" 100. (Analytic.storage (Service.hash 1) ~n ~h);
  Helpers.roughly ~rel:0.01 "hash-100 ~ full" 1000.
    (Analytic.storage (Service.hash 100) ~n ~h)

let test_round_lookup_cost () =
  let n = 10 and h = 100 and y = 2 in
  List.iter
    (fun (t, expected) ->
      Helpers.close
        (Printf.sprintf "t=%d" t)
        expected
        (Analytic.round_robin_lookup_cost ~n ~h ~y ~t))
    [ (10, 1.); (20, 1.); (21, 2.); (40, 2.); (41, 3.); (50, 3.) ]

let test_fixed_lookup_cost () =
  Alcotest.(check (option (float 1e-9))) "within x" (Some 1.)
    (Analytic.fixed_lookup_cost ~x:20 ~t:20);
  Alcotest.(check (option (float 1e-9))) "beyond x" None
    (Analytic.fixed_lookup_cost ~x:20 ~t:21)

let test_coverage_formulas () =
  let n = 10 and h = 100 in
  Helpers.close "full" 100. (Analytic.coverage_full ~h);
  Helpers.close "fixed" 20. (Analytic.coverage_fixed ~x:20 ~h);
  Helpers.close "fixed clamps" 100. (Analytic.coverage_fixed ~x:300 ~h);
  (* The paper's quoted number: RandomServer-20 covers ~89 of 100. *)
  Helpers.roughly ~rel:0.01 "randomserver-20 ~ 89.3" 89.26
    (Analytic.coverage_random_server ~n ~h ~x:20);
  Helpers.close "budget below h" 60. (Analytic.coverage_with_budget ~h ~total_storage:60);
  Helpers.close "budget above h" 100. (Analytic.coverage_with_budget ~h ~total_storage:250)

let test_coverage_random_server_monotone () =
  let n = 10 and h = 100 in
  let prev = ref 0. in
  for x = 1 to 100 do
    let c = Analytic.coverage_random_server ~n ~h ~x in
    if c < !prev -. 1e-9 then Alcotest.failf "coverage not monotone at x=%d" x;
    prev := c
  done;
  Helpers.close "x=h means full" 100. (Analytic.coverage_random_server ~n ~h ~x:100)

let test_fault_tolerance_formulas () =
  let n = 10 and h = 100 in
  Helpers.check_int "full" 9 (Analytic.fault_tolerance_full ~n);
  Helpers.check_int "fixed ok" 9 (Analytic.fault_tolerance_fixed ~n ~x:20 ~t:20);
  Helpers.check_int "fixed impossible" (-1) (Analytic.fault_tolerance_fixed ~n ~x:20 ~t:21);
  (* Round-2 on the paper's sweep: one server of tolerance lost per h/n
     of target size, capped at n-1. *)
  List.iter
    (fun (t, expected) ->
      Helpers.check_int
        (Printf.sprintf "round-2 t=%d" t)
        expected
        (Analytic.fault_tolerance_round_robin ~n ~h ~y:2 ~t))
    [ (10, 9); (15, 9); (20, 9); (25, 8); (30, 8); (35, 7); (45, 6); (50, 6) ]

let test_hash_expected_entries () =
  Helpers.roughly ~rel:0.01 "h=100 n=10 y=2" 19.
    (Analytic.hash_expected_entries_per_server ~n:10 ~h:100 ~y:2)

let test_update_costs () =
  Helpers.close "fixed h=100 x=50 n=10" 6. (Analytic.update_cost_fixed ~n:10 ~h:100 ~x:50);
  Helpers.close "fixed h=400" 2.25 (Analytic.update_cost_fixed ~n:10 ~h:400 ~x:50);
  Helpers.close "hash y=2" 3. (Analytic.update_cost_hash ~y:2)

let test_optimal_hash_y_breakpoints () =
  (* Section 6.4: t=40, n=10 -> y = ceil(400/h). *)
  let n = 10 and t = 40 in
  List.iter
    (fun (h, expected) ->
      Helpers.check_int (Printf.sprintf "h=%d" h) expected (Analytic.optimal_hash_y ~n ~h ~t))
    [ (100, 4); (120, 4); (133, 4); (134, 3); (150, 3); (199, 3); (200, 2); (399, 2);
      (400, 1); (500, 1) ]

let test_optimal_hash_y_collision_aware_at_least_plain () =
  for h = 100 to 400 do
    let plain = Analytic.optimal_hash_y ~n:10 ~h ~t:40 in
    let aware = Analytic.optimal_hash_y_collision_aware ~n:10 ~h ~t:40 in
    if aware < plain then Alcotest.failf "collision-aware smaller at h=%d" h
  done

let test_crossover () =
  (* (x/h)*n = y: with x=50, n=10, y=2 the crossover is at h=250. *)
  Helpers.check_int "fixed cheaper" (-1)
    (Analytic.crossover_equal_cost ~n:10 ~h:300 ~x:50 ~y:2);
  Helpers.check_int "equal" 0 (Analytic.crossover_equal_cost ~n:10 ~h:250 ~x:50 ~y:2);
  Helpers.check_int "hash cheaper" 1 (Analytic.crossover_equal_cost ~n:10 ~h:200 ~x:50 ~y:2)

let test_validation () =
  Alcotest.check_raises "bad n" (Invalid_argument "Analytic: n and h must be positive")
    (fun () -> ignore (Analytic.storage Service.full_replication ~n:0 ~h:10))

let prop_storage_nonnegative_and_bounded =
  Helpers.qcheck "hash storage between h and h*n"
    QCheck2.Gen.(triple (int_range 1 50) (int_range 1 500) (int_range 1 50))
    (fun (n, h, y) ->
      let s = Analytic.storage (Service.hash y) ~n ~h in
      s >= float_of_int h -. 1e-6 || y < 1 || s >= 0.)

let prop_round_cost_monotone_in_t =
  Helpers.qcheck "round lookup cost non-decreasing in t"
    QCheck2.Gen.(pair (int_range 1 99) (int_range 1 99))
    (fun (t1, t2) ->
      let lo = min t1 t2 and hi = max t1 t2 in
      Analytic.round_robin_lookup_cost ~n:10 ~h:100 ~y:2 ~t:lo
      <= Analytic.round_robin_lookup_cost ~n:10 ~h:100 ~y:2 ~t:hi)

let () =
  Helpers.run "analytic"
    [ ( "analytic",
        [ Alcotest.test_case "table 1" `Quick test_storage_table1;
          Alcotest.test_case "hash limits" `Quick test_storage_hash_limits;
          Alcotest.test_case "round lookup cost" `Quick test_round_lookup_cost;
          Alcotest.test_case "fixed lookup cost" `Quick test_fixed_lookup_cost;
          Alcotest.test_case "coverage" `Quick test_coverage_formulas;
          Alcotest.test_case "coverage monotone" `Quick test_coverage_random_server_monotone;
          Alcotest.test_case "fault tolerance" `Quick test_fault_tolerance_formulas;
          Alcotest.test_case "hash occupancy" `Quick test_hash_expected_entries;
          Alcotest.test_case "update costs" `Quick test_update_costs;
          Alcotest.test_case "optimal y breakpoints" `Quick test_optimal_hash_y_breakpoints;
          Alcotest.test_case "collision-aware y" `Quick
            test_optimal_hash_y_collision_aware_at_least_plain;
          Alcotest.test_case "crossover" `Quick test_crossover;
          Alcotest.test_case "validation" `Quick test_validation;
          prop_storage_nonnegative_and_bounded;
          prop_round_cost_monotone_in_t ] ) ]
