open Plookup_util
open Plookup_store
module Service = Plookup.Service

type measurement = { mean_cost : float; ci95 : float; failure_rate : float }

let measure_into acc failures service ~t ~lookups =
  for _ = 1 to lookups do
    let result = Service.partial_lookup service t in
    Stats.Accum.add acc (float_of_int result.Plookup.Lookup_result.servers_contacted);
    if not (Plookup.Lookup_result.satisfied result) then incr failures
  done

let finish acc failures =
  let n = Stats.Accum.count acc in
  { mean_cost = Stats.Accum.mean acc;
    ci95 = Stats.Accum.ci95_half_width acc;
    failure_rate = (if n = 0 then 0. else float_of_int !failures /. float_of_int n) }

let measure service ~t ~lookups =
  let acc = Stats.Accum.create () in
  let failures = ref 0 in
  measure_into acc failures service ~t ~lookups;
  finish acc failures

let measure_over_instances ?(seed = 0) ?obs ~n ~entries ~config ~t ~runs ~lookups_per_run () =
  let master = Rng.create seed in
  let acc = Stats.Accum.create () in
  let failures = ref 0 in
  for _ = 1 to runs do
    let run_seed = Int64.to_int (Rng.bits64 master) land max_int in
    let service = Service.create ~seed:run_seed ?obs ~n config in
    let gen = Entry.Gen.create () in
    Service.place service (Entry.Gen.batch gen entries);
    measure_into acc failures service ~t ~lookups:lookups_per_run
  done;
  finish acc failures
