open Plookup_util
module Service = Plookup.Service
module Analytic = Plookup_metrics.Analytic
module Update_gen = Plookup_workload.Update_gen
module Replay = Plookup_workload.Replay

let id = "fig14"
let title = "Fig 14: update overhead, Fixed-50 vs Hash-y (t=40, 20000 updates)"

let default_entry_counts = [ 100; 120; 133; 150; 175; 200; 250; 300; 350; 400 ]

let measure_messages ctx ~n ~h ~updates ~config ~runs =
  Runner.mean_of
    (Runner.map_obs ctx ~count:runs (fun i ~obs ->
         let run = i + 1 in
         let seed = Ctx.run_seed ctx ((h * 131) + run) in
         let stream =
           Update_gen.generate (Rng.create seed)
             { Update_gen.steady_entries = h; add_period = 10.; tail_heavy = false;
               updates }
         in
         let service = Service.create ~seed ~obs ~n config in
         float_of_int (Replay.messages_for_updates ~service ~stream)))

let run ?(n = 10) ?(t = 40) ?(x = 50) ?(entry_counts = default_entry_counts)
    ?(updates = 20000) ctx =
  let table =
    Table.create ~title
      ~columns:
        [ "h";
          "Fixed-x msgs";
          "Fixed analytic";
          "Hash-y msgs";
          "Hash analytic";
          "y";
          "cheaper" ]
  in
  let runs = Ctx.scaled ctx 5 in
  List.iter
    (fun h ->
      let y = Analytic.optimal_hash_y ~n ~h ~t in
      let fixed_msgs = measure_messages ctx ~n ~h ~updates ~config:(Service.fixed x) ~runs in
      let hash_msgs = measure_messages ctx ~n ~h ~updates ~config:(Service.hash y) ~runs in
      let u = float_of_int updates in
      Table.add_row table
        [ Table.I h;
          Table.F fixed_msgs;
          Table.F (Analytic.update_cost_fixed ~n ~h ~x *. u);
          Table.F hash_msgs;
          Table.F (Analytic.update_cost_hash ~y *. u);
          Table.I y;
          Table.S (if fixed_msgs <= hash_msgs then "Fixed" else "Hash") ])
    entry_counts;
  table
