open Plookup_store
open Plookup_util
module Net = Plookup_net.Net

(* Multi-probe consistent hashing (Appleton & O'Reilly): each server
   gets exactly ONE ring point — no virtual nodes — and the load skew
   that a single-point ring suffers is attacked from the key side
   instead: an entry is hashed k independent times, each probe finds its
   clockwise successor, and the probe that lands {e closest} to a
   server wins.  A server owning a long arc only captures a key when
   all k probes prefer it, so the peak/mean load ratio falls roughly
   like 1 + O(1/k) instead of the O(log n) of one-probe rings — at k
   hash evaluations per lookup and ZERO extra ring memory, which is the
   trade that matters at n=10k (a vnode ring needs n*log n points for
   the same skew).  Replication is Chord-style: y consecutive distinct
   successors starting at the winning server. *)

let ring_size = 1 lsl 30

type t = {
  cluster : Cluster.t;
  y : int;
  k : int;
  points : (int * int) array; (* (ring point, server), sorted by point *)
}

(* Distinct ring points: collisions are re-salted deterministically so
   every cluster seed yields one well-defined ring.  The salt family is
   disjoint from Chord's, so the two strategies use independent rings
   even on the same cluster seed. *)
let ring_points cluster =
  let n = Cluster.n cluster in
  let seed = Cluster.seed cluster in
  let taken = Hashtbl.create n in
  let point_of server =
    let rec probe attempt =
      let p =
        Rng.hash_in_range ~seed ~salt:(0x3B0CE + (attempt * n) + server) ~value:server
          ring_size
      in
      if Hashtbl.mem taken p then probe (attempt + 1)
      else begin
        Hashtbl.replace taken p ();
        p
      end
    in
    probe 0
  in
  let points = Array.init n (fun s -> (point_of s, s)) in
  Array.sort compare points;
  points

let entry_probe t e j =
  Rng.hash_in_range ~seed:(Cluster.seed t.cluster) ~salt:(0x3BD1 + j)
    ~value:(Entry.id e) ring_size

(* Index of the first ring point at or after [p] (clockwise successor),
   wrapping past the top of the ring. *)
let successor_index t p =
  let len = Array.length t.points in
  let rec search lo hi =
    (* smallest i with point(i) >= p, or len *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) >= p then search lo mid else search (mid + 1) hi
    end
  in
  search 0 len mod len

(* The winning probe: the one whose clockwise distance to its successor
   is smallest (ties keep the earliest probe, so the winner is
   deterministic). *)
let home_index t e =
  let best = ref 0 in
  let best_dist = ref max_int in
  for j = 0 to t.k - 1 do
    let p = entry_probe t e j in
    let i = successor_index t p in
    let dist = (fst t.points.(i) - p + ring_size) mod ring_size in
    if dist < !best_dist then begin
      best := i;
      best_dist := dist
    end
  done;
  !best

let servers_of t e =
  let len = Array.length t.points in
  let start = home_index t e in
  List.init (min t.y len) (fun r -> snd t.points.((start + r) mod len))

let send_store t ~src ~dst e =
  ignore (Net.send (Cluster.net t.cluster) ~src:(Net.Server src) ~dst (Msg.store e))

let send_remove t ~src ~dst e =
  ignore (Net.send (Cluster.net t.cluster) ~src:(Net.Server src) ~dst (Msg.remove e))

let handle_data t dst _src (msg : Msg.data) : Msg.reply =
  match msg with
  | Msg.Place _ ->
    (* Distribution is driven from [place] below (budget support); the
       request itself reaches one server. *)
    Msg.Ack
  | Msg.Add e ->
    List.iter (fun s -> send_store t ~src:dst ~dst:s e) (servers_of t e);
    Msg.Ack
  | Msg.Delete e ->
    List.iter (fun s -> send_remove t ~src:dst ~dst:s e) (servers_of t e);
    Msg.Ack
  | Msg.Lookup target -> Strategy_common.lookup_reply t.cluster dst target

let create cluster ~y ~k =
  if y < 1 then invalid_arg "Multi_probe.create: y must be at least 1";
  if k < 1 then invalid_arg "Multi_probe.create: k must be at least 1";
  let t = { cluster; y = min y (Cluster.n cluster); k; points = ring_points cluster } in
  Strategy_common.install cluster ~data:(handle_data t);
  t

let y t = t.y
let k t = t.k
let cluster t = t.cluster

let place ?budget t entries =
  let entries = Entry.dedup entries in
  match Cluster.random_up_server t.cluster with
  | None -> ()
  | Some s ->
    ignore (Net.send (Cluster.net t.cluster) ~src:Net.Client ~dst:s (Msg.place entries));
    let arr = Array.of_list entries in
    let budget = match budget with None -> max_int | Some b -> b in
    let spent = ref 0 in
    (* Round-major: all first copies before any second copy, so a budget
       cut keeps coverage maximal. *)
    for r = 0 to t.y - 1 do
      Array.iter
        (fun e ->
          if !spent < budget then begin
            let owners = servers_of t e in
            match List.nth_opt owners r with
            | Some dst ->
              send_store t ~src:s ~dst e;
              incr spent
            | None -> ()
          end)
        arr
    done

let add t e = Strategy_common.to_random_server t.cluster (Msg.add e)
let delete t e = Strategy_common.to_random_server t.cluster (Msg.delete e)
let partial_lookup ?reachable t target = Probe.random_order ?reachable t.cluster ~t:target

let check_invariants t ~placed =
  let n = Cluster.n t.cluster in
  let expected = Array.init n (fun _ -> Hashtbl.create 16) in
  List.iter
    (fun e ->
      List.iter (fun s -> Hashtbl.replace expected.(s) (Entry.id e) ()) (servers_of t e))
    placed;
  let ok = ref (Ok ()) in
  let fail fmt = Format.kasprintf (fun s -> if !ok = Ok () then ok := Error s) fmt in
  for s = 0 to n - 1 do
    let store = Cluster.store t.cluster s in
    Server_store.iter
      (fun e ->
        if not (Hashtbl.mem expected.(s) (Entry.id e)) then
          fail "server %d stores %s not assigned to it" s (Entry.to_string e))
      store;
    Hashtbl.iter
      (fun id () ->
        if not (Server_store.mem store (Entry.v id)) then
          fail "server %d is missing entry v%d" s id)
      expected.(s)
  done;
  !ok

module Strategy = struct
  type nonrec t = t

  let meta =
    { Strategy_intf.name = "MultiProbe";
      keys = [ "multiprobe"; "mpch" ];
      arity = 2;
      param_doc = "Y = replicas on consecutive ring successors, K = probe hashes per key";
      storage_doc = "h*min(y,n)";
      ablation = false;
      rank = 80 }

  let split_params = function
    | [ y; k ] when y > 0 && k > 0 -> (y, k)
    | _ -> invalid_arg "MultiProbe: bad parameters (expected [y; k])"

  let analytic_storage ~n ~h ~params =
    let y, _ = split_params params in
    float_of_int (h * min y n)

  let params_for_budget ~n:_ ~h ~total ~params =
    let _, k = split_params params in
    [ max 1 (total / h); k ]

  let create ?resync_stores:_ cluster ~params =
    let y, k = split_params params in
    create cluster ~y ~k

  let place t ?budget entries = place ?budget t entries
  let add = add
  let delete = delete
  let partial_lookup = partial_lookup
  let can_update t = Strategy_common.any_up t.cluster
  let repair_plan t = Strategy_intf.Assigned (fun e -> Some (servers_of t e))
end

let () = Strategy_registry.register (module Strategy)
