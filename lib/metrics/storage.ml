open Plookup_store

let measured cluster = Plookup.Cluster.total_stored cluster

let per_server cluster =
  Array.init (Plookup.Cluster.n cluster) (fun i ->
      Server_store.cardinal (Plookup.Cluster.store cluster i))

let imbalance cluster =
  let sizes = per_server cluster in
  let lo = Array.fold_left min max_int sizes in
  let hi = Array.fold_left max 0 sizes in
  hi - lo
