open Plookup_util

let test_empty () =
  Alcotest.(check (array int)) "empty input" [||] (Pool.map ~jobs:4 (fun x -> x) [||])

let test_single () =
  Alcotest.(check (array int)) "one element" [| 10 |]
    (Pool.map ~jobs:4 (fun x -> x * 10) [| 1 |])

let test_jobs_one_is_sequential () =
  (* jobs=1 must not spawn anything: side effects happen in array order
     on the calling domain. *)
  let seen = ref [] in
  let out =
    Pool.map ~jobs:1
      (fun x ->
        seen := x :: !seen;
        x + 1)
      [| 1; 2; 3; 4 |]
  in
  Alcotest.(check (array int)) "mapped" [| 2; 3; 4; 5 |] out;
  Alcotest.(check (list int)) "sequential order" [ 4; 3; 2; 1 ] !seen

let test_low_jobs_short_circuit () =
  (* jobs <= 1 is documented to behave exactly like Array.map. *)
  Alcotest.(check (array int)) "jobs=0" [| 1; 4; 9 |]
    (Pool.map ~jobs:0 (fun x -> x * x) [| 1; 2; 3 |]);
  Alcotest.(check (array int)) "jobs=-1" [| 1; 4; 9 |]
    (Pool.map ~jobs:(-1) (fun x -> x * x) [| 1; 2; 3 |])

let prop_matches_array_map =
  Helpers.qcheck ~count:200 "Pool.map = Array.map at any jobs"
    QCheck2.Gen.(pair (int_range 1 8) (array_size (int_range 0 100) int))
    (fun (jobs, arr) ->
      Pool.map ~jobs (fun x -> (2 * x) + 1) arr = Array.map (fun x -> (2 * x) + 1) arr)

let prop_order_preserved =
  Helpers.qcheck ~count:100 "results land at their input index"
    QCheck2.Gen.(int_range 1 8)
    (fun jobs ->
      let n = 500 in
      let out = Pool.map ~jobs (fun i -> i * i) (Array.init n Fun.id) in
      Array.length out = n
      && Array.for_all Fun.id (Array.mapi (fun i v -> v = i * i) out))

exception Boom of int

let test_exception_propagates () =
  (* The re-raised exception is the lowest-index failure, matching what
     plain Array.map would have raised first. *)
  for jobs = 1 to 6 do
    match
      Pool.map ~jobs
        (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
        (Array.init 50 Fun.id)
    with
    | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
    | exception Boom i -> Alcotest.(check int) "lowest failing index" 2 i
  done

let test_parallel_flag_consistent () =
  (* recommended_jobs must be usable whether or not domains exist. *)
  let j = Pool.recommended_jobs () in
  Alcotest.(check bool) "recommended >= 1" true (j >= 1);
  if not Pool.parallel_available then
    Alcotest.(check int) "sequential fallback recommends 1" 1 j

let () =
  Helpers.run "pool"
    [ ( "pool",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single" `Quick test_single;
          Alcotest.test_case "jobs=1 sequential" `Quick test_jobs_one_is_sequential;
          Alcotest.test_case "low jobs short-circuit" `Quick test_low_jobs_short_circuit;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "parallel flag" `Quick test_parallel_flag_consistent;
          prop_matches_array_map;
          prop_order_preserved ] ) ]
