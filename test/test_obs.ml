(* The observability layer end to end: registry aggregation semantics,
   the JSONL wire format, and the contract a traced experiment honours —
   the span stream and the metrics registry are two views of the same
   traffic, at any worker count. *)

open Plookup_obs
module E = Plookup_experiments

(* ------------------------------------------------------------------ *)
(* Registry *)

(* Cells of the same (name, labels) never alias on the hot path but
   aggregate additively in a snapshot; label order never splits a key. *)
let test_label_cardinality () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~labels:[ ("plane", "data"); ("server", "3") ] "msgs" in
  let b = Metrics.counter m ~labels:[ ("server", "3"); ("plane", "data") ] "msgs" in
  let other = Metrics.counter m ~labels:[ ("plane", "repair") ] "msgs" in
  Metrics.add a 5;
  Metrics.add b 7;
  Metrics.incr other;
  Helpers.check_int "cell a stays private" 5 (Metrics.value a);
  Helpers.check_int "cell b stays private" 7 (Metrics.value b);
  (* The two label orderings collapse into one aggregated key, leaving
     exactly two entries. *)
  let snap = Metrics.snapshot m in
  Helpers.check_int "two keys" 2 (List.length snap);
  Helpers.check_int "orderings aggregate" 12
    (Metrics.sum_counters snap ~where:[ ("plane", "data") ] "msgs");
  Helpers.check_int "filter by the other label" 12
    (Metrics.sum_counters snap ~where:[ ("server", "3") ] "msgs");
  Helpers.check_int "unconstrained sum" 13 (Metrics.sum_counters snap "msgs")

let test_snapshot_roundtrip () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~labels:[ ("k", "v") ] "c" in
  let g = Metrics.gauge m "g" in
  let h = Metrics.histogram m "h" in
  Metrics.add c 3;
  Metrics.set_gauge g 1.5;
  Metrics.observe h 10.;
  Metrics.observe h 1000.;
  (* Absorbing a snapshot into a fresh registry and re-snapshotting is
     the identity — the merge path Runner relies on. *)
  let m2 = Metrics.create () in
  Metrics.absorb m2 (Metrics.snapshot m);
  Helpers.check_bool "absorb roundtrips" true
    (Metrics.snapshot m = Metrics.snapshot m2);
  (* Absorbing again doubles every additive value. *)
  Metrics.absorb m2 (Metrics.snapshot m);
  let snap2 = Metrics.snapshot m2 in
  Helpers.check_int "counter doubles" 6 (Metrics.sum_counters snap2 "c");
  match List.find_opt (fun e -> e.Metrics.name = "h") snap2 with
  | Some { Metrics.v = Metrics.Histogram { count; sum; _ }; _ } ->
    Helpers.check_int "histogram count doubles" 4 count;
    Helpers.close "histogram sum doubles" 2020. sum
  | _ -> Alcotest.fail "histogram entry missing"

(* The log-scale quantile estimator lands in the same power-of-two
   bucket as the exact sample percentile, so (for values above 1) it is
   within a factor of 2 of Stats.percentile at every rank — the
   documented error bound, checked across the distribution. *)
let test_histogram_quantile_tracks_percentile () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  let samples = Array.init 500 (fun i -> float_of_int (((i * 7919) mod 3000) + 2)) in
  Array.iter (Metrics.observe h) samples;
  List.iter
    (fun q ->
      let est = Metrics.histogram_quantile h q in
      let exact = Plookup_util.Stats.percentile samples q in
      if not (est >= (exact /. 2.) -. 1e-9 && est <= (exact *. 2.) +. 1e-9) then
        Alcotest.failf "q=%g: estimate %g outside factor 2 of exact %g" q est exact)
    [ 0.; 10.; 50.; 90.; 95.; 99.; 99.9; 100. ];
  let p50 = Metrics.histogram_quantile h 50. in
  let p99 = Metrics.histogram_quantile h 99. in
  let p999 = Metrics.histogram_quantile h 99.9 in
  Helpers.check_bool "monotone tail" true (p50 <= p99 && p99 <= p999)

let test_histogram_quantile_edges () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  Helpers.close "empty histogram reports 0" 0. (Metrics.histogram_quantile h 99.);
  Metrics.observe h 100.;
  let est = Metrics.histogram_quantile h 50. in
  Helpers.check_bool "single sample stays in its bucket" true (est >= 64. && est <= 128.);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Metrics.histogram_quantile: q must be in [0, 100]") (fun () ->
      ignore (Metrics.histogram_quantile h 101.))

(* ------------------------------------------------------------------ *)
(* JSONL sink *)

(* The wire format is a contract for offline tooling: pin it exactly. *)
let test_jsonl_golden () =
  let path = Filename.temp_file "plookup_obs" ".jsonl" in
  let oc = open_out path in
  let t = Trace.create () in
  Trace.add_sink t (Sink.jsonl oc);
  Trace.set_enabled t true;
  let sid =
    Trace.emit t ~time:1.25
      (Span.Send { src = Span.Client; dst = 4; plane = "data"; msg = "lookup" })
  in
  ignore
    (Trace.emit t ~time:2.5 ~cause:sid
       (Span.Recv { src = Span.Client; dst = 4; plane = "data"; msg = "lookup" }));
  ignore
    (Trace.emit t ~time:3.
       (Span.Drop
          { src = Span.Server 1; dst = 2; plane = "repair"; msg = "hint";
            reason = Span.Down }));
  ignore (Trace.emit t ~time:4. ~cause:2 (Span.Timeout { dst = 4; after = 60. }));
  ignore
    (Trace.emit t ~time:5.
       (Span.Repair_round { coordinator = 0; tick = 3; re_replications = 2; trims = 1 }));
  ignore (Trace.emit t ~time:6. (Span.Migration { entry = 17; src = 1; dst = 5 }));
  Trace.flush t;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string))
    "golden lines"
    [ {|{"id":1,"t":1.25,"kind":"send","src":-1,"dst":4,"plane":"data","msg":"lookup"}|};
      {|{"id":2,"t":2.5,"cause":1,"kind":"recv","src":-1,"dst":4,"plane":"data","msg":"lookup"}|};
      {|{"id":3,"t":3.0,"kind":"drop","src":1,"dst":2,"plane":"repair","msg":"hint","reason":"down"}|};
      {|{"id":4,"t":4.0,"cause":2,"kind":"timeout","dst":4,"after":60}|};
      {|{"id":5,"t":5.0,"kind":"repair_round","coordinator":0,"tick":3,"re_replications":2,"trims":1}|};
      {|{"id":6,"t":6.0,"kind":"migration","entry":17,"src":1,"dst":5}|} ]
    (List.rev !lines)

(* ------------------------------------------------------------------ *)
(* A traced experiment run *)

let traced_fig6 ~jobs =
  let obs = Obs.create ~trace_capacity:1_000_000 () in
  Trace.set_enabled obs.Obs.trace true;
  let ctx = E.Ctx.v ~seed:42 ~scale:0.05 ~jobs ~obs () in
  ignore (E.Exp_fig6.run ctx);
  obs

let shared_fig6_obs = lazy (traced_fig6 ~jobs:1)

(* Span ids are fresh and increasing, and every cause link points
   backwards at an id that exists — including across the absorb step
   that folds per-replicate traces into the context's. *)
(* Satellite: ring evictions surface in the registry as the
   [obs.trace.evicted] counter.  Evictions are derived lazily, so the
   metric is synced when the ring becomes observable (a drain), not per
   evicted span. *)
let test_evicted_metric () =
  let obs = Obs.create ~trace_capacity:3 () in
  Trace.set_enabled obs.Obs.trace true;
  let evicted () = Metrics.sum_counters (Metrics.snapshot obs.Obs.metrics) "obs.trace.evicted" in
  Helpers.check_int "starts at zero" 0 (evicted ());
  for i = 1 to 10 do
    Trace.record obs.Obs.trace ~time:(float_of_int i) ~label:"l" (string_of_int i)
  done;
  ignore (Trace.spans obs.Obs.trace);
  Helpers.check_int "evictions mirrored at drain" 7 (evicted ());
  (* Draining again without new traffic adds nothing. *)
  ignore (Trace.spans obs.Obs.trace);
  Helpers.check_int "idempotent per eviction" 7 (evicted ())

let test_fig6_links_well_formed () =
  let obs = Lazy.force shared_fig6_obs in
  let spans = Trace.spans obs.Obs.trace in
  Helpers.check_bool "run retained a real span stream" true
    (List.length spans > 1000);
  Helpers.check_int "nothing evicted at this capacity" 0
    (Trace.dropped obs.Obs.trace);
  let by_id = Hashtbl.create 4096 in
  let last = ref 0 in
  List.iter
    (fun s ->
      if s.Span.id <= !last then
        Alcotest.failf "span ids not strictly increasing at #%d" s.Span.id;
      last := s.Span.id;
      (match s.Span.cause with
      | None -> ()
      | Some c ->
        if c >= s.Span.id then Alcotest.failf "cause of #%d points forward" s.Span.id;
        if not (Hashtbl.mem by_id c) then
          Alcotest.failf "cause of #%d names an unknown span" s.Span.id);
      Hashtbl.replace by_id s.Span.id s)
    spans;
  (* Every Recv resolves a Send for the same destination. *)
  List.iter
    (fun s ->
      match s.Span.kind with
      | Span.Recv { dst; _ } -> (
        match s.Span.cause with
        | None -> Alcotest.fail "recv without a cause"
        | Some c -> (
          match (Hashtbl.find by_id c).Span.kind with
          | Span.Send { dst = sent_to; _ } ->
            Helpers.check_int "recv caused by its own send" dst sent_to
          | _ -> Alcotest.fail "recv cause is not a send"))
      | _ -> ())
    spans

(* The acceptance check from the issue: per-plane Recv span counts equal
   the registry's per-plane received counters. *)
let test_fig6_spans_agree_with_registry () =
  let obs = Lazy.force shared_fig6_obs in
  let spans = Trace.spans obs.Obs.trace in
  let snap = Metrics.snapshot obs.Obs.metrics in
  let span_recvs plane =
    List.length
      (List.filter
         (fun s ->
           match s.Span.kind with
           | Span.Recv { plane = p; _ } -> p = plane
           | _ -> false)
         spans)
  in
  List.iter
    (fun plane ->
      Helpers.check_int
        (Printf.sprintf "plane %s: spans = registry" plane)
        (Metrics.sum_counters snap ~where:[ ("plane", plane) ] "net.messages.received")
        (span_recvs plane))
    [ "data"; "strategy"; "repair" ];
  (* And the plane cells partition the Recv total. *)
  Helpers.check_int "planes partition the total"
    (List.fold_left
       (fun acc plane ->
         acc
         + Metrics.sum_counters snap ~where:[ ("plane", plane) ] "net.messages.received")
       0
       [ "data"; "strategy"; "repair" ])
    (List.length
       (List.filter
          (fun s -> match s.Span.kind with Span.Recv _ -> true | _ -> false)
          spans))

(* Metrics and traces merge in replicate input order: a run's
   observability is byte-identical at any worker count, like its
   tables. *)
let test_jobs_determinism () =
  let a = Lazy.force shared_fig6_obs in
  let b = traced_fig6 ~jobs:4 in
  Helpers.check_bool "metrics identical at jobs=1 vs jobs=4" true
    (Metrics.snapshot a.Obs.metrics = Metrics.snapshot b.Obs.metrics);
  let render obs =
    String.concat "\n" (List.map Span.to_json (Trace.spans obs.Obs.trace))
  in
  Helpers.check_string "trace identical at jobs=1 vs jobs=4" (render a) (render b)

let () =
  Helpers.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "label cardinality" `Quick test_label_cardinality;
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "quantile tracks percentile" `Quick
            test_histogram_quantile_tracks_percentile;
          Alcotest.test_case "quantile edges" `Quick test_histogram_quantile_edges ] );
      ("sink", [ Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden ]);
      ( "evicted",
        [ Alcotest.test_case "evictions reach the registry" `Quick test_evicted_metric ] );
      ( "fig6",
        [ Alcotest.test_case "cause links well-formed" `Quick
            test_fig6_links_well_formed;
          Alcotest.test_case "spans agree with registry" `Quick
            test_fig6_spans_agree_with_registry;
          Alcotest.test_case "jobs=1 equals jobs=4" `Quick test_jobs_determinism ] ) ]
