open Plookup_util

let test_accum_basics () =
  let acc = Stats.Accum.create () in
  Helpers.check_int "empty count" 0 (Stats.Accum.count acc);
  Helpers.close "empty mean" 0. (Stats.Accum.mean acc);
  List.iter (Stats.Accum.add acc) [ 1.; 2.; 3.; 4. ];
  Helpers.check_int "count" 4 (Stats.Accum.count acc);
  Helpers.close "mean" 2.5 (Stats.Accum.mean acc);
  Helpers.close "variance" (5. /. 3.) (Stats.Accum.variance acc);
  Helpers.close "stddev" (sqrt (5. /. 3.)) (Stats.Accum.stddev acc)

let test_accum_single_sample () =
  let acc = Stats.Accum.create () in
  Stats.Accum.add acc 7.;
  Helpers.close "mean" 7. (Stats.Accum.mean acc);
  Helpers.close "variance of 1 sample" 0. (Stats.Accum.variance acc);
  Helpers.close "ci of 1 sample" 0. (Stats.Accum.ci95_half_width acc)

let test_accum_merge () =
  let a = Stats.Accum.create () and b = Stats.Accum.create () and c = Stats.Accum.create () in
  let xs = [ 1.; 5.; 2.; 8.; 3. ] and ys = [ 10.; 0.; 4. ] in
  List.iter (Stats.Accum.add a) xs;
  List.iter (Stats.Accum.add b) ys;
  List.iter (Stats.Accum.add c) (xs @ ys);
  let m = Stats.Accum.merge a b in
  Helpers.check_int "merged count" (Stats.Accum.count c) (Stats.Accum.count m);
  Helpers.close "merged mean" (Stats.Accum.mean c) (Stats.Accum.mean m);
  Helpers.close "merged variance" (Stats.Accum.variance c) (Stats.Accum.variance m)

let test_accum_merge_empty () =
  let a = Stats.Accum.create () and b = Stats.Accum.create () in
  Stats.Accum.add b 3.;
  let m1 = Stats.Accum.merge a b and m2 = Stats.Accum.merge b a in
  Helpers.close "empty-left" 3. (Stats.Accum.mean m1);
  Helpers.close "empty-right" 3. (Stats.Accum.mean m2)

let test_array_stats () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Helpers.close "mean" 5. (Stats.mean xs);
  Helpers.close "variance" (32. /. 7.) (Stats.variance xs);
  Helpers.close "stddev" (sqrt (32. /. 7.)) (Stats.stddev xs);
  Helpers.close "empty mean" 0. (Stats.mean [||])

let test_cov_paper_example () =
  (* Section 4.5: 2 entries on 2 servers with Fixed-1, t=1: probabilities
     (1, 0), ideal 1/2 -> unfairness exactly 1. *)
  let u = Stats.coefficient_of_variation ~ideal:0.5 [| 1.; 0. |] in
  Helpers.close "paper example" 1. u

let test_cov_fair () =
  let u = Stats.coefficient_of_variation ~ideal:0.25 [| 0.25; 0.25; 0.25; 0.25 |] in
  Helpers.close "perfectly fair" 0. u

let test_cov_missing_entries_bound () =
  (* k missing entries out of h give unfairness at least sqrt(k/h)
     (the Fig. 9 first-phase lower bound). *)
  let h = 100 and k = 11 in
  let ideal = 0.35 in
  let ps = Array.init h (fun i -> if i < k then 0. else ideal) in
  let u = Stats.coefficient_of_variation ~ideal ps in
  Helpers.close "bound" (sqrt (float_of_int k /. float_of_int h)) u

let test_cov_rejects () =
  Alcotest.check_raises "bad ideal"
    (Invalid_argument "Stats.coefficient_of_variation: ideal must be positive") (fun () ->
      ignore (Stats.coefficient_of_variation ~ideal:0. [| 1. |]));
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.coefficient_of_variation: empty array") (fun () ->
      ignore (Stats.coefficient_of_variation ~ideal:1. [||]))

let test_percentile () =
  let xs = [| 15.; 20.; 35.; 40.; 50. |] in
  Helpers.close "p0" 15. (Stats.percentile xs 0.);
  Helpers.close "p100" 50. (Stats.percentile xs 100.);
  Helpers.close "p50" 35. (Stats.percentile xs 50.);
  Helpers.close "p25" 20. (Stats.percentile xs 25.);
  Helpers.close "interpolated" 17.5 (Stats.percentile xs 12.5)

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 0. |] in
  Helpers.close "min" (-1.) lo;
  Helpers.close "max" 7. hi

let test_ci_shrinks () =
  let rng = Rng.create 11 in
  let accum n =
    let acc = Stats.Accum.create () in
    for _ = 1 to n do
      Stats.Accum.add acc (Rng.unit_float rng)
    done;
    Stats.Accum.ci95_half_width acc
  in
  let small = accum 100 and large = accum 10_000 in
  Alcotest.(check bool) "ci narrows with samples" true (large < small)

let prop_welford_matches_naive =
  Helpers.qcheck "Welford = naive on float lists"
    QCheck2.Gen.(list_size (int_range 2 200) (float_range (-1000.) 1000.))
    (fun xs ->
      let arr = Array.of_list xs in
      let acc = Stats.Accum.create () in
      Array.iter (Stats.Accum.add acc) arr;
      let scale = Float.max 1. (Float.abs (Stats.mean arr)) in
      Float.abs (Stats.Accum.mean acc -. Stats.mean arr) < 1e-6 *. scale
      && Float.abs (Stats.Accum.variance acc -. Stats.variance arr)
         < 1e-4 *. Float.max 1. (Stats.variance arr))

let prop_merge_order_independent =
  Helpers.qcheck "merge a b = merge b a"
    QCheck2.Gen.(
      pair (list (float_range (-100.) 100.)) (list (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let mk l =
        let acc = Stats.Accum.create () in
        List.iter (Stats.Accum.add acc) l;
        acc
      in
      let m1 = Stats.Accum.merge (mk xs) (mk ys) in
      let m2 = Stats.Accum.merge (mk ys) (mk xs) in
      Stats.Accum.count m1 = Stats.Accum.count m2
      && Float.abs (Stats.Accum.mean m1 -. Stats.Accum.mean m2) < 1e-9)

let prop_cov_scale_invariant =
  Helpers.qcheck "CoV is invariant under scaling probabilities and ideal"
    QCheck2.Gen.(
      pair (float_range 0.1 10.) (list_size (int_range 1 50) (float_range 0. 1.)))
    (fun (scale, ps) ->
      let arr = Array.of_list ps in
      let u1 = Stats.coefficient_of_variation ~ideal:0.5 arr in
      let u2 =
        Stats.coefficient_of_variation ~ideal:(0.5 *. scale)
          (Array.map (fun p -> p *. scale) arr)
      in
      Float.abs (u1 -. u2) < 1e-6 *. Float.max 1. u1)

let () =
  Helpers.run "stats"
    [ ( "stats",
        [ Alcotest.test_case "accum basics" `Quick test_accum_basics;
          Alcotest.test_case "accum single" `Quick test_accum_single_sample;
          Alcotest.test_case "accum merge" `Quick test_accum_merge;
          Alcotest.test_case "merge empty" `Quick test_accum_merge_empty;
          Alcotest.test_case "array stats" `Quick test_array_stats;
          Alcotest.test_case "cov paper example" `Quick test_cov_paper_example;
          Alcotest.test_case "cov fair" `Quick test_cov_fair;
          Alcotest.test_case "cov missing bound" `Quick test_cov_missing_entries_bound;
          Alcotest.test_case "cov rejects" `Quick test_cov_rejects;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "min_max" `Quick test_min_max;
          Alcotest.test_case "ci shrinks" `Quick test_ci_shrinks;
          prop_welford_matches_naive;
          prop_merge_order_independent;
          prop_cov_scale_invariant ] ) ]
