type overload = {
  capacity : int;
  service_rate : float;
  deadline : float;
  hedge : float;
  breaker : int;
  degrade : float;
}

let default_overload =
  { capacity = 8; service_rate = 2.0; deadline = 250.; hedge = 95.; breaker = 3; degrade = 25. }

type cache = { cache_cap : int; cache_ttl : float; swr : float; hotspot : float }

(* TTL defaults to the day experiment's update period: one delete+add
   cycle is how long a cached answer stays plausibly fresh. *)
let default_cache = { cache_cap = 128; cache_ttl = 10.; swr = 0.; hotspot = 0. }

let check_cache c =
  if c.cache_cap < 1 then invalid_arg "Ctx: cache-cap must be >= 1";
  if c.cache_ttl <= 0. then invalid_arg "Ctx: cache-ttl must be positive";
  if c.swr < 0. then invalid_arg "Ctx: swr must be non-negative";
  if c.hotspot < 0. || c.hotspot > 1. then invalid_arg "Ctx: hotspot must be in [0, 1]"

let check_overload o =
  if o.capacity < 1 then invalid_arg "Ctx: capacity must be >= 1";
  if o.service_rate <= 0. then invalid_arg "Ctx: service-rate must be positive";
  if o.deadline <= 0. then invalid_arg "Ctx: deadline must be positive";
  if o.hedge <= 0. || o.hedge >= 100. then invalid_arg "Ctx: hedge must be in (0, 100)";
  if o.breaker < 1 then invalid_arg "Ctx: breaker must be >= 1";
  if o.degrade < 1. then invalid_arg "Ctx: degrade must be >= 1"

type t = {
  seed : int;
  scale : float;
  jobs : int;
  shards : int;
  loss : float;
  duplication : float;
  jitter : float;
  mttf : float option;
  mttr : float option;
  horizon : float option;
  repair : Plookup.Repair.config option;
  overload : overload option;
  cache : cache option;
  obs : Plookup_obs.Obs.t;
}

let default =
  { seed = 42;
    scale = 1.0;
    jobs = 1;
    shards = 1;
    loss = 0.;
    duplication = 0.;
    jitter = 0.;
    mttf = None;
    mttr = None;
    horizon = None;
    repair = None;
    overload = None;
    cache = None;
    obs = Plookup_obs.Obs.create () }

let v ?(seed = 42) ?(scale = 1.0) ?(jobs = 1) ?(shards = 1) ?(loss = 0.)
    ?(duplication = 0.) ?(jitter = 0.) ?mttf ?mttr ?horizon ?repair ?overload ?cache
    ?obs () =
  if scale <= 0. then invalid_arg "Ctx.v: scale must be positive";
  if jobs < 1 then invalid_arg "Ctx.v: jobs must be at least 1";
  if shards < 1 then invalid_arg "Ctx.v: shards must be at least 1";
  if loss < 0. || loss >= 1. then invalid_arg "Ctx.v: loss must be in [0, 1)";
  if duplication < 0. || duplication > 1. then
    invalid_arg "Ctx.v: duplication must be in [0, 1]";
  if jitter < 0. then invalid_arg "Ctx.v: jitter must be non-negative";
  let positive name = function
    | Some x when x <= 0. -> invalid_arg (Printf.sprintf "Ctx.v: %s must be positive" name)
    | _ -> ()
  in
  positive "mttf" mttf;
  positive "mttr" mttr;
  positive "horizon" horizon;
  Option.iter check_overload overload;
  Option.iter check_cache cache;
  let obs = match obs with Some o -> o | None -> Plookup_obs.Obs.create () in
  { seed;
    scale;
    jobs;
    shards;
    loss;
    duplication;
    jitter;
    mttf;
    mttr;
    horizon;
    repair;
    overload;
    cache;
    obs }

let workers t = t.jobs * t.shards
let faulty t = t.loss > 0. || t.duplication > 0. || t.jitter > 0.

let apply_faults t cluster =
  if faulty t then
    Plookup.Cluster.set_faults cluster ~loss:t.loss ~duplication:t.duplication
      ~jitter:t.jitter ()

let scaled t base = max 1 (int_of_float (Float.round (float_of_int base *. t.scale)))

let run_seed t index =
  Int64.to_int
    (Plookup_util.Rng.mix64 (Int64.of_int ((t.seed * 1_000_003) + index)))
  land max_int
