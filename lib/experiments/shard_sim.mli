(** The domain-sharded single-run simulation.

    Everything else in the repo parallelizes {e across} independent
    replicates ({!Runner} over {!Plookup_util.Pool}); this module
    parallelizes {e inside} one simulation.  The server id space is cut
    into {!stripes} contiguous stripes, each owning its own
    {!Plookup_sim.Engine}, net (with per-stripe up-server Fenwick
    views), entry stores, RNG streams and churn schedule; stripes
    interact only through cross-stripe probe/reply messages carried by
    {!Plookup_sim.Shard} with lookahead equal to the cross-stripe link
    latency.

    The workload is the paper's replicated-placement lookup under
    churn: every entry is stored on [replicas] hash-chosen servers,
    clients attached to a stripe look the entry up candidate by
    candidate (local candidates by direct probe, remote ones by
    cross-stripe message), and a lookup that exhausts its candidates
    falls back to random re-probing of an up server in the home stripe
    — the paper's availability story, answered from the stripe-local
    Fenwick view.

    Determinism: the logical decomposition is {e fixed} at {!stripes}
    stripes regardless of worker count, every piece of mutable state is
    owned by exactly one stripe, and cross-stripe messages are merged
    at barriers in a fixed order — so {!run} returns byte-identical
    results whether driven by 1 worker or 8 (see DESIGN.md,
    "Parallelism"). *)

val stripes : int
(** The fixed logical stripe count (4).  Fixed so that results are a
    function of the experiment, not of the machine: worker count scales
    only the physical execution of these stripes. *)

val replicas : int
(** Hash-placement copies per entry (3). *)

val lookahead : float
(** Cross-stripe link latency = the conservative lookahead (5.0 time
    units; intra-stripe probes take 1.0). *)

type stripe_tally = {
  stripe : int;
  lookups : int;  (** lookups started by this stripe's clients *)
  found : int;
  failed : int;
  local_probes : int;  (** probes answered inside the home stripe *)
  cross_probes : int;  (** probe messages sent to other stripes *)
  probes_served : int;  (** probe messages answered for other stripes *)
  fallbacks : int;  (** random re-probes after all candidates failed *)
  final_up : int;  (** up servers in the stripe at the horizon *)
}

type result = {
  n : int;
  entries : int;
  events : int;  (** engine events fired across all stripes *)
  lookups : int;
  found : int;
  failed : int;
  probes : int;  (** local + cross + fallback probes issued *)
  per_stripe : stripe_tally array;
}

val to_string : result -> string
(** One-line summary, stable across runs — what the determinism test
    and the bench digest compare. *)

val run :
  ?gang:Plookup_util.Pool.Gang.t ->
  ?workers:int ->
  ?mttf:float ->
  ?mttr:float ->
  n:int ->
  entries:int ->
  rate:float ->
  horizon:float ->
  seed:int ->
  unit ->
  result
(** [run ~n ~entries ~rate ~horizon ~seed ()] simulates [n] servers
    holding [entries] entries under a Poisson lookup load of [rate]
    lookups per time unit (split evenly across stripes) until
    [horizon], with per-stripe exponential churn ([mttf] defaults to
    [horizon /. 2.], [mttr] to [horizon /. 10.]).

    [gang] supplies the workers that execute the stripes (its size may
    exceed {!stripes} or the core count — excess workers idle);
    without it, [workers > 1] creates a transient gang for this run,
    and [workers = 1] (the default) runs sequentially.  The result is
    byte-identical in every case. *)
