(* Model-based testing across all strategies: drive a random sequence of
   add/delete operations (no failures) against each strategy and check
   the strategy-specific global invariants against a simple reference
   model of the live entry set. *)

open Plookup
open Plookup_store
module IntMap = Map.Make (Int)

type op = Add of int | Delete of int

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 0 120)
      (map2 (fun is_add id -> if is_add then Add id else Delete id) bool (int_range 0 60)))

(* The reference model: which entry ids are live after the ops, given an
   initial population. *)
let live_after ~initial ops =
  let live = ref IntMap.empty in
  List.iter (fun e -> live := IntMap.add (Entry.id e) e !live) initial;
  List.iter
    (fun op ->
      match op with
      | Add id ->
        let e = Entry.v (1000 + id) in
        live := IntMap.add (Entry.id e) e !live
      | Delete id ->
        (* Deletes target both initial and added id spaces. *)
        let target = if id mod 2 = 0 then id / 2 else 1000 + id in
        live := IntMap.remove target !live)
    ops;
  !live

let apply_ops service ops =
  List.iter
    (fun op ->
      match op with
      | Add id -> Service.add service (Entry.v (1000 + id))
      | Delete id ->
        let target = if id mod 2 = 0 then id / 2 else 1000 + id in
        Service.delete service (Entry.v target))
    ops

let run_scenario config ops ~check =
  let h = 20 in
  let service = Service.create ~seed:77 ~n:5 config in
  let initial = Helpers.entries h in
  Service.place service initial;
  apply_ops service ops;
  let live = live_after ~initial ops in
  check service live

let store_ids store = List.sort compare (Server_store.ids store)
let live_ids live = List.map fst (IntMap.bindings live)

let prop_full_replication_tracks_live =
  Helpers.qcheck ~count:100 "full replication: every server holds exactly the live set"
    gen_ops
    (fun ops ->
      run_scenario Service.full_replication ops ~check:(fun service live ->
          let cluster = Service.cluster service in
          List.for_all
            (fun s -> store_ids (Cluster.store cluster s) = live_ids live)
            (List.init 5 Fun.id)))

let prop_fixed_servers_identical_and_live =
  Helpers.qcheck ~count:100 "fixed: servers identical, bounded by x, subset of live"
    gen_ops
    (fun ops ->
      let x = 6 in
      run_scenario (Service.fixed x) ops ~check:(fun service live ->
          let cluster = Service.cluster service in
          let reference = store_ids (Cluster.store cluster 0) in
          List.length reference <= x
          && List.for_all (fun id -> IntMap.mem id live) reference
          && List.for_all
               (fun s -> store_ids (Cluster.store cluster s) = reference)
               (List.init 5 Fun.id)))

let prop_random_server_bounded_and_live =
  Helpers.qcheck ~count:100 "randomserver: occupancy <= x and stores subset of live"
    gen_ops
    (fun ops ->
      let x = 6 in
      run_scenario (Service.random_server x) ops ~check:(fun service live ->
          let cluster = Service.cluster service in
          List.for_all
            (fun s ->
              let ids = store_ids (Cluster.store cluster s) in
              List.length ids <= x && List.for_all (fun id -> IntMap.mem id live) ids)
            (List.init 5 Fun.id)))

let prop_round_robin_exactly_live =
  Helpers.qcheck ~count:100 "round robin: placement invariant + coverage = live set"
    gen_ops
    (fun ops ->
      run_scenario (Service.round_robin 2) ops ~check:(fun service live ->
          let cluster = Service.cluster service in
          let coverage =
            Entry.Set.elements (Cluster.coverage cluster) |> List.map Entry.id
          in
          coverage = live_ids live))

let prop_hash_exactly_live =
  Helpers.qcheck ~count:100 "hash: coverage = live set and copies at hashed servers"
    gen_ops
    (fun ops ->
      run_scenario (Service.hash 2) ops ~check:(fun service live ->
          let cluster = Service.cluster service in
          let coverage =
            Entry.Set.elements (Cluster.coverage cluster) |> List.map Entry.id
          in
          coverage = live_ids live))

let prop_lookups_return_live_entries =
  Helpers.qcheck ~count:100 "all strategies: lookups only return live entries"
    QCheck2.Gen.(pair (int_range 0 5) gen_ops)
    (fun (strategy_index, ops) ->
      let config =
        List.nth
          [ Service.full_replication; Service.fixed 6; Service.random_server 6;
            Service.random_server_replacing 6; Service.round_robin 2; Service.hash 2 ]
          strategy_index
      in
      run_scenario config ops ~check:(fun service live ->
          let r = Service.partial_lookup service 5 in
          List.for_all (fun e -> IntMap.mem (Entry.id e) live) r.Lookup_result.entries))

let prop_storage_conservation =
  Helpers.qcheck ~count:100 "all strategies: total storage bounded by strategy law"
    QCheck2.Gen.(pair (int_range 0 4) gen_ops)
    (fun (strategy_index, ops) ->
      let n = 5 in
      let config, bound =
        List.nth
          [ (Service.full_replication, fun live -> live * n);
            (Service.fixed 6, fun _ -> 6 * n);
            (Service.random_server 6, fun _ -> 6 * n);
            (Service.round_robin 2, fun live -> live * 2);
            (Service.hash 2, fun live -> live * 2) ]
          strategy_index
      in
      run_scenario config ops ~check:(fun service live ->
          Cluster.total_stored (Service.cluster service)
          <= bound (IntMap.cardinal live)))

let () =
  Helpers.run "model"
    [ ( "model",
        [ prop_full_replication_tracks_live;
          prop_fixed_servers_identical_and_live;
          prop_random_server_bounded_and_live;
          prop_round_robin_exactly_live;
          prop_hash_exactly_live;
          prop_lookups_return_live_entries;
          prop_storage_conservation ] ) ]
