open Plookup_sim

let test_clock_starts_at_zero () =
  let e = Engine.create () in
  Helpers.close "initial now" 0. (Engine.now e)

let test_fires_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  let record tag engine = log := (tag, Engine.now engine) :: !log in
  ignore (Engine.schedule_at e ~time:3. (record "c"));
  ignore (Engine.schedule_at e ~time:1. (record "a"));
  ignore (Engine.schedule_at e ~time:2. (record "b"));
  let fired = Engine.run e in
  Helpers.check_int "fired" 3 fired;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev_map fst !log);
  Helpers.close "clock at last event" 3. (Engine.now e)

let test_schedule_after () =
  let e = Engine.create () in
  let seen = ref [] in
  ignore
    (Engine.schedule_at e ~time:5. (fun engine ->
         ignore
           (Engine.schedule_after engine ~delay:2.5 (fun engine ->
                seen := Engine.now engine :: !seen))));
  ignore (Engine.run e);
  Alcotest.(check (list (float 1e-9))) "nested fire time" [ 7.5 ] !seen

let test_past_scheduling_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e ~time:10. (fun _ -> ()));
  ignore (Engine.run e);
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time is in the past")
    (fun () -> ignore (Engine.schedule_at e ~time:5. (fun _ -> ())));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
      ignore (Engine.schedule_after e ~delay:(-1.) (fun _ -> ())))

let test_cancel () =
  let e = Engine.create () in
  let fired = ref [] in
  let id1 = Engine.schedule_at e ~time:1. (fun _ -> fired := 1 :: !fired) in
  ignore (Engine.schedule_at e ~time:2. (fun _ -> fired := 2 :: !fired));
  Engine.cancel e id1;
  Engine.cancel e id1 (* double cancel is a no-op *);
  Helpers.check_int "pending after cancel" 1 (Engine.pending e);
  ignore (Engine.run e);
  Alcotest.(check (list int)) "only 2 fired" [ 2 ] !fired

let test_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  List.iter
    (fun t -> ignore (Engine.schedule_at e ~time:t (fun _ -> incr fired)))
    [ 1.; 2.; 3.; 10. ];
  let n = Engine.run ~until:5. e in
  Helpers.check_int "fired before horizon" 3 n;
  Helpers.close "clock advanced to horizon" 5. (Engine.now e);
  Helpers.check_int "one pending" 1 (Engine.pending e);
  ignore (Engine.run e);
  Helpers.check_int "rest fired" 4 !fired

let test_run_until_ignores_cancelled_before_horizon () =
  (* Regression: a cancelled event inside the horizon used to satisfy the
     peek, and the *next live* event — past the horizon — then fired. *)
  let e = Engine.create () in
  let id = Engine.schedule_at e ~time:1. (fun _ -> Alcotest.fail "cancelled event fired") in
  let fired_at = ref [] in
  ignore (Engine.schedule_at e ~time:10. (fun eng -> fired_at := Engine.now eng :: !fired_at));
  Engine.cancel e id;
  let n = Engine.run ~until:5. e in
  Helpers.check_int "nothing fires before the horizon" 0 n;
  Alcotest.(check (list (float 1e-9))) "event past horizon did not fire" [] !fired_at;
  Helpers.close "clock stops at horizon" 5. (Engine.now e);
  Helpers.check_int "live event still pending" 1 (Engine.pending e);
  ignore (Engine.run e);
  Alcotest.(check (list (float 1e-9))) "fires later at its own time" [ 10. ] !fired_at

let test_run_until_only_cancelled_left () =
  (* A queue holding nothing but cancelled events is as good as empty:
     the clock must still advance to the horizon. *)
  let e = Engine.create () in
  let id = Engine.schedule_at e ~time:2. (fun _ -> ()) in
  Engine.cancel e id;
  Helpers.check_int "no fires" 0 (Engine.run ~until:7. e);
  Helpers.close "clock reaches horizon" 7. (Engine.now e)

let test_cancel_after_fire_is_noop () =
  (* Regression: cancelling an already-fired id used to decrement [live]
     and leak a stale entry, so [pending] under-reported forever. *)
  let e = Engine.create () in
  let id = Engine.schedule_at e ~time:1. (fun _ -> ()) in
  ignore (Engine.run e);
  Helpers.check_int "nothing pending after firing" 0 (Engine.pending e);
  Engine.cancel e id;
  Helpers.check_int "cancel of fired id leaves pending alone" 0 (Engine.pending e);
  let fired = ref 0 in
  ignore (Engine.schedule_at e ~time:2. (fun _ -> incr fired));
  Engine.cancel e id;
  Helpers.check_int "still one pending" 1 (Engine.pending e);
  Helpers.check_int "new event fires" 1 (Engine.run e);
  Helpers.check_int "fired" 1 !fired

let prop_run_until_never_fires_past_horizon =
  Helpers.qcheck ~count:100 "run ~until never fires an event after the horizon"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 40) (float_range 0. 100.))
        (list_size (int_range 0 40) (int_range 0 39))
        (float_range 0. 100.))
    (fun (times, cancels, horizon) ->
      let e = Engine.create () in
      let fired = ref [] in
      let ids =
        List.map
          (fun t ->
            Engine.schedule_at e ~time:t (fun eng -> fired := Engine.now eng :: !fired))
          times
      in
      let ids = Array.of_list ids in
      List.iter (fun i -> Engine.cancel e ids.(i mod Array.length ids)) cancels;
      ignore (Engine.run ~until:horizon e);
      List.for_all (fun t -> t <= horizon) !fired && Engine.now e >= horizon)

let test_run_max_events () =
  let e = Engine.create () in
  List.iter (fun t -> ignore (Engine.schedule_at e ~time:t (fun _ -> ()))) [ 1.; 2.; 3. ];
  Helpers.check_int "capped" 2 (Engine.run ~max_events:2 e);
  Helpers.check_int "remaining" 1 (Engine.pending e)

let test_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "step on empty" false (Engine.step e);
  ignore (Engine.schedule_at e ~time:1. (fun _ -> ()));
  Alcotest.(check bool) "step fires" true (Engine.step e);
  Alcotest.(check bool) "empty again" false (Engine.step e)

let test_reset () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e ~time:4. (fun _ -> Alcotest.fail "should not fire"));
  ignore (Engine.run ~until:1. e);
  Engine.reset e;
  Helpers.close "clock rewound" 0. (Engine.now e);
  Helpers.check_int "no pending" 0 (Engine.pending e);
  Helpers.check_int "nothing fires" 0 (Engine.run e)

let test_self_perpetuating_with_cap () =
  (* An event that reschedules itself: max_events must stop it. *)
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick engine =
    incr count;
    ignore (Engine.schedule_after engine ~delay:1. tick)
  in
  ignore (Engine.schedule_at e ~time:0. tick);
  let fired = Engine.run ~max_events:50 e in
  Helpers.check_int "capped self-scheduler" 50 fired;
  Helpers.check_int "ticked" 50 !count

let prop_events_fire_in_time_order =
  Helpers.qcheck ~count:100 "events fire in non-decreasing time order"
    QCheck2.Gen.(list_size (int_range 0 60) (float_range 0. 100.))
    (fun times ->
      let e = Engine.create () in
      let log = ref [] in
      List.iter
        (fun t ->
          ignore (Engine.schedule_at e ~time:t (fun eng -> log := Engine.now eng :: !log)))
        times;
      ignore (Engine.run e);
      let fired = List.rev !log in
      fired = List.sort compare times)

let () =
  Helpers.run "engine"
    [ ( "engine",
        [ Alcotest.test_case "clock zero" `Quick test_clock_starts_at_zero;
          Alcotest.test_case "fires in order" `Quick test_fires_in_order;
          Alcotest.test_case "schedule_after nesting" `Quick test_schedule_after;
          Alcotest.test_case "past rejected" `Quick test_past_scheduling_rejected;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "until skips cancelled" `Quick
            test_run_until_ignores_cancelled_before_horizon;
          Alcotest.test_case "until with only cancelled" `Quick
            test_run_until_only_cancelled_left;
          Alcotest.test_case "cancel after fire" `Quick test_cancel_after_fire_is_noop;
          prop_run_until_never_fires_past_horizon;
          Alcotest.test_case "run max_events" `Quick test_run_max_events;
          Alcotest.test_case "step" `Quick test_step;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "self-perpetuating" `Quick test_self_perpetuating_with_cap;
          prop_events_fire_in_time_order ] ) ]
