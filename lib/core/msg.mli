(** The wire protocol between clients and servers.

    One message type serves all five strategies: a strategy is precisely
    a server-side handler for these messages plus a client-side probing
    discipline, which is how the paper frames them (each scheme is given
    as the behaviour of [place]/[add]/[delete]/[partial_lookup] messages).

    Client-originated requests ({!Place}, {!Add}, {!Delete}, {!Lookup})
    are sent to one server; the rest are server-to-server.

    The [Digest_request]/[Sync_fix]/[Hint]/[Digest_pull]/[Repair_store]
    family belongs to the {!Repair} subsystem (anti-entropy recovery
    sync, hinted handoff and the degree-repair daemon); strategies never
    see those — the repair layer intercepts them before the strategy
    handler runs.  See PROTOCOL.md for flows and cost accounting. *)

open Plookup_store
open Plookup_util

type hint_kind = H_store | H_remove | H_add_sampled | H_remove_counted
(** Which buffered operation a {!Hint} replays: the point-to-point
    store/remove of RoundRobin/Hash, or RandomServer's counted
    sampled-add / counted-remove. *)

type t =
  | Place of Entry.t list  (** client's initial batch placement request *)
  | Add of Entry.t  (** client add *)
  | Delete of Entry.t  (** client delete *)
  | Lookup of int  (** client partial lookup with target answer size t *)
  | Store of Entry.t  (** server-to-server: keep a local copy *)
  | Store_batch of Entry.t list
      (** server-to-server broadcast payload; receiver decides what to
          keep (everything, the first x, or a random x-subset). *)
  | Remove of Entry.t  (** server-to-server: drop the local copy *)
  | Add_sampled of Entry.t
      (** RandomServer-x incremental add: receiver applies the
          reservoir-sampling coin flip. *)
  | Remove_counted of Entry.t
      (** RandomServer-x delete: receiver decrements its local count of
          system entries and drops any local copy. *)
  | Fetch_candidate of int list
      (** RandomServer-x replacement-on-delete ablation: "send me one
          entry whose id is not in this list". *)
  | Sync_add of Entry.t
      (** RoundRobin coordinator replication (the paper's footnote 1):
          the acting coordinator tells a standby replica to apply an add
          to its copy of the head/tail counters and sequence. *)
  | Sync_delete of Entry.t
      (** Standby-replica mirror of a delete (including the implied
          hole-plugging migration, which each replica re-derives
          deterministically from its own copy). *)
  | Sync_state
      (** State transfer to a just-recovered coordinator replica; the
          receiver copies the sender's ledger. *)
  | Digest_request of Bitset.t
      (** Recovery sync, step 1: a just-recovered server sends a compact
          digest of the entry ids it holds to a live peer. *)
  | Sync_fix of Entry.t list * int list
      (** Recovery sync, step 2: the peer ships the entries the digest
          shows missing and the ids to retract (deleted while the
          recoverer was down, or no longer assigned to it). *)
  | Hint of int * hint_kind * Entry.t
      (** Hinted handoff: an update bound for the down server named by
          the first field, parked on a buddy for replay at recovery. *)
  | Digest_pull
      (** Repair-daemon scan: "reply with a digest of your store". *)
  | Repair_store of Entry.t
      (** Daemon re-replication: store this entry as a substitute copy
          to restore the strategy's replication degree. *)

type reply =
  | Ack
  | Entries of Entry.t list  (** lookup answer *)
  | Candidate of Entry.t option  (** reply to {!Fetch_candidate} *)
  | Digest of Bitset.t  (** reply to {!Digest_pull} *)

val hint_kind_name : hint_kind -> string
val pp : Format.formatter -> t -> unit
val pp_reply : Format.formatter -> reply -> unit
