(** Span sinks: where a {!Trace} delivers its spans.

    Both sinks share one interface ({!t}): a streaming JSONL writer for
    offline analysis and a bounded in-memory ring for interactive and
    test use.  A trace fans each span out to every attached sink, so a
    run can keep the ring for quick dumps while also writing a complete
    JSONL file. *)

type t

val emit : t -> Span.t -> unit
val flush : t -> unit

val jsonl : ?flush_every:int -> out_channel -> t
(** Stream each span as one JSON line.  The channel is flushed every
    [flush_every] spans (default 1024) and on {!flush}; closing the
    channel is the caller's job. *)

val null : t
(** Discards everything (placeholder wiring). *)

(** {1 The bounded ring}

    A ring is a sink plus accessors.  Storage grows geometrically up to
    [capacity], then evicts oldest-first — and {e counts} what it
    evicted, so a truncated dump is detectable instead of silently
    missing its prefix. *)

type ring

val ring : capacity:int -> ring
(** Raises [Invalid_argument] on a non-positive capacity. *)

val of_ring : ring -> t
val ring_capacity : ring -> int
val ring_length : ring -> int

val ring_dropped : ring -> int
(** Spans evicted to make room — the count a complete dump would need
    to be 0. *)

val ring_spans : ring -> Span.t list
(** Oldest first. *)

val ring_clear : ring -> unit
(** Empties the ring and zeroes the dropped count. *)
