module Rng = Plookup_util.Rng
module Bitset = Plookup_util.Bitset

type t = {
  mutable slots : Entry.t array; (* entries live in slots.(0 .. size-1) *)
  mutable size : int;
  index : (int, int) Hashtbl.t; (* entry id -> slot *)
  mutable scratch : int array; (* reused by random_pick; grown on demand *)
}

let dummy = Entry.v 0

let create () = { slots = [||]; size = 0; index = Hashtbl.create 16; scratch = [||] }

let cardinal t = t.size
let is_empty t = t.size = 0
let mem t e = Hashtbl.mem t.index (Entry.id e)

let ensure_capacity t =
  if t.size = Array.length t.slots then begin
    let capacity = max 8 (2 * Array.length t.slots) in
    let slots = Array.make capacity dummy in
    Array.blit t.slots 0 slots 0 t.size;
    t.slots <- slots
  end

let add t e =
  if mem t e then false
  else begin
    ensure_capacity t;
    t.slots.(t.size) <- e;
    Hashtbl.replace t.index (Entry.id e) t.size;
    t.size <- t.size + 1;
    true
  end

let remove t e =
  match Hashtbl.find_opt t.index (Entry.id e) with
  | None -> false
  | Some slot ->
    Hashtbl.remove t.index (Entry.id e);
    let last = t.size - 1 in
    if slot <> last then begin
      let moved = t.slots.(last) in
      t.slots.(slot) <- moved;
      Hashtbl.replace t.index (Entry.id moved) slot
    end;
    t.slots.(last) <- dummy;
    t.size <- last;
    true

let clear t =
  t.slots <- [||];
  t.size <- 0;
  Hashtbl.reset t.index

(* The per-server lookup answer is the hottest operation of the whole
   evaluation, so the k-subset draw runs over a per-store scratch
   buffer: no [Array.init]/[Array.sub]/[Array.map] garbage per call,
   and the exact same generator draws as Rng.sample_indices. *)
let pick_indices t rng k =
  if Array.length t.scratch < t.size then t.scratch <- Array.make (max 8 (2 * t.size)) 0;
  Rng.sample_indices_into rng t.scratch ~n:t.size ~k

let random_pick_into t rng k buf =
  let k = min k t.size in
  if k <= 0 then 0
  else begin
    if Array.length buf < k then invalid_arg "Server_store.random_pick_into: buffer too small";
    pick_indices t rng k;
    for i = 0 to k - 1 do
      buf.(i) <- t.slots.(t.scratch.(i))
    done;
    k
  end

let random_pick t rng k =
  let k = min k t.size in
  if k <= 0 then []
  else begin
    pick_indices t rng k;
    let rec build i acc = if i < 0 then acc else build (i - 1) (t.slots.(t.scratch.(i)) :: acc) in
    build (k - 1) []
  end

let random_one t rng = if t.size = 0 then None else Some t.slots.(Rng.int rng t.size)

let to_list t = Array.to_list (Array.sub t.slots 0 t.size)

let iter f t =
  for i = 0 to t.size - 1 do
    f t.slots.(i)
  done

let fold f t init =
  let acc = ref init in
  iter (fun e -> acc := f e !acc) t;
  !acc

let ids t = fold (fun e acc -> Entry.id e :: acc) t []

let snapshot_bitset t ~capacity =
  let bs = Bitset.create capacity in
  iter (fun e -> Bitset.add bs (Entry.id e)) t;
  bs

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Entry.pp)
    (List.sort Entry.compare (to_list t))
