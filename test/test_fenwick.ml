module Fenwick = Plookup_util.Fenwick

(* Reference model: a plain count array, with select as "index the
   sorted list of present elements" — the semantics the hot paths
   (Cluster up-picks, churn victim draws) rely on byte-for-byte. *)

let test_create_validation () =
  Alcotest.check_raises "negative" (Invalid_argument "Fenwick.create: negative capacity")
    (fun () -> ignore (Fenwick.create (-1)))

let test_empty () =
  let t = Fenwick.create 8 in
  Helpers.check_int "capacity" 8 (Fenwick.capacity t);
  Helpers.check_int "total" 0 (Fenwick.total t);
  Helpers.check_int "prefix" 0 (Fenwick.prefix t 8)

let test_add_get_prefix () =
  let t = Fenwick.create 10 in
  let model = Array.make 10 0 in
  let ops = [ (3, 2); (0, 1); (9, 5); (3, -1); (7, 4); (0, -1); (5, 1) ] in
  List.iter
    (fun (i, d) ->
      Fenwick.add t i d;
      model.(i) <- model.(i) + d;
      for j = 0 to 9 do
        Helpers.check_int (Printf.sprintf "get %d" j) model.(j) (Fenwick.get t j)
      done;
      let sum = ref 0 in
      for j = 0 to 10 do
        Helpers.check_int (Printf.sprintf "prefix %d" j) !sum (Fenwick.prefix t j);
        if j < 10 then sum := !sum + model.(j)
      done;
      Helpers.check_int "total" (Array.fold_left ( + ) 0 model) (Fenwick.total t))
    ops

let test_select_is_kth_present () =
  (* With 0/1 counts, select k must name the same element as List.nth of
     the sorted present list — the contract the O(n)-scan replacements
     depend on for identical draw sequences. *)
  let t = Fenwick.create 32 in
  let present = [ 1; 4; 5; 11; 17; 30; 31 ] in
  List.iter (fun i -> Fenwick.add t i 1) present;
  Helpers.check_int "total" (List.length present) (Fenwick.total t);
  List.iteri
    (fun k expected ->
      Helpers.check_int (Printf.sprintf "select %d" k) expected (Fenwick.select t k))
    present

let test_select_tracks_membership_churn () =
  let rng = Plookup_util.Rng.create 13 in
  let cap = 64 in
  let t = Fenwick.create cap in
  let present = Array.make cap false in
  for _ = 1 to 500 do
    let i = Plookup_util.Rng.int rng cap in
    if present.(i) then begin
      present.(i) <- false;
      Fenwick.add t i (-1)
    end
    else begin
      present.(i) <- true;
      Fenwick.add t i 1
    end;
    let sorted =
      List.filter (fun i -> present.(i)) (List.init cap Fun.id)
    in
    Helpers.check_int "total" (List.length sorted) (Fenwick.total t);
    List.iteri
      (fun k expected -> Helpers.check_int "kth" expected (Fenwick.select t k))
      sorted
  done

let test_select_with_weights () =
  (* select also works with counts > 1: it picks the smallest index
     whose inclusive prefix exceeds k. *)
  let t = Fenwick.create 4 in
  Fenwick.add t 1 2;
  Fenwick.add t 3 3;
  let expected = [ 1; 1; 3; 3; 3 ] in
  List.iteri
    (fun k e -> Helpers.check_int (Printf.sprintf "select %d" k) e (Fenwick.select t k))
    expected

let () =
  Helpers.run "fenwick"
    [ ( "fenwick",
        [ Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/get/prefix" `Quick test_add_get_prefix;
          Alcotest.test_case "select is kth present" `Quick test_select_is_kth_present;
          Alcotest.test_case "select tracks churn" `Quick
            test_select_tracks_membership_churn;
          Alcotest.test_case "select with weights" `Quick test_select_with_weights ] ) ]
