open Plookup
open Plookup_store
open Plookup_util
module Engine = Plookup_sim.Engine
module Churn = Plookup_workload.Churn
module Hotspot = Plookup_workload.Hotspot
module Net = Plookup_net.Net
module Metrics = Plookup_obs.Metrics

let id = "day"

let title =
  "Extension: a production day under overload, naive vs tail-tolerant clients (flash \
   crowd, gray failure, churn)"

type mode = Naive | Tuned | Cached

let mode_name = function Naive -> "naive" | Tuned -> "tuned" | Cached -> "tuned+cache"

type tally = {
  mutable lookups : int;
  mutable satisfied : int;  (* >= t *live* entries returned *)
  mutable stale : int;  (* entries returned after their delete time *)
  mutable sends : int;  (* data-plane requests (attempts incl. retries/hedges) *)
  mutable hedges : int;
  mutable gave_up : int;
}

type cell_result = {
  tally : tally;
  shed : int;
  skew : float;
  p50 : float;
  p99_crowd : float;
  p999_crowd : float;
  msgs_per_lookup : float;
      (* data-plane requests per lookup, background cache refreshes included *)
  hit_pct : float;  (* lookups answered without their own probe fan-out *)
}

(* One simulated day of one strategy under one client/server discipline.

   Open-loop arrivals: a non-homogeneous Poisson process whose rate
   follows a diurnal sine swing plus a 6x flash crowd in the window
   [0.45, 0.60] * horizon; during the crowd two servers are gray-degraded
   (service time multiplied by [ov.degrade]).  Key popularity is Zipf
   over [keys] ranks; each rank owns a fixed probe-order permutation, so
   popular keys hammer the same order head and skew the load.  Churn,
   repair and a steady delete+add update stream run concurrently, as in
   the churn drill.

   Naive cells shed silently (clients discover overload by timeout) and
   retry with plain exponential backoff.  Tuned cells shed with the
   [Busy] fast nack and run the tail-tolerant client: deadline budget,
   hedged backups at the cell's own observed latency quantile, a shared
   per-server circuit breaker, and decorrelated retry jitter.  Cached
   cells are the tuned client plus a shared {!Client_cache} keyed by
   rank; when the cache config's [hotspot] blend is on, every mode aims
   that fraction of its lookups at the strategy's worst-placed key
   ({!Plookup_workload.Hotspot}), so the three cells still face the
   identical workload. *)
let run_cell ctx ~obs ~n ~h ~t ~keys ~alpha ~rtt_lo ~rtt_hi ~timeout ~base_rate ~mttf
    ~mttr ~horizon ~update_every ~repair ~ov ~cache ~mode config =
  let seed = Ctx.run_seed ctx (Hashtbl.hash (Service.config_name config)) in
  let service = Service.create ~seed ~obs ~repair ~n config in
  let gen = Entry.Gen.create () in
  let initial = Entry.Gen.batch gen h in
  Service.place service initial;
  let cluster = Service.cluster service in
  Ctx.apply_faults ctx cluster;
  Cluster.set_capacity cluster ~service_rate:ov.Ctx.service_rate
    ~queue_limit:ov.Ctx.capacity ~nack:(mode = Tuned) ();
  let engine = Engine.create () in
  (match Service.repair service with
  | Some rep -> Repair.attach_engine ~until:horizon rep engine
  | None -> ());
  let churn_events =
    Churn.generate (Rng.create (seed lxor 0xC0FFEE)) ~n ~mttf ~mttr ~horizon
  in
  Churn.drive engine
    ~apply:(fun ev ->
      if ev.Churn.up then Cluster.recover cluster ev.Churn.server
      else Cluster.fail cluster ev.Churn.server)
    churn_events;
  (* Ground truth of live/deleted entries, as in the churn drill — but
     deletes record their *time*, so an entry returned by a lookup only
     counts as stale when it was already deleted before the lookup
     started (an in-flight delete racing an async lookup is not a
     consistency violation). *)
  let live = Hashtbl.create (2 * h) in
  let live_fen = Fenwick.create (h + int_of_float (horizon /. update_every) + 1) in
  let live_add e =
    Hashtbl.replace live (Entry.id e) e;
    Fenwick.add live_fen (Entry.id e) 1
  in
  let live_remove eid =
    Hashtbl.remove live eid;
    Fenwick.add live_fen eid (-1)
  in
  List.iter live_add initial;
  let deleted = Hashtbl.create 64 in
  let wl_rng = Rng.create (seed lxor 0xBEEF) in
  for k = 1 to int_of_float (horizon /. update_every) do
    let time = (float_of_int k *. update_every) +. 0.25 in
    ignore
      (Engine.schedule_at engine ~time (fun _ ->
           if Service.can_update service then begin
             match Fenwick.total live_fen with
             | 0 -> ()
             | alive ->
               let victim_id = Fenwick.select live_fen (Rng.int wl_rng alive) in
               let victim = Hashtbl.find live victim_id in
               Service.delete service victim;
               live_remove victim_id;
               Hashtbl.replace deleted victim_id time;
               let fresh = Entry.Gen.fresh gen in
               Service.add service fresh;
               live_add fresh
           end))
  done;
  (* The flash-crowd window doubles as the gray-failure window: servers
     0 and 1 slow down by [ov.degrade] while the crowd hammers. *)
  let crowd_lo = 0.45 *. horizon and crowd_hi = 0.60 *. horizon in
  let in_crowd tau = tau >= crowd_lo && tau < crowd_hi in
  let degraded = [ 0; 1 ] in
  ignore
    (Engine.schedule_at engine ~time:crowd_lo (fun _ ->
         List.iter (fun s -> Cluster.set_degraded cluster s ~factor:ov.Ctx.degrade) degraded));
  ignore
    (Engine.schedule_at engine ~time:crowd_hi (fun _ ->
         List.iter (fun s -> Cluster.set_degraded cluster s ~factor:1.0) degraded));
  (* Each Zipf rank owns a fixed probe-order permutation. *)
  let orders =
    Array.init (keys + 1) (fun r ->
        Array.to_list (Rng.perm (Rng.create (seed + (7919 * (r + 1)))) n))
  in
  (* Hotspot-adversarial blend: a [hotspot] fraction of lookups targets
     the rank whose probe order is worst placed for this strategy's
     initial placement.  Off ([hs = 0]) makes no extra draws, so the
     default day is untouched. *)
  let hs = match cache with Some c -> c.Ctx.hotspot | None -> 0. in
  let worst_rank =
    if hs > 0. then begin
      let held = Array.init n (fun s -> Server_store.cardinal (Cluster.store cluster s)) in
      Hotspot.worst ~lo:1 ~orders ~held ~t ()
    end
    else 0
  in
  let labels =
    [ ("strategy", Service.config_name config); ("mode", mode_name mode) ]
  in
  let m = obs.Plookup_obs.Obs.metrics in
  let hist_all = Metrics.histogram m ~labels "day.lookup.latency" in
  let hist_crowd = Metrics.histogram m ~labels "day.lookup.latency.crowd" in
  let breaker = Async_client.Breaker.create ~threshold:ov.Ctx.breaker ~cooldown:100. ~n () in
  let jitter_rng = Rng.create (seed lxor 0x9177) in
  let latency_rng = Rng.create (seed lxor 0x1A7E) in
  (* One hop is half a round trip. *)
  let latency () = Dist.uniform_in latency_rng ~lo:(rtt_lo /. 2.) ~hi:(rtt_hi /. 2.) in
  let key_rng = Rng.create (seed lxor 0x21F) in
  let arr_rng = Rng.create (seed lxor 0xA331) in
  let tally =
    { lookups = 0; satisfied = 0; stale = 0; sends = 0; hedges = 0; gave_up = 0 }
  in
  let record o =
    let lat = Async_client.elapsed o in
    Metrics.observe hist_all lat;
    if in_crowd o.Async_client.started_at then Metrics.observe hist_crowd lat;
    tally.lookups <- tally.lookups + 1;
    let returned = o.Async_client.result.Lookup_result.entries in
    (* An entry only counts as stale (and against success) when it was
       already deleted before the lookup began; an entry deleted while
       the lookup's datagrams were in flight was a valid answer when
       the client asked. *)
    let stale =
      List.length
        (List.filter
           (fun e ->
             match Hashtbl.find_opt deleted (Entry.id e) with
             | Some dt -> dt <= o.Async_client.started_at
             | None -> false)
           returned)
    in
    if List.length returned - stale >= t then tally.satisfied <- tally.satisfied + 1;
    tally.stale <- tally.stale + stale;
    tally.sends <- tally.sends + o.Async_client.attempts;
    tally.hedges <- tally.hedges + o.Async_client.hedges;
    if o.Async_client.gave_up then tally.gave_up <- tally.gave_up + 1
  in
  let rate_at tau =
    let diurnal = 1. +. (0.6 *. sin (2. *. Float.pi *. tau /. horizon)) in
    let flash = if in_crowd tau then 6. else 1. in
    base_rate *. diurnal *. flash
  in
  let ccache =
    match mode with
    | Cached ->
      let cc = Option.value cache ~default:Ctx.default_cache in
      Some
        (Client_cache.create ~obs ~ttl:cc.Ctx.cache_ttl ~swr:cc.Ctx.swr
           ~capacity:cc.Ctx.cache_cap ())
    | Naive | Tuned -> None
  in
  (* The hedge delay self-tunes: the configured quantile of the cell's
     own latency so far, once enough samples exist. *)
  let hedge_delay () =
    if Metrics.histogram_count hist_all < 30 then 2. *. rtt_hi
    else Float.max (rtt_hi /. 2.) (Metrics.histogram_quantile hist_all ov.Ctx.hedge)
  in
  let launch rank _ =
    let order = orders.(rank) in
    match mode with
    | Naive ->
      Async_client.lookup cluster engine ~latency ~timeout ~retries:2 ~order ~t record
    | Tuned ->
      Async_client.lookup cluster engine ~latency ~timeout ~retries:2
        ~deadline:ov.Ctx.deadline ~hedge:(hedge_delay ()) ~breaker ~jitter:jitter_rng
        ~order ~t record
    | Cached ->
      Async_client.lookup cluster engine ~latency ~timeout ~retries:2
        ~deadline:ov.Ctx.deadline ~hedge:(hedge_delay ()) ~breaker ~jitter:jitter_rng
        ?cache:(Option.map (fun c -> (c, rank)) ccache) ~order ~t record
  in
  let draw_rank () =
    if hs > 0. then
      Hotspot.draw key_rng ~focus:hs ~worst:worst_rank
        ~rest:(fun rng -> Dist.zipf_ranks rng ~n:keys ~alpha)
    else Dist.zipf_ranks key_rng ~n:keys ~alpha
  in
  let rec arrivals tau =
    let tau = tau +. Dist.poisson_interarrival arr_rng ~rate:(rate_at tau) in
    if tau < horizon then begin
      let rank = draw_rank () in
      ignore (Engine.schedule_at engine ~time:tau (launch rank));
      arrivals tau
    end
  in
  arrivals 0.;
  ignore (Engine.run engine);
  let net = Cluster.net cluster in
  let per_server = Array.init n (fun i -> Net.messages_received_by net i) in
  let total = Array.fold_left ( + ) 0 per_server in
  let peak = Array.fold_left max 0 per_server in
  let skew =
    if total = 0 then 1.
    else float_of_int peak /. (float_of_int total /. float_of_int n)
  in
  let refresh_sends, hit_pct =
    match ccache with
    | None -> (0, 0.)
    | Some c ->
      let s = Client_cache.stats c in
      ( s.Client_cache.refresh_sends,
        100.
        *. float_of_int
             (s.Client_cache.hits + s.Client_cache.stale_served + s.Client_cache.coalesced)
        /. float_of_int (max 1 tally.lookups) )
  in
  { tally;
    shed = Cluster.messages_shed cluster;
    skew;
    p50 = Metrics.histogram_quantile hist_all 50.;
    p99_crowd = Metrics.histogram_quantile hist_crowd 99.;
    p999_crowd = Metrics.histogram_quantile hist_crowd 99.9;
    msgs_per_lookup =
      float_of_int (tally.sends + refresh_sends) /. float_of_int (max 1 tally.lookups);
    hit_pct }

let run ?(n = 10) ?(h = 100) ?(budget = 200) ?(t = 35) ?(keys = 50) ?(alpha = 1.1)
    ?(rtt_lo = 5.) ?(rtt_hi = 50.) ?(base_rate = 1.0) ?(mttf = 250.) ?(mttr = 20.)
    ?(horizon = 600.) ?(update_every = 10.) ctx =
  let mttf = Option.value ctx.Ctx.mttf ~default:mttf in
  let mttr = Option.value ctx.Ctx.mttr ~default:mttr in
  let horizon = Option.value ctx.Ctx.horizon ~default:horizon in
  let horizon = float_of_int (Ctx.scaled ctx (int_of_float horizon)) in
  let repair = Option.value ctx.Ctx.repair ~default:Repair.default_config in
  let ov = Option.value ctx.Ctx.overload ~default:Ctx.default_overload in
  let cache = ctx.Ctx.cache in
  let timeout = 2. *. rtt_hi in
  (* The cached cell and its two extra columns exist only when the
     context carries a cache config, so the default day table stays
     byte-identical to the cache-free build. *)
  let table =
    Table.create ~title
      ~columns:
        ([ "strategy";
           "client";
           "success %";
           "p50 ms";
           "crowd p99 ms";
           "crowd p999 ms";
           "skew";
           "shed %";
           "hedge %";
           "stale" ]
        @ (if cache = None then [] else [ "msgs/lookup"; "hit %" ]))
  in
  let configs =
    (* Every registered strategy, Fixed-x overridden as in the churn
       drill (it needs x >= t to play at all). *)
    List.map
      (fun config ->
        if Service.kind config = "Fixed" then Service.fixed (t + 5) else config)
      (Service.all_configs ~budget ~n ~h ())
  in
  (* One parallel unit per (strategy, client) cell.  Both cells of a
     strategy share the seed derived from the strategy name, so naive
     and tuned face the identical day: same arrivals, same key
     popularity, same churn, same degradation. *)
  let modes = if cache = None then [ Naive; Tuned ] else [ Naive; Tuned; Cached ] in
  let cells =
    Array.of_list
      (List.concat_map (fun config -> List.map (fun m -> (config, m)) modes) configs)
  in
  (* A day cell is one globally-coupled simulation (shared client
     state: breakers, cache, tallies), so the [--shards] budget folds
     into the cell fan-out rather than striping the simulation
     (DESIGN.md, "Parallelism"). *)
  let measured =
    Runner.map_obs ~workers:(Ctx.workers ctx) ctx ~count:(Array.length cells)
      (fun i ~obs ->
        let config, mode = cells.(i) in
        ( config,
          mode,
          run_cell ctx ~obs ~n ~h ~t ~keys ~alpha ~rtt_lo ~rtt_hi ~timeout ~base_rate
            ~mttf ~mttr ~horizon ~update_every ~repair ~ov ~cache ~mode config ))
  in
  Array.iter
    (fun (config, mode, r) ->
      let pct num den = 100. *. float_of_int num /. float_of_int (max 1 den) in
      Table.add_row table
        ([ Table.S (Service.config_name config);
           Table.S (mode_name mode);
           Table.F (pct r.tally.satisfied r.tally.lookups);
           Table.F r.p50;
           Table.F r.p99_crowd;
           Table.F r.p999_crowd;
           Table.F r.skew;
           Table.F (pct r.shed r.tally.sends);
           Table.F (pct r.tally.hedges r.tally.sends);
           Table.I r.tally.stale ]
        @ (if cache = None then [] else [ Table.F r.msgs_per_lookup; Table.F r.hit_pct ])))
    measured;
  table
