(** Multi-key lookup directory.

    The paper (Section 2) treats the multi-key service as a family of
    independent single-key strategies, and notes that different keys may
    want different strategies: "frequently updated keys require
    strategies with small update costs, while static keys want low
    lookup costs and fairness".  [Directory] packages exactly that: each
    key gets its own {!Service} (and server-side state), created on
    first use with the directory default or a per-key override. *)

open Plookup_store

type t

val create :
  ?seed:int -> ?obs:Plookup_obs.Obs.t -> n:int -> default:Service.config -> unit -> t
(** A directory whose keys are served by [n]-server strategy instances.
    Per-key services derive their seeds from [seed] and the key, so a
    directory is fully deterministic.  [obs], when given, is shared by
    every per-key service, so one registry aggregates the whole
    directory's traffic (per-key networks keep exact per-instance
    accessors regardless). *)

val n : t -> int
val default_config : t -> Service.config

val declare : ?config:Service.config -> t -> string -> unit
(** Pre-register a key, optionally with its own strategy.  Re-declaring
    an existing key is an error ([Invalid_argument]) — the placement
    already lives under its original strategy. *)

val mem : t -> string -> bool
val keys : t -> string list
(** Sorted. *)

val config_of : t -> string -> Service.config option
val service_of : t -> string -> Service.t option
(** Escape hatch for metrics over a single key's placement. *)

val place : t -> key:string -> Entry.t list -> unit
(** Creates the key with the default strategy if it is new. *)

val add : t -> key:string -> Entry.t -> unit
val delete : t -> key:string -> Entry.t -> unit
(** Both create the key (empty) if it is new, mirroring the paper's
    [add]/[delete] semantics on a fresh key. *)

val partial_lookup : ?reachable:(int -> bool) -> t -> key:string -> int -> Lookup_result.t
(** Unknown keys return the empty result ("Else, return {}"). *)

val partial_lookup_pref :
  ?reachable:(int -> bool) ->
  t ->
  key:string ->
  cost:(Entry.t -> float) ->
  int ->
  Lookup_result.t

val total_storage : t -> int
(** Combined storage over every key's servers. *)

val key_count : t -> int
