(** Chord-y: consistent-hashing ring placement with y successors.

    Servers and entries hash onto one ring; an entry lives on the y
    distinct servers that succeed its ring point clockwise (Chord's
    successor-list replication).  Where Hash-y draws y independent hash
    functions — so collisions leave some entries with fewer copies —
    Chord-y always yields exactly [min y n] copies, and a membership
    change only moves entries between ring neighbours.

    This module is also the proof of the pluggable-strategy extension
    point: it registers itself in {!Strategy_registry} and is reachable
    from {!Service}, the CLI and the experiments without any of them
    naming it. *)

open Plookup_store

type t

val create : Cluster.t -> y:int -> t
(** Bind the strategy to the cluster (installing its handler).  [y] is
    clamped to [n].  Raises [Invalid_argument] when [y < 1]. *)

val y : t -> int
val cluster : t -> Cluster.t

val servers_of : t -> Entry.t -> int list
(** The entry's [min y n] successor servers, in ring order. *)

val place : ?budget:int -> t -> Entry.t list -> unit
(** Round-major placement: every entry's first successor gets a copy
    before any entry's second, so a [budget] cut keeps coverage
    maximal. *)

val add : t -> Entry.t -> unit
val delete : t -> Entry.t -> unit
val partial_lookup : ?reachable:(int -> bool) -> t -> int -> Lookup_result.t

val check_invariants : t -> placed:Entry.t list -> (unit, string) result
(** Every server holds exactly the entries whose successor list names
    it, given [placed] is the current live set. *)

module Strategy : Strategy_intf.S with type t = t
