open Plookup
open Plookup_store
module Engine = Plookup_sim.Engine
module Net = Plookup_net.Net

(* Hand-built cluster with per-server entry lists and a plain lookup
   handler, mirroring test_probe. *)
let manual_cluster ~n placement =
  let cluster = Cluster.create ~seed:19 ~n () in
  List.iteri
    (fun server ids ->
      List.iter
        (fun i -> ignore (Server_store.add (Cluster.store cluster server) (Entry.v i)))
        ids)
    placement;
  Net.set_handler (Cluster.net cluster) (fun dst _src msg ->
      match (msg : Msg.t) with
      | Msg.Lookup t ->
        Msg.Entries
          (Server_store.random_pick (Cluster.store cluster dst) (Cluster.rng cluster) t)
      | _ -> Msg.Ack);
  cluster

let run_lookup ?wave ?(timeout = 100.) ?(latency = fun () -> 10.) ~order ~t cluster =
  let engine = Engine.create () in
  let outcome = ref None in
  Async_client.lookup cluster engine ~latency ~timeout ~order ?wave ~t (fun o ->
      outcome := Some o);
  ignore (Engine.run engine);
  match !outcome with Some o -> o | None -> Alcotest.fail "lookup never completed"

let test_sequential_latency_is_sum () =
  (* Two disjoint servers needed for t=4; sequential: 2 round trips of
     2 x 10ms each. *)
  let cluster = manual_cluster ~n:3 [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ] in
  let o = run_lookup ~order:[ 0; 1; 2 ] ~t:4 cluster in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied o.Async_client.result);
  Helpers.check_int "two contacts" 2 o.Async_client.result.Lookup_result.servers_contacted;
  Helpers.close "40ms = 2 sequential round trips" 40. (Async_client.elapsed o)

let test_parallel_wave_latency_is_max () =
  let cluster = manual_cluster ~n:3 [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ] in
  let o = run_lookup ~wave:2 ~order:[ 0; 1; 2 ] ~t:4 cluster in
  Helpers.check_int "two contacts" 2 o.Async_client.result.Lookup_result.servers_contacted;
  Helpers.close "20ms = 1 concurrent round trip" 20. (Async_client.elapsed o)

let test_timeout_masks_failure () =
  (* Server 0 is down: its contact times out after 50ms, then server 1
     answers in 20ms. *)
  let cluster = manual_cluster ~n:2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  Cluster.fail cluster 0;
  let o = run_lookup ~timeout:50. ~order:[ 0; 1 ] ~t:2 cluster in
  Alcotest.(check bool) "satisfied despite failure" true
    (Lookup_result.satisfied o.Async_client.result);
  Helpers.check_int "one timeout" 1 o.Async_client.timeouts;
  Helpers.close "70ms = timeout + retry round trip" 70. (Async_client.elapsed o)

let test_exhausted_order_reports_short () =
  let cluster = manual_cluster ~n:2 [ [ 0 ]; [ 0 ] ] in
  let o = run_lookup ~order:[ 0; 1 ] ~t:5 cluster in
  Alcotest.(check bool) "unsatisfied" false (Lookup_result.satisfied o.Async_client.result);
  Helpers.check_int "found the one distinct entry" 1
    (Lookup_result.count o.Async_client.result)

let test_stops_as_soon_as_satisfied () =
  let cluster = manual_cluster ~n:3 [ [ 0; 1; 2 ]; [ 3 ]; [ 4 ] ] in
  let o = run_lookup ~order:[ 0; 1; 2 ] ~t:3 cluster in
  Helpers.check_int "first server sufficed" 1
    o.Async_client.result.Lookup_result.servers_contacted;
  Helpers.close "one round trip" 20. (Async_client.elapsed o)

let test_truncates_to_target () =
  let cluster = manual_cluster ~n:2 [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ] ] in
  let o = run_lookup ~wave:2 ~order:[ 0; 1 ] ~t:5 cluster in
  Helpers.check_int "exactly t" 5 (Lookup_result.count o.Async_client.result)

let test_callback_fires_once () =
  let cluster = manual_cluster ~n:3 [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  let engine = Engine.create () in
  let calls = ref 0 in
  Async_client.lookup cluster engine
    ~latency:(fun () -> 5.)
    ~timeout:100. ~order:[ 0; 1; 2 ] ~wave:3 ~t:2
    (fun _ -> incr calls);
  ignore (Engine.run engine);
  Helpers.check_int "exactly one completion" 1 !calls

let test_late_reply_dropped () =
  (* Latency above the timeout: the reply arrives after the client gave
     up on that contact; it must not double-complete or corrupt state. *)
  let cluster = manual_cluster ~n:2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  (* Draw order is chronological: request to server 0 at t=0 (40ms,
     outliving the 30ms timeout), request to server 1 at t=30 (5ms), its
     reply at t=35 (5ms, arriving t=40), then server 0's late reply. *)
  let latencies = ref [ 40.; 5.; 5.; 5. ] in
  let latency () =
    match !latencies with
    | l :: rest ->
      latencies := rest;
      l
    | [] -> 5.
  in
  let o = run_lookup ~timeout:30. ~latency ~order:[ 0; 1 ] ~t:2 cluster in
  Alcotest.(check bool) "eventually satisfied" true
    (Lookup_result.satisfied o.Async_client.result);
  Helpers.check_int "first contact timed out" 1 o.Async_client.timeouts

let test_random_order_visits_everyone_if_needed () =
  let cluster = manual_cluster ~n:4 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] in
  let engine = Engine.create () in
  let outcome = ref None in
  Async_client.lookup_random_order cluster engine
    ~latency:(fun () -> 1.)
    ~timeout:50. ~t:4
    (fun o -> outcome := Some o);
  ignore (Engine.run engine);
  match !outcome with
  | Some o ->
    Helpers.check_int "all four" 4 o.Async_client.result.Lookup_result.servers_contacted
  | None -> Alcotest.fail "never completed"

let test_validation () =
  let cluster = manual_cluster ~n:1 [ [ 0 ] ] in
  let engine = Engine.create () in
  Alcotest.check_raises "t = 0" (Invalid_argument "Async_client.lookup: t must be positive")
    (fun () ->
      Async_client.lookup cluster engine
        ~latency:(fun () -> 1.)
        ~timeout:1. ~order:[ 0 ] ~t:0 ignore)

let prop_async_agrees_with_sync_on_answers =
  Helpers.qcheck ~count:60 "async lookups return live distinct entries, at most t"
    QCheck2.Gen.(triple (int_range 1 10) (int_range 1 3) int)
    (fun (t, wave, _seed) ->
      let cluster = manual_cluster ~n:3 [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 6; 7 ] ] in
      let o = run_lookup ~wave ~order:[ 0; 1; 2 ] ~t cluster in
      let ids = Helpers.sorted_ids o.Async_client.result.Lookup_result.entries in
      List.length ids <= t
      && List.length (List.sort_uniq compare ids) = List.length ids
      && List.for_all (fun id -> id >= 0 && id <= 7) ids)

let () =
  Helpers.run "async_client"
    [ ( "async_client",
        [ Alcotest.test_case "sequential sum" `Quick test_sequential_latency_is_sum;
          Alcotest.test_case "parallel max" `Quick test_parallel_wave_latency_is_max;
          Alcotest.test_case "timeout masking" `Quick test_timeout_masks_failure;
          Alcotest.test_case "exhausted order" `Quick test_exhausted_order_reports_short;
          Alcotest.test_case "stops when satisfied" `Quick test_stops_as_soon_as_satisfied;
          Alcotest.test_case "truncates" `Quick test_truncates_to_target;
          Alcotest.test_case "fires once" `Quick test_callback_fires_once;
          Alcotest.test_case "late reply dropped" `Quick test_late_reply_dropped;
          Alcotest.test_case "random order" `Quick test_random_order_visits_everyone_if_needed;
          Alcotest.test_case "validation" `Quick test_validation;
          prop_async_agrees_with_sync_on_answers ] ) ]
