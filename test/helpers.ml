(* Shared helpers for the test suite. *)

let close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f (eps %.2g)" msg expected actual eps

let roughly ?(rel = 0.05) msg expected actual =
  let tolerance = Float.abs expected *. rel in
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %.4f (+/- %.1f%%), got %.4f" msg expected (100. *. rel)
      actual

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let sorted_ids entries =
  List.sort compare (List.map Plookup_store.Entry.id entries)

let entries n = Plookup_store.Entry.Gen.batch (Plookup_store.Entry.Gen.create ()) n

(* A service with h entries placed, plus the entry list. *)
let placed_service ?(seed = 7) ~n ~h config =
  let service = Plookup.Service.create ~seed ~n config in
  let batch = entries h in
  Plookup.Service.place service batch;
  (service, batch)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let run name suites = Alcotest.run ~verbose:false name suites
