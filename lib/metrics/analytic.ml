let check_nh ~n ~h =
  if n <= 0 || h <= 0 then invalid_arg "Analytic: n and h must be positive"

let storage config ~n ~h =
  check_nh ~n ~h;
  (* Dispatched through the registry so a newly registered strategy's
     Table-1 formula is picked up without this module changing. *)
  Plookup.Service.analytic_storage config ~n ~h

let round_robin_lookup_cost ~n ~h ~y ~t =
  check_nh ~n ~h;
  if y <= 0 || t <= 0 then invalid_arg "Analytic.round_robin_lookup_cost";
  (* ceil(t*n / (y*h)) in exact integer arithmetic *)
  float_of_int (((t * n) + (y * h) - 1) / (y * h))

let full_replication_lookup_cost = 1.

let fixed_lookup_cost ~x ~t = if t <= x then Some 1. else None

let coverage_full ~h = float_of_int h
let coverage_fixed ~x ~h = float_of_int (min x h)

let coverage_random_server ~n ~h ~x =
  check_nh ~n ~h;
  let fh = float_of_int h in
  fh *. (1. -. ((1. -. (float_of_int x /. fh)) ** float_of_int n))

let coverage_with_budget ~h ~total_storage = float_of_int (min total_storage h)

let fault_tolerance_full ~n = n - 1
let fault_tolerance_fixed ~n ~x ~t = if t <= x then n - 1 else -1

let fault_tolerance_round_robin ~n ~h ~y ~t =
  check_nh ~n ~h;
  let needed = ((t * n) + h - 1) / h in
  (* The paper's n - ceil(tn/h) + y - 1, capped: at least one server must
     survive, and a lone survivor already holds y*h/n entries. *)
  min (n - 1) (n - needed + y - 1)

let hash_expected_entries_per_server ~n ~h ~y =
  check_nh ~n ~h;
  float_of_int h *. (1. -. ((1. -. (1. /. float_of_int n)) ** float_of_int y))

let update_cost_fixed ~n ~h ~x =
  check_nh ~n ~h;
  1. +. (float_of_int x /. float_of_int h *. float_of_int n)

let update_cost_hash ~y = 1. +. float_of_int y

let optimal_hash_y ~n ~h ~t =
  check_nh ~n ~h;
  min n (max 1 (((t * n) + h - 1) / h))

let optimal_hash_y_collision_aware ~n ~h ~t =
  check_nh ~n ~h;
  let rec go y =
    if y >= n then n
    else if hash_expected_entries_per_server ~n ~h ~y >= float_of_int t then y
    else go (y + 1)
  in
  go 1

let crossover_equal_cost ~n ~h ~x ~y =
  compare (update_cost_fixed ~n ~h ~x) (update_cost_hash ~y)
