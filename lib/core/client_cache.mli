(** Client-side read cache: a bounded, TTL'd LRU over lookup results
    plus singleflight coalescing of concurrent probes for the same key.

    The flash-crowd population of the production-day experiment sends
    many near-simultaneous lookups for the same few Zipf-popular keys;
    every one of them fans out its own probe sequence.  A read cache
    turns the repeats into O(1) local hits at a bounded staleness cost
    (an entry deleted on the servers may be served from cache for up to
    [ttl] time units), and {e singleflight} turns the remaining
    simultaneous misses into one shared probe: the first lookup for a
    key becomes the {e leader} and actually contacts servers; lookups
    arriving while that probe is in flight become {e waiters} and all
    receive the leader's result when it lands.

    The cache is a plain client-local data structure driven by the
    caller's clock ({!Plookup_sim.Engine} time in the simulator): it
    owns no engine events, threads or draws, so attaching one to
    {!Async_client.lookup} changes nothing about the random sequence of
    the probes that do run.

    {2 Freshness}

    An entry inserted at time [now] is {e fresh} until [now + ttl] and —
    when [swr > 0] — {e stale-but-servable} until [now + ttl + swr]
    (stale-while-revalidate: the stale result is served immediately and
    the serving lookup refreshes the entry in the background).  Beyond
    that the entry is dead and the lookup is a miss.  A completed probe
    always {e replaces} whatever the cache held for its key, so a client
    that observes a newer value refreshes its cache on the spot;
    {!invalidate} drops a key explicitly.

    A failed probe (short of its target, or one that gave up on its
    deadline) is negative-cached for [negative_ttl] time units when that
    is positive — a population that keeps asking for an unsatisfiable
    key stops hammering the servers for it — and simply not cached
    otherwise.

    {2 Instrumentation}

    When built with [?obs], the cache mirrors its counters into the
    metrics registry as [client.cache.hits], [client.cache.misses],
    [client.cache.stale_served], [client.cache.coalesced] and
    [client.cache.evictions], and emits a [Mark] span per served hit
    when tracing is enabled. *)

type t

type verdict =
  | Hit of Lookup_result.t
      (** Fresh (or fresh-negative) entry: serve it, contact nothing. *)
  | Stale of Lookup_result.t
      (** Expired but inside the [swr] window, no refresh in flight yet:
          serve it now {e and} probe in the background, completing with
          {!complete} [~refresh:true]. *)
  | Stale_wait of Lookup_result.t
      (** Expired but inside the [swr] window, refresh already in
          flight: serve it now, contact nothing. *)
  | Join
      (** Miss, but a probe for this key is already in flight: the
          [waiter] callback was enqueued and fires with the leader's
          result when it completes.  Contact nothing. *)
  | Lead
      (** Miss: probe for real and call {!complete} [~refresh:false]
          with the outcome (exactly once, even on failure — waiters are
          parked until it). *)

val create :
  ?obs:Plookup_obs.Obs.t ->
  ?ttl:float ->
  ?swr:float ->
  ?negative_ttl:float ->
  capacity:int ->
  unit ->
  t
(** An empty cache holding at most [capacity] entries, least recently
    used evicted first.  [ttl] defaults to 100.0 time units; [swr] and
    [negative_ttl] default to 0 (both windows disabled).  Raises
    [Invalid_argument] on [capacity < 1], [ttl <= 0], or a negative
    [swr]/[negative_ttl]. *)

val lookup :
  t -> key:int -> now:float -> waiter:(Lookup_result.t -> now:float -> unit) -> verdict
(** Consult the cache for [key] at time [now].  [waiter] is retained
    only on {!Join} (it must be safe to call at any later [now]); every
    other verdict ignores it.  {!Lead} and {!Stale} make the caller
    responsible for a matching {!complete}. *)

val complete : t -> key:int -> now:float -> ok:bool -> attempts:int -> Lookup_result.t -> unit
(** The leader's (or background refresher's) probe finished.  [ok]
    results are cached fresh-from-[now]; failed ones are
    negative-cached when [negative_ttl > 0], else the previous entry
    (if any) is left in place.  Either way every parked waiter for
    [key] receives this result, in arrival order.  [attempts] is the
    probe's request count, accumulated into {!stats}.[refresh_sends]
    for background refreshes so message accounting can see traffic that
    reaches no caller. *)

val invalidate : t -> key:int -> unit
(** Drop [key]'s cached entry (waiters of an in-flight probe are kept —
    they get the in-flight result). *)

val cardinal : t -> int
(** Entries currently cached — never exceeds [capacity]. *)

val capacity : t -> int

val ttl : t -> float

type stats = {
  hits : int;  (** lookups served from a fresh entry *)
  negative_hits : int;  (** the subset of [hits] served from a negative entry *)
  misses : int;  (** lookups that had to probe ({!Lead}) or wait ({!Join}) *)
  stale_served : int;  (** lookups served a stale result inside the [swr] window *)
  coalesced : int;  (** lookups that joined another lookup's in-flight probe *)
  evictions : int;  (** entries dropped by the LRU capacity bound *)
  refreshes : int;  (** background refresh probes launched ({!Stale}) *)
  refresh_sends : int;  (** requests those refreshes sent (their [attempts] sum) *)
}

val stats : t -> stats
