(** A single server's local entry store.

    Every strategy's per-server state is a set of entries that must
    support the hot operation of the whole evaluation: "each contacted
    server returns t randomly selected entries stored on the server" —
    i.e. a uniform k-subset draw.  The store is an indexed hash set
    (array + entry→slot table) so membership, insert, delete and uniform
    random selection are all O(1) (O(k) for a k-subset). *)

type t

val create : unit -> t
val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> Entry.t -> bool

val add : t -> Entry.t -> bool
(** [true] if the entry was absent and has been inserted; storing an
    entry twice is a no-op ("if two hash functions assign an entry to the
    same server, the entry is stored only once"). *)

val remove : t -> Entry.t -> bool
(** [true] if the entry was present and has been removed. *)

val clear : t -> unit

val random_pick : t -> Plookup_util.Rng.t -> int -> Entry.t list
(** [random_pick t rng k] is [min k (cardinal t)] distinct entries chosen
    uniformly — the paper's per-server lookup answer: "t randomly
    selected entries stored on the server or all the entries if the total
    is less than t".  The draw runs over a scratch buffer owned by the
    store ({!Plookup_util.Rng.sample_indices_into}), so the only
    allocation is the returned list. *)

val random_pick_into : t -> Plookup_util.Rng.t -> int -> Entry.t array -> int
(** Allocation-free {!random_pick} for hot paths: writes the sample into
    [buf.(0 .. m-1)] and returns [m = min k (cardinal t)].  Consumes the
    same generator draws as {!random_pick}, so the two are
    interchangeable without perturbing seeded runs.  Raises
    [Invalid_argument] when [buf] cannot hold [m] entries. *)

val random_one : t -> Plookup_util.Rng.t -> Entry.t option
val to_list : t -> Entry.t list
(** Unspecified order. *)

val iter : (Entry.t -> unit) -> t -> unit
val fold : (Entry.t -> 'a -> 'a) -> t -> 'a -> 'a
val ids : t -> int list
val snapshot_bitset : t -> capacity:int -> Plookup_util.Bitset.t
(** Entry ids as a bitset; ids must be below [capacity]. *)

val pp : Format.formatter -> t -> unit
