(** Discrete-event simulation engine.

    Drives the dynamic-update experiments of Sections 5–6: the workload
    generator schedules timestamped add/delete actions, the engine fires
    them in order, and handlers may schedule further events (e.g. message
    deliveries with latency).

    The clock only moves when an event fires; there is no wall-clock
    component anywhere, so runs are fully deterministic. *)

type t

type event_id
(** Handle for cancellation — the scheduled event's own heap node
    (see {!Event_queue.handle}), so {!cancel} is O(1) and engines keep
    no side tables. *)

val create : unit -> t

val now : t -> float
(** Current simulation time; 0 before any event has fired. *)

val schedule_at : t -> time:float -> (t -> unit) -> event_id
(** Fire the action when the clock reaches [time].  Scheduling in the
    past (before [now]) raises [Invalid_argument]. *)

val schedule_after : t -> delay:float -> (t -> unit) -> event_id
(** [schedule_at ~time:(now t +. delay)].  Negative delays raise. *)

val cancel : t -> event_id -> unit
(** Cancelled events are skipped when popped; cancelling twice, or after
    the event has fired, is a no-op (in particular it does not perturb
    {!pending}). *)

val pending : t -> int
(** Events scheduled and not yet fired or cancelled. *)

val step : t -> bool
(** Fire the single earliest event.  [false] when the queue is empty. *)

val run : ?max_events:int -> ?until:float -> t -> int
(** Fire events until the queue is empty, [max_events] have fired, or the
    next *live* event is strictly after [until] (cancelled events never
    fire and never count against the horizon).  Returns the number of
    events fired.  When stopped by [until], the clock is advanced to
    [until]. *)

val reset : t -> unit
(** Drop all pending events and rewind the clock to 0.  The event
    queue's capacity is kept, so a reused engine does not re-grow its
    heap from scratch. *)
