open Plookup_store
open Plookup_util
module Net = Plookup_net.Net

type t = { cluster : Cluster.t; y : int }

let hash_server t ~salt e =
  Rng.hash_in_range ~seed:(Cluster.seed t.cluster) ~salt ~value:(Entry.id e)
    (Cluster.n t.cluster)

let servers_of t e =
  let rec go salt acc =
    if salt > t.y then List.rev acc
    else begin
      let s = hash_server t ~salt e in
      go (salt + 1) (if List.mem s acc then acc else s :: acc)
    end
  in
  go 1 []

let send_store t ~src ~dst e =
  ignore (Net.send (Cluster.net t.cluster) ~src:(Net.Server src) ~dst (Msg.Store e))

let send_remove t ~src ~dst e =
  ignore (Net.send (Cluster.net t.cluster) ~src:(Net.Server src) ~dst (Msg.Remove e))

let handler t dst _src msg : Msg.reply =
  let local = Cluster.store t.cluster dst in
  match (msg : Msg.t) with
  | Msg.Place _ ->
    (* Distribution is driven from [place] below (budget support); the
       request itself reaches one server. *)
    Msg.Ack
  | Msg.Add e ->
    List.iter (fun s -> send_store t ~src:dst ~dst:s e) (servers_of t e);
    Msg.Ack
  | Msg.Delete e ->
    List.iter (fun s -> send_remove t ~src:dst ~dst:s e) (servers_of t e);
    Msg.Ack
  | Msg.Store e ->
    ignore (Server_store.add local e);
    Msg.Ack
  | Msg.Remove e ->
    ignore (Server_store.remove local e);
    Msg.Ack
  | Msg.Lookup target ->
    Msg.Entries (Server_store.random_pick local (Cluster.rng t.cluster) target)
  | Msg.Store_batch _ | Msg.Add_sampled _ | Msg.Remove_counted _ | Msg.Fetch_candidate _
  | Msg.Sync_add _ | Msg.Sync_delete _ | Msg.Sync_state | Msg.Digest_request _
  | Msg.Sync_fix _ | Msg.Hint _ | Msg.Digest_pull | Msg.Repair_store _ ->
    invalid_arg "Hash_scheme: unexpected message"

let create cluster ~y =
  if y < 1 then invalid_arg "Hash_scheme.create: y must be at least 1";
  let t = { cluster; y } in
  Net.set_handler (Cluster.net cluster) (handler t);
  t

let y t = t.y
let cluster t = t.cluster

let place ?budget t entries =
  let entries = Entry.dedup entries in
  match Cluster.random_up_server t.cluster with
  | None -> ()
  | Some s ->
    ignore (Net.send (Cluster.net t.cluster) ~src:Net.Client ~dst:s (Msg.Place entries));
    let arr = Array.of_list entries in
    let budget = match budget with None -> max_int | Some b -> b in
    let spent = ref 0 in
    (* Round-major: all first copies before any second copy, so a budget
       cut keeps coverage maximal (Fig. 6's "keep a subset"). *)
    for salt = 1 to t.y do
      Array.iter
        (fun e ->
          if !spent < budget then begin
            let dst = hash_server t ~salt e in
            (* Count the message even when it collides with an earlier
               hash function — the receiver stores at most one copy. *)
            send_store t ~src:s ~dst e;
            incr spent
          end)
        arr
    done

let to_random_server t msg =
  match Cluster.random_up_server t.cluster with
  | None -> ()
  | Some s -> ignore (Net.send (Cluster.net t.cluster) ~src:Net.Client ~dst:s msg)

let add t e = to_random_server t (Msg.Add e)
let delete t e = to_random_server t (Msg.Delete e)
let partial_lookup ?reachable t target = Probe.random_order ?reachable t.cluster ~t:target

let check_invariants t ~placed =
  let n = Cluster.n t.cluster in
  let expected = Array.init n (fun _ -> Hashtbl.create 16) in
  List.iter
    (fun e ->
      List.iter (fun s -> Hashtbl.replace expected.(s) (Entry.id e) ()) (servers_of t e))
    placed;
  let ok = ref (Ok ()) in
  let fail fmt = Format.kasprintf (fun s -> if !ok = Ok () then ok := Error s) fmt in
  for s = 0 to n - 1 do
    let store = Cluster.store t.cluster s in
    Server_store.iter
      (fun e ->
        if not (Hashtbl.mem expected.(s) (Entry.id e)) then
          fail "server %d stores %s not hashed to it" s (Entry.to_string e))
      store;
    Hashtbl.iter
      (fun id () ->
        if not (Server_store.mem store (Entry.v id)) then
          fail "server %d is missing entry v%d" s id)
      expected.(s)
  done;
  !ok
