open Plookup
module Unfairness = Plookup_metrics.Unfairness

let measure ?(t = 5) ?(lookups = 4000) config ~n ~h =
  let service, live = Helpers.placed_service ~n ~h config in
  Unfairness.of_instance service ~live ~t ~lookups

let test_full_replication_fair () =
  (* Only Monte-Carlo noise remains: sqrt((1-p)/(m p)) ~ 0.05 here. *)
  let u = measure ~t:5 ~lookups:20_000 Service.full_replication ~n:4 ~h:20 in
  Alcotest.(check bool) "near zero" true (u < 0.1)

let test_round_robin_fair () =
  let u = measure ~t:5 ~lookups:20_000 (Service.round_robin 2) ~n:4 ~h:20 in
  Alcotest.(check bool) "near zero" true (u < 0.12)

let test_fixed_unfair () =
  (* Fixed-5 of 20 entries, t=5: tracked entries returned always, the
     other 15 never.  U = sqrt(15/5) = sqrt(3). *)
  let u = measure ~t:5 ~lookups:5_000 (Service.fixed 5) ~n:4 ~h:20 in
  Helpers.roughly ~rel:0.05 "sqrt(h/x - 1)" (sqrt 3.) u

let test_ordering_matches_paper () =
  (* Static case (Fig. 9 discussion): Fixed is markedly worse than
     RandomServer at equal storage (the paper says "an order of
     magnitude"; under Eq. 1 the gap at t=35 is a robust factor ~2.3 —
     see EXPERIMENTS.md on the paper's fig-9 normalization). *)
  let u_fixed = measure ~t:35 ~lookups:3_000 (Service.fixed 20) ~n:10 ~h:100 in
  let u_random = measure ~t:35 ~lookups:3_000 (Service.random_server 20) ~n:10 ~h:100 in
  Alcotest.(check bool)
    (Printf.sprintf "fixed (%.2f) >> randomserver (%.2f)" u_fixed u_random)
    true
    (u_fixed > 1.8 *. u_random)

let test_fig8_randomserver1_instances () =
  (* Fig. 8: RandomServer-1 with 2 servers and 2 entries has four equally
     likely instances; two are perfectly fair, two maximally unfair, so
     the strategy unfairness is ~1/2. *)
  let mean, _ =
    Unfairness.of_strategy ~seed:11 ~n:2 ~entries:2 ~config:(Service.random_server 1) ~t:1
      ~instances:400 ~lookups_per_instance:400 ()
  in
  Helpers.roughly ~rel:0.15 "strategy unfairness ~ 0.5" 0.5 mean

let test_missing_entries_floor () =
  (* Entries beyond the coverage contribute p=0: Fixed-2 of 10 entries at
     t=2 has U = sqrt(8/2) = 2. *)
  let u = measure ~t:2 ~lookups:4_000 (Service.fixed 2) ~n:3 ~h:10 in
  Helpers.roughly ~rel:0.05 "floor" 2. u

let test_validation () =
  let service, live = Helpers.placed_service ~n:2 ~h:4 Service.full_replication in
  Alcotest.check_raises "t = 0"
    (Invalid_argument "Unfairness.of_instance: t must be positive") (fun () ->
      ignore (Unfairness.of_instance service ~live ~t:0 ~lookups:10));
  Alcotest.check_raises "no lookups"
    (Invalid_argument "Unfairness.of_instance: lookups must be positive") (fun () ->
      ignore (Unfairness.of_instance service ~live ~t:1 ~lookups:0));
  Alcotest.check_raises "no live entries"
    (Invalid_argument "Unfairness.of_instance: no live entries") (fun () ->
      ignore (Unfairness.of_instance service ~live:[] ~t:1 ~lookups:10))

let prop_unfairness_nonnegative =
  Helpers.qcheck ~count:30 "unfairness is non-negative"
    QCheck2.Gen.(pair (int_range 1 4) (int_range 2 10))
    (fun (y, t) ->
      let service, live = Helpers.placed_service ~n:5 ~h:20 (Service.hash y) in
      Unfairness.of_instance service ~live ~t ~lookups:200 >= 0.)

let () =
  Helpers.run "unfairness"
    [ ( "unfairness",
        [ Alcotest.test_case "full replication fair" `Slow test_full_replication_fair;
          Alcotest.test_case "round robin fair" `Slow test_round_robin_fair;
          Alcotest.test_case "fixed unfair" `Quick test_fixed_unfair;
          Alcotest.test_case "paper ordering" `Quick test_ordering_matches_paper;
          Alcotest.test_case "fig 8 instances" `Slow test_fig8_randomserver1_instances;
          Alcotest.test_case "missing entries floor" `Quick test_missing_entries_floor;
          Alcotest.test_case "validation" `Quick test_validation;
          prop_unfairness_nonnegative ] ) ]
