open Plookup_store
module Net = Plookup_net.Net

type t = { cluster : Cluster.t; x : int }

let take k entries =
  let rec go k = function
    | [] -> []
    | _ when k = 0 -> []
    | e :: rest -> e :: go (k - 1) rest
  in
  go k entries

let handler t dst _src msg : Msg.reply =
  let net = Cluster.net t.cluster in
  let local = Cluster.store t.cluster dst in
  match (msg : Msg.t) with
  | Msg.Place entries ->
    (* Broadcast only the first x of the h entries. *)
    ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.Store_batch (take t.x entries)));
    Msg.Ack
  | Msg.Add e ->
    (* Selective broadcast: only while below x, and only for new ids. *)
    if Server_store.cardinal local < t.x && not (Server_store.mem local e) then
      ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.Store e));
    Msg.Ack
  | Msg.Delete e ->
    if Server_store.mem local e then
      ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.Remove e));
    Msg.Ack
  | Msg.Store_batch entries ->
    Server_store.clear local;
    List.iter (fun e -> ignore (Server_store.add local e)) entries;
    Msg.Ack
  | Msg.Store e ->
    ignore (Server_store.add local e);
    Msg.Ack
  | Msg.Remove e ->
    ignore (Server_store.remove local e);
    Msg.Ack
  | Msg.Lookup target ->
    Msg.Entries (Server_store.random_pick local (Cluster.rng t.cluster) target)
  | Msg.Add_sampled _ | Msg.Remove_counted _ | Msg.Fetch_candidate _ | Msg.Sync_add _
  | Msg.Sync_delete _ | Msg.Sync_state | Msg.Digest_request _ | Msg.Sync_fix _
  | Msg.Hint _ | Msg.Digest_pull | Msg.Repair_store _ ->
    invalid_arg "Fixed: unexpected message"

let create cluster ~x =
  if x <= 0 then invalid_arg "Fixed.create: x must be positive";
  let t = { cluster; x } in
  Net.set_handler (Cluster.net cluster) (handler t);
  t

let x t = t.x
let cluster t = t.cluster

let to_random_server t msg =
  match Cluster.random_up_server t.cluster with
  | None -> ()
  | Some s -> ignore (Net.send (Cluster.net t.cluster) ~src:Net.Client ~dst:s msg)

let place t entries = to_random_server t (Msg.Place (Entry.dedup entries))
let add t e = to_random_server t (Msg.Add e)
let delete t e = to_random_server t (Msg.Delete e)
let partial_lookup ?reachable t target = Probe.single ?reachable t.cluster ~t:target
