The CLI lists every reproducible experiment in paper order:

  $ ../../bin/plookup_cli.exe list
  table1   Table 1: storage cost for managing h entries on n servers
  fig4     Fig 4: lookup cost vs target answer size (fixed storage budget)
  fig6     Fig 6: coverage vs total storage (100 entries on 10 servers)
  fig7     Fig 7: fault tolerance vs target answer size (storage budget 200)
  fig9     Fig 9: unfairness vs total storage (t=35, 100 entries, 10 servers)
  fig12    Fig 12: Fixed-x lookup failure time vs cushion size (t=15, h=100)
  fig13    Fig 13: RandomServer-x unfairness vs number of updates (x=20)
  fig14    Fig 14: update overhead, Fixed-50 vs Hash-y (t=40, 20000 updates)
  table2   Table 2: strategy scorecard (measured, h=100 n=10 budget=200 t=35)
  hotspot  Extension: popular-key hot spots, key partitioning vs partial lookup
  churn    Extension: self-healing under churn, repair off vs on (mttf=50, mttr=50, t=40)
  latency  Extension: lookup latency on a simulated network (Async_client)
  loss     Extension: lookup cost and coverage vs message loss (retrying Async_client)
  day      Extension: a production day under overload, naive vs tail-tolerant clients (flash crowd, gray failure, churn)

Unknown experiments are rejected with the valid names:

  $ ../../bin/plookup_cli.exe run fig99
  plookup: unknown experiment "fig99"; try one of: table1, fig4, fig6, fig7, fig9, fig12, fig13, fig14, table2, hotspot, churn, latency, loss, day
  [124]

Table 1 is deterministic given the seed (timing line stripped):

  $ ../../bin/plookup_cli.exe run table1 --scale 0.2 --csv | head -7
  strategy,formula,analytic,measured (mean)
  FullReplication,h*n,1000.00,1000.00
  Fixed-20,x*n,200.00,200.00
  RandomServer-20,x*n,200.00,200.00
  RoundRobin-2,h*y,200.00,200.00
  Hash-2,h*n*(1-(1-1/n)^y),190.00,191.90
  Chord-2,"h*min(y,n)",200.00,200.00

The churn experiment's knobs are reachable from the CLI; with the
repair layer on, every strategy heals back to full success and zero
stale reads (timing line stripped by head):

  $ ../../bin/plookup_cli.exe run churn --horizon 200 --grace 5 --repair-period 5 --csv | head -13
  strategy,repair,success %,stale reads,below-t %,mean cost,restore time,repair msgs
  FullReplication,off,38.00,286,0.00,1.00,-,0
  FullReplication,full,100.00,0,0.00,1.00,-,517
  Fixed-45,off,53.00,249,0.00,1.00,-,0
  Fixed-45,full,100.00,0,0.00,1.00,-,378
  RandomServer-20,off,31.50,334,0.00,3.00,-,0
  RandomServer-20,full,100.00,0,0.00,1.50,6.61,930
  RoundRobin-2,off,100.00,0,0.00,2.27,-,0
  RoundRobin-2,full,100.00,0,0.00,1.90,8.01,741
  Hash-2,off,42.00,266,3.00,2.93,-,0
  Hash-2,full,100.00,0,0.00,1.84,7.46,1101
  Chord-2,off,23.00,431,9.50,2.99,-,0
  Chord-2,full,100.00,0,0.00,1.83,6.82,1144

The registered strategies — including the self-registered Chord ring —
are listed straight from the registry, with parameter meaning and
Table-1 storage formula:

  $ ../../bin/plookup_cli.exe strategies --csv
  strategy,spelling,parameter,storage,notes
  FullReplication,full,-,h*n,
  Fixed,fixed-X,X = entries replicated on every server,x*n,
  RandomServer,randomserver-X,X = random entries kept per server,x*n,
  RandomServerReplacing,randomserverreplacing-X,X = random entries kept per server (replaces on delete),x*n,ablation
  RoundRobin,roundrobin-Y,Y = consecutive copies per entry,h*y,
  RoundRobinHA,roundrobinha-YxK,"Y = consecutive copies per entry, K = coordinator replicas",h*y,ablation
  Hash,hash-Y,Y = hash functions placing each entry,h*n*(1-(1-1/n)^y),
  Chord,chord-Y,Y = successors holding each entry on the ring,"h*min(y,n)",
  DxHash,dxhash-Y,Y = copies per entry along the pseudo-random probe sequence,"h*min(y,n)",
  MultiProbe,multiprobe-YxK,"Y = replicas on consecutive ring successors, K = probe hashes per key","h*min(y,n)",

A strategy typo gets a did-you-mean suggestion plus the accepted
spellings:

  $ ../../bin/plookup_cli.exe demo chrod-2
  plookup: unknown strategy "chrod-2" (did you mean "chord"?); known: full, fixed-X, randomserver-X, randomserverreplacing-X, roundrobin-Y, roundrobinha-YxK, hash-Y, chord-Y, dxhash-Y, multiprobe-YxK
  [124]

Malformed parameters explain the expected form:

  $ ../../bin/plookup_cli.exe demo roundrobinha-2
  plookup: strategy "roundrobinha-2": RoundRobinHA expects the form roundrobinha-YxK where Y = consecutive copies per entry, K = coordinator replicas
  [124]

The Chord strategy is parseable and runs end to end:

  $ ../../bin/plookup_cli.exe demo chord-2 --servers 3 --entries 6 --t 2 --seed 1
  cluster n=3 seed=1
    server 0: {v0, v1, v4, v5}
    server 1: {v2, v3}
    server 2: {v0, v1, v2, v3, v4, v5}
  lookup(target=2): 2 entries from 1 servers
  returned: v2, v3
  storage cost: 12 entries, coverage: 6

A bad repair mode is rejected up front:

  $ ../../bin/plookup_cli.exe run churn --repair bogus
  plookup: unknown repair mode "bogus" (expected off, sync or full)
  [124]

The demo places and looks up deterministically:

  $ ../../bin/plookup_cli.exe demo fixed-3 --servers 2 --entries 5 --t 2 --seed 1
  cluster n=2 seed=1
    server 0: {v0, v1, v2}
    server 1: {v0, v1, v2}
  lookup(target=2): 2 entries from 1 servers
  returned: v1, v2
  storage cost: 6 entries, coverage: 3

The trace subcommand re-runs an experiment with tracing on and streams
typed spans as JSONL; the span stream and the metrics registry are two
views of the same run, both deterministic given the seed:

  $ ../../bin/plookup_cli.exe trace table1 --scale 0.2 --csv --trace-out trace.jsonl --metrics-dump
  strategy,formula,analytic,measured (mean)
  FullReplication,h*n,1000.00,1000.00
  Fixed-20,x*n,200.00,200.00
  RandomServer-20,x*n,200.00,200.00
  RoundRobin-2,h*y,200.00,200.00
  Hash-2,h*n*(1-(1-1/n)^y),190.00,191.90
  Chord-2,"h*min(y,n)",200.00,200.00
  DxHash-2,"h*min(y,n)",200.00,200.00
  MultiProbe-2x2,"h*min(y,n)",200.00,200.00
  trace: 20760 spans emitted, 20760 retained, 0 dropped, streamed to trace.jsonl
  {"metrics":[{"name":"net.broadcasts","kind":"counter","value":30},
  {"name":"net.client_requests","kind":"counter","value":80},
  {"name":"net.delivery.delay","kind":"histogram","count":0,"sum":0,"buckets":{}},
  {"name":"net.messages.blocked","kind":"counter","value":0},
  {"name":"net.messages.dropped","kind":"counter","value":0},
  {"name":"net.messages.duplicated","kind":"counter","value":0},
  {"name":"net.messages.lost","kind":"counter","value":0},
  {"name":"net.messages.received","labels":{"plane":"data"},"kind":"counter","value":80},
  {"name":"net.messages.received","labels":{"plane":"repair"},"kind":"counter","value":0},
  {"name":"net.messages.received","labels":{"plane":"strategy"},"kind":"counter","value":10300},
  {"name":"net.messages.received","labels":{"server":"0"},"kind":"counter","value":1023},
  {"name":"net.messages.received","labels":{"server":"1"},"kind":"counter","value":1155},
  {"name":"net.messages.received","labels":{"server":"2"},"kind":"counter","value":1022},
  {"name":"net.messages.received","labels":{"server":"3"},"kind":"counter","value":1031},
  {"name":"net.messages.received","labels":{"server":"4"},"kind":"counter","value":1023},
  {"name":"net.messages.received","labels":{"server":"5"},"kind":"counter","value":1014},
  {"name":"net.messages.received","labels":{"server":"6"},"kind":"counter","value":1037},
  {"name":"net.messages.received","labels":{"server":"7"},"kind":"counter","value":1007},
  {"name":"net.messages.received","labels":{"server":"8"},"kind":"counter","value":1029},
  {"name":"net.messages.received","labels":{"server":"9"},"kind":"counter","value":1039},
  {"name":"net.messages.repair","kind":"counter","value":0},
  {"name":"obs.trace.evicted","kind":"counter","value":0}]}

Each JSONL line is one span; a recv names its send as its cause:

  $ head -3 trace.jsonl
  {"id":1,"t":0.0,"kind":"send","src":-1,"dst":1,"plane":"data","msg":"place"}
  {"id":2,"t":0.0,"cause":1,"kind":"recv","src":-1,"dst":1,"plane":"data","msg":"place"}
  {"id":3,"t":0.0,"kind":"send","src":1,"dst":9,"plane":"strategy","msg":"store_batch"}
  $ wc -l < trace.jsonl
  20760

Head sampling keeps whole causal trees with the given probability; the
decision is a pure hash of the span id, so the kept spans are a strict
subset of the unsampled run (same ids, same JSON) and the summary
accounts for every minted span:

  $ ../../bin/plookup_cli.exe trace table1 --scale 0.2 --csv --trace-sample 0.5 | tail -1
  trace: 10440 spans emitted, 10440 retained, 0 dropped, 10320 sampled out

A plane filter records only message spans from the named planes; the
first strategy-plane span keeps the id it had in the unfiltered run:

  $ ../../bin/plookup_cli.exe trace table1 --scale 0.2 --csv --trace-planes strategy --trace-out planes.jsonl | tail -1
  trace: 20600 spans emitted, 20600 retained, 0 dropped, 160 sampled out, streamed to planes.jsonl
  $ head -2 planes.jsonl
  {"id":3,"t":0.0,"kind":"send","src":1,"dst":9,"plane":"strategy","msg":"store_batch"}
  {"id":4,"t":0.0,"cause":3,"kind":"recv","src":1,"dst":9,"plane":"strategy","msg":"store_batch"}

Both flags validate their input:

  $ ../../bin/plookup_cli.exe trace table1 --trace-sample 0
  plookup: --trace-sample must be in (0, 1]
  [124]
  $ ../../bin/plookup_cli.exe trace table1 --trace-planes data,bogus
  plookup: --trace-planes: unknown plane bogus; known planes are data, strategy, repair
  [124]

The latency extension reports tail percentiles next to the mean — p95
and p99 — per client discipline:

  $ ../../bin/plookup_cli.exe run latency --scale 0.1 --csv | head -6
  client,mean contacts,mean latency ms,p95 latency ms,p99 latency ms,timeouts/lookup
  FullReplication (1 contact),1.00,28.53,42.16,47.16,0.0000
  RandomServer-20 sequential,2.25,62.65,96.94,116.96,0.0000
  Hash-2 sequential,2.35,65.33,99.60,109.28,0.0000
  RoundRobin-2 sequential,2.00,55.89,76.36,83.06,0.0000
  RoundRobin-2 parallel wave,3.00,32.28,45.16,47.47,0.0000

The production-day chaos experiment has its own subcommand; --smoke
runs a tiny deterministic day (the CI gate), naive and tuned clients
paired on identical workloads (timing line stripped by head):

  $ ../../bin/plookup_cli.exe day --smoke --csv | head -17
  strategy,client,success %,p50 ms,crowd p99 ms,crowd p999 ms,skew,shed %,hedge %,stale
  FullReplication,naive,100.00,31.11,63.04,63.90,1.73,0.00,0.00,0
  FullReplication,tuned,100.00,31.11,63.04,63.90,1.73,0.00,2.33,0
  Fixed-40,naive,100.00,24.38,46.24,47.82,1.80,0.00,0.00,0
  Fixed-40,tuned,100.00,24.38,46.24,47.82,1.80,0.00,0.00,0
  RandomServer-20,naive,100.00,52.44,125.44,127.74,1.30,0.00,0.00,0
  RandomServer-20,tuned,100.00,52.44,125.44,127.74,1.30,0.00,1.85,0
  RoundRobin-2,naive,100.00,56.67,108.96,111.70,1.25,0.00,0.00,0
  RoundRobin-2,tuned,100.00,56.67,108.96,111.70,1.25,0.00,0.00,0
  Hash-2,naive,100.00,51.50,115.09,117.11,1.50,0.00,0.00,0
  Hash-2,tuned,100.00,51.50,115.09,117.11,1.50,0.00,0.00,0
  Chord-2,naive,100.00,59.13,117.49,118.72,1.80,0.00,0.00,0
  Chord-2,tuned,100.00,59.13,117.49,118.72,1.80,0.00,0.00,0
  DxHash-2,naive,100.00,77.47,964.42,976.15,1.52,0.00,0.00,0
  DxHash-2,tuned,85.51,77.47,241.11,244.04,1.56,0.00,10.75,0
  MultiProbe-2x2,naive,100.00,61.33,126.58,127.86,1.67,1.89,0.00,0
  MultiProbe-2x2,tuned,100.00,57.14,119.47,120.75,1.67,1.89,0.00,0

A mistyped overload flag gets a did-you-mean from the CLI, and an
out-of-range value is rejected before any cell runs:

  $ ../../bin/plookup_cli.exe day --capcity 4
  plookup: unknown option '--capcity', did you mean '--capacity'?
  Usage: plookup day [OPTION]…
  Try 'plookup day --help' or 'plookup --help' for more information.
  [124]

  $ ../../bin/plookup_cli.exe day --hedge 101
  plookup: Ctx: hedge must be in (0, 100)
  [124]

--cache adds a third tuned+cache cell per strategy (client-side LRU +
singleflight) and two report columns, msgs/lookup and hit %; the
cache-free rows above are untouched:

  $ ../../bin/plookup_cli.exe day --smoke --cache --csv | head -11
  strategy,client,success %,p50 ms,crowd p99 ms,crowd p999 ms,skew,shed %,hedge %,stale,msgs/lookup,hit %
  FullReplication,naive,100.00,31.11,63.04,63.90,1.73,0.00,0.00,0,1.07,0.00
  FullReplication,tuned,100.00,31.11,63.04,63.90,1.73,0.00,2.33,0,1.05,0.00
  FullReplication,tuned+cache,90.24,20.21,29.01,29.30,1.27,0.00,0.00,4,0.41,58.54
  Fixed-40,naive,100.00,24.38,46.24,47.82,1.80,0.00,0.00,0,1.00,0.00
  Fixed-40,tuned,100.00,24.38,46.24,47.82,1.80,0.00,0.00,0,1.00,0.00
  Fixed-40,tuned+cache,100.00,21.33,31.75,31.97,1.22,0.00,0.00,0,0.42,58.06
  RandomServer-20,naive,100.00,52.44,125.44,127.74,1.30,0.00,0.00,0,2.04,0.00
  RandomServer-20,tuned,100.00,52.44,125.44,127.74,1.30,0.00,1.85,0,2.04,0.00
  RandomServer-20,tuned+cache,98.11,49.52,101.55,106.15,1.35,0.00,0.00,1,0.98,50.94
  RoundRobin-2,naive,100.00,56.67,108.96,111.70,1.25,0.00,0.00,0,2.02,0.00

Any cache knob implies --cache, so tuning the TTL or blending in the
hotspot-adversarial workload needs no extra flag:

  $ ../../bin/plookup_cli.exe day --smoke --cache-ttl 5 --hotspot 0.5 --csv | head -4
  strategy,client,success %,p50 ms,crowd p99 ms,crowd p999 ms,skew,shed %,hedge %,stale,msgs/lookup,hit %
  FullReplication,naive,100.00,31.00,55.04,55.90,2.60,0.00,0.00,0,1.05,0.00
  FullReplication,tuned,100.00,31.00,55.04,55.90,2.57,0.00,4.44,0,1.10,0.00
  FullReplication,tuned+cache,100.00,11.64,31.04,31.90,1.30,0.00,0.00,0,0.34,65.85

The knobs are validated before any cell runs, on both subcommands:

  $ ../../bin/plookup_cli.exe day --cache-cap 0
  plookup: Ctx: cache-cap must be >= 1
  [124]

  $ ../../bin/plookup_cli.exe run day --swr=-1
  plookup: Ctx: swr must be non-negative
  [124]

--shards adds worker domains inside a single run (it composes with
--jobs, which fans out across runs).  The contract is byte-identical
output at any value, so the sharded smoke day reproduces exactly the
rows pinned for the unsharded run above:

  $ ../../bin/plookup_cli.exe day --smoke --shards 2 --csv | head -5
  strategy,client,success %,p50 ms,crowd p99 ms,crowd p999 ms,skew,shed %,hedge %,stale
  FullReplication,naive,100.00,31.11,63.04,63.90,1.73,0.00,0.00,0
  FullReplication,tuned,100.00,31.11,63.04,63.90,1.73,0.00,2.33,0
  Fixed-40,naive,100.00,24.38,46.24,47.82,1.80,0.00,0.00,0
  Fixed-40,tuned,100.00,24.38,46.24,47.82,1.80,0.00,0.00,0

A bad shard count is rejected before anything runs, on both
subcommands (0 is legal: one worker per available core):

  $ ../../bin/plookup_cli.exe run table2 --shards=-1
  plookup: Ctx.v: shards must be at least 1
  [124]

  $ ../../bin/plookup_cli.exe day --smoke --shards=-4
  plookup: Ctx.v: shards must be at least 1
  [124]
