(** Extension: availability under continuous server churn.

    Servers fail and recover as alternating renewal processes
    (exponential MTTF/MTTR); clients keep issuing partial lookups
    throughout, re-probing around down servers exactly as the paper's
    strategies prescribe.  Reports per-strategy lookup success rate,
    mean cost, and the fraction of time the whole system was below the
    target's coverage. *)

val id : string
val title : string

val run :
  ?n:int ->
  ?h:int ->
  ?budget:int ->
  ?t:int ->
  ?mttf:float ->
  ?mttr:float ->
  ?horizon:float ->
  Ctx.t ->
  Plookup_util.Table.t
(** Defaults: n=10, h=100, budget 200 (Fixed gets x = t+5 instead —
    it cannot play otherwise), t=40, mttf=mttr=50 (harsh: each server
    50% available), horizon 5000 time units with one lookup per time
    unit. *)
