(** Figure 7: worst-case fault tolerance (Appendix-A greedy heuristic)
    vs target answer size, at the shared 200-entry storage budget:
    RandomServer-20 tolerates the most, Round-2 loses one server of
    tolerance per h/n of target size, Hash-2 traces an S-shaped
    decline. *)

val id : string
val title : string

val run :
  ?n:int ->
  ?h:int ->
  ?budget:int ->
  ?targets:int list ->
  Ctx.t ->
  Plookup_util.Table.t
