(** RandomServer-x (Sections 3.3, 5.3): every server keeps its *own*
    uniformly random subset of at most [x] entries.

    On [place], the full entry list is broadcast and each server samples
    [x] entries independently.  Incremental adds are broadcast and each
    server applies the reservoir-sampling rule (Vitter): with probability
    [x / h] keep the newcomer and evict a random resident, so each
    server's subset stays uniform over an insert-only history.  Deletes
    are broadcast, decrement each server's system-size counter, and by
    default leave a hole (the cushion scheme); the alternative the paper
    weighs and rejects — actively fetching a replacement entry from other
    servers — is available as [replacement_on_delete] for the ablation
    experiment.

    A lookup probes operational servers in random order until [t]
    distinct entries are merged. *)

open Plookup_store

type t

val create : ?replacement_on_delete:bool -> Cluster.t -> x:int -> t
(** [x] must be positive.  [replacement_on_delete] defaults to [false]
    (the paper's cushion scheme). *)

val x : t -> int
val cluster : t -> Cluster.t
val system_count : t -> server:int -> int
(** The server's local belief of how many entries the system holds — the
    [h] counter of Section 5.3. *)

val place : t -> Entry.t list -> unit
val add : t -> Entry.t -> unit
val delete : t -> Entry.t -> unit
val partial_lookup : ?reachable:(int -> bool) -> t -> int -> Lookup_result.t

module Strategy : Strategy_intf.S with type t = t
(** The packed form registered in {!Strategy_registry} as
    ["RandomServer"]. *)

module Strategy_replacing : Strategy_intf.S with type t = t
(** The Section-5.3 replacement-on-delete ablation, registered as
    ["RandomServerReplacing"]. *)
