open Plookup
open Plookup_store
open Plookup_util
module Engine = Plookup_sim.Engine

let id = "latency"
let title = "Extension: lookup latency on a simulated network (Async_client)"

(* Strided probe order from a random start, extended with the residues
   the stride cycle misses — the Round-Robin client's plan. *)
let stride_order rng ~n ~y =
  let start = Rng.int rng n in
  let visited = Array.make n false in
  let order = ref [] in
  let pos = ref start in
  while not visited.(!pos) do
    visited.(!pos) <- true;
    order := !pos :: !order;
    pos := (!pos + y) mod n
  done;
  List.rev !order @ List.filter (fun i -> not visited.(i)) (List.init n Fun.id)

type row = {
  contacts : Stats.Accum.t;
  timeouts : Stats.Accum.t;
  latencies : float array;
}

let measure_config ctx ~n ~h ~t ~lookups ~timeout ~rtt_lo ~rtt_hi ~obs ~config ~order_of
    ~wave_of ~down () =
  let service = Service.create ~seed:(Ctx.run_seed ctx 1) ~obs ~n config in
  Service.place service (Entry.Gen.batch (Entry.Gen.create ()) h);
  let cluster = Service.cluster service in
  Ctx.apply_faults ctx cluster;
  List.iter (Cluster.fail cluster) down;
  let engine = Engine.create () in
  let latency_rng = Rng.create (Ctx.run_seed ctx 2) in
  (* One hop is half a round trip. *)
  let latency () = Dist.uniform_in latency_rng ~lo:(rtt_lo /. 2.) ~hi:(rtt_hi /. 2.) in
  let contacts = Stats.Accum.create () in
  let timeouts = Stats.Accum.create () in
  let latencies =
    Array.init lookups (fun _ ->
        let outcome = ref None in
        Async_client.lookup cluster engine ~latency ~timeout ~order:(order_of cluster)
          ~wave:(wave_of ()) ~t
          (fun o -> outcome := Some o);
        ignore (Engine.run engine);
        match !outcome with
        | Some o ->
          Stats.Accum.add contacts
            (float_of_int o.Async_client.result.Lookup_result.servers_contacted);
          Stats.Accum.add timeouts (float_of_int o.Async_client.timeouts);
          Async_client.elapsed o
        | None -> nan)
  in
  { contacts; timeouts; latencies }

let run ?(n = 10) ?(h = 100) ?(budget = 200) ?(t = 35) ?(rtt_lo = 5.) ?(rtt_hi = 50.) ctx =
  let lookups = Ctx.scaled ctx 2000 in
  let timeout = 2. *. rtt_hi in
  let table =
    Table.create ~title
      ~columns:
        [ "client";
          "mean contacts";
          "mean latency ms";
          "p95 latency ms";
          "p99 latency ms";
          "timeouts/lookup" ]
  in
  let random_order cluster =
    Array.to_list (Rng.perm (Cluster.rng cluster) (Cluster.n cluster))
  in
  let record name row =
    Table.add_row table
      [ Table.S name;
        Table.F (Stats.Accum.mean row.contacts);
        Table.F (Stats.mean row.latencies);
        Table.F (Stats.percentile row.latencies 95.);
        Table.F (Stats.percentile row.latencies 99.);
        Table.F4 (Stats.Accum.mean row.timeouts) ]
  in
  let y =
    Option.value ~default:1
      (Service.param (Service.storage_for_budget (Service.round_robin 1) ~n ~h ~total:budget))
  in
  let measure = measure_config ctx ~n ~h ~t ~lookups ~timeout ~rtt_lo ~rtt_hi in
  (* Each strided client row owns its probe-order rng, seeded from the
     row's position, so rows are independent parallel units. *)
  let stride_for row =
    let order_rng = Rng.create (Ctx.run_seed ctx (3 + row)) in
    fun cluster -> stride_order order_rng ~n:(Cluster.n cluster) ~y
  in
  (* The parallel client: wave size ceil(t*n/(y*h)), known in advance
     (Section 3.5). *)
  let wave = min n (max 1 (((t * n) + (y * h) - 1) / (y * h))) in
  let rows =
    [| ( "FullReplication (1 contact)",
         fun ~obs ->
           measure ~obs ~config:Service.full_replication ~order_of:random_order
             ~wave_of:(fun () -> 1)
             ~down:[] () );
       ( "RandomServer-20 sequential",
         fun ~obs ->
           measure ~obs
             ~config:
               (Service.storage_for_budget (Service.random_server 1) ~n ~h ~total:budget)
             ~order_of:random_order
             ~wave_of:(fun () -> 1)
             ~down:[] () );
       ( "Hash-2 sequential",
         fun ~obs ->
           measure ~obs
             ~config:(Service.storage_for_budget (Service.hash 1) ~n ~h ~total:budget)
             ~order_of:random_order
             ~wave_of:(fun () -> 1)
             ~down:[] () );
       ( "RoundRobin-2 sequential",
         fun ~obs ->
           measure ~obs ~config:(Service.round_robin y) ~order_of:(stride_for 0)
             ~wave_of:(fun () -> 1)
             ~down:[] () );
       ( "RoundRobin-2 parallel wave",
         fun ~obs ->
           measure ~obs ~config:(Service.round_robin y) ~order_of:(stride_for 1)
             ~wave_of:(fun () -> wave)
             ~down:[] () );
       (* Failure masking (Section 6.2): one server down.  The sequential
          client stalls a full timeout whenever the dead server comes up
          in its order; the parallel client's redundant in-flight
          contacts keep it moving and it finishes before the timeout
          even matters. *)
       ( "RoundRobin-2 sequential, server 3 down",
         fun ~obs ->
           measure ~obs ~config:(Service.round_robin y) ~order_of:(stride_for 2)
             ~wave_of:(fun () -> 1)
             ~down:[ 3 ] () );
       ( "RoundRobin-2 parallel, server 3 down",
         fun ~obs ->
           measure ~obs ~config:(Service.round_robin y) ~order_of:(stride_for 3)
             ~wave_of:(fun () -> wave)
             ~down:[ 3 ] () ) |]
  in
  let measured =
    Runner.map_obs ctx ~count:(Array.length rows) (fun i ~obs ->
        let name, thunk = rows.(i) in
        (name, thunk ~obs))
  in
  Array.iter (fun (name, row) -> record name row) measured;
  table
