open Plookup_util

let sample () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b"; "c" ] in
  Table.add_row t [ Table.S "x"; Table.I 42; Table.F 3.14159 ];
  Table.add_row t [ Table.S "longer"; Table.I 7; Table.F4 0.00012 ];
  t

let test_cells () =
  Helpers.check_string "S" "x" (Table.cell_to_string (Table.S "x"));
  Helpers.check_string "I" "42" (Table.cell_to_string (Table.I 42));
  Helpers.check_string "F" "3.14" (Table.cell_to_string (Table.F 3.14159));
  Helpers.check_string "F4" "0.0001" (Table.cell_to_string (Table.F4 0.00012))

let test_rows_order () =
  let t = sample () in
  Helpers.check_int "row count" 2 (List.length (Table.rows t));
  match Table.rows t with
  | [ first; _ ] -> (
    match first with
    | Table.S s :: _ -> Helpers.check_string "first row first" "x" s
    | _ -> Alcotest.fail "unexpected row shape")
  | _ -> Alcotest.fail "expected two rows"

let test_row_length_mismatch () =
  let t = Table.create ~title:"t" ~columns:[ "one" ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Table.add_row: row length does not match columns") (fun () ->
      Table.add_row t [ Table.I 1; Table.I 2 ])

let test_ascii_contains_everything () =
  let s = Table.to_ascii (sample ()) in
  List.iter
    (fun needle ->
      if not (Helpers.contains s needle) then
        Alcotest.failf "ascii output missing %S in:\n%s" needle s)
    [ "demo"; "a"; "b"; "c"; "42"; "3.14"; "longer"; "0.0001" ]

let test_csv () =
  let s = Table.to_csv (sample ()) in
  let lines = String.split_on_char '\n' (String.trim s) in
  Helpers.check_int "lines" 3 (List.length lines);
  Helpers.check_string "header" "a,b,c" (List.nth lines 0);
  Helpers.check_string "row 1" "x,42,3.14" (List.nth lines 1)

let test_csv_escaping () =
  let t = Table.create ~title:"q" ~columns:[ "v" ] in
  Table.add_row t [ Table.S "has,comma" ];
  Table.add_row t [ Table.S "has\"quote" ];
  let lines = String.split_on_char '\n' (String.trim (Table.to_csv t)) in
  Helpers.check_string "comma quoted" "\"has,comma\"" (List.nth lines 1);
  Helpers.check_string "quote doubled" "\"has\"\"quote\"" (List.nth lines 2)

let prop_csv_line_count =
  Helpers.qcheck "csv has one line per row plus header"
    QCheck2.Gen.(list_size (int_range 0 30) small_int)
    (fun xs ->
      let t = Table.create ~title:"p" ~columns:[ "n" ] in
      List.iter (fun x -> Table.add_row t [ Table.I x ]) xs;
      let lines = String.split_on_char '\n' (String.trim (Table.to_csv t)) in
      List.length lines = 1 + List.length xs
      || (xs = [] && List.length lines = 1))

let () =
  Helpers.run "table"
    [ ( "table",
        [ Alcotest.test_case "cells" `Quick test_cells;
          Alcotest.test_case "rows order" `Quick test_rows_order;
          Alcotest.test_case "row mismatch" `Quick test_row_length_mismatch;
          Alcotest.test_case "ascii" `Quick test_ascii_contains_everything;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
          prop_csv_line_count ] ) ]
