type t = { words : Bytes.t; capacity : int }
(* One bit per element, 8 per byte.  Bytes rather than int array keeps
   copy/blit primitive and fast. *)

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make ((capacity + 7) / 8) '\000'; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of bounds"

let add t i =
  check t i;
  let b = Bytes.get_uint8 t.words (i lsr 3) in
  Bytes.set_uint8 t.words (i lsr 3) (b lor (1 lsl (i land 7)))

let remove t i =
  check t i;
  let b = Bytes.get_uint8 t.words (i lsr 3) in
  Bytes.set_uint8 t.words (i lsr 3) (b land lnot (1 lsl (i land 7)))

let mem t i =
  check t i;
  Bytes.get_uint8 t.words (i lsr 3) land (1 lsl (i land 7)) <> 0

let popcount8 =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun b -> table.(b)

let cardinal t =
  let acc = ref 0 in
  for i = 0 to Bytes.length t.words - 1 do
    acc := !acc + popcount8 (Bytes.get_uint8 t.words i)
  done;
  !acc

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'
let copy t = { words = Bytes.copy t.words; capacity = t.capacity }

let same_capacity a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let union_into dst src =
  same_capacity dst src;
  for i = 0 to Bytes.length dst.words - 1 do
    Bytes.set_uint8 dst.words i
      (Bytes.get_uint8 dst.words i lor Bytes.get_uint8 src.words i)
  done

let union a b =
  let r = copy a in
  union_into r b;
  r

let inter a b =
  same_capacity a b;
  let r = create a.capacity in
  for i = 0 to Bytes.length r.words - 1 do
    Bytes.set_uint8 r.words i (Bytes.get_uint8 a.words i land Bytes.get_uint8 b.words i)
  done;
  r

let diff a b =
  same_capacity a b;
  let r = create a.capacity in
  for i = 0 to Bytes.length r.words - 1 do
    Bytes.set_uint8 r.words i
      (Bytes.get_uint8 a.words i land lnot (Bytes.get_uint8 b.words i) land 0xff)
  done;
  r

let equal a b = a.capacity = b.capacity && Bytes.equal a.words b.words

let disjoint a b =
  same_capacity a b;
  let rec go i =
    i >= Bytes.length a.words
    || (Bytes.get_uint8 a.words i land Bytes.get_uint8 b.words i = 0 && go (i + 1))
  in
  go 0

let is_empty t =
  let rec go i = i >= Bytes.length t.words || (Bytes.get_uint8 t.words i = 0 && go (i + 1)) in
  go 0

let iter f t =
  for i = 0 to t.capacity - 1 do
    if Bytes.get_uint8 t.words (i lsr 3) land (1 lsl (i land 7)) <> 0 then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity elements =
  let t = create capacity in
  List.iter (add t) elements;
  t
