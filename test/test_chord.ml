open Plookup
open Plookup_store

let make ?(seed = 11) ?(n = 6) ~y () =
  let cluster = Cluster.create ~seed ~n () in
  (Chord.create cluster ~y, cluster)

let test_servers_of_distinct () =
  let chord, _ = make ~y:3 () in
  List.iter
    (fun id ->
      let owners = Chord.servers_of chord (Entry.v id) in
      Helpers.check_int "y owners" 3 (List.length owners);
      Helpers.check_int "distinct" 3 (List.length (List.sort_uniq compare owners)))
    [ 0; 1; 17; 400; 12345 ]

let test_y_clamped_to_n () =
  let chord, _ = make ~n:4 ~y:9 () in
  Helpers.check_int "y = n" 4 (Chord.y chord);
  Helpers.check_int "owners" 4 (List.length (Chord.servers_of chord (Entry.v 1)))

let test_placement_matches_ring () =
  let chord, _ = make ~y:2 () in
  let batch = Helpers.entries 40 in
  Chord.place chord batch;
  match Chord.check_invariants chord ~placed:batch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_add_delete_maintain_ring () =
  let chord, _ = make ~y:2 () in
  let batch = Helpers.entries 20 in
  Chord.place chord batch;
  let extra = Entry.v 999 in
  Chord.add chord extra;
  (match Chord.check_invariants chord ~placed:(extra :: batch) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Chord.delete chord extra;
  match Chord.check_invariants chord ~placed:batch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_deterministic () =
  let owners_with_seed () =
    let chord, _ = make ~seed:42 ~y:2 () in
    List.map (fun id -> Chord.servers_of chord (Entry.v id)) (List.init 30 Fun.id)
  in
  Alcotest.(check (list (list int))) "same seed, same ring" (owners_with_seed ())
    (owners_with_seed ())

let test_partial_lookup_satisfied () =
  let chord, _ = make ~y:2 () in
  Chord.place chord (Helpers.entries 30);
  let r = Chord.partial_lookup chord 10 in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r)

let test_budget_truncates_round_major () =
  (* Budget h: every entry gets its first successor copy and none gets a
     second — coverage stays complete. *)
  let chord, cluster = make ~y:3 () in
  let batch = Helpers.entries 25 in
  Chord.place ~budget:25 chord batch;
  Helpers.check_int "one copy each" 25 (Plookup_metrics.Storage.measured cluster);
  Helpers.check_int "coverage complete" 25 (Plookup_metrics.Coverage.measured cluster)

let test_neighbour_locality () =
  (* Chord's selling point vs Hash-y: an entry's copies sit on ring
     neighbours, so its owner lists under y and y+1 share a prefix. *)
  let chord2, _ = make ~seed:7 ~y:2 () in
  let chord3, _ = make ~seed:7 ~y:3 () in
  List.iter
    (fun id ->
      let o2 = Chord.servers_of chord2 (Entry.v id) in
      let o3 = Chord.servers_of chord3 (Entry.v id) in
      Alcotest.(check (list int)) "prefix" o2 (Plookup_util.List_util.take 2 o3))
    (List.init 20 Fun.id)

(* The extension-point proof at test level: Chord is reachable through
   Service purely via its registration. *)
let test_reachable_through_service () =
  match Service.config_of_string "chord-2" with
  | Error e -> Alcotest.fail e
  | Ok config ->
    Alcotest.(check string) "canonical name" "Chord-2" (Service.config_name config);
    let service, _ = Helpers.placed_service ~n:5 ~h:20 config in
    let r = Service.partial_lookup service 8 in
    Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r);
    Helpers.close "analytic storage" 40. (Service.analytic_storage config ~n:5 ~h:20)

let () =
  Helpers.run "chord"
    [ ( "chord",
        [ Alcotest.test_case "servers_of distinct" `Quick test_servers_of_distinct;
          Alcotest.test_case "y clamped to n" `Quick test_y_clamped_to_n;
          Alcotest.test_case "placement matches ring" `Quick test_placement_matches_ring;
          Alcotest.test_case "add/delete maintain ring" `Quick
            test_add_delete_maintain_ring;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "partial lookup satisfied" `Quick
            test_partial_lookup_satisfied;
          Alcotest.test_case "budget truncates round-major" `Quick
            test_budget_truncates_round_major;
          Alcotest.test_case "neighbour locality" `Quick test_neighbour_locality;
          Alcotest.test_case "reachable through service" `Quick
            test_reachable_through_service ] ) ]
