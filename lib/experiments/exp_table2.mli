(** Table 2: the paper's informal star-rating summary, regenerated as a
    measured scorecard.  Every cell of the paper's table is backed here
    by a number from the canonical configuration (100 entries, 10
    servers, storage budget 200, target 35): storage, coverage, greedy
    fault tolerance, lookup cost, static unfairness, and update overhead
    in messages per update over a steady-state stream.  {!paper_stars}
    reproduces the published qualitative ratings for side-by-side
    comparison. *)

val id : string
val title : string

val run : ?n:int -> ?h:int -> ?budget:int -> ?t:int -> Ctx.t -> Plookup_util.Table.t

val run_full :
  ?n:int ->
  ?h:int ->
  ?budget:int ->
  ?t:int ->
  Ctx.t ->
  Plookup_util.Table.t * Plookup_util.Table.t
(** The measured scorecard plus a second table of star ranks derived
    from it by ranking the four partial strategies per metric (4 stars =
    best, ties share the better rank) — the regenerated Table 2,
    comparable against {!paper_stars}. *)

val paper_stars : Plookup_util.Table.t
(** The verbatim ratings of the paper's Table 2 (4 stars = best). *)
