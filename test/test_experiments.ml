open Plookup_util
module E = Plookup_experiments

let tiny = E.Ctx.v ~seed:1 ~scale:0.05 ()

let float_cell = function
  | Table.F v | Table.F4 v -> v
  | Table.I v -> float_of_int v
  | Table.S s -> Alcotest.failf "expected numeric cell, got %S" s

let column table name =
  let idx =
    match List.find_index (String.equal name) (Table.columns table) with
    | Some i -> i
    | None -> Alcotest.failf "no column %S" name
  in
  List.map (fun row -> float_cell (List.nth row idx)) (Table.rows table)

let test_registry_complete () =
  Alcotest.(check (list string)) "paper order plus extensions"
    [ "table1"; "fig4"; "fig6"; "fig7"; "fig9"; "fig12"; "fig13"; "fig14"; "table2";
      "hotspot"; "churn"; "latency"; "loss"; "day" ]
    (E.Registry.ids ())

let test_registry_find () =
  Alcotest.(check bool) "finds fig4" true (E.Registry.find "fig4" <> None);
  Alcotest.(check bool) "rejects junk" true (E.Registry.find "fig99" = None)

let test_every_experiment_runs () =
  List.iter
    (fun e ->
      let table = e.E.Registry.run tiny in
      if Table.rows table = [] then Alcotest.failf "%s produced no rows" e.E.Registry.id;
      List.iter
        (fun row ->
          Helpers.check_int
            (Printf.sprintf "%s row arity" e.E.Registry.id)
            (List.length (Table.columns table))
            (List.length row))
        (Table.rows table))
    E.Registry.all

let test_table1_matches_formulas () =
  let table = E.Exp_table1.run tiny in
  List.iter
    (fun row ->
      match row with
      | [ Table.S _; Table.S _; Table.F analytic; Table.F measured ] ->
        (* Hash-y is stochastic; everyone else exact. *)
        if Float.abs (analytic -. measured) > 12. then
          Alcotest.failf "analytic %.1f vs measured %.1f" analytic measured
      | _ -> Alcotest.fail "unexpected row shape")
    (Table.rows table)

let test_fig4_round_staircase () =
  let table = E.Exp_fig4.run ~targets:[ 10; 20; 25; 40; 45 ] tiny in
  Alcotest.(check (list (float 0.01))) "exact staircase" [ 1.; 1.; 2.; 2.; 3. ]
    (column table "RoundRobin-2")

let test_fig6_coverage_monotone () =
  let table = E.Exp_fig6.run ~budgets:[ 20; 60; 100; 140; 200 ] tiny in
  let check_monotone name =
    let values = column table name in
    let rec go = function
      | a :: (b :: _ as rest) ->
        if a > b +. 1e-6 then Alcotest.failf "%s not monotone" name else go rest
      | _ -> ()
    in
    go values
  in
  List.iter check_monotone [ "Round&Hash"; "Fixed"; "RandomServer" ];
  (* Round&Hash saturates at h from budget 100 onwards. *)
  (match column table "Round&Hash" with
  | [ _; _; c100; c140; c200 ] ->
    Helpers.close "saturated at 100" 100. c100;
    Helpers.close "saturated at 140" 100. c140;
    Helpers.close "saturated at 200" 100. c200
  | _ -> Alcotest.fail "unexpected rows")

let test_fig7_orderings () =
  let table = E.Exp_fig7.run ~targets:[ 20; 35; 50 ] tiny in
  let random = column table "RandomServer-20" in
  let hash = column table "Hash-2" in
  List.iter2
    (fun r h ->
      if r +. 0.5 < h then Alcotest.failf "RandomServer (%f) should beat Hash (%f)" r h)
    random hash;
  (* Tolerance decreases with target size. *)
  match random with
  | [ a; _; c ] -> Alcotest.(check bool) "decreasing" true (a >= c)
  | _ -> Alcotest.fail "rows"

let test_fig9_shapes () =
  let ctx = E.Ctx.v ~seed:1 ~scale:0.2 () in
  let table = E.Exp_fig9.run ~budgets:[ 100; 500; 1000 ] ctx in
  (match column table "RandomServer-x" with
  | [ a; b; c ] ->
    Alcotest.(check bool) "decays" true (a > b && b > c)
  | _ -> Alcotest.fail "rows");
  match column table "Hash-y" with
  | [ a; b; _ ] -> Alcotest.(check bool) "hash rises first" true (b > a)
  | _ -> Alcotest.fail "rows"

let test_fig12_cushion_decay () =
  let ctx = E.Ctx.v ~seed:1 ~scale:0.1 () in
  let table = E.Exp_fig12.run ~cushions:[ 0; 3 ] ~updates:4000 ctx in
  match column table "exp fail %" with
  | [ b0; b3 ] ->
    Alcotest.(check bool)
      (Printf.sprintf "b=0 (%.3f%%) much worse than b=3 (%.3f%%)" b0 b3)
      true
      (b0 > (5. *. b3) +. 0.5)
  | _ -> Alcotest.fail "rows"

let test_fig13_deterioration () =
  let ctx = E.Ctx.v ~seed:2 ~scale:0.3 () in
  let table = E.Exp_fig13.run ~checkpoints:[ 0; 2000 ] ctx in
  (match column table "RandomServer-x" with
  | [ start; late ] ->
    Alcotest.(check bool)
      (Printf.sprintf "unfairness rises (%.2f -> %.2f)" start late)
      true (late > start)
  | _ -> Alcotest.fail "rows");
  match column table "Fixed-x (ref)" with
  | [ _; late ] -> Helpers.roughly ~rel:0.15 "paper's Fixed-x = 2" 2. late
  | _ -> Alcotest.fail "rows"

let test_fig14_crossover () =
  let ctx = E.Ctx.v ~seed:1 ~scale:0.2 () in
  let table = E.Exp_fig14.run ~entry_counts:[ 100; 300; 400 ] ~updates:5000 ctx in
  let fixed = column table "Fixed-x msgs" in
  let hash = column table "Hash-y msgs" in
  (match (fixed, hash) with
  | [ f100; f300; _ ], [ h100; h300; _ ] ->
    Alcotest.(check bool) "hash cheaper at h=100" true (h100 < f100);
    Alcotest.(check bool) "fixed cheaper at h=300" true (f300 < h300)
  | _ -> Alcotest.fail "rows");
  (* Fixed-x cost strictly decreasing in h. *)
  match fixed with
  | [ a; b; c ] -> Alcotest.(check bool) "1/h shape" true (a > b && b > c)
  | _ -> Alcotest.fail "rows"

let test_table2_scorecard () =
  let table = E.Exp_table2.run tiny in
  Helpers.check_int "eight strategies" 8 (List.length (Table.rows table));
  (* Full replication row: max storage, complete coverage, cost 1. *)
  match Table.rows table with
  | first :: _ -> (
    match first with
    | [ Table.S name; Table.I storage; Table.F coverage; _; Table.F cost; _; _ ] ->
      Helpers.check_string "name" "FullReplication" name;
      Helpers.check_int "storage h*n" 1000 storage;
      Helpers.close "coverage" 100. coverage;
      Helpers.close "cost" 1. cost
    | _ -> Alcotest.fail "row shape")
  | [] -> Alcotest.fail "no rows"

let test_derived_stars () =
  let _, derived = E.Exp_table2.run_full tiny in
  Helpers.check_int "seven partial strategies" 7 (List.length (Table.rows derived));
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i > 0 then begin
            match cell with
            | Table.S stars ->
              let k = String.length stars in
              if k < 1 || k > 4 || String.exists (fun c -> c <> '*') stars then
                Alcotest.failf "bad star cell %S" stars
            | _ -> Alcotest.fail "expected star cell"
          end)
        row)
    (Table.rows derived)

let test_paper_stars_table () =
  let t = E.Exp_table2.paper_stars in
  Helpers.check_int "four strategies" 4 (List.length (Table.rows t));
  Helpers.check_int "ten columns" 10 (List.length (Table.columns t))

let test_hotspot_partitioning_is_worse () =
  let ctx = E.Ctx.v ~seed:3 ~scale:0.2 () in
  let table = E.Exp_hotspot.run ctx in
  match column table "peak/avg load" with
  | partitioned :: partials ->
    List.iter
      (fun p ->
        Alcotest.(check bool)
          (Printf.sprintf "partitioned (%.2f) hotter than partial (%.2f)" partitioned p)
          true
          (partitioned > 1.5 *. p))
      partials
  | [] -> Alcotest.fail "no rows"

let test_churn_repair_wins () =
  (* Rows alternate repair-off / repair-on per strategy.  With repair on,
     every strategy must serve zero stale reads and strictly beat its
     repair-off self on success rate. *)
  let ctx = E.Ctx.v ~seed:3 ~scale:0.4 () in
  let table = E.Exp_churn.run ctx in
  let success = column table "success %" in
  let stale = column table "stale reads" in
  let rec pairs = function
    | off :: on :: rest -> (off, on) :: pairs rest
    | [] -> []
    | [ _ ] -> Alcotest.fail "odd number of rows"
  in
  if Table.rows table = [] then Alcotest.fail "no rows";
  List.iter
    (fun (off, on) ->
      Alcotest.(check bool)
        (Printf.sprintf "repair beats no repair (%.2f > %.2f)" on off)
        true (on > off))
    (pairs success);
  List.iteri
    (fun i (_, on_stale) ->
      Helpers.check_int (Printf.sprintf "row pair %d: no stale reads with repair" i)
        0 (int_of_float on_stale))
    (pairs stale)

let test_ctx_scaling () =
  let ctx = E.Ctx.v ~seed:1 ~scale:0.5 () in
  Helpers.check_int "half" 50 (E.Ctx.scaled ctx 100);
  Helpers.check_int "floors at 1" 1 (E.Ctx.scaled ctx 1);
  Alcotest.check_raises "bad scale" (Invalid_argument "Ctx.v: scale must be positive")
    (fun () -> ignore (E.Ctx.v ~scale:0. ()))

let test_run_seed_stable () =
  let ctx = E.Ctx.v ~seed:9 () in
  Helpers.check_int "same index same seed" (E.Ctx.run_seed ctx 3) (E.Ctx.run_seed ctx 3);
  Alcotest.(check bool) "different index different seed" true
    (E.Ctx.run_seed ctx 3 <> E.Ctx.run_seed ctx 4)

let () =
  Helpers.run "experiments"
    [ ( "experiments",
        [ Alcotest.test_case "registry complete" `Quick test_registry_complete;
          Alcotest.test_case "registry find" `Quick test_registry_find;
          Alcotest.test_case "all run" `Slow test_every_experiment_runs;
          Alcotest.test_case "table1 formulas" `Quick test_table1_matches_formulas;
          Alcotest.test_case "fig4 staircase" `Quick test_fig4_round_staircase;
          Alcotest.test_case "fig6 monotone" `Quick test_fig6_coverage_monotone;
          Alcotest.test_case "fig7 orderings" `Quick test_fig7_orderings;
          Alcotest.test_case "fig9 shapes" `Slow test_fig9_shapes;
          Alcotest.test_case "fig12 cushion" `Slow test_fig12_cushion_decay;
          Alcotest.test_case "fig13 deterioration" `Slow test_fig13_deterioration;
          Alcotest.test_case "fig14 crossover" `Slow test_fig14_crossover;
          Alcotest.test_case "table2 scorecard" `Slow test_table2_scorecard;
          Alcotest.test_case "derived stars" `Slow test_derived_stars;
          Alcotest.test_case "paper stars" `Quick test_paper_stars_table;
          Alcotest.test_case "hotspot extension" `Slow test_hotspot_partitioning_is_worse;
          Alcotest.test_case "churn extension" `Slow test_churn_repair_wins;
          Alcotest.test_case "ctx scaling" `Quick test_ctx_scaling;
          Alcotest.test_case "run_seed" `Quick test_run_seed_stable ] ) ]
