type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
  sum : Stats.Accum.t;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if not (lo < hi) then invalid_arg "Histogram.create: need lo < hi";
  { lo; hi; counts = Array.make bins 0; underflow = 0; overflow = 0; total = 0;
    sum = Stats.Accum.create () }

let bins t = Array.length t.counts

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let width = (t.hi -. t.lo) /. float_of_int (bins t) in
    let i = min (bins t - 1) (int_of_float ((x -. t.lo) /. width)) in
    t.counts.(i) <- t.counts.(i) + 1;
    Stats.Accum.add t.sum x
  end

let count t = t.total

let bin_count t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.bin_count: bin out of range";
  t.counts.(i)

let underflow t = t.underflow
let overflow t = t.overflow

let bin_bounds t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.bin_bounds: bin out of range";
  let width = (t.hi -. t.lo) /. float_of_int (bins t) in
  (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

let mean t = Stats.Accum.mean t.sum

let render ?(width = 50) t =
  let max_count = Array.fold_left max 1 t.counts in
  let buf = Buffer.create 256 in
  for i = 0 to bins t - 1 do
    let lo, hi = bin_bounds t i in
    let bar_len = t.counts.(i) * width / max_count in
    Buffer.add_string buf
      (Printf.sprintf "[%8.2f, %8.2f) %6d %s\n" lo hi t.counts.(i) (String.make bar_len '#'))
  done;
  if t.underflow > 0 then Buffer.add_string buf (Printf.sprintf "underflow %6d\n" t.underflow);
  if t.overflow > 0 then Buffer.add_string buf (Printf.sprintf "overflow  %6d\n" t.overflow);
  Buffer.contents buf
