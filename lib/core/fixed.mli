(** Fixed-x (Sections 3.2, 5.2): every server stores the *same* fixed
    subset of at most [x] entries.

    On [place], the chosen server broadcasts only the first [x] entries.
    Updates use *selective broadcast*: an [add] is broadcast only while
    servers hold fewer than [x] entries; a [delete] is broadcast only if
    the contacted server actually stores the entry — this is what makes
    Fixed-x cheap under high update rates (Fig. 14).

    Deletes can leave servers below [x] with no replacement, so Section
    5.2 prescribes choosing [x = t + b] with a cushion [b] (Fig. 12);
    the cushion is purely a sizing decision, not extra mechanism. *)

open Plookup_store

type t

val create : Cluster.t -> x:int -> t
(** [x] must be positive. *)

val x : t -> int
val cluster : t -> Cluster.t
val place : t -> Entry.t list -> unit
val add : t -> Entry.t -> unit
val delete : t -> Entry.t -> unit

val partial_lookup : ?reachable:(int -> bool) -> t -> int -> Lookup_result.t
(** One random operational server; like Full Replication, all servers
    are identical so contacting more servers can never help. *)

module Strategy : Strategy_intf.S with type t = t
(** The packed form registered in {!Strategy_registry}. *)
