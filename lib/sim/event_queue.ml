type state = Live | Cancelled | Fired

type 'a node = { time : float; seq : int; payload : 'a; mutable state : state }
type 'a handle = 'a node

type 'a t = {
  mutable heap : 'a node array;
  mutable size : int; (* physical entries, cancelled included *)
  mutable live : int; (* entries that will still fire *)
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; live = 0; next_seq = 0 }
let length t = t.live
let is_empty t = t.live = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let capacity = max 16 (2 * Array.length t.heap) in
  if capacity > Array.length t.heap then begin
    let heap = Array.make capacity t.heap.(0) in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let push t ~time payload =
  let node = { time; seq = t.next_seq; payload; state = Live } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then
    if t.size = 0 then t.heap <- Array.make 16 node else grow t;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  t.heap.(!i) <- node;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before node t.heap.(parent) then begin
      t.heap.(!i) <- t.heap.(parent);
      t.heap.(parent) <- node;
      i := parent
    end
    else continue := false
  done;
  node

let cancel_handle t handle =
  match handle.state with
  | Live ->
    handle.state <- Cancelled;
    t.live <- t.live - 1;
    true
  | Cancelled | Fired -> false

let is_cancelled handle = handle.state = Cancelled

let sift_down t =
  let node = t.heap.(0) in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      t.heap.(!i) <- t.heap.(!smallest);
      t.heap.(!smallest) <- node;
      i := !smallest
    end
    else continue := false
  done

(* Remove the heap root without inspecting its state. *)
let pop_root t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t
  end;
  top

(* Lazy deletion: cancelled nodes stay in the heap until they surface,
   then are discarded here.  Every exported read goes through one of
   these, so callers only ever see events that will actually fire. *)
let rec pop t =
  if t.size = 0 then None
  else begin
    let top = pop_root t in
    match top.state with
    | Cancelled -> pop t
    | Live | Fired ->
      top.state <- Fired;
      t.live <- t.live - 1;
      Some (top.time, top.payload)
  end

let rec peek t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    match top.state with
    | Cancelled ->
      ignore (pop_root t);
      peek t
    | Live | Fired -> Some (top.time, top.payload)
  end

(* Keep the backing array so a reused queue (Engine.reset, repeated
   Monte-Carlo runs on one engine) never re-grows from scratch.  Slots
   are aliased to a single node so at most one stale payload is
   retained. *)
let clear t =
  if t.size > 0 then Array.fill t.heap 0 t.size t.heap.(0);
  t.size <- 0;
  t.live <- 0

let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some e -> go (e :: acc) in
  go []
