open Plookup_util
module Service = Plookup.Service
module Analytic = Plookup_metrics.Analytic
module Lookup_cost = Plookup_metrics.Lookup_cost

let id = "fig4"
let title = "Fig 4: lookup cost vs target answer size (fixed storage budget)"

let default_targets = [ 10; 15; 20; 25; 30; 35; 40; 45; 50 ]

let run ?(n = 10) ?(h = 100) ?(budget = 200) ?(targets = default_targets) ctx =
  let round = Service.storage_for_budget (Service.round_robin 1) ~n ~h ~total:budget in
  let random = Service.storage_for_budget (Service.random_server 1) ~n ~h ~total:budget in
  let hash = Service.storage_for_budget (Service.hash 1) ~n ~h ~total:budget in
  let y = Option.value ~default:1 (Service.param round) in
  let table =
    Table.create ~title
      ~columns:
        [ "t";
          Service.config_name round;
          "Round analytic";
          Service.config_name random;
          Service.config_name hash;
          Printf.sprintf "%s fail%%" (Service.config_name hash) ]
  in
  let runs = Ctx.scaled ctx 40 in
  let lookups_per_run = Ctx.scaled ctx 250 in
  let targets = Array.of_list targets in
  (* One parallel unit per target row: each derives everything from
     [run_seed ctx t], so rows are independent; they are re-assembled in
     input order below. *)
  let rows =
    Runner.map_obs ctx ~count:(Array.length targets) (fun i ~obs ->
        let t = targets.(i) in
        let measure config =
          Lookup_cost.measure_over_instances ~seed:(Ctx.run_seed ctx t) ~obs ~n ~entries:h
            ~config ~t ~runs ~lookups_per_run ()
        in
        (t, measure round, measure random, measure hash))
  in
  Array.iter
    (fun (t, m_round, m_random, m_hash) ->
      Table.add_row table
        [ Table.I t;
          Table.F m_round.Lookup_cost.mean_cost;
          Table.F (Analytic.round_robin_lookup_cost ~n ~h ~y ~t);
          Table.F m_random.Lookup_cost.mean_cost;
          Table.F m_hash.Lookup_cost.mean_cost;
          Table.F (100. *. m_hash.Lookup_cost.failure_rate) ])
    rows;
  table
