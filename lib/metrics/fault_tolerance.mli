(** Worst-case fault tolerance (Section 4.4, Appendix A): the maximum
    number of server failures — chosen adversarially — after which every
    [partial_lookup t] can still be satisfied.

    Finding the true minimum breaking set is SET-COVER-hard, so the
    paper uses a greedy heuristic: repeatedly fail the server with the
    highest importance score X_S = sum over its entries e of 1/f_e,
    where f_e counts the operational servers holding e.  {!exact} is a
    brute-force reference for validating the heuristic on small
    instances. *)

type placement = Plookup_util.Bitset.t array
(** One bitset of entry ids per server. *)

val snapshot : Plookup.Cluster.t -> capacity:int -> placement

val greedy : placement -> t:int -> int
(** Tolerance per the Appendix-A heuristic: the number of greedy
    failures that still leave coverage of at least [t].  Returns -1 when
    even the intact placement cannot cover [t] (no lookup of size [t]
    ever succeeds).  [t] must be positive. *)

val exact : placement -> t:int -> int
(** Exhaustive minimum breaking set (tolerance = |set| - 1), exponential
    in the server count; intended for <= ~15 servers in tests.  Same
    conventions as {!greedy}.  Being exact, [exact p ~t <= greedy-claimed
    tolerance] can fail only one way: greedy over-estimates never,
    under-estimates possibly — i.e. [exact >= greedy]. *)

val greedy_failure_order : placement -> int list
(** The order in which the heuristic would fail all servers (most
    important first) — exposed for diagnostics and tests. *)

val measure_over_instances :
  ?seed:int ->
  ?obs:Plookup_obs.Obs.t ->
  ?shards:int ->
  n:int ->
  entries:int ->
  config:Plookup.Service.config ->
  t:int ->
  runs:int ->
  unit ->
  float * float
(** Mean and 95% CI of {!greedy} tolerance over fresh placements —
    Fig. 7's protocol. *)
