open Plookup
open Plookup_store
module Net = Plookup_net.Net

let make ?(seed = 6) ~n ~h ~y () =
  let cluster = Cluster.create ~seed ~n () in
  let s = Hash_scheme.create cluster ~y in
  let batch = Helpers.entries h in
  Hash_scheme.place s batch;
  (cluster, s, batch)

let check_invariants s ~placed =
  match Hash_scheme.check_invariants s ~placed with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_servers_of_deterministic () =
  let cluster = Cluster.create ~seed:6 ~n:8 () in
  let s = Hash_scheme.create cluster ~y:3 in
  let e = Entry.v 42 in
  Alcotest.(check (list int)) "stable" (Hash_scheme.servers_of s e) (Hash_scheme.servers_of s e);
  List.iter
    (fun server -> if server < 0 || server >= 8 then Alcotest.failf "server %d" server)
    (Hash_scheme.servers_of s e)

let test_servers_of_dedups () =
  let cluster = Cluster.create ~seed:6 ~n:2 () in
  (* y = 5 over 2 servers necessarily collides. *)
  let s = Hash_scheme.create cluster ~y:5 in
  let targets = Hash_scheme.servers_of s (Entry.v 7) in
  Helpers.check_int "distinct targets" (List.length targets)
    (List.length (List.sort_uniq compare targets));
  Alcotest.(check bool) "at most n" true (List.length targets <= 2)

let test_placement_matches_hashes () =
  let _, s, batch = make ~n:7 ~h:40 ~y:2 () in
  check_invariants s ~placed:batch

let test_seed_changes_placement () =
  let cluster_a = Cluster.create ~seed:1 ~n:10 () in
  let cluster_b = Cluster.create ~seed:2 ~n:10 () in
  let sa = Hash_scheme.create cluster_a ~y:2 in
  let sb = Hash_scheme.create cluster_b ~y:2 in
  let entries = Helpers.entries 50 in
  let placements strategy = List.map (Hash_scheme.servers_of strategy) entries in
  Alcotest.(check bool) "different seeds, different hashes" true
    (placements sa <> placements sb)

let test_uneven_occupancy () =
  (* Hash-y gives no per-server guarantee — with 100 entries on 10
     servers the min and max occupancy differ. *)
  let cluster, _, _ = make ~n:10 ~h:100 ~y:2 () in
  let sizes = List.init 10 (fun i -> Server_store.cardinal (Cluster.store cluster i)) in
  Alcotest.(check bool) "uneven" true
    (List.fold_left max 0 sizes > List.fold_left min max_int sizes)

let test_expected_storage () =
  (* Mean total storage over seeds ~ h*n*(1-(1-1/n)^y) = 190 for
     h=100, n=10, y=2. *)
  let acc = Plookup_util.Stats.Accum.create () in
  for seed = 1 to 60 do
    let cluster, _, _ = make ~seed ~n:10 ~h:100 ~y:2 () in
    Plookup_util.Stats.Accum.add acc (float_of_int (Cluster.total_stored cluster))
  done;
  Helpers.roughly ~rel:0.02 "expected storage" 190. (Plookup_util.Stats.Accum.mean acc)

let test_add_touches_only_hashed_servers () =
  let cluster, s, _ = make ~n:10 ~h:20 ~y:3 () in
  let e = Entry.v 500 in
  let targets = Hash_scheme.servers_of s e in
  Net.reset_counters (Cluster.net cluster);
  Hash_scheme.add s e;
  Helpers.check_int "1 + |targets| messages"
    (1 + List.length targets)
    (Net.messages_received (Cluster.net cluster));
  for server = 0 to 9 do
    Helpers.check_bool
      (Printf.sprintf "server %d correct" server)
      (List.mem server targets)
      (Server_store.mem (Cluster.store cluster server) e)
  done

let test_delete_removes_copies () =
  let cluster, s, batch = make ~n:10 ~h:20 ~y:3 () in
  let victim = List.hd batch in
  Net.reset_counters (Cluster.net cluster);
  Hash_scheme.delete s victim;
  let targets = Hash_scheme.servers_of s victim in
  Helpers.check_int "1 + |targets|" (1 + List.length targets)
    (Net.messages_received (Cluster.net cluster));
  for server = 0 to 9 do
    Alcotest.(check bool) "gone" false (Server_store.mem (Cluster.store cluster server) victim)
  done;
  check_invariants s ~placed:(List.tl batch)

let test_no_broadcasts_ever () =
  let cluster, s, batch = make ~n:10 ~h:20 ~y:2 () in
  Hash_scheme.add s (Entry.v 300);
  Hash_scheme.delete s (List.hd batch);
  Helpers.check_int "zero broadcasts" 0 (Net.broadcasts (Cluster.net cluster))

let test_budget_truncates_round_major () =
  let cluster = Cluster.create ~seed:6 ~n:10 () in
  let s = Hash_scheme.create cluster ~y:2 in
  Hash_scheme.place ~budget:100 s (Helpers.entries 100);
  (* First hash round stores each entry exactly once: full coverage. *)
  Helpers.check_int "coverage complete at budget h" 100
    (Entry.Set.cardinal (Cluster.coverage cluster));
  Helpers.check_int "exactly h copies" 100 (Cluster.total_stored cluster)

let test_budget_below_h () =
  let cluster = Cluster.create ~seed:6 ~n:10 () in
  let s = Hash_scheme.create cluster ~y:1 in
  Hash_scheme.place ~budget:40 s (Helpers.entries 100);
  Helpers.check_int "coverage = budget" 40 (Entry.Set.cardinal (Cluster.coverage cluster))

let test_lookup_may_need_extra_server () =
  (* With t close to the average occupancy, some lookups hit a small
     server and need a second: mean cost > 1 (the Fig. 4 effect). *)
  let _, s, _ = make ~n:10 ~h:100 ~y:2 () in
  let total = ref 0 in
  let lookups = 500 in
  for _ = 1 to lookups do
    let r = Hash_scheme.partial_lookup s 15 in
    total := !total + r.Lookup_result.servers_contacted;
    Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r)
  done;
  Alcotest.(check bool) "mean cost > 1" true (!total > lookups)

let test_rejects_bad_y () =
  let cluster = Cluster.create ~n:3 () in
  Alcotest.check_raises "y = 0" (Invalid_argument "Hash_scheme.create: y must be at least 1")
    (fun () -> ignore (Hash_scheme.create cluster ~y:0))

let prop_invariant_under_updates =
  Helpers.qcheck ~count:100 "hash invariant survives random update streams"
    QCheck2.Gen.(list_size (int_range 0 60) (pair bool (int_range 0 30)))
    (fun ops ->
      let cluster = Cluster.create ~seed:31 ~n:6 () in
      let s = Hash_scheme.create cluster ~y:2 in
      let batch = Helpers.entries 10 in
      Hash_scheme.place s batch;
      let live = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace live (Entry.id e) e) batch;
      List.iter
        (fun (is_add, i) ->
          let e = Entry.v (100 + i) in
          if is_add then begin
            Hashtbl.replace live (Entry.id e) e;
            Hash_scheme.add s e
          end
          else begin
            Hashtbl.remove live (Entry.id e);
            Hash_scheme.delete s e
          end)
        ops;
      let placed = Hashtbl.fold (fun _ e acc -> e :: acc) live [] in
      Hash_scheme.check_invariants s ~placed = Ok ())

let () =
  Helpers.run "hash_scheme"
    [ ( "hash_scheme",
        [ Alcotest.test_case "servers_of deterministic" `Quick test_servers_of_deterministic;
          Alcotest.test_case "servers_of dedups" `Quick test_servers_of_dedups;
          Alcotest.test_case "placement matches hashes" `Quick test_placement_matches_hashes;
          Alcotest.test_case "seed changes placement" `Quick test_seed_changes_placement;
          Alcotest.test_case "uneven occupancy" `Quick test_uneven_occupancy;
          Alcotest.test_case "expected storage" `Slow test_expected_storage;
          Alcotest.test_case "add touches hashed only" `Quick test_add_touches_only_hashed_servers;
          Alcotest.test_case "delete removes copies" `Quick test_delete_removes_copies;
          Alcotest.test_case "no broadcasts" `Quick test_no_broadcasts_ever;
          Alcotest.test_case "budget round-major" `Quick test_budget_truncates_round_major;
          Alcotest.test_case "budget below h" `Quick test_budget_below_h;
          Alcotest.test_case "extra server effect" `Quick test_lookup_may_need_extra_server;
          Alcotest.test_case "rejects bad y" `Quick test_rejects_bad_y;
          prop_invariant_under_updates ] ) ]
