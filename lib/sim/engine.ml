type event_id = int

type event = { id : event_id; action : t -> unit }
and t = {
  queue : event Event_queue.t;
  cancelled : (event_id, unit) Hashtbl.t;
  scheduled : (event_id, unit) Hashtbl.t;
  mutable clock : float;
  mutable next_id : event_id;
  mutable live : int;
}

let create () =
  { queue = Event_queue.create ();
    cancelled = Hashtbl.create 64;
    scheduled = Hashtbl.create 64;
    clock = 0.;
    next_id = 0;
    live = 0 }

let now t = t.clock

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  let id = t.next_id in
  t.next_id <- id + 1;
  t.live <- t.live + 1;
  Hashtbl.replace t.scheduled id ();
  Event_queue.push t.queue ~time { id; action };
  id

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

(* Only ids still sitting in the queue may be cancelled: cancelling an
   event that already fired (or was already cancelled) is a no-op, so
   [live] stays accurate and the cancelled table holds no stale ids. *)
let cancel t id =
  if Hashtbl.mem t.scheduled id then begin
    Hashtbl.remove t.scheduled id;
    Hashtbl.replace t.cancelled id ();
    t.live <- t.live - 1
  end

let pending t = t.live

(* Pop until a non-cancelled event surfaces. *)
let rec pop_live t =
  match Event_queue.pop t.queue with
  | None -> None
  | Some (time, ev) ->
    if Hashtbl.mem t.cancelled ev.id then begin
      Hashtbl.remove t.cancelled ev.id;
      pop_live t
    end
    else Some (time, ev)

(* Like {!pop_live} but leaves the surfaced live event in the queue;
   cancelled events ahead of it are purged.  [run ~until] must compare
   the horizon against the next event that will actually *fire* — a
   cancelled event's earlier timestamp must not let a later live event
   slip past the horizon. *)
let rec peek_live t =
  match Event_queue.peek t.queue with
  | None -> None
  | Some (time, ev) ->
    if Hashtbl.mem t.cancelled ev.id then begin
      ignore (Event_queue.pop t.queue);
      Hashtbl.remove t.cancelled ev.id;
      peek_live t
    end
    else Some (time, ev)

let step t =
  match pop_live t with
  | None -> false
  | Some (time, ev) ->
    t.clock <- time;
    t.live <- t.live - 1;
    Hashtbl.remove t.scheduled ev.id;
    ev.action t;
    true

let run ?max_events ?until t =
  let fired = ref 0 in
  let budget_ok () = match max_events with None -> true | Some m -> !fired < m in
  let continue = ref true in
  while !continue && budget_ok () do
    match peek_live t with
    | None -> continue := false
    | Some (time, _) ->
      (match until with
      | Some horizon when time > horizon ->
        t.clock <- max t.clock horizon;
        continue := false
      | _ -> if step t then incr fired else continue := false)
  done;
  (match (until, peek_live t) with
  | Some horizon, None -> t.clock <- max t.clock horizon
  | _ -> ());
  !fired

let reset t =
  Event_queue.clear t.queue;
  Hashtbl.reset t.cancelled;
  Hashtbl.reset t.scheduled;
  t.clock <- 0.;
  t.live <- 0
