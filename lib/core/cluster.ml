open Plookup_store
open Plookup_util
module Net = Plookup_net.Net
module Obs = Plookup_obs.Obs

type t = {
  n : int;
  seed : int;
  rng : Rng.t;
  net : (Msg.t, Msg.reply) Net.t;
  stores : Server_store.t array;
  obs : Obs.t;
}

let create ?(seed = 0) ?obs ~n () =
  if n <= 0 then invalid_arg "Cluster.create: n must be positive";
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let net = Net.create ~metrics:obs.Obs.metrics ~n () in
  Net.set_planes net ~names:Msg.plane_names ~classify:Msg.plane_index;
  Net.set_trace net obs.Obs.trace ~coder:(Msg.trace_coder obs.Obs.trace);
  { n;
    seed;
    rng = Rng.create seed;
    net;
    stores = Array.init n (fun _ -> Server_store.create ());
    obs }

let n t = t.n
let seed t = t.seed
let rng t = t.rng
let net t = t.net
let obs t = t.obs

let store t i =
  if i < 0 || i >= t.n then invalid_arg "Cluster.store: server index out of range";
  t.stores.(i)

let fail t i = Net.fail t.net i
let recover t i = Net.recover t.net i
let is_up t i = Net.is_up t.net i
let up_servers t = Net.up_servers t.net
let fail_exactly t down = Net.fail_exactly t.net down

let set_faults t ?seed ?loss ?duplication ?jitter () =
  let seed = Option.value seed ~default:t.seed in
  Net.set_faults t.net ~seed ?loss ?duplication ?jitter ()

let clear_faults t = Net.clear_faults t.net
let set_faults_enabled t on = Net.set_faults_enabled t.net on

let set_capacity t ~service_rate ~queue_limit ?(nack = false) () =
  Net.set_capacity t.net ~service_rate ~queue_limit
    ?nack:(if nack then Some Msg.Busy else None)
    ()

let clear_capacity t = Net.clear_capacity t.net
let set_degraded t i ~factor = Net.set_degraded t.net i ~factor
let degraded_factor t i = Net.degraded_factor t.net i
let queue_depth t i = Net.queue_depth t.net i
let messages_shed t = Net.messages_shed t.net
let partition t ~name ?clients ~a ~b () = Net.partition t.net ~name ?clients ~a ~b ()
let heal t ~name = Net.heal t.net ~name
let heal_all t = Net.heal_all t.net

let up_count t = Net.up_count t.net
let up_servers_into t buf = Net.up_servers_into t.net buf

(* One [Rng.int] draw over the up-count, resolved by rank — the same
   draw (and the same server: the k-th smallest up id) as the old
   [List.nth up_servers] scan, in O(log n) instead of O(n). *)
let random_up_server t =
  match up_count t with
  | 0 -> None
  | up -> Some (Net.kth_up t.net (Rng.int t.rng up))

let next_up_from t i =
  if i < 0 || i >= t.n then invalid_arg "Cluster.next_up_from: server index out of range";
  let rec go k =
    if k >= t.n then None
    else begin
      let s = (i + k) mod t.n in
      if is_up t s then Some s else go (k + 1)
    end
  in
  go 1

let total_stored t = Array.fold_left (fun acc s -> acc + Server_store.cardinal s) 0 t.stores

let coverage t =
  List.fold_left
    (fun acc i ->
      Server_store.fold (fun e acc -> Entry.Set.add e acc) t.stores.(i) acc)
    Entry.Set.empty (up_servers t)

let placement t = Array.map Server_store.to_list t.stores

let snapshot_bitsets t ~capacity =
  Array.map (fun s -> Server_store.snapshot_bitset s ~capacity) t.stores

let clear_stores t = Array.iter Server_store.clear t.stores

let pp ppf t =
  Format.fprintf ppf "cluster n=%d seed=%d@." t.n t.seed;
  Array.iteri
    (fun i s ->
      Format.fprintf ppf "  server %d%s: %a@." i
        (if is_up t i then "" else " (down)")
        Server_store.pp s)
    t.stores
