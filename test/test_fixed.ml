open Plookup
open Plookup_store
module Net = Plookup_net.Net

let make ?(seed = 5) ~n ~h ~x () =
  let cluster = Cluster.create ~seed ~n () in
  let s = Fixed.create cluster ~x in
  let batch = Helpers.entries h in
  Fixed.place s batch;
  (cluster, s, batch)

let test_keeps_first_x () =
  let cluster, _, _ = make ~n:3 ~h:10 ~x:4 () in
  for server = 0 to 2 do
    Alcotest.(check (list int)) "first x entries" [ 0; 1; 2; 3 ]
      (Helpers.sorted_ids (Server_store.to_list (Cluster.store cluster server)))
  done

let test_all_servers_identical () =
  let cluster, _, _ = make ~n:5 ~h:20 ~x:7 () in
  let reference = Helpers.sorted_ids (Server_store.to_list (Cluster.store cluster 0)) in
  for server = 1 to 4 do
    Alcotest.(check (list int)) "identical" reference
      (Helpers.sorted_ids (Server_store.to_list (Cluster.store cluster server)))
  done

let test_storage_x_n () =
  let cluster, _, _ = make ~n:5 ~h:20 ~x:7 () in
  Helpers.check_int "x*n" 35 (Cluster.total_stored cluster)

let test_small_h_keeps_all () =
  let cluster, _, _ = make ~n:2 ~h:3 ~x:10 () in
  Helpers.check_int "only h entries exist" 3
    (Server_store.cardinal (Cluster.store cluster 0))

let test_lookup_cost_one_when_t_le_x () =
  let _, s, _ = make ~n:4 ~h:20 ~x:8 () in
  for t = 1 to 8 do
    let r = Fixed.partial_lookup s t in
    Helpers.check_int "one server" 1 r.Lookup_result.servers_contacted;
    Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r)
  done

let test_lookup_beyond_x_unsatisfied () =
  let _, s, _ = make ~n:4 ~h:20 ~x:8 () in
  let r = Fixed.partial_lookup s 9 in
  Alcotest.(check bool) "cannot satisfy t > x" false (Lookup_result.satisfied r);
  Helpers.check_int "returns the x it has" 8 (Lookup_result.count r)

let test_selective_broadcast_add () =
  (* While full (x entries), adds are absorbed at the contacted server. *)
  let cluster, s, _ = make ~n:4 ~h:10 ~x:5 () in
  Net.reset_counters (Cluster.net cluster);
  Fixed.add s (Entry.v 100);
  Helpers.check_int "full: 1 message only" 1 (Net.messages_received (Cluster.net cluster));
  Helpers.check_int "nothing stored" 5 (Server_store.cardinal (Cluster.store cluster 0))

let test_broadcast_when_below_x () =
  let cluster, s, batch = make ~n:4 ~h:10 ~x:5 () in
  (* Delete one tracked entry -> servers drop to 4 -> next add broadcasts. *)
  Fixed.delete s (List.hd batch);
  Helpers.check_int "hole" 4 (Server_store.cardinal (Cluster.store cluster 0));
  Net.reset_counters (Cluster.net cluster);
  Fixed.add s (Entry.v 100);
  Helpers.check_int "1 + n messages" 5 (Net.messages_received (Cluster.net cluster));
  for server = 0 to 3 do
    Alcotest.(check bool) "refilled everywhere" true
      (Server_store.mem (Cluster.store cluster server) (Entry.v 100))
  done

let test_delete_untracked_is_cheap () =
  let cluster, s, _ = make ~n:4 ~h:10 ~x:5 () in
  Net.reset_counters (Cluster.net cluster);
  Fixed.delete s (Entry.v 9) (* beyond the first x: not tracked *);
  Helpers.check_int "1 message only" 1 (Net.messages_received (Cluster.net cluster));
  Helpers.check_int "stores unchanged" 5 (Server_store.cardinal (Cluster.store cluster 0))

let test_delete_tracked_broadcasts () =
  let cluster, s, batch = make ~n:4 ~h:10 ~x:5 () in
  Net.reset_counters (Cluster.net cluster);
  Fixed.delete s (List.hd batch);
  Helpers.check_int "1 + n messages" 5 (Net.messages_received (Cluster.net cluster))

let test_cushion_semantics () =
  (* x = t + b: after b deletes of tracked entries with no adds, lookups
     for t still succeed; after one more they fail. *)
  let t = 3 and b = 2 in
  let _, s, batch = make ~n:3 ~h:10 ~x:(t + b) () in
  let tracked = List.filteri (fun i _ -> i < t + b) batch in
  List.iteri (fun i e -> if i < b then Fixed.delete s e) tracked;
  Alcotest.(check bool) "cushion holds" true
    (Lookup_result.satisfied (Fixed.partial_lookup s t));
  Fixed.delete s (List.nth tracked b);
  Alcotest.(check bool) "cushion exhausted" false
    (Lookup_result.satisfied (Fixed.partial_lookup s t))

let test_refill_after_delete_then_add () =
  let _, s, batch = make ~n:3 ~h:10 ~x:4 () in
  Fixed.delete s (List.hd batch);
  Fixed.add s (Entry.v 200);
  let r = Fixed.partial_lookup s 4 in
  Alcotest.(check bool) "back to x" true (Lookup_result.satisfied r)

let test_rejects_bad_x () =
  let cluster = Cluster.create ~n:2 () in
  Alcotest.check_raises "x = 0" (Invalid_argument "Fixed.create: x must be positive")
    (fun () -> ignore (Fixed.create cluster ~x:0))

let test_fault_tolerance_n_minus_1 () =
  let cluster, s, _ = make ~n:5 ~h:10 ~x:4 () in
  List.iter (Cluster.fail cluster) [ 1; 2; 3; 4 ];
  Alcotest.(check bool) "one survivor suffices" true
    (Lookup_result.satisfied (Fixed.partial_lookup s 4))

let prop_add_never_exceeds_x =
  Helpers.qcheck "server occupancy never exceeds x"
    QCheck2.Gen.(pair (int_range 1 10) (list (int_range 0 30)))
    (fun (x, ids) ->
      let cluster = Cluster.create ~seed:9 ~n:3 () in
      let s = Fixed.create cluster ~x in
      Fixed.place s (Helpers.entries 5);
      List.iter (fun i -> Fixed.add s (Entry.v (100 + i))) ids;
      List.for_all
        (fun server -> Server_store.cardinal (Cluster.store cluster server) <= x)
        [ 0; 1; 2 ])

let () =
  Helpers.run "fixed"
    [ ( "fixed",
        [ Alcotest.test_case "keeps first x" `Quick test_keeps_first_x;
          Alcotest.test_case "servers identical" `Quick test_all_servers_identical;
          Alcotest.test_case "storage x*n" `Quick test_storage_x_n;
          Alcotest.test_case "small h" `Quick test_small_h_keeps_all;
          Alcotest.test_case "lookup cost 1" `Quick test_lookup_cost_one_when_t_le_x;
          Alcotest.test_case "t > x unsatisfied" `Quick test_lookup_beyond_x_unsatisfied;
          Alcotest.test_case "selective broadcast" `Quick test_selective_broadcast_add;
          Alcotest.test_case "broadcast below x" `Quick test_broadcast_when_below_x;
          Alcotest.test_case "cheap untracked delete" `Quick test_delete_untracked_is_cheap;
          Alcotest.test_case "tracked delete broadcasts" `Quick test_delete_tracked_broadcasts;
          Alcotest.test_case "cushion semantics" `Quick test_cushion_semantics;
          Alcotest.test_case "refill" `Quick test_refill_after_delete_then_add;
          Alcotest.test_case "rejects bad x" `Quick test_rejects_bad_x;
          Alcotest.test_case "n-1 tolerance" `Quick test_fault_tolerance_n_minus_1;
          prop_add_never_exceeds_x ] ) ]
