(* P2P overlays with limited reachability (Section 7.2).

   In a Gnutella-style overlay a client only reaches directory servers
   within a few hops.  We arrange the 12 servers in a ring, give each
   client a home position, and let it contact only servers within hop
   distance d.  Sweeping d shows the trade-off the paper sketches:
   small d caps how much of the mapping a client can see (lookups fail
   or cost more), large d approaches the fully-connected behaviour.

   Run with: dune exec examples/p2p_reachability.exe *)

open Plookup
open Plookup_store
open Plookup_util

let n = 12
let h = 60
let t = 20
let lookups = 2000

let ring_distance a b =
  let d = abs (a - b) mod n in
  min d (n - d)

let run config =
  let service = Service.create ~seed:9 ~n config in
  Service.place service (Entry.Gen.batch (Entry.Gen.create ()) h);
  let rng = Rng.create 4 in
  Format.printf "@.%s:@." (Service.config_name config);
  Format.printf "  %-4s %-12s %-12s %s@." "d" "success" "avg servers" "avg entries";
  List.iter
    (fun d ->
      let ok = ref 0 and contacts = ref 0 and got = ref 0 in
      for _ = 1 to lookups do
        let home = Rng.int rng n in
        let reachable server = ring_distance home server <= d in
        let r = Service.partial_lookup ~reachable service t in
        if Lookup_result.satisfied r then incr ok;
        contacts := !contacts + r.Lookup_result.servers_contacted;
        got := !got + Lookup_result.count r
      done;
      Format.printf "  %-4d %10.1f%% %12.2f %11.1f@." d
        (100. *. float_of_int !ok /. float_of_int lookups)
        (float_of_int !contacts /. float_of_int lookups)
        (float_of_int !got /. float_of_int lookups))
    [ 0; 1; 2; 3; 6 ]

let () =
  Format.printf
    "limited reachability: %d servers in a ring, clients reach hop distance d,@.\
     %d entries, target %d@."
    n h t;
  (* RoundRobin concentrates each entry on consecutive servers: a client
     near them sees a lot, one far away sees nothing.  Hash scatters
     copies, so even a small neighbourhood usually has something. *)
  run (Service.round_robin 2);
  run (Service.hash 2);
  run (Service.fixed 20);
  Format.printf
    "@.Fixed-x needs only one reachable server (every server is identical), while the@.\
     partitioned strategies need a neighbourhood big enough to cover t entries —@.\
     the placement/reachability interplay Section 7.2 raises.@."
