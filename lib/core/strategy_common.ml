(** Handler plumbing shared by every placement strategy.

    Each strategy supplies a data-plane handler (exhaustive over the
    four client requests) and optionally a strategy-plane handler for
    the messages it actually sends itself, delegating the rest to
    {!default_strategy}.  The repair plane never reaches a strategy:
    {!Repair} intercepts it when installed, and {!install} acks it
    harmlessly when not. *)

open Plookup_store
module Net = Plookup_net.Net

(** The uniform store semantics: point store/remove mutate the local
    store, a batch replaces it wholesale.  The remaining strategy-plane
    messages belong to other strategies' protocols; a server that is
    not running those protocols acknowledges and ignores them (exactly
    what a real deployment does with a stray message for a feature it
    has not enabled). *)
let default_strategy cluster dst (msg : Msg.strategy) : Msg.reply =
  let local = Cluster.store cluster dst in
  match msg with
  | Msg.Store e ->
    ignore (Server_store.add local e);
    Msg.Ack
  | Msg.Store_batch entries ->
    Server_store.clear local;
    List.iter (fun e -> ignore (Server_store.add local e)) entries;
    Msg.Ack
  | Msg.Remove e ->
    ignore (Server_store.remove local e);
    Msg.Ack
  | Msg.Add_sampled _ | Msg.Remove_counted _ | Msg.Fetch_candidate _ | Msg.Sync_add _
  | Msg.Sync_delete _ | Msg.Sync_state ->
    Msg.Ack

let lookup_reply cluster dst target : Msg.reply =
  Msg.Entries (Server_store.random_pick (Cluster.store cluster dst) (Cluster.rng cluster) target)

(** Install the plane dispatcher as the cluster's handler.  [strategy]
    defaults to {!default_strategy} alone. *)
let install ?strategy cluster ~data =
  let strategy =
    match strategy with Some f -> f | None -> fun dst _src msg -> default_strategy cluster dst msg
  in
  Net.set_handler (Cluster.net cluster) (fun dst src msg ->
      match (msg : Msg.t) with
      | Msg.Data d -> data dst src d
      | Msg.Strategy s -> strategy dst src s
      | Msg.Repair _ -> Msg.Ack)

(** Client-side: hand a request to any operational server (no-op when
    the whole cluster is down, like a real client timing out). *)
let to_random_server cluster msg =
  match Cluster.random_up_server cluster with
  | None -> ()
  | Some s -> ignore (Net.send (Cluster.net cluster) ~src:Net.Client ~dst:s msg)

let any_up cluster = Cluster.up_count cluster > 0

(** Shared [params] decoding for {!Strategy_intf.S.create}. *)
let one_param ~who ~what = function
  | [ p ] when p > 0 -> p
  | [ p ] -> invalid_arg (Printf.sprintf "%s: %s must be positive (got %d)" who what p)
  | params ->
    invalid_arg
      (Printf.sprintf "%s: expected one parameter (%s), got %d" who what
         (List.length params))

let no_params ~who = function
  | [] -> ()
  | params ->
    invalid_arg
      (Printf.sprintf "%s: expected no parameters, got %d" who (List.length params))
