open Plookup_store
open Plookup_util
module Engine = Plookup_sim.Engine
module Shard = Plookup_sim.Shard
module Net = Plookup_net.Net
module Churn = Plookup_workload.Churn

let stripes = 4
let replicas = 3
let intra = 1.0
let lookahead = 5.0

type stripe_tally = {
  stripe : int;
  lookups : int;
  found : int;
  failed : int;
  local_probes : int;
  cross_probes : int;
  probes_served : int;
  fallbacks : int;
  final_up : int;
}

type result = {
  n : int;
  entries : int;
  events : int;
  lookups : int;
  found : int;
  failed : int;
  probes : int;
  per_stripe : stripe_tally array;
}

type tally = {
  mutable t_lookups : int;
  mutable t_found : int;
  mutable t_failed : int;
  mutable t_local : int;
  mutable t_cross : int;
  mutable t_served : int;
  mutable t_fallbacks : int;
}

type msg =
  | Probe of { key : int; attempt : int; home : int; srv : int }
  | Reply of { key : int; attempt : int; found : bool }

(* Deterministic hash placement: candidate [a] of entry [key], as a
   function of the run seed only — every stripe computes the same
   candidate list without sharing state. *)
let candidate ~seed ~n key a =
  Int64.to_int (Rng.mix64 (Int64.of_int ((seed lxor 0x9E3779B9) + (key * 8) + a)))
  land max_int mod n

let exp_draw rng lambda = -.log (1. -. Rng.unit_float rng) /. lambda

let to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "n=%d entries=%d events=%d lookups=%d found=%d failed=%d probes=%d"
       r.n r.entries r.events r.lookups r.found r.failed r.probes);
  Array.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf " | s%d l=%d f=%d x=%d lp=%d cp=%d sv=%d fb=%d up=%d" s.stripe
           s.lookups s.found s.failed s.local_probes s.cross_probes s.probes_served
           s.fallbacks s.final_up))
    r.per_stripe;
  Buffer.contents b

let run ?gang ?(workers = 1) ?mttf ?mttr ~n ~entries ~rate ~horizon ~seed () =
  if n < 1 then invalid_arg "Shard_sim.run: n must be at least 1";
  if entries < 1 then invalid_arg "Shard_sim.run: entries must be at least 1";
  if rate <= 0. then invalid_arg "Shard_sim.run: rate must be positive";
  if horizon <= 0. then invalid_arg "Shard_sim.run: horizon must be positive";
  if workers < 1 then invalid_arg "Shard_sim.run: workers must be at least 1";
  let mttf = match mttf with Some x -> x | None -> horizon /. 2. in
  let mttr = match mttr with Some x -> x | None -> horizon /. 10. in
  let shard = Shard.create ~shards:stripes ~lookahead () in
  (* One net per stripe: stripe [s] is authoritative for its own
     servers' up state (only its churn stream fails/recovers them) and
     answers its own fallback picks from the stripe-local Fenwick
     view.  The nets never carry messages — cross-stripe traffic goes
     through [Shard.send]. *)
  let nets =
    Array.init stripes (fun _ ->
        let (net : (unit, unit) Net.t) = Net.create ~n () in
        Net.attach_stripe_views net ~stripes;
        net)
  in
  let stores = Array.init n (fun _ -> Server_store.create ()) in
  let entry_of = Array.init entries (fun j -> Entry.v j) in
  (* Placement on the coordinating domain, before any domain exists. *)
  for j = 0 to entries - 1 do
    for a = 0 to replicas - 1 do
      ignore (Server_store.add stores.(candidate ~seed ~n j a) entry_of.(j))
    done
  done;
  let tallies =
    Array.init stripes (fun _ ->
        { t_lookups = 0;
          t_found = 0;
          t_failed = 0;
          t_local = 0;
          t_cross = 0;
          t_served = 0;
          t_fallbacks = 0 })
  in
  (* Per-stripe RNG streams derived from the run seed + stripe id +
     purpose tag, so the draw sequences are independent of worker
     count and of each other. *)
  let derive tag s =
    Int64.to_int (Rng.mix64 (Int64.of_int ((seed * 1_000_003) + (tag * 97) + s)))
    land max_int
  in
  let rngs = Array.init stripes (fun s -> Rng.create (derive 1 s)) in
  let up_in_stripe s srv = Net.is_up nets.(s) srv in
  let has_entry srv key = Server_store.mem stores.(srv) entry_of.(key) in
  let rec next_attempt s key attempt =
    let eng = Shard.engine shard s in
    let tal = tallies.(s) in
    if attempt < replicas then begin
      let srv = candidate ~seed ~n key attempt in
      let d = Net.stripe_of nets.(s) srv in
      if d = s then begin
        tal.t_local <- tal.t_local + 1;
        ignore
          (Engine.schedule_after eng ~delay:(2. *. intra) (fun _ ->
               if up_in_stripe s srv && has_entry srv key then
                 tal.t_found <- tal.t_found + 1
               else next_attempt s key (attempt + 1)))
      end
      else begin
        tal.t_cross <- tal.t_cross + 1;
        Shard.send shard ~src:s ~dst:d
          ~time:(Engine.now eng +. lookahead)
          (Probe { key; attempt; home = s; srv })
      end
    end
    else begin
      (* All hash candidates exhausted: the paper's random re-probing,
         answered from the stripe-local up view. *)
      tal.t_fallbacks <- tal.t_fallbacks + 1;
      let up = Net.stripe_up_count nets.(s) s in
      if up = 0 then tal.t_failed <- tal.t_failed + 1
      else begin
        let srv = Net.stripe_kth_up nets.(s) s (Rng.int rngs.(s) up) in
        ignore
          (Engine.schedule_after eng ~delay:(2. *. intra) (fun _ ->
               if up_in_stripe s srv && has_entry srv key then
                 tal.t_found <- tal.t_found + 1
               else tal.t_failed <- tal.t_failed + 1))
      end
    end
  in
  let handle s _eng msg =
    match msg with
    | Probe { key; attempt; home; srv } ->
        let tal = tallies.(s) in
        tal.t_served <- tal.t_served + 1;
        let found = up_in_stripe s srv && has_entry srv key in
        Shard.send shard ~src:s ~dst:home
          ~time:(Engine.now (Shard.engine shard s) +. lookahead)
          (Reply { key; attempt; found })
    | Reply { key; attempt; found } ->
        if found then tallies.(s).t_found <- tallies.(s).t_found + 1
        else next_attempt s key (attempt + 1)
  in
  for s = 0 to stripes - 1 do
    Shard.set_receiver shard s (fun eng ~time msg ->
        ignore (Engine.schedule_at eng ~time (fun e -> handle s e msg)))
  done;
  (* Poisson arrivals, rate/stripes per stripe, self-scheduling so the
     stream lives on the stripe's own engine and RNG. *)
  let stripe_rate = rate /. float_of_int stripes in
  let rec arrival s eng =
    let tal = tallies.(s) in
    tal.t_lookups <- tal.t_lookups + 1;
    next_attempt s (Rng.int rngs.(s) entries) 0;
    let next = Engine.now eng +. exp_draw rngs.(s) stripe_rate in
    if next <= horizon then ignore (Engine.schedule_at eng ~time:next (arrival s))
  in
  for s = 0 to stripes - 1 do
    let eng = Shard.engine shard s in
    let first = exp_draw rngs.(s) stripe_rate in
    if first <= horizon then ignore (Engine.schedule_at eng ~time:first (arrival s))
  done;
  (* Per-stripe churn over the stripe's own servers. *)
  for s = 0 to stripes - 1 do
    let lo, hi = Net.stripe_bounds nets.(s) s in
    if hi > lo then begin
      let events =
        Churn.generate (Rng.create (derive 2 s)) ~n:(hi - lo) ~mttf ~mttr ~horizon
      in
      Churn.drive (Shard.engine shard s)
        ~apply:(fun (ev : Churn.event) ->
          let srv = lo + ev.server in
          if ev.up then Net.recover nets.(s) srv else Net.fail nets.(s) srv)
        events
    end
  done;
  let events =
    match gang with
    | Some g -> Shard.run ~gang:g ~until:horizon shard
    | None ->
        if workers = 1 then Shard.run ~until:horizon shard
        else begin
          let g = Pool.Gang.create ~workers in
          Fun.protect
            ~finally:(fun () -> Pool.Gang.shutdown g)
            (fun () -> Shard.run ~gang:g ~until:horizon shard)
        end
  in
  let per_stripe =
    Array.init stripes (fun s ->
        let tal = tallies.(s) in
        { stripe = s;
          lookups = tal.t_lookups;
          found = tal.t_found;
          failed = tal.t_failed;
          local_probes = tal.t_local;
          cross_probes = tal.t_cross;
          probes_served = tal.t_served;
          fallbacks = tal.t_fallbacks;
          final_up = Net.stripe_up_count nets.(s) s })
  in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 per_stripe in
  { n;
    entries;
    events;
    lookups = sum (fun t -> t.lookups);
    found = sum (fun t -> t.found);
    failed = sum (fun t -> t.failed);
    probes = sum (fun t -> t.local_probes + t.cross_probes + t.fallbacks);
    per_stripe }
