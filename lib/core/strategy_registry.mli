(** The single source of truth for which placement strategies exist.

    Strategy modules register themselves at module-initialization time
    (the [lib/core] library is linked with [-linkall] so an otherwise
    unreferenced strategy module still registers).  Everything that
    needs to enumerate or resolve strategies — {!Service} parsing and
    [all_configs], the CLI, the experiments, the bench — goes through
    this module, so adding a strategy is one new module and nothing
    else.  See DESIGN.md, "Adding a placement strategy". *)

type entry = (module Strategy_intf.S)

val register : entry -> unit
(** Called once per strategy module at init.  Raises [Invalid_argument]
    on a duplicate name or parse key. *)

val all : unit -> entry list
(** Every registered strategy, sorted by [meta.rank] (ablations
    included; filter on [meta.ablation] to exclude them). *)

val find : string -> entry option
(** Resolve a canonical name or parse key, case-insensitively. *)

val find_exn : string -> entry
(** Like {!find}; raises [Invalid_argument] on unknown names. *)

val mem : string -> bool

val spelling : Strategy_intf.meta -> string
(** The parameterized spelling shown in listings and errors:
    ["fixed-X"], ["roundrobinha-YxK"], ["full"]. *)

val parse : string -> (string * int list, string) result
(** Parse e.g. ["fixed-20"], ["roundrobinha-2x3"], ["full"] into
    (canonical name, parameters), validating arity and positivity.
    Unknown names get a did-you-mean suggestion based on edit
    distance. *)
