open Plookup
open Plookup_store
module Net = Plookup_net.Net

(* The registry is the single source of truth for which strategies
   exist; these tests pin its parsing/enumeration behaviour and assert
   the totality contract the typed message planes give every registered
   strategy. *)

let metas () =
  List.map (fun (module S : Strategy_intf.S) -> S.meta) (Strategy_registry.all ())

let test_all_sorted_by_rank () =
  let ranks = List.map (fun m -> m.Strategy_intf.rank) (metas ()) in
  Alcotest.(check (list int)) "rank order" (List.sort compare ranks) ranks;
  Alcotest.(check bool) "all six core strategies plus both ablations" true
    (List.length ranks >= 8)

let test_find_is_case_insensitive () =
  List.iter
    (fun name ->
      match Strategy_registry.find name with
      | Some (module S) ->
        Alcotest.(check string) name "RoundRobin" S.meta.Strategy_intf.name
      | None -> Alcotest.failf "find %S failed" name)
    [ "RoundRobin"; "roundrobin"; "ROUND"; " round_robin " ]

let test_parse_valid () =
  List.iter
    (fun (input, expected) ->
      match Strategy_registry.parse input with
      | Ok (name, params) ->
        Alcotest.(check string) input (fst expected) name;
        Alcotest.(check (list int)) input (snd expected) params
      | Error e -> Alcotest.failf "parse %S: %s" input e)
    [ ("full", ("FullReplication", []));
      ("fixed-20", ("Fixed", [ 20 ]));
      ("chord-2", ("Chord", [ 2 ]));
      ("ring-3", ("Chord", [ 3 ]));
      ("roundrobinha-2x3", ("RoundRobinHA", [ 2; 3 ]))
    ]

let test_parse_invalid () =
  List.iter
    (fun input ->
      match Strategy_registry.parse input with
      | Ok (name, _) -> Alcotest.failf "parse %S accepted as %s" input name
      | Error _ -> ())
    [ ""; "fixed"; "fixed-0"; "fixed--3"; "fixed-2x3"; "roundrobinha-2"; "full-1";
      "nonsense-4"; "hash-" ]

let test_suggestions () =
  List.iter
    (fun (input, expected_hint) ->
      match Strategy_registry.parse input with
      | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" input
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S error mentions %S (got: %s)" input expected_hint e)
          true
          (Helpers.contains e expected_hint))
    [ ("chrod-2", "chord"); ("fxied-20", "fixed"); ("hsah-2", "hash") ]

let test_spelling_in_unknown_error () =
  match Strategy_registry.parse "frobnicate-3" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error e ->
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "lists %S" needle)
          true (Helpers.contains e needle))
      [ "full"; "fixed-X"; "chord-Y" ]

(* Default parameters giving every strategy a working tiny instance. *)
let params_for (m : Strategy_intf.meta) =
  match m.Strategy_intf.arity with 0 -> [] | 1 -> [ 3 ] | _ -> [ 2; 2 ]

(* Every wire message, one per constructor across the three planes. *)
let every_message =
  let e = Entry.v 1 in
  let bits = Plookup_util.Bitset.create 8 in
  [ Msg.place [ e; Entry.v 2 ];
    Msg.add e;
    Msg.delete e;
    Msg.lookup 2;
    Msg.store e;
    Msg.store_batch [ e ];
    Msg.remove e;
    Msg.add_sampled e;
    Msg.remove_counted e;
    Msg.fetch_candidate [ 1; 2 ];
    Msg.sync_add e;
    Msg.sync_delete e;
    Msg.sync_state;
    Msg.digest_request bits;
    Msg.sync_fix [ e ] [ 2 ];
    Msg.hint ~target:0 Msg.H_store e;
    Msg.digest_pull;
    Msg.repair_store e ]

(* The totality contract: with the handlers exhaustive over their typed
   planes (no catch-all invalid_arg left), any registered strategy must
   answer any message — its own planes and other strategies' internal
   traffic alike — without raising. *)
let test_every_strategy_handles_every_message () =
  List.iter
    (fun (module S : Strategy_intf.S) ->
      let m = S.meta in
      let config = Service.v ~kind:m.Strategy_intf.name ~params:(params_for m) in
      let service = Service.create ~seed:3 ~n:4 config in
      Service.place service (Helpers.entries 10);
      let net = Cluster.net (Service.cluster service) in
      List.iter
        (fun msg ->
          for dst = 0 to 3 do
            try ignore (Net.send net ~src:Net.Client ~dst msg)
            with exn ->
              Alcotest.failf "%s: server %d raised %s on %s"
                m.Strategy_intf.name dst (Printexc.to_string exn)
                (Format.asprintf "%a" Msg.pp msg)
          done)
        every_message)
    (Strategy_registry.all ())

(* The service must stay functional after the bombardment (whose
   store/remove messages legitimately rewrite stores): a fresh placement
   still answers lookups through the public API. *)
let test_every_strategy_lookup_after_foreign_traffic () =
  List.iter
    (fun (module S : Strategy_intf.S) ->
      let m = S.meta in
      let config = Service.v ~kind:m.Strategy_intf.name ~params:(params_for m) in
      let service = Service.create ~seed:5 ~n:4 config in
      Service.place service (Helpers.entries 12);
      let net = Cluster.net (Service.cluster service) in
      List.iter (fun msg -> ignore (Net.send net ~src:Net.Client ~dst:0 msg)) every_message;
      Service.place service (Helpers.entries 12);
      let r = Service.partial_lookup service 2 in
      Alcotest.(check bool)
        (m.Strategy_intf.name ^ " still answers")
        true
        (Lookup_result.satisfied r))
    (Strategy_registry.all ())

let () =
  Helpers.run "strategy_registry"
    [ ( "strategy_registry",
        [ Alcotest.test_case "sorted by rank" `Quick test_all_sorted_by_rank;
          Alcotest.test_case "find case-insensitive" `Quick test_find_is_case_insensitive;
          Alcotest.test_case "parse valid" `Quick test_parse_valid;
          Alcotest.test_case "parse invalid" `Quick test_parse_invalid;
          Alcotest.test_case "typo suggestions" `Quick test_suggestions;
          Alcotest.test_case "unknown error lists spellings" `Quick
            test_spelling_in_unknown_error;
          Alcotest.test_case "every strategy handles every message" `Quick
            test_every_strategy_handles_every_message;
          Alcotest.test_case "lookup survives foreign traffic" `Quick
            test_every_strategy_lookup_after_foreign_traffic ] ) ]
