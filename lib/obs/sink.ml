type t = { emit : Span.t -> unit; flush : unit -> unit }

let emit t span = t.emit span
let flush t = t.flush ()

let jsonl ?(flush_every = 1024) oc =
  let buf = Buffer.create 256 in
  let pending = ref 0 in
  let emit span =
    Buffer.clear buf;
    Span.add_json buf span;
    Buffer.add_char buf '\n';
    Buffer.output_buffer oc buf;
    incr pending;
    if !pending >= flush_every then begin
      Stdlib.flush oc;
      pending := 0
    end
  in
  { emit; flush = (fun () -> Stdlib.flush oc) }

let null = { emit = ignore; flush = ignore }
