open Plookup_util

let test_take () =
  Alcotest.(check (list int)) "prefix" [ 1; 2 ] (List_util.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "whole list" [ 1; 2; 3 ] (List_util.take 3 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "beyond the end" [ 1; 2; 3 ] (List_util.take 10 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "zero" [] (List_util.take 0 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "negative" [] (List_util.take (-4) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "empty list" [] (List_util.take 5 [])

let test_drop () =
  Alcotest.(check (list int)) "suffix" [ 3 ] (List_util.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "whole list" [] (List_util.drop 3 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "beyond the end" [] (List_util.drop 10 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "zero" [ 1; 2; 3 ] (List_util.drop 0 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "negative" [ 1; 2; 3 ] (List_util.drop (-1) [ 1; 2; 3 ])

let gen_case = QCheck2.Gen.(pair (int_range (-5) 30) (list_size (int_range 0 20) int))

let prop_take_drop_partition =
  Helpers.qcheck "take k l @ drop k l = l" gen_case (fun (k, l) ->
      List_util.take k l @ List_util.drop k l = l)

let prop_take_length =
  Helpers.qcheck "length (take k l) = min k (length l), floored at 0" gen_case
    (fun (k, l) -> List.length (List_util.take k l) = max 0 (min k (List.length l)))

let () =
  Helpers.run "list_util"
    [ ( "list_util",
        [ Alcotest.test_case "take" `Quick test_take;
          Alcotest.test_case "drop" `Quick test_drop;
          prop_take_drop_partition;
          prop_take_length ] ) ]
