(** Table 1: storage cost for managing h entries on n servers —
    the closed forms next to measured placements. *)

val id : string
val title : string
val run : ?n:int -> ?h:int -> ?budget:int -> Ctx.t -> Plookup_util.Table.t
(** Defaults: n=10, h=100, budget=200 (the configuration every static
    figure in the paper uses: Fixed-20, RandomServer-20, Round-2,
    Hash-2). *)
