module Accum = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)

  let ci95_half_width t =
    if t.n < 2 then 0. else 1.96 *. stddev t /. sqrt (float_of_int t.n)

  let merge a b =
    if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
    else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      { n; mean; m2 }
    end
end

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let coefficient_of_variation ~ideal ps =
  if ideal <= 0. then invalid_arg "Stats.coefficient_of_variation: ideal must be positive";
  let h = Array.length ps in
  if h = 0 then invalid_arg "Stats.coefficient_of_variation: empty array";
  let acc =
    Array.fold_left (fun acc p -> acc +. ((p -. ideal) *. (p -. ideal))) 0. ps
  in
  sqrt (acc /. float_of_int h) /. ideal

let percentile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if q < 0. || q > 100. then invalid_arg "Stats.percentile: q out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left (fun (lo, hi) x -> (min lo x, max hi x)) (xs.(0), xs.(0)) xs
