open Plookup_store
module Engine = Plookup_sim.Engine
module Net = Plookup_net.Net
module Trace = Plookup_obs.Trace
module Span = Plookup_obs.Span

type outcome = {
  result : Lookup_result.t;
  started_at : float;
  completed_at : float;
  attempts : int;
  retries : int;
  timeouts : int;
  duplicates : int;
}

let elapsed o = o.completed_at -. o.started_at

(* One lookup is a small state machine: [queue] of servers not yet
   contacted, [inflight] contacts awaiting a reply, [seen] the merged
   distinct entries.  Replies and timeouts race per attempt; a flag per
   attempt makes the timeout a no-op once the reply has won (and vice
   versa).  A timed-out attempt is retried against the same server with
   the timeout stretched by [backoff], up to [retries] retries, before
   the contact is abandoned and the next server in the order tried. *)
type state = {
  cluster : Cluster.t;
  engine : Engine.t;
  latency : unit -> float;
  timeout : float;
  retries_allowed : int;
  backoff : float;
  wave : int;
  target : int;
  seen : (int, Entry.t) Hashtbl.t;
  mutable queue : int list;
  mutable inflight : int;
  mutable contacted : int;
  mutable attempts : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable duplicates : int;
  mutable finished : bool;
  started_at : float;
  k : outcome -> unit;
}

let finish st =
  if not st.finished then begin
    st.finished <- true;
    let entries =
      Probe.pick_from_table st.seen ~rng:(Cluster.rng st.cluster) ~target:st.target
    in
    st.k
      { result =
          { Lookup_result.entries; servers_contacted = st.contacted; target = st.target };
        started_at = st.started_at;
        completed_at = Engine.now st.engine;
        attempts = st.attempts;
        retries = st.retries;
        timeouts = st.timeouts;
        duplicates = st.duplicates }
  end

let satisfied st = Hashtbl.length st.seen >= st.target

let rec pump st =
  if not st.finished then begin
    if satisfied st then finish st
    else if st.inflight = 0 && st.queue = [] then finish st (* order exhausted *)
    else begin
      match st.queue with
      | server :: rest when st.inflight < st.wave ->
        st.queue <- rest;
        contact st server;
        pump st
      | _ -> () (* at wave capacity, or nothing left to launch *)
    end
  end

and contact st server =
  (* A contacted server is one we sent at least one request to — counted
     at send time, so lookups that go expensive through timeouts report
     their true cost (the reply-time count under-reported exactly when
     failures made lookups expensive). *)
  st.contacted <- st.contacted + 1;
  st.inflight <- st.inflight + 1;
  attempt st server ~tries_left:st.retries_allowed ~timeout:st.timeout

and attempt st server ~tries_left ~timeout =
  st.attempts <- st.attempts + 1;
  let answered = ref false in
  (* The timeout and the reply race; whichever fires second is a no-op.
     A reply arriving after the timeout is simply dropped, like a
     datagram arriving after the client moved on. *)
  let timed_out = ref false in
  let tr = (Cluster.obs st.cluster).Plookup_obs.Obs.trace in
  ignore
    (Engine.schedule_after st.engine ~delay:timeout (fun _ ->
         if not !answered && not st.finished then begin
           timed_out := true;
           st.timeouts <- st.timeouts + 1;
           let tid =
             if Trace.enabled tr then
               Trace.emit tr ~time:(Engine.now st.engine)
                 (Span.Timeout { dst = server; after = timeout })
             else 0
           in
           if tries_left > 0 then begin
             st.retries <- st.retries + 1;
             if Trace.enabled tr then
               ignore
                 (Trace.emit tr ~time:(Engine.now st.engine)
                    ?cause:(if tid = 0 then None else Some tid)
                    (Span.Retry
                       { dst = server;
                         attempt = st.retries_allowed - tries_left + 2 }));
             attempt st server ~tries_left:(tries_left - 1)
               ~timeout:(timeout *. st.backoff)
           end
           else begin
             st.inflight <- st.inflight - 1;
             pump st
           end
         end));
  Net.call_async (Cluster.net st.cluster) st.engine
    ~latency:(fun ~src:_ ~dst:_ -> st.latency ())
    ~src:Net.Client ~dst:server (Msg.lookup st.target)
    (fun reply ->
      if (not !timed_out) && not st.finished then begin
        if !answered then
          (* A fault-injected duplicate of a reply already merged. *)
          st.duplicates <- st.duplicates + 1
        else begin
          answered := true;
          st.inflight <- st.inflight - 1;
          (match reply with
          | Msg.Entries entries ->
            List.iter
              (fun e ->
                if not (Hashtbl.mem st.seen (Entry.id e)) then
                  Hashtbl.add st.seen (Entry.id e) e)
              entries
          | Msg.Ack | Msg.Candidate _ | Msg.Digest _ -> ());
          pump st
        end
      end)

let dedup_order order =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      if Hashtbl.mem seen s then false
      else begin
        Hashtbl.add seen s ();
        true
      end)
    order

let lookup cluster engine ~latency ~timeout ?(retries = 0) ?(backoff = 2.) ~order
    ?(wave = 1) ~t k =
  if t <= 0 then invalid_arg "Async_client.lookup: t must be positive";
  if timeout <= 0. then invalid_arg "Async_client.lookup: timeout must be positive";
  if wave <= 0 then invalid_arg "Async_client.lookup: wave must be positive";
  if retries < 0 then invalid_arg "Async_client.lookup: retries must be non-negative";
  if backoff < 1. then invalid_arg "Async_client.lookup: backoff must be >= 1";
  let st =
    { cluster;
      engine;
      latency;
      timeout;
      retries_allowed = retries;
      backoff;
      wave;
      target = t;
      seen = Hashtbl.create 32;
      queue = dedup_order order;
      inflight = 0;
      contacted = 0;
      attempts = 0;
      retries = 0;
      timeouts = 0;
      duplicates = 0;
      finished = false;
      started_at = Engine.now engine;
      k }
  in
  (* Launch lazily from the engine so the caller can schedule lookups
     "now" before running the engine. *)
  ignore (Engine.schedule_after engine ~delay:0. (fun _ -> pump st))

let lookup_random_order cluster engine ~latency ~timeout ?retries ?backoff ?wave ~t k =
  let order =
    Array.to_list (Plookup_util.Rng.perm (Cluster.rng cluster) (Cluster.n cluster))
  in
  lookup cluster engine ~latency ~timeout ?retries ?backoff ~order ?wave ~t k
