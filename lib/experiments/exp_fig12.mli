(** Figure 12: Fixed-x cushion sizing.  With x = t + b, the share of
    simulated time during which a lookup for t = 15 of the 100
    steady-state entries would fail, versus cushion b, for exponential
    and Zipf-like entry lifetimes.  The failure share decays roughly
    exponentially in b; the tail-heavy Zipf lifetimes taper off. *)

val id : string
val title : string

val run :
  ?n:int ->
  ?h:int ->
  ?t:int ->
  ?cushions:int list ->
  ?updates:int ->
  Ctx.t ->
  Plookup_util.Table.t
(** Defaults: n=10, h=100, t=15, cushions 0..7, 20000 updates per run
    (the paper's Fig. 12 protocol). *)
