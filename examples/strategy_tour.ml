(* Strategy tour: every strategy, same workload, side by side.

   Reproduces a miniature of the paper's Table 2 on a live system:
   place 100 entries on 10 servers under a 200-entry budget, then
   measure storage, coverage, fault tolerance, lookup cost, unfairness,
   and update overhead for each strategy.

   Run with: dune exec examples/strategy_tour.exe *)

open Plookup
open Plookup_store
open Plookup_util
module Metrics = Plookup_metrics
module Workload = Plookup_workload

let n = 10
let h = 100
let budget = 200
let t = 25

let () =
  let table =
    Table.create ~title:"strategy tour (h=100, n=10, budget=200, t=25)"
      ~columns:
        [ "strategy"; "storage"; "coverage"; "fault tol"; "lookup cost"; "unfairness";
          "msgs/update" ]
  in
  List.iter
    (fun config ->
      let service = Service.create ~seed:1 ~n config in
      let live = Entry.Gen.batch (Entry.Gen.create ()) h in
      Service.place service live;
      let cluster = Service.cluster service in
      let storage = Metrics.Storage.measured cluster in
      let coverage = Metrics.Coverage.measured cluster in
      let tolerance =
        Metrics.Fault_tolerance.greedy
          (Metrics.Fault_tolerance.snapshot cluster ~capacity:h)
          ~t
      in
      let lookup = Metrics.Lookup_cost.measure service ~t ~lookups:1000 in
      let unfairness = Metrics.Unfairness.of_instance service ~live ~t ~lookups:3000 in
      (* Update overhead on a fresh instance over a steady-state stream. *)
      let stream =
        Workload.Update_gen.generate (Rng.create 5)
          { Workload.Update_gen.steady_entries = h; add_period = 10.; tail_heavy = false;
            updates = 2000 }
      in
      let fresh = Service.create ~seed:2 ~n config in
      let msgs = Workload.Replay.messages_for_updates ~service:fresh ~stream in
      Table.add_row table
        [ Table.S (Service.config_name config);
          Table.I storage;
          Table.I coverage;
          Table.I tolerance;
          Table.F lookup.Metrics.Lookup_cost.mean_cost;
          Table.F4 unfairness;
          Table.F (float_of_int msgs /. 2000.) ])
    (Service.all_configs ~ablations:true ~budget ~n ~h ());
  Table.print table;
  print_newline ();
  print_endline "The paper's qualitative conclusions, measured:";
  print_endline "  - FullReplication: perfect everywhere except 5x the storage and n msgs/update.";
  print_endline "  - Fixed-20: cheapest updates, but coverage stuck at 20 entries.";
  print_endline "  - RandomServer-20: big coverage, decent fairness, broadcast on every update.";
  print_endline "  - RoundRobin-2: complete coverage, perfect fairness, costly deletes.";
  print_endline "  - Hash-2: complete coverage, cheap targeted updates, uneven lookups."
