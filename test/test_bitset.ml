open Plookup_util

let test_empty () =
  let b = Bitset.create 100 in
  Helpers.check_int "cardinal" 0 (Bitset.cardinal b);
  Alcotest.(check bool) "is_empty" true (Bitset.is_empty b);
  Helpers.check_int "capacity" 100 (Bitset.capacity b)

let test_add_mem_remove () =
  let b = Bitset.create 64 in
  Bitset.add b 0;
  Bitset.add b 7;
  Bitset.add b 8;
  Bitset.add b 63;
  Alcotest.(check bool) "mem 0" true (Bitset.mem b 0);
  Alcotest.(check bool) "mem 7" true (Bitset.mem b 7);
  Alcotest.(check bool) "mem 8" true (Bitset.mem b 8);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "not mem 1" false (Bitset.mem b 1);
  Helpers.check_int "cardinal" 4 (Bitset.cardinal b);
  Bitset.remove b 7;
  Alcotest.(check bool) "removed" false (Bitset.mem b 7);
  Helpers.check_int "cardinal after remove" 3 (Bitset.cardinal b);
  Bitset.remove b 7 (* idempotent *);
  Helpers.check_int "remove idempotent" 3 (Bitset.cardinal b);
  Bitset.add b 0 (* idempotent *);
  Helpers.check_int "add idempotent" 3 (Bitset.cardinal b)

let test_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.add b (-1));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> ignore (Bitset.mem b 10))

let test_non_multiple_of_8_capacity () =
  let b = Bitset.create 13 in
  for i = 0 to 12 do
    Bitset.add b i
  done;
  Helpers.check_int "all 13" 13 (Bitset.cardinal b);
  Alcotest.(check (list int)) "to_list" (List.init 13 Fun.id) (Bitset.to_list b)

let test_set_ops () =
  let a = Bitset.of_list 20 [ 1; 2; 3; 10 ] in
  let b = Bitset.of_list 20 [ 3; 4; 10; 19 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 10; 19 ] (Bitset.to_list (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 3; 10 ] (Bitset.to_list (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitset.to_list (Bitset.diff a b));
  Alcotest.(check bool) "union unchanged operands" true
    (Bitset.to_list a = [ 1; 2; 3; 10 ])

let test_union_into () =
  let a = Bitset.of_list 16 [ 1; 5 ] in
  let b = Bitset.of_list 16 [ 5; 9 ] in
  Bitset.union_into a b;
  Alcotest.(check (list int)) "a grew" [ 1; 5; 9 ] (Bitset.to_list a);
  Alcotest.(check (list int)) "b unchanged" [ 5; 9 ] (Bitset.to_list b)

let test_capacity_mismatch () =
  let a = Bitset.create 8 and b = Bitset.create 16 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch") (fun () ->
      ignore (Bitset.union a b))

let test_copy_clear () =
  let a = Bitset.of_list 32 [ 4; 8 ] in
  let b = Bitset.copy a in
  Bitset.add b 9;
  Alcotest.(check bool) "copy independent" false (Bitset.mem a 9);
  Bitset.clear a;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty a);
  Alcotest.(check bool) "copy survives clear" true (Bitset.mem b 4)

let test_equal () =
  let a = Bitset.of_list 10 [ 1; 2 ] and b = Bitset.of_list 10 [ 2; 1 ] in
  Alcotest.(check bool) "equal" true (Bitset.equal a b);
  Bitset.add b 3;
  Alcotest.(check bool) "not equal" false (Bitset.equal a b)

let test_fold_iter () =
  let a = Bitset.of_list 50 [ 3; 17; 42 ] in
  Helpers.check_int "fold sum" 62 (Bitset.fold ( + ) a 0);
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) a;
  Alcotest.(check (list int)) "iter ascending" [ 3; 17; 42 ] (List.rev !seen)

module IntSet = Set.Make (Int)

let prop_model =
  Helpers.qcheck ~count:300 "bitset agrees with Set model under random ops"
    QCheck2.Gen.(list (pair bool (int_range 0 63)))
    (fun ops ->
      let b = Bitset.create 64 in
      let model = ref IntSet.empty in
      List.iter
        (fun (is_add, i) ->
          if is_add then begin
            Bitset.add b i;
            model := IntSet.add i !model
          end
          else begin
            Bitset.remove b i;
            model := IntSet.remove i !model
          end)
        ops;
      Bitset.cardinal b = IntSet.cardinal !model
      && Bitset.to_list b = IntSet.elements !model)

let prop_union_commutes =
  let gen = QCheck2.Gen.(pair (list (int_range 0 31)) (list (int_range 0 31))) in
  Helpers.qcheck "union commutes" gen (fun (xs, ys) ->
      let a = Bitset.of_list 32 xs and b = Bitset.of_list 32 ys in
      Bitset.equal (Bitset.union a b) (Bitset.union b a))

let prop_inter_subset =
  let gen = QCheck2.Gen.(pair (list (int_range 0 31)) (list (int_range 0 31))) in
  Helpers.qcheck "inter is a subset of both" gen (fun (xs, ys) ->
      let a = Bitset.of_list 32 xs and b = Bitset.of_list 32 ys in
      let i = Bitset.inter a b in
      List.for_all (fun e -> Bitset.mem a e && Bitset.mem b e) (Bitset.to_list i))

let () =
  Helpers.run "bitset"
    [ ( "bitset",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/mem/remove" `Quick test_add_mem_remove;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "odd capacity" `Quick test_non_multiple_of_8_capacity;
          Alcotest.test_case "set ops" `Quick test_set_ops;
          Alcotest.test_case "union_into" `Quick test_union_into;
          Alcotest.test_case "capacity mismatch" `Quick test_capacity_mismatch;
          Alcotest.test_case "copy/clear" `Quick test_copy_clear;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "fold/iter" `Quick test_fold_iter;
          prop_model;
          prop_union_commutes;
          prop_inter_subset ] ) ]
