(** Unfairness (Section 4.5): how unevenly a strategy returns the
    entries.  For an instance (one concrete placement), estimate each
    live entry's per-lookup return probability p_j over many lookups and
    compute the coefficient of variation around the fair value t/h
    (Eq. 1).  A strategy's unfairness is the mean over instances. *)

open Plookup_store

val of_instance :
  Plookup.Service.t -> live:Entry.t list -> t:int -> lookups:int -> float
(** [live] are the [h] entries currently in the system (entries no
    server stores contribute p_j = 0, exactly as the paper's coverage
    discussion requires).  [t] and [lookups] must be positive, [live]
    non-empty. *)

val of_strategy :
  ?seed:int ->
  ?obs:Plookup_obs.Obs.t ->
  ?shards:int ->
  n:int ->
  entries:int ->
  config:Plookup.Service.config ->
  t:int ->
  instances:int ->
  lookups_per_instance:int ->
  unit ->
  float * float
(** Mean and 95% CI over fresh placements — Fig. 9's protocol. *)
