module Metrics = Plookup_obs.Metrics
module Trace = Plookup_obs.Trace

(* LRU list node: intrusive doubly-linked, most recently used at the
   head.  [expires] is the end of the fresh window; the stale-servable
   window extends [swr] past it.  Negative entries hold the failed
   result they memoize. *)
type node = {
  key : int;
  mutable result : Lookup_result.t;
  mutable expires : float;
  mutable negative : bool;
  mutable prev : node option;
  mutable next : node option;
}

type counters = {
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  c_stale : Metrics.counter;
  c_coalesced : Metrics.counter;
  c_evictions : Metrics.counter;
}

type stats = {
  hits : int;
  negative_hits : int;
  misses : int;
  stale_served : int;
  coalesced : int;
  evictions : int;
  refreshes : int;
  refresh_sends : int;
}

type t = {
  capacity : int;
  ttl : float;
  swr : float;
  negative_ttl : float;
  table : (int, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable size : int;
  (* Singleflight: one waiter queue per key with a probe in flight.  The
     bool marks a background refresh (its sends reach no caller, so they
     are accounted separately).  Waiters are kept in arrival order. *)
  flights : (int, bool * (Lookup_result.t -> now:float -> unit) Queue.t) Hashtbl.t;
  counters : counters option;
  trace : Trace.t option;
  mutable hits : int;
  mutable negative_hits : int;
  mutable misses : int;
  mutable stale_served : int;
  mutable coalesced : int;
  mutable evictions : int;
  mutable refreshes : int;
  mutable refresh_sends : int;
}

let create ?obs ?(ttl = 100.) ?(swr = 0.) ?(negative_ttl = 0.) ~capacity () =
  if capacity < 1 then invalid_arg "Client_cache.create: capacity must be >= 1";
  if ttl <= 0. then invalid_arg "Client_cache.create: ttl must be positive";
  if swr < 0. then invalid_arg "Client_cache.create: swr must be non-negative";
  if negative_ttl < 0. then
    invalid_arg "Client_cache.create: negative-ttl must be non-negative";
  let counters =
    Option.map
      (fun o ->
        let m = o.Plookup_obs.Obs.metrics in
        { c_hits = Metrics.counter m "client.cache.hits";
          c_misses = Metrics.counter m "client.cache.misses";
          c_stale = Metrics.counter m "client.cache.stale_served";
          c_coalesced = Metrics.counter m "client.cache.coalesced";
          c_evictions = Metrics.counter m "client.cache.evictions" })
      obs
  in
  { capacity;
    ttl;
    swr;
    negative_ttl;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    size = 0;
    flights = Hashtbl.create 16;
    counters;
    trace = Option.map (fun o -> o.Plookup_obs.Obs.trace) obs;
    hits = 0;
    negative_hits = 0;
    misses = 0;
    stale_served = 0;
    coalesced = 0;
    evictions = 0;
    refreshes = 0;
    refresh_sends = 0 }

let cardinal t = t.size
let capacity t = t.capacity
let ttl t = t.ttl

let stats t =
  { hits = t.hits;
    negative_hits = t.negative_hits;
    misses = t.misses;
    stale_served = t.stale_served;
    coalesced = t.coalesced;
    evictions = t.evictions;
    refreshes = t.refreshes;
    refresh_sends = t.refresh_sends }

(* ------------------------------------------------------------------ *)
(* LRU plumbing                                                        *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let remove t n =
  unlink t n;
  Hashtbl.remove t.table n.key;
  t.size <- t.size - 1

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
    remove t n;
    t.evictions <- t.evictions + 1;
    Option.iter (fun c -> Metrics.incr c.c_evictions) t.counters

let insert t ~key ~now ~negative result =
  let window = if negative then t.negative_ttl else t.ttl in
  match Hashtbl.find_opt t.table key with
  | Some n ->
    n.result <- result;
    n.expires <- now +. window;
    n.negative <- negative;
    touch t n
  | None ->
    if t.size >= t.capacity then evict_lru t;
    let n = { key; result; expires = now +. window; negative; prev = None; next = None } in
    Hashtbl.replace t.table key n;
    push_front t n;
    t.size <- t.size + 1

(* ------------------------------------------------------------------ *)
(* The protocol                                                        *)

type verdict =
  | Hit of Lookup_result.t
  | Stale of Lookup_result.t
  | Stale_wait of Lookup_result.t
  | Join
  | Lead

let mark_hit t ~now =
  match t.trace with
  | Some tr when Trace.enabled tr -> Trace.record tr ~time:now ~label:"client.cache" "hit"
  | _ -> ()

let miss t ~key ~waiter =
  t.misses <- t.misses + 1;
  Option.iter (fun c -> Metrics.incr c.c_misses) t.counters;
  match Hashtbl.find_opt t.flights key with
  | Some (_, waiters) ->
    Queue.add waiter waiters;
    t.coalesced <- t.coalesced + 1;
    Option.iter (fun c -> Metrics.incr c.c_coalesced) t.counters;
    Join
  | None ->
    Hashtbl.replace t.flights key (false, Queue.create ());
    Lead

let lookup t ~key ~now ~waiter =
  match Hashtbl.find_opt t.table key with
  | None -> miss t ~key ~waiter
  | Some n ->
    if now < n.expires then begin
      t.hits <- t.hits + 1;
      if n.negative then t.negative_hits <- t.negative_hits + 1;
      Option.iter (fun c -> Metrics.incr c.c_hits) t.counters;
      touch t n;
      mark_hit t ~now;
      Hit n.result
    end
    else if (not n.negative) && now < n.expires +. t.swr then begin
      (* Stale but servable: serve it, and make this caller the
         background refresher unless one is already in flight. *)
      t.stale_served <- t.stale_served + 1;
      Option.iter (fun c -> Metrics.incr c.c_stale) t.counters;
      touch t n;
      mark_hit t ~now;
      if Hashtbl.mem t.flights key then Stale_wait n.result
      else begin
        Hashtbl.replace t.flights key (true, Queue.create ());
        t.refreshes <- t.refreshes + 1;
        Stale n.result
      end
    end
    else begin
      (* Dead entry: drop it lazily and fall through to the miss path. *)
      remove t n;
      miss t ~key ~waiter
    end

let complete t ~key ~now ~ok ~attempts result =
  let waiters =
    match Hashtbl.find_opt t.flights key with
    | None -> None
    | Some (refresh, waiters) ->
      Hashtbl.remove t.flights key;
      if refresh then t.refresh_sends <- t.refresh_sends + attempts;
      Some waiters
  in
  if ok then insert t ~key ~now ~negative:false result
  else if t.negative_ttl > 0. then insert t ~key ~now ~negative:true result;
  (* A failed probe with no negative caching leaves the previous entry
     (if any) alone: a stale-while-revalidate refresh that comes back
     short does not erase the answer it set out to freshen. *)
  match waiters with
  | None -> ()
  | Some waiters -> Queue.iter (fun k -> k result ~now) waiters

let invalidate t ~key =
  match Hashtbl.find_opt t.table key with None -> () | Some n -> remove t n
