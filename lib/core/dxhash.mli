(** DxHash-y: consistent hashing on a pseudo-random probe sequence.

    The slot space is the smallest power of two covering the servers;
    slots [\[0, n)] are active (a bitmap, one slot per server), the rest
    inactive.  An entry lives on the first [min y n] {e distinct} active
    slots its deterministic probe sequence hits.  Because the slot space
    is at most twice the server count, each probe lands on an active
    slot with probability at least one half, so resolving an entry's
    owners is O(1) expected — no sorted ring and no binary search, which
    is what lets placement scale to tens of thousands of servers.
    Flipping one slot (a membership change) only remaps the entries
    whose probe walk crosses it: an expected [y/n] of them, the same
    churn bound as ring-based consistent hashing.

    Registered in {!Strategy_registry} as ["DxHash"] (keys [dxhash],
    [dx]). *)

open Plookup_store

type t

val create : Cluster.t -> y:int -> t
(** Bind the strategy to the cluster (installing its handler).  [y] is
    clamped to [n].  Raises [Invalid_argument] when [y < 1]. *)

val y : t -> int

val slots : t -> int
(** The power-of-two slot-space size, [n <= slots < 2n]. *)

val cluster : t -> Cluster.t

val servers_of : t -> Entry.t -> int list
(** The entry's [min y n] owners, in probe-sequence order. *)

val owners_for : t -> active:int -> Entry.t -> int list
(** The owners if only the first [active] slots were active — the
    placement after shrinking the fleet to [active] servers, computed
    without building that smaller cluster.  The basis of the
    churn-stability (remap fraction) check.  Raises [Invalid_argument]
    unless [0 <= active <= n]. *)

val place : ?budget:int -> t -> Entry.t list -> unit
(** Round-major placement: every entry's first owner gets a copy before
    any entry's second, so a [budget] cut keeps coverage maximal. *)

val add : t -> Entry.t -> unit
val delete : t -> Entry.t -> unit
val partial_lookup : ?reachable:(int -> bool) -> t -> int -> Lookup_result.t

val check_invariants : t -> placed:Entry.t list -> (unit, string) result
(** Every server holds exactly the entries whose owner list names it,
    given [placed] is the current live set. *)

module Strategy : Strategy_intf.S with type t = t
