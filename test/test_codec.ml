open Plookup
open Plookup_store

let bitset_of ids capacity =
  let bits = Plookup_util.Bitset.create capacity in
  List.iter (Plookup_util.Bitset.add bits) ids;
  bits

let roundtrip msg =
  match Codec.decode (Codec.encode msg) with
  | Ok decoded -> decoded
  | Error e -> Alcotest.failf "decode failed: %s" e

let check_msg expected =
  let got = roundtrip expected in
  if got <> expected then
    Alcotest.failf "roundtrip changed %s into %s"
      (Format.asprintf "%a" Msg.pp expected)
      (Format.asprintf "%a" Msg.pp got)

let test_message_roundtrips () =
  List.iter check_msg
    [ Msg.place [];
      Msg.place [ Entry.v 0; Entry.v ~payload:"10.0.0.1:8080" 1; Entry.v 300 ];
      Msg.add (Entry.v 5);
      Msg.add (Entry.v ~payload:"" 5);
      Msg.delete (Entry.v 123456789);
      Msg.lookup 0;
      Msg.lookup 35;
      Msg.lookup 1_000_000;
      Msg.store (Entry.v ~payload:"x" 1);
      Msg.store_batch [ Entry.v 1; Entry.v 2 ];
      Msg.remove (Entry.v 9);
      Msg.add_sampled (Entry.v 77);
      Msg.remove_counted (Entry.v 78);
      Msg.fetch_candidate [];
      Msg.fetch_candidate [ 1; 2; 3; 1000 ];
      Msg.sync_add (Entry.v ~payload:"replica" 3);
      Msg.sync_delete (Entry.v 4);
      Msg.sync_state;
      Msg.digest_request (bitset_of [] 1);
      Msg.digest_request (bitset_of [ 0; 3; 63; 64 ] 70);
      Msg.sync_fix [] [];
      Msg.sync_fix [ Entry.v 1; Entry.v ~payload:"p" 2 ] [ 7; 8; 9 ];
      Msg.hint ~target:0 Msg.H_store (Entry.v 11);
      Msg.hint ~target:3 Msg.H_remove (Entry.v ~payload:"addr" 12);
      Msg.hint ~target:1 Msg.H_add_sampled (Entry.v 13);
      Msg.hint ~target:2 Msg.H_remove_counted (Entry.v 14);
      Msg.digest_pull;
      Msg.repair_store (Entry.v ~payload:"sub" 21) ]

let test_reply_roundtrips () =
  List.iter
    (fun reply ->
      match Codec.decode_reply (Codec.encode_reply reply) with
      | Ok got when got = reply -> ()
      | Ok _ -> Alcotest.fail "reply roundtrip changed value"
      | Error e -> Alcotest.failf "reply decode failed: %s" e)
    [ Msg.Ack;
      Msg.Entries [];
      Msg.Entries [ Entry.v 4; Entry.v ~payload:"host" 5 ];
      Msg.Candidate None;
      Msg.Candidate (Some (Entry.v 1));
      Msg.Digest (bitset_of [] 1);
      Msg.Digest (bitset_of [ 2; 5; 100 ] 128);
      Msg.Busy ]

let test_empty_vs_absent_payload () =
  (match roundtrip (Msg.add (Entry.v 1)) with
  | Msg.Data (Msg.Add e) ->
    Alcotest.(check (option string)) "absent stays absent" None (Entry.payload e)
  | _ -> Alcotest.fail "wrong constructor");
  match roundtrip (Msg.add (Entry.v ~payload:"" 1)) with
  | Msg.Data (Msg.Add e) ->
    Alcotest.(check (option string)) "empty stays empty" (Some "") (Entry.payload e)
  | _ -> Alcotest.fail "wrong constructor"

let test_malformed_inputs () =
  List.iter
    (fun s ->
      match Codec.decode s with
      | Error _ -> ()
      | Ok msg -> Alcotest.failf "accepted garbage as %s" (Format.asprintf "%a" Msg.pp msg))
    [ ""; "\xff"; "\x04" (* lookup with no varint *); "\x01\xff" (* truncated count *);
      "\x01\x02\x01\x00" (* count 2, one entry *);
      "\x02\x01\x05abc" (* payload shorter than declared *) ]

let test_trailing_bytes_rejected () =
  let good = Codec.encode (Msg.lookup 3) in
  match Codec.decode (good ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing bytes"

let test_framing () =
  let bodies = [ "hello"; ""; Codec.encode (Msg.lookup 9) ] in
  let stream = String.concat "" (List.map Codec.frame bodies) in
  let rec read pos acc =
    if pos = String.length stream then List.rev acc
    else
      match Codec.unframe stream ~pos with
      | Ok (body, pos) -> read pos (body :: acc)
      | Error e -> Alcotest.failf "unframe: %s" e
  in
  Alcotest.(check (list string)) "framed stream roundtrips" bodies (read 0 [])

let test_unframe_truncated () =
  (match Codec.unframe "\x02\x00" ~pos:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated header");
  match Codec.unframe "\x05\x00\x00\x00abc" ~pos:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated body"

let gen_entry =
  QCheck2.Gen.(
    map2
      (fun id payload -> Entry.v ?payload id)
      (int_range 0 1_000_000)
      (option (string_size ~gen:printable (int_range 0 30))))

(* One generator per constructor of each plane, so exhaustiveness is
   checked by the compiler: extending a plane type breaks the
   corresponding [gen_*] match below until a generator is added. *)
let gen_data =
  QCheck2.Gen.(
    oneof
      [ map Msg.place (list_size (int_range 0 20) gen_entry);
        map Msg.add gen_entry;
        map Msg.delete gen_entry;
        map Msg.lookup (int_range 0 10_000) ])

let gen_strategy =
  QCheck2.Gen.(
    oneof
      [ map Msg.store gen_entry;
        map Msg.store_batch (list_size (int_range 0 20) gen_entry);
        map Msg.remove gen_entry;
        map Msg.add_sampled gen_entry;
        map Msg.remove_counted gen_entry;
        map Msg.fetch_candidate (list_size (int_range 0 20) (int_range 0 5000));
        map Msg.sync_add gen_entry;
        map Msg.sync_delete gen_entry;
        return Msg.sync_state ])

let gen_repair =
  QCheck2.Gen.(
    oneof
      [ map
          (fun ids -> Msg.digest_request (bitset_of ids 600))
          (list_size (int_range 0 30) (int_range 0 599));
        map2 Msg.sync_fix
          (list_size (int_range 0 10) gen_entry)
          (list_size (int_range 0 10) (int_range 0 5000));
        map2
          (fun (target, kind) e -> Msg.hint ~target kind e)
          (pair (int_range 0 50)
             (oneofl [ Msg.H_store; Msg.H_remove; Msg.H_add_sampled; Msg.H_remove_counted ]))
          gen_entry;
        return Msg.digest_pull;
        map Msg.repair_store gen_entry ])

let gen_msg = QCheck2.Gen.oneof [ gen_data; gen_strategy; gen_repair ]

(* Same exhaustiveness discipline for the reply plane: extending
   [Msg.reply] breaks this match until a generator case is added. *)
let _reply_generators_are_exhaustive : Msg.reply -> unit = function
  | Msg.Ack | Msg.Entries _ | Msg.Candidate _ | Msg.Digest _ | Msg.Busy -> ()

let gen_reply =
  QCheck2.Gen.(
    oneof
      [ return Msg.Ack;
        map (fun es -> Msg.Entries es) (list_size (int_range 0 20) gen_entry);
        map (fun e -> Msg.Candidate e) (option gen_entry);
        map
          (fun ids -> Msg.Digest (bitset_of ids 600))
          (list_size (int_range 0 30) (int_range 0 599));
        return Msg.Busy ])

let prop_reply_roundtrip =
  Helpers.qcheck ~count:300 "reply decode . encode = id" gen_reply (fun reply ->
      Codec.decode_reply (Codec.encode_reply reply) = Ok reply)

(* The plane split is type-level only: each message still decodes back
   into the plane it was encoded from. *)
let prop_plane_stable =
  Helpers.qcheck ~count:300 "planes survive the roundtrip" gen_msg (fun msg ->
      match (msg, Codec.decode (Codec.encode msg)) with
      | Msg.Data _, Ok (Msg.Data _)
      | Msg.Strategy _, Ok (Msg.Strategy _)
      | Msg.Repair _, Ok (Msg.Repair _) -> true
      | _ -> false)

let prop_roundtrip =
  Helpers.qcheck ~count:500 "decode . encode = id" gen_msg (fun msg ->
      Codec.decode (Codec.encode msg) = Ok msg)

let prop_decode_never_raises =
  Helpers.qcheck ~count:500 "decode is total on arbitrary bytes"
    QCheck2.Gen.(string_size ~gen:char (int_range 0 50))
    (fun s ->
      match Codec.decode s with Ok _ | Error _ -> true)

let prop_framed_roundtrip =
  Helpers.qcheck ~count:200 "unframe . frame = id"
    QCheck2.Gen.(string_size ~gen:char (int_range 0 100))
    (fun body ->
      match Codec.unframe (Codec.frame body) ~pos:0 with
      | Ok (decoded, pos) -> decoded = body && pos = String.length body + 4
      | Error _ -> false)

let () =
  Helpers.run "codec"
    [ ( "codec",
        [ Alcotest.test_case "message roundtrips" `Quick test_message_roundtrips;
          Alcotest.test_case "reply roundtrips" `Quick test_reply_roundtrips;
          Alcotest.test_case "empty vs absent payload" `Quick test_empty_vs_absent_payload;
          Alcotest.test_case "malformed inputs" `Quick test_malformed_inputs;
          Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes_rejected;
          Alcotest.test_case "framing" `Quick test_framing;
          Alcotest.test_case "unframe truncated" `Quick test_unframe_truncated;
          prop_roundtrip;
          prop_reply_roundtrip;
          prop_plane_stable;
          prop_decode_never_raises;
          prop_framed_roundtrip ] ) ]
