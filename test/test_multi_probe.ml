open Plookup
open Plookup_store

let make ?(seed = 11) ?(n = 6) ?(k = 2) ~y () =
  let cluster = Cluster.create ~seed ~n () in
  (Multi_probe.create cluster ~y ~k, cluster)

let test_servers_of_distinct () =
  let mp, _ = make ~y:3 () in
  List.iter
    (fun id ->
      let owners = Multi_probe.servers_of mp (Entry.v id) in
      Helpers.check_int "y owners" 3 (List.length owners);
      Helpers.check_int "distinct" 3 (List.length (List.sort_uniq compare owners)))
    [ 0; 1; 17; 400; 12345 ]

let test_y_clamped_to_n () =
  let mp, _ = make ~n:4 ~y:9 () in
  Helpers.check_int "y = n" 4 (Multi_probe.y mp);
  Helpers.check_int "owners" 4 (List.length (Multi_probe.servers_of mp (Entry.v 1)))

let test_placement_matches_ring () =
  let mp, _ = make ~y:2 () in
  let batch = Helpers.entries 40 in
  Multi_probe.place mp batch;
  match Multi_probe.check_invariants mp ~placed:batch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_add_delete_maintain_ring () =
  let mp, _ = make ~y:2 () in
  let batch = Helpers.entries 20 in
  Multi_probe.place mp batch;
  let extra = Entry.v 999 in
  Multi_probe.add mp extra;
  (match Multi_probe.check_invariants mp ~placed:(extra :: batch) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Multi_probe.delete mp extra;
  match Multi_probe.check_invariants mp ~placed:batch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_deterministic () =
  let owners_with_seed () =
    let mp, _ = make ~seed:42 ~y:2 ~k:3 () in
    List.map (fun id -> Multi_probe.servers_of mp (Entry.v id)) (List.init 30 Fun.id)
  in
  Alcotest.(check (list (list int))) "same seed, same ring" (owners_with_seed ())
    (owners_with_seed ())

let test_partial_lookup_satisfied () =
  let mp, _ = make ~y:2 () in
  Multi_probe.place mp (Helpers.entries 30);
  let r = Multi_probe.partial_lookup mp 10 in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r)

let test_budget_truncates_round_major () =
  let mp, cluster = make ~y:3 () in
  let batch = Helpers.entries 25 in
  Multi_probe.place ~budget:25 mp batch;
  Helpers.check_int "one copy each" 25 (Plookup_metrics.Storage.measured cluster);
  Helpers.check_int "coverage complete" 25 (Plookup_metrics.Coverage.measured cluster)

let skew ~seed ~n ~k ids =
  let cluster = Cluster.create ~seed ~n () in
  let mp = Multi_probe.create cluster ~y:1 ~k in
  let counts = Array.make n 0 in
  for id = 0 to ids - 1 do
    List.iter
      (fun s -> counts.(s) <- counts.(s) + 1)
      (Multi_probe.servers_of mp (Entry.v id))
  done;
  float_of_int (Array.fold_left max 0 counts) /. (float_of_int ids /. float_of_int n)

(* The whole point of multi-probe hashing: more probes per key shave
   the peak/mean load ratio of the single-point ring, without any
   virtual nodes. *)
let test_more_probes_less_skew () =
  let skew1 = skew ~seed:3 ~n:100 ~k:1 10_000 in
  let skew8 = skew ~seed:3 ~n:100 ~k:8 10_000 in
  Alcotest.(check bool)
    (Printf.sprintf "skew k=8 (%.2f) < skew k=1 (%.2f)" skew8 skew1)
    true (skew8 < skew1);
  Alcotest.(check bool)
    (Printf.sprintf "skew k=8 (%.2f) < 3" skew8)
    true (skew8 < 3.)

let test_n1000_smoke () =
  let mp, _ = make ~seed:9 ~n:1000 ~y:2 ~k:2 () in
  let batch = Helpers.entries 2000 in
  Multi_probe.place mp batch;
  (match Multi_probe.check_invariants mp ~placed:batch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let r = Multi_probe.partial_lookup mp 20 in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r)

let test_create_validation () =
  let cluster = Cluster.create ~seed:1 ~n:3 () in
  Alcotest.check_raises "y < 1"
    (Invalid_argument "Multi_probe.create: y must be at least 1") (fun () ->
      ignore (Multi_probe.create cluster ~y:0 ~k:2));
  Alcotest.check_raises "k < 1"
    (Invalid_argument "Multi_probe.create: k must be at least 1") (fun () ->
      ignore (Multi_probe.create cluster ~y:1 ~k:0))

(* The extension-point proof at test level: MultiProbe is reachable
   through Service purely via its registration, spelled with the
   arity-2 YxK parameter form. *)
let test_reachable_through_service () =
  match Service.config_of_string "multiprobe-2x2" with
  | Error e -> Alcotest.fail e
  | Ok config ->
    Alcotest.(check string) "canonical name" "MultiProbe-2x2" (Service.config_name config);
    let service, _ = Helpers.placed_service ~n:5 ~h:20 config in
    let r = Service.partial_lookup service 8 in
    Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r);
    Helpers.close "analytic storage" 40. (Service.analytic_storage config ~n:5 ~h:20)

let () =
  Helpers.run "multi_probe"
    [ ( "multi_probe",
        [ Alcotest.test_case "servers_of distinct" `Quick test_servers_of_distinct;
          Alcotest.test_case "y clamped to n" `Quick test_y_clamped_to_n;
          Alcotest.test_case "placement matches ring" `Quick test_placement_matches_ring;
          Alcotest.test_case "add/delete maintain ring" `Quick
            test_add_delete_maintain_ring;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "partial lookup satisfied" `Quick
            test_partial_lookup_satisfied;
          Alcotest.test_case "budget truncates round-major" `Quick
            test_budget_truncates_round_major;
          Alcotest.test_case "more probes less skew" `Quick test_more_probes_less_skew;
          Alcotest.test_case "n=1000 smoke" `Quick test_n1000_smoke;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "reachable through service" `Quick
            test_reachable_through_service ] ) ]
