type counter = { mutable c : int }
type gauge = { mutable g : float }

let hbuckets = 64

type histogram = {
  buckets : int array; (* [hbuckets] log2 buckets *)
  mutable hcount : int;
  mutable hsum : float;
}

type cell = C of counter | G of gauge | H of histogram

type item = { i_name : string; i_labels : (string * string) list; i_cell : cell }

type t = { mutable items : item list (* newest first *) }

let create () = { items = [] }

let canonical_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let register t ~labels name cell =
  let item = { i_name = name; i_labels = canonical_labels labels; i_cell = cell } in
  t.items <- item :: t.items

let counter t ?(labels = []) name =
  let c = { c = 0 } in
  register t ~labels name (C c);
  c

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c
let reset_counter c = c.c <- 0

let gauge t ?(labels = []) name =
  let g = { g = 0. } in
  register t ~labels name (G g);
  g

let set_gauge g v = g.g <- v
let add_gauge g v = g.g <- g.g +. v
let gauge_value g = g.g

let histogram t ?(labels = []) name =
  let h = { buckets = Array.make hbuckets 0; hcount = 0; hsum = 0. } in
  register t ~labels name (H h);
  h

(* Bucket b covers (2^(b-1), 2^b]; everything <= 1 (including
   non-positive values) lands in bucket 0. *)
let bucket_of v =
  if not (v > 1.) then 0
  else begin
    let b = int_of_float (Float.ceil (Float.log2 v)) in
    (* Guard the exact-power-of-two edge where ceil(log2 v) rounds a
       hair low, and clamp to the bucket range. *)
    let b = if Float.pow 2. (float_of_int b) < v then b + 1 else b in
    if b < 0 then 0 else if b >= hbuckets then hbuckets - 1 else b
  end

let observe h v =
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v

let histogram_count h = h.hcount
let histogram_sum h = h.hsum

(* Bucket b's value range; bucket 0 holds everything at or below 1
   (including non-positive observations), so its lower bound is 0. *)
let bucket_bounds b =
  let upper = Float.pow 2. (float_of_int b) in
  let lower = if b = 0 then 0. else Float.pow 2. (float_of_int (b - 1)) in
  (lower, upper)

let histogram_quantile h q =
  if q < 0. || q > 100. then
    invalid_arg "Metrics.histogram_quantile: q must be in [0, 100]";
  if h.hcount = 0 then 0.
  else begin
    (* Same rank convention as [Stats.percentile]: position
       q/100 * (n-1) in the sorted sample, except the sample is only
       known to bucket resolution — we locate the bucket holding that
       position and interpolate linearly between its bounds. *)
    let r = q /. 100. *. float_of_int (h.hcount - 1) in
    let b = ref 0 and before = ref 0 in
    while !before + h.buckets.(!b) <= int_of_float r && !b < hbuckets - 1 do
      before := !before + h.buckets.(!b);
      b := !b + 1
    done;
    let lower, upper = bucket_bounds !b in
    let nb = h.buckets.(!b) in
    if nb = 0 then upper
    else begin
      let frac = (r -. float_of_int !before) /. float_of_int nb in
      let frac = if frac < 0. then 0. else if frac > 1. then 1. else frac in
      lower +. (frac *. (upper -. lower))
    end
  end

let reset_histogram h =
  Array.fill h.buckets 0 hbuckets 0;
  h.hcount <- 0;
  h.hsum <- 0.

let reset t =
  List.iter
    (fun item ->
      match item.i_cell with
      | C c -> c.c <- 0
      | G g -> g.g <- 0.
      | H h ->
        Array.fill h.buckets 0 hbuckets 0;
        h.hcount <- 0;
        h.hsum <- 0.)
    t.items

(* {2 Snapshots} *)

type kind =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : (int * int) list; count : int; sum : float }

type entry = { name : string; labels : (string * string) list; v : kind }

let key_compare (n1, l1) (n2, l2) =
  match compare (n1 : string) n2 with 0 -> compare (l1 : (string * string) list) l2 | c -> c

let merge_kind a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Histogram h1, Histogram h2 ->
    let tbl = Hashtbl.create 16 in
    let feed (b, n) =
      Hashtbl.replace tbl b (n + Option.value ~default:0 (Hashtbl.find_opt tbl b))
    in
    List.iter feed h1.buckets;
    List.iter feed h2.buckets;
    let buckets =
      List.sort compare (Hashtbl.fold (fun b n acc -> (b, n) :: acc) tbl [])
    in
    Histogram { buckets; count = h1.count + h2.count; sum = h1.sum +. h2.sum }
  | _ ->
    invalid_arg "Metrics: instruments sharing a (name, labels) key have different kinds"

let kind_of_cell = function
  | C c -> Counter c.c
  | G g -> Gauge g.g
  | H h ->
    let buckets = ref [] in
    for b = hbuckets - 1 downto 0 do
      if h.buckets.(b) > 0 then buckets := (b, h.buckets.(b)) :: !buckets
    done;
    Histogram { buckets = !buckets; count = h.hcount; sum = h.hsum }

let snapshot t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun item ->
      let key = (item.i_name, item.i_labels) in
      let v = kind_of_cell item.i_cell in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key v
      | Some prev -> Hashtbl.replace tbl key (merge_kind prev v))
    t.items;
  Hashtbl.fold (fun (name, labels) v acc -> { name; labels; v } :: acc) tbl []
  |> List.sort (fun a b -> key_compare (a.name, a.labels) (b.name, b.labels))

let absorb t ?(extra_labels = []) entries =
  List.iter
    (fun e ->
      let labels = canonical_labels (e.labels @ extra_labels) in
      let cell =
        match e.v with
        | Counter n -> C { c = n }
        | Gauge v -> G { g = v }
        | Histogram { buckets; count; sum } ->
          let h = { buckets = Array.make hbuckets 0; hcount = count; hsum = sum } in
          List.iter (fun (b, n) -> h.buckets.(b) <- n) buckets;
          H h
      in
      t.items <- { i_name = e.name; i_labels = labels; i_cell = cell } :: t.items)
    entries

let sum_counters entries ?(where = []) name =
  List.fold_left
    (fun acc e ->
      match e.v with
      | Counter n
        when String.equal e.name name
             && List.for_all (fun kv -> List.mem kv e.labels) where ->
        acc + n
      | _ -> acc)
    0 entries

let entry_to_json buf e =
  Buffer.add_string buf "{\"name\":";
  Buffer.add_string buf (Printf.sprintf "%S" e.name);
  if e.labels <> [] then begin
    Buffer.add_string buf ",\"labels\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "%S:%S" k v))
      e.labels;
    Buffer.add_char buf '}'
  end;
  (match e.v with
  | Counter n ->
    Buffer.add_string buf ",\"kind\":\"counter\",\"value\":";
    Buffer.add_string buf (string_of_int n)
  | Gauge v ->
    Buffer.add_string buf ",\"kind\":\"gauge\",\"value\":";
    Buffer.add_string buf (Printf.sprintf "%.6g" v)
  | Histogram { buckets; count; sum } ->
    Buffer.add_string buf
      (Printf.sprintf ",\"kind\":\"histogram\",\"count\":%d,\"sum\":%.6g,\"buckets\":{"
         count sum);
    List.iteri
      (fun i (b, n) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%d\":%d" b n))
      buckets;
    Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let to_json entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      entry_to_json buf e)
    entries;
  Buffer.add_string buf "]}";
  Buffer.contents buf
