(** Fenwick (binary indexed) tree over integer counts, 0-based.

    One mutable array of [capacity] counts supporting O(log n) point
    update, prefix sum, and rank [select].  The select is what the hot
    paths want: with 0/1 counts, [select t k] is the k-th smallest
    present index — byte-identical to indexing the sorted list of
    present elements, without ever building that list.  {!Cluster} uses
    one for uniform up-server picks and the churn experiment for
    uniform live-entry victims. *)

type t

val create : int -> t
(** All counts zero.  Raises [Invalid_argument] on negative capacity. *)

val capacity : t -> int

val total : t -> int
(** Sum of all counts, maintained incrementally — O(1). *)

val add : t -> int -> int -> unit
(** [add t i delta] adds [delta] to the count at [i].  O(log n). *)

val get : t -> int -> int
(** The count at one index.  O(log n). *)

val prefix : t -> int -> int
(** [prefix t i] sums the counts at indices [0, i).  O(log n). *)

val select : t -> int -> int
(** [select t k] is the smallest index whose inclusive prefix sum
    exceeds [k] — with 0/1 counts, the k-th smallest present index
    (0-based).  Requires [0 <= k < total t].  O(log n). *)
