open Plookup_store
open Plookup_util
module Net = Plookup_net.Net

(* Reachable up servers in ascending id order — the same contents (and
   order) as filtering [Cluster.up_servers], built as an array with no
   per-element list cells.  The no-predicate path fills straight from
   the network's up bitmap. *)
let candidates_array ?reachable cluster =
  match reachable with
  | None ->
    let arr = Array.make (max 1 (Cluster.up_count cluster)) 0 in
    let count = Cluster.up_servers_into cluster arr in
    if count = Array.length arr then arr else Array.sub arr 0 count
  | Some ok ->
    let n = Cluster.n cluster in
    let arr = Array.make (max 1 n) 0 in
    let count = ref 0 in
    for i = 0 to n - 1 do
      if Cluster.is_up cluster i && ok i then begin
        arr.(!count) <- i;
        incr count
      end
    done;
    if !count = Array.length arr then arr else Array.sub arr 0 !count

(* Send one Lookup and merge the distinct answers into [seen]. *)
let contact cluster ~t ~seen server =
  match Net.send (Cluster.net cluster) ~src:Net.Client ~dst:server (Msg.lookup t) with
  | Some (Msg.Entries entries) ->
    List.iter
      (fun e -> if not (Hashtbl.mem seen (Entry.id e)) then Hashtbl.add seen (Entry.id e) e)
      entries;
    true
  | Some (Msg.Ack | Msg.Candidate _ | Msg.Digest _ | Msg.Busy) | None -> false

(* The client delivers exactly [target] entries when it collected more:
   merging answers from multiple servers overshoots, and returning the
   whole union would systematically over-deliver every entry (it would
   also make the unfairness metric reflect overshoot rather than bias).
   The kept subset is uniform over everything collected.

   The table is drained into an array sized by [Hashtbl.length], filled
   back-to-front so the element order — and therefore the [Rng.sample]
   result — is identical to the old fold-to-list / [Array.of_list]
   round-trip this replaces. *)
let pick_from_table seen ~rng ~target =
  let len = Hashtbl.length seen in
  if len = 0 then []
  else begin
    let arr = Array.make len (Entry.v 0) in
    let i = ref len in
    Hashtbl.iter
      (fun _ e ->
        decr i;
        arr.(!i) <- e)
      seen;
    if len <= target then Array.to_list arr
    else Array.to_list (Rng.sample rng arr target)
  end

let result_of cluster seen ~contacted ~target =
  { Lookup_result.entries = pick_from_table seen ~rng:(Cluster.rng cluster) ~target;
    servers_contacted = contacted;
    target }

let single ?reachable cluster ~t =
  let up = candidates_array ?reachable cluster in
  match Array.length up with
  | 0 -> Lookup_result.empty ~target:t
  | len ->
    let server = up.(Rng.int (Cluster.rng cluster) len) in
    let seen = Hashtbl.create 16 in
    let answered = contact cluster ~t ~seen server in
    result_of cluster seen ~contacted:(if answered then 1 else 0) ~target:t

(* Walk [order.(0 .. len-1)] until [t] distinct entries are in hand. *)
let probe_in_order_arr cluster ~t order =
  let seen = Hashtbl.create 16 in
  let contacted = ref 0 in
  let len = Array.length order in
  let i = ref 0 in
  while !i < len && Hashtbl.length seen < t do
    if contact cluster ~t ~seen order.(!i) then incr contacted;
    incr i
  done;
  result_of cluster seen ~contacted:!contacted ~target:t

let probe_in_order cluster ~t order = probe_in_order_arr cluster ~t (Array.of_list order)

let random_order ?reachable cluster ~t =
  let up = candidates_array ?reachable cluster in
  Rng.shuffle_in_place (Cluster.rng cluster) up;
  probe_in_order_arr cluster ~t up

let stride ?reachable cluster ~start ~step ~t =
  let n = Cluster.n cluster in
  (* Normalize into [0, n): OCaml's [mod] is sign-preserving, so a raw
     negative step would walk [pos] below 0 and crash the array access;
     step = 0 (mod n) degenerates to the single start residue, which the
     rest-extension below already handles. *)
  let step = ((step mod n) + n) mod n in
  let usable = candidates_array ?reachable cluster in
  if Array.length usable = n then begin
    (* Failure-free fast path: the deterministic sequence start,
       start+step, ... visits gcd-many residue classes; extend with the
       remaining servers so the probe can always reach full coverage. *)
    let visited = Array.make n false in
    let order = ref [] in
    let pos = ref (((start mod n) + n) mod n) in
    let continue = ref true in
    while !continue do
      if visited.(!pos) then continue := false
      else begin
        visited.(!pos) <- true;
        order := !pos :: !order;
        pos := (!pos + step) mod n
      end
    done;
    let rest =
      List.filter (fun i -> not visited.(i)) (List.init n Fun.id)
    in
    probe_in_order cluster ~t (List.rev !order @ rest)
  end
  else begin
    (* Failures (or restricted reachability): random order, per the
       paper. *)
    Rng.shuffle_in_place (Cluster.rng cluster) usable;
    probe_in_order_arr cluster ~t usable
  end
