(* Quickstart: build a partial lookup service, place entries, look some
   of them up, apply updates, and survive a failure.

   Run with: dune exec examples/quickstart.exe *)

open Plookup
open Plookup_store

let () =
  (* A service is n servers running one placement strategy.  Round-
     Robin-2 stores every entry on 2 consecutive servers. *)
  let service = Service.create ~seed:42 ~n:4 (Service.round_robin 2) in

  (* One key maps to a set of entries — say, mirrors of a file. *)
  let mirrors =
    List.mapi
      (fun i host -> Entry.v ~payload:host i)
      [ "mirror-us.example"; "mirror-eu.example"; "mirror-ap.example";
        "mirror-sa.example"; "mirror-af.example"; "mirror-au.example" ]
  in
  Service.place service mirrors;
  Format.printf "placed %d mirrors on %d servers (%s)@." (List.length mirrors)
    (Service.n service) (Service.name service);
  Format.printf "%a@." Cluster.pp (Service.cluster service);

  (* A client needs any 2 mirrors — not all 6. *)
  let result = Service.partial_lookup service 2 in
  Format.printf "partial_lookup(2) -> %a@." Lookup_result.pp result;
  List.iter
    (fun e -> Format.printf "  use %s@." (Option.value ~default:"?" (Entry.payload e)))
    result.Lookup_result.entries;

  (* Updates: a mirror goes away, a new one appears. *)
  Service.delete service (List.hd mirrors);
  Service.add service (Entry.v ~payload:"mirror-eu2.example" 6);
  Format.printf "@.after one delete and one add:@.%a@." Cluster.pp (Service.cluster service);

  (* A server crashes; lookups route around it. *)
  Cluster.fail (Service.cluster service) 0;
  let result = Service.partial_lookup service 2 in
  Format.printf "with server 0 down: %a@." Lookup_result.pp result;

  (* The cluster exposes the paper's cost metrics directly. *)
  Format.printf "@.storage cost: %d entry copies, coverage: %d distinct entries@."
    (Plookup_metrics.Storage.measured (Service.cluster service))
    (Plookup_metrics.Coverage.measured (Service.cluster service))
