open Plookup_util
module Churn = Plookup_workload.Churn
module Engine = Plookup_sim.Engine

let test_sorted_and_bounded () =
  let events = Churn.generate (Rng.create 1) ~n:5 ~mttf:10. ~mttr:5. ~horizon:200. in
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      if a.Churn.time > b.Churn.time then Alcotest.fail "unsorted" else check_sorted rest
    | _ -> ()
  in
  check_sorted events;
  List.iter
    (fun ev ->
      if ev.Churn.time < 0. || ev.Churn.time > 200. then Alcotest.fail "beyond horizon";
      if ev.Churn.server < 0 || ev.Churn.server >= 5 then Alcotest.fail "bad server")
    events;
  Alcotest.(check bool) "some events" true (events <> [])

let test_alternation_per_server () =
  let events = Churn.generate (Rng.create 2) ~n:3 ~mttf:8. ~mttr:4. ~horizon:500. in
  let state = Array.make 3 true in
  List.iter
    (fun ev ->
      if state.(ev.Churn.server) = ev.Churn.up then
        Alcotest.failf "server %d did not alternate" ev.Churn.server;
      state.(ev.Churn.server) <- ev.Churn.up)
    events

let test_first_event_is_failure () =
  let events = Churn.generate (Rng.create 3) ~n:4 ~mttf:10. ~mttr:10. ~horizon:1000. in
  let seen = Hashtbl.create 4 in
  List.iter
    (fun ev ->
      if not (Hashtbl.mem seen ev.Churn.server) then begin
        Hashtbl.replace seen ev.Churn.server ();
        Alcotest.(check bool) "first transition is down" false ev.Churn.up
      end)
    events

let test_expected_availability () =
  Helpers.close "83%" (5. /. 6.) (Churn.expected_availability ~mttf:100. ~mttr:20.);
  Helpers.close "50%" 0.5 (Churn.expected_availability ~mttf:7. ~mttr:7.)

let test_long_run_availability_matches () =
  (* Time-weighted up fraction of one server over a long horizon. *)
  let mttf = 10. and mttr = 5. in
  let events = Churn.generate (Rng.create 5) ~n:1 ~mttf ~mttr ~horizon:200_000. in
  let up_time = ref 0. and prev = ref 0. and up = ref true in
  List.iter
    (fun ev ->
      if !up then up_time := !up_time +. (ev.Churn.time -. !prev);
      prev := ev.Churn.time;
      up := ev.Churn.up)
    events;
  Helpers.roughly ~rel:0.03 "empirical availability"
    (Churn.expected_availability ~mttf ~mttr)
    (!up_time /. !prev)

let test_drive_applies_in_order () =
  let engine = Engine.create () in
  let events = Churn.generate (Rng.create 6) ~n:2 ~mttf:5. ~mttr:5. ~horizon:50. in
  let applied = ref [] in
  Churn.drive engine ~apply:(fun ev -> applied := ev :: !applied) events;
  ignore (Engine.run engine);
  Helpers.check_int "all applied" (List.length events) (List.length !applied);
  Alcotest.(check bool) "in timeline order" true (List.rev !applied = events)

let test_validation () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "bad n" (Invalid_argument "Churn.generate: n must be positive")
    (fun () -> ignore (Churn.generate rng ~n:0 ~mttf:1. ~mttr:1. ~horizon:1.));
  Alcotest.check_raises "bad mttf"
    (Invalid_argument "Churn.generate: mttf/mttr must be positive") (fun () ->
      ignore (Churn.generate rng ~n:1 ~mttf:0. ~mttr:1. ~horizon:1.))

let prop_deterministic =
  Helpers.qcheck ~count:30 "same seed, same timeline"
    QCheck2.Gen.int
    (fun seed ->
      let gen () = Churn.generate (Rng.create seed) ~n:3 ~mttf:7. ~mttr:3. ~horizon:100. in
      gen () = gen ())

let () =
  Helpers.run "churn"
    [ ( "churn",
        [ Alcotest.test_case "sorted and bounded" `Quick test_sorted_and_bounded;
          Alcotest.test_case "alternation" `Quick test_alternation_per_server;
          Alcotest.test_case "first is failure" `Quick test_first_event_is_failure;
          Alcotest.test_case "expected availability" `Quick test_expected_availability;
          Alcotest.test_case "long-run availability" `Quick test_long_run_availability_matches;
          Alcotest.test_case "drive" `Quick test_drive_applies_in_order;
          Alcotest.test_case "validation" `Quick test_validation;
          prop_deterministic ] ) ]
