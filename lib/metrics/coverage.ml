open Plookup_util
open Plookup_store
module Service = Plookup.Service

let measured cluster = Entry.Set.cardinal (Plookup.Cluster.coverage cluster)

let measured_over_instances ?(seed = 0) ?obs ?(shards = 1) ~n ~entries ~config ?budget
    ~runs () =
  let master = Rng.create seed in
  let acc = Stats.Accum.create () in
  if shards <= 1 then
    for _ = 1 to runs do
      let run_seed = Int64.to_int (Rng.bits64 master) land max_int in
      let service = Service.create ~seed:run_seed ?obs ~n config in
      let gen = Entry.Gen.create () in
      Service.place ?budget service (Entry.Gen.batch gen entries);
      Stats.Accum.add acc (float_of_int (measured (Service.cluster service)))
    done
  else begin
    (* Fixed instance-space decomposition: seeds are pre-drawn in index
       order (explicit loop — [Array.init] order is unspecified), each
       worker owns its own service and obs child, and samples are
       replayed into the accumulator in instance order, so the result
       is byte-identical to the sequential loop at any shard count. *)
    let seeds = Array.make runs 0 in
    for i = 0 to runs - 1 do
      seeds.(i) <- Int64.to_int (Rng.bits64 master) land max_int
    done;
    let outputs =
      Pool.map ~jobs:shards
        (fun run_seed ->
          let child = Option.map Plookup_obs.Obs.child obs in
          let service = Service.create ~seed:run_seed ?obs:child ~n config in
          let gen = Entry.Gen.create () in
          Service.place ?budget service (Entry.Gen.batch gen entries);
          (float_of_int (measured (Service.cluster service)), child))
        seeds
    in
    Array.iter
      (fun (sample, child) ->
        Stats.Accum.add acc sample;
        match (obs, child) with
        | Some parent, Some c -> Plookup_obs.Obs.merge parent c
        | _ -> ())
      outputs
  end;
  (Stats.Accum.mean acc, Stats.Accum.ci95_half_width acc)
