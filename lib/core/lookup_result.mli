(** The outcome of one [partial_lookup(t)]. *)

open Plookup_store

type t = {
  entries : Entry.t list;
      (** Distinct entries accumulated across contacted servers.  May
          exceed the target (merging answers can overshoot) and falls
          short only when the operational coverage is below the target. *)
  servers_contacted : int;
      (** How many servers answered — the paper's client lookup cost for
          this lookup. *)
  target : int;
}

val satisfied : t -> bool
(** Whether at least [target] distinct entries were retrieved. *)

val count : t -> int
val empty : target:int -> t
val pp : Format.formatter -> t -> unit
