(* Yellow pages: a category directory with client preferences.

   Categories ("news", "weather", ...) map to provider URLs.  Clients
   have preferences — here, network latency to each provider — and want
   the t *best* providers, not arbitrary ones.  This exercises the
   Section 7.1 variation: partial_lookup_pref ranks the collected
   entries under a client-supplied cost function.

   Run with: dune exec examples/yellow_pages.exe *)

open Plookup
open Plookup_store
open Plookup_util

let categories =
  [ ("news", [ "cnn.example"; "bbc.example"; "reuters.example"; "ap.example";
               "aljazeera.example"; "npr.example" ]);
    ("weather", [ "noaa.example"; "metoffice.example"; "wunderground.example";
                  "accuweather.example" ]);
    ("sports", [ "espn.example"; "skysports.example"; "beinsports.example";
                 "eurosport.example"; "dazn.example" ]) ]

let () =
  let directory = Directory.create ~seed:3 ~n:6 ~default:(Service.round_robin 2) () in
  let gen = Entry.Gen.create () in
  let by_id = Hashtbl.create 32 in
  List.iter
    (fun (category, providers) ->
      let entries =
        List.map
          (fun url ->
            let e = Entry.Gen.fresh ~payload:url gen in
            Hashtbl.replace by_id (Entry.id e) url;
            e)
          providers
      in
      Directory.place directory ~key:category entries)
    categories;
  Format.printf "yellow pages: %d categories on %d servers@." (Directory.key_count directory)
    (Directory.n directory);

  (* Each client has its own latency map to providers. *)
  let latency_of_client client_seed =
    let rng = Rng.create client_seed in
    let table = Hashtbl.create 32 in
    fun e ->
      let id = Entry.id e in
      match Hashtbl.find_opt table id with
      | Some l -> l
      | None ->
        let l = Dist.uniform_in rng ~lo:5. ~hi:250. in
        Hashtbl.replace table id l;
        l
  in

  List.iter
    (fun client ->
      let latency = latency_of_client client in
      Format.printf "@.client %d wants the 2 lowest-latency news providers:@." client;
      let r = Directory.partial_lookup_pref directory ~key:"news" ~cost:latency 2 in
      List.iter
        (fun e ->
          Format.printf "  %-20s %5.1f ms@."
            (Option.value ~default:"?" (Hashtbl.find_opt by_id (Entry.id e)))
            (latency e))
        (List.sort (fun a b -> Float.compare (latency a) (latency b)) r.Lookup_result.entries);
      Format.printf "  (merged answers from %d directory servers)@."
        r.Lookup_result.servers_contacted)
    [ 1; 2; 3 ];

  (* Unpreferred lookups still work — any two providers will do. *)
  let r = Directory.partial_lookup directory ~key:"weather" 2 in
  Format.printf "@.any 2 weather providers: %a@."
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Entry.pp)
    r.Lookup_result.entries;

  (* Unknown categories return the empty set, per the service contract. *)
  let r = Directory.partial_lookup directory ~key:"cooking" 1 in
  Format.printf "unknown category 'cooking' -> %d entries@." (Lookup_result.count r)
