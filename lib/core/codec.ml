open Plookup_store
open Plookup_util

(* Varints: LEB128, unsigned, for non-negative ints. *)
let put_varint buf v =
  if v < 0 then invalid_arg "Codec.put_varint: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_uint8 buf v
    else begin
      Buffer.add_uint8 buf (0x80 lor (v land 0x7f));
      go (v lsr 7)
    end
  in
  go v

let get_varint s ~pos =
  let len = String.length s in
  let rec go pos shift acc =
    if pos >= len then Error "varint: truncated"
    else if shift > 62 then Error "varint: overflow"
    else begin
      let b = Char.code s.[pos] in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Ok (acc, pos + 1) else go (pos + 1) (shift + 7) acc
    end
  in
  go pos 0 0

let ( let* ) = Result.bind

(* Entries: id, then payload tagged by length+1 so the absent payload
   (0) and the empty payload (1) stay distinct. *)
let encode_entry buf e =
  put_varint buf (Entry.id e);
  match Entry.payload e with
  | None -> put_varint buf 0
  | Some p ->
    put_varint buf (String.length p + 1);
    Buffer.add_string buf p

let decode_entry s ~pos =
  let* id, pos = get_varint s ~pos in
  let* tagged_len, pos = get_varint s ~pos in
  if tagged_len = 0 then Ok (Entry.v id, pos)
  else begin
    let len = tagged_len - 1 in
    if pos + len > String.length s then Error "entry payload: truncated"
    else Ok (Entry.v ~payload:(String.sub s pos len) id, pos + len)
  end

let put_entries buf entries =
  put_varint buf (List.length entries);
  List.iter (encode_entry buf) entries

let get_entries s ~pos =
  let* count, pos = get_varint s ~pos in
  if count > String.length s - pos then Error "entry list: count exceeds input"
  else begin
    let rec go k pos acc =
      if k = 0 then Ok (List.rev acc, pos)
      else
        let* e, pos = decode_entry s ~pos in
        go (k - 1) pos (e :: acc)
    in
    go count pos []
  end

let put_ints buf ids =
  put_varint buf (List.length ids);
  List.iter (put_varint buf) ids

let get_ints s ~pos =
  let* count, pos = get_varint s ~pos in
  if count > String.length s - pos then Error "int list: count exceeds input"
  else begin
    let rec go k pos acc =
      if k = 0 then Ok (List.rev acc, pos)
      else
        let* v, pos = get_varint s ~pos in
        go (k - 1) pos (v :: acc)
    in
    go count pos []
  end

(* Bitsets travel as capacity + member list; members are sparse relative
   to capacity in every digest use, so the id list beats raw words. *)
let put_bitset buf bits =
  put_varint buf (Bitset.capacity bits);
  put_ints buf (Bitset.to_list bits)

let get_bitset s ~pos =
  let* capacity, pos = get_varint s ~pos in
  let* ids, pos = get_ints s ~pos in
  match Bitset.of_list capacity ids with
  | bits -> Ok (bits, pos)
  | exception Invalid_argument _ -> Error "bitset: member out of range"

(* Message tags. *)
let tag_place = 1
let tag_add = 2
let tag_delete = 3
let tag_lookup = 4
let tag_store = 5
let tag_store_batch = 6
let tag_remove = 7
let tag_add_sampled = 8
let tag_remove_counted = 9
let tag_fetch_candidate = 10
let tag_sync_add = 11
let tag_sync_delete = 12
let tag_sync_state = 13
let tag_digest_request = 14
let tag_sync_fix = 15
let tag_hint = 16
let tag_digest_pull = 17
let tag_repair_store = 18

let hint_kind_code : Msg.hint_kind -> int = function
  | Msg.H_store -> 0
  | Msg.H_remove -> 1
  | Msg.H_add_sampled -> 2
  | Msg.H_remove_counted -> 3

let hint_kind_of_code = function
  | 0 -> Ok Msg.H_store
  | 1 -> Ok Msg.H_remove
  | 2 -> Ok Msg.H_add_sampled
  | 3 -> Ok Msg.H_remove_counted
  | c -> Error (Printf.sprintf "hint: unknown kind %d" c)

(* The plane wrappers are a type-level split only: on the wire a message
   is still one flat tag byte, so old captures decode unchanged. *)
let encode_data buf (d : Msg.data) =
  match d with
  | Msg.Place entries ->
    Buffer.add_uint8 buf tag_place;
    put_entries buf entries
  | Msg.Add e ->
    Buffer.add_uint8 buf tag_add;
    encode_entry buf e
  | Msg.Delete e ->
    Buffer.add_uint8 buf tag_delete;
    encode_entry buf e
  | Msg.Lookup t ->
    Buffer.add_uint8 buf tag_lookup;
    put_varint buf t

let encode_strategy buf (s : Msg.strategy) =
  match s with
  | Msg.Store e ->
    Buffer.add_uint8 buf tag_store;
    encode_entry buf e
  | Msg.Store_batch entries ->
    Buffer.add_uint8 buf tag_store_batch;
    put_entries buf entries
  | Msg.Remove e ->
    Buffer.add_uint8 buf tag_remove;
    encode_entry buf e
  | Msg.Add_sampled e ->
    Buffer.add_uint8 buf tag_add_sampled;
    encode_entry buf e
  | Msg.Remove_counted e ->
    Buffer.add_uint8 buf tag_remove_counted;
    encode_entry buf e
  | Msg.Fetch_candidate ids ->
    Buffer.add_uint8 buf tag_fetch_candidate;
    put_ints buf ids
  | Msg.Sync_add e ->
    Buffer.add_uint8 buf tag_sync_add;
    encode_entry buf e
  | Msg.Sync_delete e ->
    Buffer.add_uint8 buf tag_sync_delete;
    encode_entry buf e
  | Msg.Sync_state -> Buffer.add_uint8 buf tag_sync_state

let encode_repair buf (r : Msg.repair) =
  match r with
  | Msg.Digest_request bits ->
    Buffer.add_uint8 buf tag_digest_request;
    put_bitset buf bits
  | Msg.Sync_fix (missing, retract) ->
    Buffer.add_uint8 buf tag_sync_fix;
    put_entries buf missing;
    put_ints buf retract
  | Msg.Hint (target, kind, e) ->
    Buffer.add_uint8 buf tag_hint;
    put_varint buf target;
    Buffer.add_uint8 buf (hint_kind_code kind);
    encode_entry buf e
  | Msg.Digest_pull -> Buffer.add_uint8 buf tag_digest_pull
  | Msg.Repair_store e ->
    Buffer.add_uint8 buf tag_repair_store;
    encode_entry buf e

let encode msg =
  let buf = Buffer.create 32 in
  (match (msg : Msg.t) with
  | Msg.Data d -> encode_data buf d
  | Msg.Strategy s -> encode_strategy buf s
  | Msg.Repair r -> encode_repair buf r);
  Buffer.contents buf

let expect_end label pos s k =
  if pos = String.length s then k else Error (label ^ ": trailing bytes")

let decode s =
  if String.length s = 0 then Error "message: empty"
  else begin
    let tag = Char.code s.[0] in
    let pos = 1 in
    if tag = tag_place then
      let* entries, pos = get_entries s ~pos in
      expect_end "place" pos s (Ok (Msg.place entries))
    else if tag = tag_add then
      let* e, pos = decode_entry s ~pos in
      expect_end "add" pos s (Ok (Msg.add e))
    else if tag = tag_delete then
      let* e, pos = decode_entry s ~pos in
      expect_end "delete" pos s (Ok (Msg.delete e))
    else if tag = tag_lookup then
      let* t, pos = get_varint s ~pos in
      expect_end "lookup" pos s (Ok (Msg.lookup t))
    else if tag = tag_store then
      let* e, pos = decode_entry s ~pos in
      expect_end "store" pos s (Ok (Msg.store e))
    else if tag = tag_store_batch then
      let* entries, pos = get_entries s ~pos in
      expect_end "store_batch" pos s (Ok (Msg.store_batch entries))
    else if tag = tag_remove then
      let* e, pos = decode_entry s ~pos in
      expect_end "remove" pos s (Ok (Msg.remove e))
    else if tag = tag_add_sampled then
      let* e, pos = decode_entry s ~pos in
      expect_end "add_sampled" pos s (Ok (Msg.add_sampled e))
    else if tag = tag_remove_counted then
      let* e, pos = decode_entry s ~pos in
      expect_end "remove_counted" pos s (Ok (Msg.remove_counted e))
    else if tag = tag_fetch_candidate then
      let* ids, pos = get_ints s ~pos in
      expect_end "fetch_candidate" pos s (Ok (Msg.fetch_candidate ids))
    else if tag = tag_sync_add then
      let* e, pos = decode_entry s ~pos in
      expect_end "sync_add" pos s (Ok (Msg.sync_add e))
    else if tag = tag_sync_delete then
      let* e, pos = decode_entry s ~pos in
      expect_end "sync_delete" pos s (Ok (Msg.sync_delete e))
    else if tag = tag_sync_state then expect_end "sync_state" pos s (Ok Msg.sync_state)
    else if tag = tag_digest_request then
      let* bits, pos = get_bitset s ~pos in
      expect_end "digest_request" pos s (Ok (Msg.digest_request bits))
    else if tag = tag_sync_fix then
      let* missing, pos = get_entries s ~pos in
      let* retract, pos = get_ints s ~pos in
      expect_end "sync_fix" pos s (Ok (Msg.sync_fix missing retract))
    else if tag = tag_hint then
      let* target, pos = get_varint s ~pos in
      if pos >= String.length s then Error "hint: truncated"
      else
        let* kind = hint_kind_of_code (Char.code s.[pos]) in
        let* e, pos = decode_entry s ~pos:(pos + 1) in
        expect_end "hint" pos s (Ok (Msg.hint ~target kind e))
    else if tag = tag_digest_pull then expect_end "digest_pull" pos s (Ok Msg.digest_pull)
    else if tag = tag_repair_store then
      let* e, pos = decode_entry s ~pos in
      expect_end "repair_store" pos s (Ok (Msg.repair_store e))
    else Error (Printf.sprintf "message: unknown tag %d" tag)
  end

(* Reply tags. *)
let tag_ack = 100
let tag_entries = 101
let tag_candidate_none = 102
let tag_candidate_some = 103
let tag_digest = 104
let tag_busy = 105

let encode_reply reply =
  let buf = Buffer.create 16 in
  (match (reply : Msg.reply) with
  | Msg.Ack -> Buffer.add_uint8 buf tag_ack
  | Msg.Entries entries ->
    Buffer.add_uint8 buf tag_entries;
    put_entries buf entries
  | Msg.Candidate None -> Buffer.add_uint8 buf tag_candidate_none
  | Msg.Candidate (Some e) ->
    Buffer.add_uint8 buf tag_candidate_some;
    encode_entry buf e
  | Msg.Digest bits ->
    Buffer.add_uint8 buf tag_digest;
    put_bitset buf bits
  | Msg.Busy -> Buffer.add_uint8 buf tag_busy);
  Buffer.contents buf

let decode_reply s =
  if String.length s = 0 then Error "reply: empty"
  else begin
    let tag = Char.code s.[0] in
    let pos = 1 in
    if tag = tag_ack then expect_end "ack" pos s (Ok Msg.Ack)
    else if tag = tag_entries then
      let* entries, pos = get_entries s ~pos in
      expect_end "entries" pos s (Ok (Msg.Entries entries))
    else if tag = tag_candidate_none then
      expect_end "candidate" pos s (Ok (Msg.Candidate None))
    else if tag = tag_candidate_some then
      let* e, pos = decode_entry s ~pos in
      expect_end "candidate" pos s (Ok (Msg.Candidate (Some e)))
    else if tag = tag_digest then
      let* bits, pos = get_bitset s ~pos in
      expect_end "digest" pos s (Ok (Msg.Digest bits))
    else if tag = tag_busy then expect_end "busy" pos s (Ok Msg.Busy)
    else Error (Printf.sprintf "reply: unknown tag %d" tag)
  end

let frame body =
  let buf = Buffer.create (String.length body + 4) in
  Buffer.add_int32_le buf (Int32.of_int (String.length body));
  Buffer.add_string buf body;
  Buffer.contents buf

let unframe s ~pos =
  if pos + 4 > String.length s then Error "frame: truncated header"
  else begin
    let len = Int32.to_int (String.get_int32_le s pos) in
    if len < 0 then Error "frame: negative length"
    else if pos + 4 + len > String.length s then Error "frame: truncated body"
    else Ok (String.sub s (pos + 4) len, pos + 4 + len)
  end
