(** Figure 13: deterioration of RandomServer-x fairness under updates.
    10 servers each holding at most x = 20 of the ~100 live entries;
    unfairness is re-measured after every block of updates.  Deleted
    entries are replaced (via the reservoir rule) mostly by newer ones,
    biasing lookups toward recent entries: unfairness climbs quickly
    from its static level and then stabilizes.

    The paper does not state the target answer size used here; its
    starting level (~0.5, versus ~0.1 in the static Fig. 9 at the same
    storage) is consistent with single-entry lookups, so t defaults to 1
    (see EXPERIMENTS.md).  The rising-then-plateau shape is insensitive
    to t. *)

val id : string
val title : string

val run :
  ?n:int ->
  ?h:int ->
  ?x:int ->
  ?t:int ->
  ?checkpoints:int list ->
  Ctx.t ->
  Plookup_util.Table.t
(** Defaults: n=10, h=100, x=20, t=1, checkpoints 0..4000 step 500.
    Also reports Fixed-x at the same checkpoints for the Section 6.3
    comparison ("Fixed-x has an unfairness of 2 in this experiment"). *)
