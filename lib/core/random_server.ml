open Plookup_store
open Plookup_util
module Net = Plookup_net.Net

type t = {
  cluster : Cluster.t;
  x : int;
  replacement_on_delete : bool;
  counts : int array; (* per-server local h counter *)
}

(* Fetch one entry this server lacks, probing other servers in random
   order — the replacement alternative of Section 5.3.  The entry being
   deleted is explicitly excluded: peers later in the broadcast order
   still hold it, and accepting it back would resurrect a dead entry. *)
let fetch_replacement t ~self ~deleted =
  let net = Cluster.net t.cluster in
  let local = Cluster.store t.cluster self in
  let have = Entry.id deleted :: Server_store.ids local in
  let others =
    List.filter (fun i -> i <> self) (Cluster.up_servers t.cluster) |> Array.of_list
  in
  Rng.shuffle_in_place (Cluster.rng t.cluster) others;
  Array.exists
    (fun peer ->
      match Net.send net ~src:(Net.Server self) ~dst:peer (Msg.fetch_candidate have) with
      | Some (Msg.Candidate (Some e)) -> Server_store.add local e
      | Some (Msg.Candidate None | Msg.Ack | Msg.Entries _ | Msg.Digest _ | Msg.Busy) | None ->
        false)
    others
  |> ignore

let handle_data t dst _src (msg : Msg.data) : Msg.reply =
  let net = Cluster.net t.cluster in
  match msg with
  | Msg.Place entries ->
    ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.store_batch entries));
    Msg.Ack
  | Msg.Add e ->
    ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.add_sampled e));
    Msg.Ack
  | Msg.Delete e ->
    ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.remove_counted e));
    Msg.Ack
  | Msg.Lookup target -> Strategy_common.lookup_reply t.cluster dst target

let handle_strategy t dst _src (msg : Msg.strategy) : Msg.reply =
  let rng = Cluster.rng t.cluster in
  let local = Cluster.store t.cluster dst in
  match msg with
  | Msg.Store_batch entries ->
    (* Independently select a uniform random x-subset of the batch. *)
    Server_store.clear local;
    let arr = Array.of_list entries in
    let chosen = Rng.sample rng arr (min t.x (Array.length arr)) in
    Array.iter (fun e -> ignore (Server_store.add local e)) chosen;
    t.counts.(dst) <- Array.length arr;
    Msg.Ack
  | Msg.Add_sampled e ->
    t.counts.(dst) <- t.counts.(dst) + 1;
    if Server_store.cardinal local < t.x then ignore (Server_store.add local e)
    else begin
      (* Reservoir step: keep the newcomer with probability x/h, evicting
         a uniform resident. *)
      let p = float_of_int t.x /. float_of_int (max t.x t.counts.(dst)) in
      if Rng.bernoulli rng p then begin
        (match Server_store.random_one local rng with
        | Some victim -> ignore (Server_store.remove local victim)
        | None -> ());
        ignore (Server_store.add local e)
      end
    end;
    Msg.Ack
  | Msg.Remove_counted e ->
    t.counts.(dst) <- max 0 (t.counts.(dst) - 1);
    let had = Server_store.remove local e in
    if had && t.replacement_on_delete then fetch_replacement t ~self:dst ~deleted:e;
    Msg.Ack
  | Msg.Fetch_candidate excluded ->
    let table = Hashtbl.create (List.length excluded) in
    List.iter (fun id -> Hashtbl.replace table id ()) excluded;
    let candidate =
      Server_store.fold
        (fun e acc ->
          match acc with
          | Some _ -> acc
          | None -> if Hashtbl.mem table (Entry.id e) then None else Some e)
        local None
    in
    Msg.Candidate candidate
  | (Msg.Store _ | Msg.Remove _ | Msg.Sync_add _ | Msg.Sync_delete _ | Msg.Sync_state) as
    other ->
    Strategy_common.default_strategy t.cluster dst other

let create ?(replacement_on_delete = false) cluster ~x =
  if x <= 0 then invalid_arg "Random_server.create: x must be positive";
  let t = { cluster; x; replacement_on_delete; counts = Array.make (Cluster.n cluster) 0 } in
  Strategy_common.install cluster ~data:(handle_data t) ~strategy:(handle_strategy t);
  t

let x t = t.x
let cluster t = t.cluster

let system_count t ~server =
  if server < 0 || server >= Cluster.n t.cluster then
    invalid_arg "Random_server.system_count: server out of range";
  t.counts.(server)

let place t entries = Strategy_common.to_random_server t.cluster (Msg.place (Entry.dedup entries))
let add t e = Strategy_common.to_random_server t.cluster (Msg.add e)
let delete t e = Strategy_common.to_random_server t.cluster (Msg.delete e)
let partial_lookup ?reachable t target = Probe.random_order ?reachable t.cluster ~t:target

let strategy_meta ~replacing =
  if replacing then
    { Strategy_intf.name = "RandomServerReplacing";
      keys = [ "randomserverreplacing"; "random_server_replacing" ];
      arity = 1;
      param_doc = "X = random entries kept per server (replaces on delete)";
      storage_doc = "x*n";
      ablation = true;
      rank = 35 }
  else
    { Strategy_intf.name = "RandomServer";
      keys = [ "randomserver"; "random_server"; "random" ];
      arity = 1;
      param_doc = "X = random entries kept per server";
      storage_doc = "x*n";
      ablation = false;
      rank = 30 }

module Make_strategy (M : sig
  val replacing : bool
end) =
struct
  type nonrec t = t

  let meta = strategy_meta ~replacing:M.replacing

  let analytic_storage ~n ~h:_ ~params =
    float_of_int (Strategy_common.one_param ~who:meta.Strategy_intf.name ~what:"x" params * n)

  let params_for_budget ~n ~h:_ ~total ~params:_ = [ max 1 (total / n) ]

  let create ?resync_stores:_ cluster ~params =
    create ~replacement_on_delete:M.replacing cluster
      ~x:(Strategy_common.one_param ~who:"Random_server.create" ~what:"x" params)

  let place t ?budget:_ entries = place t entries
  let add = add
  let delete = delete
  let partial_lookup = partial_lookup
  let can_update t = Strategy_common.any_up t.cluster
  let repair_plan t = Strategy_intf.Free t.x
end

module Strategy = Make_strategy (struct let replacing = false end)
module Strategy_replacing = Make_strategy (struct let replacing = true end)

let () =
  Strategy_registry.register (module Strategy);
  Strategy_registry.register (module Strategy_replacing)
