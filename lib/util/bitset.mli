(** Dense bitsets over [0, capacity).

    The metrics layer (coverage, fault tolerance) works on snapshots of
    which entries each server stores; entry ids are dense small integers,
    so bitsets make union/count over thousands of heuristic iterations
    cheap. *)

type t

val create : int -> t
(** [create capacity] is an empty set over [\[0, capacity)]. *)

val capacity : t -> int
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val clear : t -> unit
val copy : t -> t
val union_into : t -> t -> unit
(** [union_into dst src] adds every member of [src] to [dst]. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool

val disjoint : t -> t -> bool
(** Whether the two sets share no member — one pass, no allocation
    (unlike [is_empty (inter a b)]). *)

val is_empty : t -> bool
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
(** [of_list capacity elements]. *)
