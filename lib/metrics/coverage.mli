(** Maximum coverage (Section 4.3): the number of distinct entries a
    client can retrieve by contacting every operational server — the
    ceiling on any achievable target answer size. *)

val measured : Plookup.Cluster.t -> int

val measured_over_instances :
  ?seed:int ->
  ?obs:Plookup_obs.Obs.t ->
  ?shards:int ->
  n:int ->
  entries:int ->
  config:Plookup.Service.config ->
  ?budget:int ->
  runs:int ->
  unit ->
  float * float
(** Mean and 95% CI half-width of the coverage over [runs] fresh
    placements (Fig. 6's protocol).  [budget] caps total stored copies
    for Round-y / Hash-y. *)
