open Plookup
open Plookup_store
module Net = Plookup_net.Net

let make ?(seed = 3) ~n ~h () =
  let cluster = Cluster.create ~seed ~n () in
  let s = Full_replication.create cluster in
  let batch = Helpers.entries h in
  Full_replication.place s batch;
  (cluster, s, batch)

let test_every_server_has_everything () =
  let cluster, _, batch = make ~n:4 ~h:10 () in
  for server = 0 to 3 do
    Helpers.check_int
      (Printf.sprintf "server %d full" server)
      10
      (Server_store.cardinal (Cluster.store cluster server));
    List.iter
      (fun e ->
        Alcotest.(check bool) "has entry" true (Server_store.mem (Cluster.store cluster server) e))
      batch
  done

let test_storage_cost () =
  let cluster, _, _ = make ~n:4 ~h:10 () in
  Helpers.check_int "h*n" 40 (Cluster.total_stored cluster)

let test_place_message_cost () =
  (* place = 1 client request + n broadcast deliveries. *)
  let cluster = Cluster.create ~seed:1 ~n:5 () in
  let s = Full_replication.create cluster in
  Full_replication.place s (Helpers.entries 3);
  Helpers.check_int "1 + n messages" 6 (Net.messages_received (Cluster.net cluster))

let test_lookup_always_one_server () =
  let _, s, _ = make ~n:4 ~h:10 () in
  for t = 1 to 10 do
    let r = Full_replication.partial_lookup s t in
    Helpers.check_int "cost 1" 1 r.Lookup_result.servers_contacted;
    Helpers.check_int "t entries" t (Lookup_result.count r)
  done

let test_add_reaches_all () =
  let cluster, s, _ = make ~n:3 ~h:2 () in
  Full_replication.add s (Entry.v 99);
  for server = 0 to 2 do
    Alcotest.(check bool) "added everywhere" true
      (Server_store.mem (Cluster.store cluster server) (Entry.v 99))
  done

let test_add_message_cost () =
  let cluster, s, _ = make ~n:3 ~h:2 () in
  Net.reset_counters (Cluster.net cluster);
  Full_replication.add s (Entry.v 50);
  Helpers.check_int "1 + n per add" 4 (Net.messages_received (Cluster.net cluster));
  Net.reset_counters (Cluster.net cluster);
  Full_replication.delete s (Entry.v 50);
  Helpers.check_int "1 + n per delete" 4 (Net.messages_received (Cluster.net cluster))

let test_delete_removes_everywhere () =
  let cluster, s, batch = make ~n:3 ~h:5 () in
  let victim = List.hd batch in
  Full_replication.delete s victim;
  for server = 0 to 2 do
    Alcotest.(check bool) "gone" false (Server_store.mem (Cluster.store cluster server) victim);
    Helpers.check_int "rest intact" 4 (Server_store.cardinal (Cluster.store cluster server))
  done

let test_survives_n_minus_1_failures () =
  let cluster, s, _ = make ~n:5 ~h:8 () in
  List.iter (Cluster.fail cluster) [ 0; 1; 2; 3 ];
  let r = Full_replication.partial_lookup s 8 in
  Alcotest.(check bool) "still satisfied" true (Lookup_result.satisfied r);
  Helpers.check_int "one survivor answers" 1 r.Lookup_result.servers_contacted

let test_lookup_skips_failed_servers () =
  let cluster, s, _ = make ~n:3 ~h:4 () in
  Cluster.fail cluster 0;
  Cluster.fail cluster 2;
  Net.reset_counters (Cluster.net cluster);
  for _ = 1 to 10 do
    ignore (Full_replication.partial_lookup s 2)
  done;
  Helpers.check_int "only server 1 contacted" 10 (Net.messages_received_by (Cluster.net cluster) 1);
  Helpers.check_int "no drops" 0 (Net.messages_dropped (Cluster.net cluster))

let test_place_replaces () =
  let cluster, s, _ = make ~n:2 ~h:3 () in
  let fresh = [ Entry.v 100; Entry.v 101 ] in
  Full_replication.place s fresh;
  Helpers.check_int "replaced" 2 (Server_store.cardinal (Cluster.store cluster 0));
  Alcotest.(check bool) "old gone" false (Server_store.mem (Cluster.store cluster 0) (Entry.v 0))

let test_place_dedups () =
  let cluster = Cluster.create ~seed:1 ~n:2 () in
  let s = Full_replication.create cluster in
  Full_replication.place s [ Entry.v 1; Entry.v 1; Entry.v 2 ];
  Helpers.check_int "dedup" 2 (Server_store.cardinal (Cluster.store cluster 0))

let prop_lookup_returns_placed_entries =
  Helpers.qcheck "lookups only return placed entries"
    QCheck2.Gen.(pair (int_range 1 20) (int_range 1 8))
    (fun (h, t) ->
      let _, s, batch = make ~n:3 ~h () in
      let r = Full_replication.partial_lookup s (min t h) in
      List.for_all (fun e -> List.exists (Entry.equal e) batch) r.Lookup_result.entries)

let () =
  Helpers.run "full_replication"
    [ ( "full_replication",
        [ Alcotest.test_case "replicates everywhere" `Quick test_every_server_has_everything;
          Alcotest.test_case "storage h*n" `Quick test_storage_cost;
          Alcotest.test_case "place cost" `Quick test_place_message_cost;
          Alcotest.test_case "lookup cost 1" `Quick test_lookup_always_one_server;
          Alcotest.test_case "add everywhere" `Quick test_add_reaches_all;
          Alcotest.test_case "update cost 1+n" `Quick test_add_message_cost;
          Alcotest.test_case "delete everywhere" `Quick test_delete_removes_everywhere;
          Alcotest.test_case "n-1 fault tolerance" `Quick test_survives_n_minus_1_failures;
          Alcotest.test_case "skips failed" `Quick test_lookup_skips_failed_servers;
          Alcotest.test_case "place replaces" `Quick test_place_replaces;
          Alcotest.test_case "place dedups" `Quick test_place_dedups;
          prop_lookup_returns_placed_entries ] ) ]
