open Plookup_store
open Plookup_util
module Net = Plookup_net.Net

type t = {
  cluster : Cluster.t;
  x : int;
  replacement_on_delete : bool;
  counts : int array; (* per-server local h counter *)
}

(* Fetch one entry this server lacks, probing other servers in random
   order — the replacement alternative of Section 5.3.  The entry being
   deleted is explicitly excluded: peers later in the broadcast order
   still hold it, and accepting it back would resurrect a dead entry. *)
let fetch_replacement t ~self ~deleted =
  let net = Cluster.net t.cluster in
  let local = Cluster.store t.cluster self in
  let have = Entry.id deleted :: Server_store.ids local in
  let others =
    List.filter (fun i -> i <> self) (Cluster.up_servers t.cluster) |> Array.of_list
  in
  Rng.shuffle_in_place (Cluster.rng t.cluster) others;
  Array.exists
    (fun peer ->
      match Net.send net ~src:(Net.Server self) ~dst:peer (Msg.Fetch_candidate have) with
      | Some (Msg.Candidate (Some e)) -> Server_store.add local e
      | Some (Msg.Candidate None | Msg.Ack | Msg.Entries _ | Msg.Digest _) | None -> false)
    others
  |> ignore

let handler t dst _src msg : Msg.reply =
  let net = Cluster.net t.cluster in
  let rng = Cluster.rng t.cluster in
  let local = Cluster.store t.cluster dst in
  match (msg : Msg.t) with
  | Msg.Place entries ->
    ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.Store_batch entries));
    Msg.Ack
  | Msg.Add e ->
    ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.Add_sampled e));
    Msg.Ack
  | Msg.Delete e ->
    ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.Remove_counted e));
    Msg.Ack
  | Msg.Store_batch entries ->
    (* Independently select a uniform random x-subset of the batch. *)
    Server_store.clear local;
    let arr = Array.of_list entries in
    let chosen = Rng.sample rng arr (min t.x (Array.length arr)) in
    Array.iter (fun e -> ignore (Server_store.add local e)) chosen;
    t.counts.(dst) <- Array.length arr;
    Msg.Ack
  | Msg.Add_sampled e ->
    t.counts.(dst) <- t.counts.(dst) + 1;
    if Server_store.cardinal local < t.x then ignore (Server_store.add local e)
    else begin
      (* Reservoir step: keep the newcomer with probability x/h, evicting
         a uniform resident. *)
      let p = float_of_int t.x /. float_of_int (max t.x t.counts.(dst)) in
      if Rng.bernoulli rng p then begin
        (match Server_store.random_one local rng with
        | Some victim -> ignore (Server_store.remove local victim)
        | None -> ());
        ignore (Server_store.add local e)
      end
    end;
    Msg.Ack
  | Msg.Remove_counted e ->
    t.counts.(dst) <- max 0 (t.counts.(dst) - 1);
    let had = Server_store.remove local e in
    if had && t.replacement_on_delete then fetch_replacement t ~self:dst ~deleted:e;
    Msg.Ack
  | Msg.Fetch_candidate excluded ->
    let table = Hashtbl.create (List.length excluded) in
    List.iter (fun id -> Hashtbl.replace table id ()) excluded;
    let candidate =
      Server_store.fold
        (fun e acc ->
          match acc with
          | Some _ -> acc
          | None -> if Hashtbl.mem table (Entry.id e) then None else Some e)
        local None
    in
    Msg.Candidate candidate
  | Msg.Store e ->
    ignore (Server_store.add local e);
    Msg.Ack
  | Msg.Remove e ->
    ignore (Server_store.remove local e);
    Msg.Ack
  | Msg.Lookup target -> Msg.Entries (Server_store.random_pick local rng target)
  | Msg.Sync_add _ | Msg.Sync_delete _ | Msg.Sync_state | Msg.Digest_request _
  | Msg.Sync_fix _ | Msg.Hint _ | Msg.Digest_pull | Msg.Repair_store _ ->
    invalid_arg "Random_server: unexpected message"

let create ?(replacement_on_delete = false) cluster ~x =
  if x <= 0 then invalid_arg "Random_server.create: x must be positive";
  let t = { cluster; x; replacement_on_delete; counts = Array.make (Cluster.n cluster) 0 } in
  Net.set_handler (Cluster.net cluster) (handler t);
  t

let x t = t.x
let cluster t = t.cluster

let system_count t ~server =
  if server < 0 || server >= Cluster.n t.cluster then
    invalid_arg "Random_server.system_count: server out of range";
  t.counts.(server)

let to_random_server t msg =
  match Cluster.random_up_server t.cluster with
  | None -> ()
  | Some s -> ignore (Net.send (Cluster.net t.cluster) ~src:Net.Client ~dst:s msg)

let place t entries = to_random_server t (Msg.Place (Entry.dedup entries))
let add t e = to_random_server t (Msg.Add e)
let delete t e = to_random_server t (Msg.Delete e)
let partial_lookup ?reachable t target = Probe.random_order ?reachable t.cluster ~t:target
