let map ctx ~count f =
  Plookup_util.Pool.map ~jobs:ctx.Ctx.jobs f (Array.init count Fun.id)

let replicates ctx ~count f = map ctx ~count (fun i -> f ~seed:(Ctx.run_seed ctx (i + 1)))

let mean_of samples =
  let acc = Plookup_util.Stats.Accum.create () in
  Array.iter (Plookup_util.Stats.Accum.add acc) samples;
  Plookup_util.Stats.Accum.mean acc
