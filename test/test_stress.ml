(* Soak tests: long random interleavings of updates, failures,
   recoveries and lookups, with full invariant checks at the end.  These
   target the recovery/resync machinery that short unit tests cannot
   reach: coordinator failover, ledger state transfer, store resync. *)

open Plookup
open Plookup_store
open Plookup_util
module IntMap = Map.Make (Int)

type op = Fail of int | Recover of int | Add of int | Delete of int | Lookup of int

let gen_ops ~n =
  QCheck2.Gen.(
    list_size (int_range 0 250)
      (oneof
         [ map (fun s -> Fail s) (int_range 0 (n - 1));
           map (fun s -> Recover s) (int_range 0 (n - 1));
           map (fun id -> Add id) (int_range 0 80);
           map (fun id -> Delete id) (int_range 0 80);
           map (fun t -> Lookup t) (int_range 1 15) ]))

(* Mirror of the acceptance rules: an update lands iff some coordinator
   is up; adds of already-live ids and deletes of dead ids are no-ops.

   Failures that would take down the *last* operational coordinator are
   skipped: once updates have been accepted that a later sole-surviving
   stale replica never saw, the centralized scheme has genuinely lost
   state (the paper's footnote has no quorum), so that regime is out of
   the consistency contract. *)
let round_robin_soak ~coordinators ops =
  let n = 6 and h = 12 in
  let cluster = Cluster.create ~seed:91 ~n () in
  let strategy = Round_robin.create ~coordinators cluster ~y:2 in
  let initial = Helpers.entries h in
  Round_robin.place strategy initial;
  let live = ref IntMap.empty in
  List.iter (fun e -> live := IntMap.add (Entry.id e) e !live) initial;
  let up_coordinators () =
    List.filter (Cluster.is_up cluster) (List.init coordinators Fun.id)
  in
  List.iter
    (fun op ->
      match op with
      | Fail s ->
        let last_coordinator = s < coordinators && up_coordinators () = [ s ] in
        if not last_coordinator then Cluster.fail cluster s
      | Recover s -> Cluster.recover cluster s
      | Add id ->
        let e = Entry.v (1000 + id) in
        let accepted = not (IntMap.mem (Entry.id e) !live) in
        Round_robin.add strategy e;
        if accepted then live := IntMap.add (Entry.id e) e !live
      | Delete id ->
        let target = if id mod 2 = 0 then Entry.v (id / 2) else Entry.v (1000 + id) in
        let accepted = IntMap.mem (Entry.id target) !live in
        Round_robin.delete strategy target;
        if accepted then live := IntMap.remove (Entry.id target) !live
      | Lookup t -> ignore (Round_robin.partial_lookup strategy t))
    ops;
  (* Heal the fleet, then run one anti-entropy pass: servers that
     recovered during a no-coordinator window were never resynced. *)
  for s = 0 to n - 1 do
    Cluster.recover cluster s
  done;
  for s = 0 to n - 1 do
    Round_robin.resync_server strategy s
  done;
  (strategy, cluster, !live)

let check_soak (strategy, cluster, live) =
  (match Round_robin.check_invariants strategy with
  | Ok () -> true
  | Error msg -> QCheck2.Test.fail_reportf "invariant: %s" msg)
  && Round_robin.live_count strategy = IntMap.cardinal live
  &&
  let coverage = Entry.Set.elements (Cluster.coverage cluster) |> List.map Entry.id in
  coverage = List.map fst (IntMap.bindings live)

let prop_round_robin_soak_k1 =
  Helpers.qcheck ~count:120 "round-robin soak, single coordinator" (gen_ops ~n:6)
    (fun ops -> check_soak (round_robin_soak ~coordinators:1 ops))

let prop_round_robin_soak_k3 =
  Helpers.qcheck ~count:120 "round-robin soak, three coordinator replicas" (gen_ops ~n:6)
    (fun ops -> check_soak (round_robin_soak ~coordinators:3 ops))

(* With a coordinator always up, every update is accepted regardless of
   the replication factor, so the two systems converge to the same
   entry population even though their failure histories differ. *)
let prop_replication_transparent =
  Helpers.qcheck ~count:80 "final coverage is independent of the replication factor"
    (gen_ops ~n:6)
    (fun ops ->
      let s1, c1, _ = round_robin_soak ~coordinators:1 ops in
      let s3, c3, _ = round_robin_soak ~coordinators:3 ops in
      let ids cluster =
        Entry.Set.elements (Cluster.coverage cluster) |> List.map Entry.id
      in
      Round_robin.live_count s1 = Round_robin.live_count s3 && ids c1 = ids c3)

(* A deterministic large-configuration smoke: the default figures use
   n=10, h=100; make sure nothing degrades at n=50, h=1000. *)
let test_large_configuration () =
  let n = 50 and h = 1000 in
  List.iter
    (fun config ->
      let service = Service.create ~seed:13 ~n config in
      Service.place service (Helpers.entries h);
      let r = Service.partial_lookup service 150 in
      if not (Lookup_result.satisfied r) then
        Alcotest.failf "%s failed at scale" (Service.config_name config);
      let coverage = Plookup_metrics.Coverage.measured (Service.cluster service) in
      if coverage < 150 then Alcotest.failf "%s coverage too small" (Service.config_name config))
    [ Service.round_robin 3; Service.hash 3; Service.random_server 60 ]

(* Sustained updates at scale: 20k updates through the cheap strategies
   must complete and keep the occupancy law. *)
let test_large_update_stream () =
  let n = 20 and h = 500 in
  let stream =
    Plookup_workload.Update_gen.generate (Rng.create 3)
      { Plookup_workload.Update_gen.steady_entries = h; add_period = 10.;
        tail_heavy = false; updates = 20_000 }
  in
  let service = Service.create ~seed:3 ~n (Service.hash 2) in
  Plookup_workload.Replay.run service stream;
  let live = Plookup_workload.Update_gen.live_after stream 20_000 in
  Helpers.check_int "coverage tracks live set" (List.length live)
    (Plookup_metrics.Coverage.measured (Service.cluster service))

let () =
  Helpers.run "stress"
    [ ( "stress",
        [ prop_round_robin_soak_k1;
          prop_round_robin_soak_k3;
          prop_replication_transparent;
          Alcotest.test_case "large configuration" `Slow test_large_configuration;
          Alcotest.test_case "large update stream" `Slow test_large_update_stream ] ) ]
