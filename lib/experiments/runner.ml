let map ?workers ctx ~count f =
  let jobs = match workers with Some w -> w | None -> ctx.Ctx.jobs in
  Plookup_util.Pool.map ~jobs f (Array.init count Fun.id)

let replicates ?workers ctx ~count f =
  map ?workers ctx ~count (fun i -> f ~seed:(Ctx.run_seed ctx (i + 1)))

(* Observability threading: each unit of work gets a private child
   handle (no shared mutable cells across workers), and the children are
   merged back into [ctx.obs] by walking the result array in input
   order — the same discipline that makes the results themselves
   jobs-deterministic makes the metrics and trace so. *)
let map_obs ?workers ctx ~count f =
  let jobs = match workers with Some w -> w | None -> ctx.Ctx.jobs in
  let pairs =
    Plookup_util.Pool.map ~jobs
      (fun i ->
        let obs = Plookup_obs.Obs.child ctx.Ctx.obs in
        let r = f i ~obs in
        (r, obs))
      (Array.init count Fun.id)
  in
  Array.map
    (fun (r, obs) ->
      Plookup_obs.Obs.merge ctx.Ctx.obs obs;
      r)
    pairs

let replicates_obs ?workers ctx ~count f =
  map_obs ?workers ctx ~count (fun i ~obs -> f ~seed:(Ctx.run_seed ctx (i + 1)) ~obs)

let mean_of samples =
  let acc = Plookup_util.Stats.Accum.create () in
  Array.iter (Plookup_util.Stats.Accum.add acc) samples;
  Plookup_util.Stats.Accum.mean acc
