(** Server churn: continuous failure and recovery.

    The paper motivates partial lookups partly by availability ("even if
    S2 is down, partial lookups can continue") and prescribes random
    re-probing under failures; this module generates the failure side of
    that story.  Each server alternates between up-periods (exponential
    with mean [mttf]) and down-periods (exponential with mean [mttr]),
    independently — the classic alternating-renewal availability model,
    with steady-state per-server availability mttf / (mttf + mttr). *)

type event = { time : float; server : int; up : bool }

val generate :
  Plookup_util.Rng.t -> n:int -> mttf:float -> mttr:float -> horizon:float -> event list
(** Events for servers [0..n-1] over [\[0, horizon\]], sorted by time.
    All servers start up; the first event per server is a failure. *)

val expected_availability : mttf:float -> mttr:float -> float

val drive :
  Plookup_sim.Engine.t ->
  apply:(event -> unit) ->
  event list ->
  unit
(** Schedule every event on the engine; [apply] fires at the event's
    simulated time. *)
