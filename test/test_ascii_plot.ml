open Plookup_util

let series label points = { Ascii_plot.label; points }

let test_renders_points () =
  let s = Ascii_plot.render ~width:20 ~height:5 [ series "a" [ (0., 0.); (10., 10.) ] ] in
  Alcotest.(check bool) "contains glyph" true (Helpers.contains s "*");
  Alcotest.(check bool) "contains legend" true (Helpers.contains s "* = a");
  Alcotest.(check bool) "contains y max" true (Helpers.contains s "10.00");
  Alcotest.(check bool) "contains y min" true (Helpers.contains s "0.00")

let test_multiple_series_glyphs () =
  let s =
    Ascii_plot.render ~width:20 ~height:5
      [ series "first" [ (0., 1.) ]; series "second" [ (1., 2.) ] ]
  in
  Alcotest.(check bool) "first glyph" true (Helpers.contains s "* = first");
  Alcotest.(check bool) "second glyph" true (Helpers.contains s "+ = second");
  Alcotest.(check bool) "plus plotted" true
    (List.exists (fun line -> Helpers.contains line "+")
       (String.split_on_char '\n' s))

let test_degenerate_range () =
  (* A single point must not divide by zero. *)
  let s = Ascii_plot.render ~width:10 ~height:4 [ series "p" [ (5., 5.) ] ] in
  Alcotest.(check bool) "rendered" true (String.length s > 0)

let test_monotone_series_orientation () =
  (* An increasing series: the glyph on the last column must be on a
     higher row (smaller row index) than on the first column. *)
  let width = 21 and height = 7 in
  let s =
    Ascii_plot.render ~width ~height
      [ series "up" (List.init 21 (fun i -> (float_of_int i, float_of_int i))) ]
  in
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> Helpers.contains l "|")
  in
  let row_of_col target =
    let found = ref None in
    List.iteri
      (fun row line ->
        match String.index_opt line '|' with
        | Some bar ->
          let idx = bar + 1 + target in
          if idx < String.length line && line.[idx] = '*' && !found = None then
            found := Some row
        | None -> ())
      lines;
    !found
  in
  match (row_of_col 0, row_of_col (width - 1)) with
  | Some first, Some last ->
    Alcotest.(check bool) "rises left to right" true (last < first)
  | _ -> Alcotest.fail "could not locate plotted glyphs"

let test_validation () =
  Alcotest.check_raises "no data" (Invalid_argument "Ascii_plot.render: no data points")
    (fun () -> ignore (Ascii_plot.render [ series "empty" [] ]));
  Alcotest.check_raises "bad dims" (Invalid_argument "Ascii_plot.render: bad dimensions")
    (fun () -> ignore (Ascii_plot.render ~width:0 [ series "x" [ (0., 0.) ] ]))

let sample_table () =
  let t = Table.create ~title:"x" ~columns:[ "t"; "cost"; "name" ] in
  Table.add_row t [ Table.I 10; Table.F 1.0; Table.S "a" ];
  Table.add_row t [ Table.I 20; Table.F 2.0; Table.S "b" ];
  t

let test_of_table () =
  match Ascii_plot.of_table ~x:"t" ~columns:[ "cost" ] (sample_table ()) with
  | Ok s ->
    Alcotest.(check bool) "legend has column name" true (Helpers.contains s "* = cost");
    Alcotest.(check bool) "x label" true (Helpers.contains s "t")
  | Error e -> Alcotest.fail e

let test_of_table_errors () =
  (match Ascii_plot.of_table ~x:"nope" ~columns:[ "cost" ] (sample_table ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted missing column");
  match Ascii_plot.of_table ~x:"t" ~columns:[ "name" ] (sample_table ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted non-numeric column"

let prop_never_raises_on_data =
  Helpers.qcheck "render is total on non-empty numeric data"
    QCheck2.Gen.(
      list_size (int_range 1 30) (pair (float_range (-100.) 100.) (float_range (-100.) 100.)))
    (fun points ->
      let s = Ascii_plot.render ~width:30 ~height:8 [ series "q" points ] in
      String.length s > 0)

let prop_line_widths_consistent =
  Helpers.qcheck "every plot row has the same width"
    QCheck2.Gen.(list_size (int_range 1 10) (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun points ->
      let s = Ascii_plot.render ~width:24 ~height:6 [ series "w" points ] in
      let plot_rows =
        String.split_on_char '\n' s |> List.filter (fun l -> Helpers.contains l "|")
      in
      let widths = List.map String.length plot_rows in
      match widths with [] -> false | w :: rest -> List.for_all (( = ) w) rest)

let () =
  Helpers.run "ascii_plot"
    [ ( "ascii_plot",
        [ Alcotest.test_case "renders points" `Quick test_renders_points;
          Alcotest.test_case "multiple series" `Quick test_multiple_series_glyphs;
          Alcotest.test_case "degenerate range" `Quick test_degenerate_range;
          Alcotest.test_case "orientation" `Quick test_monotone_series_orientation;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "of_table" `Quick test_of_table;
          Alcotest.test_case "of_table errors" `Quick test_of_table_errors;
          prop_never_raises_on_data;
          prop_line_widths_consistent ] ) ]
