open Plookup
open Plookup_store
module Net = Plookup_net.Net

let make ?(seed = 2) ~n ~h ~y () =
  let cluster = Cluster.create ~seed ~n () in
  let s = Round_robin.create cluster ~y in
  let batch = Helpers.entries h in
  Round_robin.place s batch;
  (cluster, s, batch)

let check_invariants s =
  match Round_robin.check_invariants s with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_placement_positions () =
  let cluster, s, _ = make ~n:4 ~h:8 ~y:2 () in
  check_invariants s;
  (* Entry i lives on servers i mod n and i+1 mod n. *)
  for i = 0 to 7 do
    Alcotest.(check bool) "first copy" true
      (Server_store.mem (Cluster.store cluster (i mod 4)) (Entry.v i));
    Alcotest.(check bool) "second copy" true
      (Server_store.mem (Cluster.store cluster ((i + 1) mod 4)) (Entry.v i))
  done

let test_storage_h_y () =
  let cluster, _, _ = make ~n:4 ~h:8 ~y:2 () in
  Helpers.check_int "h*y" 16 (Cluster.total_stored cluster)

let test_balance_within_y () =
  let cluster, _, _ = make ~n:10 ~h:97 ~y:3 () in
  let sizes =
    List.init 10 (fun i -> Server_store.cardinal (Cluster.store cluster i))
  in
  let lo = List.fold_left min max_int sizes and hi = List.fold_left max 0 sizes in
  Alcotest.(check bool) "imbalance <= y" true (hi - lo <= 3)

let test_complete_coverage () =
  let cluster, _, _ = make ~n:10 ~h:100 ~y:2 () in
  Helpers.check_int "complete" 100 (Entry.Set.cardinal (Cluster.coverage cluster))

let test_y_clamped_to_n () =
  let cluster, s, _ = make ~n:3 ~h:5 ~y:10 () in
  Helpers.check_int "y = n" 3 (Round_robin.y s);
  Helpers.check_int "full replication" 15 (Cluster.total_stored cluster)

let test_head_tail_after_place () =
  let _, s, _ = make ~n:4 ~h:8 ~y:2 () in
  Helpers.check_int "head" 0 (Round_robin.head s);
  Helpers.check_int "tail" 8 (Round_robin.tail s);
  Helpers.check_int "live" 8 (Round_robin.live_count s)

let test_add_appends_at_tail () =
  let cluster, s, _ = make ~n:4 ~h:8 ~y:2 () in
  Round_robin.add s (Entry.v 100);
  check_invariants s;
  Helpers.check_int "tail advanced" 9 (Round_robin.tail s);
  Alcotest.(check (option int)) "position" (Some 8)
    (Round_robin.position_of s (Entry.v 100));
  (* Position 8 on 4 servers -> servers 0 and 1. *)
  Alcotest.(check bool) "copy at 0" true (Server_store.mem (Cluster.store cluster 0) (Entry.v 100));
  Alcotest.(check bool) "copy at 1" true (Server_store.mem (Cluster.store cluster 1) (Entry.v 100))

let test_add_message_cost () =
  let cluster, s, _ = make ~n:4 ~h:8 ~y:2 () in
  Net.reset_counters (Cluster.net cluster);
  Round_robin.add s (Entry.v 100);
  (* 1 client request to the coordinator + y stores. *)
  Helpers.check_int "1 + y" 3 (Net.messages_received (Cluster.net cluster))

let test_delete_head_no_migration () =
  let cluster, s, batch = make ~n:4 ~h:8 ~y:2 () in
  let head_entry = List.hd batch in
  Round_robin.delete s head_entry;
  check_invariants s;
  Helpers.check_int "head advanced" 1 (Round_robin.head s);
  Helpers.check_int "live shrank" 7 (Round_robin.live_count s);
  Alcotest.(check bool) "head entry gone" false
    (Server_store.mem (Cluster.store cluster 0) head_entry)

let test_delete_middle_plugs_hole () =
  let _, s, batch = make ~n:4 ~h:8 ~y:2 () in
  let victim = List.nth batch 5 in
  let head_entry = List.hd batch in
  Round_robin.delete s victim;
  check_invariants s;
  (* The head entry migrated into the vacated position 5. *)
  Alcotest.(check (option int)) "head entry at position 5" (Some 5)
    (Round_robin.position_of s head_entry);
  Alcotest.(check bool) "victim unplaced" true (Round_robin.position_of s victim = None);
  Helpers.check_int "head advanced" 1 (Round_robin.head s);
  Helpers.check_int "live shrank" 7 (Round_robin.live_count s)

let test_delete_message_cost () =
  let cluster, s, batch = make ~n:4 ~h:8 ~y:2 () in
  Net.reset_counters (Cluster.net cluster);
  Round_robin.delete s (List.nth batch 5);
  (* 1 client + n broadcast + y removals of the head entry + y stores. *)
  Helpers.check_int "1 + n + 2y" 9 (Net.messages_received (Cluster.net cluster))

let test_delete_unknown_is_ignored () =
  let _, s, _ = make ~n:4 ~h:8 ~y:2 () in
  Round_robin.delete s (Entry.v 999);
  check_invariants s;
  Helpers.check_int "live unchanged" 8 (Round_robin.live_count s)

let test_paper_fig10_scenario () =
  (* Fig. 10: 5 entries, 4 servers, y=2; delete entry at position 2 — the
     head entry (position 0) migrates into position 2. *)
  let _, s, batch = make ~n:4 ~h:5 ~y:2 () in
  Round_robin.delete s (List.nth batch 2);
  check_invariants s;
  Alcotest.(check (option int)) "entry 0 plugged the hole" (Some 2)
    (Round_robin.position_of s (List.hd batch));
  Helpers.check_int "head" 1 (Round_robin.head s);
  Helpers.check_int "tail" 5 (Round_robin.tail s)

let test_lookup_cost_steps () =
  (* h=100, n=10, y=2: each server holds 20 entries and strided probes
     are disjoint, so cost is ceil(t/20). *)
  let _, s, _ = make ~n:10 ~h:100 ~y:2 () in
  List.iter
    (fun (t, expected) ->
      let r = Round_robin.partial_lookup s t in
      Helpers.check_int (Printf.sprintf "cost at t=%d" t) expected
        r.Lookup_result.servers_contacted)
    [ (10, 1); (20, 1); (21, 2); (40, 2); (41, 3); (100, 5) ]

let test_lookup_with_y_equal_n () =
  (* y = n makes the stride step a multiple of n; the normalized step 0
     degenerates to one residue and the probe's rest-extension must
     still reach everyone (regression for the sign-preserving-mod
     stride bug). *)
  let _, s, _ = make ~n:4 ~h:8 ~y:4 () in
  List.iter
    (fun t ->
      let r = Round_robin.partial_lookup s t in
      Alcotest.(check bool)
        (Printf.sprintf "satisfied at t=%d" t)
        true
        (Lookup_result.satisfied r))
    [ 1; 4; 8 ]

let test_lookup_under_failure_randomizes () =
  let cluster, s, _ = make ~n:10 ~h:100 ~y:2 () in
  Cluster.fail cluster 3;
  let r = Round_robin.partial_lookup s 30 in
  Alcotest.(check bool) "satisfied despite failure" true (Lookup_result.satisfied r)

let make_replicated ?(seed = 8) ~n ~h ~y ~coordinators () =
  let cluster = Cluster.create ~seed ~n () in
  let s = Round_robin.create ~coordinators cluster ~y in
  let batch = Helpers.entries h in
  Round_robin.place s batch;
  (cluster, s, batch)

let test_coordinator_defaults () =
  let _, s, _ = make ~n:4 ~h:8 ~y:2 () in
  Helpers.check_int "default one coordinator" 1 (Round_robin.coordinators s);
  Alcotest.(check (option int)) "server 0 acts" (Some 0) (Round_robin.acting_coordinator s)

let test_coordinator_bounds () =
  let cluster = Cluster.create ~n:3 () in
  Alcotest.check_raises "too many"
    (Invalid_argument "Round_robin.create: coordinators must be in [1, n]") (fun () ->
      ignore (Round_robin.create ~coordinators:4 cluster ~y:1))

let test_failover_accepts_updates () =
  let cluster, s, _ = make_replicated ~n:5 ~h:10 ~y:2 ~coordinators:2 () in
  Cluster.fail cluster 0;
  Alcotest.(check (option int)) "server 1 takes over" (Some 1)
    (Round_robin.acting_coordinator s);
  Round_robin.add s (Entry.v 100);
  Helpers.check_int "update accepted" 11 (Round_robin.live_count s);
  Alcotest.(check (option int)) "placed at tail" (Some 10)
    (Round_robin.position_of s (Entry.v 100))

let test_single_coordinator_loses_updates () =
  let cluster, s, _ = make ~n:5 ~h:10 ~y:2 () in
  Cluster.fail cluster 0;
  Alcotest.(check (option int)) "no acting coordinator" None
    (Round_robin.acting_coordinator s);
  Round_robin.add s (Entry.v 100);
  (* The paper's centralized scheme drops the update. *)
  Alcotest.(check (option int)) "dropped" None (Round_robin.position_of s (Entry.v 100))

let test_replicas_stay_consistent () =
  let _, s, batch = make_replicated ~n:6 ~h:12 ~y:2 ~coordinators:3 () in
  Round_robin.add s (Entry.v 100);
  Round_robin.delete s (List.nth batch 5);
  Round_robin.delete s (List.hd batch);
  Round_robin.add s (Entry.v 101);
  check_invariants s (* includes replica-agreement checks *)

let test_recovery_state_transfer () =
  let cluster, s, batch = make_replicated ~n:6 ~h:12 ~y:2 ~coordinators:2 () in
  Cluster.fail cluster 0;
  (* Server 1 acts alone; its replica diverges from the stale server 0. *)
  Round_robin.add s (Entry.v 100);
  Round_robin.delete s (List.nth batch 4);
  Cluster.recover cluster 0;
  (* The recovery hook transferred state: server 0 acts again with the
     fresh ledger, and further updates stay consistent. *)
  Alcotest.(check (option int)) "server 0 acting again" (Some 0)
    (Round_robin.acting_coordinator s);
  Round_robin.add s (Entry.v 101);
  check_invariants s;
  Helpers.check_int "live count correct" 13 (Round_robin.live_count s)

let test_sync_message_cost () =
  let cluster, s, _ = make_replicated ~n:5 ~h:10 ~y:2 ~coordinators:3 () in
  Plookup_net.Net.reset_counters (Cluster.net cluster);
  Round_robin.add s (Entry.v 100);
  (* 1 client + y stores + 2 standby syncs. *)
  Helpers.check_int "1 + y + (k-1)" 5
    (Plookup_net.Net.messages_received (Cluster.net cluster))

let test_servers_needed () =
  let _, s, _ = make ~n:10 ~h:100 ~y:2 () in
  List.iter
    (fun (t, expected) ->
      Helpers.check_int (Printf.sprintf "needed at t=%d" t) expected
        (Round_robin.servers_needed s ~t))
    [ (1, 1); (20, 1); (21, 2); (40, 2); (41, 3); (100, 5); (1000, 10) ]

let test_servers_needed_tracks_live_count () =
  let _, s, batch = make ~n:10 ~h:100 ~y:2 () in
  Helpers.check_int "before deletes" 2 (Round_robin.servers_needed s ~t:40);
  (* Shrink the system to 50 live entries: each server now holds ~10, so
     t=40 needs 4 servers. *)
  List.iteri (fun i e -> if i < 50 then Round_robin.delete s e) batch;
  Helpers.check_int "after deletes" 4 (Round_robin.servers_needed s ~t:40)

let test_parallel_lookup_answers () =
  let _, s, _ = make ~n:10 ~h:100 ~y:2 () in
  List.iter
    (fun t ->
      let r = Round_robin.partial_lookup_parallel s t in
      Alcotest.(check bool) (Printf.sprintf "satisfied t=%d" t) true
        (Lookup_result.satisfied r);
      Helpers.check_int "exactly t" t (Lookup_result.count r);
      Helpers.check_int "wave size" (Round_robin.servers_needed s ~t)
        r.Lookup_result.servers_contacted)
    [ 5; 20; 35; 50; 100 ]

let test_parallel_falls_back_under_failure () =
  let cluster, s, _ = make ~n:10 ~h:100 ~y:2 () in
  Cluster.fail cluster 4;
  let r = Round_robin.partial_lookup_parallel s 30 in
  Alcotest.(check bool) "still satisfied" true (Lookup_result.satisfied r)

let test_budget_truncates () =
  let cluster = Cluster.create ~seed:4 ~n:10 () in
  let s = Round_robin.create cluster ~y:2 in
  Round_robin.place ~budget:150 s (Helpers.entries 100);
  Helpers.check_int "150 copies stored" 150 (Cluster.total_stored cluster);
  Helpers.check_int "coverage complete (round-major)" 100
    (Entry.Set.cardinal (Cluster.coverage cluster))

let test_budget_below_h () =
  let cluster = Cluster.create ~seed:4 ~n:10 () in
  let s = Round_robin.create cluster ~y:1 in
  Round_robin.place ~budget:60 s (Helpers.entries 100);
  Helpers.check_int "60 copies" 60 (Cluster.total_stored cluster);
  Helpers.check_int "coverage = budget" 60 (Entry.Set.cardinal (Cluster.coverage cluster))

let test_truncated_refuses_updates () =
  let cluster = Cluster.create ~seed:4 ~n:4 () in
  let s = Round_robin.create cluster ~y:2 in
  Round_robin.place ~budget:3 s (Helpers.entries 5);
  Alcotest.check_raises "updates disabled"
    (Invalid_argument "Round_robin: updates after a truncated place") (fun () ->
      Round_robin.add s (Entry.v 100))

let test_rejects_bad_y () =
  let cluster = Cluster.create ~n:3 () in
  Alcotest.check_raises "y = 0" (Invalid_argument "Round_robin.create: y must be at least 1")
    (fun () -> ignore (Round_robin.create cluster ~y:0))

let prop_invariant_under_random_updates =
  Helpers.qcheck ~count:100 "round-robin invariant survives random update streams"
    QCheck2.Gen.(list_size (int_range 0 60) (pair bool (int_range 0 30)))
    (fun ops ->
      let cluster = Cluster.create ~seed:21 ~n:5 () in
      let s = Round_robin.create cluster ~y:2 in
      let batch = Helpers.entries 12 in
      Round_robin.place s batch;
      let known = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace known (Entry.id e) e) batch;
      List.iter
        (fun (is_add, i) ->
          if is_add then begin
            let e = Entry.v (100 + i) in
            Hashtbl.replace known (Entry.id e) e;
            Round_robin.add s e
          end
          else begin
            (* Delete something currently live, if any. *)
            match Round_robin.entry_at s (Round_robin.head s + (i mod max 1 (Round_robin.live_count s))) with
            | Some e ->
              Hashtbl.remove known (Entry.id e);
              Round_robin.delete s e
            | None -> ()
          end)
        ops;
      Round_robin.check_invariants s = Ok ())

let prop_live_count_matches_ops =
  Helpers.qcheck "live_count = places + adds - deletes"
    QCheck2.Gen.(int_range 0 20)
    (fun k ->
      let cluster = Cluster.create ~seed:22 ~n:4 () in
      let s = Round_robin.create cluster ~y:2 in
      let batch = Helpers.entries 10 in
      Round_robin.place s batch;
      for i = 0 to k - 1 do
        Round_robin.add s (Entry.v (100 + i))
      done;
      List.iteri (fun i e -> if i < min k 10 then Round_robin.delete s e) batch;
      Round_robin.live_count s = 10 + k - min k 10)

let () =
  Helpers.run "round_robin"
    [ ( "round_robin",
        [ Alcotest.test_case "placement positions" `Quick test_placement_positions;
          Alcotest.test_case "storage h*y" `Quick test_storage_h_y;
          Alcotest.test_case "balance <= y" `Quick test_balance_within_y;
          Alcotest.test_case "complete coverage" `Quick test_complete_coverage;
          Alcotest.test_case "y clamped" `Quick test_y_clamped_to_n;
          Alcotest.test_case "lookup with y = n" `Quick test_lookup_with_y_equal_n;
          Alcotest.test_case "head/tail" `Quick test_head_tail_after_place;
          Alcotest.test_case "add at tail" `Quick test_add_appends_at_tail;
          Alcotest.test_case "add cost" `Quick test_add_message_cost;
          Alcotest.test_case "delete head" `Quick test_delete_head_no_migration;
          Alcotest.test_case "delete middle" `Quick test_delete_middle_plugs_hole;
          Alcotest.test_case "delete cost" `Quick test_delete_message_cost;
          Alcotest.test_case "delete unknown" `Quick test_delete_unknown_is_ignored;
          Alcotest.test_case "paper fig 10" `Quick test_paper_fig10_scenario;
          Alcotest.test_case "lookup steps" `Quick test_lookup_cost_steps;
          Alcotest.test_case "lookup under failure" `Quick test_lookup_under_failure_randomizes;
          Alcotest.test_case "coordinator defaults" `Quick test_coordinator_defaults;
          Alcotest.test_case "coordinator bounds" `Quick test_coordinator_bounds;
          Alcotest.test_case "failover" `Quick test_failover_accepts_updates;
          Alcotest.test_case "single coordinator drop" `Quick
            test_single_coordinator_loses_updates;
          Alcotest.test_case "replica consistency" `Quick test_replicas_stay_consistent;
          Alcotest.test_case "recovery transfer" `Quick test_recovery_state_transfer;
          Alcotest.test_case "sync cost" `Quick test_sync_message_cost;
          Alcotest.test_case "servers_needed" `Quick test_servers_needed;
          Alcotest.test_case "servers_needed live" `Quick test_servers_needed_tracks_live_count;
          Alcotest.test_case "parallel lookup" `Quick test_parallel_lookup_answers;
          Alcotest.test_case "parallel fallback" `Quick test_parallel_falls_back_under_failure;
          Alcotest.test_case "budget truncation" `Quick test_budget_truncates;
          Alcotest.test_case "budget below h" `Quick test_budget_below_h;
          Alcotest.test_case "truncated refuses updates" `Quick test_truncated_refuses_updates;
          Alcotest.test_case "rejects bad y" `Quick test_rejects_bad_y;
          prop_invariant_under_random_updates;
          prop_live_count_matches_ops ] ) ]
