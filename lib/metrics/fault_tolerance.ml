open Plookup_util
open Plookup_store
module Service = Plookup.Service

type placement = Bitset.t array

let snapshot cluster ~capacity = Plookup.Cluster.snapshot_bitsets cluster ~capacity

(* Shared greedy machinery: iteratively fail the alive server with the
   highest X_S = sum 1/f_e, calling [on_fail] after each failure with the
   updated coverage; stop when [continue] says so. *)
let greedy_loop placement ~on_fail =
  let n = Array.length placement in
  if n = 0 then ()
  else begin
    let capacity = Bitset.capacity placement.(0) in
    let f = Array.make capacity 0 in
    Array.iter (fun bs -> Bitset.iter (fun e -> f.(e) <- f.(e) + 1) bs) placement;
    let coverage = ref (Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 f) in
    let alive = Array.make n true in
    let continue = ref true in
    let remaining = ref n in
    while !continue && !remaining > 0 do
      (* Highest importance score among alive servers; ties break to the
         lowest index for determinism. *)
      let best = ref (-1) in
      let best_score = ref neg_infinity in
      for s = 0 to n - 1 do
        if alive.(s) then begin
          let score =
            Bitset.fold (fun e acc -> acc +. (1. /. float_of_int f.(e))) placement.(s) 0.
          in
          if score > !best_score then begin
            best_score := score;
            best := s
          end
        end
      done;
      let victim = !best in
      alive.(victim) <- false;
      decr remaining;
      Bitset.iter
        (fun e ->
          f.(e) <- f.(e) - 1;
          if f.(e) = 0 then decr coverage)
        placement.(victim);
      continue := on_fail ~victim ~coverage:!coverage
    done
  end

let initial_coverage placement =
  if Array.length placement = 0 then 0
  else begin
    let capacity = Bitset.capacity placement.(0) in
    let union = Bitset.create capacity in
    Array.iter (fun bs -> Bitset.union_into union bs) placement;
    Bitset.cardinal union
  end

let greedy placement ~t =
  if t <= 0 then invalid_arg "Fault_tolerance.greedy: t must be positive";
  if initial_coverage placement < t then -1
  else begin
    let tolerated = ref 0 in
    greedy_loop placement ~on_fail:(fun ~victim:_ ~coverage ->
        if coverage >= t then begin
          incr tolerated;
          true
        end
        else false);
    !tolerated
  end

let greedy_failure_order placement =
  let order = ref [] in
  greedy_loop placement ~on_fail:(fun ~victim ~coverage:_ ->
      order := victim :: !order;
      true);
  List.rev !order

let exact placement ~t =
  if t <= 0 then invalid_arg "Fault_tolerance.exact: t must be positive";
  let n = Array.length placement in
  if n > 25 then invalid_arg "Fault_tolerance.exact: too many servers for brute force";
  if initial_coverage placement < t then -1
  else begin
    let capacity = if n = 0 then 0 else Bitset.capacity placement.(0) in
    (* Coverage of the servers *outside* the failure mask. *)
    let coverage_without mask =
      let union = Bitset.create capacity in
      for s = 0 to n - 1 do
        if mask land (1 lsl s) = 0 then Bitset.union_into union placement.(s)
      done;
      Bitset.cardinal union
    in
    let popcount mask =
      let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
      go mask 0
    in
    (* Smallest failure-set size that breaks coverage. *)
    let best = ref n in
    for mask = 1 to (1 lsl n) - 1 do
      let k = popcount mask in
      if k < !best && coverage_without mask < t then best := k
    done;
    !best - 1
  end

let measure_over_instances ?(seed = 0) ?obs ?(shards = 1) ~n ~entries ~config ~t ~runs
    () =
  let master = Rng.create seed in
  let acc = Stats.Accum.create () in
  if shards <= 1 then
    for _ = 1 to runs do
      let run_seed = Int64.to_int (Rng.bits64 master) land max_int in
      let service = Service.create ~seed:run_seed ?obs ~n config in
      let gen = Entry.Gen.create () in
      Service.place service (Entry.Gen.batch gen entries);
      let placement =
        snapshot (Service.cluster service) ~capacity:(Entry.Gen.next_id gen)
      in
      Stats.Accum.add acc (float_of_int (greedy placement ~t))
    done
  else begin
    (* Instance-space sharding with in-order replay; see coverage.ml
       for why this is byte-identical to the sequential loop. *)
    let seeds = Array.make runs 0 in
    for i = 0 to runs - 1 do
      seeds.(i) <- Int64.to_int (Rng.bits64 master) land max_int
    done;
    let outputs =
      Pool.map ~jobs:shards
        (fun run_seed ->
          let child = Option.map Plookup_obs.Obs.child obs in
          let service = Service.create ~seed:run_seed ?obs:child ~n config in
          let gen = Entry.Gen.create () in
          Service.place service (Entry.Gen.batch gen entries);
          let placement =
            snapshot (Service.cluster service) ~capacity:(Entry.Gen.next_id gen)
          in
          (float_of_int (greedy placement ~t), child))
        seeds
    in
    Array.iter
      (fun (sample, child) ->
        Stats.Accum.add acc sample;
        match (obs, child) with
        | Some parent, Some c -> Plookup_obs.Obs.merge parent c
        | _ -> ())
      outputs
  end;
  (Stats.Accum.mean acc, Stats.Accum.ci95_half_width acc)
