open Plookup
open Plookup_store

let test_config_names () =
  List.iter
    (fun (config, expected) -> Helpers.check_string "name" expected (Service.config_name config))
    [ (Service.full_replication, "FullReplication");
      (Service.fixed 20, "Fixed-20");
      (Service.random_server 20, "RandomServer-20");
      (Service.random_server_replacing 5, "RandomServerReplacing-5");
      (Service.round_robin 2, "RoundRobin-2");
      (Service.round_robin_replicated 2 3, "RoundRobinHA-2x3");
      (Service.hash 2, "Hash-2") ]

let test_config_parse_roundtrip () =
  List.iter
    (fun config ->
      match Service.config_of_string (Service.config_name config) with
      | Ok parsed when parsed = config -> ()
      | Ok other ->
        Alcotest.failf "roundtrip changed %s into %s" (Service.config_name config)
          (Service.config_name other)
      | Error msg -> Alcotest.fail msg)
    [ Service.full_replication;
      Service.fixed 20;
      Service.random_server 7;
      Service.random_server_replacing 7;
      Service.round_robin 3;
      Service.round_robin_replicated 2 2;
      Service.hash 1 ]

let test_config_parse_aliases () =
  List.iter
    (fun (s, expected) ->
      match Service.config_of_string s with
      | Ok parsed when parsed = expected -> ()
      | Ok _ | Error _ -> Alcotest.failf "failed to parse %S" s)
    [ ("full", Service.full_replication);
      ("FULL", Service.full_replication);
      ("replication", Service.full_replication);
      ("fixed-20", Service.fixed 20);
      ("random-9", Service.random_server 9);
      ("randomserver-9", Service.random_server 9);
      ("round-2", Service.round_robin 2);
      ("round_robin-2", Service.round_robin 2);
      ("roundrobinha-2x3", Service.round_robin_replicated 2 3);
      ("RoundRobinHA-1x2", Service.round_robin_replicated 1 2);
      ("roundha-2x2", Service.round_robin_replicated 2 2);
      ("hash-4", Service.hash 4) ]

let test_config_parse_rejects () =
  List.iter
    (fun s ->
      match Service.config_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should have rejected %S" s)
    [ ""; "nope"; "fixed"; "fixed-0"; "fixed--3"; "hash-x"; "roundrobinha-2";
      "roundrobinha-0x2"; "roundrobinha-2x0"; "roundrobinha-axb" ]

let test_param () =
  Alcotest.(check (option int)) "full" None (Service.param Service.full_replication);
  Alcotest.(check (option int)) "fixed" (Some 20) (Service.param (Service.fixed 20));
  Alcotest.(check (option int)) "hash" (Some 2) (Service.param (Service.hash 2))

let test_storage_for_budget () =
  let n = 10 and h = 100 and total = 200 in
  Alcotest.(check bool) "fixed x=20" true
    (Service.storage_for_budget (Service.fixed 1) ~n ~h ~total = Service.fixed 20);
  Alcotest.(check bool) "random x=20" true
    (Service.storage_for_budget (Service.random_server 1) ~n ~h ~total
    = Service.random_server 20);
  Alcotest.(check bool) "round y=2" true
    (Service.storage_for_budget (Service.round_robin 1) ~n ~h ~total = Service.round_robin 2);
  Alcotest.(check bool) "hash y=2" true
    (Service.storage_for_budget (Service.hash 1) ~n ~h ~total = Service.hash 2);
  (* Tiny budgets floor at parameter 1. *)
  Alcotest.(check bool) "floors at 1" true
    (Service.storage_for_budget (Service.fixed 1) ~n ~h ~total:5 = Service.fixed 1)

let test_all_configs () =
  let configs = Service.all_configs ~budget:200 ~n:10 ~h:100 () in
  Helpers.check_int "eight strategies" 8 (List.length configs);
  Alcotest.(check bool) "starts with full replication" true
    (List.hd configs = Service.full_replication);
  Alcotest.(check bool) "self-registered Chord is enumerated" true
    (List.mem (Service.v ~kind:"Chord" ~params:[ 2 ]) configs);
  Alcotest.(check bool) "self-registered DxHash is enumerated" true
    (List.mem (Service.v ~kind:"DxHash" ~params:[ 2 ]) configs);
  Alcotest.(check bool) "self-registered MultiProbe is enumerated" true
    (List.mem (Service.v ~kind:"MultiProbe" ~params:[ 2; 2 ]) configs);
  let with_ablations = Service.all_configs ~ablations:true ~budget:200 ~n:10 ~h:100 () in
  Helpers.check_int "ablations add two variants" 10 (List.length with_ablations)

let all_strategies =
  [ Service.full_replication;
    Service.fixed 8;
    Service.random_server 8;
    Service.random_server_replacing 8;
    Service.round_robin 2;
    Service.round_robin_replicated 2 2;
    Service.hash 2 ]

let test_place_lookup_every_strategy () =
  List.iter
    (fun config ->
      let service, _ = Helpers.placed_service ~n:5 ~h:20 config in
      let r = Service.partial_lookup service 5 in
      if not (Lookup_result.satisfied r) then
        Alcotest.failf "%s could not satisfy t=5" (Service.config_name config);
      Helpers.check_int
        (Printf.sprintf "%s returns 5" (Service.config_name config))
        5 (Lookup_result.count r))
    all_strategies

let test_add_delete_every_strategy () =
  List.iter
    (fun config ->
      let service, batch = Helpers.placed_service ~n:5 ~h:20 config in
      Service.add service (Entry.v 100);
      Service.delete service (List.hd batch);
      (* The service still works afterwards. *)
      let r = Service.partial_lookup service 3 in
      if not (Lookup_result.satisfied r) then
        Alcotest.failf "%s broken after updates" (Service.config_name config))
    all_strategies

let test_deterministic_given_seed () =
  let run () =
    let service, _ = Helpers.placed_service ~seed:99 ~n:6 ~h:30 (Service.random_server 6) in
    let r = Service.partial_lookup service 12 in
    (Helpers.sorted_ids r.Lookup_result.entries, r.Lookup_result.servers_contacted)
  in
  Alcotest.(check bool) "identical replays" true (run () = run ())

let test_lookup_pref_returns_cheapest () =
  let service, batch = Helpers.placed_service ~n:4 ~h:12 Service.full_replication in
  (* Cost = id: the t cheapest entries are ids 0..t-1. *)
  let cost e = float_of_int (Entry.id e) in
  let r = Service.partial_lookup_pref service ~cost 4 in
  Alcotest.(check (list int)) "four cheapest" [ 0; 1; 2; 3 ]
    (Helpers.sorted_ids r.Lookup_result.entries);
  ignore batch

let test_lookup_pref_spans_servers () =
  (* Round-robin: the cheapest entries may live on specific servers; the
     preference lookup must find them anyway. *)
  let service, _ = Helpers.placed_service ~n:4 ~h:12 (Service.round_robin 1) in
  let cost e = float_of_int (Entry.id e) in
  let r = Service.partial_lookup_pref service ~cost 3 in
  Alcotest.(check (list int)) "three cheapest" [ 0; 1; 2 ]
    (Helpers.sorted_ids r.Lookup_result.entries)

let test_reachability_restriction () =
  let service, _ = Helpers.placed_service ~n:4 ~h:12 (Service.round_robin 1) in
  (* Only servers 0 and 1 reachable: entries on 2 and 3 unreachable. *)
  let reachable s = s < 2 in
  let r = Service.partial_lookup ~reachable service 12 in
  Alcotest.(check bool) "cannot reach everything" false (Lookup_result.satisfied r);
  List.iter
    (fun e ->
      let home = Entry.id e mod 4 in
      if home >= 2 then Alcotest.failf "entry %d from unreachable server" (Entry.id e))
    r.Lookup_result.entries

let test_of_cluster_rebinds () =
  let cluster = Cluster.create ~seed:1 ~n:4 () in
  let service = Service.of_cluster cluster (Service.fixed 5) in
  Service.place service (Helpers.entries 10);
  Helpers.check_int "placed through existing cluster" 20 (Cluster.total_stored cluster)

let prop_every_strategy_satisfies_within_coverage =
  Helpers.qcheck ~count:60 "any t within coverage is satisfied (no failures)"
    QCheck2.Gen.(pair (int_range 0 6) (int_range 1 15))
    (fun (strategy_index, t) ->
      let config = List.nth all_strategies strategy_index in
      let service, _ = Helpers.placed_service ~n:5 ~h:20 config in
      let coverage = Plookup_metrics.Coverage.measured (Service.cluster service) in
      let r = Service.partial_lookup service t in
      if t <= coverage then Lookup_result.satisfied r else true)

let () =
  Helpers.run "service"
    [ ( "service",
        [ Alcotest.test_case "config names" `Quick test_config_names;
          Alcotest.test_case "parse roundtrip" `Quick test_config_parse_roundtrip;
          Alcotest.test_case "parse aliases" `Quick test_config_parse_aliases;
          Alcotest.test_case "parse rejects" `Quick test_config_parse_rejects;
          Alcotest.test_case "param" `Quick test_param;
          Alcotest.test_case "storage_for_budget" `Quick test_storage_for_budget;
          Alcotest.test_case "all_configs" `Quick test_all_configs;
          Alcotest.test_case "place+lookup all strategies" `Quick
            test_place_lookup_every_strategy;
          Alcotest.test_case "updates all strategies" `Quick test_add_delete_every_strategy;
          Alcotest.test_case "deterministic" `Quick test_deterministic_given_seed;
          Alcotest.test_case "pref cheapest" `Quick test_lookup_pref_returns_cheapest;
          Alcotest.test_case "pref spans servers" `Quick test_lookup_pref_spans_servers;
          Alcotest.test_case "reachability" `Quick test_reachability_restriction;
          Alcotest.test_case "of_cluster" `Quick test_of_cluster_rebinds;
          prop_every_strategy_satisfies_within_coverage ] ) ]
