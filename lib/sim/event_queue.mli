(** A binary min-heap priority queue for simulation events.

    Events are ordered by timestamp; ties are broken by insertion
    sequence so that simultaneous events fire in FIFO order, which keeps
    replays deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** Schedule a payload at [time].  Times may be pushed in any order. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, [None] when empty. *)

val peek : 'a t -> (float * 'a) option
(** Earliest event without removing it. *)

val clear : 'a t -> unit

val drain : 'a t -> (float * 'a) list
(** Pop everything, in order. *)
