(** Typed trace spans and events.

    One span records one observable step of a simulation — a message
    transmission, a retry, a repair-daemon round — as a {e variant}
    payload instead of a formatted string, so dumps are machine-readable
    (JSONL, see {!Sink.jsonl}) and tests can assert on structure rather
    than substrings.

    Spans carry a per-trace id and an optional [cause] link naming the
    span that triggered them: a [Recv] is caused by its [Send], a
    [Retry] by the [Timeout] that provoked it.  Cause links always point
    backwards (to a smaller id), which is what makes a JSONL dump
    replayable as a DAG. *)

type actor =
  | Client  (** a request originating outside the server set *)
  | Server of int

type drop_reason =
  | Down  (** destination server was failed *)
  | Lost  (** injected link loss *)
  | Blocked  (** cut by an active partition *)
  | Shed  (** rejected by a full inbox queue (capacity model load shed) *)

type kind =
  | Send of { src : actor; dst : int; plane : string; msg : string }
      (** a transmission left [src] for [dst] *)
  | Recv of { src : actor; dst : int; plane : string; msg : string }
      (** the transmission was delivered and processed (cause: the Send) *)
  | Drop of { src : actor; dst : int; plane : string; msg : string; reason : drop_reason }
      (** the transmission vanished (cause: the Send) *)
  | Retry of { dst : int; attempt : int }
      (** a client re-sent to [dst]; [attempt] counts from 2 (cause: the
          Timeout that provoked it) *)
  | Timeout of { dst : int; after : float }
      (** a client abandoned an attempt to [dst] after [after] time units *)
  | Repair_round of { coordinator : int; tick : int; re_replications : int; trims : int }
      (** one repair-daemon pass and what it changed *)
  | Migration of { entry : int; src : int; dst : int }
      (** an entry moved between servers (Round-Robin hole plugging) *)
  | Mark of { label : string; detail : string }
      (** free-form annotation (the legacy string-record form) *)

type t = {
  id : int;  (** unique within one trace, increasing *)
  time : float;  (** simulation time (0 when no engine is attached) *)
  cause : int option;  (** id of the span that triggered this one *)
  kind : kind;
}

val label : t -> string
(** The kind's wire name: ["send"], ["recv"], ["drop"], ["retry"],
    ["timeout"], ["repair_round"], ["migration"] or ["mark"]. *)

val actor_json : actor -> string
(** [-1] for a client, the server index otherwise — matching
    {!Plookup_net.Net}'s sender coding. *)

val add_json : Buffer.t -> t -> unit
(** Append the span as one JSON object (no trailing newline).  Keys:
    [id], [t], [kind], optional [cause], then kind-specific fields. *)

val to_json : t -> string

val pp : Format.formatter -> t -> unit
(** One human-readable line, stable enough for {!Trace.dump}. *)
