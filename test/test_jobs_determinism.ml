(* The determinism contract behind --jobs: every experiment must produce
   byte-identical tables no matter how many worker domains run its
   replicates.  Each experiment runs twice at a tiny scale — once
   sequentially, once with 4 workers — and the CSV renderings are
   compared verbatim. *)

module E = Plookup_experiments
module Table = Plookup_util.Table

let csv ~jobs e =
  let ctx = E.Ctx.v ~seed:42 ~scale:0.02 ~jobs () in
  Table.to_csv (e.E.Registry.run ctx)

let case e =
  Alcotest.test_case e.E.Registry.id `Slow (fun () ->
      Helpers.check_string
        (Printf.sprintf "%s: jobs=1 vs jobs=4" e.E.Registry.id)
        (csv ~jobs:1 e) (csv ~jobs:4 e))

let () =
  Helpers.run "jobs_determinism"
    [ ("jobs=1 equals jobs=4", List.map case E.Registry.all) ]
