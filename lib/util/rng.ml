type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* splitmix64 stream used only to expand a seed into xoshiro state. *)
let splitmix_next state =
  state := Int64.add !state golden_gamma;
  mix64 !state

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ *)
let bits64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (bits64 t) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let nonneg t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)
(* 62 random bits, always a non-negative OCaml int. *)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then nonneg t land (bound - 1)
  else begin
    (* Rejection sampling over the largest multiple of [bound] below 2^62. *)
    let max = (1 lsl 62) - 1 in
    let limit = max - (max mod bound) in
    let rec draw () =
      let v = nonneg t in
      if v < limit then v mod bound else draw ()
    in
    draw ()
  end

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let unit_float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v *. 0x1.0p-53

let float t bound = unit_float t *. bound
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = unit_float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

(* One traversal into a doubling buffer, then one [int] draw — the same
   single draw (with the same bound) the old [List.nth l (int t
   (List.length l))] made, so seeded outputs are unchanged, without the
   two O(n) list walks per pick. *)
let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | x :: rest ->
    let buf = ref [| x; x; x; x |] in
    let len = ref 1 in
    List.iter
      (fun v ->
        if !len = Array.length !buf then begin
          let bigger = Array.make (2 * !len) x in
          Array.blit !buf 0 bigger 0 !len;
          buf := bigger
        end;
        !buf.(!len) <- v;
        incr len)
      rest;
    !buf.(int t !len)

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle t l =
  let arr = Array.of_list l in
  shuffle_in_place t arr;
  Array.to_list arr

(* The draw sequence (one [int_in_range] per selected slot) is shared
   by the allocating and the _into variants, so replacing one with the
   other never changes a seeded experiment's output. *)
let sample_indices_into t scratch ~n ~k =
  if k < 0 || k > n then invalid_arg "Rng.sample_indices_into: need 0 <= k <= n";
  if Array.length scratch < n then
    invalid_arg "Rng.sample_indices_into: scratch shorter than n";
  for i = 0 to n - 1 do
    scratch.(i) <- i
  done;
  for i = 0 to k - 1 do
    let j = int_in_range t ~lo:i ~hi:(n - 1) in
    let tmp = scratch.(i) in
    scratch.(i) <- scratch.(j);
    scratch.(j) <- tmp
  done

let sample_indices t ~n ~k =
  if k < 0 || k > n then invalid_arg "Rng.sample_indices: need 0 <= k <= n";
  let idx = Array.init n Fun.id in
  for i = 0 to k - 1 do
    let j = int_in_range t ~lo:i ~hi:(n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k

let sample t arr k =
  let idx = sample_indices t ~n:(Array.length arr) ~k in
  Array.map (fun i -> arr.(i)) idx

let perm t n =
  let arr = Array.init n Fun.id in
  shuffle_in_place t arr;
  arr

(* FNV-1a over every byte, finished with mix64.  [Hashtbl.hash] — the
   obvious alternative — inspects only a bounded prefix of the string
   (10 "meaningful" words by default), so long keys sharing a prefix
   collide systematically; this digest never truncates. *)
let digest_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  mix64 !h

let hash_in_range ~seed ~salt ~value n =
  if n <= 0 then invalid_arg "Rng.hash_in_range: n must be positive";
  let h = mix64 (Int64.of_int seed) in
  let h = mix64 (Int64.logxor h (Int64.of_int salt)) in
  let h = mix64 (Int64.logxor h (Int64.of_int value)) in
  Int64.to_int (Int64.shift_right_logical h 2) mod n
