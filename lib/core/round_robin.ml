open Plookup_store
module Net = Plookup_net.Net

(* One replica of the coordinator state: the head/tail counters of
   Section 5.4 plus the position<->entry maps they index. *)
type ledger = {
  mutable head : int;
  mutable tail : int;
  by_position : (int, Entry.t) Hashtbl.t;
  position_of_id : (int, int) Hashtbl.t;
}

type t = {
  cluster : Cluster.t;
  y : int;
  coordinators : int; (* replicas live on servers 0 .. coordinators-1 *)
  ledgers : ledger array;
  mutable truncated : bool; (* placed under a budget; updates disabled *)
  resync_stores : bool; (* push full Store_batch refreshes on recovery *)
}

let fresh_ledger () =
  { head = 0; tail = 0; by_position = Hashtbl.create 64; position_of_id = Hashtbl.create 64 }

let copy_ledger ~src ~dst =
  dst.head <- src.head;
  dst.tail <- src.tail;
  Hashtbl.reset dst.by_position;
  Hashtbl.reset dst.position_of_id;
  Hashtbl.iter (Hashtbl.replace dst.by_position) src.by_position;
  Hashtbl.iter (Hashtbl.replace dst.position_of_id) src.position_of_id

let ledgers_equal a b =
  a.head = b.head && a.tail = b.tail
  && Hashtbl.length a.by_position = Hashtbl.length b.by_position
  && Hashtbl.fold
       (fun pos e acc ->
         acc
         && match Hashtbl.find_opt b.by_position pos with
            | Some e' -> Entry.equal e e'
            | None -> false)
       a.by_position true

(* The acting coordinator: lowest-indexed operational replica. *)
let acting t =
  let rec go i =
    if i >= t.coordinators then None
    else if Cluster.is_up t.cluster i then Some i
    else go (i + 1)
  in
  go 0

let acting_ledger t =
  match acting t with Some c -> t.ledgers.(c) | None -> t.ledgers.(0)

let servers_of_position t pos =
  let n = Cluster.n t.cluster in
  List.init t.y (fun r -> (((pos + r) mod n) + n) mod n)

let send_store t ~src ~dst e =
  ignore (Net.send (Cluster.net t.cluster) ~src:(Net.Server src) ~dst (Msg.store e))

let send_remove t ~src ~dst e =
  ignore (Net.send (Cluster.net t.cluster) ~src:(Net.Server src) ~dst (Msg.remove e))

let ledger_insert ledger pos e =
  Hashtbl.replace ledger.by_position pos e;
  Hashtbl.replace ledger.position_of_id (Entry.id e) pos

let ledger_remove ledger pos =
  match Hashtbl.find_opt ledger.by_position pos with
  | None -> ()
  | Some e ->
    Hashtbl.remove ledger.by_position pos;
    Hashtbl.remove ledger.position_of_id (Entry.id e)

(* Pure ledger mutations.  The acting coordinator derives the message
   plan from the returned description; standby replicas apply the same
   mutation on receipt of a Sync message (identical ledgers derive
   identical results, which keeps the replicas consistent without
   shipping the plan itself). *)

let apply_add ledger e =
  if Hashtbl.mem ledger.position_of_id (Entry.id e) then None
  else begin
    let pos = ledger.tail in
    ledger_insert ledger pos e;
    ledger.tail <- ledger.tail + 1;
    Some pos
  end

type delete_plan = {
  vacated : int;
  migration : (Entry.t * int) option; (* head entry and its old position *)
}

let apply_delete ledger e =
  match Hashtbl.find_opt ledger.position_of_id (Entry.id e) with
  | None -> None
  | Some pos ->
    ledger_remove ledger pos;
    let migration =
      if pos = ledger.head then None
      else begin
        match Hashtbl.find_opt ledger.by_position ledger.head with
        | None -> assert false (* positions in [head, tail) are always occupied *)
        | Some u ->
          let old = ledger.head in
          ledger_remove ledger old;
          ledger_insert ledger pos u;
          Some (u, old)
      end
    in
    ledger.head <- ledger.head + 1;
    Some { vacated = pos; migration }

(* Mirror an update to the standby replicas (footnote 1's replication:
   one point-to-point message per other operational coordinator). *)
let sync_standbys t ~self msg =
  for c = 0 to t.coordinators - 1 do
    if c <> self && Cluster.is_up t.cluster c then
      ignore (Net.send (Cluster.net t.cluster) ~src:(Net.Server self) ~dst:c msg)
  done

let guard_updates t =
  if t.truncated then invalid_arg "Round_robin: updates after a truncated place"

(* Only coordinator replicas hold a ledger; an update delivered to any
   other server is relayed to the acting coordinator (dropped when none
   is up — the lost write [can_update] warns about). *)
let forward_to_coordinator t ~src msg =
  match acting t with
  | Some c -> ignore (Net.send (Cluster.net t.cluster) ~src:(Net.Server src) ~dst:c msg)
  | None -> ()

(* Acting-coordinator logic, executing at server [self]. *)
let do_add t ~self e =
  guard_updates t;
  match apply_add t.ledgers.(self) e with
  | None -> ()
  | Some pos ->
    List.iter (fun dst -> send_store t ~src:self ~dst e) (servers_of_position t pos);
    sync_standbys t ~self (Msg.sync_add e)

let do_delete t ~self e =
  guard_updates t;
  match apply_delete t.ledgers.(self) e with
  | None -> ()
  | Some plan ->
    ignore (Net.broadcast (Cluster.net t.cluster) ~src:(Net.Server self) (Msg.remove e));
    (match plan.migration with
    | None -> ()
    | Some (u, old_pos) ->
      (* Move u's y copies from the old head group to the vacated group;
         remove first so a server in both groups ends up keeping u. *)
      let old_group = servers_of_position t old_pos in
      let new_group = servers_of_position t plan.vacated in
      let tr = (Cluster.obs t.cluster).Plookup_obs.Obs.trace in
      if Plookup_obs.Trace.enabled tr then
        Plookup_obs.Trace.emit_migration tr ~time:(Net.now (Cluster.net t.cluster))
          ~entry:(Entry.id u) ~src:(List.hd old_group) ~dst:(List.hd new_group);
      List.iter (fun dst -> send_remove t ~src:self ~dst u) old_group;
      List.iter (fun dst -> send_store t ~src:self ~dst u) new_group);
    sync_standbys t ~self (Msg.sync_delete e)

let handle_data t dst _src (msg : Msg.data) : Msg.reply =
  match msg with
  | Msg.Place _ ->
    (* Placement is driven from the client-facing [place] below so the
       round-major budget cut is expressible; the request itself only
       reaches one server. *)
    Msg.Ack
  | Msg.Add e ->
    if dst < t.coordinators then do_add t ~self:dst e
    else forward_to_coordinator t ~src:dst (Msg.add e);
    Msg.Ack
  | Msg.Delete e ->
    if dst < t.coordinators then do_delete t ~self:dst e
    else forward_to_coordinator t ~src:dst (Msg.delete e);
    Msg.Ack
  | Msg.Lookup target -> Strategy_common.lookup_reply t.cluster dst target

let handle_strategy t dst src (msg : Msg.strategy) : Msg.reply =
  match msg with
  (* Sync traffic mirrors the ledger between coordinator replicas; a
     non-coordinator has no ledger, so it just acknowledges. *)
  | Msg.Sync_add e ->
    if dst < t.coordinators then ignore (apply_add t.ledgers.(dst) e);
    Msg.Ack
  | Msg.Sync_delete e ->
    if dst < t.coordinators then ignore (apply_delete t.ledgers.(dst) e);
    Msg.Ack
  | Msg.Sync_state ->
    (match src with
    | Net.Server c when c < t.coordinators && dst < t.coordinators ->
      copy_ledger ~src:t.ledgers.(c) ~dst:t.ledgers.(dst)
    | Net.Server _ | Net.Client -> ());
    Msg.Ack
  | (Msg.Store _ | Msg.Remove _ | Msg.Store_batch _ | Msg.Add_sampled _
    | Msg.Remove_counted _ | Msg.Fetch_candidate _) as other ->
    (* Store_batch included: the recovery resync replaces the local store
       wholesale, which is exactly the shared default semantics. *)
    Strategy_common.default_strategy t.cluster dst other

(* A recovering coordinator replica is stale; the acting replica
   refreshes it with a state transfer. *)
(* The entries the ledger assigns to one server. *)
let expected_store t ledger server =
  let acc = ref [] in
  for pos = ledger.head to ledger.tail - 1 do
    if List.mem server (servers_of_position t pos) then begin
      match Hashtbl.find_opt ledger.by_position pos with
      | Some e -> acc := e :: !acc
      | None -> ()
    end
  done;
  !acc

(* Anti-entropy from replica [c]: refresh [server]'s ledger copy (if it
   is a coordinator) and replace its store with what the sequence
   assigns to it — a server that was down missed every store/remove
   addressed to it. *)
let resync_from t ~source ~server =
  let net = Cluster.net t.cluster in
  if server < t.coordinators && server <> source then
    ignore (Net.send net ~src:(Net.Server source) ~dst:server Msg.sync_state);
  (* When [resync_stores] is off the ledger still replicates, but store
     contents are reconciled by the digest-based repair layer instead of
     a full Store_batch push. *)
  if t.resync_stores && not t.truncated then
    ignore
      (Net.send net ~src:(Net.Server source) ~dst:server
         (Msg.store_batch (expected_store t t.ledgers.(source) server)))

let resync_server t server =
  if Cluster.is_up t.cluster server then begin
    match acting t with Some source -> resync_from t ~source ~server | None -> ()
  end

let on_status t server ~up =
  if up then begin
    (* Refresh from any other operational replica — those stayed current
       while this one was down (the recovered server itself may already
       be the lowest-indexed coordinator, so "acting" is not the right
       source). *)
    let rec fresh_source i =
      if i >= t.coordinators then None
      else if i <> server && Cluster.is_up t.cluster i then Some i
      else fresh_source (i + 1)
    in
    match fresh_source 0 with
    | Some c -> resync_from t ~source:c ~server
    | None -> ()
  end

let create ?(coordinators = 1) ?(resync_stores = true) cluster ~y =
  if y < 1 then invalid_arg "Round_robin.create: y must be at least 1";
  if coordinators < 1 || coordinators > Cluster.n cluster then
    invalid_arg "Round_robin.create: coordinators must be in [1, n]";
  let y = min y (Cluster.n cluster) in
  let t =
    { cluster;
      y;
      coordinators;
      ledgers = Array.init coordinators (fun _ -> fresh_ledger ());
      truncated = false;
      resync_stores }
  in
  Strategy_common.install cluster ~data:(handle_data t) ~strategy:(handle_strategy t);
  Net.set_status_listener (Cluster.net cluster) (on_status t);
  t

let y t = t.y
let coordinators t = t.coordinators
let acting_coordinator t = acting t
let cluster t = t.cluster
let head t = (acting_ledger t).head
let tail t = (acting_ledger t).tail
let live_count t = tail t - head t

let position_of t e = Hashtbl.find_opt (acting_ledger t).position_of_id (Entry.id e)
let entry_at t pos = Hashtbl.find_opt (acting_ledger t).by_position pos

let can_update t = (not t.truncated) && acting t <> None

let assigned_servers t e =
  if t.truncated then None
  else
    match position_of t e with
    | None -> Some []
    | Some pos -> Some (servers_of_position t pos)

let place ?budget t entries =
  let entries = Entry.dedup entries in
  match Cluster.random_up_server t.cluster with
  | None -> ()
  | Some s ->
    ignore (Net.send (Cluster.net t.cluster) ~src:Net.Client ~dst:s (Msg.place entries));
    let n = Cluster.n t.cluster in
    let arr = Array.of_list entries in
    let h = Array.length arr in
    let budget = match budget with None -> t.y * h | Some b -> b in
    (* Round-major distribution: one full round of single copies before
       any second copies, so a budget cut keeps maximal coverage —
       matching the paper's Fig. 6 assumption. *)
    let spent = ref 0 in
    for r = 0 to t.y - 1 do
      for i = 0 to h - 1 do
        if !spent < budget then begin
          send_store t ~src:s ~dst:((i + r) mod n) arr.(i);
          incr spent
        end
      done
    done;
    Array.iter
      (fun ledger ->
        Hashtbl.reset ledger.by_position;
        Hashtbl.reset ledger.position_of_id;
        Array.iteri (fun i e -> ledger_insert ledger i e) arr;
        ledger.head <- 0;
        ledger.tail <- h)
      t.ledgers;
    t.truncated <- !spent < t.y * h

let send_to_coordinator t msg =
  match acting t with
  | Some c -> ignore (Net.send (Cluster.net t.cluster) ~src:Net.Client ~dst:c msg)
  | None -> ()

let add t e = send_to_coordinator t (Msg.add e)
let delete t e = send_to_coordinator t (Msg.delete e)

let partial_lookup ?reachable t target =
  let n = Cluster.n t.cluster in
  let start = Plookup_util.Rng.int (Cluster.rng t.cluster) n in
  Probe.stride ?reachable t.cluster ~start ~step:t.y ~t:target

let servers_needed t ~t:target =
  let n = Cluster.n t.cluster in
  let live = max 1 (live_count t) in
  let per_wave = t.y * live in
  min n (max 1 (((target * n) + per_wave - 1) / per_wave))

let partial_lookup_parallel ?reachable t target =
  let n = Cluster.n t.cluster in
  let rng = Cluster.rng t.cluster in
  let all_up =
    match reachable with
    | None -> Cluster.up_count t.cluster = n
    | Some f ->
      Cluster.up_count t.cluster = n
      && (let ok = ref true in
          for i = 0 to n - 1 do
            if not (f i) then ok := false
          done;
          !ok)
  in
  if not all_up then
    (* Failures: the wave size is no longer predictable; fall back to the
       paper's random sequential probing. *)
    partial_lookup ?reachable t target
  else begin
    let start = Plookup_util.Rng.int rng n in
    let wave = servers_needed t ~t:target in
    let net = Cluster.net t.cluster in
    let seen = Hashtbl.create 32 in
    let contacted = ref 0 in
    let contact server =
      match Net.send net ~src:Net.Client ~dst:server (Msg.lookup target) with
      | Some (Msg.Entries entries) ->
        incr contacted;
        List.iter
          (fun e -> if not (Hashtbl.mem seen (Entry.id e)) then Hashtbl.add seen (Entry.id e) e)
          entries
      | Some (Msg.Ack | Msg.Candidate _ | Msg.Digest _ | Msg.Busy) | None -> ()
    in
    (* The stride order, extended with the untouched servers (the stride
       cycle only visits n/gcd(y,n) residues). *)
    let visited = Array.make n false in
    let order = ref [] in
    let pos = ref start in
    while not visited.(!pos) do
      visited.(!pos) <- true;
      order := !pos :: !order;
      pos := (!pos + t.y) mod n
    done;
    let order =
      List.rev !order @ List.filter (fun i -> not visited.(i)) (List.init n Fun.id)
    in
    (* The whole wave fires unconditionally — that is the point: one
       round trip, no data-dependent stopping.  Shortfall (imbalance can
       cost up to y entries per server) tops up along the rest. *)
    List.iteri
      (fun i server -> if i < wave || Hashtbl.length seen < target then contact server)
      order;
    let entries = Hashtbl.fold (fun _ e acc -> e :: acc) seen [] in
    let entries =
      if List.length entries <= target then entries
      else Array.to_list (Plookup_util.Rng.sample rng (Array.of_list entries) target)
    in
    { Lookup_result.entries; servers_contacted = !contacted; target }
  end

let check_invariants t =
  if t.truncated then Ok () (* the ledger does not describe a truncated placement *)
  else begin
    let ledger = acting_ledger t in
    let n = Cluster.n t.cluster in
    let expected = Array.init n (fun _ -> Hashtbl.create 16) in
    let ok = ref (Ok ()) in
    let fail fmt = Format.kasprintf (fun s -> if !ok = Ok () then ok := Error s) fmt in
    for pos = ledger.head to ledger.tail - 1 do
      match Hashtbl.find_opt ledger.by_position pos with
      | None -> fail "position %d in [head,tail) is unoccupied" pos
      | Some e ->
        List.iter
          (fun s -> Hashtbl.replace expected.(s) (Entry.id e) ())
          (servers_of_position t pos)
    done;
    for s = 0 to n - 1 do
      let store = Cluster.store t.cluster s in
      Server_store.iter
        (fun e ->
          if not (Hashtbl.mem expected.(s) (Entry.id e)) then
            fail "server %d stores %s not assigned to it" s (Entry.to_string e))
        store;
      Hashtbl.iter
        (fun id () ->
          if not (Server_store.mem store (Entry.v id)) then
            fail "server %d is missing entry v%d" s id)
        expected.(s)
    done;
    (* All operational replicas must agree with the acting one. *)
    for c = 0 to t.coordinators - 1 do
      if Cluster.is_up t.cluster c && not (ledgers_equal ledger t.ledgers.(c)) then
        fail "coordinator replica %d diverged" c
    done;
    !ok
  end

let strategy_meta ~replicated =
  if replicated then
    { Strategy_intf.name = "RoundRobinHA";
      keys = [ "roundrobinha"; "round_robin_ha"; "roundha" ];
      arity = 2;
      param_doc = "Y = consecutive copies per entry, K = coordinator replicas";
      storage_doc = "h*y";
      ablation = true;
      rank = 45 }
  else
    { Strategy_intf.name = "RoundRobin";
      keys = [ "roundrobin"; "round_robin"; "round" ];
      arity = 1;
      param_doc = "Y = consecutive copies per entry";
      storage_doc = "h*y";
      ablation = false;
      rank = 40 }

module Make_strategy (M : sig
  val replicated : bool
end) =
struct
  type nonrec t = t

  let meta = strategy_meta ~replicated:M.replicated

  let split_params params =
    match (M.replicated, params) with
    | false, [ y ] when y > 0 -> (y, 1)
    | true, [ y; k ] when y > 0 && k > 0 -> (y, k)
    | _ ->
      invalid_arg
        (Printf.sprintf "%s: bad parameters (expected %s)" meta.Strategy_intf.name
           (if M.replicated then "[y; k]" else "[y]"))

  let analytic_storage ~n ~h ~params =
    let y, _ = split_params params in
    float_of_int (h * min y n)

  let params_for_budget ~n:_ ~h ~total ~params =
    let _, k = split_params params in
    let y = max 1 (total / h) in
    if M.replicated then [ y; k ] else [ y ]

  let create ?(resync_stores = true) cluster ~params =
    let y, coordinators = split_params params in
    create ~coordinators ~resync_stores cluster ~y

  let place t ?budget entries = place ?budget t entries
  let add = add
  let delete = delete
  let partial_lookup = partial_lookup
  let can_update = can_update
  let repair_plan t = Strategy_intf.Assigned (assigned_servers t)
end

module Strategy = Make_strategy (struct let replicated = false end)
module Strategy_replicated = Make_strategy (struct let replicated = true end)

let () =
  Strategy_registry.register (module Strategy);
  Strategy_registry.register (module Strategy_replicated)
