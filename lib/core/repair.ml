open Plookup_store
open Plookup_util
module Net = Plookup_net.Net
module Engine = Plookup_sim.Engine
module Metrics = Plookup_obs.Metrics
module Trace = Plookup_obs.Trace
module Span = Plookup_obs.Span

type mode = Off | Sync | Full

let mode_name = function Off -> "off" | Sync -> "sync" | Full -> "full"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "none" -> Ok Off
  | "sync" -> Ok Sync
  | "full" | "all" -> Ok Full
  | other -> Error (Printf.sprintf "unknown repair mode %S (expected off, sync or full)" other)

type config = {
  mode : mode;
  grace : float;
  period : float;
  hint_ttl : float;
  hint_capacity : int;
}

let default_config =
  { mode = Full; grace = 30.; period = 10.; hint_ttl = 200.; hint_capacity = 256 }

let disabled = { default_config with mode = Off }

type plan = Strategy_intf.plan =
  | Mirror
  | Assigned of (Entry.t -> int list option)
  | Free of int

type hint = {
  h_target : int;
  h_kind : Msg.hint_kind;
  h_entry : Entry.t;
  h_expires : float;
}

type stats = {
  syncs : int;
  entries_shipped : int;
  entries_retracted : int;
  hints_queued : int;
  hints_replayed : int;
  hints_expired : int;
  hints_dropped : int;
  re_replications : int;
  trims : int;
  restore_episodes : int;
  mean_restore_time : float option;
}

type t = {
  cluster : Cluster.t;
  config : config;
  plan : plan;
  (* The repair catalog: what the client-facing protocol said is alive.
     Fed by observing Place/Add/Delete on the wire — the repair
     coordinator's replicated metadata, analogous to the Round-Robin
     ledger but content-only (no positions). *)
  live : (int, Entry.t) Hashtbl.t;
  tombstones : (int, unit) Hashtbl.t;
  (* Under an assigned placement, substitute servers the daemon put
     copies on (beyond the entry's owners).  Deletes only reach owners,
     so the delete path purges these from the record. *)
  placed : (int, int list) Hashtbl.t;
  mutable capacity : int; (* 1 + highest entry id ever observed *)
  hints : hint Queue.t array; (* indexed by the buddy holding them *)
  down_since : float option array;
  down_digest : Bitset.t option array; (* store snapshot at fail time *)
  deficient_since : (int, float) Hashtbl.t;
  mutable engine : Engine.t option;
  mutable daemon_ticks : int;
  (* Repair bookkeeping lives on the cluster's metrics registry, next to
     the network counters it explains. *)
  st_syncs : Metrics.counter;
  st_shipped : Metrics.counter;
  st_retracted : Metrics.counter;
  st_hints_queued : Metrics.counter;
  st_hints_replayed : Metrics.counter;
  st_hints_expired : Metrics.counter;
  st_hints_dropped : Metrics.counter;
  st_re_replications : Metrics.counter;
  st_trims : Metrics.counter;
  st_restore_episodes : Metrics.counter;
  st_restore_total : Metrics.gauge;
}

let config t = t.config
let net t = Cluster.net t.cluster
let now t = match t.engine with Some e -> Engine.now e | None -> 0.
let daemon_ticks t = t.daemon_ticks
let live_entries t = Hashtbl.length t.live
let repair_messages t = Net.repair_messages (net t)
let hints_pending t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.hints

let stats t =
  let episodes = Metrics.value t.st_restore_episodes in
  { syncs = Metrics.value t.st_syncs;
    entries_shipped = Metrics.value t.st_shipped;
    entries_retracted = Metrics.value t.st_retracted;
    hints_queued = Metrics.value t.st_hints_queued;
    hints_replayed = Metrics.value t.st_hints_replayed;
    hints_expired = Metrics.value t.st_hints_expired;
    hints_dropped = Metrics.value t.st_hints_dropped;
    re_replications = Metrics.value t.st_re_replications;
    trims = Metrics.value t.st_trims;
    restore_episodes = episodes;
    mean_restore_time =
      (if episodes = 0 then None
       else Some (Metrics.gauge_value t.st_restore_total /. float_of_int episodes)) }

let note_entry t e =
  let id = Entry.id e in
  if id >= t.capacity then t.capacity <- id + 1

let sorted_live t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.live []
  |> List.sort (fun a b -> compare (Entry.id a) (Entry.id b))

(* Maintain the catalog from the client-level protocol traffic passing
   through the wrapped handler; [server] is the one handling the
   message. *)
let observe t ~server (msg : Msg.data) =
  match msg with
  | Msg.Place entries ->
    Hashtbl.reset t.live;
    Hashtbl.reset t.tombstones;
    Hashtbl.reset t.placed;
    List.iter
      (fun e ->
        note_entry t e;
        Hashtbl.replace t.live (Entry.id e) e)
      entries
  | Msg.Add e ->
    note_entry t e;
    Hashtbl.replace t.live (Entry.id e) e;
    Hashtbl.remove t.tombstones (Entry.id e)
  | Msg.Delete e ->
    let id = Entry.id e in
    Hashtbl.remove t.live id;
    Hashtbl.replace t.tombstones id ();
    (* The strategy's delete only reaches the entry's owners; purge the
       substitute copies the daemon placed elsewhere. *)
    (match Hashtbl.find_opt t.placed id with
    | None -> ()
    | Some subs ->
      Hashtbl.remove t.placed id;
      Net.tally_as_repair (net t) (fun () ->
          List.iter
            (fun s ->
              if Cluster.is_up t.cluster s then begin
                ignore (Net.send (net t) ~src:(Net.Server server) ~dst:s (Msg.remove e));
                Metrics.incr t.st_trims
              end)
            (List.sort compare subs)))
  | Msg.Lookup _ -> ()

let has bits id = id < Bitset.capacity bits && Bitset.mem bits id

let store_digest t server =
  let bits = Bitset.create (max 1 t.capacity) in
  Server_store.iter
    (fun e ->
      let id = Entry.id e in
      if id < t.capacity then Bitset.add bits id)
    (Cluster.store t.cluster server);
  bits

(* The entry's owners under an assigned placement, as a set (Hash-y can
   map an entry to the same server twice). *)
let owners_of t e =
  match t.plan with
  | Assigned assignment -> Option.map (List.sort_uniq compare) (assignment e)
  | Mirror | Free _ -> None

(* The replication degree an entry should have right now. *)
let target_degree t e =
  let n = Cluster.n t.cluster in
  match t.plan with
  | Mirror -> Cluster.up_count t.cluster
  | Assigned _ ->
    (match owners_of t e with Some owners -> List.length owners | None -> 0)
  | Free x ->
    let live = max 1 (Hashtbl.length t.live) in
    max 1 (min n (n * x / live))

(* Omniscient measurement of degree deficiency (reads stores directly;
   sends nothing) — powers the time-to-restore-degree metric.  Rather
   than probing every up store for every live entry (O(live * up) — the
   quadratic that dominated churn runs at scale), one pass over the up
   stores builds a per-id copy count, then each live entry is judged by
   one array read. *)
let refresh_tracking t =
  let nowv = now t in
  let cap = max 1 t.capacity in
  let copies = Array.make cap 0 in
  for i = 0 to Cluster.n t.cluster - 1 do
    if Cluster.is_up t.cluster i then
      Server_store.iter
        (fun e ->
          let id = Entry.id e in
          if id < cap then copies.(id) <- copies.(id) + 1)
        (Cluster.store t.cluster i)
  done;
  Hashtbl.iter
    (fun id e ->
      let deg = target_degree t e in
      let copies = if id < cap then copies.(id) else 0 in
      (* Under Mirror, zero live copies means the strategy never tracked
         the entry (e.g. Fixed-x beyond capacity) or every server is
         down — neither is a repairable deficiency. *)
      let deficient =
        copies < deg && match t.plan with Mirror -> copies > 0 | Assigned _ | Free _ -> true
      in
      if deficient then begin
        if not (Hashtbl.mem t.deficient_since id) then
          Hashtbl.replace t.deficient_since id nowv
      end
      else
        match Hashtbl.find_opt t.deficient_since id with
        | Some since ->
          Metrics.incr t.st_restore_episodes;
          Metrics.add_gauge t.st_restore_total (nowv -. since);
          Hashtbl.remove t.deficient_since id
        | None -> ())
    t.live;
  (* Entries deleted while deficient: the deficiency is moot. *)
  let stale =
    Hashtbl.fold
      (fun id _ acc -> if Hashtbl.mem t.live id then acc else id :: acc)
      t.deficient_since []
  in
  List.iter (Hashtbl.remove t.deficient_since) stale

(* {2 Recovery sync} *)

exception Unknown_assignment

(* What the requester is missing and what it must retract, computed at
   the peer from its digest.  [None] when the plan cannot describe the
   placement (truncated Round-Robin). *)
let compute_fix t ~peer ~requester bits =
  match t.plan with
  | Mirror ->
    let reference = Cluster.store t.cluster peer in
    let missing =
      Server_store.fold
        (fun e acc -> if has bits (Entry.id e) then acc else e :: acc)
        reference []
      |> List.sort (fun a b -> compare (Entry.id a) (Entry.id b))
    in
    let retract = List.filter (fun id -> Hashtbl.mem t.tombstones id) (Bitset.to_list bits) in
    Some (missing, retract)
  | Assigned assignment ->
    (try
       let missing =
         List.filter
           (fun e ->
             (not (has bits (Entry.id e)))
             &&
             match assignment e with
             | None -> raise Unknown_assignment
             | Some owners -> List.mem requester owners)
           (sorted_live t)
       in
       let retract =
         List.filter
           (fun id ->
             match Hashtbl.find_opt t.live id with
             | None -> true (* deleted (or never known): drop it *)
             | Some e ->
               (match assignment e with
               | None -> raise Unknown_assignment
               | Some owners -> not (List.mem requester owners)))
           (Bitset.to_list bits)
       in
       Some (missing, retract)
     with Unknown_assignment -> None)
  | Free _ ->
    (* Contents are a random subset by design; the sync only purges
       deleted entries, the daemon restores the degree. *)
    let retract = List.filter (fun id -> Hashtbl.mem t.tombstones id) (Bitset.to_list bits) in
    Some ([], retract)

let on_digest_request t ~peer ~src bits =
  match (src : Net.sender) with
  | Net.Client -> ()
  | Net.Server requester ->
    (match compute_fix t ~peer ~requester bits with
    | None | Some ([], []) -> ()
    | Some (missing, retract) ->
      ignore
        (Net.send (net t) ~src:(Net.Server peer) ~dst:requester
           (Msg.sync_fix missing retract)))

let apply_fix t ~server missing retract =
  let store = Cluster.store t.cluster server in
  List.iter
    (fun e -> if Server_store.add store e then Metrics.incr t.st_shipped)
    missing;
  List.iter
    (fun id ->
      if Server_store.remove store (Entry.v id) then Metrics.incr t.st_retracted)
    retract

let do_sync t server =
  match Cluster.next_up_from t.cluster server with
  | None ->
    (* No live peer to reconcile against — but deletions the server
       missed are recorded in the repair ledger, so it can at least
       scrub those.  The fix is self-addressed through [Net] so the
       scrub is charged to the repair message budget like any other. *)
    let bits = store_digest t server in
    let retract =
      List.sort compare
        (Hashtbl.fold
           (fun id () acc -> if has bits id then id :: acc else acc)
           t.tombstones [])
    in
    if retract <> [] then begin
      Metrics.incr t.st_syncs;
      Net.tally_as_repair (net t) (fun () ->
          ignore
            (Net.send (net t) ~src:(Net.Server server) ~dst:server
               (Msg.sync_fix [] retract)))
    end
  | Some peer ->
    Metrics.incr t.st_syncs;
    Net.tally_as_repair (net t) (fun () ->
        ignore
          (Net.send (net t) ~src:(Net.Server server) ~dst:peer
             (Msg.digest_request (store_digest t server))))

let sync_now t server =
  if Cluster.is_up t.cluster server then do_sync t server

(* {2 Hinted handoff} *)

let hint_of_msg (msg : Msg.t) =
  match msg with
  | Msg.Strategy (Msg.Store e) -> Some (Msg.H_store, e)
  | Msg.Strategy (Msg.Remove e) -> Some (Msg.H_remove, e)
  | Msg.Strategy (Msg.Add_sampled e) -> Some (Msg.H_add_sampled, e)
  | Msg.Strategy (Msg.Remove_counted e) -> Some (Msg.H_remove_counted, e)
  | Msg.Strategy _ | Msg.Data _ | Msg.Repair _ -> None

let msg_of_hint h : Msg.t =
  match h.h_kind with
  | Msg.H_store -> Msg.store h.h_entry
  | Msg.H_remove -> Msg.remove h.h_entry
  | Msg.H_add_sampled -> Msg.add_sampled h.h_entry
  | Msg.H_remove_counted -> Msg.remove_counted h.h_entry

let enqueue_hint t ~buddy ~target ~kind entry =
  let q = t.hints.(buddy) in
  if Queue.length q >= t.config.hint_capacity then begin
    ignore (Queue.pop q);
    Metrics.incr t.st_hints_dropped
  end;
  Queue.push
    { h_target = target; h_kind = kind; h_entry = entry; h_expires = now t +. t.config.hint_ttl }
    q;
  Metrics.incr t.st_hints_queued

(* A transmission hit a down server: park the mutation as a hint on the
   first up server after the dead one in ring order. *)
let on_drop t ~src ~dst msg =
  if t.config.mode = Full then
    match hint_of_msg msg with
    | None -> ()
    | Some (kind, entry) ->
      (match Cluster.next_up_from t.cluster dst with
      | None -> ()
      | Some buddy ->
        Net.tally_as_repair (net t) (fun () ->
            ignore (Net.send (net t) ~src ~dst:buddy (Msg.hint ~target:dst kind entry))))

let replay_hints t ~target =
  let nowv = now t in
  for buddy = 0 to Cluster.n t.cluster - 1 do
    let q = t.hints.(buddy) in
    if not (Queue.is_empty q) then begin
      let keep = Queue.create () in
      while not (Queue.is_empty q) do
        let h = Queue.pop q in
        if h.h_target <> target then Queue.push h keep
        else if not (Cluster.is_up t.cluster buddy) then
          (* The buddy is itself down; its hints for [target] are
             superseded by the digest sync and must not replay later
             (they could resurrect an entry deleted in between). *)
          Metrics.incr t.st_hints_dropped
        else if nowv > h.h_expires then Metrics.incr t.st_hints_expired
        else begin
          Net.tally_as_repair (net t) (fun () ->
              ignore (Net.send (net t) ~src:(Net.Server buddy) ~dst:target (msg_of_hint h)));
          Metrics.incr t.st_hints_replayed
        end
      done;
      Queue.transfer keep q
    end
  done

(* {2 Repair daemon} *)

let lowest_up t =
  if Cluster.up_count t.cluster = 0 then None else Some (Net.kth_up (net t) 0)

let daemon_tick t =
  match lowest_up t with
  | None -> ()
  | Some c when Hashtbl.length t.live > 0 ->
    let n = Cluster.n t.cluster in
    let nowv = now t in
    Net.tally_as_repair (net t) (fun () ->
        (* One digest broadcast (cost n), then targeted point-to-point
           repairs. *)
        let dig = Array.make n None in
        List.iter
          (fun (i, reply) ->
            match (reply : Msg.reply) with Msg.Digest b -> dig.(i) <- Some b | _ -> ())
          (Net.broadcast (net t) ~src:(Net.Server c) Msg.digest_pull);
        let holds i id = match dig.(i) with Some b -> has b id | None -> false in
        (* A server down for less than the grace period still counts as
           a copy (its store survives the outage): transient blips must
           not trigger re-replication. *)
        let grace_holds s id =
          match (t.down_since.(s), t.down_digest.(s)) with
          | Some since, Some b when nowv -. since <= t.config.grace -> has b id
          | _ -> false
        in
        (* Invert the per-entry scans: one pass over the stores of the
           servers that answered the broadcast yields every entry's live
           copy count (a digest is a same-tick snapshot of its store, so
           iterating the store is iterating the digest's set bits) and
           the holders of each tombstoned id.  Per-entry work below then
           touches the ring only for entries that actually need filling
           or trimming, and only for as many steps as there are copies
           to send. *)
        let cap = max 1 t.capacity in
        let up_copies = Array.make cap 0 in
        let dead_holders = Hashtbl.create 16 in
        for i = 0 to n - 1 do
          if dig.(i) <> None then
            Server_store.iter
              (fun e ->
                let id = Entry.id e in
                if id < cap then begin
                  up_copies.(id) <- up_copies.(id) + 1;
                  if Hashtbl.mem t.tombstones id then
                    Hashtbl.replace dead_holders id
                      (i :: Option.value (Hashtbl.find_opt dead_holders id) ~default:[])
                end)
              (Cluster.store t.cluster i)
        done;
        (* Down-within-grace servers are few at any instant; per-entry
           grace copies are counted against this short list rather than
           a length-n sweep. *)
        let grace_servers =
          let acc = ref [] in
          for s = n - 1 downto 0 do
            if dig.(s) = None then
              match (t.down_since.(s), t.down_digest.(s)) with
              | Some since, Some _ when nowv -. since <= t.config.grace -> acc := s :: !acc
              | _ -> ()
          done;
          !acc
        in
        List.iter
          (fun e ->
            let id = Entry.id e in
            let start = ((id mod n) + n) mod n in
            let live_copies = if id < cap then up_copies.(id) else 0 in
            let grace_copies =
              List.fold_left
                (fun acc s -> if grace_holds s id then acc + 1 else acc)
                0 grace_servers
            in
            let deg = target_degree t e in
            let copies = live_copies + grace_copies in
            let owners = owners_of t e in
            if copies < deg then begin
              (* Under Mirror an entry with no live copy has no source
                 (the strategy never tracked it, or nothing survives). *)
              if not (t.plan = Mirror && live_copies = 0) then begin
                let deficit = deg - copies in
                let sent = ref 0 in
                let send_to dst =
                  ignore (Net.send (net t) ~src:(Net.Server c) ~dst (Msg.repair_store e));
                  Metrics.incr t.st_re_replications;
                  incr sent;
                  match owners with
                  | Some os when not (List.mem dst os) ->
                    let prev = Option.value (Hashtbl.find_opt t.placed id) ~default:[] in
                    if not (List.mem dst prev) then
                      Hashtbl.replace t.placed id (dst :: prev)
                  | Some _ | None -> ()
                in
                (* Owners missing their copy come first (in owner
                   order), then the ring walk from the entry's home
                   fills the remainder with substitutes, stopping the
                   moment the deficit is met — the same destinations, in
                   the same order, as taking [deficit] from the old
                   [preferred @ fill] lists. *)
                let os = Option.value owners ~default:[] in
                List.iter
                  (fun o ->
                    if !sent < deficit && dig.(o) <> None && not (holds o id) then send_to o)
                  os;
                let k = ref 0 in
                while !sent < deficit && !k < n do
                  let i = (start + !k) mod n in
                  if dig.(i) <> None && (not (holds i id)) && not (List.mem i os) then
                    send_to i;
                  incr k
                done
              end
            end
            else begin
              (* Over-degree under an assigned placement: once every
                 owner is up and holding, trim the stray substitutes.
                 [live_copies] counts owners and strays alike, so the
                 ring is walked only when strays actually exist, and
                 only until they are all found. *)
              match owners with
              | Some os
                when os <> []
                     && List.for_all (fun o -> dig.(o) <> None && holds o id) os
                     && live_copies > List.length os ->
                let strays = live_copies - List.length os in
                let trimmed = ref [] in
                let k = ref 0 in
                while List.length !trimmed < strays && !k < n do
                  let i = (start + !k) mod n in
                  if holds i id && not (List.mem i os) then begin
                    ignore (Net.send (net t) ~src:(Net.Server c) ~dst:i (Msg.remove e));
                    Metrics.incr t.st_trims;
                    trimmed := i :: !trimmed
                  end;
                  incr k
                done;
                (match
                   List.filter
                     (fun s -> not (List.mem s !trimmed))
                     (Option.value (Hashtbl.find_opt t.placed id) ~default:[])
                 with
                | [] -> Hashtbl.remove t.placed id
                | rest -> Hashtbl.replace t.placed id rest)
              | _ -> ()
            end)
          (sorted_live t);
        (* Tombstone scrub: a recovery sync that found no live peer (or
           a hint replayed out of order) can leave a deleted entry on an
           up server indefinitely; the daemon retracts any tombstoned id
           still present in a digest (the holders were collected in the
           counting pass above — no per-tombstone server sweep). *)
        let dead_ids =
          List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) dead_holders [])
        in
        List.iter
          (fun id ->
            List.iter
              (fun i ->
                ignore
                  (Net.send (net t) ~src:(Net.Server c) ~dst:i (Msg.remove (Entry.v id)));
                Metrics.incr t.st_retracted)
              (List.rev (Hashtbl.find dead_holders id)))
          dead_ids);
    refresh_tracking t
  | Some _ -> ()

let run_daemon_once t =
  t.daemon_ticks <- t.daemon_ticks + 1;
  let tr = (Cluster.obs t.cluster).Plookup_obs.Obs.trace in
  if Trace.enabled tr then begin
    let before_rr = Metrics.value t.st_re_replications in
    let before_trims = Metrics.value t.st_trims in
    daemon_tick t;
    match lowest_up t with
    | None -> ()
    | Some c ->
      Trace.emit_repair_round tr ~time:(now t) ~coordinator:c ~tick:t.daemon_ticks
        ~re_replications:(Metrics.value t.st_re_replications - before_rr)
        ~trims:(Metrics.value t.st_trims - before_trims)
  end
  else daemon_tick t

(* {2 Wiring} *)

let on_status t server ~up =
  if up then begin
    t.down_since.(server) <- None;
    if t.config.mode = Full then replay_hints t ~target:server;
    do_sync t server;
    t.down_digest.(server) <- None;
    refresh_tracking t
  end
  else begin
    t.down_since.(server) <- Some (now t);
    t.down_digest.(server) <- Some (store_digest t server);
    refresh_tracking t
  end

(* The repair plane terminates here: strategies never see it. *)
let handle_repair t dst src (msg : Msg.repair) : Msg.reply =
  match msg with
  | Msg.Digest_request bits ->
    on_digest_request t ~peer:dst ~src bits;
    Msg.Ack
  | Msg.Sync_fix (missing, retract) ->
    apply_fix t ~server:dst missing retract;
    Msg.Ack
  | Msg.Hint (target, kind, e) ->
    enqueue_hint t ~buddy:dst ~target ~kind e;
    Msg.Ack
  | Msg.Digest_pull -> Msg.Digest (store_digest t dst)
  | Msg.Repair_store e ->
    ignore (Server_store.add (Cluster.store t.cluster dst) e);
    Msg.Ack

let handle t inner dst src (msg : Msg.t) : Msg.reply =
  match msg with
  | Msg.Repair r -> handle_repair t dst src r
  | Msg.Data d ->
    observe t ~server:dst d;
    inner dst src msg
  | Msg.Strategy _ -> inner dst src msg

let install cluster ~config ~plan =
  (match config.mode with
  | Off -> invalid_arg "Repair.install: mode is off"
  | Sync | Full -> ());
  if config.grace < 0. then invalid_arg "Repair.install: grace must be non-negative";
  if config.period <= 0. then invalid_arg "Repair.install: period must be positive";
  if config.hint_ttl <= 0. then invalid_arg "Repair.install: hint_ttl must be positive";
  if config.hint_capacity < 1 then invalid_arg "Repair.install: hint_capacity must be positive";
  let n = Cluster.n cluster in
  let m = (Cluster.obs cluster).Plookup_obs.Obs.metrics in
  let t =
    { cluster;
      config;
      plan;
      live = Hashtbl.create 256;
      tombstones = Hashtbl.create 64;
      placed = Hashtbl.create 64;
      capacity = 0;
      hints = Array.init n (fun _ -> Queue.create ());
      down_since = Array.make n None;
      down_digest = Array.make n None;
      deficient_since = Hashtbl.create 64;
      engine = None;
      daemon_ticks = 0;
      st_syncs = Metrics.counter m "repair.syncs";
      st_shipped = Metrics.counter m "repair.entries_shipped";
      st_retracted = Metrics.counter m "repair.entries_retracted";
      st_hints_queued = Metrics.counter m "repair.hints.queued";
      st_hints_replayed = Metrics.counter m "repair.hints.replayed";
      st_hints_expired = Metrics.counter m "repair.hints.expired";
      st_hints_dropped = Metrics.counter m "repair.hints.dropped";
      st_re_replications = Metrics.counter m "repair.re_replications";
      st_trims = Metrics.counter m "repair.trims";
      st_restore_episodes = Metrics.counter m "repair.restore.episodes";
      st_restore_total = Metrics.gauge m "repair.restore.total_time" }
  in
  let net = Cluster.net cluster in
  Net.wrap_handler net (fun inner dst src msg -> handle t inner dst src msg);
  Net.set_drop_listener net (fun ~src ~dst msg -> on_drop t ~src ~dst msg);
  Net.add_status_listener net (fun server ~up -> on_status t server ~up);
  t

let attach_engine ?until t engine =
  t.engine <- Some engine;
  if t.config.mode = Full then begin
    let within time = match until with None -> true | Some u -> time <= u in
    let rec tick _ =
      run_daemon_once t;
      if within (Engine.now engine +. t.config.period) then
        ignore (Engine.schedule_after engine ~delay:t.config.period tick)
    in
    if within (Engine.now engine +. t.config.period) then
      ignore (Engine.schedule_after engine ~delay:t.config.period tick)
  end
