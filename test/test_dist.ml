open Plookup_util

let sample_mean rng draw n =
  let acc = Stats.Accum.create () in
  for _ = 1 to n do
    Stats.Accum.add acc (draw rng)
  done;
  Stats.Accum.mean acc

let test_exponential_mean () =
  let rng = Rng.create 1 in
  Helpers.roughly ~rel:0.05 "exp mean 100" 100.
    (sample_mean rng (fun rng -> Dist.exponential rng ~mean:100.) 100_000)

let test_exponential_positive () =
  let rng = Rng.create 2 in
  for _ = 1 to 10_000 do
    if Dist.exponential rng ~mean:5. < 0. then Alcotest.fail "negative exponential draw"
  done

let test_exponential_rejects_bad_mean () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "mean 0"
    (Invalid_argument "Dist.exponential: mean must be positive") (fun () ->
      ignore (Dist.exponential rng ~mean:0.))

let test_exponential_memoryless_tail () =
  (* P(X > mean) = 1/e for an exponential. *)
  let rng = Rng.create 3 in
  let over = ref 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    if Dist.exponential rng ~mean:10. > 10. then incr over
  done;
  Helpers.roughly ~rel:0.05 "tail mass" (1. /. Float.exp 1.)
    (float_of_int !over /. float_of_int draws)

let test_poisson_interarrival () =
  let rng = Rng.create 4 in
  Helpers.roughly ~rel:0.05 "rate 0.1 -> mean 10" 10.
    (sample_mean rng (fun rng -> Dist.poisson_interarrival rng ~rate:0.1) 100_000)

let test_zipf_like_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Dist.zipf_like rng ~c:1000. in
    if v < 1. || v > 1000. then Alcotest.failf "zipf draw out of [1,c]: %f" v
  done

let test_zipf_like_mean_formula () =
  Helpers.close ~eps:1e-9 "mean formula" ((1000. -. 1.) /. log 1000.)
    (Dist.zipf_like_mean ~c:1000.)

let test_zipf_like_sample_mean () =
  let rng = Rng.create 6 in
  let c = 1000. in
  Helpers.roughly ~rel:0.05 "zipf sample mean" (Dist.zipf_like_mean ~c)
    (sample_mean rng (fun rng -> Dist.zipf_like rng ~c) 200_000)

let test_zipf_c_inversion () =
  List.iter
    (fun mean ->
      let c = Dist.zipf_like_c_for_mean ~mean in
      Helpers.roughly ~rel:1e-6
        (Printf.sprintf "inversion at mean %.0f" mean)
        mean (Dist.zipf_like_mean ~c))
    [ 2.; 10.; 100.; 1000.; 50_000. ]

let test_zipf_median_below_mean () =
  (* Tail-heaviness: the Zipf-like law's median is far below its mean. *)
  let c = Dist.zipf_like_c_for_mean ~mean:1000. in
  let rng = Rng.create 7 in
  let draws = Array.init 50_001 (fun _ -> Dist.zipf_like rng ~c) in
  let median = Stats.percentile draws 50. in
  Alcotest.(check bool) "median << mean" true (median < 500.)

let test_lifetime_of_mean () =
  (match Dist.lifetime_of_mean ~tail_heavy:false ~mean:1000. with
  | Dist.Exponential m -> Helpers.close "exp mean" 1000. m
  | Dist.Zipf_like _ -> Alcotest.fail "expected exponential");
  match Dist.lifetime_of_mean ~tail_heavy:true ~mean:1000. with
  | Dist.Zipf_like c ->
    Helpers.roughly ~rel:1e-6 "zipf scaled" 1000. (Dist.zipf_like_mean ~c)
  | Dist.Exponential _ -> Alcotest.fail "expected zipf"

let test_draw_lifetime_mean () =
  let rng = Rng.create 8 in
  List.iter
    (fun lifetime ->
      Helpers.roughly ~rel:0.06 "draw_lifetime mean" (Dist.lifetime_mean lifetime)
        (sample_mean rng (fun rng -> Dist.draw_lifetime rng lifetime) 150_000))
    [ Dist.Exponential 500.; Dist.Zipf_like 2000. ]

let test_zipf_ranks () =
  let rng = Rng.create 9 in
  let counts = Array.make 10 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let r = Dist.zipf_ranks rng ~n:10 ~alpha:1.0 in
    if r < 1 || r > 10 then Alcotest.failf "rank out of range: %d" r;
    counts.(r - 1) <- counts.(r - 1) + 1
  done;
  (* Rank 1 should appear ~2x rank 2, ~10x rank 10. *)
  Alcotest.(check bool) "rank 1 most popular" true (counts.(0) > counts.(1));
  Helpers.roughly ~rel:0.15 "rank1/rank2 ~ 2" 2.
    (float_of_int counts.(0) /. float_of_int counts.(1));
  Helpers.roughly ~rel:0.25 "rank1/rank10 ~ 10" 10.
    (float_of_int counts.(0) /. float_of_int counts.(9))

let test_uniform_in () =
  let rng = Rng.create 10 in
  for _ = 1 to 5000 do
    let v = Dist.uniform_in rng ~lo:(-2.) ~hi:3. in
    if v < -2. || v >= 3. then Alcotest.failf "uniform_in out of range: %f" v
  done

let prop_zipf_in_bounds =
  Helpers.qcheck "zipf draws within [1, c]"
    QCheck2.Gen.(pair (float_range 1.5 1e6) int)
    (fun (c, seed) ->
      let rng = Rng.create seed in
      let v = Dist.zipf_like rng ~c in
      v >= 1. && v <= c)

let prop_c_for_mean_monotone =
  Helpers.qcheck "c_for_mean increases with mean"
    QCheck2.Gen.(pair (float_range 1.1 1e4) (float_range 1.1 1e4))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      lo = hi
      || Dist.zipf_like_c_for_mean ~mean:lo <= Dist.zipf_like_c_for_mean ~mean:hi +. 1e-6)

let () =
  Helpers.run "dist"
    [ ( "dist",
        [ Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
          Alcotest.test_case "exponential bad mean" `Quick test_exponential_rejects_bad_mean;
          Alcotest.test_case "exponential tail" `Quick test_exponential_memoryless_tail;
          Alcotest.test_case "poisson interarrival" `Quick test_poisson_interarrival;
          Alcotest.test_case "zipf bounds" `Quick test_zipf_like_bounds;
          Alcotest.test_case "zipf mean formula" `Quick test_zipf_like_mean_formula;
          Alcotest.test_case "zipf sample mean" `Quick test_zipf_like_sample_mean;
          Alcotest.test_case "zipf c inversion" `Quick test_zipf_c_inversion;
          Alcotest.test_case "zipf tail-heavy" `Quick test_zipf_median_below_mean;
          Alcotest.test_case "lifetime_of_mean" `Quick test_lifetime_of_mean;
          Alcotest.test_case "draw_lifetime mean" `Quick test_draw_lifetime_mean;
          Alcotest.test_case "zipf ranks" `Quick test_zipf_ranks;
          Alcotest.test_case "uniform_in" `Quick test_uniform_in;
          prop_zipf_in_bounds;
          prop_c_for_mean_monotone ] ) ]
