(** Self-healing layer: anti-entropy recovery sync, hinted handoff and a
    degree-restoring repair daemon, strategy-agnostic and metered.

    The paper's strategies (Section 3) lose copies silently under churn:
    a recovering server serves whatever its store held when it failed —
    deleted entries come back from the dead, adds issued during the
    outage are invisible, and the replication degree of entries whose
    holders died stays degraded forever.  Only Round-Robin's replicated
    coordinator (footnote 1) resynced its recovering servers, and it did
    so with a full store push.  This module generalizes that resync to
    every strategy and makes it incremental:

    {ul
    {- {e Recovery sync}: on an up-transition the recovering server
       sends its store's entry-id digest (a compact {!Plookup_util.Bitset})
       to a live peer; the peer answers with one [Sync_fix] shipping only
       the entries the digest proves missing and retracting the ids the
       catalog proves deleted.}
    {- {e Hinted handoff}: a [Store]/[Remove] (or RandomServer sampling
       op) that hits a down server is parked as a bounded, TTL'd hint on
       the first up server after it in ring order, and replayed when the
       target recovers — before the digest sync, which then corrects any
       hint that expired or went stale.}
    {- {e Repair daemon}: a periodic {!Plookup_sim.Engine} task whose
       coordinator (lowest-indexed up server) broadcasts a [Digest_pull],
       counts live copies per entry, and re-replicates entries whose
       copy count fell below the strategy's target degree — after a
       grace period, so transient blips cost nothing.  Under an assigned
       placement it also trims stray substitute copies once every owner
       is back.}}

    All repair traffic flows through {!Plookup_net.Net} and is counted in
    the paper's message-cost model, but tallied separately
    ({!Plookup_net.Net.repair_messages}) so experiments report repair
    overhead next to — not mixed into — the lookup/update cost.

    What a server {e should} hold comes from a per-strategy {!plan}; what
    is {e alive} comes from a catalog maintained by observing the
    client-level [Place]/[Add]/[Delete] traffic — the repair
    coordinator's replicated metadata, analogous to Round-Robin's
    ledger.  Everything is deterministic: same seed and schedule, same
    syncs, same hint replay order, same message counts. *)

open Plookup_store

type mode =
  | Off  (** No repair; the seed repo's behaviour. *)
  | Sync  (** Recovery sync only. *)
  | Full  (** Recovery sync + hinted handoff + repair daemon. *)

val mode_name : mode -> string
val mode_of_string : string -> (mode, string) result

type config = {
  mode : mode;
  grace : float;  (** Seconds a server may be down before the daemon re-replicates. *)
  period : float;  (** Daemon tick interval. *)
  hint_ttl : float;  (** Hints older than this are discarded unreplayed. *)
  hint_capacity : int;  (** Max hints parked per buddy; oldest evicted first. *)
}

val default_config : config
(** [mode = Full], [grace = 30.], [period = 10.], [hint_ttl = 200.],
    [hint_capacity = 256]. *)

val disabled : config
(** [default_config] with [mode = Off]. *)

(** What the strategy's placement says a server should hold.  The type
    lives in {!Strategy_intf} (strategies describe their plan through
    {!Strategy_intf.S.repair_plan}); re-exported here because repair is
    its consumer. *)
type plan = Strategy_intf.plan =
  | Mirror
      (** Every live server holds the same set (FullReplication, Fixed-x):
          sync against any live peer's store. *)
  | Assigned of (Entry.t -> int list option)
      (** Deterministic owners per entry (Hash-y's [servers_of],
          Round-Robin's ledger).  [None] means the placement is not
          describable (truncated Round-Robin) — sync is skipped. *)
  | Free of int
      (** Random x-subsets (RandomServer-x): sync only purges deleted
          entries; the daemon restores the dynamic target degree
          [n*x / live_count]. *)

type t

val install : Cluster.t -> config:config -> plan:plan -> t
(** Wrap the cluster's installed strategy handler with the repair layer
    and hook the drop/status listeners.  Must be called {e after} the
    strategy's [create] (which installs the handler) — {!Service} does
    this when its repair config is not [Off].  Raises [Invalid_argument]
    on [mode = Off] or non-positive timing parameters. *)

val attach_engine : ?until:float -> t -> Plookup_sim.Engine.t -> unit
(** Give repair a clock (hint TTLs and grace periods are 0-based without
    one) and, in [Full] mode, schedule the daemon every [period] time
    units, stopping after [until] if given. *)

val config : t -> config

(** {1 Manual triggers (tests, engine-less use)} *)

val sync_now : t -> int -> unit
(** Run the recovery sync for one (up) server immediately. *)

val run_daemon_once : t -> unit
(** One daemon tick: digest pull, re-replication, trimming, tracking. *)

val refresh_tracking : t -> unit
(** Re-measure per-entry degree deficiency (no messages); called
    automatically on status transitions and daemon ticks. *)

(** {1 Introspection} *)

val live_entries : t -> int
(** Entries the catalog believes are alive. *)

val hints_pending : t -> int
val daemon_ticks : t -> int

val repair_messages : t -> int
(** Messages received on this cluster's network that were tallied as
    repair traffic ({!Plookup_net.Net.repair_messages}). *)

type stats = {
  syncs : int;  (** Recovery syncs initiated. *)
  entries_shipped : int;  (** Entries installed by [Sync_fix]. *)
  entries_retracted : int;  (** Entries deleted by [Sync_fix]. *)
  hints_queued : int;
  hints_replayed : int;
  hints_expired : int;  (** Aged past [hint_ttl] at replay time. *)
  hints_dropped : int;  (** Evicted by capacity or lost with a down buddy. *)
  re_replications : int;  (** [Repair_store] copies pushed by the daemon. *)
  trims : int;  (** Stray over-degree copies removed by the daemon. *)
  restore_episodes : int;
      (** Completed below-degree episodes (degree later restored). *)
  mean_restore_time : float option;
      (** Mean duration of those episodes; [None] when none completed. *)
}

val stats : t -> stats
