open Plookup_util
open Plookup_store
module Service = Plookup.Service

let of_instance service ~live ~t ~lookups =
  if t <= 0 then invalid_arg "Unfairness.of_instance: t must be positive";
  if lookups <= 0 then invalid_arg "Unfairness.of_instance: lookups must be positive";
  if live = [] then invalid_arg "Unfairness.of_instance: no live entries";
  let h = List.length live in
  let counts = Hashtbl.create h in
  List.iter (fun e -> Hashtbl.replace counts (Entry.id e) 0) live;
  for _ = 1 to lookups do
    let result = Service.partial_lookup service t in
    List.iter
      (fun e ->
        match Hashtbl.find_opt counts (Entry.id e) with
        | Some c -> Hashtbl.replace counts (Entry.id e) (c + 1)
        | None -> () (* stale entry still stored somewhere; not live *))
      result.Plookup.Lookup_result.entries
  done;
  let probabilities =
    List.map
      (fun e -> float_of_int (Hashtbl.find counts (Entry.id e)) /. float_of_int lookups)
      live
    |> Array.of_list
  in
  Stats.coefficient_of_variation ~ideal:(float_of_int t /. float_of_int h) probabilities

let of_strategy ?(seed = 0) ?obs ?(shards = 1) ~n ~entries ~config ~t ~instances
    ~lookups_per_instance () =
  let master = Rng.create seed in
  let acc = Stats.Accum.create () in
  if shards <= 1 then
    for _ = 1 to instances do
      let run_seed = Int64.to_int (Rng.bits64 master) land max_int in
      let service = Service.create ~seed:run_seed ?obs ~n config in
      let gen = Entry.Gen.create () in
      let live = Entry.Gen.batch gen entries in
      Service.place service live;
      Stats.Accum.add acc (of_instance service ~live ~t ~lookups:lookups_per_instance)
    done
  else begin
    (* Instance-space sharding with in-order replay; see coverage.ml
       for why this is byte-identical to the sequential loop. *)
    let seeds = Array.make instances 0 in
    for i = 0 to instances - 1 do
      seeds.(i) <- Int64.to_int (Rng.bits64 master) land max_int
    done;
    let outputs =
      Pool.map ~jobs:shards
        (fun run_seed ->
          let child = Option.map Plookup_obs.Obs.child obs in
          let service = Service.create ~seed:run_seed ?obs:child ~n config in
          let gen = Entry.Gen.create () in
          let live = Entry.Gen.batch gen entries in
          Service.place service live;
          (of_instance service ~live ~t ~lookups:lookups_per_instance, child))
        seeds
    in
    Array.iter
      (fun (sample, child) ->
        Stats.Accum.add acc sample;
        match (obs, child) with
        | Some parent, Some c -> Plookup_obs.Obs.merge parent c
        | _ -> ())
      outputs
  end;
  (Stats.Accum.mean acc, Stats.Accum.ci95_half_width acc)
