(** Span sinks: where a {!Trace} streams decoded spans.

    A sink consumes {!Span.t} values — the decoded view.  The trace's
    own bounded history lives int-coded inside {!Trace} and is only
    decoded at drain time; sinks are the {e streaming} side: they see
    every span as it is emitted (decoded on the fly), regardless of ring
    capacity, so a JSONL file stays complete even when the in-memory
    ring evicts. *)

type t

val emit : t -> Span.t -> unit
val flush : t -> unit

val jsonl : ?flush_every:int -> out_channel -> t
(** Stream each span as one JSON line.  The channel is flushed every
    [flush_every] spans (default 1024) and on {!flush}; closing the
    channel is the caller's job. *)

val null : t
(** Discards everything (placeholder wiring). *)
