(* Spans are stored int-coded in a flat preallocated ring and decoded
   into {!Span.t} values only when drained ({!spans}, {!absorb}) or
   streamed to an attached sink.  The hot path — one [Send] plus one
   [Recv] per delivered message — therefore writes a handful of
   immediate ints and one unboxed float and allocates nothing.

   Cell geometry: each span occupies [cell_ints] consecutive slots of
   [ints] and [cell_floats] of [floats].  Both strides and the slot
   count are powers of two, so cell addressing is a shift and the ring
   wrap is a mask.

     ints.(base+0)   span id
     ints.(base+1)   cause id (0 = none)
     ints.(base+2)   header: bits 0-2 kind, bits 3-4 drop reason,
                     bit 5 wide flag; for compact message spans also
                     bits 6-25 src+1, bits 26-45 dst, bits 46-61 the
                     packed plane/msg code; bit 62 marks a fused
                     send/recv pair
     ints.(base+3..6) a b c d — kind-specific fields; for wide message
                     spans a=src, b=dst, c=plane code, d=msg code
     floats.(fbase+0) time
     floats.(fbase+1) aux (Timeout's [after])

   A fused pair cell (bit 62) encodes a synchronously delivered message
   — a [Send] at [id] immediately resolved by a [Recv] at [id + 1]
   whose cause is the send — in one compact cell: three stores total,
   and the cause slot is never read, so it is never written.  That cell
   is the always-on budget: everything else about a delivery (decision
   logic, eviction counting, emitted totals) is either precomputed into
   one flag ([fast]) or derived lazily at drain time.

   Strings (plane, msg, mark label/detail) are interned per trace into a
   dense code table; message spans carry [pm = plane_code lsl 8 lor
   msg_code], precomputed once by the caller (see {!intern_message}), so
   an emit does no string work at all. *)

let cell_ints = 8
let cell_floats = 2

let k_send = 0
let k_recv = 1
let k_drop = 2
let k_retry = 3
let k_timeout = 4
let k_repair = 5
let k_migration = 6
let k_mark = 7

(* Bit 62 of the header: this compact cell is a fused Send+Recv pair. *)
let pair_bit = 1 lsl 62

let reason_code : Span.drop_reason -> int = function
  | Span.Down -> 0
  | Span.Lost -> 1
  | Span.Blocked -> 2
  | Span.Shed -> 3

let reason_of_code = function
  | 0 -> Span.Down
  | 1 -> Span.Lost
  | 2 -> Span.Blocked
  | _ -> Span.Shed

type t = {
  capacity : int;
  mutable ints : int array;
  mutable floats : float array;
  mutable slots : int; (* allocated slot count, a power of two *)
  mutable mask : int; (* slots - 1 *)
  mutable head : int; (* next slot to write *)
  mutable count : int; (* retained cells, <= capacity *)
  mutable on_evict : int -> unit;
  mutable evict_reported : int; (* drops already pushed to [on_evict] *)
  (* Intern table.  Codes are dense, and survive {!clear} so message
     coders precomputed against this trace stay valid across runs. *)
  mutable strings : string array;
  mutable plane_pass : Bytes.t; (* per-code verdict of the plane filter *)
  mutable n_strings : int;
  codes : (string, int) Hashtbl.t;
  sample : float;
  planes : string list option;
  record_all : bool; (* sample = 1.0 and no plane filter *)
  mutable sinks : Sink.t list; (* attachment order *)
  mutable eager : bool; (* sinks <> []: decode and stream per emit *)
  mutable on : bool;
  mutable fast : bool; (* on && record_all && not eager, precomputed *)
  mutable next_id : int;
  mutable ring_sampled : int; (* sampled/filtered out by this trace *)
  mutable emitted_adjust : int; (* absorb's correction to the derived total *)
  mutable carried_dropped : int; (* inherited from absorbed children *)
  mutable carried_sampled : int;
}

let pow2_at_least n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(capacity = 4096) ?(sample = 1.0) ?planes () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  if not (sample > 0.0 && sample <= 1.0) then
    invalid_arg "Trace.create: sample must be in (0, 1]";
  let slots = min 64 (pow2_at_least capacity) in
  { capacity;
    ints = Array.make (slots * cell_ints) 0;
    floats = Array.make (slots * cell_floats) 0.;
    slots;
    mask = slots - 1;
    head = 0;
    count = 0;
    on_evict = (fun _ -> ());
    evict_reported = 0;
    strings = Array.make 16 "";
    plane_pass = Bytes.make 16 '\000';
    n_strings = 0;
    codes = Hashtbl.create 32;
    sample;
    planes;
    record_all = (sample >= 1.0 && planes = None);
    sinks = [];
    eager = false;
    on = false;
    fast = false;
    next_id = 1;
    ring_sampled = 0;
    emitted_adjust = 0;
    carried_dropped = 0;
    carried_sampled = 0 }

let[@inline always] enabled t = t.on

let set_enabled t on =
  t.on <- on;
  t.fast <- on && t.record_all && not t.eager

let capacity t = t.capacity
let sample_rate t = t.sample
let plane_filter t = t.planes
let set_evict_hook t f = t.on_evict <- f

let add_sink t sink =
  t.sinks <- t.sinks @ [ sink ];
  t.eager <- true;
  t.fast <- false

(* {2 Interning} *)

let intern t s =
  match Hashtbl.find_opt t.codes s with
  | Some c -> c
  | None ->
    let c = t.n_strings in
    if c = Array.length t.strings then begin
      let strings = Array.make (2 * c) "" in
      Array.blit t.strings 0 strings 0 c;
      t.strings <- strings;
      let pass = Bytes.make (2 * c) '\000' in
      Bytes.blit t.plane_pass 0 pass 0 c;
      t.plane_pass <- pass
    end;
    t.strings.(c) <- s;
    Bytes.set t.plane_pass c
      (match t.planes with
      | None -> '\001'
      | Some ps -> if List.mem s ps then '\001' else '\000');
    Hashtbl.add t.codes s c;
    t.n_strings <- c + 1;
    c

let intern_message t ~plane ~msg =
  let p = intern t plane and m = intern t msg in
  if p > 0xff || m > 0xff then
    invalid_arg "Trace.intern_message: more than 256 distinct interned strings";
  (p lsl 8) lor m

(* {2 Sampling}

   Every emit mints an id whether or not the span is kept, so surviving
   spans carry exactly the ids they would in an unsampled run (a sampled
   JSONL is a line-subset of the unsampled one), and the keep decision —
   a pure hash of the id — replays identically at any [--jobs] split. *)

(* A pure xorshift-style scramble over native ints: no boxing, so a
   sampled-out emit stays allocation-free.  Only the low 53 bits feed
   the uniform; quality is ample for keep/drop coins. *)
let[@inline always] keep_coin t id =
  let h = id * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x106689D45497FDB5 in
  let h = h lxor (h lsr 32) in
  float_of_int (h land 0x1FFFFFFFFFFFFF) *. 0x1p-53 < t.sample

(* Mint the next id and decide whether to record.  Positive result:
   record under that id.  Negative: minted but sampled/filtered out —
   callers thread the negative id into children's [cause], so a whole
   causal tree stays out together and no kept span can dangle.  The
   decision is made once at the root (cause = 0); children inherit. *)
let decide t ~cause ~plane_code =
  let id = t.next_id in
  t.next_id <- id + 1;
  if cause > 0 then id
  else if cause < 0 then begin
    t.ring_sampled <- t.ring_sampled + 1;
    -id
  end
  else if
    t.record_all
    || (plane_code < 0 || Bytes.unsafe_get t.plane_pass plane_code <> '\000')
       && (t.sample >= 1.0 || keep_coin t id)
  then id
  else begin
    t.ring_sampled <- t.ring_sampled + 1;
    -id
  end

(* {2 Derived totals}

   The emit path maintains no counters beyond [next_id] (and
   [ring_sampled], off the record-all path): everything else falls out
   at drain time.  Locally, every minted id was either recorded or
   counted sampled-out, so

     emitted = (next_id - 1) - ring_sampled + emitted_adjust

   where [emitted_adjust] is {!absorb}'s correction (a child advances
   [next_id] by its whole id watermark but re-records only its retained
   spans).  Every recorded span is either still retained or was evicted,
   so ring evictions are [emitted - retained]. *)

let emitted t = t.next_id - 1 - t.ring_sampled + t.emitted_adjust

(* {2 The coded ring} *)

let grow t =
  let slots = t.slots * 2 in
  let ints = Array.make (slots * cell_ints) 0 in
  Array.blit t.ints 0 ints 0 (t.count * cell_ints);
  let floats = Array.make (slots * cell_floats) 0. in
  Array.blit t.floats 0 floats 0 (t.count * cell_floats);
  t.ints <- ints;
  t.floats <- floats;
  t.slots <- slots;
  t.mask <- slots - 1;
  (* The ring has never evicted when it grows, so the live cells are the
     prefix [0, count) — but [head] already wrapped at the old mask;
     point it past the blitted prefix again. *)
  t.head <- t.count

(* Claim the next slot.  Once [capacity] cells are retained the ring
   stops counting and [head] simply laps the oldest cells; evictions are
   derived at drain time, not counted here.  Before the first lap the
   ring has never wrapped ([head = count]), which is what lets [grow]
   blit the live prefix. *)
let reserve t =
  if t.count < t.capacity then begin
    if t.count = t.slots then grow t;
    t.count <- t.count + 1
  end;
  let slot = t.head in
  t.head <- (slot + 1) land t.mask;
  slot

(* The hot writer: a message span whose actor code, dst and packed
   plane/msg code all fit the compact header (they do unless a run has
   over a million servers).  [src] is the actor code: -1 client,
   otherwise the server index.  The slot indices are in range by
   construction ([reserve] keeps head under [mask]), hence the unsafe
   stores. *)
let write_msg t ~id ~cause ~kind ~reason ~src ~dst ~pm ~time =
  let slot = reserve t in
  let ints = t.ints in
  let base = slot * cell_ints in
  Array.unsafe_set ints base id;
  Array.unsafe_set ints (base + 1) cause;
  let s = src + 1 in
  if (s lor dst) lsr 20 = 0 then
    Array.unsafe_set ints (base + 2)
      (kind lor (reason lsl 3) lor (s lsl 6) lor (dst lsl 26) lor (pm lsl 46))
  else begin
    Array.unsafe_set ints (base + 2) (kind lor (reason lsl 3) lor 32);
    Array.unsafe_set ints (base + 3) src;
    Array.unsafe_set ints (base + 4) dst;
    Array.unsafe_set ints (base + 5) (pm lsr 8);
    Array.unsafe_set ints (base + 6) (pm land 0xff)
  end;
  Array.unsafe_set t.floats (slot * cell_floats) time;
  slot

(* The wide writer: rare kinds, and message spans whose fields overflow
   the compact header (arbitrary ints from the compat {!emit}). *)
let write_wide t ~id ~cause ~kind ~reason ~a ~b ~c ~d ~time ~aux =
  let slot = reserve t in
  let ints = t.ints in
  let base = slot * cell_ints in
  Array.unsafe_set ints base id;
  Array.unsafe_set ints (base + 1) cause;
  Array.unsafe_set ints (base + 2) (kind lor (reason lsl 3) lor 32);
  Array.unsafe_set ints (base + 3) a;
  Array.unsafe_set ints (base + 4) b;
  Array.unsafe_set ints (base + 5) c;
  Array.unsafe_set ints (base + 6) d;
  let fbase = slot * cell_floats in
  Array.unsafe_set t.floats fbase time;
  Array.unsafe_set t.floats (fbase + 1) aux;
  slot

(* {2 Decoding} — the lazy inverse of the writers. *)

let decode t slot =
  let ints = t.ints in
  let base = slot * cell_ints in
  let id = ints.(base) in
  let cause = match ints.(base + 1) with 0 -> None | c -> Some c in
  let h = ints.(base + 2) in
  let fbase = slot * cell_floats in
  let time = t.floats.(fbase) in
  let kind =
    match h land 7 with
    | (0 | 1 | 2) as k ->
      let src, dst, plane, msg =
        if h land 32 <> 0 then
          ( ints.(base + 3),
            ints.(base + 4),
            t.strings.(ints.(base + 5)),
            t.strings.(ints.(base + 6)) )
        else
          let pm = (h lsr 46) land 0xffff in
          ( ((h lsr 6) land 0xfffff) - 1,
            (h lsr 26) land 0xfffff,
            t.strings.(pm lsr 8),
            t.strings.(pm land 0xff) )
      in
      let src = if src < 0 then Span.Client else Span.Server src in
      if k = k_send then Span.Send { src; dst; plane; msg }
      else if k = k_recv then Span.Recv { src; dst; plane; msg }
      else Span.Drop { src; dst; plane; msg; reason = reason_of_code ((h lsr 3) land 3) }
    | 3 -> Span.Retry { dst = ints.(base + 3); attempt = ints.(base + 4) }
    | 4 -> Span.Timeout { dst = ints.(base + 3); after = t.floats.(fbase + 1) }
    | 5 ->
      Span.Repair_round
        { coordinator = ints.(base + 3);
          tick = ints.(base + 4);
          re_replications = ints.(base + 5);
          trims = ints.(base + 6) }
    | 6 ->
      Span.Migration { entry = ints.(base + 3); src = ints.(base + 4); dst = ints.(base + 5) }
    | _ -> Span.Mark { label = t.strings.(ints.(base + 3)); detail = t.strings.(ints.(base + 4)) }
  in
  { Span.id; time; cause; kind }

(* Apply [f] to each span in a cell, oldest first — one span, or the
   Send then the Recv of a fused pair cell (whose cause slot was never
   written: the send is a root, the recv's cause is the send). *)
let iter_slot t slot f =
  let base = slot * cell_ints in
  let h = t.ints.(base + 2) in
  if h land pair_bit = 0 then f (decode t slot)
  else begin
    let id = t.ints.(base) in
    let time = t.floats.(slot * cell_floats) in
    let pm = (h lsr 46) land 0xffff in
    let src = ((h lsr 6) land 0xfffff) - 1 in
    let src = if src < 0 then Span.Client else Span.Server src in
    let dst = (h lsr 26) land 0xfffff in
    let plane = t.strings.(pm lsr 8) and msg = t.strings.(pm land 0xff) in
    f { Span.id; time; cause = None; kind = Span.Send { src; dst; plane; msg } };
    f
      { Span.id = id + 1;
        time;
        cause = Some id;
        kind = Span.Recv { src; dst; plane; msg } }
  end

(* Retained spans: cells, with pair cells counting twice. *)
let length t =
  let n = ref 0 in
  let start = (t.head - t.count) land t.mask in
  for i = 0 to t.count - 1 do
    let h = t.ints.((((start + i) land t.mask) * cell_ints) + 2) in
    n := !n + (if h land pair_bit = 0 then 1 else 2)
  done;
  !n

let dropped t = emitted t - length t + t.carried_dropped
let sampled_out t = t.ring_sampled + t.carried_sampled

(* Push newly derived evictions to the hook ({!Obs} mirrors them into
   the metrics registry).  Called wherever the ring's contents become
   observable — drain, merge, flush, disable, clear — rather than per
   eviction, which keeps the hot path free of callback dispatch. *)
let sync_evicted t =
  let d = dropped t in
  if d > t.evict_reported then begin
    let delta = d - t.evict_reported in
    t.evict_reported <- d;
    t.on_evict delta
  end

let notify t slot = iter_slot t slot (fun span -> List.iter (fun sink -> Sink.emit sink span) t.sinks)

(* {2 Coded emitters} — the allocation-free hot interface.

   Each emitter is a small [@inline always] wrapper whose fast path —
   record-all tracing, no sinks, fields that fit the compact header —
   claims a slot and stores the cell inline at the call site (cmx bodies
   make the attribute work across modules even in classic mode); every
   other case falls to an out-of-line general body. *)

(* Claim the next slot on the fast path: in steady state (ring full) a
   lap is just a masked bump; while the ring is still filling, fall to
   the general [reserve]. *)
let[@inline always] claim t =
  if t.count = t.capacity then begin
    let slot = t.head in
    t.head <- (slot + 1) land t.mask;
    slot
  end
  else reserve t

let emit_send_gen t ~time ~src ~dst ~pm =
  if not t.on then 0
  else begin
    let id = decide t ~cause:0 ~plane_code:(pm lsr 8) in
    if id > 0 then begin
      let slot = write_msg t ~id ~cause:0 ~kind:k_send ~reason:0 ~src ~dst ~pm ~time in
      if t.eager then notify t slot
    end;
    id
  end

let[@inline always] emit_send t ~time ~src ~dst ~pm =
  let s = src + 1 in
  if t.fast && (s lor dst) lsr 20 = 0 then begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let slot = claim t in
    let base = slot * cell_ints in
    let ints = t.ints in
    Array.unsafe_set ints base id;
    Array.unsafe_set ints (base + 1) 0;
    Array.unsafe_set ints (base + 2) (k_send lor (s lsl 6) lor (dst lsl 26) lor (pm lsl 46));
    Array.unsafe_set t.floats (slot * cell_floats) time;
    id
  end
  else if
    t.on && t.sample < 1.0
    && (s lor dst) lsr 20 = 0
    && Bytes.unsafe_get t.plane_pass (pm lsr 8) <> '\000'
  then begin
    (* Sampled root: make the coin flip inline so the sampled-out common
       case stores nothing and never boxes [time] across a call. *)
    let id = t.next_id in
    if keep_coin t id then emit_send_gen t ~time ~src ~dst ~pm
    else begin
      t.next_id <- id + 1;
      t.ring_sampled <- t.ring_sampled + 1;
      -id
    end
  end
  else emit_send_gen t ~time ~src ~dst ~pm

let emit_recv_gen t ~time ~cause ~src ~dst ~pm =
  if t.on then begin
    let id = decide t ~cause ~plane_code:(pm lsr 8) in
    if id > 0 then begin
      let cause = if cause > 0 then cause else 0 in
      let slot = write_msg t ~id ~cause ~kind:k_recv ~reason:0 ~src ~dst ~pm ~time in
      if t.eager then notify t slot
    end
  end

let[@inline always] emit_recv t ~time ~cause ~src ~dst ~pm =
  let s = src + 1 in
  if t.fast && cause >= 0 && (s lor dst) lsr 20 = 0 then begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let slot = claim t in
    let base = slot * cell_ints in
    let ints = t.ints in
    Array.unsafe_set ints base id;
    Array.unsafe_set ints (base + 1) cause;
    Array.unsafe_set ints (base + 2) (k_recv lor (s lsl 6) lor (dst lsl 26) lor (pm lsl 46));
    Array.unsafe_set t.floats (slot * cell_floats) time
  end
  else if t.on && cause < 0 then begin
    (* Parent sampled out: the child follows it out, no stores. *)
    t.next_id <- t.next_id + 1;
    t.ring_sampled <- t.ring_sampled + 1
  end
  else emit_recv_gen t ~time ~cause ~src ~dst ~pm

let emit_drop_gen t ~time ~cause ~src ~dst ~pm ~reason =
  if t.on then begin
    let id = decide t ~cause ~plane_code:(pm lsr 8) in
    if id > 0 then begin
      let cause = if cause > 0 then cause else 0 in
      let slot =
        write_msg t ~id ~cause ~kind:k_drop ~reason:(reason_code reason) ~src ~dst ~pm ~time
      in
      if t.eager then notify t slot
    end
  end

let[@inline always] emit_drop t ~time ~cause ~src ~dst ~pm ~reason =
  let s = src + 1 in
  if t.fast && cause >= 0 && (s lor dst) lsr 20 = 0 then begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let slot = claim t in
    let base = slot * cell_ints in
    let ints = t.ints in
    Array.unsafe_set ints base id;
    Array.unsafe_set ints (base + 1) cause;
    Array.unsafe_set ints (base + 2)
      (k_drop lor (reason_code reason lsl 3) lor (s lsl 6) lor (dst lsl 26) lor (pm lsl 46));
    Array.unsafe_set t.floats (slot * cell_floats) time
  end
  else if t.on && cause < 0 then begin
    t.next_id <- t.next_id + 1;
    t.ring_sampled <- t.ring_sampled + 1
  end
  else emit_drop_gen t ~time ~cause ~src ~dst ~pm ~reason

(* The unfused fallback: sampling, plane filters, eager sinks, or fields
   too big for the compact header.  The pair is one causal tree, so the
   keep decision is made once — exactly what chaining {!emit_send} and
   {!emit_recv} through the returned id would decide, minus a level of
   calls on the sampled-out path. *)
let emit_send_recv_slow t ~time ~src ~dst ~pm =
  let id = t.next_id in
  t.next_id <- id + 2;
  if
    t.record_all
    || Bytes.unsafe_get t.plane_pass (pm lsr 8) <> '\000'
       && (t.sample >= 1.0 || keep_coin t id)
  then begin
    let slot = write_msg t ~id ~cause:0 ~kind:k_send ~reason:0 ~src ~dst ~pm ~time in
    if t.eager then notify t slot;
    let slot = write_msg t ~id:(id + 1) ~cause:id ~kind:k_recv ~reason:0 ~src ~dst ~pm ~time in
    if t.eager then notify t slot;
    id
  end
  else begin
    t.ring_sampled <- t.ring_sampled + 2;
    -id
  end

(* The fused hot pair: one delivered message = one [Send] plus its
   cause-linked [Recv], written as a single pair cell — three stores and
   no counter maintenance.  This is the per-delivery cost the <10%
   always-on budget is spent on, so the fast path is kept small enough
   to inline into callers ([@inline always] reaches across modules via
   cmx even in classic mode).  Returns the [Send]'s id (the [Recv] is
   the next one). *)
let[@inline always] emit_send_recv t ~time ~src ~dst ~pm =
  let s = src + 1 in
  if t.fast && (s lor dst) lsr 20 = 0 then begin
    let id = t.next_id in
    t.next_id <- id + 2;
    let slot =
      if t.count = t.capacity then begin
        (* steady state: lap the ring, no counting *)
        let slot = t.head in
        t.head <- (slot + 1) land t.mask;
        slot
      end
      else reserve t
    in
    let base = slot * cell_ints in
    let ints = t.ints in
    Array.unsafe_set ints base id;
    Array.unsafe_set ints (base + 2)
      (k_send lor pair_bit lor (s lsl 6) lor (dst lsl 26) lor (pm lsl 46));
    Array.unsafe_set t.floats (slot * cell_floats) time;
    id
  end
  else if not t.on then 0
  else if
    t.sample < 1.0
    && (s lor dst) lsr 20 = 0
    && Bytes.unsafe_get t.plane_pass (pm lsr 8) <> '\000'
  then begin
    (* Sampled pair: flip the coin inline; the sampled-out common case
       stores nothing and never boxes [time] across a call. *)
    let id = t.next_id in
    if keep_coin t id then emit_send_recv_slow t ~time ~src ~dst ~pm
    else begin
      t.next_id <- id + 2;
      t.ring_sampled <- t.ring_sampled + 2;
      -id
    end
  end
  else emit_send_recv_slow t ~time ~src ~dst ~pm

(* Shared tail of the non-message emitters (these kinds ignore the plane
   filter: they are not message traffic). *)
let emit_plain t ~time ~cause ~kind ~a ~b ~c ~d ~aux =
  let id = decide t ~cause ~plane_code:(-1) in
  if id > 0 then begin
    let cause = if cause > 0 then cause else 0 in
    let slot = write_wide t ~id ~cause ~kind ~reason:0 ~a ~b ~c ~d ~time ~aux in
    if t.eager then notify t slot
  end;
  id

(* The wide fast path: same record-all/no-sink preconditions as the
   compact one, inlined so the float arguments never box between the
   call site and the cell stores. *)
let[@inline always] emit_wide_fast t ~time ~cause ~kind ~a ~b ~c ~d ~aux =
  let id = t.next_id in
  t.next_id <- id + 1;
  let slot = claim t in
  let base = slot * cell_ints in
  let ints = t.ints in
  Array.unsafe_set ints base id;
  Array.unsafe_set ints (base + 1) cause;
  Array.unsafe_set ints (base + 2) (kind lor 32);
  Array.unsafe_set ints (base + 3) a;
  Array.unsafe_set ints (base + 4) b;
  Array.unsafe_set ints (base + 5) c;
  Array.unsafe_set ints (base + 6) d;
  let fbase = slot * cell_floats in
  Array.unsafe_set t.floats fbase time;
  Array.unsafe_set t.floats (fbase + 1) aux;
  id

let[@inline always] emit_timeout t ~time ~dst ~after =
  if t.fast then emit_wide_fast t ~time ~cause:0 ~kind:k_timeout ~a:dst ~b:0 ~c:0 ~d:0 ~aux:after
  else if not t.on then 0
  else emit_plain t ~time ~cause:0 ~kind:k_timeout ~a:dst ~b:0 ~c:0 ~d:0 ~aux:after

let[@inline always] emit_retry t ~time ~cause ~dst ~attempt =
  if t.fast && cause >= 0 then
    ignore (emit_wide_fast t ~time ~cause ~kind:k_retry ~a:dst ~b:attempt ~c:0 ~d:0 ~aux:0.)
  else if t.on then
    ignore (emit_plain t ~time ~cause ~kind:k_retry ~a:dst ~b:attempt ~c:0 ~d:0 ~aux:0.)

let emit_repair_round t ~time ~coordinator ~tick ~re_replications ~trims =
  if t.on then
    ignore
      (emit_plain t ~time ~cause:0 ~kind:k_repair ~a:coordinator ~b:tick ~c:re_replications
         ~d:trims ~aux:0.)

let[@inline always] emit_migration t ~time ~entry ~src ~dst =
  if t.fast then
    ignore (emit_wide_fast t ~time ~cause:0 ~kind:k_migration ~a:entry ~b:src ~c:dst ~d:0 ~aux:0.)
  else if t.on then
    ignore (emit_plain t ~time ~cause:0 ~kind:k_migration ~a:entry ~b:src ~c:dst ~d:0 ~aux:0.)

(* {2 The compat boxed interface} — encodes a {!Span.kind} into cells;
   used by tests, marks and {!absorb}'s re-recording. *)

(* Encode one already-decided span.  Message spans take the compact
   header when their fields fit, the wide form otherwise (so arbitrary
   ints round-trip). *)
let write_span t ~id ~cause ~time (kind : Span.kind) =
  let msg_span k reason src dst plane msg =
    let p = intern t plane and m = intern t msg in
    let a = match (src : Span.actor) with Span.Client -> -1 | Span.Server i -> i in
    if p < 0x100 && m < 0x100 && a >= -1 && dst >= 0 && ((a + 1) lor dst) lsr 20 = 0 then
      write_msg t ~id ~cause ~kind:k ~reason ~src:a ~dst ~pm:((p lsl 8) lor m) ~time
    else write_wide t ~id ~cause ~kind:k ~reason ~a ~b:dst ~c:p ~d:m ~time ~aux:0.
  in
  match kind with
  | Span.Send { src; dst; plane; msg } -> msg_span k_send 0 src dst plane msg
  | Span.Recv { src; dst; plane; msg } -> msg_span k_recv 0 src dst plane msg
  | Span.Drop { src; dst; plane; msg; reason } ->
    msg_span k_drop (reason_code reason) src dst plane msg
  | Span.Retry { dst; attempt } ->
    write_wide t ~id ~cause ~kind:k_retry ~reason:0 ~a:dst ~b:attempt ~c:0 ~d:0 ~time ~aux:0.
  | Span.Timeout { dst; after } ->
    write_wide t ~id ~cause ~kind:k_timeout ~reason:0 ~a:dst ~b:0 ~c:0 ~d:0 ~time ~aux:after
  | Span.Repair_round { coordinator; tick; re_replications; trims } ->
    write_wide t ~id ~cause ~kind:k_repair ~reason:0 ~a:coordinator ~b:tick ~c:re_replications
      ~d:trims ~time ~aux:0.
  | Span.Migration { entry; src; dst } ->
    write_wide t ~id ~cause ~kind:k_migration ~reason:0 ~a:entry ~b:src ~c:dst ~d:0 ~time
      ~aux:0.
  | Span.Mark { label; detail } ->
    write_wide t ~id ~cause ~kind:k_mark ~reason:0 ~a:(intern t label) ~b:(intern t detail)
      ~c:0 ~d:0 ~time ~aux:0.

let plane_code_of t (kind : Span.kind) =
  match kind with
  | Span.Send { plane; _ } | Span.Recv { plane; _ } | Span.Drop { plane; _ } -> intern t plane
  | _ -> -1

let emit t ~time ?cause kind =
  if not t.on then 0
  else begin
    let cause = match cause with None -> 0 | Some c -> c in
    let id = decide t ~cause ~plane_code:(plane_code_of t kind) in
    if id > 0 then begin
      let cause = if cause > 0 then cause else 0 in
      let slot = write_span t ~id ~cause ~time kind in
      if t.eager then notify t slot
    end;
    id
  end

let record t ~time ~label detail = ignore (emit t ~time (Span.Mark { label; detail }))

(* {2 Draining} *)

let spans t =
  sync_evicted t;
  let acc = ref [] in
  let start = (t.head - t.count) land t.mask in
  for i = 0 to t.count - 1 do
    iter_slot t ((start + i) land t.mask) (fun s -> acc := s :: !acc)
  done;
  List.rev !acc

let clear t =
  sync_evicted t;
  t.head <- 0;
  t.count <- 0;
  t.next_id <- 1;
  t.ring_sampled <- 0;
  t.emitted_adjust <- 0;
  t.carried_dropped <- 0;
  t.carried_sampled <- 0;
  t.evict_reported <- 0

let absorb t child =
  (* Shift the child's ids past our watermark so cause links stay
     unambiguous after the merge; causes pointing at spans the child's
     ring already evicted keep their (shifted) ids — dangling but
     honest, and accounted for by [dropped]. *)
  let offset = t.next_id - 1 in
  let merged = ref 0 in
  let start = (child.head - child.count) land child.mask in
  for i = 0 to child.count - 1 do
    iter_slot child ((start + i) land child.mask) (fun s ->
        incr merged;
        let cause = match s.Span.cause with None -> 0 | Some c -> c + offset in
        let slot = write_span t ~id:(s.Span.id + offset) ~cause ~time:s.Span.time s.Span.kind in
        if t.eager then notify t slot)
  done;
  t.next_id <- t.next_id + (child.next_id - 1);
  (* The child advanced our watermark by its whole minted range but
     contributed only its retained spans to the recorded total. *)
  t.emitted_adjust <- t.emitted_adjust + !merged - (child.next_id - 1);
  t.carried_dropped <- t.carried_dropped + (emitted child - !merged + child.carried_dropped);
  t.carried_sampled <- t.carried_sampled + child.ring_sampled + child.carried_sampled;
  sync_evicted t

let flush t =
  sync_evicted t;
  List.iter Sink.flush t.sinks

let dump t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun span -> Buffer.add_string buf (Format.asprintf "%a@." Span.pp span))
    (spans t);
  Buffer.contents buf
