(** The deterministic Monte-Carlo fan-out shared by every experiment.

    All parallelism in the reproduction flows through these two
    functions, and both enforce the determinism contract documented in
    DESIGN.md ("Performance"):

    - each unit of work is a self-contained closure of its index — it
      derives any randomness from a seed that is a pure function of the
      index (usually {!Ctx.run_seed}) and touches no state shared with
      other units;
    - results come back as an array {e indexed by input position}, and
      callers aggregate by walking that array in order.

    Together these make every experiment's output byte-identical at any
    [ctx.jobs] value: scheduling only changes {e when} a replicate
    runs, never what it computes nor the order it is folded in.

    [?workers] overrides the worker count (default [ctx.jobs]):
    experiments whose replicate fan-out is their {e only} parallelism
    opportunity pass [Ctx.workers ctx] so the [--shards] budget folds
    into the same axis (DESIGN.md, "Parallelism").  The override never
    changes results, only scheduling. *)

val map : ?workers:int -> Ctx.t -> count:int -> (int -> 'a) -> 'a array
(** [map ctx ~count f] is [| f 0; f 1; ...; f (count-1) |], computed by
    up to [ctx.jobs] (or [workers]) workers ({!Plookup_util.Pool.map}).
    Use this when the experiment derives its own composite seed from
    the index. *)

val replicates : ?workers:int -> Ctx.t -> count:int -> (seed:int -> 'a) -> 'a array
(** [replicates ctx ~count f] runs [count] Monte-Carlo replicates,
    handing replicate [i] (1-based, matching the historical
    [for run = 1 to runs] loops) the seed [Ctx.run_seed ctx i]. *)

val map_obs :
  ?workers:int -> Ctx.t -> count:int -> (int -> obs:Plookup_obs.Obs.t -> 'a) -> 'a array
(** {!map}, with observability threaded: each unit receives a fresh
    child of [ctx.obs] (pass it to the services it builds — workers
    never share mutable metric cells), and every child is merged back
    into [ctx.obs] in input order once all units finish.  Registry
    snapshot and trace contents are therefore byte-identical at any
    [ctx.jobs]. *)

val replicates_obs :
  ?workers:int -> Ctx.t -> count:int -> (seed:int -> obs:Plookup_obs.Obs.t -> 'a) -> 'a array
(** {!replicates} with the {!map_obs} observability threading. *)

val mean_of : float array -> float
(** Left-to-right mean of the samples ({!Plookup_util.Stats.Accum}) —
    the ordered aggregation for the common "average the replicates"
    case. *)
