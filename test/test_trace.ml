open Plookup_obs

let detail span =
  match span.Span.kind with
  | Span.Mark { detail; _ } -> detail
  | _ -> Alcotest.fail "expected a mark span"

let mark_label span =
  match span.Span.kind with
  | Span.Mark { label; _ } -> label
  | _ -> Alcotest.fail "expected a mark span"

let test_disabled_by_default () =
  let t = Trace.create () in
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Trace.record t ~time:1. ~label:"x" "dropped";
  Helpers.check_int "nothing recorded" 0 (Trace.length t);
  Helpers.check_int "nothing emitted" 0 (Trace.emitted t)

let test_record_and_read () =
  let t = Trace.create () in
  Trace.set_enabled t true;
  Trace.record t ~time:1. ~label:"send" "a";
  Trace.record t ~time:2. ~label:"recv" "b";
  Helpers.check_int "length" 2 (Trace.length t);
  match Trace.spans t with
  | [ r1; r2 ] ->
    Helpers.check_string "label 1" "send" (mark_label r1);
    Helpers.check_string "detail 2" "b" (detail r2);
    Helpers.close "time 1" 1. r1.Span.time;
    Helpers.check_int "monotone ids" (r1.Span.id + 1) r2.Span.id
  | _ -> Alcotest.fail "expected two spans"

let test_ring_eviction () =
  let t = Trace.create ~capacity:3 () in
  Trace.set_enabled t true;
  for i = 1 to 5 do
    Trace.record t ~time:(float_of_int i) ~label:"l" (string_of_int i)
  done;
  Helpers.check_int "capped" 3 (Trace.length t);
  Alcotest.(check (list string)) "oldest evicted" [ "3"; "4"; "5" ]
    (List.map detail (Trace.spans t))

(* Regression: eviction used to be silent, so a truncated dump was
   indistinguishable from a complete one.  The dropped count must say
   exactly how many spans a full dump is missing. *)
let test_eviction_is_counted () =
  let t = Trace.create ~capacity:3 () in
  Trace.set_enabled t true;
  Helpers.check_int "no drops yet" 0 (Trace.dropped t);
  for i = 1 to 10 do
    Trace.record t ~time:(float_of_int i) ~label:"l" (string_of_int i)
  done;
  Helpers.check_int "dropped = emitted - retained" 7 (Trace.dropped t);
  Helpers.check_int "emitted counts everything" 10 (Trace.emitted t);
  Helpers.check_int "invariant" (Trace.emitted t)
    (Trace.length t + Trace.dropped t)

let test_clear () =
  let t = Trace.create ~capacity:2 () in
  Trace.set_enabled t true;
  for i = 1 to 5 do
    Trace.record t ~time:0. ~label:"x" (string_of_int i)
  done;
  Trace.clear t;
  Helpers.check_int "cleared" 0 (Trace.length t);
  Helpers.check_int "dropped reset" 0 (Trace.dropped t);
  Trace.record t ~time:0. ~label:"x" "y";
  match Trace.spans t with
  | [ s ] -> Helpers.check_int "ids restart" 1 s.Span.id
  | _ -> Alcotest.fail "expected one span"

let test_dump () =
  let t = Trace.create () in
  Trace.set_enabled t true;
  Trace.record t ~time:1.5 ~label:"mark" "hello";
  let s = Trace.dump t in
  Alcotest.(check bool) "dump mentions label" true (Helpers.contains s "mark");
  Alcotest.(check bool) "dump mentions detail" true (Helpers.contains s "hello")

let test_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ()));
  Alcotest.check_raises "sample 0"
    (Invalid_argument "Trace.create: sample must be in (0, 1]") (fun () ->
      ignore (Trace.create ~sample:0.0 ()));
  Alcotest.check_raises "sample > 1"
    (Invalid_argument "Trace.create: sample must be in (0, 1]") (fun () ->
      ignore (Trace.create ~sample:1.5 ()))

let test_emit_returns_cause_ids () =
  let t = Trace.create () in
  Trace.set_enabled t true;
  let sid =
    Trace.emit t ~time:1.
      (Span.Send { src = Span.Client; dst = 0; plane = "data"; msg = "lookup" })
  in
  ignore
    (Trace.emit t ~time:2. ~cause:sid
       (Span.Recv { src = Span.Client; dst = 0; plane = "data"; msg = "lookup" }));
  match Trace.spans t with
  | [ s; r ] ->
    Helpers.check_int "send id" sid s.Span.id;
    (match r.Span.cause with
    | Some c -> Helpers.check_int "recv caused by send" sid c
    | None -> Alcotest.fail "recv has no cause")
  | _ -> Alcotest.fail "expected two spans"

let test_absorb_remaps_ids () =
  let parent = Trace.create () in
  Trace.set_enabled parent true;
  Trace.record parent ~time:0. ~label:"p" "1";
  Trace.record parent ~time:0. ~label:"p" "2";
  let child = Trace.create () in
  Trace.set_enabled child true;
  let sid = Trace.emit child ~time:1. (Span.Timeout { dst = 3; after = 5. }) in
  ignore (Trace.emit child ~time:1. ~cause:sid (Span.Retry { dst = 3; attempt = 2 }));
  Trace.absorb parent child;
  Helpers.check_int "all spans merged" 4 (Trace.length parent);
  let ids = List.map (fun s -> s.Span.id) (Trace.spans parent) in
  Alcotest.(check (list int)) "ids strictly increasing" [ 1; 2; 3; 4 ] ids;
  (match List.rev (Trace.spans parent) with
  | retry :: timeout :: _ ->
    (match retry.Span.cause with
    | Some c -> Helpers.check_int "cause remapped with ids" timeout.Span.id c
    | None -> Alcotest.fail "retry lost its cause")
  | _ -> Alcotest.fail "expected spans");
  (* Later emissions must not collide with absorbed ids. *)
  Trace.record parent ~time:2. ~label:"p" "3";
  let ids = List.map (fun s -> s.Span.id) (Trace.spans parent) in
  Alcotest.(check (list int)) "fresh id past watermark" [ 1; 2; 3; 4; 5 ] ids

let test_absorb_carries_drops () =
  let parent = Trace.create () in
  Trace.set_enabled parent true;
  let child = Trace.create ~capacity:2 () in
  Trace.set_enabled child true;
  for i = 1 to 5 do
    Trace.record child ~time:0. ~label:"c" (string_of_int i)
  done;
  Trace.absorb parent child;
  Helpers.check_int "child's evictions carried over" 3 (Trace.dropped parent);
  Alcotest.(check (list string)) "retained suffix merged" [ "4"; "5" ]
    (List.map detail (Trace.spans parent))

let test_jsonl_sink_sees_evicted_spans () =
  let path = Filename.temp_file "plookup_trace" ".jsonl" in
  let oc = open_out path in
  let t = Trace.create ~capacity:2 () in
  Trace.add_sink t (Sink.jsonl oc);
  Trace.set_enabled t true;
  for i = 1 to 5 do
    Trace.record t ~time:(float_of_int i) ~label:"l" (string_of_int i)
  done;
  Trace.flush t;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Helpers.check_int "every span streamed despite ring eviction" 5
    (List.length !lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "line is a JSON object" true
        (String.length line > 1 && line.[0] = '{'))
    !lines

let prop_keeps_last_k =
  Helpers.qcheck "ring keeps the most recent capacity spans"
    QCheck2.Gen.(pair (int_range 1 20) (list_size (int_range 0 100) small_int))
    (fun (capacity, xs) ->
      let t = Trace.create ~capacity () in
      Trace.set_enabled t true;
      List.iteri
        (fun i x -> Trace.record t ~time:(float_of_int i) ~label:"n" (string_of_int x))
        xs;
      let expected =
        let k = min capacity (List.length xs) in
        let rec last_k l = if List.length l <= k then l else last_k (List.tl l) in
        List.map string_of_int (last_k xs)
      in
      List.map detail (Trace.spans t) = expected
      && Trace.dropped t = max 0 (List.length xs - capacity))

(* Satellite: Span JSON must round-trip floats that %.6g would flatten
   (times and timeouts beyond 1e6 simulated units). *)
let test_span_float_precision () =
  let json_num json field =
    let needle = Printf.sprintf "\"%s\":" field in
    let rec find i =
      if i + String.length needle > String.length json then
        Alcotest.fail (Printf.sprintf "field %s not in %s" field json)
      else if String.sub json i (String.length needle) = needle then
        i + String.length needle
      else find (i + 1)
    in
    let start = find 0 in
    let stop = ref start in
    while
      !stop < String.length json && (match json.[!stop] with ',' | '}' -> false | _ -> true)
    do
      incr stop
    done;
    float_of_string (String.sub json start (!stop - start))
  in
  List.iter
    (fun x ->
      let span =
        { Span.id = 1; time = x; cause = None; kind = Span.Timeout { dst = 0; after = x } }
      in
      let json = Span.to_json span in
      Alcotest.(check (float 0.)) "time round-trips" x (json_num json "t");
      Alcotest.(check (float 0.)) "after round-trips" x (json_num json "after"))
    [ 8388608.1; 1048576.75; 12345678.5; 1e15 +. 0.5; 0.1; 3.25 ]

(* Sampling keeps or drops whole causal trees, decided at the root from
   a pure hash of the span id — so the sampled drain must be a strict
   subsequence of the unsampled drain with byte-identical per-span JSON,
   every retained cause must resolve, and the minted-span pool must
   account for every id. *)
let prop_sampled_subset =
  Helpers.qcheck "sampled drain is a subset with identical JSON"
    QCheck2.Gen.(pair (int_range 1 9) (list_size (int_range 0 120) (int_range 0 24)))
    (fun (tenths, ops) ->
      let run sample =
        let t = Trace.create ~capacity:4096 ?sample () in
        Trace.set_enabled t true;
        let pm_data = Trace.intern_message t ~plane:"data" ~msg:"lookup" in
        let pm_rep = Trace.intern_message t ~plane:"repair" ~msg:"re_replicate" in
        let last = ref 0 in
        List.iteri
          (fun i op ->
            let time = float_of_int i in
            match op mod 5 with
            | 0 -> last := Trace.emit_send t ~time ~src:(-1) ~dst:(op mod 7) ~pm:pm_data
            | 1 -> Trace.emit_recv t ~time ~cause:!last ~src:(-1) ~dst:(op mod 7) ~pm:pm_data
            | 2 ->
              ignore (Trace.emit_send_recv t ~time ~src:(op mod 3) ~dst:(op mod 7) ~pm:pm_rep)
            | 3 ->
              Trace.emit_drop t ~time ~cause:!last ~src:(op mod 3) ~dst:(op mod 7)
                ~pm:pm_data ~reason:Span.Lost
            | _ ->
              let tid = Trace.emit_timeout t ~time ~dst:(op mod 7) ~after:0.5 in
              Trace.emit_retry t ~time ~cause:tid ~dst:(op mod 7) ~attempt:2)
          ops;
        t
      in
      let full = run None in
      let smp = run (Some (float_of_int tenths /. 10.)) in
      let json t = List.map Span.to_json (Trace.spans t) in
      let rec subseq xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xt, y :: yt -> if String.equal x y then subseq xt yt else subseq xs yt
      in
      let ids = List.map (fun s -> s.Span.id) (Trace.spans smp) in
      let no_dangling =
        List.for_all
          (fun s -> match s.Span.cause with None -> true | Some c -> List.mem c ids)
          (Trace.spans smp)
      in
      subseq (json smp) (json full)
      && no_dangling
      && Trace.emitted smp + Trace.sampled_out smp = Trace.emitted full)

(* The coded ring must decode back exactly what was emitted, across the
   whole cell space: compact and wide actor codes, every drop reason,
   raw floats, interned strings. *)
let prop_decode_roundtrip =
  let open QCheck2.Gen in
  let actor =
    oneof
      [ return Span.Client;
        map (fun i -> Span.Server i) (int_range 0 1000);
        (* beyond the 20-bit compact header range: forces the wide form *)
        map (fun i -> Span.Server (2_000_000 + i)) (int_range 0 1000) ]
  in
  let dst = oneof [ int_range 0 1000; int_range 2_000_000 3_000_000 ] in
  let plane = oneofl [ "data"; "strategy"; "repair" ] in
  let msg = oneofl [ "lookup"; "add"; "delete"; "store_batch" ] in
  let reason = oneofl [ Span.Down; Span.Lost; Span.Blocked; Span.Shed ] in
  let time = map (fun i -> float_of_int i /. 7.) (int_range 0 10_000_000) in
  let kind =
    oneof
      [ map3 (fun src dst (plane, msg) -> Span.Send { src; dst; plane; msg }) actor dst
          (pair plane msg);
        map3 (fun src dst (plane, msg) -> Span.Recv { src; dst; plane; msg }) actor dst
          (pair plane msg);
        map3
          (fun src dst ((plane, msg), reason) -> Span.Drop { src; dst; plane; msg; reason })
          actor dst
          (pair (pair plane msg) reason);
        map2 (fun dst attempt -> Span.Retry { dst; attempt }) dst (int_range 2 100_000);
        map2 (fun dst after -> Span.Timeout { dst; after }) dst time;
        map3
          (fun coordinator tick (re_replications, trims) ->
            Span.Repair_round { coordinator; tick; re_replications; trims })
          dst (int_range 0 1_000_000)
          (pair (int_range 0 1_000_000) (int_range 0 1_000_000));
        map3 (fun entry src dst -> Span.Migration { entry; src; dst })
          (int_range 0 10_000_000) dst dst;
        map2 (fun label detail -> Span.Mark { label; detail }) plane msg ]
  in
  Helpers.qcheck "coded cells decode back to the emitted span"
    (pair time (small_list kind))
    (fun (t0, kinds) ->
      let t = Trace.create ~capacity:4096 () in
      Trace.set_enabled t true;
      List.iteri (fun i k -> ignore (Trace.emit t ~time:(t0 +. float_of_int i) k)) kinds;
      let decoded = Trace.spans t in
      List.length decoded = List.length kinds
      && List.for_all2
           (fun k s -> s.Span.kind = k)
           kinds decoded
      && List.for_all2
           (fun i s -> s.Span.time = t0 +. float_of_int i)
           (List.init (List.length decoded) Fun.id)
           decoded)

let () =
  Helpers.run "trace"
    [ ( "trace",
        [ Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
          Alcotest.test_case "record/read" `Quick test_record_and_read;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "eviction is counted" `Quick test_eviction_is_counted;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "dump" `Quick test_dump;
          Alcotest.test_case "bad capacity" `Quick test_bad_capacity;
          Alcotest.test_case "emit/cause ids" `Quick test_emit_returns_cause_ids;
          Alcotest.test_case "absorb remaps ids" `Quick test_absorb_remaps_ids;
          Alcotest.test_case "absorb carries drops" `Quick test_absorb_carries_drops;
          Alcotest.test_case "jsonl sink sees everything" `Quick
            test_jsonl_sink_sees_evicted_spans;
          Alcotest.test_case "span float precision" `Quick test_span_float_precision;
          prop_keeps_last_k;
          prop_sampled_subset;
          prop_decode_roundtrip ] ) ]
