open Plookup
module Storage = Plookup_metrics.Storage
module Analytic = Plookup_metrics.Analytic

let test_measured_matches_analytic_deterministic () =
  (* For the deterministic strategies, measured == closed form. *)
  List.iter
    (fun config ->
      let service, _ = Helpers.placed_service ~n:10 ~h:100 config in
      Helpers.close
        (Service.config_name config)
        (Analytic.storage config ~n:10 ~h:100)
        (float_of_int (Storage.measured (Service.cluster service))))
    [ Service.full_replication; Service.fixed 20; Service.random_server 20;
      Service.round_robin 2 ]

let test_per_server () =
  let service, _ = Helpers.placed_service ~n:4 ~h:8 (Service.round_robin 1) in
  Alcotest.(check (list int)) "balanced" [ 2; 2; 2; 2 ]
    (Array.to_list (Storage.per_server (Service.cluster service)))

let test_imbalance () =
  let round, _ = Helpers.placed_service ~n:10 ~h:100 (Service.round_robin 2) in
  Alcotest.(check bool) "round balanced within y" true
    (Storage.imbalance (Service.cluster round) <= 2);
  let fixed, _ = Helpers.placed_service ~n:10 ~h:100 (Service.fixed 20) in
  Helpers.check_int "fixed perfectly balanced" 0 (Storage.imbalance (Service.cluster fixed))

let test_counts_failed_servers () =
  let service, _ = Helpers.placed_service ~n:4 ~h:8 Service.full_replication in
  let cluster = Service.cluster service in
  Cluster.fail cluster 0;
  Helpers.check_int "storage unchanged by failure" 32 (Storage.measured cluster)

let prop_measured_is_sum_of_per_server =
  Helpers.qcheck "measured = sum(per_server)"
    QCheck2.Gen.(int_range 1 40)
    (fun h ->
      let service, _ = Helpers.placed_service ~n:5 ~h (Service.hash 2) in
      let cluster = Service.cluster service in
      Storage.measured cluster
      = Array.fold_left ( + ) 0 (Storage.per_server cluster))

let () =
  Helpers.run "storage_metric"
    [ ( "storage",
        [ Alcotest.test_case "measured = analytic" `Quick
            test_measured_matches_analytic_deterministic;
          Alcotest.test_case "per_server" `Quick test_per_server;
          Alcotest.test_case "imbalance" `Quick test_imbalance;
          Alcotest.test_case "failed servers counted" `Quick test_counts_failed_servers;
          prop_measured_is_sum_of_per_server ] ) ]
