(* plookup — reproduce the tables and figures of "Partial Lookup
   Services" (Sun & Garcia-Molina) and poke at the strategies
   interactively. *)

open Cmdliner
module Experiments = Plookup_experiments
module Table = Plookup_util.Table

let seed_arg =
  let doc = "Master random seed; every run is deterministic given the seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let scale_arg =
  let doc =
    "Monte-Carlo scale multiplier.  1.0 reproduces each series in seconds; the paper's \
     own sample sizes correspond to roughly 50-100x (see EXPERIMENTS.md)."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"SCALE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for Monte-Carlo replicates.  Results are byte-identical at any \
     value; 0 means one worker per available core."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let resolve_jobs jobs =
  if jobs = 0 then Plookup_util.Pool.recommended_jobs () else jobs

let shards_arg =
  let doc =
    "Worker domains inside a single simulation or cell (intra-run parallelism; see \
     DESIGN.md \"Parallelism\").  Composes with $(b,--jobs); results are byte-identical \
     at any value; 0 means one worker per available core."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"SHARDS" ~doc)

let resolve_shards shards =
  if shards = 0 then Plookup_util.Pool.recommended_jobs () else shards

let loss_arg =
  let doc =
    "Ambient per-transmission message-loss probability for fault-aware experiments \
     (e.g. $(b,loss)); a non-zero value is also added to the loss sweep's rate list."
  in
  Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc)

let duplication_arg =
  let doc = "Ambient per-transmission duplication probability for fault-aware experiments." in
  Arg.(value & opt float 0.0 & info [ "duplication" ] ~docv:"P" ~doc)

let jitter_arg =
  let doc =
    "Ambient per-delivery delay jitter (max extra delay, in simulated ms) for \
     fault-aware experiments."
  in
  Arg.(value & opt float 0.0 & info [ "jitter" ] ~docv:"MS" ~doc)

let mttf_arg =
  let doc = "Mean time to failure per server, for the churn experiment (default 50)." in
  Arg.(value & opt (some float) None & info [ "mttf" ] ~docv:"TIME" ~doc)

let mttr_arg =
  let doc = "Mean time to recovery per server, for the churn experiment (default 50)." in
  Arg.(value & opt (some float) None & info [ "mttr" ] ~docv:"TIME" ~doc)

let horizon_arg =
  let doc =
    "Simulated duration of the churn experiment before $(b,--scale) is applied \
     (default 5000)."
  in
  Arg.(value & opt (some float) None & info [ "horizon" ] ~docv:"TIME" ~doc)

let repair_arg =
  let doc =
    "Self-healing mode compared against repair-off in the churn experiment: $(b,off) \
     (no repaired pass at all), $(b,sync) (digest recovery sync only) or $(b,full) \
     (sync + hinted handoff + repair daemon; the default)."
  in
  Arg.(value & opt (some string) None & info [ "repair" ] ~docv:"MODE" ~doc)

let grace_arg =
  let doc =
    "Repair daemon grace period: how long a server may be down before its entries are \
     re-replicated elsewhere (default 30)."
  in
  Arg.(value & opt (some float) None & info [ "grace" ] ~docv:"TIME" ~doc)

let repair_period_arg =
  let doc = "Interval between repair daemon passes (default 10)." in
  Arg.(value & opt (some float) None & info [ "repair-period" ] ~docv:"TIME" ~doc)

let hint_ttl_arg =
  let doc = "How long a buffered hint for a down server stays replayable (default 200)." in
  Arg.(value & opt (some float) None & info [ "hint-ttl" ] ~docv:"TIME" ~doc)

let hint_cap_arg =
  let doc = "Maximum hints buffered per buddy server, oldest evicted first (default 256)." in
  Arg.(value & opt (some int) None & info [ "hint-cap" ] ~docv:"N" ~doc)

let capacity_arg =
  let doc =
    "Overload model: per-server inbox queue limit for the production-day experiment \
     (default 8)."
  in
  Arg.(value & opt (some int) None & info [ "capacity" ] ~docv:"N" ~doc)

let service_rate_arg =
  let doc =
    "Overload model: messages each server can serve per simulated time unit (default 2)."
  in
  Arg.(value & opt (some float) None & info [ "service-rate" ] ~docv:"RATE" ~doc)

let deadline_arg =
  let doc =
    "Tail-tolerant client: per-lookup deadline budget in simulated ms (default 250)."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"MS" ~doc)

let hedge_arg =
  let doc =
    "Tail-tolerant client: latency quantile (exclusive, in (0, 100)) of the observed \
     lookup latency at which a hedged backup request is launched (default 95)."
  in
  Arg.(value & opt (some float) None & info [ "hedge" ] ~docv:"Q" ~doc)

let breaker_arg =
  let doc =
    "Tail-tolerant client: consecutive failures before a server's circuit breaker \
     opens (default 3)."
  in
  Arg.(value & opt (some int) None & info [ "breaker" ] ~docv:"N" ~doc)

let degrade_arg =
  let doc =
    "Gray-failure injection: service-time multiplier applied to two servers during the \
     flash crowd (default 25)."
  in
  Arg.(value & opt (some float) None & info [ "degrade" ] ~docv:"FACTOR" ~doc)

let cache_flag =
  let doc =
    "Client cache: add the tuned+cache cell to the production-day experiment — the \
     tail-tolerant client in front of a TTL'd LRU with singleflight coalescing — and \
     report messages per lookup and cache hit rate.  Implied by any other $(b,--cache-*) \
     / $(b,--swr) / $(b,--hotspot) flag."
  in
  Arg.(value & flag & info [ "cache" ] ~doc)

let cache_cap_arg =
  let doc = "Client cache: LRU capacity in entries (default 128)." in
  Arg.(value & opt (some int) None & info [ "cache-cap" ] ~docv:"N" ~doc)

let cache_ttl_arg =
  let doc =
    "Client cache: entry freshness window in simulated ms (default 10, the day \
     experiment's update period)."
  in
  Arg.(value & opt (some float) None & info [ "cache-ttl" ] ~docv:"MS" ~doc)

let swr_arg =
  let doc =
    "Client cache: stale-while-revalidate window past the TTL — an expired entry this \
     recent is served immediately while one probe refreshes it in the background \
     (default 0, disabled)."
  in
  Arg.(value & opt (some float) None & info [ "swr" ] ~docv:"MS" ~doc)

let hotspot_arg =
  let doc =
    "Hotspot-adversarial workload: aim this fraction of every cell's lookups at the \
     strategy's worst-placed key instead of the Zipf draw (default 0, in [0, 1])."
  in
  Arg.(value & opt (some float) None & info [ "hotspot" ] ~docv:"F" ~doc)

(* The day experiment's client-cache configuration: [None] (no cached
   cell) unless some cache flag was given. *)
let cache_config ~cache ~cache_cap ~cache_ttl ~swr ~hotspot =
  match (cache, cache_cap, cache_ttl, swr, hotspot) with
  | false, None, None, None, None -> None
  | _ ->
    let d = Experiments.Ctx.default_cache in
    Some
      { Experiments.Ctx.cache_cap =
          Option.value cache_cap ~default:d.Experiments.Ctx.cache_cap;
        cache_ttl = Option.value cache_ttl ~default:d.Experiments.Ctx.cache_ttl;
        swr = Option.value swr ~default:d.Experiments.Ctx.swr;
        hotspot = Option.value hotspot ~default:d.Experiments.Ctx.hotspot }

(* The day experiment's overload configuration: [None] (its default,
   Ctx.default_overload) unless some overload flag was given. *)
let overload_config ~capacity ~service_rate ~deadline ~hedge ~breaker ~degrade =
  match (capacity, service_rate, deadline, hedge, breaker, degrade) with
  | None, None, None, None, None, None -> None
  | _ ->
    let d = Experiments.Ctx.default_overload in
    Some
      { Experiments.Ctx.capacity = Option.value capacity ~default:d.Experiments.Ctx.capacity;
        service_rate = Option.value service_rate ~default:d.Experiments.Ctx.service_rate;
        deadline = Option.value deadline ~default:d.Experiments.Ctx.deadline;
        hedge = Option.value hedge ~default:d.Experiments.Ctx.hedge;
        breaker = Option.value breaker ~default:d.Experiments.Ctx.breaker;
        degrade = Option.value degrade ~default:d.Experiments.Ctx.degrade }

let csv_arg =
  let doc = "Emit CSV instead of an aligned ASCII table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let plot_arg =
  let doc =
    "Also draw the numeric columns as an ASCII line plot (x = first column), so curve \
     shapes — staircases, decays, crossovers — are visible in the terminal."
  in
  Arg.(value & flag & info [ "plot" ] ~doc)

let render ~csv ~plot table =
  if csv then print_string (Table.to_csv table) else Table.print table;
  if plot then begin
    match Table.columns table with
    | x :: rest ->
      (* Plot every numeric column; skip label-like ones silently. *)
      let numeric_columns =
        List.filter
          (fun name ->
            match Plookup_util.Ascii_plot.of_table ~x ~columns:[ name ] table with
            | Ok _ -> true
            | Error _ -> false)
          rest
      in
      (match Plookup_util.Ascii_plot.of_table ~x ~columns:numeric_columns table with
      | Ok chart -> print_string chart
      | Error msg -> Printf.printf "(not plottable: %s)\n" msg)
    | [] -> ()
  end

(* The churn experiment's repair configuration: [None] (its default,
   Repair.default_config) unless some repair flag was given. *)
let repair_config ~repair ~grace ~period ~hint_ttl ~hint_cap =
  match (repair, grace, period, hint_ttl, hint_cap) with
  | None, None, None, None, None -> Ok None
  | _ -> (
    let mode =
      match repair with None -> Ok Plookup.Repair.default_config.Plookup.Repair.mode
      | Some s -> Plookup.Repair.mode_of_string s
    in
    match mode with
    | Error msg -> Error msg
    | Ok mode ->
      let d = Plookup.Repair.default_config in
      Ok
        (Some
           { Plookup.Repair.mode;
             grace = Option.value grace ~default:d.Plookup.Repair.grace;
             period = Option.value period ~default:d.Plookup.Repair.period;
             hint_ttl = Option.value hint_ttl ~default:d.Plookup.Repair.hint_ttl;
             hint_capacity = Option.value hint_cap ~default:d.Plookup.Repair.hint_capacity
           }))

(* run subcommand *)
let run_experiment ids seed scale jobs shards loss duplication jitter mttf mttr horizon
    repair grace period hint_ttl hint_cap capacity service_rate deadline hedge breaker
    degrade cache cache_cap cache_ttl swr hotspot csv plot =
  match repair_config ~repair ~grace ~period ~hint_ttl ~hint_cap with
  | Error msg -> `Error (false, msg)
  | Ok repair -> (
  let overload =
    overload_config ~capacity ~service_rate ~deadline ~hedge ~breaker ~degrade
  in
  let cache = cache_config ~cache ~cache_cap ~cache_ttl ~swr ~hotspot in
  match
    Experiments.Ctx.v ~seed ~scale ~jobs:(resolve_jobs jobs)
      ~shards:(resolve_shards shards) ~loss ~duplication ~jitter ?mttf ?mttr ?horizon
      ?repair ?overload ?cache ()
  with
  | exception Invalid_argument msg -> `Error (false, msg)
  | ctx ->
  let resolve id =
    match Experiments.Registry.find id with
    | Some e -> Ok e
    | None ->
      Error
        (Printf.sprintf "unknown experiment %S; try one of: %s" id
           (String.concat ", " (Experiments.Registry.ids ())))
  in
  let rec go = function
    | [] -> Ok ()
    | id :: rest -> (
      match resolve id with
      | Error _ as e -> e
      | Ok e ->
        let t0 = Unix.gettimeofday () in
        let table = e.Experiments.Registry.run ctx in
        render ~csv ~plot table;
        Printf.printf "(%s finished in %.1fs)\n\n%!" e.Experiments.Registry.id
          (Unix.gettimeofday () -. t0);
        go rest)
  in
  let ids = if ids = [] then Experiments.Registry.ids () else ids in
  match go ids with
  | Ok () -> `Ok ()
  | Error msg -> `Error (false, msg))

let run_cmd =
  let ids =
    let doc = "Experiments to run (default: all).  See $(b,plookup list)." in
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let doc = "Regenerate one or more of the paper's tables/figures." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run_experiment $ ids $ seed_arg $ scale_arg $ jobs_arg $ shards_arg
        $ loss_arg
        $ duplication_arg $ jitter_arg $ mttf_arg $ mttr_arg $ horizon_arg $ repair_arg
        $ grace_arg $ repair_period_arg $ hint_ttl_arg $ hint_cap_arg $ capacity_arg
        $ service_rate_arg $ deadline_arg $ hedge_arg $ breaker_arg $ degrade_arg
        $ cache_flag $ cache_cap_arg $ cache_ttl_arg $ swr_arg $ hotspot_arg
        $ csv_arg $ plot_arg))

(* day subcommand: the production-day chaos experiment with its overload
   knobs front and center *)
let day_experiment smoke seed scale jobs shards loss duplication jitter mttf mttr horizon
    repair grace period hint_ttl hint_cap capacity service_rate deadline hedge breaker
    degrade cache cache_cap cache_ttl swr hotspot csv plot =
  let scale = if smoke then 0.05 else scale in
  run_experiment [ "day" ] seed scale jobs shards loss duplication jitter mttf mttr
    horizon repair grace period hint_ttl hint_cap capacity service_rate deadline hedge
    breaker degrade cache cache_cap cache_ttl swr hotspot csv plot

let day_cmd =
  let smoke =
    let doc =
      "Chaos smoke run: a tiny deterministic day (scale 0.05, overriding $(b,--scale)) \
       that exercises shedding, hedging, breakers and gray failure in about a second — \
       the CI gate."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let doc =
    "Run the production-day chaos experiment: an open-loop Zipf client population with \
     a flash crowd and a diurnal swing against capacity-limited servers, two of which \
     gray-fail, under churn and repair — naive vs tail-tolerant clients per strategy."
  in
  Cmd.v (Cmd.info "day" ~doc)
    Term.(
      ret
        (const day_experiment $ smoke $ seed_arg $ scale_arg $ jobs_arg $ shards_arg
        $ loss_arg
        $ duplication_arg $ jitter_arg $ mttf_arg $ mttr_arg $ horizon_arg $ repair_arg
        $ grace_arg $ repair_period_arg $ hint_ttl_arg $ hint_cap_arg $ capacity_arg
        $ service_rate_arg $ deadline_arg $ hedge_arg $ breaker_arg $ degrade_arg
        $ cache_flag $ cache_cap_arg $ cache_ttl_arg $ swr_arg $ hotspot_arg
        $ csv_arg $ plot_arg))

(* list subcommand *)
let list_experiments () =
  List.iter
    (fun e ->
      Printf.printf "%-8s %s\n" e.Experiments.Registry.id e.Experiments.Registry.title)
    Experiments.Registry.all;
  `Ok ()

let list_cmd =
  let doc = "List the reproducible tables and figures." in
  Cmd.v (Cmd.info "list" ~doc) Term.(ret (const list_experiments $ const ()))

(* stars subcommand *)
let stars () =
  Table.print Experiments.Exp_table2.paper_stars;
  `Ok ()

let stars_cmd =
  let doc = "Print the paper's Table 2 star ratings for comparison." in
  Cmd.v (Cmd.info "stars" ~doc) Term.(ret (const stars $ const ()))

(* strategies subcommand: the registry, printed *)
let strategy_forms () =
  List.map
    (fun (module S : Plookup.Strategy_intf.S) ->
      Plookup.Strategy_registry.spelling S.meta)
    (Plookup.Strategy_registry.all ())

let strategy_arg_doc () =
  Printf.sprintf "Strategy: %s.  See $(b,plookup strategies)."
    (String.concat ", " (strategy_forms ()))

let list_strategies csv =
  let table =
    Table.create ~title:"registered placement strategies"
      ~columns:[ "strategy"; "spelling"; "parameter"; "storage"; "notes" ]
  in
  List.iter
    (fun (module S : Plookup.Strategy_intf.S) ->
      let m = S.meta in
      Table.add_row table
        [ Table.S m.Plookup.Strategy_intf.name;
          Table.S (Plookup.Strategy_registry.spelling m);
          Table.S
            (if m.Plookup.Strategy_intf.param_doc = "" then "-"
             else m.Plookup.Strategy_intf.param_doc);
          Table.S m.Plookup.Strategy_intf.storage_doc;
          Table.S (if m.Plookup.Strategy_intf.ablation then "ablation" else "") ])
    (Plookup.Strategy_registry.all ());
  if csv then print_string (Table.to_csv table) else Table.print table;
  `Ok ()

let strategies_cmd =
  let doc =
    "List the registered placement strategies: accepted spelling, parameter meaning \
     and Table-1 storage formula, straight from the strategy registry."
  in
  Cmd.v (Cmd.info "strategies" ~doc) Term.(ret (const list_strategies $ csv_arg))

(* demo subcommand: place some entries under a strategy and look up *)
let demo strategy n entries target seed =
  match Plookup.Service.config_of_string strategy with
  | Error msg -> `Error (false, msg)
  | Ok config ->
    let open Plookup_store in
    let service = Plookup.Service.create ~seed ~n config in
    let gen = Entry.Gen.create () in
    let batch = Entry.Gen.batch gen entries in
    Plookup.Service.place service batch;
    let cluster = Plookup.Service.cluster service in
    Format.printf "%a" Plookup.Cluster.pp cluster;
    let result = Plookup.Service.partial_lookup service target in
    Format.printf "%a@." Plookup.Lookup_result.pp result;
    Format.printf "returned: %a@."
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Entry.pp)
      (List.sort Entry.compare result.Plookup.Lookup_result.entries);
    Printf.printf "storage cost: %d entries, coverage: %d\n"
      (Plookup_metrics.Storage.measured cluster)
      (Plookup_metrics.Coverage.measured cluster);
    `Ok ()

let demo_cmd =
  let strategy =
    let doc = strategy_arg_doc () in
    Arg.(value & pos 0 string "round-2" & info [] ~docv:"STRATEGY" ~doc)
  in
  let n =
    let doc = "Number of servers." in
    Arg.(value & opt int 4 & info [ "n"; "servers" ] ~docv:"N" ~doc)
  in
  let entries =
    let doc = "Number of entries to place." in
    Arg.(value & opt int 12 & info [ "entries" ] ~docv:"H" ~doc)
  in
  let target =
    let doc = "Target answer size for the demo lookup." in
    Arg.(value & opt int 5 & info [ "t"; "target" ] ~docv:"T" ~doc)
  in
  let doc = "Place entries under a strategy, show the placement, do one lookup." in
  Cmd.v (Cmd.info "demo" ~doc)
    Term.(ret (const demo $ strategy $ n $ entries $ target $ seed_arg))

(* sweep subcommand: custom parameter study over target answer sizes *)
let sweep strategy n h budget t_lo t_hi t_step runs seed csv =
  if t_lo <= 0 || t_hi < t_lo || t_step <= 0 then
    `Error (false, "need 0 < t-lo <= t-hi and a positive step")
  else begin
    match Plookup.Service.config_of_string strategy with
    | Error msg -> `Error (false, msg)
    | Ok base ->
      let config =
        match budget with
        | None -> base
        | Some total -> Plookup.Service.storage_for_budget base ~n ~h ~total
      in
      let module Metrics = Plookup_metrics in
      let table =
        Plookup_util.Table.create
          ~title:
            (Printf.sprintf "sweep: %s, %d entries on %d servers, %d runs per point"
               (Plookup.Service.config_name config)
               h n runs)
          ~columns:
            [ "t"; "lookup cost"; "ci95"; "fail %"; "coverage"; "fault tolerance" ]
      in
      let coverage, _ =
        Metrics.Coverage.measured_over_instances ~seed ~n ~entries:h ~config ~runs ()
      in
      let t = ref t_lo in
      while !t <= t_hi do
        let m =
          Metrics.Lookup_cost.measure_over_instances ~seed ~n ~entries:h ~config ~t:!t
            ~runs ~lookups_per_run:200 ()
        in
        let tolerance, _ =
          Metrics.Fault_tolerance.measure_over_instances ~seed ~n ~entries:h ~config ~t:!t
            ~runs ()
        in
        Plookup_util.Table.add_row table
          [ Plookup_util.Table.I !t;
            Plookup_util.Table.F m.Metrics.Lookup_cost.mean_cost;
            Plookup_util.Table.F4 m.Metrics.Lookup_cost.ci95;
            Plookup_util.Table.F (100. *. m.Metrics.Lookup_cost.failure_rate);
            Plookup_util.Table.F coverage;
            Plookup_util.Table.F tolerance ];
        t := !t + t_step
      done;
      render ~csv ~plot:false table;
      `Ok ()
  end

let sweep_cmd =
  let strategy =
    let doc = strategy_arg_doc () in
    Arg.(value & pos 0 string "round-2" & info [] ~docv:"STRATEGY" ~doc)
  in
  let n =
    Arg.(value & opt int 10 & info [ "servers" ] ~docv:"N" ~doc:"Number of servers.")
  in
  let h =
    Arg.(value & opt int 100 & info [ "entries" ] ~docv:"H" ~doc:"Number of entries.")
  in
  let budget =
    let doc =
      "Re-parameterize the strategy for this total storage budget (Table 1 formulas)."
    in
    Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"B" ~doc)
  in
  let t_lo = Arg.(value & opt int 10 & info [ "t-lo" ] ~docv:"T" ~doc:"Smallest target.") in
  let t_hi = Arg.(value & opt int 50 & info [ "t-hi" ] ~docv:"T" ~doc:"Largest target.") in
  let t_step = Arg.(value & opt int 5 & info [ "t-step" ] ~docv:"S" ~doc:"Target step.") in
  let runs =
    Arg.(value & opt int 30 & info [ "runs" ] ~docv:"R" ~doc:"Placements per data point.")
  in
  let doc = "Sweep target answer sizes for one strategy and print its metric profile." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      ret
        (const sweep $ strategy $ n $ h $ budget $ t_lo $ t_hi $ t_step $ runs $ seed_arg
        $ csv_arg))

(* trace subcommand: one experiment with the observability layer on *)
let trace_experiment id trace_out metrics_dump trace_cap trace_sample trace_planes seed
    scale jobs shards loss duplication jitter csv =
  let module Obs = Plookup_obs.Obs in
  let module Trace = Plookup_obs.Trace in
  match Experiments.Registry.find id with
  | None ->
    `Error
      ( false,
        Printf.sprintf "unknown experiment %S; try one of: %s" id
          (String.concat ", " (Experiments.Registry.ids ())) )
  | Some e -> (
    let known_planes = Array.to_list Plookup.Msg.plane_names in
    let bad_planes =
      match trace_planes with
      | None -> []
      | Some ps -> List.filter (fun p -> not (List.mem p known_planes)) ps
    in
    if trace_cap <= 0 then `Error (false, "--trace-cap must be positive")
    else if not (trace_sample > 0. && trace_sample <= 1.) then
      `Error (false, "--trace-sample must be in (0, 1]")
    else if bad_planes <> [] then
      `Error
        ( false,
          Printf.sprintf "--trace-planes: unknown plane%s %s; known planes are %s"
            (if List.length bad_planes > 1 then "s" else "")
            (String.concat ", " bad_planes)
            (String.concat ", " known_planes) )
    else begin
      let obs =
        Obs.create ~trace_capacity:trace_cap ~trace_sample ?trace_planes:trace_planes ()
      in
      Trace.set_enabled obs.Obs.trace true;
      let sink_channel =
        Option.map
          (fun path ->
            let oc = open_out path in
            Trace.add_sink obs.Obs.trace (Plookup_obs.Sink.jsonl oc);
            oc)
          trace_out
      in
      match
        Experiments.Ctx.v ~seed ~scale ~jobs:(resolve_jobs jobs)
          ~shards:(resolve_shards shards) ~loss ~duplication ~jitter ~obs ()
      with
      | exception Invalid_argument msg -> `Error (false, msg)
      | ctx ->
        let table = e.Experiments.Registry.run ctx in
        render ~csv ~plot:false table;
        Trace.flush obs.Obs.trace;
        Option.iter close_out sink_channel;
        let tr = obs.Obs.trace in
        Printf.printf "trace: %d spans emitted, %d retained, %d dropped%s%s\n"
          (Trace.emitted tr) (Trace.length tr) (Trace.dropped tr)
          (if trace_sample < 1.0 || trace_planes <> None then
             Printf.sprintf ", %d sampled out" (Trace.sampled_out tr)
           else "")
          (match trace_out with
          | Some f -> Printf.sprintf ", streamed to %s" f
          | None -> "");
        if metrics_dump then
          print_endline
            (Plookup_obs.Metrics.to_json
               (Plookup_obs.Metrics.snapshot obs.Obs.metrics));
        `Ok ()
    end)

let trace_cmd =
  let id =
    let doc = "Experiment to trace.  See $(b,plookup list)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let trace_out =
    let doc =
      "Stream every span to $(docv) as JSON Lines (one object per span) while the \
       experiment runs.  The stream sees each span once, including spans later evicted \
       from the in-memory ring."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let metrics_dump =
    let doc =
      "After the run, print the aggregated metrics registry snapshot as one JSON object \
       (counters, gauges and histograms, with their labels)."
    in
    Arg.(value & flag & info [ "metrics-dump" ] ~doc)
  in
  let trace_cap =
    let doc =
      "Capacity of each in-memory span ring (per worker); older spans are evicted first \
       and reported in the final $(b,dropped) count."
    in
    Arg.(value & opt int 1_048_576 & info [ "trace-cap" ] ~docv:"N" ~doc)
  in
  let trace_sample =
    let doc =
      "Keep each causal span tree with probability $(docv) (in (0, 1]).  The decision is \
       made once per tree at its root, from a pure hash of the span id, so a sampled \
       trace is a strict subset of the unsampled one — same spans, same JSON — at any \
       $(b,--jobs) split.  Spans sampled out are counted, not recorded."
    in
    Arg.(value & opt float 1.0 & info [ "trace-sample" ] ~docv:"P" ~doc)
  in
  let trace_planes =
    let doc =
      "Only record message spans from these comma-separated planes (data, strategy, \
       repair).  Non-message spans (timeouts, retries, repair rounds, migrations) always \
       pass the filter."
    in
    Arg.(
      value
      & opt (some (list ~sep:',' string)) None
      & info [ "trace-planes" ] ~docv:"PLANES" ~doc)
  in
  let doc =
    "Run one experiment with tracing enabled: typed spans (sends, receives, drops, \
     retries, timeouts, repair rounds, migrations) to a JSONL file, plus an optional \
     metrics-registry dump."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      ret
        (const trace_experiment $ id $ trace_out $ metrics_dump $ trace_cap $ trace_sample
        $ trace_planes $ seed_arg $ scale_arg $ jobs_arg $ shards_arg $ loss_arg
        $ duplication_arg $ jitter_arg $ csv_arg))

let main_cmd =
  let doc = "partial lookup service — reproduction of Sun & Garcia-Molina (ICDCS 2003)" in
  let info = Cmd.info "plookup" ~version:"1.9.0" ~doc in
  Cmd.group info
    [ run_cmd; day_cmd; list_cmd; stars_cmd; strategies_cmd; demo_cmd; sweep_cmd;
      trace_cmd ]

let () = exit (Cmd.eval main_cmd)
