(* The determinism contract behind --shards: intra-run parallelism must
   never change results.  The experiments the flag threads through (day,
   table2, churn) are rendered to CSV at shards 1, 2 and 4 and compared
   verbatim — shards=1 being the unsharded code path, so equality with
   it is the "byte-for-byte equal to unsharded" guarantee.  The striped
   data-plane simulation (Shard_sim) is likewise pinned across worker
   counts, including an oversubscribed gang far beyond the core
   count. *)

module E = Plookup_experiments
module Table = Plookup_util.Table
module Pool = Plookup_util.Pool

let experiment id =
  match E.Registry.find id with
  | Some e -> e
  | None -> Alcotest.failf "experiment %s not registered" id

let csv ~shards e =
  let ctx = E.Ctx.v ~seed:42 ~scale:0.02 ~shards () in
  Table.to_csv (e.E.Registry.run ctx)

let case id =
  let e = experiment id in
  Alcotest.test_case id `Slow (fun () ->
      let reference = csv ~shards:1 e in
      List.iter
        (fun shards ->
          Helpers.check_string
            (Printf.sprintf "%s: shards=1 vs shards=%d" id shards)
            reference (csv ~shards e))
        [ 2; 4 ])

(* Oversubscription: far more shard workers than cores (and than the
   work itself, on small counts) must still give the same bytes. *)
let oversubscribed_case =
  Alcotest.test_case "table2 oversubscribed" `Slow (fun () ->
      let e = experiment "table2" in
      let shards = (4 * Pool.recommended_jobs ()) + 3 in
      Helpers.check_string
        (Printf.sprintf "table2: shards=1 vs shards=%d" shards)
        (csv ~shards:1 e) (csv ~shards e))

(* Both axes at once: jobs and shards compose without interfering. *)
let composed_case =
  Alcotest.test_case "day jobs x shards" `Slow (fun () ->
      let e = experiment "day" in
      let run ~jobs ~shards =
        Table.to_csv (e.E.Registry.run (E.Ctx.v ~seed:42 ~scale:0.02 ~jobs ~shards ()))
      in
      Helpers.check_string "day: jobs=1,shards=1 vs jobs=2,shards=2"
        (run ~jobs:1 ~shards:1) (run ~jobs:2 ~shards:2))

let shard_sim_case =
  Alcotest.test_case "shard_sim workers" `Slow (fun () ->
      let digest workers =
        E.Shard_sim.to_string
          (E.Shard_sim.run ~workers ~n:120 ~entries:400 ~rate:40. ~horizon:80. ~seed:7
             ())
      in
      let reference = digest 1 in
      List.iter
        (fun workers ->
          Helpers.check_string
            (Printf.sprintf "shard_sim: workers=1 vs workers=%d" workers)
            reference (digest workers))
        [ 2; 4; 16 ])

let () =
  Helpers.run "shard_determinism"
    [ ("shards=1 equals shards=2 and 4", List.map case [ "day"; "table2"; "churn" ]);
      ( "edge cases",
        [ oversubscribed_case; composed_case; shard_sim_case ] ) ]
