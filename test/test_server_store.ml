open Plookup_store
open Plookup_util

let test_empty () =
  let s = Server_store.create () in
  Helpers.check_int "cardinal" 0 (Server_store.cardinal s);
  Alcotest.(check bool) "is_empty" true (Server_store.is_empty s);
  Alcotest.(check bool) "random_one" true (Server_store.random_one s (Rng.create 0) = None)

let test_add_remove_mem () =
  let s = Server_store.create () in
  Alcotest.(check bool) "fresh add" true (Server_store.add s (Entry.v 1));
  Alcotest.(check bool) "duplicate add" false (Server_store.add s (Entry.v 1));
  Alcotest.(check bool) "mem" true (Server_store.mem s (Entry.v 1));
  Helpers.check_int "cardinal" 1 (Server_store.cardinal s);
  Alcotest.(check bool) "remove present" true (Server_store.remove s (Entry.v 1));
  Alcotest.(check bool) "remove absent" false (Server_store.remove s (Entry.v 1));
  Helpers.check_int "empty again" 0 (Server_store.cardinal s)

let test_swap_remove_keeps_others () =
  let s = Server_store.create () in
  List.iter (fun i -> ignore (Server_store.add s (Entry.v i))) [ 0; 1; 2; 3; 4 ];
  ignore (Server_store.remove s (Entry.v 2));
  Alcotest.(check (list int)) "remaining" [ 0; 1; 3; 4 ] (Helpers.sorted_ids (Server_store.to_list s));
  (* Remove the element that was swapped into the hole. *)
  ignore (Server_store.remove s (Entry.v 4));
  Alcotest.(check (list int)) "after second removal" [ 0; 1; 3 ]
    (Helpers.sorted_ids (Server_store.to_list s))

let test_random_pick_distinct () =
  let s = Server_store.create () in
  for i = 0 to 19 do
    ignore (Server_store.add s (Entry.v i))
  done;
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    let picked = Server_store.random_pick s rng 7 in
    Helpers.check_int "pick size" 7 (List.length picked);
    Helpers.check_int "pick distinct" 7 (List.length (List.sort_uniq compare (Helpers.sorted_ids picked)))
  done

let test_random_pick_clamps () =
  let s = Server_store.create () in
  ignore (Server_store.add s (Entry.v 0));
  ignore (Server_store.add s (Entry.v 1));
  let rng = Rng.create 2 in
  Helpers.check_int "asks for more than stored" 2
    (List.length (Server_store.random_pick s rng 10));
  Helpers.check_int "zero" 0 (List.length (Server_store.random_pick s rng 0));
  Helpers.check_int "negative treated as zero" 0
    (List.length (Server_store.random_pick s rng (-3)))

let test_random_pick_uniform () =
  (* Each of 10 entries should appear in a 3-of-10 pick ~30% of the time. *)
  let s = Server_store.create () in
  for i = 0 to 9 do
    ignore (Server_store.add s (Entry.v i))
  done;
  let rng = Rng.create 3 in
  let counts = Array.make 10 0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    List.iter
      (fun e -> counts.(Entry.id e) <- counts.(Entry.id e) + 1)
      (Server_store.random_pick s rng 3)
  done;
  Array.iteri
    (fun i c ->
      Helpers.roughly ~rel:0.07
        (Printf.sprintf "entry %d frequency" i)
        0.3
        (float_of_int c /. float_of_int draws))
    counts

let test_clear () =
  let s = Server_store.create () in
  ignore (Server_store.add s (Entry.v 5));
  Server_store.clear s;
  Helpers.check_int "cleared" 0 (Server_store.cardinal s);
  Alcotest.(check bool) "mem false" false (Server_store.mem s (Entry.v 5));
  Alcotest.(check bool) "usable after clear" true (Server_store.add s (Entry.v 5))

let test_iter_fold_ids () =
  let s = Server_store.create () in
  List.iter (fun i -> ignore (Server_store.add s (Entry.v i))) [ 3; 1; 2 ];
  Helpers.check_int "fold count" 3 (Server_store.fold (fun _ acc -> acc + 1) s 0);
  Alcotest.(check (list int)) "ids" [ 1; 2; 3 ] (List.sort compare (Server_store.ids s))

let test_snapshot_bitset () =
  let s = Server_store.create () in
  List.iter (fun i -> ignore (Server_store.add s (Entry.v i))) [ 0; 4; 9 ];
  let bs = Server_store.snapshot_bitset s ~capacity:10 in
  Alcotest.(check (list int)) "bitset" [ 0; 4; 9 ] (Bitset.to_list bs)

module IntSet = Set.Make (Int)

let prop_model =
  Helpers.qcheck ~count:300 "store agrees with Set model"
    QCheck2.Gen.(list (pair bool (int_range 0 30)))
    (fun ops ->
      let s = Server_store.create () in
      let model = ref IntSet.empty in
      List.iter
        (fun (is_add, i) ->
          if is_add then begin
            let added = Server_store.add s (Entry.v i) in
            let expected = not (IntSet.mem i !model) in
            model := IntSet.add i !model;
            if added <> expected then failwith "add result mismatch"
          end
          else begin
            let removed = Server_store.remove s (Entry.v i) in
            let expected = IntSet.mem i !model in
            model := IntSet.remove i !model;
            if removed <> expected then failwith "remove result mismatch"
          end)
        ops;
      Server_store.cardinal s = IntSet.cardinal !model
      && List.sort compare (Server_store.ids s) = IntSet.elements !model)

let prop_random_pick_subset =
  Helpers.qcheck "random_pick returns distinct stored entries"
    QCheck2.Gen.(triple (list (int_range 0 40)) (int_range 0 50) int)
    (fun (ids, k, seed) ->
      let s = Server_store.create () in
      List.iter (fun i -> ignore (Server_store.add s (Entry.v i))) ids;
      let rng = Rng.create seed in
      let picked = Server_store.random_pick s rng k in
      let picked_ids = List.map Entry.id picked in
      List.length picked = min (max k 0) (Server_store.cardinal s)
      && List.length (List.sort_uniq compare picked_ids) = List.length picked
      && List.for_all (fun i -> Server_store.mem s (Entry.v i)) picked_ids)

let test_random_pick_into_agrees () =
  (* The allocation-free variant must be a drop-in replacement: same
     generator draws, same sample, for every k including clamped ones. *)
  let s = Server_store.create () in
  List.iter (fun i -> ignore (Server_store.add s (Entry.v i))) (List.init 30 Fun.id);
  let a = Rng.create 77 and b = Rng.create 77 in
  let buf = Array.make 30 (Entry.v 0) in
  List.iter
    (fun k ->
      let expected = Server_store.random_pick s a k in
      let m = Server_store.random_pick_into s b k buf in
      Helpers.check_int "sample size" (List.length expected) m;
      Alcotest.(check (list int)) "same entries"
        (List.map Entry.id expected)
        (List.map Entry.id (Array.to_list (Array.sub buf 0 m))))
    [ 0; 1; 7; 30; 99 ];
  Alcotest.check_raises "buffer too small"
    (Invalid_argument "Server_store.random_pick_into: buffer too small") (fun () ->
      ignore (Server_store.random_pick_into s (Rng.create 1) 10 (Array.make 3 (Entry.v 0))))

let () =
  Helpers.run "server_store"
    [ ( "server_store",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove/mem" `Quick test_add_remove_mem;
          Alcotest.test_case "swap-remove" `Quick test_swap_remove_keeps_others;
          Alcotest.test_case "pick distinct" `Quick test_random_pick_distinct;
          Alcotest.test_case "pick clamps" `Quick test_random_pick_clamps;
          Alcotest.test_case "pick uniform" `Quick test_random_pick_uniform;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "iter/fold/ids" `Quick test_iter_fold_ids;
          Alcotest.test_case "snapshot bitset" `Quick test_snapshot_bitset;
          Alcotest.test_case "random_pick_into agrees" `Quick
            test_random_pick_into_agrees;
          prop_model;
          prop_random_pick_subset ] ) ]
