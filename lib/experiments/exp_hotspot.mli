(** Extension: the hot-spot claim of the paper's conclusion.

    "Partial lookup services are insensitive to the popular key or
    hot-spot problems which plague traditional hashing-based lookup
    services."  We drive a Zipf-popular key population against (a) the
    traditional key-partitioned service (every lookup for a key hits its
    single home server — Chord/CAN style) and (b) partial-lookup
    directories, and report per-server load concentration. *)

val id : string
val title : string

val run :
  ?n:int ->
  ?keys:int ->
  ?entries_per_key:int ->
  ?t:int ->
  ?lookups:int ->
  ?alpha:float ->
  Ctx.t ->
  Plookup_util.Table.t
(** Defaults: n=10 servers, 50 keys with Zipf(1.0) popularity, 20
    entries per key, t=3, 20000 lookups. *)
