open Plookup_store
module Net = Plookup_net.Net

type t = { cluster : Cluster.t }

(* Server-side behaviour: a client request at server [dst] triggers a
   broadcast; a broadcast store/remove mutates the local store. *)
let handler cluster dst _src msg : Msg.reply =
  let net = Cluster.net cluster in
  let local = Cluster.store cluster dst in
  match (msg : Msg.t) with
  | Msg.Place entries ->
    ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.Store_batch entries));
    Msg.Ack
  | Msg.Add e ->
    ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.Store e));
    Msg.Ack
  | Msg.Delete e ->
    ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.Remove e));
    Msg.Ack
  | Msg.Store_batch entries ->
    Server_store.clear local;
    List.iter (fun e -> ignore (Server_store.add local e)) entries;
    Msg.Ack
  | Msg.Store e ->
    ignore (Server_store.add local e);
    Msg.Ack
  | Msg.Remove e ->
    ignore (Server_store.remove local e);
    Msg.Ack
  | Msg.Lookup t -> Msg.Entries (Server_store.random_pick local (Cluster.rng cluster) t)
  | Msg.Add_sampled _ | Msg.Remove_counted _ | Msg.Fetch_candidate _ | Msg.Sync_add _
  | Msg.Sync_delete _ | Msg.Sync_state | Msg.Digest_request _ | Msg.Sync_fix _
  | Msg.Hint _ | Msg.Digest_pull | Msg.Repair_store _ ->
    invalid_arg "Full_replication: unexpected message"

let create cluster =
  Net.set_handler (Cluster.net cluster) (handler cluster);
  { cluster }

let cluster t = t.cluster

let to_random_server t msg =
  match Cluster.random_up_server t.cluster with
  | None -> ()
  | Some s -> ignore (Net.send (Cluster.net t.cluster) ~src:Net.Client ~dst:s msg)

let place t entries = to_random_server t (Msg.Place (Entry.dedup entries))
let add t e = to_random_server t (Msg.Add e)
let delete t e = to_random_server t (Msg.Delete e)
let partial_lookup ?reachable t target = Probe.single ?reachable t.cluster ~t:target
