(** Latency-aware asynchronous lookup client.

    The synchronous probes in {!Probe} measure *how many* servers a
    lookup touches; this client runs the same probing disciplines over a
    network with per-hop latency and real request/response timing on the
    simulation engine, so experiments can measure *how long* lookups
    take — including the paper's Section-6.2 failure masking, where a
    client whose contact never answers simply retries elsewhere after a
    timeout.

    Waves generalize both probing styles: [wave = 1] is sequential
    probing (each contact waits for the previous answer), a larger wave
    fires that many requests concurrently — the Round-Robin parallel
    client of Section 3.5 sets the wave to its predicted contact count.

    The client is robust to a faulty network ({!Plookup_net.Net}
    fault injection): a contact whose request or reply is lost times
    out and is retried against the *same* server up to [retries] times
    with exponentially backed-off timeouts before the client moves on to
    the next server in its order, and fault-injected duplicate replies
    are suppressed (counted, not double-merged).

    {b Tail tolerance} (all opt-in, all draw-sequence-neutral when
    off): a per-lookup [deadline] budget, hedged backup requests
    ([hedge]), a shared per-server circuit {!Breaker}, and decorrelated
    retry [jitter].  A [Busy] load-shed nack from the
    {!Plookup_net.Net} capacity model abandons the contact immediately
    (no retry against a server that said go away) and counts as a
    breaker failure.

    The client holds no global clock or threads: it is a callback state
    machine driven entirely by {!Plookup_sim.Engine} events, like every
    other component of the simulator. *)

(** Per-server circuit breaker, shared by all lookups of one client
    population (create it once per experiment cell, pass it to every
    {!lookup}).  Closed until [threshold] consecutive failures
    (timeouts or [Busy] nacks) against a server, then {e open} — the
    server is skipped — for [cooldown] time units; after the cooldown
    the next contact is the half-open probe: success closes the
    circuit, failure re-opens it for another cooldown. *)
module Breaker : sig
  type t

  val create : ?threshold:int -> ?cooldown:float -> n:int -> unit -> t
  (** [threshold] (default 3) must be >= 1, [cooldown] (default 50.0)
      positive; [n] must cover every server id the breaker will see. *)

  val allow : t -> int -> now:float -> bool
  (** Whether a contact to this server may proceed at time [now]. *)

  val is_open : t -> int -> now:float -> bool

  val record : t -> int -> now:float -> ok:bool -> unit
  (** Feed one contact outcome ([ok = false] for a timeout or [Busy]). *)
end

type outcome = {
  result : Lookup_result.t;
      (** [servers_contacted] counts distinct servers sent at least one
          request — counted at send time, so timed-out contacts are
          included in the lookup-cost metric. *)
  started_at : float;
  completed_at : float;  (** engine time when the target was met or the order exhausted *)
  attempts : int;  (** total requests sent, including retries *)
  retries : int;  (** re-sends to a server whose previous attempt timed out *)
  timeouts : int;  (** attempts abandoned after no reply (every expiry counts) *)
  duplicates : int;  (** fault-injected duplicate replies suppressed *)
  busies : int;  (** [Busy] load-shed nacks received *)
  hedges : int;  (** backup contacts launched by the hedge timer *)
  breaker_skips : int;  (** candidate servers skipped because their circuit was open *)
  gave_up : bool;  (** the deadline budget expired before the target was met *)
}

val elapsed : outcome -> float

val lookup :
  Cluster.t ->
  Plookup_sim.Engine.t ->
  latency:(unit -> float) ->
  timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?deadline:float ->
  ?hedge:float ->
  ?breaker:Breaker.t ->
  ?jitter:Plookup_util.Rng.t ->
  ?cache:Client_cache.t * int ->
  order:int list ->
  ?wave:int ->
  t:int ->
  (outcome -> unit) ->
  unit
(** Schedule an asynchronous [partial_lookup t] probing the servers of
    [order] (duplicates ignored).  Each contact costs one request and
    one reply latency draw; an attempt that has not answered within its
    timeout is retried against the same server — with the timeout
    multiplied by [backoff] (default 2.0, must be >= 1) — up to
    [retries] times (default 0, i.e. at most one attempt per server);
    once a contact's attempts are exhausted the next server in [order]
    is tried.  [wave] (default 1) contacts run concurrently at all
    times until the target is met.  The callback fires exactly once,
    with the merged (and target-truncated) result.  Requires positive
    [t], [timeout] and [wave], and non-negative [retries].

    Tail-tolerance options, all off by default — when off the client
    schedules no extra engine events and makes no extra draws, so
    existing seeded runs are byte-identical:

    - [deadline]: total time budget for the whole lookup.  When it
      expires the callback fires immediately with whatever has been
      merged ([gave_up] set), instead of waiting out every retry.
    - [hedge]: per-contact hedge delay, typically a high latency
      quantile (p95/p99) of recent lookups.  A contact still unresolved
      after this long triggers a {e backup} contact to the next
      candidate server without abandoning the first; the first reply
      wins and the loser is ignored like any late datagram.  Backup
      contacts count in [hedges] and in [servers_contacted].
    - [breaker]: a shared {!Breaker.t}; candidate servers whose circuit
      is open are skipped (counted in [breaker_skips]).  Retries to an
      already-contacted server do not re-consult the breaker.
    - [jitter]: an RNG for decorrelated retry jitter — each retry's
      timeout is drawn uniformly from [[timeout, 3 * previous]] instead
      of the deterministic exponential [backoff], so synchronized
      clients spread their retries instead of storming in lockstep.
    - [cache]: a shared {!Client_cache.t} and this lookup's cache key.
      The cache is consulted at launch time: a fresh hit (or a stale
      one inside the cache's stale-while-revalidate window) answers the
      callback immediately with an outcome of zero [attempts] and zero
      [servers_contacted]; a lookup arriving while another lookup for
      the same key is probing {e joins} it (singleflight) and receives
      that probe's merged result; only a true miss probes the servers,
      and its result refreshes the cache for everyone.  Probes that do
      run draw and schedule exactly as without the cache. *)

val lookup_random_order :
  Cluster.t ->
  Plookup_sim.Engine.t ->
  latency:(unit -> float) ->
  timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?deadline:float ->
  ?hedge:float ->
  ?breaker:Breaker.t ->
  ?jitter:Plookup_util.Rng.t ->
  ?cache:Client_cache.t * int ->
  ?wave:int ->
  t:int ->
  (outcome -> unit) ->
  unit
(** {!lookup} over all servers in uniformly random order (the
    RandomServer-x / Hash-y client). *)
