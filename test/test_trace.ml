open Plookup_sim

let test_disabled_by_default () =
  let t = Trace.create () in
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Trace.record t ~time:1. ~label:"x" "dropped";
  Helpers.check_int "nothing recorded" 0 (Trace.length t)

let test_record_and_read () =
  let t = Trace.create () in
  Trace.set_enabled t true;
  Trace.record t ~time:1. ~label:"send" "a";
  Trace.record t ~time:2. ~label:"recv" "b";
  Helpers.check_int "length" 2 (Trace.length t);
  match Trace.records t with
  | [ r1; r2 ] ->
    Helpers.check_string "label 1" "send" r1.Trace.label;
    Helpers.check_string "detail 2" "b" r2.Trace.detail;
    Helpers.close "time 1" 1. r1.Trace.time
  | _ -> Alcotest.fail "expected two records"

let test_ring_eviction () =
  let t = Trace.create ~capacity:3 () in
  Trace.set_enabled t true;
  for i = 1 to 5 do
    Trace.record t ~time:(float_of_int i) ~label:"l" (string_of_int i)
  done;
  Helpers.check_int "capped" 3 (Trace.length t);
  Alcotest.(check (list string)) "oldest evicted" [ "3"; "4"; "5" ]
    (List.map (fun r -> r.Trace.detail) (Trace.records t))

let test_clear () =
  let t = Trace.create () in
  Trace.set_enabled t true;
  Trace.record t ~time:0. ~label:"x" "y";
  Trace.clear t;
  Helpers.check_int "cleared" 0 (Trace.length t)

let test_dump () =
  let t = Trace.create () in
  Trace.set_enabled t true;
  Trace.record t ~time:1.5 ~label:"mark" "hello";
  let s = Trace.dump t in
  Alcotest.(check bool) "dump mentions label" true (Helpers.contains s "mark");
  Alcotest.(check bool) "dump mentions detail" true (Helpers.contains s "hello")

let test_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let prop_keeps_last_k =
  Helpers.qcheck "ring keeps the most recent capacity records"
    QCheck2.Gen.(pair (int_range 1 20) (list_size (int_range 0 100) small_int))
    (fun (capacity, xs) ->
      let t = Trace.create ~capacity () in
      Trace.set_enabled t true;
      List.iteri
        (fun i x -> Trace.record t ~time:(float_of_int i) ~label:"n" (string_of_int x))
        xs;
      let expected =
        let k = min capacity (List.length xs) in
        let rec last_k l = if List.length l <= k then l else last_k (List.tl l) in
        List.map string_of_int (last_k xs)
      in
      List.map (fun r -> r.Trace.detail) (Trace.records t) = expected)

let () =
  Helpers.run "trace"
    [ ( "trace",
        [ Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
          Alcotest.test_case "record/read" `Quick test_record_and_read;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "dump" `Quick test_dump;
          Alcotest.test_case "bad capacity" `Quick test_bad_capacity;
          prop_keeps_last_k ] ) ]
