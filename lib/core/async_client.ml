open Plookup_store
module Engine = Plookup_sim.Engine
module Net = Plookup_net.Net
module Trace = Plookup_obs.Trace
module Span = Plookup_obs.Span

type outcome = {
  result : Lookup_result.t;
  started_at : float;
  completed_at : float;
  attempts : int;
  retries : int;
  timeouts : int;
  duplicates : int;
  busies : int;
  hedges : int;
  breaker_skips : int;
  gave_up : bool;
}

let elapsed o = o.completed_at -. o.started_at

(* Per-server circuit breaker, shared across the lookups of one client
   population.  Closed until [threshold] consecutive failures, then open
   for [cooldown] time units; once the cooldown passes the next contact
   is the half-open probe — success closes the circuit, failure re-opens
   it for another cooldown (the failure count stays saturated, so one
   bad probe is enough). *)
module Breaker = struct
  type server_state = { mutable fails : int; mutable open_until : float }

  type t = { threshold : int; cooldown : float; states : server_state array }

  let create ?(threshold = 3) ?(cooldown = 50.) ~n () =
    if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
    if cooldown <= 0. then invalid_arg "Breaker.create: cooldown must be positive";
    if n <= 0 then invalid_arg "Breaker.create: n must be positive";
    { threshold;
      cooldown;
      states = Array.init n (fun _ -> { fails = 0; open_until = neg_infinity }) }

  let allow t server ~now = t.states.(server).open_until <= now
  let is_open t server ~now = not (allow t server ~now)

  let record t server ~now ~ok =
    let s = t.states.(server) in
    if ok then begin
      s.fails <- 0;
      s.open_until <- neg_infinity
    end
    else begin
      s.fails <- s.fails + 1;
      if s.fails >= t.threshold then begin
        s.fails <- t.threshold;
        s.open_until <- now +. t.cooldown
      end
    end
end

(* One lookup is a small state machine: [queue] of servers not yet
   contacted, [inflight] contacts awaiting a reply, [seen] the merged
   distinct entries.  Replies and timeouts race per attempt; a flag per
   attempt makes the timeout a no-op once the reply has won (and vice
   versa).  A timed-out attempt is retried against the same server with
   the timeout stretched by [backoff], up to [retries] retries, before
   the contact is abandoned and the next server in the order tried.

   The tail-tolerance extensions (all off by default, and adding no
   engine events or draws when off): [deadline] finishes the lookup
   with whatever has been merged once the budget is spent; [hedge]
   launches a backup contact to the next candidate when the current one
   has not resolved within the hedge delay (first reply wins, the loser
   is ignored like any late datagram); [breaker] skips servers whose
   circuit is open; [jitter] replaces the deterministic exponential
   backoff with decorrelated jitter draws.  A [Busy] nack abandons the
   contact immediately — no retry against a server that told us to go
   away — which is what makes nack-shedding cheaper than timeouts. *)
type state = {
  cluster : Cluster.t;
  engine : Engine.t;
  latency : unit -> float;
  timeout : float;
  retries_allowed : int;
  backoff : float;
  wave : int;
  target : int;
  hedge : float option;
  breaker : Breaker.t option;
  jitter : Plookup_util.Rng.t option;
  seen : (int, Entry.t) Hashtbl.t;
  mutable queue : int list;
  mutable inflight : int;
  mutable contacted : int;
  mutable attempts : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable duplicates : int;
  mutable busies : int;
  mutable hedges : int;
  mutable breaker_skips : int;
  mutable gave_up : bool;
  mutable finished : bool;
  started_at : float;
  k : outcome -> unit;
}

let finish st =
  if not st.finished then begin
    st.finished <- true;
    let entries =
      Probe.pick_from_table st.seen ~rng:(Cluster.rng st.cluster) ~target:st.target
    in
    st.k
      { result =
          { Lookup_result.entries; servers_contacted = st.contacted; target = st.target };
        started_at = st.started_at;
        completed_at = Engine.now st.engine;
        attempts = st.attempts;
        retries = st.retries;
        timeouts = st.timeouts;
        duplicates = st.duplicates;
        busies = st.busies;
        hedges = st.hedges;
        breaker_skips = st.breaker_skips;
        gave_up = st.gave_up }
  end

let satisfied st = Hashtbl.length st.seen >= st.target

(* Pop the next contactable server, dropping (and counting) servers
   whose breaker circuit is open.  Without a breaker this is exactly
   "pop the head". *)
let next_candidate st =
  let rec pop () =
    match st.queue with
    | [] -> None
    | server :: rest -> (
      st.queue <- rest;
      match st.breaker with
      | Some b when not (Breaker.allow b server ~now:(Engine.now st.engine)) ->
        st.breaker_skips <- st.breaker_skips + 1;
        pop ()
      | _ -> Some server)
  in
  pop ()

let record_breaker st server ~ok =
  match st.breaker with
  | Some b -> Breaker.record b server ~now:(Engine.now st.engine) ~ok
  | None -> ()

let rec pump st =
  if not st.finished then begin
    if satisfied st then finish st
    else if st.inflight = 0 && st.queue = [] then finish st (* order exhausted *)
    else if st.inflight < st.wave then begin
      match next_candidate st with
      | Some server ->
        contact st server;
        pump st
      | None ->
        (* Everything left was breaker-skipped; if nothing is in flight
           either, the lookup is over. *)
        if st.inflight = 0 then finish st
    end
  end

and contact st server =
  (* A contacted server is one we sent at least one request to — counted
     at send time, so lookups that go expensive through timeouts report
     their true cost (the reply-time count under-reported exactly when
     failures made lookups expensive). *)
  st.contacted <- st.contacted + 1;
  st.inflight <- st.inflight + 1;
  (* [live] spans the whole contact (all its retries): the hedge timer
     only fires while the contact is still unresolved. *)
  let live = ref true in
  (match st.hedge with
  | Some delay ->
    ignore
      (Engine.schedule_after st.engine ~delay (fun _ ->
           if !live && (not st.finished) && not (satisfied st) then begin
             match next_candidate st with
             | Some backup ->
               st.hedges <- st.hedges + 1;
               contact st backup
             | None -> ()
           end))
  | None -> ());
  attempt st server ~live ~tries_left:st.retries_allowed ~timeout:st.timeout

and attempt st server ~live ~tries_left ~timeout =
  st.attempts <- st.attempts + 1;
  let answered = ref false in
  (* The timeout and the reply race; whichever fires second is a no-op.
     A reply arriving after the timeout is simply dropped, like a
     datagram arriving after the client moved on. *)
  let timed_out = ref false in
  let tr = (Cluster.obs st.cluster).Plookup_obs.Obs.trace in
  ignore
    (Engine.schedule_after st.engine ~delay:timeout (fun _ ->
         if not !answered && not st.finished then begin
           timed_out := true;
           st.timeouts <- st.timeouts + 1;
           record_breaker st server ~ok:false;
           let tid =
             if Trace.enabled tr then
               Trace.emit_timeout tr ~time:(Engine.now st.engine) ~dst:server
                 ~after:timeout
             else 0
           in
           if tries_left > 0 then begin
             st.retries <- st.retries + 1;
             if Trace.enabled tr then
               Trace.emit_retry tr ~time:(Engine.now st.engine) ~cause:tid ~dst:server
                 ~attempt:(st.retries_allowed - tries_left + 2);
             let next_timeout =
               match st.jitter with
               | Some rng ->
                 (* Decorrelated jitter: uniform between the base
                    timeout and 3x the previous one, so synchronized
                    clients spread out instead of retrying in storms. *)
                 Plookup_util.Dist.uniform_in rng ~lo:st.timeout ~hi:(timeout *. 3.)
               | None -> timeout *. st.backoff
             in
             attempt st server ~live ~tries_left:(tries_left - 1) ~timeout:next_timeout
           end
           else begin
             live := false;
             st.inflight <- st.inflight - 1;
             pump st
           end
         end));
  Net.call_async (Cluster.net st.cluster) st.engine
    ~latency:(fun ~src:_ ~dst:_ -> st.latency ())
    ~src:Net.Client ~dst:server (Msg.lookup st.target)
    (fun reply ->
      if (not !timed_out) && not st.finished then begin
        if !answered then
          (* A fault-injected duplicate of a reply already merged. *)
          st.duplicates <- st.duplicates + 1
        else begin
          answered := true;
          live := false;
          st.inflight <- st.inflight - 1;
          (match reply with
          | Msg.Busy ->
            (* Load-shed fast nack: the server never processed the
               request, so move straight to the next candidate. *)
            st.busies <- st.busies + 1;
            record_breaker st server ~ok:false
          | Msg.Entries entries ->
            record_breaker st server ~ok:true;
            List.iter
              (fun e ->
                if not (Hashtbl.mem st.seen (Entry.id e)) then
                  Hashtbl.add st.seen (Entry.id e) e)
              entries
          | Msg.Ack | Msg.Candidate _ | Msg.Digest _ -> record_breaker st server ~ok:true);
          pump st
        end
      end)

let dedup_order order =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      if Hashtbl.mem seen s then false
      else begin
        Hashtbl.add seen s ();
        true
      end)
    order

let make_state cluster engine ~latency ~timeout ~retries ~backoff ~wave ~t ~hedge
    ~breaker ~jitter ~order k =
  { cluster;
    engine;
    latency;
    timeout;
    retries_allowed = retries;
    backoff;
    wave;
    target = t;
    hedge;
    breaker;
    jitter;
    seen = Hashtbl.create 32;
    queue = dedup_order order;
    inflight = 0;
    contacted = 0;
    attempts = 0;
    retries = 0;
    timeouts = 0;
    duplicates = 0;
    busies = 0;
    hedges = 0;
    breaker_skips = 0;
    gave_up = false;
    finished = false;
    started_at = Engine.now engine;
    k }

let schedule_deadline st deadline =
  match deadline with
  | Some budget ->
    ignore
      (Engine.schedule_after st.engine ~delay:budget (fun _ ->
           if not st.finished then begin
             st.gave_up <- true;
             finish st
           end))
  | None -> ()

let lookup cluster engine ~latency ~timeout ?(retries = 0) ?(backoff = 2.) ?deadline
    ?hedge ?breaker ?jitter ?cache ~order ?(wave = 1) ~t k =
  if t <= 0 then invalid_arg "Async_client.lookup: t must be positive";
  if timeout <= 0. then invalid_arg "Async_client.lookup: timeout must be positive";
  if wave <= 0 then invalid_arg "Async_client.lookup: wave must be positive";
  if retries < 0 then invalid_arg "Async_client.lookup: retries must be non-negative";
  if backoff < 1. then invalid_arg "Async_client.lookup: backoff must be >= 1";
  (match deadline with
  | Some d when d <= 0. -> invalid_arg "Async_client.lookup: deadline must be positive"
  | _ -> ());
  (match hedge with
  | Some d when d <= 0. -> invalid_arg "Async_client.lookup: hedge must be positive"
  | _ -> ());
  match cache with
  | None ->
    let st =
      make_state cluster engine ~latency ~timeout ~retries ~backoff ~wave ~t ~hedge
        ~breaker ~jitter ~order k
    in
    schedule_deadline st deadline;
    (* Launch lazily from the engine so the caller can schedule lookups
       "now" before running the engine. *)
    ignore (Engine.schedule_after engine ~delay:0. (fun _ -> pump st))
  | Some (c, key) ->
    (* The cache is consulted at launch time (engine time), so the
       verdict reflects every probe already in flight.  Cache-served
       lookups contact no server, draw nothing and schedule nothing:
       their outcome carries zero attempts and the leader's result. *)
    ignore
      (Engine.schedule_after engine ~delay:0. (fun _ ->
           let started_at = Engine.now engine in
           let served result ~now =
             k
               { result;
                 started_at;
                 completed_at = now;
                 attempts = 0;
                 retries = 0;
                 timeouts = 0;
                 duplicates = 0;
                 busies = 0;
                 hedges = 0;
                 breaker_skips = 0;
                 gave_up = false }
           in
           let probe k =
             let st =
               make_state cluster engine ~latency ~timeout ~retries ~backoff ~wave ~t
                 ~hedge ~breaker ~jitter ~order k
             in
             schedule_deadline st deadline;
             pump st
           in
           let complete (o : outcome) =
             Client_cache.complete c ~key ~now:(Engine.now engine)
               ~ok:((not o.gave_up) && Lookup_result.satisfied o.result)
               ~attempts:o.attempts o.result
           in
           match Client_cache.lookup c ~key ~now:started_at ~waiter:served with
           | Client_cache.Hit r | Client_cache.Stale_wait r -> served r ~now:started_at
           | Client_cache.Join -> ()
           | Client_cache.Lead ->
             probe (fun o ->
                 complete o;
                 k o)
           | Client_cache.Stale r ->
             (* Stale-while-revalidate: the caller is answered from the
                cache immediately; the probe runs on in the background
                and only refreshes the entry (and any waiters). *)
             served r ~now:started_at;
             probe complete))

let lookup_random_order cluster engine ~latency ~timeout ?retries ?backoff ?deadline
    ?hedge ?breaker ?jitter ?cache ?wave ~t k =
  let order =
    Array.to_list (Plookup_util.Rng.perm (Cluster.rng cluster) (Cluster.n cluster))
  in
  lookup cluster engine ~latency ~timeout ?retries ?backoff ?deadline ?hedge ?breaker
    ?jitter ?cache ~order ?wave ~t k
