open Plookup
open Plookup_store
open Plookup_util
module Engine = Plookup_sim.Engine
module Churn = Plookup_workload.Churn

let id = "churn"

let title =
  "Extension: self-healing under churn, repair off vs on (mttf=50, mttr=50, t=40)"

type tally = {
  mutable lookups : int;
  mutable satisfied : int;  (* >= t *live* entries returned *)
  mutable stale : int;  (* deleted entries returned, total *)
  mutable below_target : int;  (* samples with live coverage < t *)
  mutable contacts : int;
  mutable up_samples : int;
}

(* One churn run of one strategy: h entries placed, servers failing and
   recovering, a steady-state update stream (each update deletes one
   random live entry and adds a fresh one), one lookup per time unit.
   The updates are what make recovery visible: a server that was down
   missed deletes (it will serve stale reads) and adds (it degrades
   success) until the repair layer reconciles it. *)
let run_strategy ctx ~obs ~n ~h ~t ~mttf ~mttr ~horizon ~update_every ~repair config =
  let seed = Ctx.run_seed ctx (Hashtbl.hash (Service.config_name config)) in
  let service = Service.create ~seed ~obs ~repair ~n config in
  let gen = Entry.Gen.create () in
  let initial = Entry.Gen.batch gen h in
  Service.place service initial;
  let cluster = Service.cluster service in
  let engine = Engine.create () in
  (match Service.repair service with
  | Some rep -> Repair.attach_engine ~until:horizon rep engine
  | None -> ());
  let churn_events =
    Churn.generate (Rng.create (seed lxor 0xC0FFEE)) ~n ~mttf ~mttr ~horizon
  in
  Churn.drive engine
    ~apply:(fun ev ->
      if ev.Churn.up then Cluster.recover cluster ev.Churn.server
      else Cluster.fail cluster ev.Churn.server)
    churn_events;
  (* The experiment's own ground truth of what is alive.  Entry ids are
     issued sequentially by [Entry.Gen], so a Fenwick tree over the id
     space gives the uniform victim pick by rank — the k-th smallest
     live id, exactly what sorting the table and indexing used to
     produce — in O(log ids) per update instead of an O(h log h) sort. *)
  let live = Hashtbl.create (2 * h) in
  let live_fen = Fenwick.create (h + int_of_float (horizon /. update_every) + 1) in
  let live_add e =
    Hashtbl.replace live (Entry.id e) e;
    Fenwick.add live_fen (Entry.id e) 1
  in
  let live_remove id =
    Hashtbl.remove live id;
    Fenwick.add live_fen id (-1)
  in
  List.iter live_add initial;
  let deleted = Hashtbl.create 64 in
  let wl_rng = Rng.create (seed lxor 0xBEEF) in
  for k = 1 to int_of_float (horizon /. update_every) do
    ignore
      (Engine.schedule_at engine
         ~time:((float_of_int k *. update_every) +. 0.25)
         (fun _ ->
           (* A client whose update gets no reply (coordinator down, or
              no server up) fails fast; the update never happened. *)
           if Service.can_update service then begin
           match Fenwick.total live_fen with
           | 0 -> ()
           | alive ->
             let victim_id = Fenwick.select live_fen (Rng.int wl_rng alive) in
             let victim = Hashtbl.find live victim_id in
             Service.delete service victim;
             live_remove victim_id;
             Hashtbl.replace deleted victim_id ();
             let fresh = Entry.Gen.fresh gen in
             Service.add service fresh;
             live_add fresh
           end))
  done;
  let tally =
    { lookups = 0; satisfied = 0; stale = 0; below_target = 0; contacts = 0; up_samples = 0 }
  in
  for i = 1 to int_of_float horizon do
    ignore
      (Engine.schedule_at engine ~time:(float_of_int i) (fun _ ->
           let r = Service.partial_lookup service t in
           tally.lookups <- tally.lookups + 1;
           let returned = r.Lookup_result.entries in
           let live_returned =
             List.length (List.filter (fun e -> Hashtbl.mem live (Entry.id e)) returned)
           in
           if live_returned >= t then tally.satisfied <- tally.satisfied + 1;
           tally.stale <-
             tally.stale
             + List.length (List.filter (fun e -> Hashtbl.mem deleted (Entry.id e)) returned);
           tally.contacts <- tally.contacts + r.Lookup_result.servers_contacted;
           tally.up_samples <- tally.up_samples + Cluster.up_count cluster;
           (* The doc'd metric: how often the system as a whole could not
              have served t live entries no matter how many servers a
              client contacted. *)
           let live_coverage =
             Entry.Set.fold
               (fun e acc -> if Hashtbl.mem live (Entry.id e) then acc + 1 else acc)
               (Cluster.coverage cluster) 0
           in
           if live_coverage < t then tally.below_target <- tally.below_target + 1))
  done;
  ignore (Engine.run ~until:horizon engine);
  (tally, Option.map Repair.stats (Service.repair service), Option.map Repair.repair_messages (Service.repair service))

let run ?(n = 10) ?(h = 100) ?(budget = 200) ?(t = 40) ?(mttf = 50.) ?(mttr = 50.)
    ?(horizon = 5000.) ?(update_every = 10.) ctx =
  let mttf = Option.value ctx.Ctx.mttf ~default:mttf in
  let mttr = Option.value ctx.Ctx.mttr ~default:mttr in
  let horizon = Option.value ctx.Ctx.horizon ~default:horizon in
  let horizon = float_of_int (Ctx.scaled ctx (int_of_float horizon)) in
  let repair_cfg = Option.value ctx.Ctx.repair ~default:Repair.default_config in
  let table_title =
    Printf.sprintf
      "Extension: self-healing under churn, repair off vs on (mttf=%g, mttr=%g, t=%d)"
      mttf mttr t
  in
  let table =
    Table.create ~title:table_title
      ~columns:
        [ "strategy";
          "repair";
          "success %";
          "stale reads";
          "below-t %";
          "mean cost";
          "restore time";
          "repair msgs" ]
  in
  let configs =
    (* Every registered strategy at the common storage budget, so a
       newly registered strategy joins the churn drill automatically.
       Fixed-x is overridden: it needs x >= t to play at all (plus a
       little headroom). *)
    List.map
      (fun config ->
        if Service.kind config = "Fixed" then Service.fixed (t + 5) else config)
      (Service.all_configs ~budget ~n ~h ())
  in
  (* One parallel unit per (strategy, repair mode) cell; each cell's
     seed derives from the strategy name alone, so cells are
     order-independent and rows are added back in the historical order. *)
  let cells =
    Array.of_list
      (List.concat_map
         (fun config ->
           (config, Repair.disabled)
           ::
           (if repair_cfg.Repair.mode <> Repair.Off then [ (config, repair_cfg) ] else []))
         configs)
  in
  (* Each cell is one globally-coupled simulation (per-lookup coverage
     folds read every store), so it cannot be striped without changing
     results; the [--shards] budget folds into the cell fan-out
     instead (DESIGN.md, "Parallelism"). *)
  let measured =
    Runner.map_obs ~workers:(Ctx.workers ctx) ctx ~count:(Array.length cells)
      (fun i ~obs ->
        let config, repair = cells.(i) in
        (config, repair,
         run_strategy ctx ~obs ~n ~h ~t ~mttf ~mttr ~horizon ~update_every ~repair config))
  in
  Array.iter
    (fun (config, repair, (tally, stats, repair_msgs)) ->
      let per_lookup v = float_of_int v /. float_of_int (max 1 tally.lookups) in
      Table.add_row table
        [ Table.S (Service.config_name config);
          Table.S (Repair.mode_name repair.Repair.mode);
          Table.F (100. *. per_lookup tally.satisfied);
          Table.I tally.stale;
          Table.F (100. *. per_lookup tally.below_target);
          Table.F (per_lookup tally.contacts);
          (match stats with
          | Some { Repair.mean_restore_time = Some rt; _ } -> Table.F rt
          | Some { Repair.mean_restore_time = None; _ } | None -> Table.S "-");
          Table.I (Option.value repair_msgs ~default:0) ])
    measured;
  table
