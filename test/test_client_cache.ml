open Plookup
open Plookup_store
module Engine = Plookup_sim.Engine
module Net = Plookup_net.Net

(* A satisfied one-entry result whose entry id encodes the key, so any
   cross-key mixup is visible in the payload itself. *)
let result_for key =
  { Lookup_result.entries = [ Entry.v key ]; servers_contacted = 1; target = 1 }

let sorted_ids (r : Lookup_result.t) =
  List.sort compare (List.map Entry.id r.Lookup_result.entries)

(* --- unit tests on the bare cache ----------------------------------- *)

let test_verdict_lifecycle () =
  let c = Client_cache.create ~ttl:10. ~capacity:4 () in
  let waiter _ ~now:_ = Alcotest.fail "no probe in flight" in
  (match Client_cache.lookup c ~key:7 ~now:0. ~waiter with
  | Client_cache.Lead -> ()
  | _ -> Alcotest.fail "cold cache must Lead");
  Client_cache.complete c ~key:7 ~now:1. ~ok:true ~attempts:2 (result_for 7);
  (match Client_cache.lookup c ~key:7 ~now:5. ~waiter with
  | Client_cache.Hit r -> Helpers.check_int "hit payload" 7 (List.hd (sorted_ids r))
  | _ -> Alcotest.fail "fresh entry must Hit");
  (* Past ttl with swr = 0 the entry is dead: a plain miss again. *)
  (match Client_cache.lookup c ~key:7 ~now:12. ~waiter with
  | Client_cache.Lead -> ()
  | _ -> Alcotest.fail "expired entry must Lead");
  Client_cache.complete c ~key:7 ~now:12. ~ok:true ~attempts:1 (result_for 7);
  let s = Client_cache.stats c in
  Helpers.check_int "one hit" 1 s.Client_cache.hits;
  Helpers.check_int "two misses" 2 s.Client_cache.misses

let test_swr_serves_stale_and_refreshes_once () =
  let c = Client_cache.create ~ttl:10. ~swr:20. ~capacity:4 () in
  let waiter _ ~now:_ = Alcotest.fail "no probe in flight" in
  (match Client_cache.lookup c ~key:3 ~now:0. ~waiter with
  | Client_cache.Lead -> Client_cache.complete c ~key:3 ~now:0. ~ok:true ~attempts:1 (result_for 3)
  | _ -> Alcotest.fail "cold cache must Lead");
  (* Inside (ttl, ttl+swr]: served stale, caller owns the refresh. *)
  (match Client_cache.lookup c ~key:3 ~now:15. ~waiter with
  | Client_cache.Stale r -> Helpers.check_int "stale payload" 3 (List.hd (sorted_ids r))
  | _ -> Alcotest.fail "swr window must serve Stale");
  (* Second stale reader while that refresh is in flight: no second probe. *)
  (match Client_cache.lookup c ~key:3 ~now:16. ~waiter with
  | Client_cache.Stale_wait _ -> ()
  | _ -> Alcotest.fail "refresh in flight must Stale_wait");
  Client_cache.complete c ~key:3 ~now:17. ~ok:true ~attempts:4 (result_for 3);
  (match Client_cache.lookup c ~key:3 ~now:18. ~waiter with
  | Client_cache.Hit _ -> ()
  | _ -> Alcotest.fail "refreshed entry must Hit");
  let s = Client_cache.stats c in
  Helpers.check_int "two stale serves" 2 s.Client_cache.stale_served;
  Helpers.check_int "one refresh" 1 s.Client_cache.refreshes;
  Helpers.check_int "refresh traffic accounted" 4 s.Client_cache.refresh_sends;
  (* Past ttl + swr the entry is dead outright. *)
  match Client_cache.lookup c ~key:3 ~now:50. ~waiter with
  | Client_cache.Lead -> ()
  | _ -> Alcotest.fail "beyond swr must Lead"

let test_join_waiters_fire_in_order () =
  let c = Client_cache.create ~capacity:4 () in
  let served = ref [] in
  let waiter tag r ~now = served := (tag, sorted_ids r, now) :: !served in
  (match Client_cache.lookup c ~key:1 ~now:0. ~waiter:(waiter "leader") with
  | Client_cache.Lead -> ()
  | _ -> Alcotest.fail "first lookup leads");
  (match Client_cache.lookup c ~key:1 ~now:1. ~waiter:(waiter "w1") with
  | Client_cache.Join -> ()
  | _ -> Alcotest.fail "second lookup joins");
  (match Client_cache.lookup c ~key:1 ~now:2. ~waiter:(waiter "w2") with
  | Client_cache.Join -> ()
  | _ -> Alcotest.fail "third lookup joins");
  Client_cache.complete c ~key:1 ~now:5. ~ok:true ~attempts:1 (result_for 1);
  (match List.rev !served with
  | [ ("w1", [ 1 ], 5.); ("w2", [ 1 ], 5.) ] -> ()
  | _ -> Alcotest.fail "waiters must get the leader's result in arrival order");
  Helpers.check_int "coalesced" 2 (Client_cache.stats c).Client_cache.coalesced

let test_negative_caching () =
  let waiter _ ~now:_ = Alcotest.fail "no probe in flight" in
  let failed = Lookup_result.empty ~target:5 in
  (* Off by default: a failed probe caches nothing. *)
  let c = Client_cache.create ~capacity:4 () in
  ignore (Client_cache.lookup c ~key:9 ~now:0. ~waiter);
  Client_cache.complete c ~key:9 ~now:0. ~ok:false ~attempts:3 failed;
  (match Client_cache.lookup c ~key:9 ~now:1. ~waiter with
  | Client_cache.Lead -> ()
  | _ -> Alcotest.fail "no negative ttl: failure is not cached");
  Client_cache.complete c ~key:9 ~now:1. ~ok:true ~attempts:1 (result_for 9);
  (* A later failure leaves the previous good entry in place. *)
  Client_cache.invalidate c ~key:9;
  (* On: the failure itself is served for negative_ttl time units. *)
  let c = Client_cache.create ~negative_ttl:5. ~capacity:4 () in
  ignore (Client_cache.lookup c ~key:9 ~now:0. ~waiter);
  Client_cache.complete c ~key:9 ~now:0. ~ok:false ~attempts:3 failed;
  (match Client_cache.lookup c ~key:9 ~now:4. ~waiter with
  | Client_cache.Hit r ->
    Alcotest.(check bool) "negative hit is the failure" false (Lookup_result.satisfied r)
  | _ -> Alcotest.fail "inside negative ttl: Hit");
  (match Client_cache.lookup c ~key:9 ~now:6. ~waiter with
  | Client_cache.Lead -> ()
  | _ -> Alcotest.fail "past negative ttl: Lead");
  Client_cache.complete c ~key:9 ~now:6. ~ok:true ~attempts:1 (result_for 9);
  Helpers.check_int "negative hits" 1 (Client_cache.stats c).Client_cache.negative_hits

let test_lru_evicts_least_recently_used () =
  let c = Client_cache.create ~capacity:2 () in
  let waiter _ ~now:_ = () in
  let fill key now =
    ignore (Client_cache.lookup c ~key ~now ~waiter);
    Client_cache.complete c ~key ~now ~ok:true ~attempts:1 (result_for key)
  in
  fill 0 0.;
  fill 1 1.;
  (* Touch key 0 so key 1 is the LRU victim when 2 arrives. *)
  (match Client_cache.lookup c ~key:0 ~now:2. ~waiter with
  | Client_cache.Hit _ -> ()
  | _ -> Alcotest.fail "key 0 still cached");
  fill 2 3.;
  Helpers.check_int "bounded" 2 (Client_cache.cardinal c);
  Helpers.check_int "one eviction" 1 (Client_cache.stats c).Client_cache.evictions;
  (match Client_cache.lookup c ~key:1 ~now:4. ~waiter with
  | Client_cache.Lead -> ()
  | _ -> Alcotest.fail "key 1 was the LRU victim");
  Client_cache.complete c ~key:1 ~now:4. ~ok:true ~attempts:1 (result_for 1);
  match Client_cache.lookup c ~key:0 ~now:5. ~waiter with
  | Client_cache.Hit _ -> Alcotest.fail "touching key 0 must have protected... key 2"
  | Client_cache.Lead -> ()
  | _ -> Alcotest.fail "key 0 evicted by key 1's re-insert"

(* Model check: under arbitrary op sequences the LRU never exceeds its
   capacity, every Hit carries its own key's payload, and every Lead is
   balanced by a complete (so no op sequence can wedge the flight
   table). *)
let model_ops_gen =
  QCheck2.Gen.(
    pair
      (int_range 1 6)
      (list_size (int_range 0 200) (triple (int_range 0 9) (float_bound_exclusive 5.) bool)))

let test_model_lru_bound_and_key_fidelity =
  Helpers.qcheck ~count:150 "lru bound and key fidelity" model_ops_gen
    (fun (capacity, ops) ->
      let c = Client_cache.create ~ttl:8. ~capacity () in
      let now = ref 0. in
      let ok = ref true in
      let check_key key r =
        if sorted_ids r <> [ key ] then ok := false
      in
      List.iter
        (fun (key, dt, invalidate) ->
          now := !now +. dt;
          if invalidate then Client_cache.invalidate c ~key
          else begin
            (match Client_cache.lookup c ~key ~now:!now ~waiter:(fun r ~now:_ -> check_key key r) with
            | Client_cache.Hit r | Client_cache.Stale_wait r -> check_key key r
            | Client_cache.Stale r ->
              check_key key r;
              Client_cache.complete c ~key ~now:!now ~ok:true ~attempts:1 (result_for key)
            | Client_cache.Join -> ()
            | Client_cache.Lead ->
              Client_cache.complete c ~key ~now:!now ~ok:true ~attempts:1 (result_for key));
            if Client_cache.cardinal c > Client_cache.capacity c then ok := false
          end)
        ops;
      !ok)

(* --- integration with Async_client ---------------------------------- *)

(* Four servers, each holding a private pair of entries; key [k] probes
   only server [k mod 4] for both of that server's entries, so a result
   served for the wrong key is visible in its entry ids. *)
let n_servers = 4

let private_cluster () =
  let cluster = Cluster.create ~seed:19 ~n:n_servers () in
  for s = 0 to n_servers - 1 do
    ignore (Server_store.add (Cluster.store cluster s) (Entry.v (100 * s)));
    ignore (Server_store.add (Cluster.store cluster s) (Entry.v ((100 * s) + 1)))
  done;
  Net.set_handler (Cluster.net cluster) (fun dst _src msg ->
      match (msg : Msg.t) with
      | Msg.Data (Msg.Lookup t) ->
        Msg.Entries
          (Server_store.random_pick (Cluster.store cluster dst) (Cluster.rng cluster) t)
      | _ -> Msg.Ack);
  cluster

let expected_ids k =
  let s = k mod n_servers in
  [ 100 * s; (100 * s) + 1 ]

let run_cached_schedule ?(ttl = 10.) ?(capacity = 8) ~cache ops =
  let cluster = private_cluster () in
  let engine = Engine.create () in
  let c =
    if cache then Some (Client_cache.create ~ttl ~capacity ()) else None
  in
  let outcomes = ref [] in
  List.iteri
    (fun i (key, time) ->
      ignore
        (Engine.schedule_at engine ~time (fun _ ->
             Async_client.lookup cluster engine
               ~latency:(fun () -> 10.)
               ~timeout:100.
               ?cache:(Option.map (fun c -> (c, key)) c)
               ~order:[ key mod n_servers ] ~t:2
               (fun o -> outcomes := (i, key, o) :: !outcomes))))
    ops;
  ignore (Engine.run engine);
  Helpers.check_int "every lookup completed" (List.length ops) (List.length !outcomes);
  (List.sort compare !outcomes, c)

let test_cache_hit_skips_the_network () =
  let ops = [ (5, 0.); (5, 50.) ] in
  let outcomes, c = run_cached_schedule ~ttl:100. ~cache:true ops in
  (match outcomes with
  | [ (0, _, first); (1, _, second) ] ->
    Alcotest.(check bool) "leader probed" true (first.Async_client.attempts > 0);
    Helpers.check_int "hit sent nothing" 0 second.Async_client.attempts;
    Alcotest.(check (list int)) "same entries" (sorted_ids first.Async_client.result)
      (sorted_ids second.Async_client.result)
  | _ -> Alcotest.fail "two outcomes expected");
  match c with
  | Some c -> Helpers.check_int "one hit" 1 (Client_cache.stats c).Client_cache.hits
  | None -> assert false

let test_singleflight_coalesces_concurrent_misses () =
  (* Both lookups launch before the 20ms round trip completes: the
     second must join the first probe, not start its own. *)
  let ops = [ (5, 0.); (5, 1.) ] in
  let outcomes, c = run_cached_schedule ~cache:true ops in
  (match outcomes with
  | [ (0, _, leader); (1, _, joiner) ] ->
    Alcotest.(check bool) "leader probed" true (leader.Async_client.attempts > 0);
    Helpers.check_int "joiner sent nothing" 0 joiner.Async_client.attempts;
    Alcotest.(check (list int)) "joiner got the leader's result"
      (sorted_ids leader.Async_client.result)
      (sorted_ids joiner.Async_client.result);
    Alcotest.(check bool) "joiner completed when the probe landed" true
      (joiner.Async_client.completed_at >= leader.Async_client.completed_at)
  | _ -> Alcotest.fail "two outcomes expected");
  match c with
  | Some c -> Helpers.check_int "coalesced" 1 (Client_cache.stats c).Client_cache.coalesced
  | None -> assert false

let test_staleness_bounded_by_ttl () =
  (* Delete one of server 0's entries at t=5.  A cached lookup inside
     the TTL still serves the deleted entry (the documented staleness
     window); past the TTL the client re-probes and sees the truth. *)
  let cluster = private_cluster () in
  let engine = Engine.create () in
  let c = Client_cache.create ~ttl:10. ~capacity:8 () in
  let results = ref [] in
  let look ~time = ignore
      (Engine.schedule_at engine ~time (fun _ ->
           Async_client.lookup cluster engine
             ~latency:(fun () -> 1.)
             ~timeout:100. ~cache:(c, 0) ~order:[ 0 ] ~t:2
             (fun o -> results := (time, o) :: !results)))
  in
  look ~time:0.;
  ignore
    (Engine.schedule_at engine ~time:5. (fun _ ->
         ignore (Server_store.remove (Cluster.store cluster 0) (Entry.v 1))));
  look ~time:8.;
  look ~time:20.;
  ignore (Engine.run engine);
  match List.sort compare (List.rev !results) with
  | [ (0., first); (8., stale); (20., fresh) ] ->
    Alcotest.(check (list int)) "initial probe sees both" [ 0; 1 ]
      (sorted_ids first.Async_client.result);
    Alcotest.(check (list int)) "within ttl: deleted entry still served" [ 0; 1 ]
      (sorted_ids stale.Async_client.result);
    Helpers.check_int "and served locally" 0 stale.Async_client.attempts;
    Alcotest.(check (list int)) "past ttl: re-probe sees the delete" [ 0 ]
      (sorted_ids fresh.Async_client.result)
  | _ -> Alcotest.fail "three outcomes expected"

(* The headline model property: over an arbitrary schedule against a
   static cluster, cache-on lookups return exactly the cache-off
   results (the staleness window can only show through when servers
   change), never a result for another key, and never more traffic. *)
let schedule_gen =
  QCheck2.Gen.(
    triple (int_range 1 8) (float_range 5. 60.)
      (list_size (int_range 1 60) (pair (int_range 0 11) (float_bound_exclusive 8.))))

let test_model_cache_transparent_when_static =
  Helpers.qcheck ~count:75 "cache-on equals cache-off on a static cluster" schedule_gen
    (fun (capacity, ttl, gaps) ->
      let _, ops =
        List.fold_left
          (fun (now, acc) (key, dt) -> (now +. dt, (key, now +. dt) :: acc))
          (0., []) gaps
      in
      let ops = List.rev ops in
      let on, _ = run_cached_schedule ~ttl ~capacity ~cache:true ops in
      let off, _ = run_cached_schedule ~cache:false ops in
      List.for_all2
        (fun (i, key, (on : Async_client.outcome)) (i', _, (off : Async_client.outcome)) ->
          i = i' && sorted_ids on.Async_client.result = expected_ids key
          && sorted_ids on.Async_client.result = sorted_ids off.Async_client.result
          && (not on.Async_client.gave_up)
          && on.Async_client.attempts <= off.Async_client.attempts)
        on off
      && List.fold_left (fun a (_, _, o) -> a + o.Async_client.attempts) 0 on
         <= List.fold_left (fun a (_, _, o) -> a + o.Async_client.attempts) 0 off)

let () =
  Helpers.run "client_cache"
    [
      ( "cache",
        [
          Alcotest.test_case "verdict lifecycle" `Quick test_verdict_lifecycle;
          Alcotest.test_case "swr stale + refresh" `Quick test_swr_serves_stale_and_refreshes_once;
          Alcotest.test_case "join waiters" `Quick test_join_waiters_fire_in_order;
          Alcotest.test_case "negative caching" `Quick test_negative_caching;
          Alcotest.test_case "lru eviction" `Quick test_lru_evicts_least_recently_used;
          test_model_lru_bound_and_key_fidelity;
        ] );
      ( "async_client integration",
        [
          Alcotest.test_case "hit skips the network" `Quick test_cache_hit_skips_the_network;
          Alcotest.test_case "singleflight coalesces" `Quick
            test_singleflight_coalesces_concurrent_misses;
          Alcotest.test_case "staleness bounded by ttl" `Quick test_staleness_bounded_by_ttl;
          test_model_cache_transparent_when_static;
        ] );
    ]
