(* Failover drill: how each strategy degrades as servers die.

   Act 1 places 100 entries on 10 servers at a common storage budget,
   then kills servers one at a time — first randomly, then adversarially
   (the Appendix-A greedy order) — and watches whether a client needing
   t = 25 entries is still served.

   Act 2 turns the self-healing layer on: a server fails, updates land
   while it is down, and the recovery digest sync brings it back without
   a single stale read.

   Run with: dune exec examples/failover.exe *)

open Plookup
open Plookup_store
open Plookup_util
module Metrics = Plookup_metrics

let n = 10
let h = 100
let budget = 200


let strategies = Service.all_configs ~budget ~n ~h ()

let fresh config =
  let service = Service.create ~seed:11 ~n config in
  Service.place service (Entry.Gen.batch (Entry.Gen.create ()) h);
  service

let drill ~order ~target config =
  let service = fresh config in
  let cluster = Service.cluster service in
  let victims =
    match order with
    | `Random ->
      let rng = Rng.create 5 in
      Array.to_list (Rng.perm rng n)
    | `Adversarial ->
      let placement = Metrics.Fault_tolerance.snapshot cluster ~capacity:h in
      Metrics.Fault_tolerance.greedy_failure_order placement
  in
  let survived = ref 0 in
  let alive = ref true in
  List.iteri
    (fun i victim ->
      if !alive then begin
        Cluster.fail cluster victim;
        let r = Service.partial_lookup service target in
        if Lookup_result.satisfied r then survived := i + 1 else alive := false
      end)
    victims;
  !survived

let analytic_tolerance config ~t =
  match (Service.kind config, Service.params config) with
  | "FullReplication", _ -> string_of_int (Metrics.Analytic.fault_tolerance_full ~n)
  | "Fixed", [ x ] -> string_of_int (Metrics.Analytic.fault_tolerance_fixed ~n ~x ~t)
  | ("RoundRobin" | "RoundRobinHA"), y :: _ ->
    string_of_int (Metrics.Analytic.fault_tolerance_round_robin ~n ~h ~y ~t)
  | _ -> "(simulation only)"

let () =
  Format.printf "failover drill: %d entries, %d servers, storage budget %d@." h n budget;
  List.iter
    (fun target ->
      Format.printf "@.target answer size %d:@." target;
      Format.printf "  %-18s %-22s %-22s %s@." "strategy" "greedy-kill survived"
        "analytic tolerance" "lookup cost after 3 kills";
      List.iter
        (fun config ->
          let adversarial = drill ~order:`Adversarial ~target config in
          (* Cost of lookups when 3 arbitrary servers are down. *)
          let service = fresh config in
          let cluster = Service.cluster service in
          List.iter (Cluster.fail cluster) [ 1; 4; 7 ];
          let m = Metrics.Lookup_cost.measure service ~t:target ~lookups:500 in
          Format.printf "  %-18s %-22d %-22s %.2f (fail %.1f%%)@."
            (Service.config_name config)
            adversarial
            (analytic_tolerance config ~t:target)
            m.Metrics.Lookup_cost.mean_cost
            (100. *. m.Metrics.Lookup_cost.failure_rate))
        strategies)
    [ 18; 35 ];
  Format.printf
    "@.at t=18 Fixed-20 shrugs off failures (every server is identical); at t=35 it@.\
     cannot answer at all (coverage 20), while the partitioned strategies keep@.\
     serving but tolerate fewer adversarial kills — Fig. 7 of the paper, live.@.";
  (* Act 2: the same outage with the repair layer on.  Server 2 misses a
     delete and an add while down; without repair it would serve the
     deleted entry forever.  The recovery sync retracts it and ships the
     add, so the first lookup after recovery is already clean. *)
  Format.printf "@.self-healing drill (repair=full):@.";
  List.iter
    (fun config ->
      let service =
        Service.create ~seed:11 ~repair:Repair.default_config ~n config
      in
      let gen = Entry.Gen.create () in
      let batch = Entry.Gen.batch gen h in
      Service.place service batch;
      let cluster = Service.cluster service in
      Cluster.fail cluster 2;
      let victim = List.hd batch in
      Service.delete service victim;
      Service.add service (Entry.Gen.fresh gen);
      Cluster.recover cluster 2;
      let stale = ref 0 in
      for _ = 1 to 200 do
        let r = Service.partial_lookup service 25 in
        if List.exists (Entry.equal victim) r.Lookup_result.entries then incr stale
      done;
      let stats = Option.get (Service.repair service) |> Repair.stats in
      Format.printf
        "  %-18s stale reads after recovery: %d (sync shipped %d, retracted %d, %d \
         hints replayed)@."
        (Service.config_name config)
        !stale stats.Repair.entries_shipped stats.Repair.entries_retracted
        stats.Repair.hints_replayed)
    strategies
