module Net = Plookup_net.Net
module Engine = Plookup_sim.Engine

(* A toy echo protocol: servers reply with (their id, the message). *)
let make ?(n = 4) () =
  let net = Net.create ~n () in
  Net.set_handler net (fun dst _src msg -> (dst, msg));
  net

let test_send_and_reply () =
  let net = make () in
  (match Net.send net ~src:Net.Client ~dst:2 "hi" with
  | Some (2, "hi") -> ()
  | _ -> Alcotest.fail "bad reply");
  Helpers.check_int "one message" 1 (Net.messages_received net);
  Helpers.check_int "dst counted" 1 (Net.messages_received_by net 2);
  Helpers.check_int "others zero" 0 (Net.messages_received_by net 0);
  Helpers.check_int "client request" 1 (Net.client_requests net)

let test_server_to_server_not_client () =
  let net = make () in
  ignore (Net.send net ~src:(Net.Server 0) ~dst:1 "x");
  Helpers.check_int "no client request" 0 (Net.client_requests net);
  Helpers.check_int "message counted" 1 (Net.messages_received net)

let test_broadcast_costs_n () =
  let net = make ~n:5 () in
  let replies = Net.broadcast net ~src:(Net.Server 1) "b" in
  Helpers.check_int "all reply" 5 (List.length replies);
  Helpers.check_int "cost n" 5 (Net.messages_received net);
  Helpers.check_int "one broadcast" 1 (Net.broadcasts net);
  (* Replies come in server order, including the sender. *)
  Alcotest.(check (list int)) "server order" [ 0; 1; 2; 3; 4 ] (List.map fst replies)

let test_failure_drops () =
  let net = make () in
  Net.fail net 1;
  Alcotest.(check bool) "down" false (Net.is_up net 1);
  (match Net.send net ~src:Net.Client ~dst:1 "lost" with
  | None -> ()
  | Some _ -> Alcotest.fail "delivered to failed node");
  Helpers.check_int "dropped" 1 (Net.messages_dropped net);
  Helpers.check_int "not received" 0 (Net.messages_received net);
  Net.recover net 1;
  Alcotest.(check bool) "recovered" true (Net.is_up net 1);
  ignore (Net.send net ~src:Net.Client ~dst:1 "ok");
  Helpers.check_int "received after recovery" 1 (Net.messages_received net)

let test_broadcast_skips_failed () =
  let net = make ~n:4 () in
  Net.fail net 0;
  Net.fail net 3;
  let replies = Net.broadcast net ~src:Net.Client "b" in
  Alcotest.(check (list int)) "only up servers" [ 1; 2 ] (List.map fst replies);
  Helpers.check_int "cost = up servers" 2 (Net.messages_received net);
  Helpers.check_int "dropped two" 2 (Net.messages_dropped net)

let test_fail_exactly () =
  let net = make ~n:5 () in
  Net.fail net 0;
  Net.fail_exactly net [ 2; 4 ];
  Alcotest.(check (list int)) "up set" [ 0; 1; 3 ] (Net.up_servers net)

let test_reset_counters () =
  let net = make () in
  ignore (Net.broadcast net ~src:Net.Client "x");
  Net.reset_counters net;
  Helpers.check_int "received reset" 0 (Net.messages_received net);
  Helpers.check_int "broadcasts reset" 0 (Net.broadcasts net);
  Helpers.check_int "client reset" 0 (Net.client_requests net);
  Helpers.check_int "dropped reset" 0 (Net.messages_dropped net)

let test_no_handler () =
  let net : (string, unit) Net.t = Net.create ~n:2 () in
  Alcotest.check_raises "no handler" (Invalid_argument "Net: no handler installed")
    (fun () -> ignore (Net.send net ~src:Net.Client ~dst:0 "x"))

let test_bad_index () =
  let net = make () in
  Alcotest.check_raises "range" (Invalid_argument "Net: server index out of range")
    (fun () -> ignore (Net.send net ~src:Net.Client ~dst:9 "x"))

let test_create_validation () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Net.create: n must be positive")
    (fun () -> ignore (Net.create ~n:0 () : (unit, unit) Net.t))

let test_wrap_handler () =
  let net = make ~n:2 () in
  let seen = ref [] in
  Net.wrap_handler net (fun inner dst src msg ->
      seen := msg :: !seen;
      inner dst src (msg ^ "!"));
  (match Net.send net ~src:Net.Client ~dst:1 "hi" with
  | Some (1, "hi!") -> ()
  | _ -> Alcotest.fail "wrapper did not transform");
  Alcotest.(check (list string)) "wrapper observed" [ "hi" ] !seen;
  (* Wrapping composes. *)
  Net.wrap_handler net (fun inner dst src msg -> inner dst src (msg ^ "?"));
  (match Net.send net ~src:Net.Client ~dst:0 "x" with
  | Some (0, "x?!") -> ()
  | _ -> Alcotest.fail "wrappers did not compose")

let test_wrap_handler_requires_handler () =
  let net : (string, unit) Net.t = Net.create ~n:2 () in
  Alcotest.check_raises "no handler" (Invalid_argument "Net.wrap_handler: no handler installed")
    (fun () -> Net.wrap_handler net (fun inner -> inner))

let test_status_listener () =
  let net = make ~n:3 () in
  let events = ref [] in
  Net.set_status_listener net (fun i ~up -> events := (i, up) :: !events);
  Net.fail net 1;
  Net.fail net 1 (* repeat: no transition, no event *);
  Net.recover net 1;
  Net.recover net 2 (* already up: no event *);
  Alcotest.(check (list (pair int bool))) "transitions only" [ (1, false); (1, true) ]
    (List.rev !events)

let test_fail_exactly_notifies () =
  let net = make ~n:3 () in
  Net.fail net 0;
  let events = ref [] in
  Net.set_status_listener net (fun i ~up -> events := (i, up) :: !events);
  Net.fail_exactly net [ 2 ];
  (* 0 recovers (transition), 2 fails (transition); 1 untouched. *)
  Alcotest.(check (list (pair int bool))) "recover then fail" [ (0, true); (2, false) ]
    (List.rev !events)

let test_post_without_engine_is_sync () =
  let got = ref [] in
  let net = Net.create ~n:2 () in
  Net.set_handler net (fun dst _src msg ->
      got := (dst, msg) :: !got);
  Net.post net ~src:Net.Client ~dst:1 "now";
  Alcotest.(check bool) "delivered synchronously" true (!got = [ (1, "now") ])

let test_post_with_engine_is_delayed () =
  let engine = Engine.create () in
  let got = ref [] in
  let net = Net.create ~n:3 () in
  Net.set_handler net (fun dst _src msg ->
      got := (Engine.now engine, dst, msg) :: !got);
  Net.attach_engine net engine ~latency:(fun ~src:_ ~dst -> 1. +. float_of_int dst);
  Net.post net ~src:Net.Client ~dst:2 "slow";
  Net.post net ~src:Net.Client ~dst:0 "fast";
  Alcotest.(check bool) "not delivered yet" true (!got = []);
  ignore (Engine.run engine);
  (match List.rev !got with
  | [ (t0, 0, "fast"); (t2, 2, "slow") ] ->
    Helpers.close "latency 1" 1. t0;
    Helpers.close "latency 3" 3. t2
  | _ -> Alcotest.fail "unexpected delivery order")

let test_post_to_failed_node_after_delay () =
  (* Liveness is checked at delivery time, not post time. *)
  let engine = Engine.create () in
  let net = Net.create ~n:2 () in
  Net.set_handler net (fun _ _ _ -> Alcotest.fail "should be dropped");
  Net.attach_engine net engine ~latency:(fun ~src:_ ~dst:_ -> 5.);
  Net.post net ~src:Net.Client ~dst:1 ();
  Net.fail net 1;
  ignore (Engine.run engine);
  Helpers.check_int "dropped at delivery" 1 (Net.messages_dropped net)

(* {2 Fault injection} *)

let test_loss_drops_and_counts () =
  let net = make ~n:2 () in
  Net.set_faults net ~seed:7 ~loss:0.5 ();
  let sent = 400 in
  let delivered = ref 0 in
  for i = 1 to sent do
    match Net.send net ~src:Net.Client ~dst:(i mod 2) "m" with
    | Some _ -> incr delivered
    | None -> ()
  done;
  Helpers.check_int "received matches deliveries" !delivered (Net.messages_received net);
  Helpers.check_int "every send delivered or lost" sent
    (!delivered + Net.messages_lost net);
  Alcotest.(check bool) "some were lost" true (Net.messages_lost net > 0);
  Alcotest.(check bool) "some got through" true (!delivered > 0);
  Helpers.check_int "loss is not the down-server counter" 0 (Net.messages_dropped net)

let test_duplication_delivers_twice () =
  let net = make ~n:2 () in
  Net.set_faults net ~seed:3 ~duplication:1.0 ();
  for _ = 1 to 10 do
    match Net.send net ~src:Net.Client ~dst:1 "m" with
    | Some (1, "m") -> ()
    | _ -> Alcotest.fail "reply lost"
  done;
  Helpers.check_int "each send processed twice" 20 (Net.messages_received net);
  Helpers.check_int "duplicates counted" 10 (Net.duplicates_delivered net)

let test_jitter_bounds_delay () =
  let engine = Engine.create () in
  let net = Net.create ~n:1 () in
  let times = ref [] in
  Net.set_handler net (fun _ _ () -> times := Engine.now engine :: !times);
  Net.attach_engine net engine ~latency:(fun ~src:_ ~dst:_ -> 5.);
  Net.set_faults net ~seed:5 ~jitter:2. ();
  for _ = 1 to 30 do
    Net.post net ~src:Net.Client ~dst:0 ()
  done;
  ignore (Engine.run engine);
  Helpers.check_int "all delivered" 30 (List.length !times);
  List.iter
    (fun t ->
      if t < 5. || t >= 7. then Alcotest.failf "delivery at %f outside [5, 7)" t)
    !times;
  Alcotest.(check bool) "jitter actually spreads deliveries" true
    (List.length (List.sort_uniq compare !times) > 1)

let test_fault_toggle_mid_run () =
  let net = make ~n:1 () in
  Net.set_faults net ~seed:1 ~loss:0.9 ();
  Net.set_faults_enabled net false;
  for _ = 1 to 50 do
    match Net.send net ~src:Net.Client ~dst:0 "m" with
    | Some _ -> ()
    | None -> Alcotest.fail "disabled faults still dropped a message"
  done;
  Net.set_faults_enabled net true;
  let lost_before = Net.messages_lost net in
  for _ = 1 to 50 do
    ignore (Net.send net ~src:Net.Client ~dst:0 "m")
  done;
  Alcotest.(check bool) "re-enabled faults lose messages" true
    (Net.messages_lost net > lost_before);
  Net.clear_faults net;
  Alcotest.(check bool) "cleared" false (Net.faults_enabled net)

let test_fault_determinism () =
  (* Same seed => identical drop/duplicate/jitter schedule, independent
     of anything but the per-link traffic sequence. *)
  let schedule seed =
    let engine = Engine.create () in
    let net = Net.create ~n:3 () in
    let log = ref [] in
    Net.set_handler net (fun dst _src msg -> log := (Engine.now engine, dst, msg) :: !log);
    Net.attach_engine net engine ~latency:(fun ~src:_ ~dst:_ -> 5.);
    Net.set_faults net ~seed ~loss:0.2 ~duplication:0.2 ~jitter:3. ();
    for i = 1 to 60 do
      Net.post net ~src:Net.Client ~dst:(i mod 3) i
    done;
    ignore (Engine.run engine);
    (List.rev !log, Net.messages_lost net, Net.duplicates_delivered net)
  in
  Alcotest.(check bool) "same seed, same schedule" true (schedule 42 = schedule 42);
  Alcotest.(check bool) "different seed, different schedule" true
    (schedule 42 <> schedule 43)

let test_set_faults_validation () =
  let net = make () in
  Alcotest.check_raises "loss = 1" (Invalid_argument "Net.set_faults: loss must be in [0, 1)")
    (fun () -> Net.set_faults net ~seed:0 ~loss:1.0 ());
  Alcotest.check_raises "negative jitter"
    (Invalid_argument "Net.set_faults: jitter must be non-negative") (fun () ->
      Net.set_faults net ~seed:0 ~jitter:(-1.) ())

(* {2 Partitions} *)

let test_partition_blocks_crossing_links () =
  let net = make ~n:4 () in
  Net.partition net ~name:"split" ~a:[ 0; 1 ] ~b:[ 2; 3 ] ();
  (* Clients default to side A. *)
  (match Net.send net ~src:Net.Client ~dst:0 "m" with
  | Some _ -> ()
  | None -> Alcotest.fail "client to own side blocked");
  (match Net.send net ~src:Net.Client ~dst:2 "m" with
  | None -> ()
  | Some _ -> Alcotest.fail "client crossed the cut");
  (match Net.send net ~src:(Net.Server 0) ~dst:3 "m" with
  | None -> ()
  | Some _ -> Alcotest.fail "server crossed the cut");
  (match Net.send net ~src:(Net.Server 2) ~dst:3 "m" with
  | Some _ -> ()
  | None -> Alcotest.fail "same-side servers blocked");
  Helpers.check_int "blocked counted" 2 (Net.messages_blocked net);
  Alcotest.(check bool) "reachable agrees" false
    (Net.reachable net ~src:Net.Client ~dst:2);
  Alcotest.(check bool) "reachable same side" true
    (Net.reachable net ~src:Net.Client ~dst:1)

let test_partition_client_side_b () =
  let net = make ~n:2 () in
  Net.partition net ~name:"p" ~clients:`B ~a:[ 0 ] ~b:[ 1 ] ();
  (match Net.send net ~src:Net.Client ~dst:0 "m" with
  | None -> ()
  | Some _ -> Alcotest.fail "client should sit on side B");
  match Net.send net ~src:Net.Client ~dst:1 "m" with
  | Some _ -> ()
  | None -> Alcotest.fail "client to side B blocked"

let test_partition_unlisted_servers_unaffected () =
  let net = make ~n:3 () in
  Net.partition net ~name:"p" ~a:[ 0 ] ~b:[ 1 ] ();
  (* Server 2 is on neither side: it talks to everyone. *)
  (match Net.send net ~src:(Net.Server 2) ~dst:0 "m" with
  | Some _ -> ()
  | None -> Alcotest.fail "unlisted server blocked");
  match Net.send net ~src:(Net.Server 2) ~dst:1 "m" with
  | Some _ -> ()
  | None -> Alcotest.fail "unlisted server blocked"

let test_heal_restores_links () =
  let net = make ~n:2 () in
  Net.partition net ~name:"p" ~a:[ 0 ] ~b:[ 1 ] ();
  Alcotest.(check (list string)) "active" [ "p" ] (Net.partitions net);
  Net.heal net ~name:"p";
  Alcotest.(check (list string)) "healed" [] (Net.partitions net);
  match Net.send net ~src:(Net.Server 0) ~dst:1 "m" with
  | Some _ -> ()
  | None -> Alcotest.fail "healed link still blocked"

let test_partitions_compose () =
  let net = make ~n:3 () in
  Net.partition net ~name:"p1" ~a:[ 0 ] ~b:[ 1 ] ();
  Net.partition net ~name:"p2" ~a:[ 0 ] ~b:[ 2 ] ();
  Alcotest.(check bool) "p1 cuts" false (Net.reachable net ~src:(Net.Server 0) ~dst:1);
  Alcotest.(check bool) "p2 cuts" false (Net.reachable net ~src:(Net.Server 0) ~dst:2);
  Net.heal net ~name:"p1";
  Alcotest.(check bool) "p1 healed" true (Net.reachable net ~src:(Net.Server 0) ~dst:1);
  Alcotest.(check bool) "p2 still cuts" false
    (Net.reachable net ~src:(Net.Server 0) ~dst:2);
  Net.heal_all net;
  Alcotest.(check bool) "all healed" true (Net.reachable net ~src:(Net.Server 0) ~dst:2)

let test_partition_validation () =
  let net = make ~n:2 () in
  Alcotest.check_raises "both sides"
    (Invalid_argument "Net.partition: a server cannot be on both sides") (fun () ->
      Net.partition net ~name:"bad" ~a:[ 0 ] ~b:[ 0 ] ())

let test_up_tracking_matches_list () =
  (* up_count / kth_up / up_servers_into are the O(log n) and
     allocation-free views of up_servers; they must agree with the list
     through an arbitrary fail/recover history. *)
  let net = make ~n:9 () in
  let check () =
    let sorted = Net.up_servers net in
    Helpers.check_int "up_count" (List.length sorted) (Net.up_count net);
    List.iteri
      (fun k expected -> Helpers.check_int "kth_up" expected (Net.kth_up net k))
      sorted;
    let buf = Array.make 9 (-1) in
    let len = Net.up_servers_into net buf in
    Helpers.check_int "into count" (List.length sorted) len;
    Alcotest.(check (list int)) "into contents" sorted
      (Array.to_list (Array.sub buf 0 len))
  in
  check ();
  List.iter
    (fun (op, s) ->
      (match op with `Fail -> Net.fail net s | `Recover -> Net.recover net s);
      check ())
    [ (`Fail, 2); (`Fail, 7); (`Fail, 0); (`Recover, 7); (`Fail, 8); (`Recover, 2);
      (`Fail, 4); (`Fail, 1); (`Recover, 0) ]

let prop_message_count_additive =
  Helpers.qcheck "k sends = k received messages"
    QCheck2.Gen.(int_range 0 200)
    (fun k ->
      let net = make ~n:3 () in
      for i = 1 to k do
        ignore (Net.send net ~src:Net.Client ~dst:(i mod 3) "m")
      done;
      Net.messages_received net = k
      && Net.messages_received_by net 0
         + Net.messages_received_by net 1
         + Net.messages_received_by net 2
         = k)

(* {2 Capacity model (queueing, shedding, gray failure)} *)

let test_capacity_queueing_serializes_service () =
  (* service_rate 0.5 => 2 time units per request: three requests
     arriving together at t=5 are served at 7, 9 and 11. *)
  let engine = Engine.create () in
  let net = Net.create ~n:1 () in
  let served = ref [] in
  Net.set_handler net (fun _ _ () -> served := Engine.now engine :: !served);
  Net.attach_engine net engine ~latency:(fun ~src:_ ~dst:_ -> 5.);
  Net.set_capacity net ~service_rate:0.5 ~queue_limit:10 ();
  Alcotest.(check bool) "capacity installed" true (Net.has_capacity net);
  for _ = 1 to 3 do
    Net.post net ~src:Net.Client ~dst:0 ()
  done;
  ignore (Engine.run engine);
  Alcotest.(check (list (float 1e-9)))
    "service times back to back" [ 7.; 9.; 11. ] (List.rev !served);
  Helpers.check_int "all received" 3 (Net.messages_received net);
  Helpers.check_int "nothing shed" 0 (Net.messages_shed net)

let test_capacity_sheds_when_full () =
  (* queue_limit 2: of five simultaneous arrivals, two queue and three
     are shed silently — never received, not counted as down-drops. *)
  let engine = Engine.create () in
  let net = Net.create ~n:1 () in
  Net.set_handler net (fun _ _ () -> ());
  Net.attach_engine net engine ~latency:(fun ~src:_ ~dst:_ -> 1.);
  Net.set_capacity net ~service_rate:0.1 ~queue_limit:2 ();
  for _ = 1 to 5 do
    Net.post net ~src:Net.Client ~dst:0 ()
  done;
  ignore (Engine.run engine);
  Helpers.check_int "two served" 2 (Net.messages_received net);
  Helpers.check_int "three shed" 3 (Net.messages_shed net);
  Helpers.check_int "sheds are not down-drops" 0 (Net.messages_dropped net);
  Helpers.check_int "queue drained" 0 (Net.queue_depth net 0)

let test_capacity_nack_fast_reply () =
  (* With a nack configured, the shed request's caller gets the nack
     after only the reply latency — no service time spent. *)
  let engine = Engine.create () in
  let net = Net.create ~n:1 () in
  Net.set_handler net (fun _ _ () -> `Served);
  Net.set_capacity net ~service_rate:0.1 ~queue_limit:1 ~nack:`Busy ();
  let replies = ref [] in
  let call () =
    Net.call_async net engine
      ~latency:(fun ~src:_ ~dst:_ -> 1.)
      ~src:Net.Client ~dst:0 ()
      (fun r -> replies := (Engine.now engine, r) :: !replies)
  in
  call ();
  call ();
  ignore (Engine.run engine);
  (match List.rev !replies with
  | [ (t_busy, `Busy); (t_served, `Served) ] ->
    (* Request 2 arrives at t=1 behind a full queue: nack back by t=2.
       Request 1 is served at t=11 (10 units of service), reply at 12. *)
    Helpers.close "busy nack at 2" 2. t_busy;
    Helpers.close "served reply at 12" 12. t_served
  | _ -> Alcotest.fail "expected one Busy then one Served reply");
  Helpers.check_int "one shed" 1 (Net.messages_shed net)

let test_capacity_degraded_slows_service () =
  let engine = Engine.create () in
  let net = Net.create ~n:2 () in
  let served = ref [] in
  Net.set_handler net (fun dst _ () -> served := (dst, Engine.now engine) :: !served);
  Net.attach_engine net engine ~latency:(fun ~src:_ ~dst:_ -> 1.);
  Net.set_capacity net ~service_rate:1.0 ~queue_limit:4 ();
  Helpers.close "healthy by default" 1. (Net.degraded_factor net 0);
  Net.set_degraded net 0 ~factor:10.;
  Helpers.close "degraded factor" 10. (Net.degraded_factor net 0);
  Net.post net ~src:Net.Client ~dst:0 ();
  Net.post net ~src:Net.Client ~dst:1 ();
  ignore (Engine.run engine);
  let time_of dst = List.assoc dst !served in
  Helpers.close "healthy server: 1 latency + 1 service" 2. (time_of 1);
  Helpers.close "gray server: 1 latency + 10 service" 11. (time_of 0);
  Net.set_degraded net 0 ~factor:1.;
  Helpers.close "restored" 1. (Net.degraded_factor net 0)

let test_capacity_requires_install () =
  let net = Net.create ~n:1 () in
  Alcotest.(check bool) "no capacity" false (Net.has_capacity net);
  Helpers.close "factor 1 without model" 1. (Net.degraded_factor net 0);
  Helpers.check_int "depth 0 without model" 0 (Net.queue_depth net 0);
  Helpers.check_int "shed 0 without model" 0 (Net.messages_shed net);
  Alcotest.check_raises "set_degraded needs capacity"
    (Invalid_argument "Net.set_degraded: no capacity model installed (see Net.set_capacity)")
    (fun () -> Net.set_degraded net 0 ~factor:2.)

let test_capacity_liveness_rechecked_at_service_time () =
  (* The server fails while the request waits in its queue: the request
     dies at service time, counted as a drop, not a receipt. *)
  let engine = Engine.create () in
  let net = Net.create ~n:1 () in
  Net.set_handler net (fun _ _ () -> Alcotest.fail "served by a dead server");
  Net.attach_engine net engine ~latency:(fun ~src:_ ~dst:_ -> 1.);
  Net.set_capacity net ~service_rate:0.25 ~queue_limit:4 ();
  Net.post net ~src:Net.Client ~dst:0 ();
  ignore (Engine.schedule_at engine ~time:2. (fun _ -> Net.fail net 0));
  ignore (Engine.run engine);
  Helpers.check_int "not received" 0 (Net.messages_received net);
  Helpers.check_int "dropped" 1 (Net.messages_dropped net);
  Helpers.check_int "not shed" 0 (Net.messages_shed net)

let test_capacity_clear_restores_instant_delivery () =
  let engine = Engine.create () in
  let net = Net.create ~n:1 () in
  let served = ref [] in
  Net.set_handler net (fun _ _ () -> served := Engine.now engine :: !served);
  Net.attach_engine net engine ~latency:(fun ~src:_ ~dst:_ -> 1.);
  Net.set_capacity net ~service_rate:0.1 ~queue_limit:4 ();
  Net.clear_capacity net;
  Net.post net ~src:Net.Client ~dst:0 ();
  ignore (Engine.run engine);
  Alcotest.(check (list (float 1e-9))) "no service delay after clear" [ 1. ] !served

let test_capacity_validation () =
  let net = Net.create ~n:1 () in
  Alcotest.check_raises "rate must be positive"
    (Invalid_argument "Net.set_capacity: service_rate must be positive") (fun () ->
      Net.set_capacity net ~service_rate:0. ~queue_limit:1 ());
  Alcotest.check_raises "queue_limit >= 1"
    (Invalid_argument "Net.set_capacity: queue_limit must be >= 1") (fun () ->
      Net.set_capacity net ~service_rate:1. ~queue_limit:0 ());
  Net.set_capacity net ~service_rate:1. ~queue_limit:1 ();
  Alcotest.check_raises "factor >= 1"
    (Invalid_argument "Net.set_degraded: factor must be >= 1") (fun () ->
      Net.set_degraded net 0 ~factor:0.5)

let () =
  Helpers.run "net"
    [ ( "net",
        [ Alcotest.test_case "send/reply" `Quick test_send_and_reply;
          Alcotest.test_case "capacity queueing" `Quick
            test_capacity_queueing_serializes_service;
          Alcotest.test_case "capacity sheds" `Quick test_capacity_sheds_when_full;
          Alcotest.test_case "capacity nack" `Quick test_capacity_nack_fast_reply;
          Alcotest.test_case "capacity gray failure" `Quick
            test_capacity_degraded_slows_service;
          Alcotest.test_case "capacity requires install" `Quick
            test_capacity_requires_install;
          Alcotest.test_case "capacity liveness recheck" `Quick
            test_capacity_liveness_rechecked_at_service_time;
          Alcotest.test_case "capacity clear" `Quick
            test_capacity_clear_restores_instant_delivery;
          Alcotest.test_case "capacity validation" `Quick test_capacity_validation;
          Alcotest.test_case "server src" `Quick test_server_to_server_not_client;
          Alcotest.test_case "broadcast cost" `Quick test_broadcast_costs_n;
          Alcotest.test_case "failure drops" `Quick test_failure_drops;
          Alcotest.test_case "broadcast skips failed" `Quick test_broadcast_skips_failed;
          Alcotest.test_case "fail_exactly" `Quick test_fail_exactly;
          Alcotest.test_case "reset counters" `Quick test_reset_counters;
          Alcotest.test_case "no handler" `Quick test_no_handler;
          Alcotest.test_case "bad index" `Quick test_bad_index;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "wrap handler" `Quick test_wrap_handler;
          Alcotest.test_case "wrap requires handler" `Quick test_wrap_handler_requires_handler;
          Alcotest.test_case "status listener" `Quick test_status_listener;
          Alcotest.test_case "fail_exactly notifies" `Quick test_fail_exactly_notifies;
          Alcotest.test_case "post sync" `Quick test_post_without_engine_is_sync;
          Alcotest.test_case "post delayed" `Quick test_post_with_engine_is_delayed;
          Alcotest.test_case "post to failed" `Quick test_post_to_failed_node_after_delay;
          Alcotest.test_case "loss drops" `Quick test_loss_drops_and_counts;
          Alcotest.test_case "duplication" `Quick test_duplication_delivers_twice;
          Alcotest.test_case "jitter bounds" `Quick test_jitter_bounds_delay;
          Alcotest.test_case "fault toggle" `Quick test_fault_toggle_mid_run;
          Alcotest.test_case "fault determinism" `Quick test_fault_determinism;
          Alcotest.test_case "set_faults validation" `Quick test_set_faults_validation;
          Alcotest.test_case "partition blocks" `Quick test_partition_blocks_crossing_links;
          Alcotest.test_case "partition client side" `Quick test_partition_client_side_b;
          Alcotest.test_case "partition unlisted" `Quick
            test_partition_unlisted_servers_unaffected;
          Alcotest.test_case "heal" `Quick test_heal_restores_links;
          Alcotest.test_case "partitions compose" `Quick test_partitions_compose;
          Alcotest.test_case "partition validation" `Quick test_partition_validation;
          Alcotest.test_case "up tracking matches list" `Quick
            test_up_tracking_matches_list;
          prop_message_count_additive ] ) ]
