(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks: one Test.make per paper table /
   figure, timing a single reduced-size generation of that experiment's
   data, plus micro-benchmarks of the hot core operations.

   Part 2 — Reproduction: regenerate every table and figure series at
   the default Monte-Carlo scale and print them (tee this into
   bench_output.txt; EXPERIMENTS.md interprets the rows against the
   paper's plots).

   Part 3 — Ablations: design-choice studies DESIGN.md calls out
   (greedy-vs-exact fault tolerance, cushion-vs-replacement deletes,
   collision-aware Hash-y sizing). *)

open Bechamel
open Toolkit
open Plookup
open Plookup_store
open Plookup_util
module Metrics = Plookup_metrics
module Workload = Plookup_workload
module Net = Plookup_net.Net
module E = Plookup_experiments

(* ------------------------------------------------------------------ *)
(* Part 1: bechamel micro-benchmarks                                   *)

let tiny = E.Ctx.v ~seed:1 ~scale:0.02 ()

let experiment_tests =
  List.map
    (fun e ->
      Test.make ~name:e.E.Registry.id
        (Staged.stage (fun () -> ignore (e.E.Registry.run tiny))))
    E.Registry.all

let core_op_tests =
  let placed config =
    let service = Service.create ~seed:3 ~n:10 config in
    Service.place service (Entry.Gen.batch (Entry.Gen.create ()) 100);
    service
  in
  let lookup_bench name config t =
    let service = placed config in
    Test.make ~name (Staged.stage (fun () -> ignore (Service.partial_lookup service t)))
  in
  let update_bench name config =
    let service = placed config in
    let i = ref 1000 in
    Test.make ~name
      (Staged.stage (fun () ->
           incr i;
           Service.add service (Entry.v !i);
           Service.delete service (Entry.v !i)))
  in
  let store = Server_store.create () in
  List.iter (fun i -> ignore (Server_store.add store (Entry.v i))) (List.init 100 Fun.id);
  let rng = Rng.create 9 in
  [ Test.make ~name:"store:random_pick-20of100"
      (Staged.stage (fun () -> ignore (Server_store.random_pick store rng 20)));
    lookup_bench "lookup:full-t35" Service.full_replication 35;
    lookup_bench "lookup:round2-t35" (Service.round_robin 2) 35;
    lookup_bench "lookup:randomserver20-t35" (Service.random_server 20) 35;
    lookup_bench "lookup:hash2-t35" (Service.hash 2) 35;
    update_bench "update:fixed-50" (Service.fixed 50);
    update_bench "update:hash-2" (Service.hash 2);
    update_bench "update:round-2" (Service.round_robin 2);
    (let service = placed (Service.random_server 20) in
     let placement =
       Metrics.Fault_tolerance.snapshot (Service.cluster service) ~capacity:100
     in
     Test.make ~name:"metric:greedy-fault-tolerance"
       (Staged.stage (fun () -> ignore (Metrics.Fault_tolerance.greedy placement ~t:35))))
  ]

let run_bechamel tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~stabilize:false ~quota:(Time.second 0.25) ~kde:None ()
  in
  let grouped = Test.make_grouped ~name:"plookup" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let table =
    Table.create ~title:"bechamel micro-benchmarks (monotonic clock)"
      ~columns:[ "benchmark"; "time/run" ]
  in
  let pretty ns =
    if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (e :: _) -> pretty e | _ -> "n/a"
      in
      Table.add_row table [ Table.S name; Table.S estimate ])
    (List.sort (fun (a, _) (b, _) -> compare a b) rows);
  Table.print table

(* ------------------------------------------------------------------ *)
(* Part 3: ablations                                                   *)

(* Greedy heuristic vs exhaustive SET-COVER adversary: how optimistic is
   Appendix A on real placements? *)
let ablation_ft_heuristic () =
  let table =
    Table.create ~title:"ablation: greedy (Appendix A) vs exact fault tolerance (n=8, h=40)"
      ~columns:[ "strategy"; "t"; "greedy mean"; "exact mean"; "mean gap"; "max gap" ]
  in
  let n = 8 and h = 40 and runs = 40 in
  List.iter
    (fun config ->
      List.iter
        (fun t ->
          let gaps = ref [] in
          let g_acc = Stats.Accum.create () and e_acc = Stats.Accum.create () in
          for run = 1 to runs do
            let service = Service.create ~seed:(run * 17) ~n config in
            Service.place service (Entry.Gen.batch (Entry.Gen.create ()) h);
            let placement =
              Metrics.Fault_tolerance.snapshot (Service.cluster service) ~capacity:h
            in
            let g = Metrics.Fault_tolerance.greedy placement ~t in
            let e = Metrics.Fault_tolerance.exact placement ~t in
            Stats.Accum.add g_acc (float_of_int g);
            Stats.Accum.add e_acc (float_of_int e);
            gaps := float_of_int (g - e) :: !gaps
          done;
          let gaps = Array.of_list !gaps in
          Table.add_row table
            [ Table.S (Service.config_name config);
              Table.I t;
              Table.F (Stats.Accum.mean g_acc);
              Table.F (Stats.Accum.mean e_acc);
              Table.F (Stats.mean gaps);
              Table.F (snd (Stats.min_max gaps)) ])
        [ 10; 20 ])
    [ Service.random_server 10; Service.hash 2; Service.round_robin 2 ];
  Table.print table

(* Section 5.3's delete alternatives: the cushion scheme (holes) vs
   actively fetching replacements.  The paper predicts replacement costs
   more messages and does not help unfairness. *)
let ablation_delete_policy () =
  let table =
    Table.create
      ~title:"ablation: RandomServer-20 delete policy (cushion vs replacement), 2000 updates"
      ~columns:[ "policy"; "msgs/update"; "unfairness after"; "mean occupancy" ]
  in
  let n = 10 and h = 100 and updates = 2000 in
  List.iter
    (fun (name, config) ->
      let stream =
        Workload.Update_gen.generate (Rng.create 21)
          { Workload.Update_gen.steady_entries = h; add_period = 10.; tail_heavy = false;
            updates }
      in
      let service = Service.create ~seed:21 ~n config in
      let msgs = Workload.Replay.messages_for_updates ~service ~stream in
      let live = Workload.Update_gen.live_after stream updates in
      let unfairness = Metrics.Unfairness.of_instance service ~live ~t:1 ~lookups:4000 in
      let occupancy =
        float_of_int (Metrics.Storage.measured (Service.cluster service)) /. float_of_int n
      in
      Table.add_row table
        [ Table.S name;
          Table.F (float_of_int msgs /. float_of_int updates);
          Table.F4 unfairness;
          Table.F occupancy ])
    [ ("cushion (paper's choice)", Service.random_server 20);
      ("active replacement", Service.random_server_replacing 20) ];
  Table.print table

(* Section 6.3's bottleneck argument, quantified: Round-y funnels every
   update through the coordinator (server 1), while Hash-y's updates
   spread by the hash functions and Fixed-x's broadcasts touch everyone
   equally. *)
let ablation_coordinator_bottleneck () =
  let table =
    Table.create
      ~title:"ablation: update-traffic concentration (Section 6.3 coordinator bottleneck)"
      ~columns:
        [ "strategy"; "msgs total"; "server-0 share %"; "peak/avg"; "load cov" ]
  in
  let n = 10 and h = 100 and updates = 4000 in
  List.iter
    (fun config ->
      let stream =
        Workload.Update_gen.generate (Rng.create 33)
          { Workload.Update_gen.steady_entries = h; add_period = 10.; tail_heavy = false;
            updates }
      in
      let service = Service.create ~seed:33 ~n config in
      let msgs = Workload.Replay.messages_for_updates ~service ~stream in
      let net = Cluster.net (Service.cluster service) in
      let loads = Array.init n (fun i -> Net.messages_received_by net i) in
      let summary = Metrics.Load.summarize loads in
      Table.add_row table
        [ Table.S (Service.config_name config);
          Table.I msgs;
          Table.F (100. *. float_of_int loads.(0) /. float_of_int (max 1 msgs));
          Table.F summary.Metrics.Load.peak_to_average;
          Table.F summary.Metrics.Load.cov ])
    [ Service.round_robin 2; Service.hash 2; Service.fixed 20; Service.random_server 20 ];
  Table.print table

(* Footnote 1 of the paper: replicating the head/tail coordinator.  How
   much update overhead does each extra replica cost, and how many
   updates stop being lost when the coordinator's server churns? *)
let ablation_coordinator_replication () =
  let table =
    Table.create
      ~title:
        "ablation: RoundRobin-2 coordinator replication (footnote 1), churn mttf=50 mttr=50"
      ~columns:
        [ "replicas"; "msgs/update (no churn)"; "updates accepted % (churn)" ]
  in
  let n = 10 and h = 100 and updates = 2000 in
  let stream_spec =
    { Workload.Update_gen.steady_entries = h; add_period = 10.; tail_heavy = false; updates }
  in
  List.iter
    (fun coordinators ->
      (* Cost: replay a stream with no failures and count messages. *)
      let stream = Workload.Update_gen.generate (Rng.create 51) stream_spec in
      let cluster = Cluster.create ~seed:51 ~n () in
      let strategy = Round_robin.create ~coordinators cluster ~y:2 in
      Round_robin.place strategy stream.Workload.Update_gen.initial;
      Net.reset_counters (Cluster.net cluster);
      List.iter
        (fun ev ->
          match ev.Workload.Update_gen.op with
          | Workload.Update_gen.Add e -> Round_robin.add strategy e
          | Workload.Update_gen.Delete e -> Round_robin.delete strategy e)
        stream.Workload.Update_gen.events;
      let msgs = Net.messages_received (Cluster.net cluster) in
      (* Availability: interleave the same updates with coordinator-zone
         churn and count how many adds actually landed. *)
      let stream = Workload.Update_gen.generate (Rng.create 51) stream_spec in
      let cluster = Cluster.create ~seed:52 ~n () in
      let strategy = Round_robin.create ~coordinators cluster ~y:2 in
      Round_robin.place strategy stream.Workload.Update_gen.initial;
      let horizon =
        List.fold_left
          (fun acc ev -> Float.max acc ev.Workload.Update_gen.time)
          0. stream.Workload.Update_gen.events
      in
      let churn_events =
        Workload.Churn.generate (Rng.create 53) ~n ~mttf:50. ~mttr:50. ~horizon
      in
      let engine = Plookup_sim.Engine.create () in
      Workload.Churn.drive engine
        ~apply:(fun ev ->
          if ev.Workload.Churn.up then Cluster.recover cluster ev.Workload.Churn.server
          else Cluster.fail cluster ev.Workload.Churn.server)
        churn_events;
      let attempted = ref 0 and accepted = ref 0 in
      List.iter
        (fun ev ->
          ignore
            (Plookup_sim.Engine.schedule_at engine ~time:ev.Workload.Update_gen.time
               (fun _ ->
                 match ev.Workload.Update_gen.op with
                 | Workload.Update_gen.Add e ->
                   incr attempted;
                   Round_robin.add strategy e;
                   if Round_robin.position_of strategy e <> None then incr accepted
                 | Workload.Update_gen.Delete e -> Round_robin.delete strategy e)))
        stream.Workload.Update_gen.events;
      ignore (Plookup_sim.Engine.run engine);
      Table.add_row table
        [ Table.I coordinators;
          Table.F (float_of_int msgs /. float_of_int updates);
          Table.F (100. *. float_of_int !accepted /. float_of_int (max 1 !attempted)) ])
    [ 1; 2; 3 ];
  Table.print table

(* Hash-y sizing: the paper's y = ceil(tn/h) ignores hash collisions;
   the collision-aware choice buys lookup cost with extra storage. *)
let ablation_hash_sizing () =
  let table =
    Table.create ~title:"ablation: Hash-y sizing at t=40, n=10 (paper rule vs collision-aware)"
      ~columns:
        [ "h"; "y paper"; "y aware"; "cost paper"; "cost aware"; "storage paper";
          "storage aware" ]
  in
  let n = 10 and t = 40 in
  List.iter
    (fun h ->
      let y_plain = Metrics.Analytic.optimal_hash_y ~n ~h ~t in
      let y_aware = Metrics.Analytic.optimal_hash_y_collision_aware ~n ~h ~t in
      let measure y =
        let m =
          Metrics.Lookup_cost.measure_over_instances ~seed:h ~n ~entries:h
            ~config:(Service.hash y) ~t ~runs:30 ~lookups_per_run:100 ()
        in
        m.Metrics.Lookup_cost.mean_cost
      in
      Table.add_row table
        [ Table.I h;
          Table.I y_plain;
          Table.I y_aware;
          Table.F (measure y_plain);
          Table.F (measure y_aware);
          Table.F (Metrics.Analytic.storage (Service.hash y_plain) ~n ~h);
          Table.F (Metrics.Analytic.storage (Service.hash y_aware) ~n ~h) ])
    [ 100; 150; 200; 300; 400 ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* Part 4: churn/repair benchmark -> BENCH_repair.json                  *)

(* One churned run per strategy with the full repair stack on (recovery
   sync + hinted handoff + daemon), reporting what the self-healing
   layer buys and what it costs: lookup success rate, stale reads,
   mean time-to-restore-degree, and repair messages per recovery. *)
let bench_repair () =
  let n = 10 and h = 100 and t = 40 in
  let mttf = 50. and mttr = 50. and horizon = 2000. and update_every = 10. in
  let scenario config =
    let service = Service.create ~seed:99 ~repair:Repair.default_config ~n config in
    let gen = Entry.Gen.create () in
    let initial = Entry.Gen.batch gen h in
    Service.place service initial;
    let cluster = Service.cluster service in
    let rep = Option.get (Service.repair service) in
    let engine = Plookup_sim.Engine.create () in
    Repair.attach_engine ~until:horizon rep engine;
    let churn = Workload.Churn.generate (Rng.create 7) ~n ~mttf ~mttr ~horizon in
    let recoveries =
      List.length (List.filter (fun ev -> ev.Workload.Churn.up) churn)
    in
    Workload.Churn.drive engine
      ~apply:(fun ev ->
        if ev.Workload.Churn.up then Cluster.recover cluster ev.Workload.Churn.server
        else Cluster.fail cluster ev.Workload.Churn.server)
      churn;
    let live = Hashtbl.create (2 * h) in
    (* Uniform victim picks in O(1): a swap-remove array of live ids
       plus an id -> slot table, instead of sorting every live id on
       every update (O(h log h) per pick). *)
    let ids = ref (Array.make (max 16 (2 * h)) 0) in
    let live_count = ref 0 in
    let slot_of = Hashtbl.create (2 * h) in
    let track id =
      if !live_count = Array.length !ids then begin
        let bigger = Array.make (2 * Array.length !ids) 0 in
        Array.blit !ids 0 bigger 0 !live_count;
        ids := bigger
      end;
      !ids.(!live_count) <- id;
      Hashtbl.replace slot_of id !live_count;
      incr live_count
    in
    let untrack id =
      match Hashtbl.find_opt slot_of id with
      | None -> ()
      | Some slot ->
        let last = !live_count - 1 in
        let moved = !ids.(last) in
        !ids.(slot) <- moved;
        Hashtbl.replace slot_of moved slot;
        Hashtbl.remove slot_of id;
        live_count := last
    in
    List.iter
      (fun e ->
        Hashtbl.replace live (Entry.id e) e;
        track (Entry.id e))
      initial;
    let deleted = Hashtbl.create 64 in
    let wl_rng = Rng.create 15 in
    for k = 1 to int_of_float (horizon /. update_every) do
      ignore
        (Plookup_sim.Engine.schedule_at engine
           ~time:((float_of_int k *. update_every) +. 0.25)
           (fun _ ->
             if Service.can_update service && !live_count > 0 then begin
               let victim_id = !ids.(Rng.int wl_rng !live_count) in
               let victim = Hashtbl.find live victim_id in
               Service.delete service victim;
               Hashtbl.remove live victim_id;
               untrack victim_id;
               Hashtbl.replace deleted victim_id ();
               let fresh = Entry.Gen.fresh gen in
               Service.add service fresh;
               Hashtbl.replace live (Entry.id fresh) fresh;
               track (Entry.id fresh)
             end))
    done;
    let lookups = ref 0 and satisfied = ref 0 and stale = ref 0 in
    for i = 1 to int_of_float horizon do
      ignore
        (Plookup_sim.Engine.schedule_at engine ~time:(float_of_int i) (fun _ ->
             let r = Service.partial_lookup service t in
             incr lookups;
             let returned = r.Lookup_result.entries in
             let live_returned =
               List.filter (fun e -> Hashtbl.mem live (Entry.id e)) returned
             in
             if List.length live_returned >= t then incr satisfied;
             stale :=
               !stale
               + List.length
                   (List.filter (fun e -> Hashtbl.mem deleted (Entry.id e)) returned)))
    done;
    ignore (Plookup_sim.Engine.run ~until:horizon engine);
    ( Service.config_name config,
      float_of_int !satisfied /. float_of_int (max 1 !lookups),
      !stale,
      (Repair.stats rep).Repair.mean_restore_time,
      Repair.repair_messages rep,
      recoveries )
  in
  let rows = List.map scenario (Service.all_configs ~budget:200 ~n ~h ()) in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "churn/repair benchmark (repair=full, mttf=%.0f mttr=%.0f horizon=%.0f)" mttf
           mttr horizon)
      ~columns:
        [ "strategy"; "success %"; "stale reads"; "time to repair"; "repair msgs";
          "msgs/recovery" ]
  in
  List.iter
    (fun (name, success, stale, restore, msgs, recoveries) ->
      Table.add_row table
        [ Table.S name;
          Table.F (100. *. success);
          Table.I stale;
          (match restore with Some rt -> Table.F rt | None -> Table.S "-");
          Table.I msgs;
          Table.F (float_of_int msgs /. float_of_int (max 1 recoveries)) ])
    rows;
  Table.print table;
  let oc = open_out "BENCH_repair.json" in
  let field_of (name, success, stale, restore, msgs, recoveries) =
    Printf.sprintf
      "    {\"strategy\": %S, \"success_rate\": %.4f, \"stale_reads\": %d, \
       \"mean_time_to_repair\": %s, \"repair_messages\": %d, \"recoveries\": %d, \
       \"repair_messages_per_recovery\": %.2f}"
      name success stale
      (match restore with Some rt -> Printf.sprintf "%.4f" rt | None -> "null")
      msgs recoveries
      (float_of_int msgs /. float_of_int (max 1 recoveries))
  in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"churn_repair\",\n\
    \  \"params\": {\"n\": %d, \"h\": %d, \"t\": %d, \"mttf\": %.1f, \"mttr\": %.1f, \
     \"horizon\": %.1f, \"repair\": \"full\"},\n\
    \  \"strategies\": [\n%s\n  ]\n}\n"
    n h t mttf mttr horizon
    (String.concat ",\n" (List.map field_of rows));
  close_out oc;
  print_endline "(wrote BENCH_repair.json)"

(* ------------------------------------------------------------------ *)
(* Part 5: core throughput baseline -> BENCH_core.json                  *)

(* Sustained-throughput numbers for the per-event hot paths the engine
   and strategies run on, plus the parallel-runner speedup on the full
   reproduction.  Written to BENCH_core.json so perf regressions show up
   as a diff against the committed baseline. *)
let bench_core ~jobs ~scale () =
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Engine events/sec: schedule-then-fire batches through the queue,
     with a slice of same-batch cancellations to exercise the lazy
     cancellation path the experiments lean on. *)
  let engine_events = int_of_float (1_000_000. *. Float.min 1.0 (4. *. scale)) in
  let events_per_sec =
    let engine = Plookup_sim.Engine.create () in
    let batch = 1000 in
    let handles = Array.make batch None in
    let fired = ref 0 in
    let (), elapsed =
      timed (fun () ->
          for round = 1 to engine_events / batch do
            let base = Plookup_sim.Engine.now engine in
            for i = 0 to batch - 1 do
              handles.(i) <-
                Some
                  (Plookup_sim.Engine.schedule_at engine
                     ~time:(base +. float_of_int ((i + round) mod 97))
                     (fun _ -> incr fired))
            done;
            (* Cancel a tenth of each batch before it fires. *)
            for i = 0 to (batch / 10) - 1 do
              match handles.(i * 10) with
              | Some id -> Plookup_sim.Engine.cancel engine id
              | None -> ()
            done;
            ignore (Plookup_sim.Engine.run engine)
          done)
    in
    float_of_int engine_events /. elapsed
  in
  (* Lookups/sec per strategy at the paper's t=35 working point. *)
  let n = 10 and h = 100 and t = 35 in
  let lookup_iters = int_of_float (50_000. *. Float.min 1.0 (4. *. scale)) in
  let placed config =
    let service = Service.create ~seed:3 ~n config in
    Service.place service (Entry.Gen.batch (Entry.Gen.create ()) h);
    service
  in
  let lookup_rows =
    List.map
      (fun config ->
        let service = placed config in
        let (), elapsed =
          timed (fun () ->
              for _ = 1 to lookup_iters do
                ignore (Service.partial_lookup service t)
              done)
        in
        (Service.config_name config, float_of_int lookup_iters /. elapsed))
      [ Service.full_replication; Service.fixed 50; Service.random_server 20;
        Service.round_robin 2; Service.hash 2 ]
  in
  (* Updates/sec: one delete + one add per iteration.  Same five
     strategies as the lookup rows — FullReplication's update is the
     paper's worst case (every add/delete touches all n servers), so
     its row is the one a placement-path regression moves first. *)
  let update_iters = int_of_float (50_000. *. Float.min 1.0 (4. *. scale)) in
  let update_rows =
    List.map
      (fun config ->
        let service = placed config in
        let i = ref 1_000_000 in
        let (), elapsed =
          timed (fun () ->
              for _ = 1 to update_iters do
                incr i;
                Service.add service (Entry.v !i);
                Service.delete service (Entry.v !i)
              done)
        in
        (Service.config_name config, float_of_int update_iters /. elapsed))
      [ Service.full_replication; Service.fixed 50; Service.random_server 20;
        Service.round_robin 2; Service.hash 2 ]
  in
  (* Parallel-runner speedup: the full experiment registry at [scale],
     sequential vs [jobs] worker domains.  Identical tables either way;
     only the wall clock moves. *)
  let repro_wall_clock jobs =
    let ctx = E.Ctx.v ~seed:42 ~scale ~jobs () in
    snd
      (timed (fun () ->
           List.iter (fun e -> ignore (e.E.Registry.run ctx)) E.Registry.all))
  in
  let wall_j1 = repro_wall_clock 1 in
  let wall_jn = if jobs = 1 then wall_j1 else repro_wall_clock jobs in
  let speedup = wall_j1 /. wall_jn in
  let table =
    Table.create
      ~title:(Printf.sprintf "core throughput (scale %g, jobs %d)" scale jobs)
      ~columns:[ "metric"; "value" ]
  in
  let rate v = Printf.sprintf "%.0f /s" v in
  Table.add_row table [ Table.S "engine events"; Table.S (rate events_per_sec) ];
  List.iter
    (fun (name, v) ->
      Table.add_row table [ Table.S (Printf.sprintf "lookup t=%d %s" t name); Table.S (rate v) ])
    lookup_rows;
  List.iter
    (fun (name, v) ->
      Table.add_row table [ Table.S (Printf.sprintf "update %s" name); Table.S (rate v) ])
    update_rows;
  Table.add_row table
    [ Table.S "reproduction wall clock, jobs=1"; Table.S (Printf.sprintf "%.2f s" wall_j1) ];
  Table.add_row table
    [ Table.S (Printf.sprintf "reproduction wall clock, jobs=%d" jobs);
      Table.S (Printf.sprintf "%.2f s" wall_jn) ];
  Table.add_row table [ Table.S "speedup"; Table.S (Printf.sprintf "%.2fx" speedup) ];
  Table.print table;
  let strategy_rates rows =
    String.concat ",\n"
      (List.map
         (fun (name, v) -> Printf.sprintf "    {\"strategy\": %S, \"per_sec\": %.0f}" name v)
         rows)
  in
  (* The top-level fields of BENCH_core.json, sans braces: the caller
     appends Part 6's instrumentation block before closing the object. *)
  Printf.sprintf
    "  \"benchmark\": \"core_throughput\",\n\
    \  \"params\": {\"n\": %d, \"h\": %d, \"t\": %d, \"scale\": %g, \"jobs\": %d, \
     \"parallel_available\": %b, \"cores\": %d},\n\
    \  \"engine\": {\"events\": %d, \"events_per_sec\": %.0f},\n\
    \  \"lookups_per_sec\": [\n%s\n  ],\n\
    \  \"updates_per_sec\": [\n%s\n  ],\n\
    \  \"reproduction\": {\"scale\": %g, \"wall_clock_jobs1_sec\": %.3f, \
     \"wall_clock_jobsN_sec\": %.3f, \"jobs\": %d, \"speedup\": %.3f}"
    n h t scale jobs Pool.parallel_available
    (Pool.recommended_jobs ())
    engine_events events_per_sec
    (strategy_rates lookup_rows) (strategy_rates update_rows) scale wall_j1 wall_jn jobs
    speedup

(* ------------------------------------------------------------------ *)
(* Part 6: instrumentation overhead -> BENCH_core.json                 *)

(* What always-on tracing costs, measured where experiments actually
   send messages: engine-routed delivery ([Net.post] with an attached
   {!Plookup_sim.Engine}), the path behind [call_async], the repair
   planner and the day/fig6 experiments.  Configurations:

   - bare:     a Net with neither plane accounting nor a trace attached
               (the per-message counters themselves can't be opted out —
               they are the paper's cost model);
   - disabled: planes + trace attached but tracing off — the production
               default, whose overhead must stay in the noise;
   - traced:   tracing on at sample=1.0, spans into the bounded ring;
   - sampled:  tracing on at sample=0.01 (head sampling per causal
               tree).

   The <10%-over-bare gate (check_regress) applies to the traced row
   here and to the service row below.  The raw synchronous transport is
   also timed ([Net.send] directly, no engine): at ~17ns per delivered
   message it is an empty-function-call baseline that no pair of
   retained spans can undercut by 10%, so it is reported as an absolute
   marginal cost (ns per traced message) rather than gated as a
   percentage.

   All comparisons are timed interleaved over many short windows,
   best-of: a single sequential shot per configuration confounds the
   comparison with CPU frequency drift, and a long window lets one
   burst of competing host load poison a whole row.  With ~10ms windows
   and dozens of rounds, noise can only *lose* a window, never bias the
   best.  The off/on rows share one Net (tracing toggled between
   rounds) so they also share its heap layout.

   Run this under `--profile release`.  Dune's dev profile compiles
   with -opaque, which strips cmx approximations and turns every
   cross-module [@inline always] — the emit fast paths, [Engine.now] —
   into an out-of-line call with boxed float arguments; the measured
   overhead roughly doubles.  The committed baseline and the CI gate
   both use the release profile. *)
let bench_obs ~scale () =
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let n = 10 in
  let overhead reference v = 100. *. ((reference /. v) -. 1.) in
  let instrumented ?sample () =
    let net = Net.create ~n () in
    Net.set_planes net ~names:[| "data" |] ~classify:(fun _ -> 0);
    let tr = Plookup_obs.Trace.create ~capacity:256 ?sample () in
    let pm = Plookup_obs.Trace.intern_message tr ~plane:"data" ~msg:"msg" in
    Net.set_trace net tr ~coder:(fun _ -> pm);
    (net, tr)
  in
  (* Engine-routed delivery: post in bursts, drain, repeat. *)
  let sends = int_of_float (400_000. *. Float.min 1.0 (4. *. scale)) in
  let posted_drive net engine count =
    let burst = 1000 in
    let posted = ref 0 in
    while !posted < count do
      let b = min burst (count - !posted) in
      for i = 1 to b do
        Net.post net ~src:Net.Client ~dst:(i mod n) i
      done;
      ignore (Plookup_sim.Engine.run engine);
      posted := !posted + b
    done
  in
  let with_engine net =
    Net.set_handler net (fun _dst _src msg -> msg);
    let engine = Plookup_sim.Engine.create () in
    Net.attach_engine net engine ~latency:(fun ~src:_ ~dst:_ -> 1e-6);
    engine
  in
  let entries =
    (* Two noise sources need separating from the signal: CPU frequency
       drift over time (handled by interleaving rounds, alternating
       their direction, and keeping the best) and per-instance
       heap-layout luck (handled by creating [reps] independent
       instances of every configuration and keeping the best across
       instances — each row converges to its true fastest).  One
       instrumented net per rep serves the off, on and sampled rows: the
       right trace is (re)attached before each measurement, so those
       three rows differ only in tracing, never in allocation luck. *)
    let reps = 4 in
    let acc = ref [] in
    for _ = 1 to reps do
      let bare = Net.create ~n () in
      let bare_engine = with_engine bare in
      acc := (0, bare, bare_engine, fun () -> ()) :: !acc;
      let net, tr = instrumented () in
      let pm = Plookup_obs.Trace.intern_message tr ~plane:"data" ~msg:"msg" in
      let engine = with_engine net in
      let tr_smp = Plookup_obs.Trace.create ~capacity:256 ~sample:0.01 () in
      let pm_smp = Plookup_obs.Trace.intern_message tr_smp ~plane:"data" ~msg:"msg" in
      let full on () =
        Net.set_trace net tr ~coder:(fun _ -> pm);
        Plookup_obs.Trace.set_enabled tr on
      in
      let smp () =
        Net.set_trace net tr_smp ~coder:(fun _ -> pm_smp);
        Plookup_obs.Trace.set_enabled tr_smp true
      in
      acc := (1, net, engine, full false) :: !acc;
      acc := (2, net, engine, full true) :: !acc;
      acc := (3, net, engine, smp) :: !acc
    done;
    Array.of_list (List.rev !acc)
  in
  Array.iter (fun (_, net, engine, _) -> posted_drive net engine 1000) entries;
  (* Short windows, many rounds: a burst of competing host load can
     poison any single window, but each row gets [rounds] independent
     chances per instance and keeps its best, so transient noise cannot
     bias the comparison — it can only lose. *)
  let window = max 1_000 (sends / 8) in
  let best = Array.make 4 infinity in
  let m = Array.length entries in
  for round = 1 to 40 do
    for j = 0 to m - 1 do
      let row, net, engine, prepare = entries.(if round land 1 = 0 then m - 1 - j else j) in
      prepare ();
      let (), elapsed = timed (fun () -> posted_drive net engine window) in
      if elapsed < best.(row) then best.(row) <- elapsed
    done
  done;
  let rates = Array.map (fun b -> float_of_int window /. b) best in
  let bare = rates.(0)
  and disabled = rates.(1)
  and traced = rates.(2)
  and sampled = rates.(3) in
  (* Raw synchronous transport: same interleaved scheme, bare vs traced,
     reported as marginal ns per traced message (one fused Send+Recv
     pair cell). *)
  let sync_sends = sends in
  let sync_configs =
    let bare = Net.create ~n () in
    let inst, tr = instrumented () in
    Plookup_obs.Trace.set_enabled tr true;
    [| bare; inst |]
  in
  Array.iter
    (fun net ->
      Net.set_handler net (fun _dst _src msg -> msg);
      for i = 1 to 1000 do
        ignore (Net.send net ~src:Net.Client ~dst:(i mod n) i)
      done)
    sync_configs;
  let sync_window = max 10_000 (sync_sends / 4) in
  let sync_best = Array.make 2 infinity in
  for _round = 1 to 40 do
    Array.iteri
      (fun k net ->
        let (), elapsed =
          timed (fun () ->
              for i = 1 to sync_window do
                ignore (Net.send net ~src:Net.Client ~dst:(i mod n) i)
              done)
        in
        if elapsed < sync_best.(k) then sync_best.(k) <- elapsed)
      sync_configs
  done;
  let sync_bare = float_of_int sync_window /. sync_best.(0) in
  let sync_on = float_of_int sync_window /. sync_best.(1) in
  let sync_marginal_ns = ((1. /. sync_on) -. (1. /. sync_bare)) *. 1e9 in
  (* Service-level: the round-robin update workload on one service,
     tracing toggled between interleaved rounds.  An add/delete pair
     leaves the service as it found it, so repeated rounds time the same
     workload. *)
  let h = 100 in
  let update_iters = int_of_float (50_000. *. Float.min 1.0 (4. *. scale)) in
  let obs = Plookup_obs.Obs.create ~trace_capacity:256 () in
  let service = Service.create ~seed:3 ~obs ~n (Service.round_robin 2) in
  Service.place service (Entry.Gen.batch (Entry.Gen.create ()) h);
  let svc_window = max 500 (update_iters / 10) in
  let svc_best = Array.make 2 infinity in
  let i = ref 1_000_000 in
  for round = 1 to 40 do
    for j = 0 to 1 do
      let k = if round land 1 = 0 then 1 - j else j in
      Plookup_obs.Trace.set_enabled obs.Plookup_obs.Obs.trace (k = 1);
      let (), elapsed =
        timed (fun () ->
            for _ = 1 to svc_window do
              incr i;
              Service.add service (Entry.v !i);
              Service.delete service (Entry.v !i)
            done)
      in
      if elapsed < svc_best.(k) then svc_best.(k) <- elapsed
    done
  done;
  let svc_off = float_of_int svc_window /. svc_best.(0) in
  let svc_on = float_of_int svc_window /. svc_best.(1) in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "instrumentation overhead (%d posted sends, %d service updates)"
           sends update_iters)
      ~columns:[ "configuration"; "rate"; "overhead vs bare %" ]
  in
  let rate v = Printf.sprintf "%.0f /s" v in
  Table.add_row table [ Table.S "posted sends, bare"; Table.S (rate bare); Table.S "-" ];
  Table.add_row table
    [ Table.S "posted sends, obs attached, tracing off";
      Table.S (rate disabled);
      Table.F (overhead bare disabled) ];
  Table.add_row table
    [ Table.S "posted sends, obs attached, tracing on";
      Table.S (rate traced);
      Table.F (overhead bare traced) ];
  Table.add_row table
    [ Table.S "posted sends, obs attached, tracing on, sample 1%";
      Table.S (rate sampled);
      Table.F (overhead bare sampled) ];
  Table.add_row table
    [ Table.S "sync sends, bare"; Table.S (rate sync_bare); Table.S "-" ];
  Table.add_row table
    [ Table.S "sync sends, tracing on";
      Table.S (rate sync_on);
      Table.S (Printf.sprintf "+%.1f ns/msg" sync_marginal_ns) ];
  Table.add_row table
    [ Table.S "service updates, tracing off"; Table.S (rate svc_off); Table.S "-" ];
  Table.add_row table
    [ Table.S "service updates, tracing on";
      Table.S (rate svc_on);
      Table.F (overhead svc_off svc_on) ];
  Table.print table;
  Printf.sprintf
    "  \"instrumentation\": {\n\
    \    \"net_sends\": %d,\n\
    \    \"net_sends_per_sec_bare\": %.0f,\n\
    \    \"net_sends_per_sec_tracing_off\": %.0f,\n\
    \    \"net_sends_per_sec_tracing_on\": %.0f,\n\
    \    \"net_sends_per_sec_sampled_1pct\": %.0f,\n\
    \    \"overhead_tracing_off_pct\": %.2f,\n\
    \    \"overhead_tracing_on_pct\": %.2f,\n\
    \    \"sync_sends_per_sec_bare\": %.0f,\n\
    \    \"sync_sends_per_sec_tracing_on\": %.0f,\n\
    \    \"sync_trace_marginal_ns_per_msg\": %.2f,\n\
    \    \"service_updates\": %d,\n\
    \    \"service_updates_per_sec_tracing_off\": %.0f,\n\
    \    \"service_updates_per_sec_tracing_on\": %.0f,\n\
    \    \"service_overhead_tracing_on_pct\": %.2f\n\
    \  }"
    sends bare disabled traced sampled (overhead bare disabled) (overhead bare traced)
    sync_bare sync_on sync_marginal_ns update_iters svc_off svc_on (overhead svc_off svc_on)

(* ------------------------------------------------------------------ *)
(* Part 7: cluster-scale benchmark -> BENCH_scale.json                 *)

(* The paper simulates n=10; this sweep proves the codebase holds up at
   n=10k.  For each consistent-hashing strategy at each fleet size it
   measures placement throughput (entries placed per second through the
   full message path), steady-state lookup throughput at the paper's
   t=35 working point, resident memory after placement, and the storage
   load skew (peak/mean entry count over servers) the strategy's hash
   geometry produces.  Written to BENCH_scale.json and gated by
   check_regress exactly like BENCH_core.json, so an O(n) scan creeping
   back into a hot path shows up as a throughput regression at the
   larger sizes. *)
let bench_scale ~smoke () =
  (* One shot of [f] at n=10 lasts ~100us, far below timer resolution
     noise, so every rate repeats [f] until a minimum wall clock has
     accumulated — the 30% CI gate needs the small-n rows stable. *)
  let min_elapsed = if smoke then 0.05 else 0.2 in
  let rate ~amount f =
    let t0 = Unix.gettimeofday () in
    let rounds = ref 0 in
    while Unix.gettimeofday () -. t0 < min_elapsed do
      f ();
      incr rounds
    done;
    float_of_int (!rounds * amount) /. Float.max 1e-6 (Unix.gettimeofday () -. t0)
  in
  let sizes = if smoke then [ 10; 1000 ] else [ 10; 1000; 10_000 ] in
  let t = 35 in
  let cfg s =
    match Service.config_of_string s with Ok c -> c | Error e -> failwith e
  in
  let configs = [ cfg "hash-2"; cfg "chord-2"; cfg "dxhash-2"; cfg "multiprobe-2x2" ] in
  let live_words () =
    Gc.compact ();
    (Gc.stat ()).Gc.live_words
  in
  let rows =
    List.concat_map
      (fun n ->
        let h = max 100 n in
        List.map
          (fun config ->
            let words0 = live_words () in
            let service = Service.create ~seed:7 ~n config in
            let entries = Entry.Gen.batch (Entry.Gen.create ()) h in
            Service.place service entries;
            let words1 = live_words () in
            (* Re-placing the same batch repeats the identical message
               sequence (stores replace in place), so the repetitions
               measure steady-state placement throughput. *)
            let place_rate = rate ~amount:h (fun () -> Service.place service entries) in
            let lookup_rate =
              rate ~amount:1 (fun () -> ignore (Service.partial_lookup service t))
            in
            let cluster = Service.cluster service in
            let loads =
              Array.init n (fun i -> Server_store.cardinal (Cluster.store cluster i))
            in
            let load = Metrics.Load.summarize loads in
            ( Printf.sprintf "%s@n=%d" (Service.config_name config) n,
              place_rate,
              lookup_rate,
              words1 - words0,
              load ))
          configs)
      sizes
  in
  let table =
    Table.create
      ~title:(Printf.sprintf "cluster-scale sweep (t=%d%s)" t (if smoke then ", smoke" else ""))
      ~columns:
        [ "strategy@n"; "placements/s"; "lookups/s"; "live words"; "peak/avg"; "load cov" ]
  in
  List.iter
    (fun (name, place_rate, lookup_rate, words, load) ->
      Table.add_row table
        [ Table.S name;
          Table.S (Printf.sprintf "%.0f" place_rate);
          Table.S (Printf.sprintf "%.0f" lookup_rate);
          Table.I words;
          Table.F load.Metrics.Load.peak_to_average;
          Table.F load.Metrics.Load.cov ])
    rows;
  Table.print table;
  let rate_rows value =
    String.concat ",\n"
      (List.map
         (fun ((name, _, _, _, _) as row) ->
           Printf.sprintf "    {\"strategy\": %S, \"per_sec\": %.0f}" name (value row))
         rows)
  in
  let load_rows =
    String.concat ",\n"
      (List.map
         (fun (name, _, _, words, load) ->
           Printf.sprintf
             "    {\"strategy\": %S, \"live_words\": %d, \"peak_to_average\": %.4f, \
              \"cov\": %.4f}"
             name words load.Metrics.Load.peak_to_average load.Metrics.Load.cov)
         rows)
  in
  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"cluster_scale\",\n\
    \  \"params\": {\"t\": %d, \"smoke\": %b, \"sizes\": [%s]},\n\
    \  \"placements_per_sec\": [\n%s\n  ],\n\
    \  \"lookups_per_sec\": [\n%s\n  ],\n\
    \  \"load\": [\n%s\n  ]\n\
     }\n"
    t smoke
    (String.concat ", " (List.map string_of_int sizes))
    (rate_rows (fun (_, p, _, _, _) -> p))
    (rate_rows (fun (_, _, l, _, _) -> l))
    load_rows;
  close_out oc;
  print_endline "(wrote BENCH_scale.json)"

(* ------------------------------------------------------------------ *)
(* Part 8: production-day chaos benchmark -> BENCH_day.json            *)

(* The day experiment is both a behavioural artifact (crowd-window tail
   latencies, deterministic at a fixed seed and scale) and a throughput
   workload (a full simulated day across every strategy, naive and
   tuned).  The crowd-tail milliseconds are gated lower-is-better by
   check_regress, so a regression in shedding, hedging, or the breaker
   shows up as a fatter tail; the runs-per-second row gates the
   simulator's wall-clock cost the usual higher-is-better way.  The day
   itself always runs at the same scale — smoke only trims how long the
   rate loop repeats — so the committed baseline and the CI smoke run
   compare like for like. *)
let bench_day ~smoke () =
  let scale = 0.25 in
  let min_elapsed = if smoke then 0.05 else 0.2 in
  let ctx = E.Ctx.v ~seed:42 ~scale () in
  let table = E.Exp_day.run ctx in
  Table.print table;
  let t0 = Unix.gettimeofday () in
  let rounds = ref 0 in
  while Unix.gettimeofday () -. t0 < min_elapsed do
    ignore (E.Exp_day.run ctx);
    incr rounds
  done;
  let runs_per_sec =
    float_of_int !rounds /. Float.max 1e-6 (Unix.gettimeofday () -. t0)
  in
  let idx name =
    match List.find_index (String.equal name) (Table.columns table) with
    | Some i -> i
    | None -> failwith ("bench_day: missing column " ^ name)
  in
  let scell row i =
    match List.nth row i with Table.S s -> s | c -> Table.cell_to_string c
  in
  let fcell row i =
    match List.nth row i with
    | Table.F f -> f
    | _ -> failwith "bench_day: expected a float cell"
  in
  let s_i = idx "strategy" and c_i = idx "client" in
  let p99_i = idx "crowd p99 ms" and p999_i = idx "crowd p999 ms" in
  let tail_rows =
    String.concat ",\n"
      (List.map
         (fun row ->
           Printf.sprintf "    {\"strategy\": %S, \"p99_ms\": %.2f, \"p999_ms\": %.2f}"
             (scell row s_i ^ "/" ^ scell row c_i)
             (fcell row p99_i) (fcell row p999_i))
         (Table.rows table))
  in
  let oc = open_out "BENCH_day.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"production_day\",\n\
    \  \"params\": {\"scale\": %.2f, \"smoke\": %b},\n\
    \  \"day_runs_per_sec\": [\n\
    \    {\"strategy\": \"day@scale=%.2f\", \"per_sec\": %.2f}\n\
    \  ],\n\
    \  \"tail_ms\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    scale smoke scale runs_per_sec tail_rows;
  close_out oc;
  print_endline "(wrote BENCH_day.json)"

(* ------------------------------------------------------------------ *)
(* Part 9: client-cache benchmark -> BENCH_cache.json                  *)

(* The client-side caching fast path, measured two ways.

   Behaviourally: the production day re-run with the tuned+cache cell
   (deterministic at seed 42, scale 0.25, like Part 8), per strategy —
   hit rate, data-plane messages per lookup against the tuned client,
   crowd-window p99 and stale reads — plus TTL and capacity sweeps of
   the freshness-vs-traffic trade-off and one hotspot-adversarial cell
   (focus 0.9 of all lookups on the worst-placed key), the cache's
   hardest case.  check_regress gates hit_rate higher-is-better,
   msgs_per_lookup and p99_cached_ms lower-is-better, and holds every
   hit rate above an absolute floor.

   Mechanically: raw Client_cache operation throughput — the hit fast
   path at several capacities and a churn loop (expired miss + insert +
   LRU eviction) — gated like any other rate. *)
let bench_cache ~smoke () =
  let scale = 0.25 in
  let day ~cap ~ttl ~swr ~hotspot =
    let cache = { E.Ctx.cache_cap = cap; cache_ttl = ttl; swr; hotspot } in
    E.Exp_day.run (E.Ctx.v ~seed:42 ~scale ~cache ())
  in
  (* Per-cell extraction, as in Part 8. *)
  let extract table =
    let idx name =
      match List.find_index (String.equal name) (Table.columns table) with
      | Some i -> i
      | None -> failwith ("bench_cache: missing column " ^ name)
    in
    let scell row i =
      match List.nth row i with Table.S s -> s | c -> Table.cell_to_string c
    in
    let fcell row i =
      match List.nth row i with
      | Table.F f -> f
      | _ -> failwith "bench_cache: expected a float cell"
    in
    let icell row i =
      match List.nth row i with
      | Table.I n -> n
      | _ -> failwith "bench_cache: expected an int cell"
    in
    let s_i = idx "strategy" and c_i = idx "client" in
    let p99_i = idx "crowd p99 ms" and stale_i = idx "stale" in
    let mpl_i = idx "msgs/lookup" and hit_i = idx "hit %" in
    List.map
      (fun row ->
        ( scell row s_i,
          scell row c_i,
          fcell row p99_i,
          icell row stale_i,
          fcell row mpl_i,
          fcell row hit_i ))
      (Table.rows table)
  in
  let cached rows = List.filter (fun (_, c, _, _, _, _) -> c = "tuned+cache") rows in
  let mean f rows =
    List.fold_left (fun acc r -> acc +. f r) 0. rows /. float_of_int (List.length rows)
  in
  let d = E.Ctx.default_cache in
  let cap0 = d.E.Ctx.cache_cap and ttl0 = d.E.Ctx.cache_ttl and swr0 = d.E.Ctx.swr in
  let base_table = day ~cap:cap0 ~ttl:ttl0 ~swr:swr0 ~hotspot:0. in
  Table.print base_table;
  let base = extract base_table in
  let cache_rows =
    String.concat ",\n"
      (List.filter_map
         (fun (s, c, p99c, stale, mplc, hit) ->
           if c <> "tuned+cache" then None
           else begin
             let _, _, p99t, _, mplt, _ =
               List.find (fun (s', c', _, _, _, _) -> s' = s && c' = "tuned") base
             in
             Some
               (Printf.sprintf
                  "    {\"strategy\": %S, \"hit_rate\": %.2f, \"msgs_per_lookup_tuned\": \
                   %.3f, \"msgs_per_lookup\": %.3f, \"p99_tuned_ms\": %.2f, \
                   \"p99_cached_ms\": %.2f, \"stale\": %d}"
                  s hit mplt mplc p99t p99c stale)
           end)
         base)
  in
  (* Freshness-vs-traffic trade-off: stale reads bought per message
     saved, as the TTL stretches past the update period. *)
  let sweep_row rows =
    ( mean (fun (_, _, _, _, _, h) -> h) rows,
      mean (fun (_, _, _, _, m, _) -> m) rows,
      List.fold_left (fun acc (_, _, _, st, _, _) -> acc + st) 0 rows )
  in
  let ttl_rows =
    String.concat ",\n"
      (List.map
         (fun ttl ->
           let hit, mpl, stale =
             sweep_row (cached (extract (day ~cap:cap0 ~ttl ~swr:swr0 ~hotspot:0.)))
           in
           Printf.sprintf
             "    {\"ttl\": %g, \"hit_rate\": %.2f, \"msgs_per_lookup\": %.3f, \
              \"stale\": %d}"
             ttl hit mpl stale)
         [ 5.; 10.; 25.; 50. ])
  in
  let cap_rows =
    String.concat ",\n"
      (List.map
         (fun cap ->
           let hit, mpl, stale =
             sweep_row (cached (extract (day ~cap ~ttl:ttl0 ~swr:swr0 ~hotspot:0.)))
           in
           Printf.sprintf
             "    {\"cap\": %d, \"hit_rate\": %.2f, \"msgs_per_lookup\": %.3f, \
              \"stale\": %d}"
             cap hit mpl stale)
         (* The day's Zipf working set inside one TTL is small, so the
            LRU only binds at tiny capacities — sweep down to where
            eviction visibly costs hits. *)
         [ 2; 8; 128 ])
  in
  let hotspot_focus = 0.9 in
  let hs = extract (day ~cap:cap0 ~ttl:ttl0 ~swr:swr0 ~hotspot:hotspot_focus) in
  let hs_cached = cached hs in
  let hs_tuned = List.filter (fun (_, c, _, _, _, _) -> c = "tuned") hs in
  (* Raw Client_cache throughput: timed in 1000-op batches, over a
     window long enough to drown the clock reads. *)
  let min_elapsed = if smoke then 0.05 else 0.2 in
  let bench_rate f =
    f 0 (* warm *);
    let t0 = Unix.gettimeofday () in
    let batches = ref 0 in
    while Unix.gettimeofday () -. t0 < min_elapsed do
      f !batches;
      incr batches
    done;
    1000. *. float_of_int !batches /. (Unix.gettimeofday () -. t0)
  in
  let result = Lookup_result.empty ~target:35 in
  let waiter _ ~now:_ = () in
  let fill c cap =
    for k = 0 to cap - 1 do
      match Client_cache.lookup c ~key:k ~now:0. ~waiter with
      | Client_cache.Lead -> Client_cache.complete c ~key:k ~now:0. ~ok:true ~attempts:1 result
      | _ -> ()
    done
  in
  let hit_rate cap =
    let c = Client_cache.create ~ttl:1e12 ~capacity:cap () in
    fill c cap;
    bench_rate (fun i ->
        for j = 0 to 999 do
          ignore (Client_cache.lookup c ~key:(((i * 1000) + j) mod cap) ~now:1. ~waiter)
        done)
  in
  let churn_rate cap =
    let c = Client_cache.create ~ttl:1. ~capacity:cap () in
    let now = ref 0. in
    bench_rate (fun _ ->
        for j = 0 to 999 do
          now := !now +. 2.;
          let key = j mod (2 * cap) in
          match Client_cache.lookup c ~key ~now:!now ~waiter with
          | Client_cache.Lead ->
            Client_cache.complete c ~key ~now:!now ~ok:true ~attempts:1 result
          | _ -> ()
        done)
  in
  let rate_rows =
    List.map (fun cap -> (Printf.sprintf "hit@cap=%d" cap, hit_rate cap)) [ 8; 128; 1024 ]
    @ [ ("churn@cap=128", churn_rate 128) ]
  in
  let summary = Table.create ~title:"client cache" ~columns:[ "metric"; "value" ] in
  List.iter
    (fun (name, v) ->
      Table.add_row summary [ Table.S name; Table.S (Printf.sprintf "%.0f /s" v) ])
    rate_rows;
  Table.print summary;
  let oc = open_out "BENCH_cache.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"client_cache\",\n\
    \  \"params\": {\"scale\": %.2f, \"smoke\": %b, \"cap\": %d, \"ttl\": %g, \"swr\": \
     %g},\n\
    \  \"cache\": [\n\
     %s\n\
    \  ],\n\
    \  \"ttl_sweep\": [\n\
     %s\n\
    \  ],\n\
    \  \"capacity_sweep\": [\n\
     %s\n\
    \  ],\n\
    \  \"hotspot\": {\"focus\": %.2f, \"hit_rate\": %.2f, \"p99_tuned_ms\": %.2f, \
     \"p99_cached_ms\": %.2f},\n\
    \  \"cached_lookups_per_sec\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    scale smoke cap0 ttl0 swr0 cache_rows ttl_rows cap_rows hotspot_focus
    (mean (fun (_, _, _, _, _, h) -> h) hs_cached)
    (mean (fun (_, _, p, _, _, _) -> p) hs_tuned)
    (mean (fun (_, _, p, _, _, _) -> p) hs_cached)
    (String.concat ",\n"
       (List.map
          (fun (name, v) -> Printf.sprintf "    {\"strategy\": %S, \"per_sec\": %.0f}" name v)
          rate_rows));
  close_out oc;
  print_endline "(wrote BENCH_cache.json)"

(* ------------------------------------------------------------------ *)
(* Part 10: domain-sharded simulation -> BENCH_parallel.json           *)

(* The striped data-plane simulation (Shard_sim: 4 server-id stripes,
   conservative lookahead windows) run at worker counts 1, 2 and 4, at
   n=1k and n=10k.  Three numbers per cell: wall clock, simulation
   events per second, and — the determinism contract, re-checked here
   where the speedup is claimed — the byte-identical digest across
   worker counts.  events/s rows are written in the rate_array shape
   check_regress gates (higher is better); wall clock and speedup are
   reported for context only, because they measure the CI machine's
   core count and load as much as the code.  The w=1 row doubles as a
   sequential-overhead gate: the windowed driver with one worker must
   not fall behind its own baseline. *)
let bench_parallel ~smoke () =
  let sizes = if smoke then [ 1000 ] else [ 1000; 10_000 ] in
  let worker_counts = [ 1; 2; 4 ] in
  let min_elapsed = if smoke then 0.1 else 0.4 in
  let horizon = 40. in
  let cells =
    List.concat_map
      (fun n ->
        let entries = 2 * n in
        let rate = float_of_int n /. 10. in
        let run workers =
          E.Shard_sim.run ~workers ~n ~entries ~rate ~horizon ~seed:42 ()
        in
        let reference = E.Shard_sim.to_string (run 1) in
        List.map
          (fun workers ->
            let digest = E.Shard_sim.to_string (run workers) in
            if digest <> reference then
              failwith
                (Printf.sprintf
                   "bench_parallel: n=%d diverged at workers=%d\n%s\nvs\n%s" n
                   workers reference digest);
            (* Repeat whole runs until enough wall clock accumulates;
               every run is identical, so repetition measures
               steady-state throughput. *)
            let t0 = Unix.gettimeofday () in
            let rounds = ref 0 and events = ref 0 in
            while Unix.gettimeofday () -. t0 < min_elapsed do
              events := !events + (run workers).E.Shard_sim.events;
              incr rounds
            done;
            let elapsed = Unix.gettimeofday () -. t0 in
            let wall = elapsed /. float_of_int !rounds in
            let per_sec = float_of_int !events /. elapsed in
            (n, workers, wall, per_sec))
          worker_counts)
      sizes
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "domain-sharded simulation (stripes=%d, horizon=%g%s)"
           E.Shard_sim.stripes horizon
           (if smoke then ", smoke" else ""))
      ~columns:[ "n"; "workers"; "wall ms"; "events/s"; "speedup vs w=1" ]
  in
  let wall_of n workers =
    List.find_map
      (fun (n', w, wall, _) -> if n' = n && w = workers then Some wall else None)
      cells
  in
  List.iter
    (fun (n, workers, wall, per_sec) ->
      Table.add_row table
        [ Table.I n;
          Table.I workers;
          Table.F (1000. *. wall);
          Table.S (Printf.sprintf "%.0f" per_sec);
          (match wall_of n 1 with
          | Some w1 -> Table.F (w1 /. wall)
          | None -> Table.S "-") ])
    cells;
  Table.print table;
  let rate_rows =
    String.concat ",\n"
      (List.map
         (fun (n, workers, _, per_sec) ->
           Printf.sprintf "    {\"strategy\": \"n=%d w=%d\", \"per_sec\": %.0f}" n
             workers per_sec)
         cells)
  in
  let wall_rows =
    String.concat ",\n"
      (List.map
         (fun (n, workers, wall, _) ->
           Printf.sprintf
             "    {\"cell\": \"n=%d w=%d\", \"wall_s\": %.4f, \"speedup_vs_w1\": %s}" n
             workers wall
             (match wall_of n 1 with
             | Some w1 -> Printf.sprintf "%.3f" (w1 /. wall)
             | None -> "null"))
         cells)
  in
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"parallel_shards\",\n\
    \  \"params\": {\"stripes\": %d, \"horizon\": %g, \"smoke\": %b, \"sizes\": [%s], \
     \"workers\": [%s], \"cores\": %d, \"parallel_available\": %b, \"determinism\": \
     \"byte-identical digest across all worker counts, checked before timing\"},\n\
    \  \"shard_events_per_sec\": [\n%s\n  ],\n\
    \  \"wall_clock\": [\n%s\n  ]\n\
     }\n"
    E.Shard_sim.stripes horizon smoke
    (String.concat ", " (List.map string_of_int sizes))
    (String.concat ", " (List.map string_of_int worker_counts))
    (Pool.recommended_jobs ()) Pool.parallel_available rate_rows wall_rows;
  close_out oc;
  print_endline "(wrote BENCH_parallel.json)"

(* ------------------------------------------------------------------ *)

let () =
  let jobs = ref 0 in
  let smoke = ref false in
  let scale_only = ref false in
  let day_only = ref false in
  let cache_only = ref false in
  let parallel_only = ref false in
  Arg.parse
    [ ("-j", Arg.Set_int jobs, "JOBS worker domains for Parts 2 and 5 (0 = one per core)");
      ("--jobs", Arg.Set_int jobs, "JOBS same as -j");
      ("--smoke",
       Arg.Set smoke,
       " quick CI run: micro-benchmarks and the core baseline at tiny scale");
      ("--scale-only",
       Arg.Set scale_only,
       " run only Part 7 (the n=10..10k cluster-scale sweep -> BENCH_scale.json)");
      ("--day-only",
       Arg.Set day_only,
       " run only Part 8 (the production-day chaos benchmark -> BENCH_day.json)");
      ("--cache-only",
       Arg.Set cache_only,
       " run only Part 9 (the client-cache benchmark -> BENCH_cache.json)");
      ("--parallel-only",
       Arg.Set parallel_only,
       " run only Part 10 (the domain-sharded simulation -> BENCH_parallel.json)") ]
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "bench [-j JOBS] [--smoke] [--scale-only] [--day-only] [--cache-only] [--parallel-only]";
  let jobs = if !jobs = 0 then Pool.recommended_jobs () else !jobs in
  let t0 = Unix.gettimeofday () in
  if !scale_only then begin
    print_endline "=== Part 7: cluster-scale benchmark (BENCH_scale.json) ===";
    print_newline ();
    bench_scale ~smoke:!smoke ();
    Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0);
    exit 0
  end;
  if !day_only then begin
    print_endline "=== Part 8: production-day chaos benchmark (BENCH_day.json) ===";
    print_newline ();
    bench_day ~smoke:!smoke ();
    Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0);
    exit 0
  end;
  if !cache_only then begin
    print_endline "=== Part 9: client-cache benchmark (BENCH_cache.json) ===";
    print_newline ();
    bench_cache ~smoke:!smoke ();
    Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0);
    exit 0
  end;
  if !parallel_only then begin
    print_endline "=== Part 10: domain-sharded simulation (BENCH_parallel.json) ===";
    print_newline ();
    bench_parallel ~smoke:!smoke ();
    Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0);
    exit 0
  end;
  print_endline "=== Part 1: micro-benchmarks (one Test.make per table/figure) ===";
  run_bechamel (experiment_tests @ core_op_tests);
  print_newline ();
  if not !smoke then begin
    print_endline "=== Part 2: paper reproduction (tables and figures) ===";
    print_newline ();
    let ctx = E.Ctx.v ~seed:42 ~scale:1.0 ~jobs () in
    List.iter
      (fun e ->
        let start = Unix.gettimeofday () in
        Table.print (e.E.Registry.run ctx);
        Printf.printf "(%s regenerated in %.1fs)\n\n%!" e.E.Registry.id
          (Unix.gettimeofday () -. start))
      E.Registry.all;
    (let _, derived = E.Exp_table2.run_full ctx in
     Table.print derived;
     print_newline ());
    Table.print E.Exp_table2.paper_stars;
    print_newline ();
    print_endline "=== Part 3: ablations ===";
    print_newline ();
    ablation_ft_heuristic ();
    print_newline ();
    ablation_delete_policy ();
    print_newline ();
    ablation_coordinator_bottleneck ();
    print_newline ();
    ablation_coordinator_replication ();
    print_newline ();
    ablation_hash_sizing ();
    print_newline ();
    print_endline "=== Part 4: churn/repair benchmark (BENCH_repair.json) ===";
    print_newline ();
    bench_repair ()
  end;
  print_newline ();
  print_endline "=== Part 5: core throughput baseline (BENCH_core.json) ===";
  print_newline ();
  let core_scale = if !smoke then 0.05 else 0.25 in
  let core_fields = bench_core ~jobs ~scale:core_scale () in
  print_newline ();
  print_endline "=== Part 6: instrumentation overhead (observability layer) ===";
  print_newline ();
  let obs_fields = bench_obs ~scale:core_scale () in
  let oc = open_out "BENCH_core.json" in
  Printf.fprintf oc "{\n%s,\n%s\n}\n" core_fields obs_fields;
  close_out oc;
  print_endline "(wrote BENCH_core.json)";
  print_newline ();
  print_endline "=== Part 7: cluster-scale benchmark (BENCH_scale.json) ===";
  print_newline ();
  bench_scale ~smoke:!smoke ();
  print_newline ();
  print_endline "=== Part 8: production-day chaos benchmark (BENCH_day.json) ===";
  print_newline ();
  bench_day ~smoke:!smoke ();
  print_newline ();
  print_endline "=== Part 9: client-cache benchmark (BENCH_cache.json) ===";
  print_newline ();
  bench_cache ~smoke:!smoke ();
  print_newline ();
  print_endline "=== Part 10: domain-sharded simulation (BENCH_parallel.json) ===";
  print_newline ();
  bench_parallel ~smoke:!smoke ();
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
