(** Figure 9: unfairness (coefficient of variation of per-entry return
    probability, Eq. 1) vs total storage, for RandomServer-x and Hash-y
    at target answer size 35.  RandomServer's unfairness decays in two
    phases (coverage-limited, then single-server); Hash's *rises* as
    growing storage stops masking the hash functions' placement bias,
    then declines only slightly.

    Note (also EXPERIMENTS.md): the empirical estimator has a Monte-
    Carlo noise floor of about sqrt((1-p)/(m*p)) with p = t/h and m
    lookups per instance — the paper's own m = 10000 floors near 0.014,
    which is visible in its smallest reported values. *)

val id : string
val title : string

val run :
  ?n:int ->
  ?h:int ->
  ?t:int ->
  ?budgets:int list ->
  Ctx.t ->
  Plookup_util.Table.t
(** Defaults: n=10, h=100, t=35, budgets 100..1000 step 100. *)
