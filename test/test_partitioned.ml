open Plookup
open Plookup_store

let make ?(seed = 4) ~n () = Partitioned.create ~seed ~n ()

let test_home_deterministic () =
  let p = make ~n:8 () in
  Helpers.check_int "stable" (Partitioned.home p "song") (Partitioned.home p "song");
  let q = make ~n:8 () in
  Helpers.check_int "same seed same home" (Partitioned.home p "song")
    (Partitioned.home q "song");
  for i = 0 to 50 do
    let home = Partitioned.home p (string_of_int i) in
    if home < 0 || home >= 8 then Alcotest.failf "home out of range: %d" home
  done

let test_place_and_lookup () =
  let p = make ~n:4 () in
  Partitioned.place p ~key:"k" (Helpers.entries 6);
  let r = Partitioned.lookup p ~key:"k" 3 in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r);
  Helpers.check_int "one server" 1 r.Lookup_result.servers_contacted;
  Helpers.check_int "storage = h (single copy)" 6 (Partitioned.total_stored p)

let test_all_entries_on_home () =
  let p = make ~n:4 () in
  Partitioned.place p ~key:"k" (Helpers.entries 6);
  Alcotest.(check (list int)) "home holds everything" [ 0; 1; 2; 3; 4; 5 ]
    (Helpers.sorted_ids (Partitioned.entries_of p ~key:"k"))

let test_unknown_key_empty () =
  let p = make ~n:4 () in
  let r = Partitioned.lookup p ~key:"missing" 2 in
  Helpers.check_int "empty" 0 (Lookup_result.count r)

let test_add_delete () =
  let p = make ~n:4 () in
  Partitioned.place p ~key:"k" (Helpers.entries 2);
  Partitioned.add p ~key:"k" (Entry.v 50);
  Helpers.check_int "added" 3 (List.length (Partitioned.entries_of p ~key:"k"));
  Partitioned.delete p ~key:"k" (Entry.v 50);
  Helpers.check_int "deleted" 2 (List.length (Partitioned.entries_of p ~key:"k"))

let test_keys_are_isolated () =
  let p = make ~n:4 () in
  Partitioned.place p ~key:"a" (Helpers.entries 3);
  Partitioned.place p ~key:"b" [ Entry.v 100 ];
  let r = Partitioned.lookup p ~key:"b" 5 in
  Alcotest.(check (list int)) "only b's entries" [ 100 ]
    (Helpers.sorted_ids r.Lookup_result.entries)

let test_home_down_fails_lookup () =
  (* The partitioning weakness: no fallback when the home is down. *)
  let p = make ~n:4 () in
  Partitioned.place p ~key:"k" (Helpers.entries 6);
  Partitioned.fail p (Partitioned.home p "k");
  let r = Partitioned.lookup p ~key:"k" 1 in
  Helpers.check_int "no answer" 0 (Lookup_result.count r);
  Partitioned.recover p (Partitioned.home p "k");
  Alcotest.(check bool) "back" true (Lookup_result.satisfied (Partitioned.lookup p ~key:"k" 1))

let test_load_concentrates () =
  let p = make ~n:4 () in
  Partitioned.place p ~key:"hot" (Helpers.entries 5);
  Partitioned.reset_load p;
  for _ = 1 to 100 do
    ignore (Partitioned.lookup p ~key:"hot" 2)
  done;
  let load = Partitioned.load p in
  Helpers.check_int "home takes everything" 100 load.(Partitioned.home p "hot");
  Helpers.check_int "total" 100 (Array.fold_left ( + ) 0 load)

let test_homes_spread () =
  (* Across many keys, homes should hit every server. *)
  let p = make ~n:5 () in
  let seen = Array.make 5 false in
  for i = 0 to 99 do
    seen.(Partitioned.home p (Printf.sprintf "key-%d" i)) <- true
  done;
  Alcotest.(check bool) "all servers used" true (Array.for_all Fun.id seen)

let prop_lookup_subset_of_placed =
  Helpers.qcheck ~count:60 "lookups return a subset of the key's entries"
    QCheck2.Gen.(pair (int_range 1 15) (int_range 1 20))
    (fun (h, t) ->
      let p = make ~n:3 () in
      let entries = Helpers.entries h in
      Partitioned.place p ~key:"k" entries;
      let r = Partitioned.lookup p ~key:"k" t in
      List.for_all (fun e -> List.exists (Entry.equal e) entries) r.Lookup_result.entries
      && Lookup_result.count r = min t h)

let () =
  Helpers.run "partitioned"
    [ ( "partitioned",
        [ Alcotest.test_case "home deterministic" `Quick test_home_deterministic;
          Alcotest.test_case "place/lookup" `Quick test_place_and_lookup;
          Alcotest.test_case "home holds all" `Quick test_all_entries_on_home;
          Alcotest.test_case "unknown key" `Quick test_unknown_key_empty;
          Alcotest.test_case "add/delete" `Quick test_add_delete;
          Alcotest.test_case "keys isolated" `Quick test_keys_are_isolated;
          Alcotest.test_case "home down" `Quick test_home_down_fails_lookup;
          Alcotest.test_case "load concentrates" `Quick test_load_concentrates;
          Alcotest.test_case "homes spread" `Quick test_homes_spread;
          prop_lookup_subset_of_placed ] ) ]
