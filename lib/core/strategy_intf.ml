(** The first-class signature every placement strategy implements.

    A strategy is the paper's unit of design: a server-side handler for
    the {!Msg.data} and {!Msg.strategy} planes plus a client-side
    probing discipline.  Packing one as a [(module S)] lets
    {!Strategy_registry} carry all of them behind one value, which is
    what makes {!Service}, the CLI, the experiments and the bench
    strategy-agnostic.  See DESIGN.md, "Adding a placement strategy". *)

open Plookup_store

(** How the strategy's placement is described to the {!Repair} layer.

    [Mirror]: every up server should hold every entry the strategy
    tracked (FullReplication, Fixed-x).  [Assigned f]: [f e] names the
    servers that should hold [e], or [None] when the assignment is
    currently unknowable (truncated Round-Robin).  [Free x]: contents
    are a random x-subset per server by design; repair maintains an
    aggregate degree instead of per-server ownership (RandomServer-x). *)
type plan =
  | Mirror
  | Assigned of (Entry.t -> int list option)
  | Free of int

type meta = {
  name : string;
      (** Canonical name, the paper's spelling: ["RoundRobin"],
          ["Hash"], ... Formatted with parameters by
          {!Service.config_name} (e.g. ["RoundRobinHA-2x3"]). *)
  keys : string list;
      (** Lowercase spellings accepted by the parser, e.g.
          [["roundrobin"; "round_robin"; "round"]].  The first key is
          the canonical one shown in listings and suggestions. *)
  arity : int;  (** Number of integer parameters: 0, 1 or 2. *)
  param_doc : string;
      (** What the parameter(s) mean, for the CLI [strategies]
          listing; [""] when [arity = 0]. *)
  storage_doc : string;
      (** The Table-1 storage-cost formula as a string, e.g. ["x*n"]. *)
  ablation : bool;
      (** Variant studied as an ablation (Section 5.3 replacement,
          footnote-1 coordinator replication): excluded from
          {!Service.all_configs} unless asked for. *)
  rank : int;
      (** Presentation order in listings and comparison tables (the
          registry sorts by it; registration order is irrelevant). *)
}

module type S = sig
  type t

  val meta : meta

  val analytic_storage : n:int -> h:int -> params:int list -> float
  (** The Table-1 closed form: expected total entry copies stored when
      managing [h] entries on [n] servers. *)

  val params_for_budget : n:int -> h:int -> total:int -> params:int list -> int list
  (** Re-parameterize so [analytic_storage] fits a budget of [total]
      entry slots (Fixed/RandomServer: [x = total / n]; Round/Hash/
      Chord: [y = total / h]; floor 1).  [params] carries the current
      parameters so secondary ones (RoundRobinHA's [k]) survive. *)

  val create : ?resync_stores:bool -> Cluster.t -> params:int list -> t
  (** Bind the strategy to the cluster (installing its network
      handler).  [resync_stores] (default [true]) is Round-Robin's
      recovery full-push; {!Service} turns it off when the digest-based
      repair layer owns store reconciliation.  Raises [Invalid_argument]
      when [params] does not match [meta.arity] or a parameter is out
      of range. *)

  val place : t -> ?budget:int -> Entry.t list -> unit
  val add : t -> Entry.t -> unit
  val delete : t -> Entry.t -> unit
  val partial_lookup : ?reachable:(int -> bool) -> t -> int -> Lookup_result.t
  val can_update : t -> bool
  val repair_plan : t -> plan
end
