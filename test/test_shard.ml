(* Unit tests for the conservative sharded driver (Plookup_sim.Shard),
   the per-stripe up views (Net stripe API) and the Pool.Gang barrier
   primitive the driver runs on. *)

module Engine = Plookup_sim.Engine
module Shard = Plookup_sim.Shard
module Net = Plookup_net.Net
module Pool = Plookup_util.Pool

(* --- Pool.Gang ----------------------------------------------------- *)

let test_gang_runs_every_worker () =
  let gang = Pool.Gang.create ~workers:4 in
  Fun.protect
    ~finally:(fun () -> Pool.Gang.shutdown gang)
    (fun () ->
      Alcotest.(check int) "size" 4 (Pool.Gang.size gang);
      let hits = Array.make 4 0 in
      (* Each worker owns its own slot, so the bodies are race-free and
         the barrier makes the final reads safe. *)
      for _ = 1 to 10 do
        Pool.Gang.run gang (fun w -> hits.(w) <- hits.(w) + 1)
      done;
      Array.iteri
        (fun w h -> Alcotest.(check int) (Printf.sprintf "worker %d ran" w) 10 h)
        hits)

let test_gang_oversubscribed () =
  (* More workers than cores must still work (and terminate). *)
  let workers = (4 * Pool.recommended_jobs ()) + 3 in
  let gang = Pool.Gang.create ~workers in
  Fun.protect
    ~finally:(fun () -> Pool.Gang.shutdown gang)
    (fun () ->
      let hits = Array.make workers 0 in
      Pool.Gang.run gang (fun w -> hits.(w) <- hits.(w) + 1);
      Alcotest.(check int) "all workers ran" workers (Array.fold_left ( + ) 0 hits))

let test_gang_exception_lowest_index () =
  let gang = Pool.Gang.create ~workers:4 in
  Fun.protect
    ~finally:(fun () -> Pool.Gang.shutdown gang)
    (fun () ->
      let ran = Array.make 4 false in
      let raised =
        try
          Pool.Gang.run gang (fun w ->
              ran.(w) <- true;
              if w = 1 || w = 3 then failwith (Printf.sprintf "worker %d" w));
          None
        with Failure m -> Some m
      in
      Alcotest.(check (option string)) "lowest failing worker wins" (Some "worker 1")
        raised;
      Array.iteri
        (fun w r -> Alcotest.(check bool) (Printf.sprintf "worker %d ran" w) true r)
        ran)

let test_gang_validation () =
  Alcotest.check_raises "workers < 1"
    (Invalid_argument "Pool.Gang.create: workers must be at least 1") (fun () ->
      ignore (Pool.Gang.create ~workers:0));
  let gang = Pool.Gang.create ~workers:2 in
  Pool.Gang.shutdown gang;
  Pool.Gang.shutdown gang;
  (* idempotent *)
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.Gang.run: gang is shut down") (fun () ->
      Pool.Gang.run gang (fun _ -> ()))

(* --- Shard driver -------------------------------------------------- *)

let test_shard_validation () =
  Alcotest.check_raises "shards < 1"
    (Invalid_argument "Shard.create: shards must be at least 1") (fun () ->
      ignore (Shard.create ~shards:0 ~lookahead:1. () : unit Shard.t));
  Alcotest.check_raises "lookahead <= 0"
    (Invalid_argument "Shard.create: lookahead must be positive") (fun () ->
      ignore (Shard.create ~shards:2 ~lookahead:0. () : unit Shard.t))

let test_shard_local_events_fire () =
  let t : unit Shard.t = Shard.create ~shards:3 ~lookahead:2. () in
  let fired = Array.make 3 0 in
  for s = 0 to 2 do
    for k = 1 to 5 do
      ignore
        (Engine.schedule_at (Shard.engine t s) ~time:(float_of_int k) (fun _ ->
             fired.(s) <- fired.(s) + 1))
    done
  done;
  let total = Shard.run ~until:10. t in
  Alcotest.(check int) "events fired" 15 total;
  Array.iteri (fun s f -> Alcotest.(check int) (Printf.sprintf "shard %d" s) 5 f) fired;
  for s = 0 to 2 do
    Helpers.close (Printf.sprintf "clock %d at horizon" s) 10.
      (Engine.now (Shard.engine t s))
  done

let test_shard_cross_send_arrives () =
  let t : int Shard.t = Shard.create ~shards:2 ~lookahead:1.5 () in
  let got = ref [] in
  Shard.set_receiver t 1 (fun eng ~time msg ->
      ignore (Engine.schedule_at eng ~time (fun e -> got := (Engine.now e, msg) :: !got)));
  (* Sender: shard 0 fires at t=1.0 and sends a message arriving 1.5
     later (exactly the lookahead — the tightest legal send). *)
  ignore
    (Engine.schedule_at (Shard.engine t 0) ~time:1.0 (fun e ->
         Shard.send t ~src:0 ~dst:1 ~time:(Engine.now e +. 1.5) 42));
  ignore (Shard.run ~until:10. t);
  Alcotest.(check (list (pair (float 1e-9) int))) "message delivered at its time"
    [ (2.5, 42) ] !got

let test_shard_lookahead_violation () =
  let t : int Shard.t = Shard.create ~shards:2 ~lookahead:5. () in
  Shard.set_receiver t 1 (fun _ ~time:_ _ -> ());
  let violated = ref false in
  ignore
    (Engine.schedule_at (Shard.engine t 0) ~time:1.0 (fun e ->
         (* Arrival before the window barrier: must be rejected. *)
         try Shard.send t ~src:0 ~dst:1 ~time:(Engine.now e +. 1.) 0
         with Invalid_argument _ -> violated := true));
  ignore (Shard.run ~until:6. t);
  Alcotest.(check bool) "lookahead violation rejected" true !violated

let test_shard_no_receiver () =
  let t : int Shard.t = Shard.create ~shards:2 ~lookahead:1. () in
  Alcotest.check_raises "send without receiver"
    (Invalid_argument "Shard.send: destination shard has no receiver") (fun () ->
      Shard.send t ~src:0 ~dst:1 ~time:5. 0)

(* A small ping-pong network: every shard periodically sends to every
   other shard; the transcript of receptions must be identical when
   driven sequentially and by gangs of several sizes. *)
let pingpong ~gang_size () =
  let shards = 4 in
  let t : (int * int) Shard.t = Shard.create ~shards ~lookahead:1. () in
  (* One log per shard — state ownership, like every other per-shard
     structure; a single shared buffer would be a cross-domain race.
     The logs are concatenated in shard order after the run. *)
  let logs = Array.init shards (fun _ -> Buffer.create 256) in
  for dst = 0 to shards - 1 do
    Shard.set_receiver t dst (fun eng ~time msg ->
        ignore
          (Engine.schedule_at eng ~time (fun e ->
               let src, hop = msg in
               Buffer.add_string logs.(dst)
                 (Printf.sprintf "%.1f:%d<-%d#%d;" (Engine.now e) dst src hop);
               if hop < 3 then
                 Shard.send t ~src:dst ~dst:src
                   ~time:(Engine.now e +. 1.)
                   (dst, hop + 1))))
  done;
  for s = 0 to shards - 1 do
    ignore
      (Engine.schedule_at (Shard.engine t s) ~time:0.5 (fun e ->
           for dst = 0 to shards - 1 do
             if dst <> s then
               Shard.send t ~src:s ~dst ~time:(Engine.now e +. 1.) (s, 0)
           done))
  done;
  let events = ref 0 in
  if gang_size = 0 then events := Shard.run ~until:20. t
  else begin
    let gang = Pool.Gang.create ~workers:gang_size in
    Fun.protect
      ~finally:(fun () -> Pool.Gang.shutdown gang)
      (fun () -> events := Shard.run ~gang ~until:20. t)
  end;
  Printf.sprintf "%d|%s" !events
    (String.concat "" (Array.to_list (Array.map Buffer.contents logs)))

let test_shard_gang_determinism () =
  let seq = pingpong ~gang_size:0 () in
  List.iter
    (fun gs ->
      Helpers.check_string
        (Printf.sprintf "sequential vs gang of %d" gs)
        seq
        (pingpong ~gang_size:gs ()))
    [ 1; 2; 4; 7 ]

(* --- Net stripe views ---------------------------------------------- *)

let test_stripe_views () =
  let net : (unit, unit) Net.t = Net.create ~n:10 () in
  Alcotest.(check int) "no views yet" 0 (Net.stripes net);
  Net.attach_stripe_views net ~stripes:3;
  Alcotest.(check int) "stripes" 3 (Net.stripes net);
  (* 10 over 3 stripes: sizes 4, 3, 3. *)
  Alcotest.(check (pair int int)) "stripe 0 bounds" (0, 4) (Net.stripe_bounds net 0);
  Alcotest.(check (pair int int)) "stripe 1 bounds" (4, 7) (Net.stripe_bounds net 1);
  Alcotest.(check (pair int int)) "stripe 2 bounds" (7, 10) (Net.stripe_bounds net 2);
  Alcotest.(check int) "server 6 is stripe 1" 1 (Net.stripe_of net 6);
  Alcotest.(check int) "stripe 0 starts full" 4 (Net.stripe_up_count net 0);
  Net.fail net 1;
  Net.fail net 5;
  Alcotest.(check int) "stripe 0 after fail" 3 (Net.stripe_up_count net 0);
  Alcotest.(check int) "stripe 1 after fail" 2 (Net.stripe_up_count net 1);
  Alcotest.(check int) "stripe 2 untouched" 3 (Net.stripe_up_count net 2);
  (* k-th up inside stripe 0 skips the failed server 1. *)
  Alcotest.(check (list int)) "stripe 0 up servers" [ 0; 2; 3 ]
    (List.init (Net.stripe_up_count net 0) (Net.stripe_kth_up net 0));
  Net.recover net 1;
  Alcotest.(check int) "recover restores" 4 (Net.stripe_up_count net 0);
  (* Global view is unaffected by the stripe mirrors. *)
  Alcotest.(check int) "global up count" 9 (Net.up_count net)

let test_stripe_views_oversubscribed () =
  (* More stripes than servers: tail stripes are empty, never crash. *)
  let net : (unit, unit) Net.t = Net.create ~n:3 () in
  Net.attach_stripe_views net ~stripes:5;
  Alcotest.(check int) "stripes" 5 (Net.stripes net);
  Alcotest.(check int) "stripe 0 holds one" 1 (Net.stripe_up_count net 0);
  Alcotest.(check int) "stripe 4 empty" 0 (Net.stripe_up_count net 4);
  Alcotest.(check (pair int int)) "stripe 4 bounds" (3, 3) (Net.stripe_bounds net 4);
  Alcotest.(check int) "server 2 stripe" 2 (Net.stripe_of net 2)

let test_stripe_views_validation () =
  let net : (unit, unit) Net.t = Net.create ~n:4 () in
  Alcotest.check_raises "stripes < 1"
    (Invalid_argument "Net.attach_stripe_views: stripes must be at least 1") (fun () ->
      Net.attach_stripe_views net ~stripes:0);
  Alcotest.check_raises "no views"
    (Invalid_argument "Net.stripe_up_count: no stripe views attached") (fun () ->
      ignore (Net.stripe_up_count net 0));
  Net.attach_stripe_views net ~stripes:2;
  Alcotest.check_raises "stripe out of range"
    (Invalid_argument "Net.stripe_up_count: stripe out of range") (fun () ->
      ignore (Net.stripe_up_count net 2))

(* --- Shard_sim ----------------------------------------------------- *)

let test_shard_sim_runs () =
  let r =
    Plookup_experiments.Shard_sim.run ~n:50 ~entries:200 ~rate:20. ~horizon:50.
      ~seed:11 ()
  in
  Alcotest.(check bool) "lookups happened" true (r.lookups > 0);
  Alcotest.(check bool) "events fired" true (r.events > r.lookups);
  Alcotest.(check bool) "most lookups resolve" true (r.found + r.failed > 0);
  Alcotest.(check bool) "resolved <= issued (rest in flight)" true
    (r.found + r.failed <= r.lookups);
  let cross =
    Array.fold_left
      (fun acc (s : Plookup_experiments.Shard_sim.stripe_tally) ->
        acc + s.cross_probes)
      0 r.per_stripe
  in
  Alcotest.(check bool) "cross-stripe traffic exists" true (cross > 0)

let () =
  Helpers.run "shard"
    [ ( "gang",
        [ Alcotest.test_case "runs every worker" `Quick test_gang_runs_every_worker;
          Alcotest.test_case "oversubscribed" `Quick test_gang_oversubscribed;
          Alcotest.test_case "exception of lowest worker" `Quick
            test_gang_exception_lowest_index;
          Alcotest.test_case "validation and shutdown" `Quick test_gang_validation ] );
      ( "driver",
        [ Alcotest.test_case "validation" `Quick test_shard_validation;
          Alcotest.test_case "local events fire" `Quick test_shard_local_events_fire;
          Alcotest.test_case "cross-shard send" `Quick test_shard_cross_send_arrives;
          Alcotest.test_case "lookahead violation" `Quick test_shard_lookahead_violation;
          Alcotest.test_case "send without receiver" `Quick test_shard_no_receiver;
          Alcotest.test_case "gang determinism" `Quick test_shard_gang_determinism ] );
      ( "stripe views",
        [ Alcotest.test_case "partition and counts" `Quick test_stripe_views;
          Alcotest.test_case "more stripes than servers" `Quick
            test_stripe_views_oversubscribed;
          Alcotest.test_case "validation" `Quick test_stripe_views_validation ] );
      ( "shard_sim",
        [ Alcotest.test_case "striped run produces traffic" `Quick test_shard_sim_runs ]
      ) ]
