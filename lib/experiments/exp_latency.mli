(** Extension: lookup latency and Round-Robin's predictability advantage,
    measured on a simulated network.

    Section 3.5 notes that "a Round-y client can tell, in advance, how
    many servers it needs to contact for a lookup, a Hash-y client
    cannot".  Knowing the count up front lets a Round-y client issue the
    whole probe wave concurrently — one round trip — while the other
    strategies probe sequentially because each next contact depends on
    what the previous ones returned.

    Lookups run through {!Plookup.Async_client} on the simulation
    engine: every contact pays a random per-hop latency each way, dead
    servers never answer, and abandoned contacts cost a timeout — so the
    failure rows also demonstrate the Section-6.2 "retry after a time"
    masking, and the parallel wave's redundant in-flight contacts mask a
    dead server with no timeout stall at all. *)

val id : string
val title : string

val run :
  ?n:int ->
  ?h:int ->
  ?budget:int ->
  ?t:int ->
  ?rtt_lo:float ->
  ?rtt_hi:float ->
  Ctx.t ->
  Plookup_util.Table.t
(** Defaults: n=10, h=100, budget 200, t=35, round-trip times uniform in
    [5, 50] ms, contact timeout 2*rtt_hi. *)
