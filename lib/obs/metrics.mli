(** The metrics registry: named counters, gauges and log-scale
    histograms, labelable (message plane, strategy name, server id) and
    cheap enough to increment on the network's per-message hot path.

    {2 Model}

    An {e instrument} is a mutable cell created once (at component
    construction time) and incremented directly — an increment is one
    field mutation, no lookup.  A registry is a bag of instruments:
    every [counter]/[gauge]/[histogram] call mints a {e fresh} cell and
    registers it, so two components asking for the same name never alias
    each other's hot-path state (each {!Plookup_net.Net} keeps exact
    per-instance accessors).  Aggregation happens at {!snapshot} time:
    instruments sharing a (name, labels) key are combined additively —
    counters and histogram buckets sum; gauges sum too, so use gauges
    for additive quantities (accumulated time, bytes).

    {2 Determinism}

    A snapshot is sorted by (name, labels), and {!absorb} merges a
    snapshot into a registry additively, so folding per-replicate
    registries in input order yields the same totals at any worker
    count — the jobs-determinism contract of
    {!Plookup_experiments.Runner}. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {1 Instruments}

    [labels] default to [[]] and are canonicalized (sorted by key).
    Creation is O(|labels| log |labels|); increments are O(1). *)

val counter : t -> ?labels:(string * string) list -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val reset_counter : counter -> unit

val gauge : t -> ?labels:(string * string) list -> string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> ?labels:(string * string) list -> string -> histogram
(** Log-scale (powers of two): an observation [v] lands in bucket
    [ceil(log2 v)] clamped to [0, 63] — bucket [b] covers
    [(2^(b-1), 2^b]], bucket 0 everything at or below 1.  Suited to
    latencies and sizes spanning orders of magnitude. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_quantile : histogram -> float -> float
(** [histogram_quantile h q] estimates the [q]-th percentile
    ([0 <= q <= 100]) of the observations from the log-scale buckets:
    the rank position [q/100 * (count-1)] (the {!Plookup_util.Stats.percentile}
    convention) is located in its bucket and interpolated linearly
    between the bucket's bounds.

    {b Error bound}: the estimate lies in the same power-of-two bucket
    as the true sample quantile, so for values above 1 it is within a
    factor of 2 (one bucket width) of the exact answer — tight enough
    for tail reporting (p50/p99/p999) without materializing per-event
    float arrays.  Returns 0 on an empty histogram. *)

val reset_histogram : histogram -> unit

val reset : t -> unit
(** Zero every instrument (counts, gauges and buckets); registration
    survives. *)

(** {1 Snapshots} *)

type kind =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : (int * int) list; count : int; sum : float }
      (** [buckets]: (bucket index, occupancy), ascending, zero buckets
          omitted. *)

type entry = { name : string; labels : (string * string) list; v : kind }

val snapshot : t -> entry list
(** Aggregated (additively, per (name, labels) key) and sorted by
    (name, labels) — deterministic for a deterministic program. *)

val absorb : t -> ?extra_labels:(string * string) list -> entry list -> unit
(** Merge a snapshot into this registry additively; [extra_labels] are
    appended to every entry's labels first (e.g. tagging a replicate's
    metrics with its strategy).  Used to fold per-replicate registries
    into the experiment context's. *)

val sum_counters : entry list -> ?where:(string * string) list -> string -> int
(** Total of every counter entry called [name] whose labels include all
    of [where] (default: no constraint). *)

val entry_to_json : Buffer.t -> entry -> unit
val to_json : entry list -> string
(** A JSON object [{"metrics": [ ... ]}], entries in snapshot order. *)
