open Plookup_util
open Plookup_store
module Service = Plookup.Service
module Update_gen = Plookup_workload.Update_gen
module Replay = Plookup_workload.Replay

let id = "fig12"
let title = "Fig 12: Fixed-x lookup failure time vs cushion size (t=15, h=100)"

let default_cushions = [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* All Fixed-x servers are identical, so "a lookup for t entries would
   fail" is simply "server 0 holds fewer than t entries". *)
let failed_predicate ~t service =
  Server_store.cardinal (Plookup.Cluster.store (Service.cluster service) 0) < t

let failure_share ctx ~n ~h ~t ~b ~updates ~tail_heavy ~runs =
  (* Replicate [i] derives its seed from the (cushion, distribution,
     run) triple exactly as the sequential loop always did. *)
  Runner.mean_of
    (Runner.map_obs ctx ~count:runs (fun i ~obs ->
         let run = i + 1 in
         let seed =
           Ctx.run_seed ctx ((b * 10_000) + (if tail_heavy then 5000 else 0) + run)
         in
         let stream =
           Update_gen.generate (Rng.create seed)
             { Update_gen.steady_entries = h; add_period = 10.; tail_heavy; updates }
         in
         let service = Service.create ~seed ~obs ~n (Service.fixed (t + b)) in
         Replay.run_timed ~service ~stream ~failed:(failed_predicate ~t)))

let run ?(n = 10) ?(h = 100) ?(t = 15) ?(cushions = default_cushions) ?(updates = 20000) ctx
    =
  let table =
    Table.create ~title ~columns:[ "cushion b"; "exp fail %"; "zipf fail %" ]
  in
  let runs = Ctx.scaled ctx 20 in
  List.iter
    (fun b ->
      let exp_share = failure_share ctx ~n ~h ~t ~b ~updates ~tail_heavy:false ~runs in
      let zipf_share = failure_share ctx ~n ~h ~t ~b ~updates ~tail_heavy:true ~runs in
      Table.add_row table
        [ Table.I b; Table.F4 (100. *. exp_share); Table.F4 (100. *. zipf_share) ])
    cushions;
  table
