open Plookup
open Plookup_store
module Engine = Plookup_sim.Engine
module Net = Plookup_net.Net

(* Hand-built cluster with per-server entry lists and a plain lookup
   handler, mirroring test_probe. *)
let manual_cluster ~n placement =
  let cluster = Cluster.create ~seed:19 ~n () in
  List.iteri
    (fun server ids ->
      List.iter
        (fun i -> ignore (Server_store.add (Cluster.store cluster server) (Entry.v i)))
        ids)
    placement;
  Net.set_handler (Cluster.net cluster) (fun dst _src msg ->
      match (msg : Msg.t) with
      | Msg.Data (Msg.Lookup t) ->
        Msg.Entries
          (Server_store.random_pick (Cluster.store cluster dst) (Cluster.rng cluster) t)
      | _ -> Msg.Ack);
  cluster

let run_lookup ?wave ?retries ?backoff ?deadline ?hedge ?breaker ?jitter ?(timeout = 100.)
    ?(latency = fun () -> 10.) ?(engine = Engine.create ()) ~order ~t cluster =
  let outcome = ref None in
  Async_client.lookup cluster engine ~latency ~timeout ?retries ?backoff ?deadline ?hedge
    ?breaker ?jitter ~order ?wave ~t
    (fun o -> outcome := Some o);
  ignore (Engine.run engine);
  match !outcome with Some o -> o | None -> Alcotest.fail "lookup never completed"

let test_sequential_latency_is_sum () =
  (* Two disjoint servers needed for t=4; sequential: 2 round trips of
     2 x 10ms each. *)
  let cluster = manual_cluster ~n:3 [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ] in
  let o = run_lookup ~order:[ 0; 1; 2 ] ~t:4 cluster in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied o.Async_client.result);
  Helpers.check_int "two contacts" 2 o.Async_client.result.Lookup_result.servers_contacted;
  Helpers.close "40ms = 2 sequential round trips" 40. (Async_client.elapsed o)

let test_parallel_wave_latency_is_max () =
  let cluster = manual_cluster ~n:3 [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ] in
  let o = run_lookup ~wave:2 ~order:[ 0; 1; 2 ] ~t:4 cluster in
  (* Contacts are counted at send time: server 0's reply lands first and
     refills the wave with a (real, server-received) request to server 2
     before server 1's reply completes the target — three sends. *)
  Helpers.check_int "three contacts" 3 o.Async_client.result.Lookup_result.servers_contacted;
  Helpers.check_int "three attempts" 3 o.Async_client.attempts;
  Helpers.close "20ms = 1 concurrent round trip" 20. (Async_client.elapsed o)

let test_timeout_masks_failure () =
  (* Server 0 is down: its contact times out after 50ms, then server 1
     answers in 20ms. *)
  let cluster = manual_cluster ~n:2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  Cluster.fail cluster 0;
  let o = run_lookup ~timeout:50. ~order:[ 0; 1 ] ~t:2 cluster in
  Alcotest.(check bool) "satisfied despite failure" true
    (Lookup_result.satisfied o.Async_client.result);
  Helpers.check_int "one timeout" 1 o.Async_client.timeouts;
  Helpers.close "70ms = timeout + retry round trip" 70. (Async_client.elapsed o)

let test_exhausted_order_reports_short () =
  let cluster = manual_cluster ~n:2 [ [ 0 ]; [ 0 ] ] in
  let o = run_lookup ~order:[ 0; 1 ] ~t:5 cluster in
  Alcotest.(check bool) "unsatisfied" false (Lookup_result.satisfied o.Async_client.result);
  Helpers.check_int "found the one distinct entry" 1
    (Lookup_result.count o.Async_client.result)

let test_stops_as_soon_as_satisfied () =
  let cluster = manual_cluster ~n:3 [ [ 0; 1; 2 ]; [ 3 ]; [ 4 ] ] in
  let o = run_lookup ~order:[ 0; 1; 2 ] ~t:3 cluster in
  Helpers.check_int "first server sufficed" 1
    o.Async_client.result.Lookup_result.servers_contacted;
  Helpers.close "one round trip" 20. (Async_client.elapsed o)

let test_truncates_to_target () =
  let cluster = manual_cluster ~n:2 [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ] ] in
  let o = run_lookup ~wave:2 ~order:[ 0; 1 ] ~t:5 cluster in
  Helpers.check_int "exactly t" 5 (Lookup_result.count o.Async_client.result)

let test_callback_fires_once () =
  let cluster = manual_cluster ~n:3 [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  let engine = Engine.create () in
  let calls = ref 0 in
  Async_client.lookup cluster engine
    ~latency:(fun () -> 5.)
    ~timeout:100. ~order:[ 0; 1; 2 ] ~wave:3 ~t:2
    (fun _ -> incr calls);
  ignore (Engine.run engine);
  Helpers.check_int "exactly one completion" 1 !calls

let test_late_reply_dropped () =
  (* Latency above the timeout: the reply arrives after the client gave
     up on that contact; it must not double-complete or corrupt state. *)
  let cluster = manual_cluster ~n:2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  (* Draw order is chronological: request to server 0 at t=0 (40ms,
     outliving the 30ms timeout), request to server 1 at t=30 (5ms), its
     reply at t=35 (5ms, arriving t=40), then server 0's late reply. *)
  let latencies = ref [ 40.; 5.; 5.; 5. ] in
  let latency () =
    match !latencies with
    | l :: rest ->
      latencies := rest;
      l
    | [] -> 5.
  in
  let o = run_lookup ~timeout:30. ~latency ~order:[ 0; 1 ] ~t:2 cluster in
  Alcotest.(check bool) "eventually satisfied" true
    (Lookup_result.satisfied o.Async_client.result);
  Helpers.check_int "first contact timed out" 1 o.Async_client.timeouts

let test_timed_out_contact_counts_toward_cost () =
  (* Regression: a contact that never answered was invisible in
     servers_contacted, under-reporting lookup cost exactly when
     failures made lookups expensive. *)
  let cluster = manual_cluster ~n:2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  Cluster.fail cluster 0;
  let o = run_lookup ~timeout:50. ~order:[ 0; 1 ] ~t:2 cluster in
  Helpers.check_int "both sends counted" 2
    o.Async_client.result.Lookup_result.servers_contacted;
  Helpers.check_int "two attempts" 2 o.Async_client.attempts;
  Helpers.check_int "no retries configured" 0 o.Async_client.retries

let test_retry_masks_transient_failure () =
  (* Server 0 is down for the first attempt and back for the retry: one
     retry to the *same* server recovers the lookup without moving on. *)
  let cluster = manual_cluster ~n:2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  Cluster.fail cluster 0;
  let engine = Engine.create () in
  ignore (Engine.schedule_at engine ~time:55. (fun _ -> Cluster.recover cluster 0));
  (* Attempt 1 at t=0 dies at the down server; timeout at 50; retry at
     t=50 is delivered at t=60 (after the recovery), reply at t=70. *)
  let o = run_lookup ~engine ~timeout:50. ~retries:1 ~order:[ 0 ] ~t:2 cluster in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied o.Async_client.result);
  Helpers.check_int "one server contacted" 1
    o.Async_client.result.Lookup_result.servers_contacted;
  Helpers.check_int "two attempts" 2 o.Async_client.attempts;
  Helpers.check_int "one retry" 1 o.Async_client.retries;
  Helpers.check_int "one timeout" 1 o.Async_client.timeouts;
  Helpers.close "70ms = timeout + retry round trip" 70. (Async_client.elapsed o)

let test_backoff_stretches_timeouts () =
  (* Dead server, retries 2, backoff 3: waits of 10, 30, 90 then give
     up — the order is exhausted at t = 130. *)
  let cluster = manual_cluster ~n:1 [ [ 0 ] ] in
  Cluster.fail cluster 0;
  let o = run_lookup ~timeout:10. ~retries:2 ~backoff:3. ~order:[ 0 ] ~t:1 cluster in
  Alcotest.(check bool) "unsatisfied" false (Lookup_result.satisfied o.Async_client.result);
  Helpers.check_int "three attempts" 3 o.Async_client.attempts;
  Helpers.check_int "two retries" 2 o.Async_client.retries;
  Helpers.check_int "three timeouts" 3 o.Async_client.timeouts;
  Helpers.close "10 + 30 + 90" 130. (Async_client.elapsed o)

let test_duplicate_replies_suppressed () =
  (* Duplication 1.0 doubles the request (handler runs twice) and each
     reply transmission, so the callback fires 4 times per contact.  The
     target needs both servers, so server 0's three extra replies arrive
     while the lookup is still running: merged once, counted thrice. *)
  let cluster = manual_cluster ~n:2 [ [ 0 ]; [ 1 ] ] in
  Net.set_faults (Cluster.net cluster) ~seed:1 ~duplication:1.0 ();
  let o = run_lookup ~order:[ 0; 1 ] ~t:2 cluster in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied o.Async_client.result);
  Helpers.check_int "two contacts" 2 o.Async_client.result.Lookup_result.servers_contacted;
  Helpers.check_int "two attempts" 2 o.Async_client.attempts;
  Helpers.check_int "three duplicates suppressed" 3 o.Async_client.duplicates

let test_lookup_over_lossy_jittered_network () =
  (* Acceptance: with a fixed seed, 10% loss and jitter, retrying
     lookups still deliver t distinct entries for Fixed-x and
     RoundRobin-y placements. *)
  let check_config name config order =
    let service = Plookup.Service.create ~seed:5 ~n:10 config in
    Plookup.Service.place service (Helpers.entries 100);
    let cluster = Plookup.Service.cluster service in
    Cluster.set_faults cluster ~seed:99 ~loss:0.1 ~jitter:5. ();
    let engine = Engine.create () in
    let t = 35 in
    let o = run_lookup ~engine ~timeout:60. ~retries:3 ~order ~t cluster in
    Alcotest.(check bool) (name ^ " satisfied") true
      (Lookup_result.satisfied o.Async_client.result);
    let ids = Helpers.sorted_ids o.Async_client.result.Lookup_result.entries in
    Helpers.check_int (name ^ " t entries") t (List.length ids);
    Helpers.check_int (name ^ " distinct") t
      (List.length (List.sort_uniq compare ids))
  in
  check_config "Fixed-40" (Plookup.Service.fixed 40) [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
  (* RoundRobin-2's strided order from server 3. *)
  check_config "RoundRobin-2" (Plookup.Service.round_robin 2)
    [ 3; 5; 7; 9; 1; 0; 2; 4; 6; 8 ]

let test_lossy_lookup_deterministic () =
  (* Same seeds end to end => byte-identical outcome, faults included. *)
  let one () =
    let service = Plookup.Service.create ~seed:5 ~n:10 (Plookup.Service.round_robin 2) in
    Plookup.Service.place service (Helpers.entries 100);
    let cluster = Plookup.Service.cluster service in
    Cluster.set_faults cluster ~seed:7 ~loss:0.2 ~duplication:0.1 ~jitter:8. ();
    let o =
      run_lookup ~timeout:40. ~retries:2 ~order:[ 0; 2; 4; 6; 8; 1; 3; 5; 7; 9 ] ~t:30
        cluster
    in
    ( Async_client.elapsed o,
      o.Async_client.attempts,
      o.Async_client.retries,
      o.Async_client.timeouts,
      o.Async_client.duplicates,
      Helpers.sorted_ids o.Async_client.result.Lookup_result.entries )
  in
  Alcotest.(check bool) "identical replay" true (one () = one ())

let test_random_order_visits_everyone_if_needed () =
  let cluster = manual_cluster ~n:4 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] in
  let engine = Engine.create () in
  let outcome = ref None in
  Async_client.lookup_random_order cluster engine
    ~latency:(fun () -> 1.)
    ~timeout:50. ~t:4
    (fun o -> outcome := Some o);
  ignore (Engine.run engine);
  match !outcome with
  | Some o ->
    Helpers.check_int "all four" 4 o.Async_client.result.Lookup_result.servers_contacted
  | None -> Alcotest.fail "never completed"

(* {2 Tail tolerance: deadline, hedging, breaker, jitter, Busy} *)

let test_deadline_gives_up_with_partial_result () =
  (* Dead server, generous retries: without a deadline the lookup would
     grind through 50 + 100 + 200 of backoff; the 60ms budget cuts it. *)
  let cluster = manual_cluster ~n:2 [ [ 0; 1 ]; [ 2 ] ] in
  Cluster.fail cluster 0;
  let engine = Engine.create () in
  let outcome = ref None in
  Async_client.lookup cluster engine
    ~latency:(fun () -> 10.)
    ~timeout:50. ~retries:2 ~deadline:60. ~order:[ 0 ] ~t:2
    (fun o -> outcome := Some o);
  ignore (Engine.run engine);
  match !outcome with
  | None -> Alcotest.fail "never completed"
  | Some o ->
    Alcotest.(check bool) "gave up" true o.Async_client.gave_up;
    Alcotest.(check bool) "unsatisfied" false
      (Lookup_result.satisfied o.Async_client.result);
    Helpers.close "finished exactly at the budget" 60. (Async_client.elapsed o)

let test_hedge_first_reply_wins () =
  (* Server 0 answers in 200ms round trip; the 15ms hedge launches a
     backup to server 1 (10ms round trip) which wins.  The straggler's
     eventual reply is ignored like any late datagram. *)
  let cluster = manual_cluster ~n:2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  let latencies = ref [ 100. ] in
  let latency () =
    match !latencies with
    | l :: rest ->
      latencies := rest;
      l
    | [] -> 5.
  in
  let o = run_lookup ~latency ~timeout:500. ~hedge:15. ~order:[ 0; 1 ] ~t:2 cluster in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied o.Async_client.result);
  Helpers.check_int "one hedge launched" 1 o.Async_client.hedges;
  Helpers.check_int "both servers contacted" 2
    o.Async_client.result.Lookup_result.servers_contacted;
  Helpers.close "hedge delay + backup round trip" 25. (Async_client.elapsed o);
  Helpers.check_int "no timeouts" 0 o.Async_client.timeouts

let test_hedge_is_neutral_when_replies_are_fast () =
  (* All replies beat the hedge delay: same outcome fields as the
     hedge-free run — the feature is draw-sequence-neutral when idle. *)
  let run hedge =
    let cluster = manual_cluster ~n:3 [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ] in
    let o = run_lookup ?hedge ~order:[ 0; 1; 2 ] ~t:4 cluster in
    ( Async_client.elapsed o,
      o.Async_client.attempts,
      o.Async_client.hedges,
      Helpers.sorted_ids o.Async_client.result.Lookup_result.entries )
  in
  Alcotest.(check bool) "identical outcomes" true (run None = run (Some 90.))

let test_breaker_opens_after_threshold_and_skips () =
  let cluster = manual_cluster ~n:2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  Cluster.fail cluster 0;
  let engine = Engine.create () in
  let breaker = Async_client.Breaker.create ~threshold:2 ~cooldown:1000. ~n:2 () in
  let one () =
    let outcome = ref None in
    Async_client.lookup cluster engine
      ~latency:(fun () -> 5.)
      ~timeout:20. ~retries:1 ~breaker ~order:[ 0; 1 ] ~t:2
      (fun o -> outcome := Some o);
    ignore (Engine.run engine);
    Option.get !outcome
  in
  (* First lookup: two timeouts against the dead server 0 trip its
     breaker; the lookup still completes via server 1. *)
  let o1 = one () in
  Alcotest.(check bool) "first satisfied" true
    (Lookup_result.satisfied o1.Async_client.result);
  Helpers.check_int "two timeouts tripped the breaker" 2 o1.Async_client.timeouts;
  Helpers.check_int "no skips yet" 0 o1.Async_client.breaker_skips;
  Alcotest.(check bool) "circuit open" true
    (Async_client.Breaker.is_open breaker 0 ~now:(Engine.now engine));
  (* Second lookup skips server 0 outright: no timeouts at all. *)
  let o2 = one () in
  Helpers.check_int "server 0 skipped" 1 o2.Async_client.breaker_skips;
  Helpers.check_int "no timeouts" 0 o2.Async_client.timeouts;
  Helpers.check_int "one contact" 1
    o2.Async_client.result.Lookup_result.servers_contacted

let test_breaker_half_open_probe () =
  let b = Async_client.Breaker.create ~threshold:3 ~cooldown:50. ~n:1 () in
  for _ = 1 to 3 do
    Async_client.Breaker.record b 0 ~now:0. ~ok:false
  done;
  Alcotest.(check bool) "open after threshold" true
    (Async_client.Breaker.is_open b 0 ~now:10.);
  Alcotest.(check bool) "half-open after cooldown" true
    (Async_client.Breaker.allow b 0 ~now:60.);
  (* One failed probe re-opens for a full cooldown (the count stays
     saturated); one success closes the circuit entirely. *)
  Async_client.Breaker.record b 0 ~now:60. ~ok:false;
  Alcotest.(check bool) "re-opened by one bad probe" true
    (Async_client.Breaker.is_open b 0 ~now:100.);
  Async_client.Breaker.record b 0 ~now:111. ~ok:true;
  Alcotest.(check bool) "closed by a good probe" true
    (Async_client.Breaker.allow b 0 ~now:111.)

let test_busy_nack_abandons_contact () =
  (* Server 0 sheds with Busy: no retry against it — straight to server
     1, with generous retries configured. *)
  let cluster = manual_cluster ~n:2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  Net.set_handler (Cluster.net cluster) (fun dst _src msg ->
      if dst = 0 then Msg.Busy
      else
        match (msg : Msg.t) with
        | Msg.Data (Msg.Lookup t) ->
          Msg.Entries
            (Server_store.random_pick (Cluster.store cluster dst) (Cluster.rng cluster) t)
        | _ -> Msg.Ack);
  let o = run_lookup ~retries:3 ~order:[ 0; 1 ] ~t:2 cluster in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied o.Async_client.result);
  Helpers.check_int "one busy" 1 o.Async_client.busies;
  Helpers.check_int "no retries against the shedding server" 0 o.Async_client.retries;
  Helpers.check_int "no timeouts" 0 o.Async_client.timeouts;
  Helpers.close "two back-to-back round trips" 40. (Async_client.elapsed o)

let test_jitter_bounds_and_pins_both_modes () =
  (* Dead server, retries 2, base timeout 10.  Without jitter the
     backoff is exactly 10 + 20 + 40.  With jitter each retry timeout
     is a decorrelated draw in [base, 3 * previous]; the total is
     bounded, reproducible for a fixed seed, and differs from the
     deterministic schedule. *)
  let run jitter =
    let cluster = manual_cluster ~n:1 [ [ 0 ] ] in
    Cluster.fail cluster 0;
    let o = run_lookup ?jitter ~timeout:10. ~retries:2 ~order:[ 0 ] ~t:1 cluster in
    Async_client.elapsed o
  in
  Helpers.close "deterministic backoff off" 70. (run None);
  let jittered = run (Some (Plookup_util.Rng.create 11)) in
  Alcotest.(check bool) "within decorrelated bounds" true
    (jittered >= 10. +. 10. +. 10. && jittered <= 10. +. 30. +. 90.);
  Helpers.close "same seed, same schedule" jittered
    (run (Some (Plookup_util.Rng.create 11)))

let test_validation () =
  let cluster = manual_cluster ~n:1 [ [ 0 ] ] in
  let engine = Engine.create () in
  Alcotest.check_raises "t = 0" (Invalid_argument "Async_client.lookup: t must be positive")
    (fun () ->
      Async_client.lookup cluster engine
        ~latency:(fun () -> 1.)
        ~timeout:1. ~order:[ 0 ] ~t:0 ignore)

let prop_async_agrees_with_sync_on_answers =
  Helpers.qcheck ~count:60 "async lookups return live distinct entries, at most t"
    QCheck2.Gen.(triple (int_range 1 10) (int_range 1 3) int)
    (fun (t, wave, _seed) ->
      let cluster = manual_cluster ~n:3 [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 6; 7 ] ] in
      let o = run_lookup ~wave ~order:[ 0; 1; 2 ] ~t cluster in
      let ids = Helpers.sorted_ids o.Async_client.result.Lookup_result.entries in
      List.length ids <= t
      && List.length (List.sort_uniq compare ids) = List.length ids
      && List.for_all (fun id -> id >= 0 && id <= 7) ids)

let () =
  Helpers.run "async_client"
    [ ( "async_client",
        [ Alcotest.test_case "sequential sum" `Quick test_sequential_latency_is_sum;
          Alcotest.test_case "parallel max" `Quick test_parallel_wave_latency_is_max;
          Alcotest.test_case "timeout masking" `Quick test_timeout_masks_failure;
          Alcotest.test_case "exhausted order" `Quick test_exhausted_order_reports_short;
          Alcotest.test_case "stops when satisfied" `Quick test_stops_as_soon_as_satisfied;
          Alcotest.test_case "truncates" `Quick test_truncates_to_target;
          Alcotest.test_case "fires once" `Quick test_callback_fires_once;
          Alcotest.test_case "late reply dropped" `Quick test_late_reply_dropped;
          Alcotest.test_case "timed-out contact counted" `Quick
            test_timed_out_contact_counts_toward_cost;
          Alcotest.test_case "retry masks transient failure" `Quick
            test_retry_masks_transient_failure;
          Alcotest.test_case "backoff stretches timeouts" `Quick
            test_backoff_stretches_timeouts;
          Alcotest.test_case "duplicate replies suppressed" `Quick
            test_duplicate_replies_suppressed;
          Alcotest.test_case "lossy jittered lookup" `Quick
            test_lookup_over_lossy_jittered_network;
          Alcotest.test_case "lossy lookup deterministic" `Quick
            test_lossy_lookup_deterministic;
          Alcotest.test_case "random order" `Quick test_random_order_visits_everyone_if_needed;
          Alcotest.test_case "deadline gives up" `Quick
            test_deadline_gives_up_with_partial_result;
          Alcotest.test_case "hedge first reply wins" `Quick test_hedge_first_reply_wins;
          Alcotest.test_case "hedge neutral when fast" `Quick
            test_hedge_is_neutral_when_replies_are_fast;
          Alcotest.test_case "breaker opens and skips" `Quick
            test_breaker_opens_after_threshold_and_skips;
          Alcotest.test_case "breaker half-open probe" `Quick test_breaker_half_open_probe;
          Alcotest.test_case "busy nack abandons contact" `Quick
            test_busy_nack_abandons_contact;
          Alcotest.test_case "jitter bounds and pins" `Quick
            test_jitter_bounds_and_pins_both_modes;
          Alcotest.test_case "validation" `Quick test_validation;
          prop_async_agrees_with_sync_on_answers ] ) ]
