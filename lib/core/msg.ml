open Plookup_store
open Plookup_util

type hint_kind = H_store | H_remove | H_add_sampled | H_remove_counted

type data =
  | Place of Entry.t list
  | Add of Entry.t
  | Delete of Entry.t
  | Lookup of int

type strategy =
  | Store of Entry.t
  | Store_batch of Entry.t list
  | Remove of Entry.t
  | Add_sampled of Entry.t
  | Remove_counted of Entry.t
  | Fetch_candidate of int list
  | Sync_add of Entry.t
  | Sync_delete of Entry.t
  | Sync_state

type repair =
  | Digest_request of Bitset.t
  | Sync_fix of Entry.t list * int list
  | Hint of int * hint_kind * Entry.t
  | Digest_pull
  | Repair_store of Entry.t

type t = Data of data | Strategy of strategy | Repair of repair

type reply =
  | Ack
  | Entries of Entry.t list
  | Candidate of Entry.t option
  | Digest of Bitset.t
  | Busy

(* Smart constructors: send sites say [Msg.store e] instead of spelling
   the plane wrapper out. *)
let place entries = Data (Place entries)
let add e = Data (Add e)
let delete e = Data (Delete e)
let lookup t = Data (Lookup t)
let store e = Strategy (Store e)
let store_batch entries = Strategy (Store_batch entries)
let remove e = Strategy (Remove e)
let add_sampled e = Strategy (Add_sampled e)
let remove_counted e = Strategy (Remove_counted e)
let fetch_candidate ids = Strategy (Fetch_candidate ids)
let sync_add e = Strategy (Sync_add e)
let sync_delete e = Strategy (Sync_delete e)
let sync_state = Strategy Sync_state
let digest_request bits = Repair (Digest_request bits)
let sync_fix missing retract = Repair (Sync_fix (missing, retract))
let hint ~target kind e = Repair (Hint (target, kind, e))
let digest_pull = Repair Digest_pull
let repair_store e = Repair (Repair_store e)

let plane_name = function
  | Data _ -> "data"
  | Strategy _ -> "strategy"
  | Repair _ -> "repair"

let plane_names = [| "data"; "strategy"; "repair" |]
let plane_index = function Data _ -> 0 | Strategy _ -> 1 | Repair _ -> 2

let label = function
  | Data (Place _) -> "place"
  | Data (Add _) -> "add"
  | Data (Delete _) -> "delete"
  | Data (Lookup _) -> "lookup"
  | Strategy (Store _) -> "store"
  | Strategy (Store_batch _) -> "store_batch"
  | Strategy (Remove _) -> "remove"
  | Strategy (Add_sampled _) -> "add_sampled"
  | Strategy (Remove_counted _) -> "remove_counted"
  | Strategy (Fetch_candidate _) -> "fetch_candidate"
  | Strategy (Sync_add _) -> "sync_add"
  | Strategy (Sync_delete _) -> "sync_delete"
  | Strategy Sync_state -> "sync_state"
  | Repair (Digest_request _) -> "digest_request"
  | Repair (Sync_fix _) -> "sync_fix"
  | Repair (Hint _) -> "hint"
  | Repair Digest_pull -> "digest_pull"
  | Repair (Repair_store _) -> "repair_store"

(* Intern every (plane, label) pair up front so the per-message coder is
   a single allocation-free match returning a precomputed code. *)
let trace_coder tr =
  let pm plane msg = Plookup_obs.Trace.intern_message tr ~plane ~msg in
  let c_place = pm "data" "place" in
  let c_add = pm "data" "add" in
  let c_delete = pm "data" "delete" in
  let c_lookup = pm "data" "lookup" in
  let c_store = pm "strategy" "store" in
  let c_store_batch = pm "strategy" "store_batch" in
  let c_remove = pm "strategy" "remove" in
  let c_add_sampled = pm "strategy" "add_sampled" in
  let c_remove_counted = pm "strategy" "remove_counted" in
  let c_fetch_candidate = pm "strategy" "fetch_candidate" in
  let c_sync_add = pm "strategy" "sync_add" in
  let c_sync_delete = pm "strategy" "sync_delete" in
  let c_sync_state = pm "strategy" "sync_state" in
  let c_digest_request = pm "repair" "digest_request" in
  let c_sync_fix = pm "repair" "sync_fix" in
  let c_hint = pm "repair" "hint" in
  let c_digest_pull = pm "repair" "digest_pull" in
  let c_repair_store = pm "repair" "repair_store" in
  function
  | Data (Place _) -> c_place
  | Data (Add _) -> c_add
  | Data (Delete _) -> c_delete
  | Data (Lookup _) -> c_lookup
  | Strategy (Store _) -> c_store
  | Strategy (Store_batch _) -> c_store_batch
  | Strategy (Remove _) -> c_remove
  | Strategy (Add_sampled _) -> c_add_sampled
  | Strategy (Remove_counted _) -> c_remove_counted
  | Strategy (Fetch_candidate _) -> c_fetch_candidate
  | Strategy (Sync_add _) -> c_sync_add
  | Strategy (Sync_delete _) -> c_sync_delete
  | Strategy Sync_state -> c_sync_state
  | Repair (Digest_request _) -> c_digest_request
  | Repair (Sync_fix _) -> c_sync_fix
  | Repair (Hint _) -> c_hint
  | Repair Digest_pull -> c_digest_pull
  | Repair (Repair_store _) -> c_repair_store

let hint_kind_name = function
  | H_store -> "store"
  | H_remove -> "remove"
  | H_add_sampled -> "add_sampled"
  | H_remove_counted -> "remove_counted"

let pp_entries ppf entries =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") Entry.pp)
    entries

let pp_ids ppf ids =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    ids

let pp_data ppf = function
  | Place entries -> Format.fprintf ppf "place %a" pp_entries entries
  | Add e -> Format.fprintf ppf "add %a" Entry.pp e
  | Delete e -> Format.fprintf ppf "delete %a" Entry.pp e
  | Lookup t -> Format.fprintf ppf "lookup t=%d" t

let pp_strategy ppf = function
  | Store e -> Format.fprintf ppf "store %a" Entry.pp e
  | Store_batch entries -> Format.fprintf ppf "store_batch %a" pp_entries entries
  | Remove e -> Format.fprintf ppf "remove %a" Entry.pp e
  | Add_sampled e -> Format.fprintf ppf "add_sampled %a" Entry.pp e
  | Remove_counted e -> Format.fprintf ppf "remove_counted %a" Entry.pp e
  | Fetch_candidate ids -> Format.fprintf ppf "fetch_candidate excluding %a" pp_ids ids
  | Sync_add e -> Format.fprintf ppf "sync_add %a" Entry.pp e
  | Sync_delete e -> Format.fprintf ppf "sync_delete %a" Entry.pp e
  | Sync_state -> Format.pp_print_string ppf "sync_state"

let pp_repair ppf = function
  | Digest_request bits -> Format.fprintf ppf "digest_request %a" pp_ids (Bitset.to_list bits)
  | Sync_fix (missing, retract) ->
    Format.fprintf ppf "sync_fix ship %a retract %a" pp_entries missing pp_ids retract
  | Hint (target, kind, e) ->
    Format.fprintf ppf "hint for %d: %s %a" target (hint_kind_name kind) Entry.pp e
  | Digest_pull -> Format.pp_print_string ppf "digest_pull"
  | Repair_store e -> Format.fprintf ppf "repair_store %a" Entry.pp e

let pp ppf = function
  | Data d -> pp_data ppf d
  | Strategy s -> pp_strategy ppf s
  | Repair r -> pp_repair ppf r

let pp_reply ppf = function
  | Ack -> Format.pp_print_string ppf "ack"
  | Entries entries -> Format.fprintf ppf "entries %a" pp_entries entries
  | Candidate None -> Format.pp_print_string ppf "candidate none"
  | Candidate (Some e) -> Format.fprintf ppf "candidate %a" Entry.pp e
  | Digest bits -> Format.fprintf ppf "digest %a" pp_ids (Bitset.to_list bits)
  | Busy -> Format.pp_print_string ppf "busy"
