open Plookup
open Plookup_store
open Plookup_util
module Engine = Plookup_sim.Engine
module Churn = Plookup_workload.Churn

let id = "churn"
let title = "Extension: lookup availability under server churn (mttf=50, mttr=50, t=40)"

type tally = {
  mutable lookups : int;
  mutable satisfied : int;
  mutable contacts : int;
  mutable up_samples : int;
}

let run_strategy ctx ~n ~h ~t ~mttf ~mttr ~horizon config =
  let seed = Ctx.run_seed ctx (Hashtbl.hash (Service.config_name config)) in
  let service = Service.create ~seed ~n config in
  Service.place service (Entry.Gen.batch (Entry.Gen.create ()) h);
  let cluster = Service.cluster service in
  let engine = Engine.create () in
  let churn_events =
    Churn.generate (Rng.create (seed lxor 0xC0FFEE)) ~n ~mttf ~mttr ~horizon
  in
  Churn.drive engine
    ~apply:(fun ev ->
      if ev.Churn.up then Cluster.recover cluster ev.Churn.server
      else Cluster.fail cluster ev.Churn.server)
    churn_events;
  let tally = { lookups = 0; satisfied = 0; contacts = 0; up_samples = 0 } in
  (* One client lookup per time unit, as engine events interleaved with
     the churn timeline. *)
  for i = 1 to int_of_float horizon do
    ignore
      (Engine.schedule_at engine ~time:(float_of_int i) (fun _ ->
           let r = Service.partial_lookup service t in
           tally.lookups <- tally.lookups + 1;
           if Lookup_result.satisfied r then tally.satisfied <- tally.satisfied + 1;
           tally.contacts <- tally.contacts + r.Lookup_result.servers_contacted;
           tally.up_samples <- tally.up_samples + List.length (Cluster.up_servers cluster)))
  done;
  ignore (Engine.run engine);
  tally

let run ?(n = 10) ?(h = 100) ?(budget = 200) ?(t = 40) ?(mttf = 50.) ?(mttr = 50.)
    ?(horizon = 5000.) ctx =
  let horizon = float_of_int (Ctx.scaled ctx (int_of_float horizon)) in
  let table =
    Table.create ~title
      ~columns:
        [ "strategy"; "success %"; "mean cost"; "avg up servers"; "ideal availability %" ]
  in
  let ideal = 100. *. Churn.expected_availability ~mttf ~mttr in
  let configs =
    (* Fixed-x needs x >= t to play at all (plus a little headroom); the
       others get the common storage budget. *)
    [ Service.Full_replication;
      Service.Fixed (t + 5);
      Service.storage_for_budget (Service.Random_server 1) ~n ~h ~total:budget;
      Service.storage_for_budget (Service.Round_robin 1) ~n ~h ~total:budget;
      Service.storage_for_budget (Service.Hash 1) ~n ~h ~total:budget ]
  in
  List.iter
    (fun config ->
      let tally = run_strategy ctx ~n ~h ~t ~mttf ~mttr ~horizon config in
      let per_lookup v = float_of_int v /. float_of_int (max 1 tally.lookups) in
      Table.add_row table
        [ Table.S (Service.config_name config);
          Table.F (100. *. per_lookup tally.satisfied);
          Table.F (per_lookup tally.contacts);
          Table.F (per_lookup tally.up_samples);
          Table.F ideal ])
    configs;
  table
