type cell = S of string | I of int | F of float | F4 of float

type t = { title : string; columns : string list; mutable rev_rows : cell list list }

let create ~title ~columns = { title; columns; rev_rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: row length does not match columns";
  t.rev_rows <- row :: t.rev_rows

let title t = t.title
let columns t = t.columns
let rows t = List.rev t.rev_rows

let cell_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%.2f" f
  | F4 f -> Printf.sprintf "%.4f" f

let to_ascii t =
  let rows = rows t in
  let header = t.columns in
  let string_rows = List.map (List.map cell_to_string) rows in
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i)))
          (String.length col) string_rows)
      header
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row cells =
    String.concat "  " (List.map2 pad cells widths)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) string_rows;
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," (List.map csv_escape t.columns) ^ "\n");
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (List.map (fun c -> csv_escape (cell_to_string c)) row) ^ "\n"))
    (rows t);
  Buffer.contents buf

let print t = print_string (to_ascii t)
