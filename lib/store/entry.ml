type t = { id : int; payload : string option }

let id t = t.id
let payload t = t.payload

let v ?payload id =
  if id < 0 then invalid_arg "Entry.v: negative id";
  { id; payload }

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash t = t.id

let pp ppf t =
  match t.payload with
  | None -> Format.fprintf ppf "v%d" t.id
  | Some p -> Format.fprintf ppf "v%d(%s)" t.id p

let to_string t = Format.asprintf "%a" pp t

module Gen = struct
  type t = { mutable next : int }

  let create () = { next = 0 }

  let fresh ?payload g =
    let e = v ?payload g.next in
    g.next <- g.next + 1;
    e

  let next_id g = g.next
  let batch g h = List.init h (fun _ -> fresh g)
end

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Stdlib.Set.Make (Ord)
module Map = Stdlib.Map.Make (Ord)

let dedup entries =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun e ->
      if Hashtbl.mem seen e.id then false
      else begin
        Hashtbl.add seen e.id ();
        true
      end)
    entries
