type t = {
  ring : Sink.ring;
  ring_sink : Sink.t;
  mutable sinks : Sink.t list; (* attachment order *)
  mutable on : bool;
  mutable next_id : int;
  mutable emitted : int;
  mutable carried_dropped : int; (* drops inherited from absorbed children *)
}

let create ?(capacity = 4096) () =
  let ring = Sink.ring ~capacity in
  { ring;
    ring_sink = Sink.of_ring ring;
    sinks = [];
    on = false;
    next_id = 1;
    emitted = 0;
    carried_dropped = 0 }

let enabled t = t.on
let set_enabled t on = t.on <- on
let capacity t = Sink.ring_capacity t.ring
let add_sink t sink = t.sinks <- t.sinks @ [ sink ]

let emit_span t (span : Span.t) =
  t.emitted <- t.emitted + 1;
  Sink.emit t.ring_sink span;
  List.iter (fun sink -> Sink.emit sink span) t.sinks

let emit t ~time ?cause kind =
  if not t.on then 0
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    emit_span t { Span.id; time; cause; kind };
    id
  end

let record t ~time ~label detail =
  ignore (emit t ~time (Span.Mark { label; detail }))

let spans t = Sink.ring_spans t.ring
let length t = Sink.ring_length t.ring
let emitted t = t.emitted
let dropped t = Sink.ring_dropped t.ring + t.carried_dropped

let clear t =
  Sink.ring_clear t.ring;
  t.next_id <- 1;
  t.emitted <- 0;
  t.carried_dropped <- 0

let absorb t child =
  (* Shift the child's ids past our watermark so cause links stay
     unambiguous after the merge; causes pointing at spans the child's
     ring already evicted keep their (shifted) ids — dangling but
     honest, and accounted for by [dropped]. *)
  let offset = t.next_id - 1 in
  List.iter
    (fun (s : Span.t) ->
      emit_span t
        { s with
          Span.id = s.id + offset;
          cause = Option.map (fun c -> c + offset) s.cause })
    (spans child);
  t.next_id <- t.next_id + (child.next_id - 1);
  t.carried_dropped <- t.carried_dropped + dropped child

let flush t = List.iter Sink.flush t.sinks

let dump t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun span -> Buffer.add_string buf (Format.asprintf "%a@." Span.pp span))
    (spans t);
  Buffer.contents buf
