(** The list helpers the strategies and workloads kept re-implementing
    privately; one definition, one set of tests. *)

val take : int -> 'a list -> 'a list
(** [take k l] is the first [k] elements of [l], or all of [l] when it
    is shorter.  [take k l] is [[]] for [k <= 0].  Total, never raises;
    tail-recursion is not needed at the list sizes the service handles
    (entry batches are bounded by [h]). *)

val drop : int -> 'a list -> 'a list
(** [drop k l] is [l] without its first [k] elements ([l] itself for
    [k <= 0], [[]] when [l] is shorter).  [take k l @ drop k l = l]. *)
