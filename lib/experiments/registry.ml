type t = { id : string; title : string; run : Ctx.t -> Plookup_util.Table.t }

let all =
  [ { id = Exp_table1.id; title = Exp_table1.title; run = (fun ctx -> Exp_table1.run ctx) };
    { id = Exp_fig4.id; title = Exp_fig4.title; run = (fun ctx -> Exp_fig4.run ctx) };
    { id = Exp_fig6.id; title = Exp_fig6.title; run = (fun ctx -> Exp_fig6.run ctx) };
    { id = Exp_fig7.id; title = Exp_fig7.title; run = (fun ctx -> Exp_fig7.run ctx) };
    { id = Exp_fig9.id; title = Exp_fig9.title; run = (fun ctx -> Exp_fig9.run ctx) };
    { id = Exp_fig12.id; title = Exp_fig12.title; run = (fun ctx -> Exp_fig12.run ctx) };
    { id = Exp_fig13.id; title = Exp_fig13.title; run = (fun ctx -> Exp_fig13.run ctx) };
    { id = Exp_fig14.id; title = Exp_fig14.title; run = (fun ctx -> Exp_fig14.run ctx) };
    { id = Exp_table2.id; title = Exp_table2.title; run = (fun ctx -> Exp_table2.run ctx) };
    { id = Exp_hotspot.id; title = Exp_hotspot.title; run = (fun ctx -> Exp_hotspot.run ctx) };
    { id = Exp_churn.id; title = Exp_churn.title; run = (fun ctx -> Exp_churn.run ctx) };
    { id = Exp_latency.id; title = Exp_latency.title; run = (fun ctx -> Exp_latency.run ctx) };
    { id = Exp_loss.id; title = Exp_loss.title; run = (fun ctx -> Exp_loss.run ctx) };
    { id = Exp_day.id; title = Exp_day.title; run = (fun ctx -> Exp_day.run ctx) }
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all
let ids () = List.map (fun e -> e.id) all
