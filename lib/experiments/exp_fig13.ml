open Plookup_util
module Service = Plookup.Service
module Unfairness = Plookup_metrics.Unfairness
module Update_gen = Plookup_workload.Update_gen
module Replay = Plookup_workload.Replay

let id = "fig13"
let title = "Fig 13: RandomServer-x unfairness vs number of updates (x=20)"

let default_checkpoints = List.init 9 (fun i -> i * 500)

(* Replay [stream] through a fresh service of [config], measuring
   unfairness over the live entries at every checkpoint. *)
let unfairness_trace ctx ~obs ~n ~t ~lookups ~config ~stream ~checkpoints ~run =
  let seed = Ctx.run_seed ctx (run * 7919) in
  let service = Service.create ~seed ~obs ~n config in
  let wanted = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace wanted c ()) checkpoints;
  let out = Hashtbl.create 16 in
  let measure index =
    if Hashtbl.mem wanted index then begin
      let live = Update_gen.live_after stream index in
      Hashtbl.replace out index (Unfairness.of_instance service ~live ~t ~lookups)
    end
  in
  Replay.run
    ~on_event:(fun point _ -> measure point.Replay.index)
    service stream;
  (* Checkpoint 0 must be measured on a freshly placed instance; rerun
     the placement-only part by creating a new service. *)
  if Hashtbl.mem wanted 0 then begin
    let fresh = Service.create ~seed ~obs ~n config in
    Service.place fresh stream.Update_gen.initial;
    Hashtbl.replace out 0
      (Unfairness.of_instance fresh ~live:stream.Update_gen.initial ~t ~lookups)
  end;
  out

let run ?(n = 10) ?(h = 100) ?(x = 20) ?(t = 1) ?(checkpoints = default_checkpoints) ctx =
  let table =
    Table.create ~title ~columns:[ "updates"; "RandomServer-x"; "Fixed-x (ref)" ]
  in
  let runs = Ctx.scaled ctx 4 in
  let lookups = Ctx.scaled ctx 5000 in
  let max_cp = List.fold_left max 0 checkpoints in
  let acc_rs = Hashtbl.create 16 in
  let acc_fx = Hashtbl.create 16 in
  let accumulate table_acc trace =
    Hashtbl.iter
      (fun cp v ->
        let acc =
          match Hashtbl.find_opt table_acc cp with
          | Some a -> a
          | None ->
            let a = Stats.Accum.create () in
            Hashtbl.replace table_acc cp a;
            a
        in
        Stats.Accum.add acc v)
      trace
  in
  (* One parallel unit per replicate; traces are folded into the
     accumulators in run order below, so means see the samples in the
     same order as the historical sequential loop. *)
  let traces =
    Runner.map_obs ctx ~count:runs (fun i ~obs ->
        let run = i + 1 in
        let stream =
          Update_gen.generate
            (Rng.create (Ctx.run_seed ctx run))
            { Update_gen.steady_entries = h; add_period = 10.; tail_heavy = false;
              updates = max_cp }
        in
        ( unfairness_trace ctx ~obs ~n ~t ~lookups ~config:(Service.random_server x)
            ~stream ~checkpoints ~run,
          unfairness_trace ctx ~obs ~n ~t ~lookups ~config:(Service.fixed x) ~stream
            ~checkpoints ~run ))
  in
  Array.iter
    (fun (trace_rs, trace_fx) ->
      accumulate acc_rs trace_rs;
      accumulate acc_fx trace_fx)
    traces;
  List.iter
    (fun cp ->
      let mean tbl =
        match Hashtbl.find_opt tbl cp with Some a -> Stats.Accum.mean a | None -> nan
      in
      Table.add_row table [ Table.I cp; Table.F4 (mean acc_rs); Table.F4 (mean acc_fx) ])
    (List.sort compare checkpoints);
  table
