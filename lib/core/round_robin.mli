(** Round-Robin-y (Sections 3.4, 5.4): entry [i] is stored on the [y]
    consecutive servers [(i mod n) .. (i+y-1 mod n)], so every entry is
    on some server, servers are balanced to within [y] entries, and a
    client can harvest entries deterministically by striding [y] servers
    at a time.

    Dynamics follow the paper's centralized scheme: server 1 (index 0
    here) is the coordinator holding the [head] and [tail] counters and
    the round-robin sequence.  An [add] appends at [tail]; a [delete] in
    the middle of the sequence broadcasts to locate the victim and then
    *plugs the hole* by migrating the entry at [head] into the vacated
    position (Figs. 10–11).  This preserves the invariant that live
    positions form the contiguous window [head, tail) — the price is a
    coordinator bottleneck and broadcast-plus-migration per delete, which
    is exactly the weakness Section 6.3 discusses. *)

open Plookup_store

type t

val create : ?coordinators:int -> ?resync_stores:bool -> Cluster.t -> y:int -> t
(** [y] must satisfy 1 <= y; values above [n] are clamped to [n]
    (storing more than one copy per server is meaningless).

    [coordinators] (default 1, must be in [1, n]) replicates the
    head/tail counters and the round-robin sequence on servers
    [0 .. coordinators-1] — the generalization of the paper's footnote 1
    ("the centralized head and tail scheme can be generalized to one
    where several servers store copies to improve reliability").
    Clients address the lowest-indexed operational replica; each update
    is mirrored to the standbys with one point-to-point Sync message
    apiece, and a recovering replica receives a state transfer from the
    acting one.  With every coordinator down, updates are dropped.

    [resync_stores] (default [true]) controls whether recovery also
    pushes a full [Store_batch] refresh of the recovered server's store.
    {!Service} passes [false] when the digest-based {!Repair} layer is
    active: the ledger state transfer still happens, but store contents
    are reconciled incrementally by repair, which ships only the delta. *)

val y : t -> int

val coordinators : t -> int

val acting_coordinator : t -> int option
(** The replica currently fielding updates; [None] when all coordinator
    servers are down. *)

val cluster : t -> Cluster.t
val head : t -> int
val tail : t -> int
val live_count : t -> int
(** [tail - head]: entries currently managed. *)

val position_of : t -> Entry.t -> int option
(** The entry's current slot in the round-robin sequence, if present. *)

val entry_at : t -> int -> Entry.t option

val assigned_servers : t -> Entry.t -> int list option
(** Where the acting ledger says an entry's [y] copies live: [None] when
    the placement was truncated (the ledger does not describe it),
    [Some []] for an entry not in the live window, [Some servers]
    otherwise.  Feeds the repair subsystem's placement plan. *)

val place : ?budget:int -> t -> Entry.t list -> unit
(** Distribute copies round-major (first one copy of every entry, then
    the second copy of every entry, ...).  [budget] caps the total number
    of stored copies — the paper's "when there is inadequate storage
    space, keep a subset" assumption used in the coverage study (Fig. 6).
    A truncated placement does not support subsequent updates. *)

val can_update : t -> bool
(** Whether an update issued now would be accepted: some coordinator
    replica is up and the placement was not truncated.  A client sending
    an update while this is false gets no reply (the coordinator is
    unreachable) and the update is lost — {!Service.can_update} lets
    workloads model the client failing fast instead. *)

val add : t -> Entry.t -> unit
val delete : t -> Entry.t -> unit
val partial_lookup : ?reachable:(int -> bool) -> t -> int -> Lookup_result.t
(** Strided probing: random first server [s], then [s+y], [s+2y], ...
    falling back to random order under failures. *)

val servers_needed : t -> t:int -> int
(** How many servers a lookup for [t] entries will contact — computable
    *in advance* because every server holds [y*live/n] (+-y) entries and
    strided probes are disjoint.  This is the predictability advantage
    Section 3.5 contrasts with Hash-y ("a Round-y client can tell, in
    advance, how many servers it needs to contact for a lookup, a Hash-y
    client cannot").  At least 1, at most the server count. *)

val partial_lookup_parallel : ?reachable:(int -> bool) -> t -> int -> Lookup_result.t
(** Contact the {!servers_needed} strided servers as one concurrent
    wave (then top up sequentially in the rare shortfall).  Same answers
    and message count as {!partial_lookup}; the point is latency — a
    parallel wave costs one round trip instead of [servers_needed] (see
    the [latency] experiment). *)

val resync_server : t -> int -> unit
(** Operator-triggered anti-entropy: the acting coordinator pushes the
    ledger (for coordinator replicas) and a full store refresh to the
    given operational server.  Recovery triggers this automatically when
    a fresh replica exists; call it manually after windows in which no
    coordinator was up to re-sync servers that recovered unsupervised.
    No-op when the target or every coordinator is down. *)

val check_invariants : t -> (unit, string) result
(** Verify the round-robin placement invariant: each live position's
    entry is stored at exactly its [y] consecutive servers and nothing
    else is stored anywhere.  For tests. *)

module Strategy : Strategy_intf.S with type t = t
(** The packed form registered in {!Strategy_registry} as
    ["RoundRobin"]. *)

module Strategy_replicated : Strategy_intf.S with type t = t
(** The footnote-1 coordinator-replication ablation, registered as
    ["RoundRobinHA"] with parameters [[y; k]]. *)
