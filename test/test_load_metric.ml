open Plookup
module Load = Plookup_metrics.Load
module Net = Plookup_net.Net

let test_balanced () =
  let s = Load.summarize [| 10; 10; 10; 10 |] in
  Helpers.check_int "total" 40 s.Load.total;
  Helpers.close "mean" 10. s.Load.mean;
  Helpers.check_int "peak" 10 s.Load.peak;
  Helpers.close "peak/avg" 1. s.Load.peak_to_average;
  Helpers.close "cov" 0. s.Load.cov;
  Helpers.close "top share" 0.25 s.Load.top_share

let test_hot_spot () =
  let s = Load.summarize [| 97; 1; 1; 1 |] in
  Helpers.check_int "peak" 97 s.Load.peak;
  Helpers.close "peak/avg" 3.88 s.Load.peak_to_average;
  Helpers.close "top share" 0.97 s.Load.top_share;
  Alcotest.(check bool) "cov large" true (s.Load.cov > 1.5)

let test_zero_load () =
  let s = Load.summarize [| 0; 0; 0 |] in
  Helpers.close "peak/avg defaults to balanced" 1. s.Load.peak_to_average;
  Helpers.close "cov" 0. s.Load.cov;
  Helpers.close "top share" 0. s.Load.top_share

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Load.summarize: empty load vector")
    (fun () -> ignore (Load.summarize [||]))

let test_of_cluster () =
  let service, _ = Helpers.placed_service ~n:4 ~h:8 Service.full_replication in
  let cluster = Service.cluster service in
  Net.reset_counters (Cluster.net cluster);
  for _ = 1 to 50 do
    ignore (Service.partial_lookup service 2)
  done;
  let s = Load.of_cluster cluster in
  Helpers.check_int "50 lookups = 50 messages" 50 s.Load.total;
  (* Random single-server probing spreads load well. *)
  Alcotest.(check bool) "no extreme hot spot" true (s.Load.peak_to_average < 2.5)

let test_pp () =
  let s = Load.summarize [| 5; 15 |] in
  let str = Format.asprintf "%a" Load.pp s in
  Alcotest.(check bool) "mentions total" true (Helpers.contains str "total 20")

let prop_top_share_bounds =
  Helpers.qcheck "top share within [1/n, 1] for non-zero load"
    QCheck2.Gen.(list_size (int_range 1 20) (int_range 0 1000))
    (fun loads ->
      let arr = Array.of_list loads in
      let s = Load.summarize arr in
      let n = Array.length arr in
      s.Load.total = 0
      || (s.Load.top_share >= (1. /. float_of_int n) -. 1e-9 && s.Load.top_share <= 1.))

let prop_peak_to_average_at_least_one =
  Helpers.qcheck "peak/avg >= 1"
    QCheck2.Gen.(list_size (int_range 1 20) (int_range 0 100))
    (fun loads ->
      let s = Load.summarize (Array.of_list loads) in
      s.Load.peak_to_average >= 1. -. 1e-9)

let () =
  Helpers.run "load_metric"
    [ ( "load",
        [ Alcotest.test_case "balanced" `Quick test_balanced;
          Alcotest.test_case "hot spot" `Quick test_hot_spot;
          Alcotest.test_case "zero load" `Quick test_zero_load;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "of_cluster" `Quick test_of_cluster;
          Alcotest.test_case "pp" `Quick test_pp;
          prop_top_share_bounds;
          prop_peak_to_average_at_least_one ] ) ]
