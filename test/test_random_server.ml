open Plookup
open Plookup_store
module Net = Plookup_net.Net

let make ?(seed = 7) ?replacement_on_delete ~n ~h ~x () =
  let cluster = Cluster.create ~seed ~n () in
  let s = Random_server.create ?replacement_on_delete cluster ~x in
  let batch = Helpers.entries h in
  Random_server.place s batch;
  (cluster, s, batch)

let test_each_server_has_x () =
  let cluster, _, batch = make ~n:5 ~h:30 ~x:6 () in
  for server = 0 to 4 do
    Helpers.check_int "x entries" 6 (Server_store.cardinal (Cluster.store cluster server));
    Server_store.iter
      (fun e ->
        if not (List.exists (Entry.equal e) batch) then
          Alcotest.failf "server %d stores unknown entry %s" server (Entry.to_string e))
      (Cluster.store cluster server)
  done

let test_servers_differ () =
  let cluster, _, _ = make ~n:6 ~h:60 ~x:10 () in
  let subsets =
    List.init 6 (fun s -> Helpers.sorted_ids (Server_store.to_list (Cluster.store cluster s)))
  in
  let distinct = List.sort_uniq compare subsets in
  Alcotest.(check bool) "subsets differ across servers" true (List.length distinct > 1)

let test_place_with_small_h () =
  let cluster, _, _ = make ~n:3 ~h:4 ~x:10 () in
  Helpers.check_int "keeps all h when h < x" 4
    (Server_store.cardinal (Cluster.store cluster 0))

let test_system_count_tracks () =
  let _, s, _ = make ~n:3 ~h:10 ~x:4 () in
  Helpers.check_int "after place" 10 (Random_server.system_count s ~server:0);
  Random_server.add s (Entry.v 100);
  Helpers.check_int "after add" 11 (Random_server.system_count s ~server:2);
  Random_server.delete s (Entry.v 100);
  Helpers.check_int "after delete" 10 (Random_server.system_count s ~server:1)

let test_add_below_x_always_stored () =
  let cluster = Cluster.create ~seed:1 ~n:3 () in
  let s = Random_server.create cluster ~x:5 in
  Random_server.place s (Helpers.entries 2);
  Random_server.add s (Entry.v 50);
  for server = 0 to 2 do
    Alcotest.(check bool) "stored while below x" true
      (Server_store.mem (Cluster.store cluster server) (Entry.v 50))
  done

let test_add_at_capacity_keeps_x () =
  let cluster, s, _ = make ~n:4 ~h:20 ~x:5 () in
  for i = 0 to 30 do
    Random_server.add s (Entry.v (100 + i))
  done;
  for server = 0 to 3 do
    Helpers.check_int "still x" 5 (Server_store.cardinal (Cluster.store cluster server))
  done

let test_reservoir_inclusion_rate () =
  (* After placing h entries and adding one more, a server keeps the
     newcomer with probability x/(h+1).  Measure over many seeds. *)
  let n = 1 and h = 19 and x = 5 in
  let kept = ref 0 in
  let trials = 4000 in
  for seed = 1 to trials do
    let cluster, s, _ = make ~seed ~n ~h ~x () in
    Random_server.add s (Entry.v 999);
    if Server_store.mem (Cluster.store cluster 0) (Entry.v 999) then incr kept
  done;
  Helpers.roughly ~rel:0.1 "inclusion ~ x/(h+1)"
    (float_of_int x /. float_of_int (h + 1))
    (float_of_int !kept /. float_of_int trials)

let test_uniform_membership_after_place () =
  (* Any given entry lands in a server's subset with probability x/h. *)
  let n = 1 and h = 20 and x = 5 in
  let hits = ref 0 in
  let trials = 4000 in
  for seed = 1 to trials do
    let cluster, _, _ = make ~seed ~n ~h ~x () in
    if Server_store.mem (Cluster.store cluster 0) (Entry.v 0) then incr hits
  done;
  Helpers.roughly ~rel:0.1 "membership ~ x/h" 0.25
    (float_of_int !hits /. float_of_int trials)

let test_delete_leaves_hole () =
  (* Cushion scheme: no replacement is fetched. *)
  let cluster, s, batch = make ~n:1 ~h:10 ~x:10 () in
  Random_server.delete s (List.hd batch);
  Helpers.check_int "hole left" 9 (Server_store.cardinal (Cluster.store cluster 0))

let test_update_broadcasts () =
  let cluster, s, _ = make ~n:4 ~h:10 ~x:3 () in
  Net.reset_counters (Cluster.net cluster);
  Random_server.add s (Entry.v 100);
  Helpers.check_int "add: 1 + n" 5 (Net.messages_received (Cluster.net cluster));
  Net.reset_counters (Cluster.net cluster);
  Random_server.delete s (Entry.v 100);
  Helpers.check_int "delete: 1 + n" 5 (Net.messages_received (Cluster.net cluster))

let test_replacement_on_delete_refills () =
  let cluster, s, batch = make ~replacement_on_delete:true ~n:4 ~h:40 ~x:10 () in
  (* Find an entry stored on server 0 and delete it system-wide. *)
  let victim =
    match Server_store.to_list (Cluster.store cluster 0) with
    | e :: _ -> e
    | [] -> Alcotest.fail "server 0 empty"
  in
  Random_server.delete s victim;
  (* Server 0 should have found a replacement from a peer: back to x. *)
  Helpers.check_int "refilled" 10 (Server_store.cardinal (Cluster.store cluster 0));
  Alcotest.(check bool) "victim gone" false (Server_store.mem (Cluster.store cluster 0) victim);
  ignore batch

let test_lookup_merges_servers () =
  let _, s, _ = make ~n:5 ~h:50 ~x:10 () in
  let r = Random_server.partial_lookup s 25 in
  Alcotest.(check bool) "needs several servers" true (r.Lookup_result.servers_contacted >= 2);
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r)

let test_lookup_under_failures () =
  let cluster, s, _ = make ~n:5 ~h:50 ~x:10 () in
  Cluster.fail cluster 0;
  Cluster.fail cluster 1;
  let r = Random_server.partial_lookup s 10 in
  Alcotest.(check bool) "satisfied with 3 survivors" true (Lookup_result.satisfied r)

let test_rejects_bad_x () =
  let cluster = Cluster.create ~n:2 () in
  Alcotest.check_raises "x = 0"
    (Invalid_argument "Random_server.create: x must be positive") (fun () ->
      ignore (Random_server.create cluster ~x:0))

let prop_occupancy_bounded_under_updates =
  Helpers.qcheck ~count:100 "occupancy stays <= x under random updates"
    QCheck2.Gen.(pair (int_range 1 8) (list (pair bool (int_range 0 40))))
    (fun (x, ops) ->
      let cluster = Cluster.create ~seed:13 ~n:3 () in
      let s = Random_server.create cluster ~x in
      Random_server.place s (Helpers.entries 10);
      List.iter
        (fun (is_add, i) ->
          if is_add then Random_server.add s (Entry.v (50 + i))
          else Random_server.delete s (Entry.v (50 + i)))
        ops;
      List.for_all
        (fun server -> Server_store.cardinal (Cluster.store cluster server) <= x)
        [ 0; 1; 2 ])

let () =
  Helpers.run "random_server"
    [ ( "random_server",
        [ Alcotest.test_case "each server has x" `Quick test_each_server_has_x;
          Alcotest.test_case "servers differ" `Quick test_servers_differ;
          Alcotest.test_case "small h" `Quick test_place_with_small_h;
          Alcotest.test_case "system count" `Quick test_system_count_tracks;
          Alcotest.test_case "add below x" `Quick test_add_below_x_always_stored;
          Alcotest.test_case "capacity keeps x" `Quick test_add_at_capacity_keeps_x;
          Alcotest.test_case "reservoir rate" `Slow test_reservoir_inclusion_rate;
          Alcotest.test_case "uniform membership" `Slow test_uniform_membership_after_place;
          Alcotest.test_case "cushion hole" `Quick test_delete_leaves_hole;
          Alcotest.test_case "update broadcasts" `Quick test_update_broadcasts;
          Alcotest.test_case "replacement refills" `Quick test_replacement_on_delete_refills;
          Alcotest.test_case "lookup merges" `Quick test_lookup_merges_servers;
          Alcotest.test_case "lookup under failures" `Quick test_lookup_under_failures;
          Alcotest.test_case "rejects bad x" `Quick test_rejects_bad_x;
          prop_occupancy_bounded_under_updates ] ) ]
