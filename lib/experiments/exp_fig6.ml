open Plookup_util
module Service = Plookup.Service
module Analytic = Plookup_metrics.Analytic
module Coverage = Plookup_metrics.Coverage

let id = "fig6"
let title = "Fig 6: coverage vs total storage (100 entries on 10 servers)"

let default_budgets = List.init 20 (fun i -> (i + 1) * 10)

let run ?(n = 10) ?(h = 100) ?(budgets = default_budgets) ctx =
  let table =
    Table.create ~title
      ~columns:
        [ "storage";
          "Round&Hash";
          "Round&Hash analytic";
          "Fixed";
          "Fixed analytic";
          "RandomServer";
          "RandomServer analytic" ]
  in
  let runs = Ctx.scaled ctx 30 in
  let budgets = Array.of_list budgets in
  (* One parallel unit per budget row, seeded from the budget value. *)
  let rows =
    Runner.map_obs ctx ~count:(Array.length budgets) (fun i ~obs ->
        let budget = budgets.(i) in
        let seed = Ctx.run_seed ctx budget in
        let x = max 1 (budget / n) in
        let y = max 1 ((budget + h - 1) / h) in
        let measure config ?cap () =
          fst
            (Coverage.measured_over_instances ~seed ~obs ~n ~entries:h ~config ?budget:cap
               ~runs ())
        in
        (* Round-y and Hash-y behave identically for coverage under the
           round-major budget cut; measure Round (deterministic) and check
           Hash agrees in the test suite. *)
        let round_cov = measure (Service.round_robin y) ~cap:budget () in
        let fixed_cov = measure (Service.fixed x) () in
        let random_cov = measure (Service.random_server x) () in
        (budget, x, round_cov, fixed_cov, random_cov))
  in
  Array.iter
    (fun (budget, x, round_cov, fixed_cov, random_cov) ->
      Table.add_row table
        [ Table.I budget;
          Table.F round_cov;
          Table.F (Analytic.coverage_with_budget ~h ~total_storage:budget);
          Table.F fixed_cov;
          Table.F (Analytic.coverage_fixed ~x ~h);
          Table.F random_cov;
          Table.F (Analytic.coverage_random_server ~n ~h ~x) ])
    rows;
  table
