module Net = Plookup_net.Net

type summary = {
  total : int;
  mean : float;
  peak : int;
  peak_to_average : float;
  cov : float;
  top_share : float;
}

let summarize loads =
  let n = Array.length loads in
  if n = 0 then invalid_arg "Load.summarize: empty load vector";
  let total = Array.fold_left ( + ) 0 loads in
  let mean = float_of_int total /. float_of_int n in
  let peak = Array.fold_left max 0 loads in
  let floats = Array.map float_of_int loads in
  let stddev = Plookup_util.Stats.stddev floats in
  { total;
    mean;
    peak;
    peak_to_average = (if total = 0 then 1.0 else float_of_int peak /. mean);
    cov = (if total = 0 then 0.0 else stddev /. mean);
    top_share = (if total = 0 then 0.0 else float_of_int peak /. float_of_int total) }

let of_cluster cluster =
  let net = Plookup.Cluster.net cluster in
  summarize
    (Array.init (Plookup.Cluster.n cluster) (fun i -> Net.messages_received_by net i))

let pp ppf s =
  Format.fprintf ppf
    "total %d, mean %.1f, peak %d (%.2fx average, %.0f%% of traffic), cov %.3f" s.total
    s.mean s.peak s.peak_to_average (100. *. s.top_share) s.cov
