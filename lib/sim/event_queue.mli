(** A binary min-heap priority queue for simulation events, with O(1)
    intrusive cancellation.

    Events are ordered by timestamp; ties are broken by insertion
    sequence so that simultaneous events fire in FIFO order, which keeps
    replays deterministic.

    {!push} returns a {!handle} carrying a mutable state flag on the
    heap node itself; {!cancel_handle} just flips it.  Cancelled nodes
    are discarded lazily when they surface at the heap root, so the
    per-event fast path allocates nothing and touches no side table
    (the engine previously paired every event with two hashtable
    updates). *)

type 'a t

type 'a handle
(** A pushed event.  At most one of "fires" / "cancelled" happens. *)

val create : unit -> 'a t

val length : 'a t -> int
(** Events that will still fire; cancelled events do not count. *)

val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> 'a handle
(** Schedule a payload at [time].  Times may be pushed in any order. *)

val cancel_handle : 'a t -> 'a handle -> bool
(** [cancel_handle t h] marks [h]'s event as never-to-fire, in O(1).
    Returns [true] the first time; cancelling twice, or after the event
    was popped, is a no-op returning [false] (so callers can keep
    accurate pending counts). *)

val is_cancelled : 'a handle -> bool

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest non-cancelled event, [None] when
    none is left. *)

val peek : 'a t -> (float * 'a) option
(** Earliest non-cancelled event without removing it (cancelled nodes
    ahead of it are purged). *)

val clear : 'a t -> unit
(** Forget all events but keep the heap's capacity, so a reused queue
    does not re-grow from scratch. *)

val drain : 'a t -> (float * 'a) list
(** Pop everything, in order. *)
