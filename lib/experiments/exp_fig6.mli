(** Figure 6: maximum coverage vs total storage budget (100 entries, 10
    servers, budget swept 10..200).  Round-y/Hash-y climb linearly to
    complete coverage at budget h; Fixed-x's coverage is x = budget/n;
    RandomServer-x follows the inverted exponential
    h*(1-(1-x/h)^n). *)

val id : string
val title : string

val run :
  ?n:int -> ?h:int -> ?budgets:int list -> Ctx.t -> Plookup_util.Table.t
(** Default budgets: 10..200 step 10. *)
