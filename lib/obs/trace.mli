(** Typed simulation tracing, int-coded for always-on use.

    A trace mints {!Span} ids and records events into a bounded,
    preallocated ring of fixed-width int cells: kind, actor, plane and
    message are small codes (strings interned per trace), times raw
    floats.  Nothing is boxed and nothing is rendered on the emit path —
    {!Span.t} is a {e decoded view} produced only when the ring is
    drained ({!spans}, {!absorb}) or when a streaming sink is attached.
    A disabled trace drops events in O(1), and a sampled-out emit costs
    one id increment and a branch.

    The ring is bounded, so long runs evict oldest spans — but never
    silently: {!dropped} counts what a full dump is missing (the seed
    repo's ring evicted silently, making truncated dumps look
    complete).

    {2 Sampling}

    [create ?sample ?planes] installs head-based sampling: the keep
    decision is made once per causal tree, at its root span, from a pure
    hash of the span id — children inherit their root's fate through the
    cause link, so no retained span ever names a sampled-out cause.
    Every emit mints an id whether or not the span is kept, which makes
    a sampled drain a strict subset of the unsampled drain with
    byte-identical per-span JSON, at any [--jobs] split. *)

type t

val create : ?capacity:int -> ?sample:float -> ?planes:string list -> unit -> t
(** [capacity] bounds the retained ring (default 4096); older spans are
    evicted first and counted in {!dropped}.  Extra sinks see every
    retained-or-evicted span regardless of capacity.  [sample] keeps
    each causal tree with the given probability (default 1.0, must be in
    (0, 1]); [planes] restricts message spans (Send/Recv/Drop) to the
    named planes — non-message spans always pass the plane filter.
    Tracing starts disabled.  Raises [Invalid_argument] on a
    non-positive capacity or an out-of-range sample. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val capacity : t -> int

val sample_rate : t -> float
(** The [sample] given to {!create} (1.0 when unsampled). *)

val plane_filter : t -> string list option
(** The [planes] given to {!create}. *)

val add_sink : t -> Sink.t -> unit
(** Attach an extra sink; sinks fire in attachment order.  Attaching a
    sink makes emits eager again (each recorded span is decoded and
    streamed as it happens), so keep traces sink-free on benchmarked hot
    paths. *)

val set_evict_hook : t -> (int -> unit) -> unit
(** [f] is called with batches of newly detected ring evictions — how
    {!Obs} mirrors the eviction count into the metrics registry
    ([obs.trace.evicted]).  Evictions are derived, not counted on the
    emit path, so the hook fires when the ring becomes observable
    ({!spans}, {!absorb}, {!flush}, {!clear}), not per evicted span. *)

(** {1 Interning and coded emitters}

    The allocation-free hot interface.  Callers intern their strings
    once at setup time and pass plain ints per event; [src] is the actor
    code (-1 for a client, the server index otherwise), [pm] a packed
    plane/msg code from {!intern_message}.  [cause] follows the span-id
    convention of the coded emitters' return values: a positive id links
    to that span, 0 means no cause, and a negative id (a sampled-out
    parent) marks this span sampled-out too.  Intern codes survive
    {!clear}, so a coder precomputed per trace stays valid across
    runs. *)

val intern_message : t -> plane:string -> msg:string -> int
(** The packed code for a (plane, msg) pair.  Raises [Invalid_argument]
    if the trace has interned more than 256 distinct strings (far beyond
    the protocol's fixed vocabulary). *)

val emit_send : t -> time:float -> src:int -> dst:int -> pm:int -> int
(** Record a [Send] and return its id for cause links — 0 when the trace
    is disabled, negative when minted but sampled out. *)

val emit_recv : t -> time:float -> cause:int -> src:int -> dst:int -> pm:int -> unit

val emit_send_recv : t -> time:float -> src:int -> dst:int -> pm:int -> int
(** The fused fast path for a synchronously delivered message: a [Send]
    immediately resolved by its cause-linked [Recv], producing exactly
    the cells (and ids) the two separate emits would.  Returns the
    [Send]'s id. *)

val emit_drop :
  t -> time:float -> cause:int -> src:int -> dst:int -> pm:int -> reason:Span.drop_reason -> unit

val emit_timeout : t -> time:float -> dst:int -> after:float -> int
(** Returns an id with the same convention as {!emit_send}. *)

val emit_retry : t -> time:float -> cause:int -> dst:int -> attempt:int -> unit
val emit_repair_round :
  t -> time:float -> coordinator:int -> tick:int -> re_replications:int -> trims:int -> unit
val emit_migration : t -> time:float -> entry:int -> src:int -> dst:int -> unit

(** {1 The boxed interface} *)

val emit : t -> time:float -> ?cause:int -> Span.kind -> int
(** Record one span from its decoded form (interning any strings it
    carries) and return its id.  Returns 0 without recording when the
    trace is disabled, a negative id when sampled out.  Handy for tests
    and one-off annotations; hot paths use the coded emitters. *)

val record : t -> time:float -> label:string -> string -> unit
(** Free-form annotation — emits a [Mark] span (the legacy string-record
    interface). *)

(** {1 Draining} *)

val spans : t -> Span.t list
(** The ring's contents, decoded, oldest first. *)

val length : t -> int
(** Spans currently retained in the ring. *)

val emitted : t -> int
(** Total spans ever recorded (including evicted and absorbed ones;
    sampled-out spans are {e not} recorded). *)

val dropped : t -> int
(** Spans missing from {!spans}: evicted from the ring, plus drops
    carried over by {!absorb}.  [emitted t = length t + dropped t]. *)

val sampled_out : t -> int
(** Spans minted but not recorded because of [sample]/[planes]
    (including counts carried over by {!absorb}). *)

val clear : t -> unit
(** Empty the ring and reset the id, emitted, dropped and sampled-out
    counts (extra sinks and the intern table are kept; sinks are not
    notified). *)

val absorb : t -> t -> unit
(** [absorb t child] re-records the child's retained spans into [t] in
    order — decoding each coded cell, remapping span ids (and their
    cause links) past [t]'s current id watermark, re-interning strings
    against [t]'s table — and adds the child's dropped and sampled-out
    counts to [t]'s.  This is how per-replicate traces merge
    deterministically into the experiment context's trace
    ({!Plookup_experiments.Runner}). *)

val flush : t -> unit
(** Flush every attached sink. *)

val dump : t -> string
(** Human-readable rendering of {!spans}, one line each
    ({!Span.pp}). *)
