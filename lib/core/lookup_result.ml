open Plookup_store

type t = { entries : Entry.t list; servers_contacted : int; target : int }

let satisfied t = List.length t.entries >= t.target
let count t = List.length t.entries
let empty ~target = { entries = []; servers_contacted = 0; target }

let pp ppf t =
  Format.fprintf ppf "lookup(target=%d): %d entries from %d servers%s" t.target (count t)
    t.servers_contacted
    (if satisfied t then "" else " (UNSATISFIED)")
