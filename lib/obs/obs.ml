type t = { metrics : Metrics.t; trace : Trace.t }

let create ?trace_capacity () =
  { metrics = Metrics.create (); trace = Trace.create ?capacity:trace_capacity () }

let child t =
  let c = create ~trace_capacity:(Trace.capacity t.trace) () in
  Trace.set_enabled c.trace (Trace.enabled t.trace);
  c

let merge parent child =
  Metrics.absorb parent.metrics (Metrics.snapshot child.metrics);
  Trace.absorb parent.trace child.trace
