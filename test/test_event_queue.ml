open Plookup_sim

let push q ~time v = ignore (Event_queue.push q ~time v)

let test_empty () =
  let q = Event_queue.create () in
  Helpers.check_int "length" 0 (Event_queue.length q);
  Alcotest.(check bool) "is_empty" true (Event_queue.is_empty q);
  Alcotest.(check bool) "pop none" true (Event_queue.pop q = None);
  Alcotest.(check bool) "peek none" true (Event_queue.peek q = None)

let test_ordering () =
  let q = Event_queue.create () in
  List.iter (fun (t, v) -> push q ~time:t v)
    [ (3., "c"); (1., "a"); (2., "b"); (0.5, "z") ];
  let order = List.map snd (Event_queue.drain q) in
  Alcotest.(check (list string)) "sorted by time" [ "z"; "a"; "b"; "c" ] order

let test_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun v -> push q ~time:5. v) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "ties in insertion order" [ 1; 2; 3; 4; 5 ]
    (List.map snd (Event_queue.drain q))

let test_peek_does_not_remove () =
  let q = Event_queue.create () in
  push q ~time:1. "x";
  Alcotest.(check bool) "peek" true (Event_queue.peek q = Some (1., "x"));
  Helpers.check_int "still there" 1 (Event_queue.length q)

let test_interleaved_push_pop () =
  let q = Event_queue.create () in
  push q ~time:10. "late";
  push q ~time:1. "early";
  Alcotest.(check bool) "pop early" true (Event_queue.pop q = Some (1., "early"));
  push q ~time:5. "middle";
  Alcotest.(check bool) "pop middle" true (Event_queue.pop q = Some (5., "middle"));
  Alcotest.(check bool) "pop late" true (Event_queue.pop q = Some (10., "late"))

let test_clear () =
  let q = Event_queue.create () in
  push q ~time:1. 1;
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q)

let test_grows () =
  let q = Event_queue.create () in
  for i = 999 downto 0 do
    push q ~time:(float_of_int i) i
  done;
  Helpers.check_int "length" 1000 (Event_queue.length q);
  Alcotest.(check (list int)) "drains in order" (List.init 1000 Fun.id)
    (List.map snd (Event_queue.drain q))

let test_cancel_basic () =
  let q = Event_queue.create () in
  let a = Event_queue.push q ~time:1. "a" in
  let b = Event_queue.push q ~time:2. "b" in
  let c = Event_queue.push q ~time:3. "c" in
  Helpers.check_int "three pending" 3 (Event_queue.length q);
  Alcotest.(check bool) "cancel b" true (Event_queue.cancel_handle q b);
  Helpers.check_int "two pending" 2 (Event_queue.length q);
  Alcotest.(check bool) "cancel b again is no-op" false (Event_queue.cancel_handle q b);
  Alcotest.(check bool) "b is cancelled" true (Event_queue.is_cancelled b);
  Alcotest.(check bool) "a is not" false (Event_queue.is_cancelled a);
  Alcotest.(check (list string)) "b never surfaces" [ "a"; "c" ]
    (List.map snd (Event_queue.drain q));
  Alcotest.(check bool) "cancel after fire is no-op" false
    (Event_queue.cancel_handle q a);
  ignore c

let test_cancel_root () =
  (* Cancelling the earliest pending event must not disturb peek/pop. *)
  let q = Event_queue.create () in
  let a = Event_queue.push q ~time:1. "a" in
  let _b = Event_queue.push q ~time:2. "b" in
  ignore (Event_queue.cancel_handle q a);
  Alcotest.(check bool) "peek skips cancelled root" true
    (Event_queue.peek q = Some (2., "b"));
  Alcotest.(check bool) "pop skips cancelled root" true
    (Event_queue.pop q = Some (2., "b"));
  Alcotest.(check bool) "empty after" true (Event_queue.is_empty q)

let prop_drain_sorted =
  Helpers.qcheck ~count:300 "drain yields non-decreasing times"
    QCheck2.Gen.(list (float_range 0. 1000.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> push q ~time:t ()) times;
      let drained = List.map fst (Event_queue.drain q) in
      drained = List.sort compare times)

let prop_stable_for_equal_times =
  Helpers.qcheck "equal times preserve insertion order"
    QCheck2.Gen.(list_size (int_range 0 50) (int_range 0 3))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> push q ~time:(float_of_int t) i) times;
      let drained = Event_queue.drain q in
      (* For every pair with equal time, sequence must be increasing. *)
      let rec check = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
          (t1 < t2 || (t1 = t2 && i1 < i2)) && check rest
        | _ -> true
      in
      check drained)

(* Model-based: a script of pushes and cancels against a sorted-list
   reference.  The heap with lazy deletion must agree with the model on
   both the live count and the exact fire order. *)
let prop_cancel_model =
  Helpers.qcheck ~count:300 "cancellation matches a sorted-list model"
    QCheck2.Gen.(
      list_size (int_range 0 60)
        (pair (int_range 0 9) (* time bucket: plenty of ties *)
           (int_range 0 4) (* cancel k pending events after this push *)))
    (fun script ->
      let q = Event_queue.create () in
      let handles = ref [] in (* (serial, handle), newest first *)
      let model = ref [] in (* (time, serial), live only *)
      let serial = ref 0 in
      List.iter
        (fun (bucket, cancels) ->
          let time = float_of_int bucket in
          let h = Event_queue.push q ~time !serial in
          handles := (!serial, h) :: !handles;
          model := (time, !serial) :: !model;
          incr serial;
          (* Cancel [cancels] of the still-live events, oldest first, so
             the reference knows exactly which ones disappear. *)
          let live =
            List.filter (fun (_, h) -> not (Event_queue.is_cancelled h)) !handles
          in
          let victims =
            List.filteri (fun i _ -> i < cancels) (List.rev live)
          in
          List.iter
            (fun (s, h) ->
              if Event_queue.cancel_handle q h then
                model := List.filter (fun (_, s') -> s' <> s) !model)
            victims)
        script;
      let expected =
        (* Sort by (time, serial): serials increase with insertion, so
           this is exactly time-order with FIFO ties. *)
        List.sort compare !model
      in
      Event_queue.length q = List.length expected
      && Event_queue.drain q = expected)

let () =
  Helpers.run "event_queue"
    [ ( "event_queue",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
          Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
          Alcotest.test_case "interleaved" `Quick test_interleaved_push_pop;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "grows" `Quick test_grows;
          Alcotest.test_case "cancel basic" `Quick test_cancel_basic;
          Alcotest.test_case "cancel root" `Quick test_cancel_root;
          prop_drain_sorted;
          prop_stable_for_equal_times;
          prop_cancel_model ] ) ]
