module Net = Plookup_net.Net
module Engine = Plookup_sim.Engine

(* A toy echo protocol: servers reply with (their id, the message). *)
let make ?(n = 4) () =
  let net = Net.create ~n in
  Net.set_handler net (fun dst _src msg -> (dst, msg));
  net

let test_send_and_reply () =
  let net = make () in
  (match Net.send net ~src:Net.Client ~dst:2 "hi" with
  | Some (2, "hi") -> ()
  | _ -> Alcotest.fail "bad reply");
  Helpers.check_int "one message" 1 (Net.messages_received net);
  Helpers.check_int "dst counted" 1 (Net.messages_received_by net 2);
  Helpers.check_int "others zero" 0 (Net.messages_received_by net 0);
  Helpers.check_int "client request" 1 (Net.client_requests net)

let test_server_to_server_not_client () =
  let net = make () in
  ignore (Net.send net ~src:(Net.Server 0) ~dst:1 "x");
  Helpers.check_int "no client request" 0 (Net.client_requests net);
  Helpers.check_int "message counted" 1 (Net.messages_received net)

let test_broadcast_costs_n () =
  let net = make ~n:5 () in
  let replies = Net.broadcast net ~src:(Net.Server 1) "b" in
  Helpers.check_int "all reply" 5 (List.length replies);
  Helpers.check_int "cost n" 5 (Net.messages_received net);
  Helpers.check_int "one broadcast" 1 (Net.broadcasts net);
  (* Replies come in server order, including the sender. *)
  Alcotest.(check (list int)) "server order" [ 0; 1; 2; 3; 4 ] (List.map fst replies)

let test_failure_drops () =
  let net = make () in
  Net.fail net 1;
  Alcotest.(check bool) "down" false (Net.is_up net 1);
  (match Net.send net ~src:Net.Client ~dst:1 "lost" with
  | None -> ()
  | Some _ -> Alcotest.fail "delivered to failed node");
  Helpers.check_int "dropped" 1 (Net.messages_dropped net);
  Helpers.check_int "not received" 0 (Net.messages_received net);
  Net.recover net 1;
  Alcotest.(check bool) "recovered" true (Net.is_up net 1);
  ignore (Net.send net ~src:Net.Client ~dst:1 "ok");
  Helpers.check_int "received after recovery" 1 (Net.messages_received net)

let test_broadcast_skips_failed () =
  let net = make ~n:4 () in
  Net.fail net 0;
  Net.fail net 3;
  let replies = Net.broadcast net ~src:Net.Client "b" in
  Alcotest.(check (list int)) "only up servers" [ 1; 2 ] (List.map fst replies);
  Helpers.check_int "cost = up servers" 2 (Net.messages_received net);
  Helpers.check_int "dropped two" 2 (Net.messages_dropped net)

let test_fail_exactly () =
  let net = make ~n:5 () in
  Net.fail net 0;
  Net.fail_exactly net [ 2; 4 ];
  Alcotest.(check (list int)) "up set" [ 0; 1; 3 ] (Net.up_servers net)

let test_reset_counters () =
  let net = make () in
  ignore (Net.broadcast net ~src:Net.Client "x");
  Net.reset_counters net;
  Helpers.check_int "received reset" 0 (Net.messages_received net);
  Helpers.check_int "broadcasts reset" 0 (Net.broadcasts net);
  Helpers.check_int "client reset" 0 (Net.client_requests net);
  Helpers.check_int "dropped reset" 0 (Net.messages_dropped net)

let test_no_handler () =
  let net : (string, unit) Net.t = Net.create ~n:2 in
  Alcotest.check_raises "no handler" (Invalid_argument "Net: no handler installed")
    (fun () -> ignore (Net.send net ~src:Net.Client ~dst:0 "x"))

let test_bad_index () =
  let net = make () in
  Alcotest.check_raises "range" (Invalid_argument "Net: server index out of range")
    (fun () -> ignore (Net.send net ~src:Net.Client ~dst:9 "x"))

let test_create_validation () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Net.create: n must be positive")
    (fun () -> ignore (Net.create ~n:0 : (unit, unit) Net.t))

let test_wrap_handler () =
  let net = make ~n:2 () in
  let seen = ref [] in
  Net.wrap_handler net (fun inner dst src msg ->
      seen := msg :: !seen;
      inner dst src (msg ^ "!"));
  (match Net.send net ~src:Net.Client ~dst:1 "hi" with
  | Some (1, "hi!") -> ()
  | _ -> Alcotest.fail "wrapper did not transform");
  Alcotest.(check (list string)) "wrapper observed" [ "hi" ] !seen;
  (* Wrapping composes. *)
  Net.wrap_handler net (fun inner dst src msg -> inner dst src (msg ^ "?"));
  (match Net.send net ~src:Net.Client ~dst:0 "x" with
  | Some (0, "x?!") -> ()
  | _ -> Alcotest.fail "wrappers did not compose")

let test_wrap_handler_requires_handler () =
  let net : (string, unit) Net.t = Net.create ~n:2 in
  Alcotest.check_raises "no handler" (Invalid_argument "Net.wrap_handler: no handler installed")
    (fun () -> Net.wrap_handler net (fun inner -> inner))

let test_status_listener () =
  let net = make ~n:3 () in
  let events = ref [] in
  Net.set_status_listener net (fun i ~up -> events := (i, up) :: !events);
  Net.fail net 1;
  Net.fail net 1 (* repeat: no transition, no event *);
  Net.recover net 1;
  Net.recover net 2 (* already up: no event *);
  Alcotest.(check (list (pair int bool))) "transitions only" [ (1, false); (1, true) ]
    (List.rev !events)

let test_fail_exactly_notifies () =
  let net = make ~n:3 () in
  Net.fail net 0;
  let events = ref [] in
  Net.set_status_listener net (fun i ~up -> events := (i, up) :: !events);
  Net.fail_exactly net [ 2 ];
  (* 0 recovers (transition), 2 fails (transition); 1 untouched. *)
  Alcotest.(check (list (pair int bool))) "recover then fail" [ (0, true); (2, false) ]
    (List.rev !events)

let test_post_without_engine_is_sync () =
  let got = ref [] in
  let net = Net.create ~n:2 in
  Net.set_handler net (fun dst _src msg ->
      got := (dst, msg) :: !got);
  Net.post net ~src:Net.Client ~dst:1 "now";
  Alcotest.(check bool) "delivered synchronously" true (!got = [ (1, "now") ])

let test_post_with_engine_is_delayed () =
  let engine = Engine.create () in
  let got = ref [] in
  let net = Net.create ~n:3 in
  Net.set_handler net (fun dst _src msg ->
      got := (Engine.now engine, dst, msg) :: !got);
  Net.attach_engine net engine ~latency:(fun ~src:_ ~dst -> 1. +. float_of_int dst);
  Net.post net ~src:Net.Client ~dst:2 "slow";
  Net.post net ~src:Net.Client ~dst:0 "fast";
  Alcotest.(check bool) "not delivered yet" true (!got = []);
  ignore (Engine.run engine);
  (match List.rev !got with
  | [ (t0, 0, "fast"); (t2, 2, "slow") ] ->
    Helpers.close "latency 1" 1. t0;
    Helpers.close "latency 3" 3. t2
  | _ -> Alcotest.fail "unexpected delivery order")

let test_post_to_failed_node_after_delay () =
  (* Liveness is checked at delivery time, not post time. *)
  let engine = Engine.create () in
  let net = Net.create ~n:2 in
  Net.set_handler net (fun _ _ _ -> Alcotest.fail "should be dropped");
  Net.attach_engine net engine ~latency:(fun ~src:_ ~dst:_ -> 5.);
  Net.post net ~src:Net.Client ~dst:1 ();
  Net.fail net 1;
  ignore (Engine.run engine);
  Helpers.check_int "dropped at delivery" 1 (Net.messages_dropped net)

let prop_message_count_additive =
  Helpers.qcheck "k sends = k received messages"
    QCheck2.Gen.(int_range 0 200)
    (fun k ->
      let net = make ~n:3 () in
      for i = 1 to k do
        ignore (Net.send net ~src:Net.Client ~dst:(i mod 3) "m")
      done;
      Net.messages_received net = k
      && Net.messages_received_by net 0
         + Net.messages_received_by net 1
         + Net.messages_received_by net 2
         = k)

let () =
  Helpers.run "net"
    [ ( "net",
        [ Alcotest.test_case "send/reply" `Quick test_send_and_reply;
          Alcotest.test_case "server src" `Quick test_server_to_server_not_client;
          Alcotest.test_case "broadcast cost" `Quick test_broadcast_costs_n;
          Alcotest.test_case "failure drops" `Quick test_failure_drops;
          Alcotest.test_case "broadcast skips failed" `Quick test_broadcast_skips_failed;
          Alcotest.test_case "fail_exactly" `Quick test_fail_exactly;
          Alcotest.test_case "reset counters" `Quick test_reset_counters;
          Alcotest.test_case "no handler" `Quick test_no_handler;
          Alcotest.test_case "bad index" `Quick test_bad_index;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "wrap handler" `Quick test_wrap_handler;
          Alcotest.test_case "wrap requires handler" `Quick test_wrap_handler_requires_handler;
          Alcotest.test_case "status listener" `Quick test_status_listener;
          Alcotest.test_case "fail_exactly notifies" `Quick test_fail_exactly_notifies;
          Alcotest.test_case "post sync" `Quick test_post_without_engine_is_sync;
          Alcotest.test_case "post delayed" `Quick test_post_with_engine_is_delayed;
          Alcotest.test_case "post to failed" `Quick test_post_to_failed_node_after_delay;
          prop_message_count_additive ] ) ]
