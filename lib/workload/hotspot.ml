module Rng = Plookup_util.Rng

let cost ~order ~held ~t =
  let n = Array.length held in
  let rec walk contacted gathered = function
    | [] -> contacted + 1 (* never reaches [t]: worse than any order that does *)
    | s :: rest ->
      let got = if s >= 0 && s < n then held.(s) else 0 in
      let gathered = gathered + got in
      if gathered >= t then contacted + 1 else walk (contacted + 1) gathered rest
  in
  if t <= 0 then 0 else walk 0 0 order

let worst ?(lo = 0) ~orders ~held ~t () =
  if lo < 0 || lo >= Array.length orders then
    invalid_arg "Hotspot.worst: empty order range";
  let best = ref lo and best_cost = ref (cost ~order:orders.(lo) ~held ~t) in
  for r = lo + 1 to Array.length orders - 1 do
    let c = cost ~order:orders.(r) ~held ~t in
    if c > !best_cost then begin
      best := r;
      best_cost := c
    end
  done;
  !best

let draw rng ~focus ~worst ~rest =
  if focus < 0. || focus > 1. then invalid_arg "Hotspot.draw: focus must be in [0, 1]";
  if Rng.unit_float rng < focus then worst else rest rng
