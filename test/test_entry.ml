open Plookup_store

let test_identity () =
  let a = Entry.v 3 and b = Entry.v ~payload:"song.mp3" 3 and c = Entry.v 4 in
  Alcotest.(check bool) "equal ignores payload" true (Entry.equal a b);
  Alcotest.(check bool) "different ids" false (Entry.equal a c);
  Helpers.check_int "compare" 0 (Entry.compare a b);
  Alcotest.(check bool) "ordering" true (Entry.compare a c < 0);
  Helpers.check_int "hash = id" 3 (Entry.hash a)

let test_accessors () =
  let e = Entry.v ~payload:"10.0.0.1" 9 in
  Helpers.check_int "id" 9 (Entry.id e);
  Alcotest.(check (option string)) "payload" (Some "10.0.0.1") (Entry.payload e);
  Alcotest.(check (option string)) "no payload" None (Entry.payload (Entry.v 1))

let test_negative_id_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Entry.v: negative id") (fun () ->
      ignore (Entry.v (-1)))

let test_to_string () =
  Helpers.check_string "plain" "v5" (Entry.to_string (Entry.v 5));
  Helpers.check_string "payload" "v5(x)" (Entry.to_string (Entry.v ~payload:"x" 5))

let test_gen_fresh_ids () =
  let g = Entry.Gen.create () in
  let a = Entry.Gen.fresh g and b = Entry.Gen.fresh g in
  Helpers.check_int "first id" 0 (Entry.id a);
  Helpers.check_int "second id" 1 (Entry.id b);
  Helpers.check_int "next_id" 2 (Entry.Gen.next_id g)

let test_gen_batch () =
  let g = Entry.Gen.create () in
  let batch = Entry.Gen.batch g 5 in
  Alcotest.(check (list int)) "dense ids" [ 0; 1; 2; 3; 4 ] (List.map Entry.id batch);
  Helpers.check_int "generator advanced" 5 (Entry.Gen.next_id g)

let test_independent_generators () =
  let g1 = Entry.Gen.create () and g2 = Entry.Gen.create () in
  ignore (Entry.Gen.fresh g1);
  Helpers.check_int "g2 unaffected" 0 (Entry.Gen.next_id g2)

let test_set_and_map () =
  let s = Entry.Set.of_list [ Entry.v 1; Entry.v 2; Entry.v 1 ] in
  Helpers.check_int "set dedups" 2 (Entry.Set.cardinal s);
  let m = Entry.Map.singleton (Entry.v 7) "location" in
  Alcotest.(check (option string)) "map lookup" (Some "location")
    (Entry.Map.find_opt (Entry.v ~payload:"other" 7) m)

let test_dedup () =
  let l = [ Entry.v 1; Entry.v 2; Entry.v 1; Entry.v 3; Entry.v 2 ] in
  Alcotest.(check (list int)) "order-preserving dedup" [ 1; 2; 3 ]
    (List.map Entry.id (Entry.dedup l));
  Alcotest.(check (list int)) "dedup empty" [] (List.map Entry.id (Entry.dedup []))

let prop_dedup_idempotent =
  Helpers.qcheck "dedup is idempotent"
    QCheck2.Gen.(list (int_range 0 20))
    (fun ids ->
      let l = List.map Entry.v ids in
      let once = Entry.dedup l in
      Entry.dedup once = once)

let prop_dedup_preserves_first_occurrence =
  Helpers.qcheck "dedup keeps ids in first-seen order"
    QCheck2.Gen.(list (int_range 0 10))
    (fun ids ->
      let l = List.map Entry.v ids in
      let deduped = List.map Entry.id (Entry.dedup l) in
      let expected =
        List.fold_left (fun acc i -> if List.mem i acc then acc else i :: acc) [] ids
        |> List.rev
      in
      deduped = expected)

let () =
  Helpers.run "entry"
    [ ( "entry",
        [ Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "negative id" `Quick test_negative_id_rejected;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "gen fresh" `Quick test_gen_fresh_ids;
          Alcotest.test_case "gen batch" `Quick test_gen_batch;
          Alcotest.test_case "independent gens" `Quick test_independent_generators;
          Alcotest.test_case "set/map" `Quick test_set_and_map;
          Alcotest.test_case "dedup" `Quick test_dedup;
          prop_dedup_idempotent;
          prop_dedup_preserves_first_occurrence ] ) ]
