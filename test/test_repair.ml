(* Regression tests for the self-healing layer (Repair): the staleness
   bug — a recovered server serving entries deleted while it was down
   and missing entries added while it was down — is pinned as fixed for
   every strategy, plus hint TTL/capacity bounds, daemon degree
   restoration, repair message accounting and determinism. *)

open Plookup
open Plookup_store
module Engine = Plookup_sim.Engine
module Net = Plookup_net.Net
module Churn = Plookup_workload.Churn

let all_configs =
  [ Service.full_replication;
    Service.fixed 60;
    Service.random_server 20;
    Service.random_server_replacing 20;
    Service.round_robin 2;
    Service.round_robin_replicated 2 2;
    Service.hash 2 ]

let store_ids cluster i = List.sort compare (Server_store.ids (Cluster.store cluster i))

let snapshot cluster = List.init (Cluster.n cluster) (store_ids cluster)

(* The headline regression: fail a server, add and delete while it is
   down, recover it — lookups must never return a deleted entry, and
   the adds must be covered again. *)
let test_staleness_fixed () =
  List.iter
    (fun config ->
      let name = Service.config_name config in
      let service = Service.create ~seed:11 ~repair:Repair.default_config ~n:5 config in
      let gen = Entry.Gen.create () in
      let batch = Entry.Gen.batch gen 30 in
      Service.place service batch;
      let cluster = Service.cluster service in
      Cluster.fail cluster 1;
      let rec take k = function
        | e :: rest when k > 0 -> e :: take (k - 1) rest
        | _ -> []
      in
      let deleted = take 5 batch in
      Alcotest.(check bool)
        (name ^ " accepts updates with one server down")
        true (Service.can_update service);
      List.iter (Service.delete service) deleted;
      let added = List.init 5 (fun _ -> Entry.Gen.fresh gen) in
      List.iter (Service.add service) added;
      Cluster.recover cluster 1;
      let deleted_ids = List.map Entry.id deleted in
      for _ = 1 to 50 do
        let r = Service.partial_lookup service 20 in
        List.iter
          (fun e ->
            if List.mem (Entry.id e) deleted_ids then
              Alcotest.failf "%s returned deleted entry %d after recovery" name
                (Entry.id e))
          r.Lookup_result.entries
      done;
      (* The recovered server itself holds nothing deleted... *)
      List.iter
        (fun id ->
          if List.mem id (store_ids cluster 1) then
            Alcotest.failf "%s: server 1 still stores deleted entry %d" name id)
        deleted_ids;
      (* ...and the adds are covered by the cluster again. *)
      let coverage = Cluster.coverage cluster in
      List.iter
        (fun e ->
          if not (Entry.Set.mem e coverage) then
            Alcotest.failf "%s lost added entry %d" name (Entry.id e))
        added)
    all_configs

(* Sync-only mode is enough for the staleness fix (no hints, no daemon:
   the recovery digest sync alone retracts the deletes). *)
let test_sync_mode_retracts () =
  List.iter
    (fun config ->
      let name = Service.config_name config in
      let repair = { Repair.default_config with Repair.mode = Repair.Sync } in
      let service = Service.create ~seed:3 ~repair ~n:4 config in
      let gen = Entry.Gen.create () in
      Service.place service (Entry.Gen.batch gen 20);
      let cluster = Service.cluster service in
      Cluster.fail cluster 2;
      let victim = Entry.v 0 in
      Service.delete service victim;
      Cluster.recover cluster 2;
      if List.mem 0 (store_ids cluster 2) then
        Alcotest.failf "%s: sync mode left deleted entry on recovered server" name;
      let stats = match Service.repair service with
        | Some rep -> Repair.stats rep
        | None -> Alcotest.fail "repair layer missing"
      in
      Alcotest.(check int) (name ^ " queues no hints in sync mode") 0
        stats.Repair.hints_queued)
    all_configs

(* A fail -> recover round trip with no updates in between must leave
   every store exactly as it was (the sync ships and retracts nothing,
   RandomServer's random subsets included). *)
let test_no_update_round_trip_identical () =
  List.iter
    (fun config ->
      let name = Service.config_name config in
      let service = Service.create ~seed:21 ~repair:Repair.default_config ~n:5 config in
      let gen = Entry.Gen.create () in
      Service.place service (Entry.Gen.batch gen 25);
      let cluster = Service.cluster service in
      let before = snapshot cluster in
      Cluster.fail cluster 3;
      Cluster.recover cluster 3;
      Cluster.fail cluster 0;
      Cluster.recover cluster 0;
      let after = snapshot cluster in
      if before <> after then
        Alcotest.failf "%s: stores changed across a no-update fail/recover round trip"
          name)
    all_configs

(* Hints expire after their TTL: a delete buffered for a down server is
   not replayed when the outage outlasts hint_ttl — the digest sync
   covers it instead. *)
let test_hint_ttl () =
  let repair = { Repair.default_config with Repair.hint_ttl = 5. } in
  let service = Service.create ~seed:9 ~repair ~n:4 (Service.hash 2) in
  let gen = Entry.Gen.create () in
  let batch = Entry.Gen.batch gen 30 in
  Service.place service batch;
  let cluster = Service.cluster service in
  let rep = Option.get (Service.repair service) in
  let engine = Engine.create () in
  Repair.attach_engine ~until:60. rep engine;
  Cluster.fail cluster 2;
  (* Delete a third of the entries; some are owned by server 2, so some
     hints are parked for it. *)
  List.iteri (fun i e -> if i mod 3 = 0 then Service.delete service e) batch;
  let queued = (Repair.stats rep).Repair.hints_queued in
  Alcotest.(check bool) "some hints queued for the down owner" true (queued > 0);
  ignore (Engine.schedule_at engine ~time:50. (fun _ -> Cluster.recover cluster 2));
  ignore (Engine.run ~until:60. engine);
  let stats = Repair.stats rep in
  Alcotest.(check int) "every hint outlived its TTL" queued stats.Repair.hints_expired;
  Alcotest.(check int) "nothing replayed" 0 stats.Repair.hints_replayed;
  (* The sync still cleaned the recovered store. *)
  List.iteri
    (fun i e ->
      if i mod 3 = 0 && List.mem (Entry.id e) (store_ids cluster 2) then
        Alcotest.failf "expired hint left deleted entry %d behind" (Entry.id e))
    batch

(* The per-buddy hint buffer is bounded: over capacity, the oldest hint
   is evicted. *)
let test_hint_capacity () =
  let repair = { Repair.default_config with Repair.hint_capacity = 2 } in
  let service = Service.create ~seed:5 ~repair ~n:3 (Service.fixed 10) in
  let gen = Entry.Gen.create () in
  Service.place service (Entry.Gen.batch gen 4);
  let cluster = Service.cluster service in
  Cluster.fail cluster 1;
  for _ = 1 to 5 do Service.add service (Entry.Gen.fresh gen) done;
  let rep = Option.get (Service.repair service) in
  let stats = Repair.stats rep in
  Alcotest.(check int) "all five adds hinted" 5 stats.Repair.hints_queued;
  Alcotest.(check int) "three evicted at capacity 2" 3 stats.Repair.hints_dropped;
  Alcotest.(check int) "two pending" 2 (Repair.hints_pending rep)

(* After the grace period the daemon re-replicates entries whose owner
   is down; once the owner returns, the substitutes are trimmed again so
   storage returns to its pre-failure footprint. *)
let test_daemon_restores_degree () =
  let service = Service.create ~seed:13 ~repair:Repair.default_config ~n:5 (Service.hash 2) in
  let gen = Entry.Gen.create () in
  let batch = Entry.Gen.batch gen 40 in
  Service.place service batch;
  let cluster = Service.cluster service in
  let rep = Option.get (Service.repair service) in
  let storage_before = Plookup_metrics.Storage.measured cluster in
  let engine = Engine.create () in
  Repair.attach_engine ~until:200. rep engine;
  ignore (Engine.schedule_at engine ~time:1. (fun _ -> Cluster.fail cluster 3));
  (* grace is 30: by t=100 the daemon has re-replicated 3's entries
     onto substitutes, so the up servers alone cover everything (an
     entry whose two hashes collide has a rightful degree of 1, hence
     coverage rather than a blanket two-copy check). *)
  ignore
    (Engine.schedule_at engine ~time:100. (fun _ ->
         let coverage = Cluster.coverage cluster in
         List.iter
           (fun e ->
             if not (Entry.Set.mem e coverage) then
               Alcotest.failf "entry %d not covered by up servers after repair"
                 (Entry.id e))
           batch;
         let r = Service.partial_lookup service 40 in
         Alcotest.(check int) "full lookup succeeds with the owner down" 40
           (List.length r.Lookup_result.entries)));
  ignore (Engine.schedule_at engine ~time:101. (fun _ -> Cluster.recover cluster 3));
  ignore (Engine.run ~until:200. engine);
  let stats = Repair.stats rep in
  Alcotest.(check bool) "daemon re-replicated" true (stats.Repair.re_replications > 0);
  Alcotest.(check bool) "daemon ticked" true (Repair.daemon_ticks rep > 0);
  Alcotest.(check int) "substitutes trimmed back to the original footprint"
    storage_before
    (Plookup_metrics.Storage.measured cluster);
  Alcotest.(check bool) "restore episodes recorded" true
    (stats.Repair.restore_episodes > 0)

(* Repair traffic is tallied apart from the paper's lookup/update
   message cost, and plain lookups never count as repair. *)
let test_repair_message_accounting () =
  let service = Service.create ~seed:2 ~repair:Repair.default_config ~n:4 (Service.fixed 30) in
  let gen = Entry.Gen.create () in
  Service.place service (Entry.Gen.batch gen 20);
  let cluster = Service.cluster service in
  let net = Cluster.net cluster in
  let rep = Option.get (Service.repair service) in
  Cluster.fail cluster 1;
  Service.delete service (Entry.v 0);
  Cluster.recover cluster 1;
  let repair_msgs = Repair.repair_messages rep in
  Alcotest.(check bool) "recovery produced repair traffic" true (repair_msgs > 0);
  Alcotest.(check bool) "repair messages are a subset of all messages" true
    (repair_msgs <= Net.messages_received net);
  let before = Repair.repair_messages rep in
  ignore (Service.partial_lookup service 10);
  Alcotest.(check int) "lookups are not repair traffic" before
    (Repair.repair_messages rep)

(* Same seed => identical repair schedule, hint flow and message
   counts, under a full churn + update workload. *)
let test_deterministic () =
  let scenario () =
    let service =
      Service.create ~seed:77 ~repair:Repair.default_config ~n:6 (Service.hash 2)
    in
    let gen = Entry.Gen.create () in
    Service.place service (Entry.Gen.batch gen 30);
    let cluster = Service.cluster service in
    let rep = Option.get (Service.repair service) in
    let engine = Engine.create () in
    Repair.attach_engine ~until:300. rep engine;
    Churn.drive engine
      ~apply:(fun ev ->
        if ev.Churn.up then Cluster.recover cluster ev.Churn.server
        else Cluster.fail cluster ev.Churn.server)
      (Churn.generate (Plookup_util.Rng.create 41) ~n:6 ~mttf:40. ~mttr:40.
         ~horizon:300.);
    for k = 1 to 30 do
      ignore
        (Engine.schedule_at engine
           ~time:(float_of_int k *. 10.)
           (fun _ ->
             if Service.can_update service then begin
               Service.delete service (Entry.v k);
               Service.add service (Entry.Gen.fresh gen)
             end))
    done;
    ignore (Engine.run ~until:300. engine);
    ( Repair.repair_messages rep,
      Net.messages_received (Cluster.net cluster),
      Repair.stats rep,
      snapshot cluster )
  in
  let a = scenario () and b = scenario () in
  if a <> b then Alcotest.fail "same seed gave a different repair run"

let test_mode_parsing () =
  List.iter
    (fun (s, expected) ->
      match Repair.mode_of_string s with
      | Ok m when m = expected -> ()
      | Ok _ -> Alcotest.failf "%s parsed to the wrong mode" s
      | Error e -> Alcotest.failf "%s rejected: %s" s e)
    [ ("off", Repair.Off); ("none", Repair.Off); ("sync", Repair.Sync);
      ("full", Repair.Full); ("all", Repair.Full); (" Full ", Repair.Full) ];
  match Repair.mode_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a bogus mode"

let test_config_validation () =
  let cluster = Cluster.create ~n:3 () in
  let checks =
    [ { Repair.default_config with Repair.mode = Repair.Off };
      { Repair.default_config with Repair.grace = -1. };
      { Repair.default_config with Repair.period = 0. };
      { Repair.default_config with Repair.hint_ttl = 0. };
      { Repair.default_config with Repair.hint_capacity = 0 } ]
  in
  List.iter
    (fun config ->
      match Repair.install cluster ~config ~plan:Repair.Mirror with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad repair config accepted")
    checks

let () =
  Helpers.run "repair"
    [ ( "repair",
        [ Alcotest.test_case "staleness fixed for every strategy" `Quick
            test_staleness_fixed;
          Alcotest.test_case "sync mode alone retracts deletes" `Quick
            test_sync_mode_retracts;
          Alcotest.test_case "no-update round trip is identical" `Quick
            test_no_update_round_trip_identical;
          Alcotest.test_case "hint TTL" `Quick test_hint_ttl;
          Alcotest.test_case "hint capacity" `Quick test_hint_capacity;
          Alcotest.test_case "daemon restores degree and trims" `Quick
            test_daemon_restores_degree;
          Alcotest.test_case "repair message accounting" `Quick
            test_repair_message_accounting;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "mode parsing" `Quick test_mode_parsing;
          Alcotest.test_case "config validation" `Quick test_config_validation ] ) ]
