open Plookup_store
open Plookup_util
module Net = Plookup_net.Net

let always_reachable _ = true

let candidates ?(reachable = always_reachable) cluster =
  List.filter reachable (Cluster.up_servers cluster)

(* Send one Lookup and merge the distinct answers into [seen]. *)
let contact cluster ~t ~seen server =
  match Net.send (Cluster.net cluster) ~src:Net.Client ~dst:server (Msg.lookup t) with
  | Some (Msg.Entries entries) ->
    List.iter
      (fun e -> if not (Hashtbl.mem seen (Entry.id e)) then Hashtbl.add seen (Entry.id e) e)
      entries;
    true
  | Some (Msg.Ack | Msg.Candidate _ | Msg.Digest _) | None -> false

(* The client delivers exactly [target] entries when it collected more:
   merging answers from multiple servers overshoots, and returning the
   whole union would systematically over-deliver every entry (it would
   also make the unfairness metric reflect overshoot rather than bias).
   The kept subset is uniform over everything collected. *)
let result_of cluster seen ~contacted ~target =
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) seen [] in
  let entries =
    if List.length entries <= target then entries
    else
      Array.to_list (Rng.sample (Cluster.rng cluster) (Array.of_list entries) target)
  in
  { Lookup_result.entries; servers_contacted = contacted; target }

let single ?reachable cluster ~t =
  match candidates ?reachable cluster with
  | [] -> Lookup_result.empty ~target:t
  | up ->
    let server = List.nth up (Rng.int (Cluster.rng cluster) (List.length up)) in
    let seen = Hashtbl.create 16 in
    let answered = contact cluster ~t ~seen server in
    result_of cluster seen ~contacted:(if answered then 1 else 0) ~target:t

(* Walk [order] until [t] distinct entries are in hand. *)
let probe_in_order cluster ~t order =
  let seen = Hashtbl.create 16 in
  let contacted = ref 0 in
  let rec go = function
    | [] -> ()
    | server :: rest ->
      if contact cluster ~t ~seen server then incr contacted;
      if Hashtbl.length seen < t then go rest
  in
  go order;
  result_of cluster seen ~contacted:!contacted ~target:t

let random_order ?reachable cluster ~t =
  let up = Array.of_list (candidates ?reachable cluster) in
  Rng.shuffle_in_place (Cluster.rng cluster) up;
  probe_in_order cluster ~t (Array.to_list up)

let stride ?reachable cluster ~start ~step ~t =
  let n = Cluster.n cluster in
  (* Normalize into [0, n): OCaml's [mod] is sign-preserving, so a raw
     negative step would walk [pos] below 0 and crash the array access;
     step = 0 (mod n) degenerates to the single start residue, which the
     rest-extension below already handles. *)
  let step = ((step mod n) + n) mod n in
  let usable = candidates ?reachable cluster in
  if List.length usable = n then begin
    (* Failure-free fast path: the deterministic sequence start,
       start+step, ... visits gcd-many residue classes; extend with the
       remaining servers so the probe can always reach full coverage. *)
    let visited = Array.make n false in
    let order = ref [] in
    let pos = ref (((start mod n) + n) mod n) in
    let continue = ref true in
    while !continue do
      if visited.(!pos) then continue := false
      else begin
        visited.(!pos) <- true;
        order := !pos :: !order;
        pos := (!pos + step) mod n
      end
    done;
    let rest =
      List.filter (fun i -> not visited.(i)) (List.init n Fun.id)
    in
    probe_in_order cluster ~t (List.rev !order @ rest)
  end
  else begin
    (* Failures (or restricted reachability): random order, per the
       paper. *)
    let up = Array.of_list usable in
    Rng.shuffle_in_place (Cluster.rng cluster) up;
    probe_in_order cluster ~t (Array.to_list up)
  end
