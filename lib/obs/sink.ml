type t = { emit : Span.t -> unit; flush : unit -> unit }

let emit t span = t.emit span
let flush t = t.flush ()

let jsonl ?(flush_every = 1024) oc =
  let buf = Buffer.create 256 in
  let pending = ref 0 in
  let emit span =
    Buffer.clear buf;
    Span.add_json buf span;
    Buffer.add_char buf '\n';
    Buffer.output_buffer oc buf;
    incr pending;
    if !pending >= flush_every then begin
      Stdlib.flush oc;
      pending := 0
    end
  in
  { emit; flush = (fun () -> Stdlib.flush oc) }

let null = { emit = ignore; flush = ignore }

(* {1 Ring} *)

type ring = {
  capacity : int;
  mutable buffer : Span.t option array; (* grows geometrically up to capacity *)
  mutable head : int; (* next write slot *)
  mutable count : int;
  mutable dropped : int;
}

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  { capacity;
    buffer = Array.make (min capacity 64) None;
    head = 0;
    count = 0;
    dropped = 0 }

let grow r =
  let size = Array.length r.buffer in
  let bigger = Array.make (min r.capacity (2 * size)) None in
  (* The ring is full and contiguous-from-0 only before any eviction;
     when growing, [head = 0] or the buffer has never wrapped, so the
     live prefix is [0, count). *)
  Array.blit r.buffer 0 bigger 0 r.count;
  r.buffer <- bigger;
  r.head <- r.count

let ring_emit r span =
  let size = Array.length r.buffer in
  if r.count = size && size < r.capacity then grow r;
  let size = Array.length r.buffer in
  if r.count = size then r.dropped <- r.dropped + 1 (* evicting the oldest *)
  else r.count <- r.count + 1;
  r.buffer.(r.head) <- Some span;
  r.head <- (r.head + 1) mod size

let of_ring r = { emit = ring_emit r; flush = ignore }

let ring_capacity r = r.capacity
let ring_length r = r.count
let ring_dropped r = r.dropped

let ring_spans r =
  let size = Array.length r.buffer in
  let start = ((r.head - r.count) mod size + size) mod size in
  List.init r.count (fun i ->
      match r.buffer.((start + i) mod size) with
      | Some s -> s
      | None -> assert false)

let ring_clear r =
  Array.fill r.buffer 0 (Array.length r.buffer) None;
  r.head <- 0;
  r.count <- 0;
  r.dropped <- 0
