open Plookup
open Plookup_store

let make ?(default = Service.round_robin 2) () =
  Directory.create ~seed:5 ~n:4 ~default ()

let test_empty () =
  let d = make () in
  Helpers.check_int "no keys" 0 (Directory.key_count d);
  Alcotest.(check (list string)) "keys" [] (Directory.keys d);
  let r = Directory.partial_lookup d ~key:"missing" 3 in
  Helpers.check_int "unknown key empty" 0 (Lookup_result.count r)

let test_place_creates_key () =
  let d = make () in
  Directory.place d ~key:"song" (Helpers.entries 8);
  Alcotest.(check bool) "mem" true (Directory.mem d "song");
  Alcotest.(check (option string)) "default config" (Some "RoundRobin-2")
    (Option.map Service.config_name (Directory.config_of d "song"));
  let r = Directory.partial_lookup d ~key:"song" 3 in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r)

let test_per_key_config () =
  let d = make () in
  Directory.declare ~config:(Service.fixed 3) d "hot";
  Directory.place d ~key:"hot" (Helpers.entries 10);
  Directory.place d ~key:"cold" (Helpers.entries 10);
  Alcotest.(check (option string)) "hot is fixed" (Some "Fixed-3")
    (Option.map Service.config_name (Directory.config_of d "hot"));
  Alcotest.(check (option string)) "cold uses default" (Some "RoundRobin-2")
    (Option.map Service.config_name (Directory.config_of d "cold"))

let test_redeclare_rejected () =
  let d = make () in
  Directory.declare d "k";
  Alcotest.check_raises "redeclare"
    (Invalid_argument "Directory.declare: key \"k\" already exists") (fun () ->
      Directory.declare d "k")

let test_keys_sorted () =
  let d = make () in
  List.iter (fun k -> Directory.place d ~key:k (Helpers.entries 2)) [ "b"; "a"; "c" ];
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (Directory.keys d)

let test_keys_independent () =
  let d = make () in
  Directory.place d ~key:"x" (Helpers.entries 5);
  Directory.place d ~key:"y" (Helpers.entries 5);
  Directory.delete d ~key:"x" (Entry.v 0);
  let rx = Directory.partial_lookup d ~key:"x" 5 in
  let ry = Directory.partial_lookup d ~key:"y" 5 in
  Alcotest.(check bool) "x lost an entry" false (Lookup_result.satisfied rx);
  Alcotest.(check bool) "y unaffected" true (Lookup_result.satisfied ry)

let test_add_to_fresh_key () =
  let d = make () in
  Directory.add d ~key:"new" (Entry.v 7);
  let r = Directory.partial_lookup d ~key:"new" 1 in
  Alcotest.(check (list int)) "finds the added entry" [ 7 ]
    (Helpers.sorted_ids r.Lookup_result.entries)

let test_total_storage () =
  let d = make ~default:Service.full_replication () in
  Directory.place d ~key:"a" (Helpers.entries 3);
  Directory.place d ~key:"b" (Helpers.entries 2);
  (* Full replication on 4 servers: 3*4 + 2*4. *)
  Helpers.check_int "sum over keys" 20 (Directory.total_storage d)

let test_pref_lookup () =
  let d = make ~default:Service.full_replication () in
  Directory.place d ~key:"svc" (Helpers.entries 6);
  let r =
    Directory.partial_lookup_pref d ~key:"svc"
      ~cost:(fun e -> -.float_of_int (Entry.id e))
      2
  in
  Alcotest.(check (list int)) "two most expensive ids (negated cost)" [ 4; 5 ]
    (Helpers.sorted_ids r.Lookup_result.entries)

let test_deterministic () =
  let run () =
    let d = make ~default:(Service.random_server 3) () in
    Directory.place d ~key:"k" (Helpers.entries 12);
    Helpers.sorted_ids (Directory.partial_lookup d ~key:"k" 6).Lookup_result.entries
  in
  Alcotest.(check (list int)) "same seed same answers" (run ()) (run ())

let test_long_keys_get_distinct_streams () =
  (* Regression: the per-key seed must digest the whole key.  A bounded
     or truncating key hash collapses long keys that share a prefix onto
     one RNG stream, making their "random" placements identical. *)
  let prefix = String.make 300 'p' in
  let key i = prefix ^ string_of_int i in
  let d = make ~default:(Service.random_server 2) () in
  let answers =
    List.init 8 (fun i ->
        let k = key i in
        (* Disjoint id ranges per key, so answers are comparable only
           through which slots the per-key rng picked. *)
        Directory.place d ~key:k (List.init 12 (fun j -> Entry.v ((1000 * i) + j)));
        List.sort compare
          (List.map
             (fun e -> Entry.id e mod 1000)
             (Directory.partial_lookup d ~key:k 4).Lookup_result.entries))
  in
  let distinct = List.sort_uniq compare answers in
  Alcotest.(check bool)
    "long shared-prefix keys draw from distinct rng streams" true
    (List.length distinct > 1)

let prop_lookup_only_returns_placed =
  Helpers.qcheck ~count:50 "directory lookups return only that key's entries"
    QCheck2.Gen.(pair (int_range 1 10) (int_range 1 10))
    (fun (ha, hb) ->
      let d = make ~default:(Service.hash 2) () in
      let ea = Helpers.entries ha in
      (* Key b entries use a disjoint id range. *)
      let eb = List.init hb (fun i -> Entry.v (1000 + i)) in
      Directory.place d ~key:"a" ea;
      Directory.place d ~key:"b" eb;
      let r = Directory.partial_lookup d ~key:"a" ha in
      List.for_all (fun e -> Entry.id e < 1000) r.Lookup_result.entries)

let () =
  Helpers.run "directory"
    [ ( "directory",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "place creates key" `Quick test_place_creates_key;
          Alcotest.test_case "per-key config" `Quick test_per_key_config;
          Alcotest.test_case "redeclare rejected" `Quick test_redeclare_rejected;
          Alcotest.test_case "keys sorted" `Quick test_keys_sorted;
          Alcotest.test_case "keys independent" `Quick test_keys_independent;
          Alcotest.test_case "add to fresh key" `Quick test_add_to_fresh_key;
          Alcotest.test_case "total storage" `Quick test_total_storage;
          Alcotest.test_case "pref lookup" `Quick test_pref_lookup;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "long keys distinct" `Quick
            test_long_keys_get_distinct_streams;
          prop_lookup_only_returns_placed ] ) ]
