open Plookup_util
open Plookup_store
module Update_gen = Plookup_workload.Update_gen

let generate ?(seed = 1) ?(updates = 500) ?(tail_heavy = false) ?(h = 50) () =
  Update_gen.generate (Rng.create seed)
    { Update_gen.steady_entries = h; add_period = 10.; tail_heavy; updates }

let test_initial_population () =
  let stream = generate ~h:50 () in
  Helpers.check_int "initial size" 50 (List.length stream.Update_gen.initial);
  Alcotest.(check (list int)) "dense ids" (List.init 50 Fun.id)
    (Helpers.sorted_ids stream.Update_gen.initial)

let test_event_count () =
  let stream = generate ~updates:500 () in
  Helpers.check_int "exactly the requested updates" 500
    (List.length stream.Update_gen.events)

let test_events_sorted () =
  let stream = generate ~updates:1000 () in
  let rec check = function
    | { Update_gen.time = t1; _ } :: ({ Update_gen.time = t2; _ } :: _ as rest) ->
      if t1 > t2 then Alcotest.fail "events out of order" else check rest
    | _ -> ()
  in
  check stream.Update_gen.events

let test_no_delete_before_add () =
  let stream = generate ~updates:2000 () in
  let born = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace born (Entry.id e) ()) stream.Update_gen.initial;
  List.iter
    (fun ev ->
      match ev.Update_gen.op with
      | Update_gen.Add e -> Hashtbl.replace born (Entry.id e) ()
      | Update_gen.Delete e ->
        if not (Hashtbl.mem born (Entry.id e)) then
          Alcotest.failf "delete of unborn entry %d" (Entry.id e))
    stream.Update_gen.events

let test_no_double_delete () =
  let stream = generate ~updates:2000 () in
  let deleted = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match ev.Update_gen.op with
      | Update_gen.Delete e ->
        if Hashtbl.mem deleted (Entry.id e) then
          Alcotest.failf "entry %d deleted twice" (Entry.id e);
        Hashtbl.replace deleted (Entry.id e) ()
      | Update_gen.Add _ -> ())
    stream.Update_gen.events

let test_steady_state_population () =
  (* Live count should hover around h through the stream. *)
  let h = 100 in
  let stream = generate ~seed:3 ~h ~updates:4000 () in
  let live = ref (List.length stream.Update_gen.initial) in
  let acc = Stats.Accum.create () in
  List.iter
    (fun ev ->
      (match ev.Update_gen.op with
      | Update_gen.Add _ -> incr live
      | Update_gen.Delete _ -> decr live);
      Stats.Accum.add acc (float_of_int !live))
    stream.Update_gen.events;
  Helpers.roughly ~rel:0.15 "mean live ~ h" (float_of_int h) (Stats.Accum.mean acc)

let test_add_rate () =
  (* Adds arrive once per add_period on average: over the horizon the
     add count and elapsed time agree. *)
  let stream = generate ~seed:4 ~updates:4000 () in
  let adds =
    List.length
      (List.filter
         (fun ev -> match ev.Update_gen.op with Update_gen.Add _ -> true | _ -> false)
         stream.Update_gen.events)
  in
  let horizon =
    match List.rev stream.Update_gen.events with
    | last :: _ -> last.Update_gen.time
    | [] -> 0.
  in
  Helpers.roughly ~rel:0.1 "adds ~ horizon / period" (horizon /. 10.) (float_of_int adds)

let test_zipf_stream_differs () =
  let exp_stream = generate ~seed:5 ~tail_heavy:false () in
  let zipf_stream = generate ~seed:5 ~tail_heavy:true () in
  let times s = List.map (fun ev -> ev.Update_gen.time) s.Update_gen.events in
  Alcotest.(check bool) "different delete schedules" true
    (times exp_stream <> times zipf_stream)

let test_live_after () =
  let stream = generate ~h:10 ~updates:50 () in
  let live0 = Update_gen.live_after stream 0 in
  Alcotest.(check (list int)) "live at 0 = initial" (List.init 10 Fun.id)
    (Helpers.sorted_ids live0);
  (* Applying events by hand must agree at every prefix. *)
  let table = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace table (Entry.id e) ()) stream.Update_gen.initial;
  List.iteri
    (fun i ev ->
      (match ev.Update_gen.op with
      | Update_gen.Add e -> Hashtbl.replace table (Entry.id e) ()
      | Update_gen.Delete e -> Hashtbl.remove table (Entry.id e));
      let expected = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) table []) in
      let got = Helpers.sorted_ids (Update_gen.live_after stream (i + 1)) in
      if expected <> got then Alcotest.failf "live_after mismatch at %d" (i + 1))
    stream.Update_gen.events

let test_default_spec () =
  Helpers.check_int "paper default h" 100 Update_gen.default_spec.Update_gen.steady_entries;
  Helpers.close "paper default period" 10. Update_gen.default_spec.Update_gen.add_period;
  Helpers.check_int "paper default updates" 10000 Update_gen.default_spec.Update_gen.updates

let test_validation () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "h = 0" (Invalid_argument "Update_gen.generate: steady_entries")
    (fun () ->
      ignore
        (Update_gen.generate rng
           { Update_gen.steady_entries = 0; add_period = 1.; tail_heavy = false; updates = 1 }))

let prop_event_count_exact =
  Helpers.qcheck ~count:30 "streams have exactly the requested updates"
    QCheck2.Gen.(pair int (int_range 0 300))
    (fun (seed, updates) ->
      let stream = generate ~seed ~updates () in
      List.length stream.Update_gen.events = updates)

let prop_ids_unique =
  Helpers.qcheck ~count:20 "every add introduces a fresh id"
    QCheck2.Gen.int
    (fun seed ->
      let stream = generate ~seed ~updates:500 () in
      let ids =
        List.filter_map
          (fun ev ->
            match ev.Update_gen.op with
            | Update_gen.Add e -> Some (Entry.id e)
            | Update_gen.Delete _ -> None)
          stream.Update_gen.events
      in
      List.length ids = List.length (List.sort_uniq compare ids))

let () =
  Helpers.run "workload"
    [ ( "update_gen",
        [ Alcotest.test_case "initial population" `Quick test_initial_population;
          Alcotest.test_case "event count" `Quick test_event_count;
          Alcotest.test_case "sorted" `Quick test_events_sorted;
          Alcotest.test_case "no delete before add" `Quick test_no_delete_before_add;
          Alcotest.test_case "no double delete" `Quick test_no_double_delete;
          Alcotest.test_case "steady state" `Quick test_steady_state_population;
          Alcotest.test_case "add rate" `Quick test_add_rate;
          Alcotest.test_case "zipf differs" `Quick test_zipf_stream_differs;
          Alcotest.test_case "live_after" `Quick test_live_after;
          Alcotest.test_case "default spec" `Quick test_default_spec;
          Alcotest.test_case "validation" `Quick test_validation;
          prop_event_count_exact;
          prop_ids_unique ] ) ]
