(** MultiProbe-YxK: multi-probe consistent hashing — one ring point per
    server, no virtual nodes.

    A single-point ring suffers O(log n) peak/mean load skew because arc
    lengths vary wildly.  Virtual nodes fix that with n*log n ring
    points; multi-probe hashing fixes it from the key side instead: an
    entry is hashed [k] independent times, each probe finds its
    clockwise successor server, and the probe landing closest wins.  A
    server with a long arc only captures keys all [k] probes agree on,
    so skew falls like 1 + O(1/k) with {e no} extra ring memory — the
    right trade at tens of thousands of servers.  Replication is
    Chord-style: the entry lives on [min y n] consecutive distinct
    successors starting at the winning server.

    Registered in {!Strategy_registry} as ["MultiProbe"] (keys
    [multiprobe], [mpch]), parameters [[y; k]] spelled
    [multiprobe-YxK]. *)

open Plookup_store

type t

val create : Cluster.t -> y:int -> k:int -> t
(** Bind the strategy to the cluster (installing its handler).  [y] is
    clamped to [n].  Raises [Invalid_argument] when [y < 1] or
    [k < 1]. *)

val y : t -> int
val k : t -> int
val cluster : t -> Cluster.t

val servers_of : t -> Entry.t -> int list
(** The entry's [min y n] owners: the winning probe's successor and the
    following ring successors, in ring order. *)

val place : ?budget:int -> t -> Entry.t list -> unit
(** Round-major placement: every entry's first owner gets a copy before
    any entry's second, so a [budget] cut keeps coverage maximal. *)

val add : t -> Entry.t -> unit
val delete : t -> Entry.t -> unit
val partial_lookup : ?reachable:(int -> bool) -> t -> int -> Lookup_result.t

val check_invariants : t -> placed:Entry.t list -> (unit, string) result
(** Every server holds exactly the entries whose owner list names it,
    given [placed] is the current live set. *)

module Strategy : Strategy_intf.S with type t = t
