type record = { time : float; label : string; detail : string }

type t = {
  capacity : int;
  buffer : record option array;
  mutable head : int; (* next write slot *)
  mutable count : int;
  mutable enabled : bool;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buffer = Array.make capacity None; head = 0; count = 0; enabled = false }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let record t ~time ~label detail =
  if t.enabled then begin
    t.buffer.(t.head) <- Some { time; label; detail };
    t.head <- (t.head + 1) mod t.capacity;
    t.count <- min t.capacity (t.count + 1)
  end

let records t =
  let start = (t.head - t.count + t.capacity) mod t.capacity in
  List.init t.count (fun i ->
      match t.buffer.((start + i) mod t.capacity) with
      | Some r -> r
      | None -> assert false)

let length t = t.count

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.head <- 0;
  t.count <- 0

let pp_record ppf r = Format.fprintf ppf "[%10.3f] %-16s %s" r.time r.label r.detail

let dump t =
  let buf = Buffer.create 256 in
  List.iter
    (fun r -> Buffer.add_string buf (Format.asprintf "%a\n" pp_record r))
    (records t);
  Buffer.contents buf
