open Plookup
open Plookup_util
module FT = Plookup_metrics.Fault_tolerance
module Analytic = Plookup_metrics.Analytic

let placement_of_lists capacity lists =
  Array.of_list (List.map (Bitset.of_list capacity) lists)

let test_full_replication_tolerance () =
  let p = placement_of_lists 4 [ [ 0; 1; 2; 3 ]; [ 0; 1; 2; 3 ]; [ 0; 1; 2; 3 ] ] in
  Helpers.check_int "greedy n-1" 2 (FT.greedy p ~t:4);
  Helpers.check_int "exact n-1" 2 (FT.exact p ~t:4)

let test_single_point_of_failure () =
  (* Entry 2 only on server 0: one failure breaks t=3. *)
  let p = placement_of_lists 3 [ [ 0; 1; 2 ]; [ 0; 1 ]; [ 0; 1 ] ] in
  Helpers.check_int "greedy" 0 (FT.greedy p ~t:3);
  Helpers.check_int "exact" 0 (FT.exact p ~t:3);
  (* But t=2 survives until all three die. *)
  Helpers.check_int "t=2 greedy" 2 (FT.greedy p ~t:2);
  Helpers.check_int "t=2 exact" 2 (FT.exact p ~t:2)

let test_unsatisfiable_target () =
  let p = placement_of_lists 5 [ [ 0 ]; [ 1 ] ] in
  Helpers.check_int "greedy -1" (-1) (FT.greedy p ~t:3);
  Helpers.check_int "exact -1" (-1) (FT.exact p ~t:3)

let test_round_robin_matches_formula () =
  let n = 10 and h = 100 in
  List.iter
    (fun (y, t) ->
      let service, _ = Helpers.placed_service ~n ~h (Service.round_robin y) in
      let p = FT.snapshot (Service.cluster service) ~capacity:h in
      Helpers.check_int
        (Printf.sprintf "round-%d t=%d" y t)
        (Analytic.fault_tolerance_round_robin ~n ~h ~y ~t)
        (FT.greedy p ~t))
    [ (1, 10); (1, 30); (1, 50); (2, 10); (2, 25); (2, 50); (3, 40) ]

let test_greedy_picks_most_important_first () =
  (* Server 0 holds the only copy of entries 3 and 4: it is the most
     "endangered" and must fall first. *)
  let p = placement_of_lists 5 [ [ 0; 3; 4 ]; [ 0; 1; 2 ]; [ 1; 2; 0 ] ] in
  (match FT.greedy_failure_order p with
  | first :: _ -> Helpers.check_int "server 0 first" 0 first
  | [] -> Alcotest.fail "no failure order");
  Helpers.check_int "order covers all servers" 3 (List.length (FT.greedy_failure_order p))

let test_validation () =
  let p = placement_of_lists 2 [ [ 0 ] ] in
  Alcotest.check_raises "t = 0" (Invalid_argument "Fault_tolerance.greedy: t must be positive")
    (fun () -> ignore (FT.greedy p ~t:0))

let test_snapshot_reflects_stores () =
  let service, _ = Helpers.placed_service ~n:4 ~h:8 (Service.round_robin 1) in
  let p = FT.snapshot (Service.cluster service) ~capacity:8 in
  Helpers.check_int "4 bitsets" 4 (Array.length p);
  Alcotest.(check (list int)) "server 0 entries" [ 0; 4 ] (Bitset.to_list p.(0))

(* Random placements: greedy never reports more tolerance than breaking
   is actually possible, and never less than the exact optimum minus
   zero (greedy is an upper bound on tolerance). *)
let random_placement rng ~servers ~entries =
  List.init servers (fun _ ->
      List.filter (fun _ -> Rng.bool rng) (List.init entries Fun.id))
  |> placement_of_lists entries

let prop_greedy_at_least_exact =
  Helpers.qcheck ~count:60 "greedy tolerance >= exact tolerance"
    QCheck2.Gen.(triple int (int_range 2 6) (int_range 1 8))
    (fun (seed, servers, t) ->
      let rng = Rng.create seed in
      let p = random_placement rng ~servers ~entries:10 in
      let g = FT.greedy p ~t and e = FT.exact p ~t in
      (g = -1 && e = -1) || g >= e)

let prop_exact_within_bounds =
  Helpers.qcheck ~count:60 "exact tolerance in [-1, servers-1]"
    QCheck2.Gen.(pair int (int_range 1 5))
    (fun (seed, servers) ->
      let rng = Rng.create seed in
      let p = random_placement rng ~servers ~entries:8 in
      let e = FT.exact p ~t:3 in
      e >= -1 && e <= servers - 1)

let prop_greedy_monotone_in_t =
  Helpers.qcheck ~count:40 "tolerance non-increasing in t"
    QCheck2.Gen.int
    (fun seed ->
      let rng = Rng.create seed in
      let p = random_placement rng ~servers:5 ~entries:10 in
      let values = List.map (fun t -> FT.greedy p ~t) [ 1; 3; 5; 8 ] in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | _ -> true
      in
      (* -1 means "never satisfiable" and only appears at the large-t
         end, which is consistent with non-increasing. *)
      non_increasing values)

let () =
  Helpers.run "fault_tolerance"
    [ ( "fault_tolerance",
        [ Alcotest.test_case "full replication" `Quick test_full_replication_tolerance;
          Alcotest.test_case "single point of failure" `Quick test_single_point_of_failure;
          Alcotest.test_case "unsatisfiable" `Quick test_unsatisfiable_target;
          Alcotest.test_case "round-robin formula" `Quick test_round_robin_matches_formula;
          Alcotest.test_case "greedy order" `Quick test_greedy_picks_most_important_first;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "snapshot" `Quick test_snapshot_reflects_stores;
          prop_greedy_at_least_exact;
          prop_exact_within_bounds;
          prop_greedy_monotone_in_t ] ) ]
