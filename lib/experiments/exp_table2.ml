open Plookup_util
open Plookup_store
module Service = Plookup.Service
module Metrics = Plookup_metrics
module Update_gen = Plookup_workload.Update_gen
module Replay = Plookup_workload.Replay

let id = "table2"
let title = "Table 2: strategy scorecard (measured, h=100 n=10 budget=200 t=35)"

let messages_per_update ctx ~obs ~n ~h ~config ~updates ~runs =
  let seeds = Array.init runs (fun i -> Ctx.run_seed ctx ((i + 1) * 37)) in
  let measure ~obs seed =
    let stream =
      Update_gen.generate (Rng.create seed)
        { Update_gen.steady_entries = h; add_period = 10.; tail_heavy = false; updates }
    in
    let service = Service.create ~seed ~obs ~n config in
    let msgs = Replay.messages_for_updates ~service ~stream in
    float_of_int msgs /. float_of_int updates
  in
  let shards = ctx.Ctx.shards in
  let samples =
    if shards <= 1 then Array.map (measure ~obs) seeds
    else begin
      (* Same replicate decomposition, spread over the shard workers:
         seeds are fixed above, each worker reports into its own obs
         child, and children merge back in input order — byte-identical
         to the sequential map (DESIGN.md, "Parallelism"). *)
      let pairs =
        Pool.map ~jobs:shards
          (fun seed ->
            let child = Plookup_obs.Obs.child obs in
            (measure ~obs:child seed, child))
          seeds
      in
      Array.map
        (fun (sample, child) ->
          Plookup_obs.Obs.merge obs child;
          sample)
        pairs
    end
  in
  Runner.mean_of samples

(* Turn measured columns into 1..4 star ranks over the four partial
   strategies (the paper's Table 2 omits full replication), ties sharing
   the better rank. *)
let stars_of_measurements rows =
  (* rows: (name, metric values) with a per-metric "lower is better"
     flag threaded separately. *)
  let rank ~lower_better values =
    let sorted =
      List.sort_uniq compare (if lower_better then values else List.map Float.neg values)
    in
    List.map
      (fun v ->
        let key = if lower_better then v else -.v in
        let position =
          match List.find_index (fun s -> Float.abs (s -. key) < 1e-9) sorted with
          | Some i -> i
          | None -> List.length sorted - 1
        in
        (* Best position -> 4 stars, worst -> at least 1. *)
        max 1 (4 - position))
      values
  in
  let columns =
    [ ("storage", true); ("coverage", false); ("fault tol", false);
      ("lookup cost", true); ("unfairness", true); ("msgs/update", true) ]
  in
  let table =
    Table.create ~title:"Table 2 (derived): star ranks computed from the measurements above"
      ~columns:("strategy" :: List.map fst columns)
  in
  let metric_count = List.length columns in
  let star_lists =
    List.mapi
      (fun metric (_, lower_better) ->
        rank ~lower_better (List.map (fun (_, values) -> List.nth values metric) rows))
      columns
  in
  List.iteri
    (fun row_index (name, _) ->
      Table.add_row table
        (Table.S name
        :: List.init metric_count (fun metric ->
               Table.S (String.make (List.nth (List.nth star_lists metric) row_index) '*'))))
    rows;
  table

let measure_rows ?(n = 10) ?(h = 100) ?(budget = 200) ?(t = 35) ctx =
  let runs = Ctx.scaled ctx 20 in
  let configs = Array.of_list (Service.all_configs ~budget ~n ~h ()) in
  (* One parallel unit per strategy ([--jobs] axis); within each cell
     the instance loops of the measured metrics are spread over the
     [--shards] workers.  All seeds derive from the context alone, so
     results do not depend on evaluation order on either axis. *)
  let shards = ctx.Ctx.shards in
  let rows =
    Runner.map_obs ctx ~count:(Array.length configs) (fun index ~obs ->
        let config = configs.(index) in
      let seed = Ctx.run_seed ctx 1 in
      (* Static metrics on one representative placement family. *)
      let coverage =
        fst
          (Metrics.Coverage.measured_over_instances ~seed ~obs ~shards ~n ~entries:h
             ~config ~runs ())
      in
      let fault_tol =
        fst
          (Metrics.Fault_tolerance.measure_over_instances ~seed ~obs ~shards ~n
             ~entries:h ~config ~t ~runs ())
      in
      let lookup =
        Metrics.Lookup_cost.measure_over_instances ~seed ~obs ~shards ~n ~entries:h
          ~config ~t
          ~runs:(max 1 (runs / 2))
          ~lookups_per_run:(Ctx.scaled ctx 200) ()
      in
      let unfairness =
        fst
          (Metrics.Unfairness.of_strategy ~seed ~obs ~shards ~n ~entries:h ~config ~t
             ~instances:(max 1 (runs / 4))
             ~lookups_per_instance:(Ctx.scaled ctx 2000) ())
      in
      let storage =
        let service = Service.create ~seed ~obs ~n config in
        let gen = Entry.Gen.create () in
        Service.place service (Entry.Gen.batch gen h);
        Metrics.Storage.measured (Service.cluster service)
      in
      let msgs =
        messages_per_update ctx ~obs ~n ~h ~config ~updates:(Ctx.scaled ctx 2000)
          ~runs:(max 1 (runs / 4))
      in
        ( Service.config_name config,
          [ float_of_int storage; coverage; fault_tol;
            lookup.Metrics.Lookup_cost.mean_cost; unfairness; msgs ] ))
  in
  Array.to_list rows

let measured_table rows =
  let table =
    Table.create ~title
      ~columns:
        [ "strategy"; "storage"; "coverage"; "fault tol"; "lookup cost"; "unfairness";
          "msgs/update" ]
  in
  List.iter
    (fun (name, values) ->
      match values with
      | [ storage; coverage; fault_tol; lookup_cost; unfairness; msgs ] ->
        Table.add_row table
          [ Table.S name;
            Table.I (int_of_float storage);
            Table.F coverage;
            Table.F fault_tol;
            Table.F lookup_cost;
            Table.F4 unfairness;
            Table.F msgs ]
      | _ -> invalid_arg "Exp_table2: malformed row")
    rows;
  table

let run ?n ?h ?budget ?t ctx = measured_table (measure_rows ?n ?h ?budget ?t ctx)

let run_full ?n ?h ?budget ?t ctx =
  let rows = measure_rows ?n ?h ?budget ?t ctx in
  (* The paper's Table 2 ranks the four partial strategies; drop the
     full-replication baseline row before deriving stars. *)
  let partial = List.filter (fun (name, _) -> name <> "FullReplication") rows in
  (measured_table rows, stars_of_measurements partial)

let paper_stars =
  let table =
    Table.create ~title:"Table 2 (paper): informal star summary, 4 stars = best"
      ~columns:
        [ "strategy";
          "storage few";
          "storage many";
          "coverage";
          "fault tol";
          "fairness few upd";
          "fairness many upd";
          "lookup cost";
          "overhead small t";
          "overhead large t" ]
  in
  let s = Table.(fun v -> S v) in
  List.iter (Table.add_row table)
    [ [ s "Fixed-x"; s "****"; s "****"; s "*"; s "****"; s "*"; s "*"; s "****"; s "****";
        s "**" ];
      [ s "RandomServer-x"; s "****"; s "****"; s "***"; s "***"; s "***"; s "*"; s "***";
        s "**"; s "**" ];
      [ s "Round-y"; s "****"; s "**"; s "****"; s "***"; s "****"; s "****"; s "****";
        s "*"; s "*" ];
      [ s "Hash-y"; s "****"; s "**"; s "****"; s "**"; s "**"; s "***"; s "**"; s "***";
        s "****" ] ];
  table
