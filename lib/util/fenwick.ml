(* Binary indexed tree over non-negative integer counts, with an
   O(log n) order-statistic [select].  The tree array is 1-based
   internally (the classic Fenwick layout); the public API is 0-based.

   [mask] is the largest power of two <= capacity, precomputed so
   [select] can walk the implicit tree top-down without re-deriving it
   per call. *)

type t = { tree : int array; capacity : int; mask : int; mutable total : int }

let create capacity =
  if capacity < 0 then invalid_arg "Fenwick.create: negative capacity";
  let mask =
    let m = ref 1 in
    while !m * 2 <= capacity do
      m := !m * 2
    done;
    if capacity = 0 then 0 else !m
  in
  { tree = Array.make (capacity + 1) 0; capacity; mask; total = 0 }

let capacity t = t.capacity
let total t = t.total

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Fenwick: index out of bounds"

let add t i delta =
  check t i;
  t.total <- t.total + delta;
  let i = ref (i + 1) in
  while !i <= t.capacity do
    t.tree.(!i) <- t.tree.(!i) + delta;
    i := !i + (!i land - !i)
  done

(* Sum of counts at indices [0, i). *)
let prefix t i =
  if i < 0 || i > t.capacity then invalid_arg "Fenwick.prefix: index out of bounds";
  let acc = ref 0 in
  let i = ref i in
  while !i > 0 do
    acc := !acc + t.tree.(!i);
    i := !i - (!i land - !i)
  done;
  !acc

let get t i = prefix t (i + 1) - prefix t i

(* Smallest index [i] with [prefix t (i + 1) > k]: the 0-based position
   of the (k+1)-th unit of count.  With 0/1 counts this is "the k-th
   smallest present index", which is exactly the contract
   [List.nth (sorted elements) k] gives — the drop-in for the O(n)
   list scans this module replaces. *)
let select t k =
  if k < 0 || k >= t.total then invalid_arg "Fenwick.select: rank out of range";
  let pos = ref 0 in
  let remaining = ref k in
  let step = ref t.mask in
  while !step > 0 do
    let next = !pos + !step in
    if next <= t.capacity && t.tree.(next) <= !remaining then begin
      remaining := !remaining - t.tree.(next);
      pos := next
    end;
    step := !step / 2
  done;
  !pos
