(** Binary wire encoding for the service protocol.

    The simulator delivers {!Msg.t} values in memory, but a deployable
    lookup service speaks bytes.  This codec defines the wire format —
    length-prefixed frames, little-endian fixed-width integers, varint
    entry counts — and is its own inverse, so the same servers could be
    run over real sockets without touching strategy code.

    Frame layout: [tag:u8] [body], where the body encodes entries as
    [count:varint] followed by per-entry [id:varint]
    [payload_len:varint] [payload bytes] (payload_len 0 = no payload;
    a payload of length 0 is distinguished by length 1 + empty marker —
    see {!encode_entry}).  Decoding is total: malformed input yields
    [Error], never an exception. *)

open Plookup_store

val encode : Msg.t -> string
val decode : string -> (Msg.t, string) result

val encode_reply : Msg.reply -> string
val decode_reply : string -> (Msg.reply, string) result

val encode_entry : Buffer.t -> Entry.t -> unit
val decode_entry : string -> pos:int -> (Entry.t * int, string) result
(** [decode_entry s ~pos] reads one entry starting at [pos], returning
    it with the position after it. *)

val frame : string -> string
(** Prefix with a u32 length, for streaming transports. *)

val unframe : string -> pos:int -> (string * int, string) result
(** Read one length-prefixed frame at [pos]; returns the body and the
    position after the frame. *)
