(** Latency-aware asynchronous lookup client.

    The synchronous probes in {!Probe} measure *how many* servers a
    lookup touches; this client runs the same probing disciplines over a
    network with per-hop latency and real request/response timing on the
    simulation engine, so experiments can measure *how long* lookups
    take — including the paper's Section-6.2 failure masking, where a
    client whose contact never answers simply retries elsewhere after a
    timeout.

    Waves generalize both probing styles: [wave = 1] is sequential
    probing (each contact waits for the previous answer), a larger wave
    fires that many requests concurrently — the Round-Robin parallel
    client of Section 3.5 sets the wave to its predicted contact count.

    The client is robust to a faulty network ({!Plookup_net.Net}
    fault injection): a contact whose request or reply is lost times
    out and is retried against the *same* server up to [retries] times
    with exponentially backed-off timeouts before the client moves on to
    the next server in its order, and fault-injected duplicate replies
    are suppressed (counted, not double-merged).

    The client holds no global clock or threads: it is a callback state
    machine driven entirely by {!Plookup_sim.Engine} events, like every
    other component of the simulator. *)


type outcome = {
  result : Lookup_result.t;
      (** [servers_contacted] counts distinct servers sent at least one
          request — counted at send time, so timed-out contacts are
          included in the lookup-cost metric. *)
  started_at : float;
  completed_at : float;  (** engine time when the target was met or the order exhausted *)
  attempts : int;  (** total requests sent, including retries *)
  retries : int;  (** re-sends to a server whose previous attempt timed out *)
  timeouts : int;  (** attempts abandoned after no reply (every expiry counts) *)
  duplicates : int;  (** fault-injected duplicate replies suppressed *)
}

val elapsed : outcome -> float

val lookup :
  Cluster.t ->
  Plookup_sim.Engine.t ->
  latency:(unit -> float) ->
  timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  order:int list ->
  ?wave:int ->
  t:int ->
  (outcome -> unit) ->
  unit
(** Schedule an asynchronous [partial_lookup t] probing the servers of
    [order] (duplicates ignored).  Each contact costs one request and
    one reply latency draw; an attempt that has not answered within its
    timeout is retried against the same server — with the timeout
    multiplied by [backoff] (default 2.0, must be >= 1) — up to
    [retries] times (default 0, i.e. at most one attempt per server);
    once a contact's attempts are exhausted the next server in [order]
    is tried.  [wave] (default 1) contacts run concurrently at all
    times until the target is met.  The callback fires exactly once,
    with the merged (and target-truncated) result.  Requires positive
    [t], [timeout] and [wave], and non-negative [retries]. *)

val lookup_random_order :
  Cluster.t ->
  Plookup_sim.Engine.t ->
  latency:(unit -> float) ->
  timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?wave:int ->
  t:int ->
  (outcome -> unit) ->
  unit
(** {!lookup} over all servers in uniformly random order (the
    RandomServer-x / Hash-y client). *)
