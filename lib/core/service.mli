(** The partial lookup service: one key, [h] entries, [n] servers, one of
    the paper's five placement strategies behind a single interface.

    This is the public entry point of the library.  A service owns a
    {!Cluster} and dispatches [place]/[add]/[delete]/[partial_lookup] to
    the configured strategy.  Multi-key deployments are, as the paper
    notes (Section 2), a family of independent single-key services —
    see {!Directory} for that generalization. *)

open Plookup_store

type config =
  | Full_replication
  | Fixed of int  (** [Fixed x]: replicate the same x entries everywhere *)
  | Random_server of int  (** [Random_server x]: random x-subset per server *)
  | Random_server_replacing of int
      (** The Section-5.3 replacement-on-delete variant (ablation). *)
  | Round_robin of int  (** [Round_robin y]: y consecutive copies per entry *)
  | Round_robin_replicated of int * int
      (** [Round_robin_replicated (y, k)]: Round-Robin-y with the
          head/tail coordinator replicated on k servers (the paper's
          footnote 1; see {!Round_robin.create}).  Named
          ["RoundRobinHA-YxK"]. *)
  | Hash of int  (** [Hash y]: y hash functions place each entry *)

val config_name : config -> string
(** E.g. ["Fixed-20"], ["Hash-2"] — the paper's naming. *)

val config_of_string : string -> (config, string) result
(** Inverse of {!config_name}, case-insensitive; accepts e.g.
    ["fixed-20"], ["roundrobin-2"], ["round-2"], ["full"]. *)

val param : config -> int option
(** The x or y parameter, if the strategy has one. *)

val storage_for_budget : config -> n:int -> h:int -> total:int -> config
(** Re-parameterize the strategy so its Table-1 storage cost fits a
    total budget of [total] entry slots when managing [h] entries on [n]
    servers: Fixed/RandomServer get [x = total / n], Round/Hash get
    [y = max 1 (total / h)].  This is how the paper derives the
    "comparable overhead" configurations (e.g. budget 200 with h=100,
    n=10 gives x=20, y=2). *)

type t

val create : ?seed:int -> ?repair:Repair.config -> n:int -> config -> t
(** Build a fresh cluster of [n] servers running the strategy.

    [repair] (default {!Repair.disabled}) activates the self-healing
    layer: with any mode other than [Off], the strategy handler is
    wrapped by a {!Repair.t} built with the placement plan matching the
    strategy (Mirror for Full/Fixed, Free for RandomServer, Assigned for
    Round-Robin/Hash), and Round-Robin's full-push store resync is
    replaced by the incremental digest sync. *)

val of_cluster : ?repair:Repair.config -> Cluster.t -> config -> t
(** Run the strategy on an existing cluster (rebinding its network
    handler).  Used by experiments that inject failures between place
    and lookup. *)

val cluster : t -> Cluster.t
val config : t -> config
val name : t -> string
val n : t -> int

val repair : t -> Repair.t option
(** The repair layer, when one was activated at construction. *)

val place : ?budget:int -> t -> Entry.t list -> unit
(** Initial batch placement.  [budget] caps total stored copies and is
    honoured by Round-Robin and Hash (the Fig. 6 "inadequate storage"
    regime); the other strategies bound storage through their own
    parameter and ignore it. *)

val add : t -> Entry.t -> unit
val delete : t -> Entry.t -> unit

val can_update : t -> bool
(** Whether an [add]/[delete] issued now would be accepted by the
    strategy: for Round-Robin, a coordinator replica is up (and the
    placement was not truncated); for the others, any server is up.
    When false the update would vanish without a trace — a real client
    would observe the missing reply, so workloads use this to model
    failing fast instead of silently losing writes. *)

val partial_lookup : ?reachable:(int -> bool) -> t -> int -> Lookup_result.t
(** [partial_lookup t target]: retrieve at least [target] distinct
    entries, contacting as few servers as the strategy allows.
    [reachable] restricts which servers this client may contact
    (Section 7.2). *)

val partial_lookup_pref :
  ?reachable:(int -> bool) -> t -> cost:(Entry.t -> float) -> int -> Lookup_result.t
(** Client-preference lookups (Section 7.1): contact servers as usual
    but keep collecting answers from *every* reachable server, then
    return the [target] entries with the lowest [cost].  The result's
    [servers_contacted] reflects the exhaustive probe. *)

val all_configs : budget:int -> n:int -> h:int -> config list
(** The five strategies parameterized for a common storage budget —
    convenient for comparison tables. *)
