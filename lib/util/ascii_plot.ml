type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let bounds series =
  let all = List.concat_map (fun s -> s.points) series in
  match all with
  | [] -> invalid_arg "Ascii_plot.render: no data points"
  | (x0, y0) :: rest ->
    List.fold_left
      (fun (xlo, xhi, ylo, yhi) (x, y) ->
        (Float.min xlo x, Float.max xhi x, Float.min ylo y, Float.max yhi y))
      (x0, x0, y0, y0) rest

(* Pad a degenerate range so every point maps to a cell. *)
let pad (lo, hi) = if hi -. lo < 1e-12 then (lo -. 1., hi +. 1.) else (lo, hi)

let render ?(width = 64) ?(height = 16) ?(x_label = "") ?(y_label = "") series =
  if width <= 0 || height <= 0 then invalid_arg "Ascii_plot.render: bad dimensions";
  let xlo, xhi, ylo, yhi = bounds series in
  let xlo, xhi = pad (xlo, xhi) and ylo, yhi = pad (ylo, yhi) in
  let grid = Array.make_matrix height width ' ' in
  let cell_of x y =
    let fx = (x -. xlo) /. (xhi -. xlo) in
    let fy = (y -. ylo) /. (yhi -. ylo) in
    let col = min (width - 1) (int_of_float (fx *. float_of_int (width - 1) +. 0.5)) in
    let row =
      height - 1 - min (height - 1) (int_of_float (fy *. float_of_int (height - 1) +. 0.5))
    in
    (row, col)
  in
  List.iteri
    (fun i s ->
      let glyph = glyphs.(i mod Array.length glyphs) in
      List.iter
        (fun (x, y) ->
          let row, col = cell_of x y in
          if grid.(row).(col) = ' ' then grid.(row).(col) <- glyph)
        s.points)
    series;
  let buf = Buffer.create ((width + 12) * (height + 4)) in
  if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
  Array.iteri
    (fun row line ->
      let label =
        if row = 0 then Printf.sprintf "%10.2f " yhi
        else if row = height - 1 then Printf.sprintf "%10.2f " ylo
        else String.make 11 ' '
      in
      Buffer.add_string buf label;
      Buffer.add_char buf '|';
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 11 ' ' ^ "+" ^ String.make width '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%10.2f %-*s%10.2f\n" xlo (width - 9) "" xhi);
  if x_label <> "" then
    Buffer.add_string buf (String.make 12 ' ' ^ x_label ^ "\n");
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "%11s%c = %s\n" "" glyphs.(i mod Array.length glyphs) s.label))
    series;
  Buffer.contents buf

let numeric_cell = function
  | Table.I v -> Some (float_of_int v)
  | Table.F v | Table.F4 v -> Some v
  | Table.S _ -> None

let column_values table name =
  match List.find_index (String.equal name) (Table.columns table) with
  | None -> Error (Printf.sprintf "no column %S" name)
  | Some idx ->
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | row :: rest -> (
        match numeric_cell (List.nth row idx) with
        | Some v -> collect (v :: acc) rest
        | None -> Error (Printf.sprintf "column %S has non-numeric cells" name))
    in
    collect [] (Table.rows table)

let of_table ?width ?height ~x ~columns table =
  let ( let* ) = Result.bind in
  let* xs = column_values table x in
  let* series =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* ys = column_values table name in
        Ok ({ label = name; points = List.combine xs ys } :: acc))
      (Ok []) columns
  in
  if xs = [] then Error "table has no rows"
  else Ok (render ?width ?height ~x_label:x (List.rev series))
