(** Storage cost (Section 4.1): the combined number of entries stored on
    all servers.  Entries are assumed equal-sized, so a count is the
    cost. *)

val measured : Plookup.Cluster.t -> int
(** Sum of every server's store size (up or down — the space is spent
    either way). *)

val per_server : Plookup.Cluster.t -> int array

val imbalance : Plookup.Cluster.t -> int
(** max - min entries over servers.  Round-y guarantees this is at most
    y; Hash-y gives no bound — the source of its extra lookup cost. *)
