(** Hotspot-adversarial access pattern (ROADMAP open item).

    The production-day experiment samples its key ranks from an
    independent Zipf law, which spreads even the popular keys' probe
    traffic across each key's own probe order.  An adversary does
    better: aim the crowd at the {e one} key whose probe order is worst
    placed for the strategy under test — the key whose order walks the
    longest prefix of thinly-stocked servers before accumulating the
    lookup target.  That concentrates misses, retries and queueing on
    exactly the servers least able to absorb them, and it is the
    hardest case for a client-side cache: one key means maximal
    contention on a single cache entry, so hit rate and singleflight
    coalescing — not capacity — decide whether the cache helps.

    The generator is a {e blend}: with probability [focus] it returns
    the precomputed worst key, otherwise it defers to the caller's
    background law (typically the day's own Zipf draw), so a sweep can
    turn one knob from the paper's independent workload ([focus = 0])
    to a single-key flash mob ([focus = 1]). *)

val cost : order:int list -> held:int array -> t:int -> int
(** Placement cost of one probe order: how many servers a greedy client
    walking [order] must contact before the entries held there
    ([held.(s)] per server, distinct-count upper bound) sum to the
    lookup target [t].  Orders that never reach [t] cost their full
    length plus one, ranking them strictly worse than any that do.
    Servers outside [held] (stale ids in a fixed order) count as
    holding nothing. *)

val worst : ?lo:int -> orders:int list array -> held:int array -> t:int -> unit -> int
(** The index in [\[lo, Array.length orders)] (default [lo = 0]) of the
    costliest order under {!cost}, smallest index on ties — the
    adversary's target key.  Raises [Invalid_argument] when the range
    is empty. *)

val draw :
  Plookup_util.Rng.t -> focus:float -> worst:int -> rest:(Plookup_util.Rng.t -> int) -> int
(** One key draw of the blended law: [worst] with probability [focus],
    else [rest rng] (the background popularity law).  [focus] must be
    in [\[0, 1\]].  Always consumes exactly one uniform draw before any
    [rest] draw, so the blend is seed-stable as [focus] sweeps. *)
