open Plookup_store
open Plookup_util
module Net = Plookup_net.Net

type msg = string * Msg.t (* key-qualified protocol messages *)

type t = {
  n : int;
  seed : int;
  rng : Rng.t;
  net : (msg, Msg.reply) Net.t;
  stores : (string, Server_store.t) Hashtbl.t array; (* per server, per key *)
}

let key_store t ~server ~key =
  match Hashtbl.find_opt t.stores.(server) key with
  | Some store -> store
  | None ->
    let store = Server_store.create () in
    Hashtbl.replace t.stores.(server) key store;
    store

let handler t dst _src ((key, msg) : msg) : Msg.reply =
  let store = key_store t ~server:dst ~key in
  match msg with
  | Msg.Strategy (Msg.Store e) ->
    ignore (Server_store.add store e);
    Msg.Ack
  | Msg.Strategy (Msg.Store_batch entries) ->
    Server_store.clear store;
    List.iter (fun e -> ignore (Server_store.add store e)) entries;
    Msg.Ack
  | Msg.Strategy (Msg.Remove e) ->
    ignore (Server_store.remove store e);
    Msg.Ack
  | Msg.Data (Msg.Lookup target) -> Msg.Entries (Server_store.random_pick store t.rng target)
  | Msg.Data _ | Msg.Strategy _ | Msg.Repair _ ->
    (* Not part of the partitioned store's protocol; acknowledge and
       ignore, like any server receiving a message for a feature it is
       not running. *)
    Msg.Ack

let create ?(seed = 0) ~n () =
  if n <= 0 then invalid_arg "Partitioned.create: n must be positive";
  let t =
    { n;
      seed;
      rng = Rng.create seed;
      net = Net.create ~n ();
      stores = Array.init n (fun _ -> Hashtbl.create 16) }
  in
  Net.set_handler t.net (handler t);
  t

let n t = t.n

let home t key = Rng.hash_in_range ~seed:t.seed ~salt:0 ~value:(Hashtbl.hash key) t.n

let place t ~key entries =
  ignore
    (Net.send t.net ~src:Net.Client ~dst:(home t key)
       (key, Msg.store_batch (Entry.dedup entries)))

let add t ~key entry =
  ignore (Net.send t.net ~src:Net.Client ~dst:(home t key) (key, Msg.store entry))

let delete t ~key entry =
  ignore (Net.send t.net ~src:Net.Client ~dst:(home t key) (key, Msg.remove entry))

let lookup t ~key target =
  match Net.send t.net ~src:Net.Client ~dst:(home t key) (key, Msg.lookup target) with
  | Some (Msg.Entries entries) ->
    { Lookup_result.entries; servers_contacted = 1; target }
  | Some (Msg.Ack | Msg.Candidate _ | Msg.Digest _ | Msg.Busy) | None ->
    Lookup_result.empty ~target

let entries_of t ~key =
  match Hashtbl.find_opt t.stores.(home t key) key with
  | Some store -> Server_store.to_list store
  | None -> []

let fail t i = Net.fail t.net i
let recover t i = Net.recover t.net i
let is_up t i = Net.is_up t.net i

let load t = Array.init t.n (fun i -> Net.messages_received_by t.net i)
let reset_load t = Net.reset_counters t.net

let total_stored t =
  Array.fold_left
    (fun acc per_key ->
      Hashtbl.fold (fun _ store acc -> acc + Server_store.cardinal store) per_key acc)
    0 t.stores
