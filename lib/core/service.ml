
open Plookup_util

(* A config is a reference into the strategy registry plus parameters —
   a plain comparable value (tests and experiments compare and hash
   them), resolved to a packed (module Strategy_intf.S) at create
   time.  Keeping it name-based is what lets a new strategy module
   (e.g. {!Chord}) register itself without this file changing. *)
type config = { c_kind : string; c_params : int list }

let kind config = config.c_kind
let params config = config.c_params

let config_name { c_kind; c_params } =
  match c_params with
  | [] -> c_kind
  | [ p ] -> Printf.sprintf "%s-%d" c_kind p
  | [ p; q ] -> Printf.sprintf "%s-%dx%d" c_kind p q
  | ps -> c_kind ^ "-" ^ String.concat "x" (List.map string_of_int ps)

(* Convenience constructors for the built-in strategies.  These are
   spellings, not a strategy list: parsing and enumeration go through
   the registry. *)
let check_positive who ps =
  List.iter
    (fun p -> if p <= 0 then invalid_arg (Printf.sprintf "Service.%s: parameter must be positive" who))
    ps

let v ~kind ~params =
  check_positive "v" params;
  { c_kind = kind; c_params = params }

let full_replication = { c_kind = "FullReplication"; c_params = [] }
let fixed x = v ~kind:"Fixed" ~params:[ x ]
let random_server x = v ~kind:"RandomServer" ~params:[ x ]
let random_server_replacing x = v ~kind:"RandomServerReplacing" ~params:[ x ]
let round_robin y = v ~kind:"RoundRobin" ~params:[ y ]
let round_robin_replicated y k = v ~kind:"RoundRobinHA" ~params:[ y; k ]
let hash y = v ~kind:"Hash" ~params:[ y ]

let config_of_string s =
  match Strategy_registry.parse s with
  | Ok (kind, params) -> Ok { c_kind = kind; c_params = params }
  | Error _ as e -> e

let resolve config = Strategy_registry.find_exn config.c_kind

let param config = match config.c_params with [] -> None | p :: _ -> Some p

let storage_for_budget config ~n ~h ~total =
  if n <= 0 || h <= 0 || total <= 0 then
    invalid_arg "Service.storage_for_budget: n, h, total must be positive";
  let (module S) = resolve config in
  { config with c_params = S.params_for_budget ~n ~h ~total ~params:config.c_params }

let analytic_storage config ~n ~h =
  if n <= 0 || h <= 0 then invalid_arg "Service.analytic_storage: n and h must be positive";
  let (module S) = resolve config in
  S.analytic_storage ~n ~h ~params:config.c_params

let storage_formula config =
  let (module S) = resolve config in
  S.meta.Strategy_intf.storage_doc

(* Default parameters a strategy takes into [storage_for_budget] when
   enumerating comparison tables: the budget fills the primary
   parameter; a secondary one (RoundRobinHA's k) defaults to 2 so the
   ablation actually replicates. *)
let seed_params (m : Strategy_intf.meta) =
  match m.arity with 0 -> [] | 1 -> [ 1 ] | _ -> [ 1; 2 ]

let all_configs ?(ablations = false) ~budget ~n ~h () =
  List.filter_map
    (fun (module S : Strategy_intf.S) ->
      let m = S.meta in
      if m.Strategy_intf.ablation && not ablations then None
      else
        Some
          (storage_for_budget
             { c_kind = m.Strategy_intf.name; c_params = seed_params m }
             ~n ~h ~total:budget))
    (Strategy_registry.all ())

(* One running strategy instance, existentially packed. *)
type instance = I : (module Strategy_intf.S with type t = 'a) * 'a -> instance

type t = {
  cluster : Cluster.t;
  config : config;
  instance : instance;
  repair : Repair.t option;
}

let of_cluster ?(repair = Repair.disabled) cluster config =
  let (module S) = resolve config in
  let repair_on = repair.Repair.mode <> Repair.Off in
  (* [resync_stores] is false when repair is active: Round-Robin's
     recovery then replicates the ledger only, leaving store contents to
     the incremental digest sync. *)
  let s = S.create ~resync_stores:(not repair_on) cluster ~params:config.c_params in
  let rep =
    if repair_on then Some (Repair.install cluster ~config:repair ~plan:(S.repair_plan s))
    else None
  in
  { cluster; config; instance = I ((module S), s); repair = rep }

let create ?seed ?obs ?repair ~n config =
  of_cluster ?repair (Cluster.create ?seed ?obs ~n ()) config

let cluster t = t.cluster
let config t = t.config
let name t = config_name t.config
let n t = Cluster.n t.cluster
let repair t = t.repair

let place ?budget t entries =
  match t.instance with I ((module S), s) -> S.place s ?budget entries

let add t e = match t.instance with I ((module S), s) -> S.add s e
let delete t e = match t.instance with I ((module S), s) -> S.delete s e

let partial_lookup ?reachable t target =
  match t.instance with I ((module S), s) -> S.partial_lookup ?reachable s target

let can_update t = match t.instance with I ((module S), s) -> S.can_update s

let partial_lookup_pref ?reachable t ~cost target =
  (* Exhaustive probe: demand more entries than any server set can hold
     so the prober visits every reachable server, then rank. *)
  let exhaustive = partial_lookup ?reachable t max_int in
  let ranked =
    List.sort (fun a b -> Float.compare (cost a) (cost b)) exhaustive.Lookup_result.entries
  in
  { Lookup_result.entries = List_util.take target ranked;
    servers_contacted = exhaustive.Lookup_result.servers_contacted;
    target }
