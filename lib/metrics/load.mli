(** Server load distribution.

    The paper's introduction motivates partial lookups with load
    balance: "if k is very popular, S2 can be overloaded" under
    hashing-based partitioning.  This module summarizes a per-server
    request-count vector into the hot-spot indicators the experiments
    report. *)

type summary = {
  total : int;
  mean : float;
  peak : int;  (** busiest server's load *)
  peak_to_average : float;  (** 1.0 = perfectly balanced, n = one hot spot *)
  cov : float;  (** coefficient of variation of the loads *)
  top_share : float;  (** fraction of all load on the busiest server *)
}

val summarize : int array -> summary
(** Raises [Invalid_argument] on an empty vector; an all-zero vector
    yields a summary with [peak_to_average = 1.0] and [cov = 0.0]. *)

val of_cluster : Plookup.Cluster.t -> summary
(** Summarize the cluster network's per-server received-message counts. *)

val pp : Format.formatter -> summary -> unit
