(** The catalogue of reproducible tables and figures. *)

type t = {
  id : string;  (** e.g. ["fig4"] — the CLI / bench name *)
  title : string;
  run : Ctx.t -> Plookup_util.Table.t;
}

val all : t list
(** In paper order: table1, fig4, fig6, fig7, fig9, fig12, fig13,
    fig14, table2 — followed by the extension studies hotspot and
    churn (EXPERIMENTS.md, "Extensions beyond the paper"). *)

val find : string -> t option
val ids : unit -> string list
