open Plookup_util
module Service = Plookup.Service
module Unfairness = Plookup_metrics.Unfairness

let id = "fig9"
let title = "Fig 9: unfairness vs total storage (t=35, 100 entries, 10 servers)"

let default_budgets = List.init 10 (fun i -> (i + 1) * 100)

let run ?(n = 10) ?(h = 100) ?(t = 35) ?(budgets = default_budgets) ctx =
  let table =
    Table.create ~title ~columns:[ "storage"; "RandomServer-x"; "x"; "Hash-y"; "y" ]
  in
  let instances = Ctx.scaled ctx 6 in
  let lookups_per_instance = Ctx.scaled ctx 4000 in
  let budgets = Array.of_list budgets in
  (* One parallel unit per budget row, seeded from the budget value. *)
  let rows =
    Runner.map_obs ctx ~count:(Array.length budgets) (fun i ~obs ->
        let budget = budgets.(i) in
        let seed = Ctx.run_seed ctx budget in
        let x = max 1 (budget / n) in
        let y = max 1 (budget / h) in
        let measure config =
          fst
            (Unfairness.of_strategy ~seed ~obs ~n ~entries:h ~config ~t ~instances
               ~lookups_per_instance ())
        in
        (budget, x, measure (Service.random_server x), y, measure (Service.hash y)))
  in
  Array.iter
    (fun (budget, x, u_random, y, u_hash) ->
      Table.add_row table
        [ Table.I budget; Table.F4 u_random; Table.I x; Table.F4 u_hash; Table.I y ])
    rows;
  table
