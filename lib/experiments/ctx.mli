(** Shared experiment context: a master seed, a scale knob, and ambient
    network-fault knobs.

    The paper's data points average 5000 runs of up to 5000 lookups —
    minutes of CPU per figure.  Defaults here are sized for seconds per
    figure; [scale] multiplies every run/lookup count so the CLI can
    crank any experiment back up to paper scale (see EXPERIMENTS.md).

    [loss], [duplication] and [jitter] describe an ambient fault model
    (see {!Plookup_net.Net.set_faults}) that fault-aware experiments —
    currently the loss sweep — thread into the networks they build; the
    CLI exposes them as [--loss], [--duplication] and [--jitter]. *)

type overload = {
  capacity : int;  (** per-server inbox queue limit, >= 1 *)
  service_rate : float;  (** messages served per time unit, > 0 *)
  deadline : float;  (** per-lookup time budget for the tuned client, > 0 *)
  hedge : float;  (** latency quantile driving the hedge delay, in (0, 100) *)
  breaker : int;  (** circuit-breaker failure threshold, >= 1 *)
  degrade : float;  (** gray-failure service-time multiplier, >= 1 *)
}
(** Overload-model knobs for the production-day experiment: the server
    capacity model ({!Plookup.Cluster.set_capacity}), gray-failure
    injection ({!Plookup.Cluster.set_degraded}) and the tuned client's
    tail-tolerance settings ({!Plookup.Async_client.lookup}). *)

val default_overload : overload
(** capacity 8, service_rate 2.0, deadline 250, hedge p95, breaker 3,
    degrade 25x. *)

type cache = {
  cache_cap : int;  (** LRU capacity of the client-side cache, >= 1 *)
  cache_ttl : float;  (** entry freshness window (time units), > 0 *)
  swr : float;  (** stale-while-revalidate window past the TTL, >= 0 *)
  hotspot : float;
      (** hotspot-adversarial blend: fraction of lookups aimed at the
          strategy's worst-placed key instead of the Zipf draw, in
          [0, 1] ({!Plookup_workload.Hotspot}) *)
}
(** Client-cache knobs for the production-day experiment's third cell
    ({!Plookup.Client_cache}).  [None] in the context means the cached
    cell (and its extra report columns) is not run at all, keeping the
    default [day] output byte-identical to the cache-free build. *)

val default_cache : cache
(** cap 128, ttl 10 (the day experiment's update period — one
    delete+add cycle), swr 0, hotspot 0. *)

type t = {
  seed : int;
  scale : float;
  jobs : int;
      (** worker count for {!Runner}'s replicate fan-out; results are
          byte-identical at any value (DESIGN.md, "Performance") *)
  shards : int;
      (** intra-run parallelism knob: how many workers execute {e inside}
          one simulation or one cell.  The logical decomposition is fixed
          (stripes in {!Shard_sim}, instance-space partitions in the
          metric loops), so results are byte-identical at any value —
          [shards] only scales physical execution.  Replicate-level and
          shard-level parallelism compose: experiments that fan out
          replicates use {!workers} [= jobs * shards] domains
          (DESIGN.md, "Parallelism"). *)
  loss : float;  (** per-transmission drop probability, in [0, 1) *)
  duplication : float;  (** per-transmission duplicate probability, in [0, 1] *)
  jitter : float;  (** max extra per-delivery delay (engine time units) *)
  mttf : float option;  (** churn mean time to failure; [None] = experiment default *)
  mttr : float option;  (** churn mean time to repair; [None] = experiment default *)
  horizon : float option;  (** churn simulation horizon; [None] = experiment default *)
  repair : Plookup.Repair.config option;
      (** self-healing configuration for churn-aware experiments;
          [None] = experiment default *)
  overload : overload option;
      (** overload-model knobs for the production-day experiment;
          [None] = experiment default ({!default_overload}) *)
  cache : cache option;
      (** client-cache knobs for the production-day experiment's cached
          cell; [None] = no cached cell *)
  obs : Plookup_obs.Obs.t;
      (** where the experiment's services report: replicate work gets a
          child handle and is merged back in input order
          ({!Runner.map_obs}), so the registry snapshot and trace are
          byte-identical at any [jobs] value.  Tracing is off unless the
          caller enables it on this handle (the [plookup trace]
          command does). *)
}

val default : t
(** seed 42, scale 1.0, jobs 1, no faults, no churn/repair overrides.
    Note [default.obs] is one shared handle — build a fresh context with
    {!v} when you mean to inspect metrics in isolation. *)

val v :
  ?seed:int ->
  ?scale:float ->
  ?jobs:int ->
  ?shards:int ->
  ?loss:float ->
  ?duplication:float ->
  ?jitter:float ->
  ?mttf:float ->
  ?mttr:float ->
  ?horizon:float ->
  ?repair:Plookup.Repair.config ->
  ?overload:overload ->
  ?cache:cache ->
  ?obs:Plookup_obs.Obs.t ->
  unit ->
  t

val workers : t -> int
(** [jobs * shards] — the total domain budget an experiment may spread
    its work over when the two parallelism axes fold into one fan-out
    (the day and churn experiments, whose per-cell simulations are
    globally coupled and cannot be striped without changing results;
    see DESIGN.md, "Parallelism"). *)

val faulty : t -> bool
(** Whether any fault knob is non-zero. *)

val apply_faults : t -> Plookup.Cluster.t -> unit
(** Install the context's ambient fault model on a cluster (seeded from
    the cluster seed); no-op when the context is fault-free. *)

val scaled : t -> int -> int
(** [scaled ctx base] is [base * scale], at least 1. *)

val run_seed : t -> int -> int
(** A per-run seed derived from the master seed and a run index —
    stable across scales, so adding runs refines rather than reshuffles
    the sample. *)
