open Plookup_util

let test_binning () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Histogram.add h) [ 0.; 1.9; 2.; 5.5; 9.99 ];
  Helpers.check_int "bin 0" 2 (Histogram.bin_count h 0);
  Helpers.check_int "bin 1" 1 (Histogram.bin_count h 1);
  Helpers.check_int "bin 2" 1 (Histogram.bin_count h 2);
  Helpers.check_int "bin 3" 0 (Histogram.bin_count h 3);
  Helpers.check_int "bin 4" 1 (Histogram.bin_count h 4);
  Helpers.check_int "total" 5 (Histogram.count h)

let test_overflow_underflow () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:2 in
  List.iter (Histogram.add h) [ -0.5; -3.; 1.; 2.; 0.5 ];
  Helpers.check_int "underflow" 2 (Histogram.underflow h);
  Helpers.check_int "overflow" 2 (Histogram.overflow h);
  Helpers.check_int "total includes out-of-range" 5 (Histogram.count h)

let test_bin_bounds () =
  let h = Histogram.create ~lo:10. ~hi:20. ~bins:4 in
  let lo, hi = Histogram.bin_bounds h 1 in
  Helpers.close "bin 1 lo" 12.5 lo;
  Helpers.close "bin 1 hi" 15. hi;
  Alcotest.check_raises "bad bin" (Invalid_argument "Histogram.bin_bounds: bin out of range")
    (fun () -> ignore (Histogram.bin_bounds h 4))

let test_mean_in_range_only () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Histogram.add h) [ 2.; 4.; 100. (* overflow, excluded *) ];
  Helpers.close "mean" 3. (Histogram.mean h)

let test_render () =
  let h = Histogram.create ~lo:0. ~hi:2. ~bins:2 in
  List.iter (Histogram.add h) [ 0.5; 0.6; 1.5 ];
  let s = Histogram.render ~width:10 h in
  Alcotest.(check bool) "mentions counts" true
    (String.length s > 0 && String.split_on_char '\n' s |> List.length >= 2)

let test_create_validation () =
  Alcotest.check_raises "bins 0" (Invalid_argument "Histogram.create: bins must be positive")
    (fun () -> ignore (Histogram.create ~lo:0. ~hi:1. ~bins:0));
  Alcotest.check_raises "lo >= hi" (Invalid_argument "Histogram.create: need lo < hi")
    (fun () -> ignore (Histogram.create ~lo:1. ~hi:1. ~bins:3))

let prop_counts_conserved =
  Helpers.qcheck "total = in-range + under + over"
    QCheck2.Gen.(list (float_range (-10.) 20.))
    (fun xs ->
      let h = Histogram.create ~lo:0. ~hi:10. ~bins:7 in
      List.iter (Histogram.add h) xs;
      let in_range = List.init 7 (Histogram.bin_count h) |> List.fold_left ( + ) 0 in
      Histogram.count h = in_range + Histogram.underflow h + Histogram.overflow h
      && Histogram.count h = List.length xs)

let () =
  Helpers.run "histogram"
    [ ( "histogram",
        [ Alcotest.test_case "binning" `Quick test_binning;
          Alcotest.test_case "under/overflow" `Quick test_overflow_underflow;
          Alcotest.test_case "bin bounds" `Quick test_bin_bounds;
          Alcotest.test_case "mean" `Quick test_mean_in_range_only;
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "validation" `Quick test_create_validation;
          prop_counts_conserved ] ) ]
