(** Lightweight simulation tracing.

    A bounded in-memory ring of timestamped records, useful when
    debugging protocol interleavings (e.g. the RoundRobin migration
    handshake) without paying for I/O during measurement runs. *)

type t

type record = { time : float; label : string; detail : string }

val create : ?capacity:int -> unit -> t
(** [capacity] bounds retained records (default 4096); older records are
    evicted first. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** Tracing starts disabled; a disabled trace drops records in O(1). *)

val record : t -> time:float -> label:string -> string -> unit
val records : t -> record list
(** Oldest first. *)

val length : t -> int
val clear : t -> unit
val pp_record : Format.formatter -> record -> unit
val dump : t -> string
