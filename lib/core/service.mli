(** The partial lookup service: one key, [h] entries, [n] servers, one of
    the registered placement strategies behind a single interface.

    This is the public entry point of the library.  A service owns a
    {!Cluster} and dispatches [place]/[add]/[delete]/[partial_lookup] to
    the configured strategy — resolved by name through
    {!Strategy_registry}, so a strategy module that registers itself
    (see DESIGN.md, "Adding a placement strategy") is immediately
    constructible here, parseable from the CLI and enumerable by the
    experiments.  Multi-key deployments are, as the paper notes
    (Section 2), a family of independent single-key services — see
    {!Directory} for that generalization. *)

open Plookup_store

type config
(** A strategy name plus its parameters: a plain comparable value
    (structural equality and hashing work), resolved through
    {!Strategy_registry} when the service is created. *)

val v : kind:string -> params:int list -> config
(** [v ~kind ~params] names a strategy by its canonical registry name,
    e.g. [v ~kind:"Chord" ~params:[2]].  Parameters must be positive;
    the name is checked when the config is used (parse-time checking is
    {!config_of_string}'s job). *)

val kind : config -> string
(** The canonical strategy name, e.g. ["RoundRobin"]. *)

val params : config -> int list

(** {2 Convenience constructors for the built-in strategies} *)

val full_replication : config

val fixed : int -> config
(** [fixed x]: replicate the same x entries everywhere. *)

val random_server : int -> config
(** [random_server x]: random x-subset per server. *)

val random_server_replacing : int -> config
(** The Section-5.3 replacement-on-delete variant (ablation). *)

val round_robin : int -> config
(** [round_robin y]: y consecutive copies per entry. *)

val round_robin_replicated : int -> int -> config
(** [round_robin_replicated y k]: Round-Robin-y with the head/tail
    coordinator replicated on k servers (the paper's footnote 1; see
    {!Round_robin.create}).  Named ["RoundRobinHA-YxK"]. *)

val hash : int -> config
(** [hash y]: y hash functions place each entry. *)

val config_name : config -> string
(** E.g. ["Fixed-20"], ["Hash-2"], ["RoundRobinHA-2x3"] — the paper's
    naming. *)

val config_of_string : string -> (config, string) result
(** Inverse of {!config_name}, case-insensitive, accepting every
    registered parse key (e.g. ["fixed-20"], ["round-2"], ["full"],
    ["chord-2"]).  Unknown names get a did-you-mean suggestion.
    Delegates to {!Strategy_registry.parse}. *)

val param : config -> int option
(** The x or y parameter, if the strategy has one. *)

val storage_for_budget : config -> n:int -> h:int -> total:int -> config
(** Re-parameterize the strategy so its Table-1 storage cost fits a
    total budget of [total] entry slots when managing [h] entries on [n]
    servers: Fixed/RandomServer get [x = total / n], Round/Hash/Chord
    get [y = max 1 (total / h)].  This is how the paper derives the
    "comparable overhead" configurations (e.g. budget 200 with h=100,
    n=10 gives x=20, y=2). *)

val analytic_storage : config -> n:int -> h:int -> float
(** The strategy's Table-1 closed-form storage cost (see
    {!Strategy_intf.S.analytic_storage}). *)

val storage_formula : config -> string
(** The Table-1 formula as a string, e.g. ["x*n"] — registry metadata,
    for table headings. *)

type t

val create :
  ?seed:int -> ?obs:Plookup_obs.Obs.t -> ?repair:Repair.config -> n:int -> config -> t
(** Build a fresh cluster of [n] servers running the strategy.

    [obs] is handed to the {!Cluster}: the service's message counters
    land on its metrics registry and its trace (when enabled) records
    the wire traffic.

    [repair] (default {!Repair.disabled}) activates the self-healing
    layer: with any mode other than [Off], the strategy handler is
    wrapped by a {!Repair.t} built with the strategy's
    {!Strategy_intf.S.repair_plan}, and Round-Robin's full-push store
    resync is replaced by the incremental digest sync.

    Raises [Invalid_argument] when the config names an unregistered
    strategy or its parameters are malformed. *)

val of_cluster : ?repair:Repair.config -> Cluster.t -> config -> t
(** Run the strategy on an existing cluster (rebinding its network
    handler).  Used by experiments that inject failures between place
    and lookup. *)

val cluster : t -> Cluster.t
val config : t -> config
val name : t -> string
val n : t -> int

val repair : t -> Repair.t option
(** The repair layer, when one was activated at construction. *)

val place : ?budget:int -> t -> Entry.t list -> unit
(** Initial batch placement.  [budget] caps total stored copies and is
    honoured by Round-Robin, Hash and Chord (the Fig. 6 "inadequate
    storage" regime); the other strategies bound storage through their
    own parameter and ignore it. *)

val add : t -> Entry.t -> unit
val delete : t -> Entry.t -> unit

val can_update : t -> bool
(** Whether an [add]/[delete] issued now would be accepted by the
    strategy: for Round-Robin, a coordinator replica is up (and the
    placement was not truncated); for the others, any server is up.
    When false the update would vanish without a trace — a real client
    would observe the missing reply, so workloads use this to model
    failing fast instead of silently losing writes. *)

val partial_lookup : ?reachable:(int -> bool) -> t -> int -> Lookup_result.t
(** [partial_lookup t target]: retrieve at least [target] distinct
    entries, contacting as few servers as the strategy allows.
    [reachable] restricts which servers this client may contact
    (Section 7.2). *)

val partial_lookup_pref :
  ?reachable:(int -> bool) -> t -> cost:(Entry.t -> float) -> int -> Lookup_result.t
(** Client-preference lookups (Section 7.1): contact servers as usual
    but keep collecting answers from *every* reachable server, then
    return the [target] entries with the lowest [cost].  The result's
    [servers_contacted] reflects the exhaustive probe. *)

val all_configs : ?ablations:bool -> budget:int -> n:int -> h:int -> unit -> config list
(** Every registered strategy parameterized for a common storage budget
    — convenient for comparison tables.  Ordered by registry rank
    (FullReplication first).  [ablations] (default false) also includes
    the ablation variants (RandomServerReplacing, RoundRobinHA). *)
