(** Extension experiment: lookup cost and coverage as a function of
    message-loss rate.

    Sections 5–6 argue partial lookups stay cheap and available under
    failures; this sweep stresses the stronger fault model — per-link
    loss (plus any ambient duplication/jitter from the context) — and
    measures how the retrying {!Plookup.Async_client} pays for it: for
    loss rates 0/5/10/20 % it reports the satisfaction rate, contacts,
    attempts, retries, timeouts and latency per lookup for Fixed-x and
    RoundRobin-y. *)

val id : string
val title : string

val run :
  ?n:int ->
  ?h:int ->
  ?budget:int ->
  ?t:int ->
  ?timeout:float ->
  ?retries:int ->
  Ctx.t ->
  Plookup_util.Table.t
