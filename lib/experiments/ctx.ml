type t = {
  seed : int;
  scale : float;
  loss : float;
  duplication : float;
  jitter : float;
}

let default = { seed = 42; scale = 1.0; loss = 0.; duplication = 0.; jitter = 0. }

let v ?(seed = 42) ?(scale = 1.0) ?(loss = 0.) ?(duplication = 0.) ?(jitter = 0.) () =
  if scale <= 0. then invalid_arg "Ctx.v: scale must be positive";
  if loss < 0. || loss >= 1. then invalid_arg "Ctx.v: loss must be in [0, 1)";
  if duplication < 0. || duplication > 1. then
    invalid_arg "Ctx.v: duplication must be in [0, 1]";
  if jitter < 0. then invalid_arg "Ctx.v: jitter must be non-negative";
  { seed; scale; loss; duplication; jitter }

let faulty t = t.loss > 0. || t.duplication > 0. || t.jitter > 0.

let apply_faults t cluster =
  if faulty t then
    Plookup.Cluster.set_faults cluster ~loss:t.loss ~duplication:t.duplication
      ~jitter:t.jitter ()

let scaled t base = max 1 (int_of_float (Float.round (float_of_int base *. t.scale)))

let run_seed t index =
  Int64.to_int
    (Plookup_util.Rng.mix64 (Int64.of_int ((t.seed * 1_000_003) + index)))
  land max_int
