(** Figure 4: client lookup cost vs target answer size, with a fixed
    total storage budget (200 entries for 100 entries on 10 servers, so
    Round-2, RandomServer-20 and Hash-2 are comparable; Fixed-20 is
    omitted because it cannot answer targets above 20). *)

val id : string
val title : string

val run :
  ?n:int ->
  ?h:int ->
  ?budget:int ->
  ?targets:int list ->
  Ctx.t ->
  Plookup_util.Table.t
(** Defaults: n=10, h=100, budget=200, targets 10..50 step 5.  Columns:
    t, analytic Round cost, then measured mean cost per strategy. *)
