(** Full Replication (Section 3.1, 5.1): every server stores every entry.

    [place], [add] and [delete] all go client → random server → broadcast;
    a lookup contacts exactly one server.  The baseline every partial
    scheme is compared against: ideal lookup cost, coverage, fault
    tolerance and fairness, at the price of [h * n] storage and a full
    broadcast per update. *)

open Plookup_store

type t

val create : Cluster.t -> t
(** Installs this strategy's message handler on the cluster's network.
    One strategy instance per cluster. *)

val cluster : t -> Cluster.t
val place : t -> Entry.t list -> unit
val add : t -> Entry.t -> unit
val delete : t -> Entry.t -> unit

val partial_lookup : ?reachable:(int -> bool) -> t -> int -> Lookup_result.t
(** One random operational server answers with [t] random entries. *)

module Strategy : Strategy_intf.S with type t = t
(** The packed form registered in {!Strategy_registry}. *)
