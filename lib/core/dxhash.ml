open Plookup_store
open Plookup_util
module Net = Plookup_net.Net

(* Consistent hashing on a pseudo-random probe sequence, after DxHash
   (Dong & Wang): the slot space is the smallest power of two holding
   one slot per server, slots [0, n) active and the rest inactive (a
   bitmap, not a ring).  An entry walks its own deterministic probe
   sequence over the slot space and lives on the first y *distinct*
   active slots it hits.  Each probe lands on an active slot with
   probability >= 1/2 (the slot space is at most 2n), so lookup of an
   entry's owners is O(1) expected — no sorted ring, no binary search —
   and shrinking or growing the active prefix only remaps the entries
   whose probe walk actually crosses the flipped slots (an expected
   y/n fraction per removed server, matching consistent hashing's
   churn bound). *)

type t = {
  cluster : Cluster.t;
  y : int;
  slots : int; (* power of two, >= n *)
  active : Bitset.t; (* active slots; here the [0, n) prefix *)
}

let slot_count n =
  let rec go s = if s >= n then s else go (2 * s) in
  go 1

(* Probe [j] of entry [id]'s sequence: an independent hash per step, so
   the sequence restarts identically on every node that computes it. *)
let probe ~seed ~slots ~id j = Rng.hash_in_range ~seed ~salt:(0xD8A5 + j) ~value:id slots

(* First [y] distinct active slots along the probe sequence.  The walk
   is capped (distinctness makes the tail a coupon-collector when y
   approaches the active count); past the cap the remaining copies come
   from the ascending active slots not yet chosen — deterministic, so
   every node still agrees on the owner set. *)
let owners_generic ~seed ~slots ~y ~mem_active ~active_count id =
  let y = min y active_count in
  if y = 0 then []
  else begin
    let chosen = Array.make y (-1) in
    let count = ref 0 in
    let picked s =
      let rec go j = j < !count && (chosen.(j) = s || go (j + 1)) in
      go 0
    in
    let take s =
      chosen.(!count) <- s;
      incr count
    in
    let cap = 64 + (16 * y * (slots / max 1 active_count)) in
    let j = ref 0 in
    while !count < y && !j < cap do
      let s = probe ~seed ~slots ~id !j in
      if mem_active s && not (picked s) then take s;
      incr j
    done;
    let s = ref 0 in
    while !count < y do
      if !s < slots && mem_active !s && not (picked !s) then take !s;
      incr s
    done;
    Array.to_list chosen
  end

(* Active slot s is server s: the active prefix is exactly the server
   set, so no slot->server table is needed. *)
let servers_of t e =
  owners_generic ~seed:(Cluster.seed t.cluster) ~slots:t.slots ~y:t.y
    ~mem_active:(Bitset.mem t.active) ~active_count:(Cluster.n t.cluster) (Entry.id e)

let owners_for t ~active e =
  if active < 0 || active > Cluster.n t.cluster then
    invalid_arg "Dxhash.owners_for: active out of range";
  owners_generic ~seed:(Cluster.seed t.cluster) ~slots:t.slots ~y:t.y
    ~mem_active:(fun s -> s < active) ~active_count:active (Entry.id e)

let send_store t ~src ~dst e =
  ignore (Net.send (Cluster.net t.cluster) ~src:(Net.Server src) ~dst (Msg.store e))

let send_remove t ~src ~dst e =
  ignore (Net.send (Cluster.net t.cluster) ~src:(Net.Server src) ~dst (Msg.remove e))

let handle_data t dst _src (msg : Msg.data) : Msg.reply =
  match msg with
  | Msg.Place _ ->
    (* Distribution is driven from [place] below (budget support); the
       request itself reaches one server. *)
    Msg.Ack
  | Msg.Add e ->
    List.iter (fun s -> send_store t ~src:dst ~dst:s e) (servers_of t e);
    Msg.Ack
  | Msg.Delete e ->
    List.iter (fun s -> send_remove t ~src:dst ~dst:s e) (servers_of t e);
    Msg.Ack
  | Msg.Lookup target -> Strategy_common.lookup_reply t.cluster dst target

let create cluster ~y =
  if y < 1 then invalid_arg "Dxhash.create: y must be at least 1";
  let n = Cluster.n cluster in
  let slots = slot_count n in
  let active = Bitset.create slots in
  for s = 0 to n - 1 do
    Bitset.add active s
  done;
  let t = { cluster; y = min y n; slots; active } in
  Strategy_common.install cluster ~data:(handle_data t);
  t

let y t = t.y
let slots t = t.slots
let cluster t = t.cluster

let place ?budget t entries =
  let entries = Entry.dedup entries in
  match Cluster.random_up_server t.cluster with
  | None -> ()
  | Some s ->
    ignore (Net.send (Cluster.net t.cluster) ~src:Net.Client ~dst:s (Msg.place entries));
    let arr = Array.of_list entries in
    let budget = match budget with None -> max_int | Some b -> b in
    let spent = ref 0 in
    (* Round-major: all first copies before any second copy, so a budget
       cut keeps coverage maximal. *)
    for r = 0 to t.y - 1 do
      Array.iter
        (fun e ->
          if !spent < budget then begin
            let owners = servers_of t e in
            match List.nth_opt owners r with
            | Some dst ->
              send_store t ~src:s ~dst e;
              incr spent
            | None -> ()
          end)
        arr
    done

let add t e = Strategy_common.to_random_server t.cluster (Msg.add e)
let delete t e = Strategy_common.to_random_server t.cluster (Msg.delete e)
let partial_lookup ?reachable t target = Probe.random_order ?reachable t.cluster ~t:target

let check_invariants t ~placed =
  let n = Cluster.n t.cluster in
  let expected = Array.init n (fun _ -> Hashtbl.create 16) in
  List.iter
    (fun e ->
      List.iter (fun s -> Hashtbl.replace expected.(s) (Entry.id e) ()) (servers_of t e))
    placed;
  let ok = ref (Ok ()) in
  let fail fmt = Format.kasprintf (fun s -> if !ok = Ok () then ok := Error s) fmt in
  for s = 0 to n - 1 do
    let store = Cluster.store t.cluster s in
    Server_store.iter
      (fun e ->
        if not (Hashtbl.mem expected.(s) (Entry.id e)) then
          fail "server %d stores %s not assigned to it" s (Entry.to_string e))
      store;
    Hashtbl.iter
      (fun id () ->
        if not (Server_store.mem store (Entry.v id)) then
          fail "server %d is missing entry v%d" s id)
      expected.(s)
  done;
  !ok

module Strategy = struct
  type nonrec t = t

  let meta =
    { Strategy_intf.name = "DxHash";
      keys = [ "dxhash"; "dx" ];
      arity = 1;
      param_doc = "Y = copies per entry along the pseudo-random probe sequence";
      storage_doc = "h*min(y,n)";
      ablation = false;
      rank = 70 }

  let analytic_storage ~n ~h ~params =
    float_of_int (h * min (Strategy_common.one_param ~who:"DxHash" ~what:"y" params) n)

  let params_for_budget ~n:_ ~h ~total ~params:_ = [ max 1 (total / h) ]

  let create ?resync_stores:_ cluster ~params =
    create cluster ~y:(Strategy_common.one_param ~who:"Dxhash.create" ~what:"y" params)

  let place t ?budget entries = place ?budget t entries
  let add = add
  let delete = delete
  let partial_lookup = partial_lookup
  let can_update t = Strategy_common.any_up t.cluster
  let repair_plan t = Strategy_intf.Assigned (fun e -> Some (servers_of t e))
end

let () = Strategy_registry.register (module Strategy)
