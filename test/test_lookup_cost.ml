open Plookup
module Lookup_cost = Plookup_metrics.Lookup_cost

let test_full_replication_cost_one () =
  let service, _ = Helpers.placed_service ~n:10 ~h:100 Service.full_replication in
  let m = Lookup_cost.measure service ~t:50 ~lookups:200 in
  Helpers.close "cost exactly 1" 1. m.Lookup_cost.mean_cost;
  Helpers.close "no failures" 0. m.Lookup_cost.failure_rate

let test_fixed_cost_one_within_x () =
  let service, _ = Helpers.placed_service ~n:10 ~h:100 (Service.fixed 20) in
  let m = Lookup_cost.measure service ~t:20 ~lookups:200 in
  Helpers.close "cost 1" 1. m.Lookup_cost.mean_cost

let test_fixed_fails_beyond_x () =
  let service, _ = Helpers.placed_service ~n:10 ~h:100 (Service.fixed 20) in
  let m = Lookup_cost.measure service ~t:21 ~lookups:100 in
  Helpers.close "always fails" 1. m.Lookup_cost.failure_rate

let test_round_robin_steps () =
  (* The Fig. 4 staircase, exactly. *)
  let service, _ = Helpers.placed_service ~n:10 ~h:100 (Service.round_robin 2) in
  List.iter
    (fun (t, expected) ->
      let m = Lookup_cost.measure service ~t ~lookups:100 in
      Helpers.close (Printf.sprintf "t=%d" t) expected m.Lookup_cost.mean_cost)
    [ (10, 1.); (20, 1.); (25, 2.); (40, 2.); (45, 3.) ]

let test_random_server_at_least_round () =
  (* Overlap between random subsets makes RandomServer-20 at least as
     expensive as Round-2, clearly so at multiples of 20. *)
  let seed = 123 in
  let m_random =
    Lookup_cost.measure_over_instances ~seed ~n:10 ~entries:100
      ~config:(Service.random_server 20) ~t:40 ~runs:20 ~lookups_per_run:50 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "random (%.2f) > round (2.0)" m_random.Lookup_cost.mean_cost)
    true
    (m_random.Lookup_cost.mean_cost > 2.3)

let test_hash_cost_above_one_for_small_t () =
  (* Some Hash-2 servers hold fewer than 15 entries, so the mean cost
     exceeds 1 — the paper quotes 1.124. *)
  let m =
    Lookup_cost.measure_over_instances ~seed:7 ~n:10 ~entries:100 ~config:(Service.hash 2)
      ~t:15 ~runs:50 ~lookups_per_run:100 ()
  in
  Alcotest.(check bool) "above 1" true (m.Lookup_cost.mean_cost > 1.02);
  Alcotest.(check bool) "below 1.4" true (m.Lookup_cost.mean_cost < 1.4)

let test_ci_reported () =
  let service, _ = Helpers.placed_service ~n:10 ~h:100 (Service.random_server 20) in
  let m = Lookup_cost.measure service ~t:30 ~lookups:500 in
  Alcotest.(check bool) "ci positive when costs vary" true (m.Lookup_cost.ci95 >= 0.)

let prop_cost_at_least_one =
  Helpers.qcheck ~count:40 "mean cost >= 1 whenever lookups happen"
    QCheck2.Gen.(pair (int_range 1 20) (int_range 1 3))
    (fun (t, y) ->
      let service, _ = Helpers.placed_service ~n:5 ~h:20 (Service.hash y) in
      let m = Lookup_cost.measure service ~t ~lookups:20 in
      m.Lookup_cost.mean_cost >= 1.)

let prop_cost_monotone_in_t_for_round =
  Helpers.qcheck ~count:30 "round-robin cost non-decreasing in t"
    QCheck2.Gen.(pair (int_range 1 50) (int_range 1 50))
    (fun (t1, t2) ->
      let lo = min t1 t2 and hi = max t1 t2 in
      let service, _ = Helpers.placed_service ~n:10 ~h:100 (Service.round_robin 2) in
      let cost t = (Lookup_cost.measure service ~t ~lookups:20).Lookup_cost.mean_cost in
      cost lo <= cost hi +. 1e-9)

let () =
  Helpers.run "lookup_cost"
    [ ( "lookup_cost",
        [ Alcotest.test_case "full replication" `Quick test_full_replication_cost_one;
          Alcotest.test_case "fixed within x" `Quick test_fixed_cost_one_within_x;
          Alcotest.test_case "fixed beyond x" `Quick test_fixed_fails_beyond_x;
          Alcotest.test_case "round staircase" `Quick test_round_robin_steps;
          Alcotest.test_case "random >= round" `Quick test_random_server_at_least_round;
          Alcotest.test_case "hash above 1" `Quick test_hash_cost_above_one_for_small_t;
          Alcotest.test_case "ci reported" `Quick test_ci_reported;
          prop_cost_at_least_one;
          prop_cost_monotone_in_t_for_round ] ) ]
