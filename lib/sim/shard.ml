(* Conservative time-window sharded engine driver; see shard.mli for
   the determinism contract and the memory-ordering argument. *)

(* Minimal growable buffer for outboxes.  [clear] keeps the backing
   store, so steady-state windows allocate nothing. *)
module Buf = struct
  type 'a t = { mutable data : 'a array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push b x =
    if b.len = Array.length b.data then begin
      let cap = max 8 (2 * Array.length b.data) in
      let data = Array.make cap x in
      Array.blit b.data 0 data 0 b.len;
      b.data <- data
    end;
    b.data.(b.len) <- x;
    b.len <- b.len + 1

  let iter f b =
    for i = 0 to b.len - 1 do
      f b.data.(i)
    done

  let clear b = b.len <- 0
  let length b = b.len
end

type 'msg t = {
  shards : int;
  lookahead : float;
  engines : Engine.t array;
  (* outboxes.(src).(dst) is written only by the worker executing shard
     [src] during a window and drained only by the caller after the
     barrier, so no two domains ever touch a buffer concurrently. *)
  outboxes : (float * 'msg) Buf.t array array;
  receivers : (Engine.t -> time:float -> 'msg -> unit) option array;
  (* End of the window currently (or last) executed: the earliest legal
     arrival time for a buffered send.  Written by the caller between
     windows, read by workers inside [send]; the gang barrier orders
     the accesses. *)
  mutable window_end : float;
}

let create ~shards ~lookahead () =
  if shards < 1 then invalid_arg "Shard.create: shards must be at least 1";
  if lookahead <= 0. then invalid_arg "Shard.create: lookahead must be positive";
  { shards;
    lookahead;
    engines = Array.init shards (fun _ -> Engine.create ());
    outboxes = Array.init shards (fun _ -> Array.init shards (fun _ -> Buf.create ()));
    receivers = Array.make shards None;
    window_end = 0. }

let shards t = t.shards
let lookahead t = t.lookahead

let engine t s =
  if s < 0 || s >= t.shards then invalid_arg "Shard.engine: shard index out of range";
  t.engines.(s)

let set_receiver t dst f =
  if dst < 0 || dst >= t.shards then
    invalid_arg "Shard.set_receiver: shard index out of range";
  t.receivers.(dst) <- Some f

let send t ~src ~dst ~time msg =
  if src < 0 || src >= t.shards then invalid_arg "Shard.send: src out of range";
  if dst < 0 || dst >= t.shards then invalid_arg "Shard.send: dst out of range";
  if time < t.window_end then
    invalid_arg
      (Printf.sprintf
         "Shard.send: arrival time %g violates the lookahead barrier at %g" time
         t.window_end);
  (match t.receivers.(dst) with
  | Some _ -> ()
  | None -> invalid_arg "Shard.send: destination shard has no receiver");
  Buf.push t.outboxes.(src).(dst) (time, msg)

(* Drain every outbox into its destination engine, in ascending
   (dst, src, buffer-order) order — a total order independent of which
   worker executed which shard, hence deterministic. *)
let inject t =
  let n = t.shards in
  for dst = 0 to n - 1 do
    match t.receivers.(dst) with
    | None -> ()
    | Some recv ->
        let e = t.engines.(dst) in
        for src = 0 to n - 1 do
          let box = t.outboxes.(src).(dst) in
          if Buf.length box > 0 then begin
            Buf.iter (fun (time, msg) -> recv e ~time msg) box;
            Buf.clear box
          end
        done
  done

let run ?gang ~until t =
  let fired = Array.make t.shards 0 in
  let start = Array.fold_left (fun acc e -> Float.max acc (Engine.now e)) 0. t.engines in
  (* Deliver anything buffered before the run (setup sends). *)
  inject t;
  let w = ref start in
  while !w < until do
    let wend = Float.min until (!w +. t.lookahead) in
    t.window_end <- wend;
    let step s = fired.(s) <- fired.(s) + Engine.run ~until:wend t.engines.(s) in
    (match gang with
    | Some g when Plookup_util.Pool.Gang.size g > 1 ->
        let stride = Plookup_util.Pool.Gang.size g in
        Plookup_util.Pool.Gang.run g (fun wk ->
            let s = ref wk in
            while !s < t.shards do
              step !s;
              s := !s + stride
            done)
    | _ ->
        for s = 0 to t.shards - 1 do
          step s
        done);
    inject t;
    w := wend
  done;
  Array.fold_left ( + ) 0 fired

let pending t =
  let p = ref 0 in
  Array.iter (fun e -> p := !p + Engine.pending e) t.engines;
  Array.iter (Array.iter (fun b -> p := !p + Buf.length b)) t.outboxes;
  !p
