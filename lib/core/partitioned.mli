(** The traditional hashing-based lookup service (Figure 1, center) —
    the Chord/CAN-style baseline the paper argues against.

    Each *key* is hashed to a single home server, which stores that
    key's entire entry set; every lookup and every update for the key
    goes to the home server.  This is partitioning of the key space, not
    of a key's entries — so a popular key concentrates all of its load
    on one machine (the hot-spot problem the paper's conclusion calls
    out), and the key is entirely unavailable while its home server is
    down.

    Shares the {!Plookup_net.Net} cost model, so its message counts and
    per-server loads are directly comparable to the partial-lookup
    strategies'. *)

open Plookup_store

type t

val create : ?seed:int -> n:int -> unit -> t
val n : t -> int

val home : t -> string -> int
(** The key's home server (deterministic given the seed). *)

val place : t -> key:string -> Entry.t list -> unit
val add : t -> key:string -> Entry.t -> unit
val delete : t -> key:string -> Entry.t -> unit

val lookup : t -> key:string -> int -> Lookup_result.t
(** Contact the home server and take [t] random entries of the key's
    set.  If the home server is down the lookup fails outright — there
    is nowhere else to go. *)

val entries_of : t -> key:string -> Entry.t list
(** Current entry set of a key (empty for unknown keys). *)

(** {1 Failure injection and accounting} *)

val fail : t -> int -> unit
val recover : t -> int -> unit
val is_up : t -> int -> bool

val load : t -> int array
(** Messages received per server so far — the hot-spot measurement. *)

val reset_load : t -> unit
val total_stored : t -> int
