(* Music sharing: the paper's motivating Napster-style scenario.

   A directory maps song titles to the peers that host a copy.  Song
   popularity is Zipf-distributed; clients looking for a song only need
   a couple of peers to download from, so the directory answers with
   partial lookups.  We compare how evenly two strategies spread the
   download load over the hosting peers.

   Run with: dune exec examples/music_sharing.exe *)

open Plookup
open Plookup_store
open Plookup_util

let songs =
  [| "stairway-to-heaven"; "bohemian-rhapsody"; "hotel-california";
     "smells-like-teen-spirit"; "billie-jean"; "like-a-rolling-stone";
     "imagine"; "hey-jude"; "purple-haze"; "good-vibrations" |]

let peers_per_song = 40
let peer_count = 200
let downloads = 20_000
let sources_per_download = 2

(* Build the directory: each song is hosted by a random subset of peers. *)
let build config =
  let rng = Rng.create 7 in
  let directory = Directory.create ~seed:7 ~n:8 ~default:config () in
  Array.iter
    (fun song ->
      let hosts = Rng.sample_indices rng ~n:peer_count ~k:peers_per_song in
      let entries =
        Array.to_list
          (Array.map (fun p -> Entry.v ~payload:(Printf.sprintf "peer-%d" p) p) hosts)
      in
      Directory.place directory ~key:song entries)
    songs;
  directory

(* Simulate downloads: pick a song by popularity, ask the directory for
   a couple of sources, and tally the per-peer load. *)
let simulate directory =
  let rng = Rng.create 99 in
  let load = Array.make peer_count 0 in
  let misses = ref 0 in
  for _ = 1 to downloads do
    let song = songs.(Dist.zipf_ranks rng ~n:(Array.length songs) ~alpha:1.0 - 1) in
    let r = Directory.partial_lookup directory ~key:song sources_per_download in
    if Lookup_result.satisfied r then
      List.iter (fun e -> load.(Entry.id e) <- load.(Entry.id e) + 1) r.Lookup_result.entries
    else incr misses
  done;
  (load, !misses)

let describe name directory =
  let load, misses = simulate directory in
  let hosting = Array.to_list load |> List.filter (fun c -> c > 0) in
  let loads = Array.of_list (List.map float_of_int hosting) in
  Format.printf "@.%s (storage %d copies)@." name (Directory.total_storage directory);
  Format.printf "  peers serving downloads : %d of %d hosts@." (List.length hosting)
    peer_count;
  Format.printf "  busiest peer            : %.0f downloads@." (snd (Stats.min_max loads));
  Format.printf "  load stddev / mean      : %.2f@."
    (Stats.stddev loads /. Stats.mean loads);
  Format.printf "  failed lookups          : %d@." misses;
  let histogram = Histogram.create ~lo:0. ~hi:(snd (Stats.min_max loads) +. 1.) ~bins:8 in
  Array.iter (Histogram.add histogram) loads;
  Format.printf "  per-peer load histogram:@.%s" (Histogram.render ~width:40 histogram)

let () =
  Format.printf "music-sharing directory: %d songs, %d peers, %d downloads of %d sources each@."
    (Array.length songs) peer_count downloads sources_per_download;

  (* Fixed-x always answers with the same x peers per song: the unlucky
     first few hosts soak up all the traffic.  RoundRobin-y spreads
     copies (and therefore answers) across the fleet. *)
  describe "Fixed-4 per song" (build (Service.fixed 4));
  describe "RoundRobin-2 per song" (build (Service.round_robin 2));

  Format.printf
    "@.takeaway: at comparable storage, round-robin placement serves every host and@.\
     keeps the busiest peer far below the Fixed-x hot spots — the paper's fairness@.\
     argument (Section 4.5) in action.@."
