open Plookup_util

type t = {
  n : int;
  seed : int;
  default : Service.config;
  obs : Plookup_obs.Obs.t option; (* shared by every per-key service *)
  services : (string, Service.t) Hashtbl.t;
}

let create ?(seed = 0) ?obs ~n ~default () =
  if n <= 0 then invalid_arg "Directory.create: n must be positive";
  { n; seed; default; obs; services = Hashtbl.create 16 }

let n t = t.n
let default_config t = t.default

let key_seed t key =
  (* Mix the directory seed with a full-string key digest so per-key
     services have independent yet reproducible randomness.  The digest
     must cover the whole key: [Hashtbl.hash] (used here previously)
     inspects only a bounded prefix, so long keys sharing a prefix all
     collapsed onto the same per-key RNG stream. *)
  let digest = Rng.digest_string key in
  Int64.to_int (Rng.mix64 (Int64.logxor (Int64.of_int t.seed) digest)) land max_int

let create_service t ?config key =
  let config = Option.value config ~default:t.default in
  let service = Service.create ~seed:(key_seed t key) ?obs:t.obs ~n:t.n config in
  Hashtbl.replace t.services key service;
  service

let declare ?config t key =
  if Hashtbl.mem t.services key then
    invalid_arg (Printf.sprintf "Directory.declare: key %S already exists" key);
  ignore (create_service t ?config key)

let mem t key = Hashtbl.mem t.services key

let keys t =
  List.sort compare (Hashtbl.fold (fun key _ acc -> key :: acc) t.services [])

let config_of t key =
  Option.map Service.config (Hashtbl.find_opt t.services key)

let service_of t key = Hashtbl.find_opt t.services key

let find_or_create t key =
  match Hashtbl.find_opt t.services key with
  | Some service -> service
  | None -> create_service t key

let place t ~key entries = Service.place (find_or_create t key) entries
let add t ~key entry = Service.add (find_or_create t key) entry
let delete t ~key entry = Service.delete (find_or_create t key) entry

let partial_lookup ?reachable t ~key target =
  match Hashtbl.find_opt t.services key with
  | None -> Lookup_result.empty ~target
  | Some service -> Service.partial_lookup ?reachable service target

let partial_lookup_pref ?reachable t ~key ~cost target =
  match Hashtbl.find_opt t.services key with
  | None -> Lookup_result.empty ~target
  | Some service -> Service.partial_lookup_pref ?reachable service ~cost target

let total_storage t =
  Hashtbl.fold
    (fun _ service acc -> acc + Cluster.total_stored (Service.cluster service))
    t.services 0

let key_count t = Hashtbl.length t.services
