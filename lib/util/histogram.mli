(** Fixed-bin histograms, used for diagnostics in examples and for
    distribution sanity checks in tests. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Equal-width bins over [\[lo, hi)].  Out-of-range samples land in
    saturating under/overflow bins. *)

val add : t -> float -> unit
val count : t -> int
(** Total samples, including under/overflow. *)

val bin_count : t -> int -> int
(** Samples in bin [i] (0-based).  Raises on out-of-range bin. *)

val underflow : t -> int
val overflow : t -> int

val bin_bounds : t -> int -> float * float
(** [\[lo, hi)] of bin [i]. *)

val mean : t -> float
(** Mean of all in-range samples (exact, accumulated separately). *)

val render : ?width:int -> t -> string
(** A multi-line ASCII bar rendering. *)
