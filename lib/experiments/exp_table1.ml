open Plookup_util
open Plookup_store
module Service = Plookup.Service
module Analytic = Plookup_metrics.Analytic
module Storage = Plookup_metrics.Storage

let id = "table1"
let title = "Table 1: storage cost for managing h entries on n servers"

let measured_mean ctx ~n ~h config ~runs =
  Runner.mean_of
    (Runner.replicates_obs ctx ~count:runs (fun ~seed ~obs ->
         let service = Service.create ~seed ~obs ~n config in
         let gen = Entry.Gen.create () in
         Service.place service (Entry.Gen.batch gen h);
         float_of_int (Storage.measured (Service.cluster service))))

let run ?(n = 10) ?(h = 100) ?(budget = 200) ctx =
  let table =
    Table.create ~title
      ~columns:[ "strategy"; "formula"; "analytic"; "measured (mean)" ]
  in
  let runs = Ctx.scaled ctx 50 in
  let configs = Service.all_configs ~budget ~n ~h () in
  List.iter
    (fun config ->
      let analytic = Analytic.storage config ~n ~h in
      let measured = measured_mean ctx ~n ~h config ~runs in
      Table.add_row table
        [ Table.S (Service.config_name config);
          Table.S (Service.storage_formula config);
          Table.F analytic;
          Table.F measured ])
    configs;
  table
