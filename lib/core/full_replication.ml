open Plookup_store
module Net = Plookup_net.Net

type t = { cluster : Cluster.t }

(* Server-side behaviour: a client request at server [dst] triggers a
   broadcast; the broadcast store/remove itself is the shared default
   (mutate the local store). *)
let handle_data cluster dst _src (msg : Msg.data) : Msg.reply =
  let net = Cluster.net cluster in
  match msg with
  | Msg.Place entries ->
    ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.store_batch entries));
    Msg.Ack
  | Msg.Add e ->
    ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.store e));
    Msg.Ack
  | Msg.Delete e ->
    ignore (Net.broadcast net ~src:(Net.Server dst) (Msg.remove e));
    Msg.Ack
  | Msg.Lookup t -> Strategy_common.lookup_reply cluster dst t

let create cluster =
  Strategy_common.install cluster ~data:(handle_data cluster);
  { cluster }

let cluster t = t.cluster

let place t entries = Strategy_common.to_random_server t.cluster (Msg.place (Entry.dedup entries))
let add t e = Strategy_common.to_random_server t.cluster (Msg.add e)
let delete t e = Strategy_common.to_random_server t.cluster (Msg.delete e)
let partial_lookup ?reachable t target = Probe.single ?reachable t.cluster ~t:target

module Strategy = struct
  type nonrec t = t

  let meta =
    { Strategy_intf.name = "FullReplication";
      keys = [ "full"; "fullreplication"; "full_replication"; "replication" ];
      arity = 0;
      param_doc = "";
      storage_doc = "h*n";
      ablation = false;
      rank = 10 }

  let analytic_storage ~n ~h ~params:_ = float_of_int (h * n)
  let params_for_budget ~n:_ ~h:_ ~total:_ ~params:_ = []

  let create ?resync_stores:_ cluster ~params =
    Strategy_common.no_params ~who:"FullReplication" params;
    create cluster

  let place t ?budget:_ entries = place t entries
  let add = add
  let delete = delete
  let partial_lookup = partial_lookup
  let can_update t = Strategy_common.any_up t.cluster
  let repair_plan _ = Strategy_intf.Mirror
end

let () = Strategy_registry.register (module Strategy)
