open Plookup
open Plookup_store
module Net = Plookup_net.Net

(* A cluster whose servers are pre-loaded by hand and answer lookups
   directly, so probing behaviour can be tested in isolation. *)
let manual_cluster ~n placement =
  let cluster = Cluster.create ~seed:11 ~n () in
  List.iteri
    (fun server ids ->
      List.iter
        (fun i -> ignore (Server_store.add (Cluster.store cluster server) (Entry.v i)))
        ids)
    placement;
  Net.set_handler (Cluster.net cluster) (fun dst _src msg ->
      match (msg : Msg.t) with
      | Msg.Data (Msg.Lookup t) ->
        Msg.Entries
          (Server_store.random_pick (Cluster.store cluster dst) (Cluster.rng cluster) t)
      | _ -> Msg.Ack);
  cluster

let test_single_contacts_one () =
  let cluster = manual_cluster ~n:3 [ [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 1; 2 ] ] in
  let r = Probe.single cluster ~t:2 in
  Helpers.check_int "one server" 1 r.Lookup_result.servers_contacted;
  Helpers.check_int "two entries" 2 (Lookup_result.count r);
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r)

let test_single_no_retry () =
  (* The single probe does not retry even if the answer is short. *)
  let cluster = manual_cluster ~n:2 [ [ 0 ]; [ 0; 1; 2 ] ] in
  let shorts = ref 0 in
  for _ = 1 to 50 do
    let r = Probe.single cluster ~t:3 in
    Helpers.check_int "always one server" 1 r.Lookup_result.servers_contacted;
    if not (Lookup_result.satisfied r) then incr shorts
  done;
  Alcotest.(check bool) "sometimes lands on the small server" true (!shorts > 0)

let test_single_all_down () =
  let cluster = manual_cluster ~n:2 [ [ 0 ]; [ 1 ] ] in
  Cluster.fail cluster 0;
  Cluster.fail cluster 1;
  let r = Probe.single cluster ~t:1 in
  Helpers.check_int "no server" 0 r.Lookup_result.servers_contacted;
  Helpers.check_int "no entries" 0 (Lookup_result.count r)

let test_random_order_merges () =
  (* Each server has 2 entries; target 6 requires visiting all three. *)
  let cluster = manual_cluster ~n:3 [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ] in
  let r = Probe.random_order cluster ~t:6 in
  Helpers.check_int "three servers" 3 r.Lookup_result.servers_contacted;
  Alcotest.(check (list int)) "all entries" [ 0; 1; 2; 3; 4; 5 ]
    (Helpers.sorted_ids r.Lookup_result.entries)

let test_random_order_stops_early () =
  let cluster = manual_cluster ~n:3 [ [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 1; 2 ] ] in
  let r = Probe.random_order cluster ~t:2 in
  Helpers.check_int "one server suffices" 1 r.Lookup_result.servers_contacted

let test_random_order_exhausts_unsatisfied () =
  let cluster = manual_cluster ~n:2 [ [ 0 ]; [ 0 ] ] in
  let r = Probe.random_order cluster ~t:5 in
  Helpers.check_int "tried everyone" 2 r.Lookup_result.servers_contacted;
  Alcotest.(check bool) "unsatisfied" false (Lookup_result.satisfied r);
  Helpers.check_int "coverage-limited answer" 1 (Lookup_result.count r)

let test_truncation_to_target () =
  (* Merging two disjoint 5-entry servers for t=6 collects up to 10; the
     delivered answer must be exactly 6. *)
  let cluster = manual_cluster ~n:2 [ [ 0; 1; 2; 3; 4 ]; [ 5; 6; 7; 8; 9 ] ] in
  for _ = 1 to 20 do
    let r = Probe.random_order cluster ~t:6 in
    Helpers.check_int "exactly t entries" 6 (Lookup_result.count r)
  done

let test_reachable_filter () =
  let cluster = manual_cluster ~n:3 [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  let reachable s = s <> 1 in
  for _ = 1 to 30 do
    let r = Probe.random_order ~reachable cluster ~t:3 in
    Alcotest.(check bool) "entry 1 never seen" false
      (List.exists (fun e -> Entry.id e = 1) r.Lookup_result.entries)
  done

let test_stride_visits_disjoint_servers () =
  (* n=4, step 2: from server 0 the stride visits 0, 2 then falls back to
     the remaining servers. *)
  let cluster = manual_cluster ~n:4 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] in
  let r = Probe.stride cluster ~start:0 ~step:2 ~t:2 in
  Helpers.check_int "two strided servers" 2 r.Lookup_result.servers_contacted;
  Alcotest.(check (list int)) "entries from 0 and 2" [ 0; 2 ]
    (Helpers.sorted_ids r.Lookup_result.entries)

let test_stride_extends_past_cycle () =
  (* gcd(step, n) > 1 leaves residues unvisited; the probe must extend to
     them rather than loop. *)
  let cluster = manual_cluster ~n:4 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] in
  let r = Probe.stride cluster ~start:0 ~step:2 ~t:4 in
  Helpers.check_int "all four" 4 r.Lookup_result.servers_contacted;
  Alcotest.(check (list int)) "full coverage" [ 0; 1; 2; 3 ]
    (Helpers.sorted_ids r.Lookup_result.entries)

let test_stride_falls_back_on_failure () =
  let cluster = manual_cluster ~n:4 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] in
  Cluster.fail cluster 2;
  let r = Probe.stride cluster ~start:0 ~step:2 ~t:3 in
  Alcotest.(check bool) "satisfied without server 2" true (Lookup_result.satisfied r);
  Alcotest.(check bool) "no entry from the dead server" false
    (List.exists (fun e -> Entry.id e = 2) r.Lookup_result.entries)

let test_stride_negative_step () =
  (* Regression: OCaml's sign-preserving [mod] walked the position
     negative and crashed the visited-array access. *)
  let cluster = manual_cluster ~n:4 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] in
  let r = Probe.stride cluster ~start:0 ~step:(-1) ~t:3 in
  Alcotest.(check bool) "satisfied" true (Lookup_result.satisfied r);
  (* step -1 walks 0, 3, 2, ... *)
  Alcotest.(check (list int)) "walks backwards" [ 0; 2; 3 ]
    (Helpers.sorted_ids r.Lookup_result.entries)

let test_stride_step_multiple_of_n () =
  (* step = 0 (mod n) degenerates to the start residue; the probe must
     extend to the rest instead of looping or stalling short. *)
  let cluster = manual_cluster ~n:4 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] in
  List.iter
    (fun step ->
      let r = Probe.stride cluster ~start:1 ~step ~t:4 in
      Helpers.check_int
        (Printf.sprintf "full coverage at step %d" step)
        4
        (Lookup_result.count r))
    [ 0; 4; 8; -4 ]

let prop_stride_total_for_any_step =
  Helpers.qcheck ~count:300 "stride handles any integer start/step without raising"
    QCheck2.Gen.(triple (int_range (-50) 50) (int_range (-50) 50) (int_range 1 5))
    (fun (start, step, t) ->
      let cluster = manual_cluster ~n:5 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ] in
      let r = Probe.stride cluster ~start ~step ~t in
      (* One entry per server, so a target of t needs exactly t contacts
         and full coverage is always reachable. *)
      Lookup_result.count r = t && r.Lookup_result.servers_contacted = t)

let test_each_contact_counts_a_message () =
  let cluster = manual_cluster ~n:3 [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ] in
  Net.reset_counters (Cluster.net cluster);
  let r = Probe.random_order cluster ~t:6 in
  Helpers.check_int "messages = contacts" r.Lookup_result.servers_contacted
    (Net.messages_received (Cluster.net cluster))

let test_pick_from_table_matches_fold_formulation () =
  (* pick_from_table fills an array directly instead of materialising
     the Hashtbl.fold list, but it must return the SAME elements in the
     SAME order from the SAME rng draws as the old fold-based code —
     async_client determinism depends on it.  The reference below is
     that old formulation, replayed on a copied generator. *)
  let module Rng = Plookup_util.Rng in
  let reference seen ~rng ~target =
    let all = Hashtbl.fold (fun _ e acc -> e :: acc) seen [] in
    if List.length all <= target then all
    else Array.to_list (Rng.sample rng (Array.of_list all) target)
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun id -> Hashtbl.replace seen id (Entry.v id))
    [ 3; 11; 7; 42; 0; 19; 5; 28; 33; 2 ];
  let check target =
    let rng = Rng.create 77 in
    let ref_rng = Rng.copy rng in
    let got = Probe.pick_from_table seen ~rng ~target in
    let want = reference seen ~rng:ref_rng ~target in
    Alcotest.(check (list int))
      (Printf.sprintf "target %d" target)
      (List.map Entry.id want) (List.map Entry.id got);
    (* Identical draws consumed: the generators stay in lockstep. *)
    Helpers.check_int "state in lockstep" (Rng.int ref_rng 1_000_000)
      (Rng.int rng 1_000_000)
  in
  (* Truncating branch (len > target) and pass-through branch. *)
  List.iter check [ 1; 4; 9; 10; 15 ];
  Alcotest.(check (list int)) "empty table" []
    (List.map Entry.id
       (Probe.pick_from_table (Hashtbl.create 4) ~rng:(Rng.create 1) ~target:3))

let prop_never_exceeds_target =
  Helpers.qcheck "delivered entries never exceed the target"
    QCheck2.Gen.(pair (int_range 1 12) int)
    (fun (t, seed) ->
      ignore seed;
      let cluster = manual_cluster ~n:3 [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ]; [ 8; 9 ] ] in
      let r = Probe.random_order cluster ~t in
      Lookup_result.count r <= t)

let () =
  Helpers.run "probe"
    [ ( "probe",
        [ Alcotest.test_case "single contacts one" `Quick test_single_contacts_one;
          Alcotest.test_case "single no retry" `Quick test_single_no_retry;
          Alcotest.test_case "single all down" `Quick test_single_all_down;
          Alcotest.test_case "random_order merges" `Quick test_random_order_merges;
          Alcotest.test_case "random_order stops early" `Quick test_random_order_stops_early;
          Alcotest.test_case "random_order exhausts" `Quick
            test_random_order_exhausts_unsatisfied;
          Alcotest.test_case "truncation" `Quick test_truncation_to_target;
          Alcotest.test_case "reachable filter" `Quick test_reachable_filter;
          Alcotest.test_case "stride disjoint" `Quick test_stride_visits_disjoint_servers;
          Alcotest.test_case "stride extends" `Quick test_stride_extends_past_cycle;
          Alcotest.test_case "stride failure fallback" `Quick
            test_stride_falls_back_on_failure;
          Alcotest.test_case "stride negative step" `Quick test_stride_negative_step;
          Alcotest.test_case "stride step multiple of n" `Quick
            test_stride_step_multiple_of_n;
          prop_stride_total_for_any_step;
          Alcotest.test_case "message accounting" `Quick test_each_contact_counts_a_message;
          Alcotest.test_case "pick_from_table matches fold" `Quick
            test_pick_from_table_matches_fold_formulation;
          prop_never_exceeds_target ] ) ]
