(** The server fleet a strategy runs on: [n] servers, each with a local
    {!Plookup_store.Server_store}, wired together by a message-counting
    {!Plookup_net.Net}, plus the deterministic randomness source every
    randomized decision draws from. *)

open Plookup_store
open Plookup_util

type t

val create : ?seed:int -> ?obs:Plookup_obs.Obs.t -> n:int -> unit -> t
(** [create ~n ()] builds [n] empty servers.  [seed] (default 0) fixes
    the generator driving every random choice made on this cluster and
    the Hash-y hash-function family.

    [obs] (default: a fresh private handle) is where this cluster
    instruments itself: the network's counters live on its metrics
    registry, message deliveries are classified per {!Msg} plane, and —
    when the handle's trace is enabled — every transmission emits
    Send/Recv/Drop spans. *)

val n : t -> int
val seed : t -> int
val rng : t -> Rng.t
val net : t -> (Msg.t, Msg.reply) Plookup_net.Net.t
val obs : t -> Plookup_obs.Obs.t
(** The observability handle this cluster reports into (the one given at
    {!create}, or its private one). *)

val store : t -> int -> Server_store.t

(** {1 Failures} *)

val fail : t -> int -> unit
val recover : t -> int -> unit
val is_up : t -> int -> bool
val up_servers : t -> int list

val up_count : t -> int
(** Number of up servers, O(1). *)

val up_servers_into : t -> int array -> int
(** Ascending up server ids into [buf] (which must hold {!up_count});
    returns the count.  {!up_servers} without the list allocation. *)

val fail_exactly : t -> int list -> unit
val random_up_server : t -> int option
(** Uniform among up servers; [None] if all are down — the paper's
    "a client selects a server at random... if the server has failed,
    keep on selecting another". *)

val next_up_from : t -> int -> int option
(** [next_up_from t i] is the first up server strictly after [i] in ring
    order ([i+1, i+2, ... mod n]), never [i] itself; [None] when no
    other server is up.  The repair subsystem's deterministic buddy and
    sync-peer choice. *)

(** {1 Fault injection}

    Thin pass-throughs to {!Plookup_net.Net}'s deterministic
    fault-injection layer, so experiments configure loss, duplication,
    jitter and partitions without reaching for the raw network. *)

val set_faults :
  t -> ?seed:int -> ?loss:float -> ?duplication:float -> ?jitter:float -> unit -> unit
(** [seed] defaults to the cluster seed, keeping the fault schedule a
    function of the cluster's one master seed. *)

val clear_faults : t -> unit
val set_faults_enabled : t -> bool -> unit

(** {2 Server capacity and gray failure}

    Pass-throughs to the {!Plookup_net.Net} overload model (queueing +
    service delay on engine-routed deliveries, bounded inboxes, load
    shedding, gray degradation).  See the Net documentation for the
    full semantics. *)

val set_capacity : t -> service_rate:float -> queue_limit:int -> ?nack:bool -> unit -> unit
(** Finite servers: [service_rate] messages per time unit, at most
    [queue_limit] queued requests.  [nack] (default [false]) makes a
    full queue answer with the fast {!Msg.reply} [Busy] nack instead of
    dropping silently. *)

val clear_capacity : t -> unit

val set_degraded : t -> int -> factor:float -> unit
(** Gray-fail one server: its service time is multiplied by [factor]
    ([>= 1]; [1.0] restores health).  Requires {!set_capacity} first. *)

val degraded_factor : t -> int -> float
val queue_depth : t -> int -> int

val messages_shed : t -> int
(** Requests rejected by full inbox queues (dropped or nacked). *)

val partition :
  t -> name:string -> ?clients:[ `A | `B ] -> a:int list -> b:int list -> unit -> unit

val heal : t -> name:string -> unit
val heal_all : t -> unit

(** {1 Inspection (used by the metrics layer)} *)

val total_stored : t -> int
(** Combined number of entries over all servers — the paper's storage
    cost (failed servers still hold their entries and are counted; the
    storage was spent). *)

val coverage : t -> Entry.Set.t
(** Distinct entries retrievable when contacting every *up* server. *)

val placement : t -> Entry.t list array
(** Per-server contents snapshot (all servers, up or down). *)

val snapshot_bitsets : t -> capacity:int -> Bitset.t array
(** Per-server entry-id bitsets, for the fault-tolerance heuristic. *)

val clear_stores : t -> unit
(** Empty every server (does not touch counters or failure state). *)

val pp : Format.formatter -> t -> unit
