type t = { seed : int; scale : float }

let default = { seed = 42; scale = 1.0 }

let v ?(seed = 42) ?(scale = 1.0) () =
  if scale <= 0. then invalid_arg "Ctx.v: scale must be positive";
  { seed; scale }

let scaled t base = max 1 (int_of_float (Float.round (float_of_int base *. t.scale)))

let run_seed t index =
  Int64.to_int
    (Plookup_util.Rng.mix64 (Int64.of_int ((t.seed * 1_000_003) + index)))
  land max_int
