open Plookup_store

type config =
  | Full_replication
  | Fixed of int
  | Random_server of int
  | Random_server_replacing of int
  | Round_robin of int
  | Round_robin_replicated of int * int
  | Hash of int

let config_name = function
  | Full_replication -> "FullReplication"
  | Fixed x -> Printf.sprintf "Fixed-%d" x
  | Random_server x -> Printf.sprintf "RandomServer-%d" x
  | Random_server_replacing x -> Printf.sprintf "RandomServerReplacing-%d" x
  | Round_robin y -> Printf.sprintf "RoundRobin-%d" y
  | Round_robin_replicated (y, k) -> Printf.sprintf "RoundRobinHA-%dx%d" y k
  | Hash y -> Printf.sprintf "Hash-%d" y

(* "roundrobinha-YxK" (and aliases) -> Round_robin_replicated (Y, K). *)
let parse_replicated name =
  match String.index_opt name '-' with
  | None -> None
  | Some i ->
    let prefix = String.sub name 0 i in
    let rest = String.sub name (i + 1) (String.length name - i - 1) in
    if not (List.mem prefix [ "roundrobinha"; "round_robin_ha"; "roundha" ]) then None
    else begin
      match String.split_on_char 'x' rest with
      | [ y; k ] -> (
        match (int_of_string_opt y, int_of_string_opt k) with
        | Some y, Some k when y > 0 && k > 0 -> Some (Round_robin_replicated (y, k))
        | _ -> None)
      | _ -> None
    end

let config_of_string s =
  let lower = String.lowercase_ascii (String.trim s) in
  match parse_replicated lower with
  | Some config -> Ok config
  | None ->
  let split name =
    match String.rindex_opt name '-' with
    | None -> (name, None)
    | Some i -> (
      let prefix = String.sub name 0 i in
      let suffix = String.sub name (i + 1) (String.length name - i - 1) in
      match int_of_string_opt suffix with
      | Some p -> (prefix, Some p)
      | None -> (name, None))
  in
  match split lower with
  | ("full" | "fullreplication" | "full_replication" | "replication"), None ->
    Ok Full_replication
  | "fixed", Some x when x > 0 -> Ok (Fixed x)
  | ("randomserver" | "random_server" | "random"), Some x when x > 0 -> Ok (Random_server x)
  | ("randomserverreplacing" | "random_server_replacing"), Some x when x > 0 ->
    Ok (Random_server_replacing x)
  | ("roundrobin" | "round_robin" | "round"), Some y when y > 0 -> Ok (Round_robin y)
  | "hash", Some y when y > 0 -> Ok (Hash y)
  | _ ->
    Error
      (Printf.sprintf
         "unknown strategy %S (expected full, fixed-X, randomserver-X, round-Y, \
          roundrobinha-YxK or hash-Y)"
         s)

let param = function
  | Full_replication -> None
  | Fixed x | Random_server x | Random_server_replacing x -> Some x
  | Round_robin y | Round_robin_replicated (y, _) | Hash y -> Some y

let storage_for_budget config ~n ~h ~total =
  if n <= 0 || h <= 0 || total <= 0 then
    invalid_arg "Service.storage_for_budget: n, h, total must be positive";
  match config with
  | Full_replication -> Full_replication
  | Fixed _ -> Fixed (max 1 (total / n))
  | Random_server _ -> Random_server (max 1 (total / n))
  | Random_server_replacing _ -> Random_server_replacing (max 1 (total / n))
  | Round_robin _ -> Round_robin (max 1 (total / h))
  | Round_robin_replicated (_, k) -> Round_robin_replicated (max 1 (total / h), k)
  | Hash _ -> Hash (max 1 (total / h))

(* The strategy implementations behind one record of operations. *)
type ops = {
  op_place : ?budget:int -> Entry.t list -> unit;
  op_add : Entry.t -> unit;
  op_delete : Entry.t -> unit;
  op_lookup : ?reachable:(int -> bool) -> int -> Lookup_result.t;
  op_can_update : unit -> bool;
}

type t = {
  cluster : Cluster.t;
  config : config;
  ops : ops;
  repair : Repair.t option;
}

(* Build the strategy and describe its placement to the repair layer.
   [resync_stores] is false when repair is active: Round-Robin's
   recovery then replicates the ledger only, leaving store contents to
   the incremental digest sync. *)
let build_ops cluster config ~resync_stores =
  match config with
  | Full_replication ->
    let s = Full_replication.create cluster in
    ( { op_place = (fun ?budget:_ entries -> Full_replication.place s entries);
        op_add = Full_replication.add s;
        op_delete = Full_replication.delete s;
        op_lookup =
          (fun ?reachable target -> Full_replication.partial_lookup ?reachable s target);
        op_can_update = (fun () -> Cluster.up_servers cluster <> [])
      },
      Repair.Mirror )
  | Fixed x ->
    let s = Fixed.create cluster ~x in
    ( { op_place = (fun ?budget:_ entries -> Fixed.place s entries);
        op_add = Fixed.add s;
        op_delete = Fixed.delete s;
        op_lookup = (fun ?reachable target -> Fixed.partial_lookup ?reachable s target);
        op_can_update = (fun () -> Cluster.up_servers cluster <> []) },
      Repair.Mirror )
  | Random_server x ->
    let s = Random_server.create cluster ~x in
    ( { op_place = (fun ?budget:_ entries -> Random_server.place s entries);
        op_add = Random_server.add s;
        op_delete = Random_server.delete s;
        op_lookup = (fun ?reachable target -> Random_server.partial_lookup ?reachable s target);
        op_can_update = (fun () -> Cluster.up_servers cluster <> [])
      },
      Repair.Free x )
  | Random_server_replacing x ->
    let s = Random_server.create ~replacement_on_delete:true cluster ~x in
    ( { op_place = (fun ?budget:_ entries -> Random_server.place s entries);
        op_add = Random_server.add s;
        op_delete = Random_server.delete s;
        op_lookup = (fun ?reachable target -> Random_server.partial_lookup ?reachable s target);
        op_can_update = (fun () -> Cluster.up_servers cluster <> [])
      },
      Repair.Free x )
  | Round_robin_replicated (y, coordinators) ->
    let s = Round_robin.create ~coordinators ~resync_stores cluster ~y in
    ( { op_place = (fun ?budget entries -> Round_robin.place ?budget s entries);
        op_add = Round_robin.add s;
        op_delete = Round_robin.delete s;
        op_lookup = (fun ?reachable target -> Round_robin.partial_lookup ?reachable s target);
        op_can_update = (fun () -> Round_robin.can_update s)
      },
      Repair.Assigned (Round_robin.assigned_servers s) )
  | Round_robin y ->
    let s = Round_robin.create ~resync_stores cluster ~y in
    ( { op_place = (fun ?budget entries -> Round_robin.place ?budget s entries);
        op_add = Round_robin.add s;
        op_delete = Round_robin.delete s;
        op_lookup = (fun ?reachable target -> Round_robin.partial_lookup ?reachable s target);
        op_can_update = (fun () -> Round_robin.can_update s)
      },
      Repair.Assigned (Round_robin.assigned_servers s) )
  | Hash y ->
    let s = Hash_scheme.create cluster ~y in
    ( { op_place = (fun ?budget entries -> Hash_scheme.place ?budget s entries);
        op_add = Hash_scheme.add s;
        op_delete = Hash_scheme.delete s;
        op_lookup = (fun ?reachable target -> Hash_scheme.partial_lookup ?reachable s target);
        op_can_update = (fun () -> Cluster.up_servers cluster <> [])
      },
      Repair.Assigned (fun e -> Some (Hash_scheme.servers_of s e)) )

let of_cluster ?(repair = Repair.disabled) cluster config =
  let repair_on = repair.Repair.mode <> Repair.Off in
  let ops, plan = build_ops cluster config ~resync_stores:(not repair_on) in
  let rep =
    if repair_on then Some (Repair.install cluster ~config:repair ~plan) else None
  in
  { cluster; config; ops; repair = rep }

let create ?seed ?repair ~n config = of_cluster ?repair (Cluster.create ?seed ~n ()) config

let cluster t = t.cluster
let config t = t.config
let name t = config_name t.config
let n t = Cluster.n t.cluster
let repair t = t.repair

let place ?budget t entries = t.ops.op_place ?budget entries
let add t e = t.ops.op_add e
let delete t e = t.ops.op_delete e
let partial_lookup ?reachable t target = t.ops.op_lookup ?reachable target
let can_update t = t.ops.op_can_update ()

let partial_lookup_pref ?reachable t ~cost target =
  (* Exhaustive probe: demand more entries than any server set can hold
     so the prober visits every reachable server, then rank. *)
  let exhaustive = t.ops.op_lookup ?reachable max_int in
  let ranked =
    List.sort (fun a b -> Float.compare (cost a) (cost b)) exhaustive.Lookup_result.entries
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | e :: rest -> e :: take (k - 1) rest
  in
  { Lookup_result.entries = take target ranked;
    servers_contacted = exhaustive.Lookup_result.servers_contacted;
    target }

let all_configs ~budget ~n ~h =
  [ Full_replication;
    storage_for_budget (Fixed 1) ~n ~h ~total:budget;
    storage_for_budget (Random_server 1) ~n ~h ~total:budget;
    storage_for_budget (Round_robin 1) ~n ~h ~total:budget;
    storage_for_budget (Hash 1) ~n ~h ~total:budget ]
