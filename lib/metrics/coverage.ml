open Plookup_util
open Plookup_store
module Service = Plookup.Service

let measured cluster = Entry.Set.cardinal (Plookup.Cluster.coverage cluster)

let measured_over_instances ?(seed = 0) ?obs ~n ~entries ~config ?budget ~runs () =
  let master = Rng.create seed in
  let acc = Stats.Accum.create () in
  for _ = 1 to runs do
    let run_seed = Int64.to_int (Rng.bits64 master) land max_int in
    let service = Service.create ~seed:run_seed ?obs ~n config in
    let gen = Entry.Gen.create () in
    Service.place ?budget service (Entry.Gen.batch gen entries);
    Stats.Accum.add acc (float_of_int (measured (Service.cluster service)))
  done;
  (Stats.Accum.mean acc, Stats.Accum.ci95_half_width acc)
