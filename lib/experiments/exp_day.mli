(** Extension: a production day under overload — the chaos drill.

    One simulated "day" per (strategy, client) cell: an open-loop client
    population whose arrival rate follows a diurnal sine swing plus a 6x
    flash crowd in the window [0.45, 0.60] of the day, with Zipf key
    popularity (each rank owning a fixed probe-order permutation, so
    popular keys skew the load), while servers churn, the repair layer
    heals, a steady update stream deletes and adds entries, and — during
    the crowd — two servers gray-degrade (service time multiplied by the
    overload context's [degrade] factor).

    Every server runs the {!Plookup_net.Net} capacity model (finite
    service rate, bounded inbox, load shedding).  Each strategy is
    measured under two disciplines sharing the identical day:

    - {e naive}: silent shedding, plain retrying client — clients
      discover overload by timeout;
    - {e tuned}: [Busy] fast-nack shedding plus the tail-tolerant
      client — deadline budget, hedged backups at the cell's own
      observed latency quantile, shared per-server circuit breaker,
      decorrelated retry jitter;
    - {e tuned+cache} (only when the context carries a {!Ctx.cache}
      config): the tuned client plus a shared {!Plookup.Client_cache} —
      TTL'd LRU keyed by rank with singleflight coalescing, optional
      stale-while-revalidate.  The cache config's [hotspot] knob blends
      a hotspot-adversarial access pattern
      ({!Plookup_workload.Hotspot}) into {e every} cell's key draw, so
      the comparison stays apples-to-apples.

    Reported per cell: lookup success rate (counting only live
    entries), whole-day p50 and flash-crowd p99/p999 latency (from the
    observability layer's log-scale histograms via
    {!Plookup_obs.Metrics.histogram_quantile}), per-server load skew
    (peak/mean messages received), shed and hedge rates as a percent of
    data-plane sends, and stale reads (entries returned after their
    delete time).  With the cached cell enabled, two more columns:
    data-plane messages per lookup (background cache refreshes
    included) and cache-served lookup rate (hits + stale serves +
    singleflight joins). *)

val id : string
val title : string

val run :
  ?n:int ->
  ?h:int ->
  ?budget:int ->
  ?t:int ->
  ?keys:int ->
  ?alpha:float ->
  ?rtt_lo:float ->
  ?rtt_hi:float ->
  ?base_rate:float ->
  ?mttf:float ->
  ?mttr:float ->
  ?horizon:float ->
  ?update_every:float ->
  Ctx.t ->
  Plookup_util.Table.t
(** Defaults: n=10, h=100, budget 200 (Fixed gets x = t+5 instead),
    t=35, 50 Zipf keys at alpha=1.1, RTT uniform in [5, 50] ms with a
    100 ms client timeout, base arrival rate 1 lookup per time unit,
    gentle churn (mttf=250, mttr=20), horizon 600 time units with one
    delete+add every 10.  The context's [mttf]/[mttr]/[horizon]/
    [repair]/[overload] fields override the corresponding defaults
    (overload: {!Ctx.default_overload}). *)
