(** Synthetic update streams (Section 6.1).

    Adds arrive as a Poisson process (the paper uses one add per
    lambda = 10 time units); each added entry lives for a random
    lifetime — exponential or Zipf-like — scaled to expectation
    [lambda * h], so the system holds [h] entries in steady state.  The
    stream is generated up front as timestamped events and replayed,
    exactly like the paper's event-driven simulation.

    The generator also emits an initial population of [h] entries (the
    steady state to start from) whose deletes are scheduled like any
    other entry's. *)

open Plookup_store

type op = Add of Entry.t | Delete of Entry.t

type event = { time : float; op : op }

type spec = {
  steady_entries : int;  (** h: expected entries in steady state *)
  add_period : float;  (** lambda: mean time units between adds (10 in the paper) *)
  tail_heavy : bool;  (** false = exponential lifetimes, true = Zipf-like *)
  updates : int;  (** events to generate after the initial population *)
}

val default_spec : spec
(** h=100, lambda=10, exponential, 10000 updates — the paper's default. *)

type stream = {
  initial : Entry.t list;  (** the steady-state population placed at time 0 *)
  events : event list;  (** updates in non-decreasing time order *)
  gen : Entry.Gen.t;  (** the id source, for bitset capacities *)
}

val generate : Plookup_util.Rng.t -> spec -> stream
(** Events are truncated to exactly [spec.updates] operations; deletes of
    entries whose lifetime ends beyond the horizon are dropped with
    their adds kept (the entry simply outlives the simulation). *)

val pp_event : Format.formatter -> event -> unit

val live_after : stream -> int -> Entry.t list
(** The entries alive after applying the first [k] events to the initial
    population — for fairness measurements mid-replay. *)
