type actor = Client | Server of int

type drop_reason = Down | Lost | Blocked | Shed

type kind =
  | Send of { src : actor; dst : int; plane : string; msg : string }
  | Recv of { src : actor; dst : int; plane : string; msg : string }
  | Drop of { src : actor; dst : int; plane : string; msg : string; reason : drop_reason }
  | Retry of { dst : int; attempt : int }
  | Timeout of { dst : int; after : float }
  | Repair_round of { coordinator : int; tick : int; re_replications : int; trims : int }
  | Migration of { entry : int; src : int; dst : int }
  | Mark of { label : string; detail : string }

type t = { id : int; time : float; cause : int option; kind : kind }

let label t =
  match t.kind with
  | Send _ -> "send"
  | Recv _ -> "recv"
  | Drop _ -> "drop"
  | Retry _ -> "retry"
  | Timeout _ -> "timeout"
  | Repair_round _ -> "repair_round"
  | Migration _ -> "migration"
  | Mark _ -> "mark"

let reason_name = function Down -> "down" | Lost -> "lost" | Blocked -> "blocked" | Shed -> "shed"

let actor_json = function Client -> "-1" | Server i -> string_of_int i

(* Shortest decimal rendering that parses back to exactly [x]: widen the
   precision until the round trip is exact (%.17g always is, so the loop
   terminates — also on nan, via the p = 17 bound). *)
let shortest_roundtrip x =
  let rec go p =
    let s = Printf.sprintf "%.*g" p x in
    if p >= 17 || float_of_string s = x then s else go (p + 1)
  in
  go 7

(* %.6g keeps typical values short, but must not be trusted blindly:
   past six significant digits (times >= 1e6 sim-ms on long horizons) it
   silently truncates. *)
let float_g6 x =
  let s = Printf.sprintf "%.6g" x in
  if float_of_string s = x then s else shortest_roundtrip x

(* Times are printed with enough digits to round-trip the engine's
   float clock. *)
let add_float buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" x)
  else Buffer.add_string buf (float_g6 x)

let add_json buf t =
  Buffer.add_string buf "{\"id\":";
  Buffer.add_string buf (string_of_int t.id);
  Buffer.add_string buf ",\"t\":";
  add_float buf t.time;
  (match t.cause with
  | Some c ->
    Buffer.add_string buf ",\"cause\":";
    Buffer.add_string buf (string_of_int c)
  | None -> ());
  Buffer.add_string buf ",\"kind\":\"";
  Buffer.add_string buf (label t);
  Buffer.add_string buf "\"";
  let field k v =
    Buffer.add_string buf ",\"";
    Buffer.add_string buf k;
    Buffer.add_string buf "\":";
    Buffer.add_string buf v
  in
  let str k v = field k (Printf.sprintf "%S" v) in
  (match t.kind with
  | Send { src; dst; plane; msg } | Recv { src; dst; plane; msg } ->
    field "src" (actor_json src);
    field "dst" (string_of_int dst);
    str "plane" plane;
    str "msg" msg
  | Drop { src; dst; plane; msg; reason } ->
    field "src" (actor_json src);
    field "dst" (string_of_int dst);
    str "plane" plane;
    str "msg" msg;
    str "reason" (reason_name reason)
  | Retry { dst; attempt } ->
    field "dst" (string_of_int dst);
    field "attempt" (string_of_int attempt)
  | Timeout { dst; after } ->
    field "dst" (string_of_int dst);
    field "after" (float_g6 after)
  | Repair_round { coordinator; tick; re_replications; trims } ->
    field "coordinator" (string_of_int coordinator);
    field "tick" (string_of_int tick);
    field "re_replications" (string_of_int re_replications);
    field "trims" (string_of_int trims)
  | Migration { entry; src; dst } ->
    field "entry" (string_of_int entry);
    field "src" (string_of_int src);
    field "dst" (string_of_int dst)
  | Mark { label; detail } ->
    str "label" label;
    str "detail" detail);
  Buffer.add_char buf '}'

let to_json t =
  let buf = Buffer.create 128 in
  add_json buf t;
  Buffer.contents buf

let pp_actor ppf = function
  | Client -> Format.pp_print_string ppf "client"
  | Server i -> Format.fprintf ppf "server %d" i

let pp ppf t =
  Format.fprintf ppf "[%10.3f] #%-6d %-12s" t.time t.id (label t);
  (match t.cause with Some c -> Format.fprintf ppf " <-#%d" c | None -> ());
  match t.kind with
  | Send { src; dst; plane; msg } ->
    Format.fprintf ppf " %a -> %d %s/%s" pp_actor src dst plane msg
  | Recv { src; dst; plane; msg } ->
    Format.fprintf ppf " %a => %d %s/%s" pp_actor src dst plane msg
  | Drop { src; dst; plane; msg; reason } ->
    Format.fprintf ppf " %a -x %d %s/%s (%s)" pp_actor src dst plane msg
      (reason_name reason)
  | Retry { dst; attempt } -> Format.fprintf ppf " -> %d (attempt %d)" dst attempt
  | Timeout { dst; after } -> Format.fprintf ppf " -> %d after %.3g" dst after
  | Repair_round { coordinator; tick; re_replications; trims } ->
    Format.fprintf ppf " coordinator %d tick %d: %d re-replications, %d trims" coordinator
      tick re_replications trims
  | Migration { entry; src; dst } ->
    Format.fprintf ppf " entry %d: %d -> %d" entry src dst
  | Mark { label; detail } -> Format.fprintf ppf " %-16s %s" label detail
