open Plookup_store
open Plookup_util

type hint_kind = H_store | H_remove | H_add_sampled | H_remove_counted

type t =
  | Place of Entry.t list
  | Add of Entry.t
  | Delete of Entry.t
  | Lookup of int
  | Store of Entry.t
  | Store_batch of Entry.t list
  | Remove of Entry.t
  | Add_sampled of Entry.t
  | Remove_counted of Entry.t
  | Fetch_candidate of int list
  | Sync_add of Entry.t
  | Sync_delete of Entry.t
  | Sync_state
  | Digest_request of Bitset.t
  | Sync_fix of Entry.t list * int list
  | Hint of int * hint_kind * Entry.t
  | Digest_pull
  | Repair_store of Entry.t

type reply =
  | Ack
  | Entries of Entry.t list
  | Candidate of Entry.t option
  | Digest of Bitset.t

let hint_kind_name = function
  | H_store -> "store"
  | H_remove -> "remove"
  | H_add_sampled -> "add_sampled"
  | H_remove_counted -> "remove_counted"

let pp_entries ppf entries =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") Entry.pp)
    entries

let pp_ids ppf ids =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    ids

let pp ppf = function
  | Place entries -> Format.fprintf ppf "place %a" pp_entries entries
  | Add e -> Format.fprintf ppf "add %a" Entry.pp e
  | Delete e -> Format.fprintf ppf "delete %a" Entry.pp e
  | Lookup t -> Format.fprintf ppf "lookup t=%d" t
  | Store e -> Format.fprintf ppf "store %a" Entry.pp e
  | Store_batch entries -> Format.fprintf ppf "store_batch %a" pp_entries entries
  | Remove e -> Format.fprintf ppf "remove %a" Entry.pp e
  | Add_sampled e -> Format.fprintf ppf "add_sampled %a" Entry.pp e
  | Remove_counted e -> Format.fprintf ppf "remove_counted %a" Entry.pp e
  | Fetch_candidate ids -> Format.fprintf ppf "fetch_candidate excluding %a" pp_ids ids
  | Sync_add e -> Format.fprintf ppf "sync_add %a" Entry.pp e
  | Sync_delete e -> Format.fprintf ppf "sync_delete %a" Entry.pp e
  | Sync_state -> Format.pp_print_string ppf "sync_state"
  | Digest_request bits -> Format.fprintf ppf "digest_request %a" pp_ids (Bitset.to_list bits)
  | Sync_fix (missing, retract) ->
    Format.fprintf ppf "sync_fix ship %a retract %a" pp_entries missing pp_ids retract
  | Hint (target, kind, e) ->
    Format.fprintf ppf "hint for %d: %s %a" target (hint_kind_name kind) Entry.pp e
  | Digest_pull -> Format.pp_print_string ppf "digest_pull"
  | Repair_store e -> Format.fprintf ppf "repair_store %a" Entry.pp e

let pp_reply ppf = function
  | Ack -> Format.pp_print_string ppf "ack"
  | Entries entries -> Format.fprintf ppf "entries %a" pp_entries entries
  | Candidate None -> Format.pp_print_string ppf "candidate none"
  | Candidate (Some e) -> Format.fprintf ppf "candidate %a" Entry.pp e
  | Digest bits -> Format.fprintf ppf "digest %a" pp_ids (Bitset.to_list bits)
