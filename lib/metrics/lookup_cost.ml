open Plookup_util
open Plookup_store
module Service = Plookup.Service

type measurement = { mean_cost : float; ci95 : float; failure_rate : float }

let measure_into acc failures service ~t ~lookups =
  for _ = 1 to lookups do
    let result = Service.partial_lookup service t in
    Stats.Accum.add acc (float_of_int result.Plookup.Lookup_result.servers_contacted);
    if not (Plookup.Lookup_result.satisfied result) then incr failures
  done

let finish acc failures =
  let n = Stats.Accum.count acc in
  { mean_cost = Stats.Accum.mean acc;
    ci95 = Stats.Accum.ci95_half_width acc;
    failure_rate = (if n = 0 then 0. else float_of_int !failures /. float_of_int n) }

let measure service ~t ~lookups =
  let acc = Stats.Accum.create ()
  and failures = ref 0 in
  measure_into acc failures service ~t ~lookups;
  finish acc failures

(* The instance seeds are pre-drawn from the master stream in index
   order, so the sharded path consumes exactly the draws the sequential
   loop would.  ([Array.init]'s evaluation order is unspecified — use
   an explicit loop.) *)
let instance_seeds master runs =
  let seeds = Array.make runs 0 in
  for i = 0 to runs - 1 do
    seeds.(i) <- Int64.to_int (Rng.bits64 master) land max_int
  done;
  seeds

let measure_over_instances ?(seed = 0) ?obs ?(shards = 1) ~n ~entries ~config ~t ~runs
    ~lookups_per_run () =
  let master = Rng.create seed in
  let acc = Stats.Accum.create () in
  let failures = ref 0 in
  if shards <= 1 then
    for _ = 1 to runs do
      let run_seed = Int64.to_int (Rng.bits64 master) land max_int in
      let service = Service.create ~seed:run_seed ?obs ~n config in
      let gen = Entry.Gen.create () in
      Service.place service (Entry.Gen.batch gen entries);
      measure_into acc failures service ~t ~lookups:lookups_per_run
    done
  else begin
    (* Instance-space sharding with raw-sample replay: workers return
       the per-lookup costs verbatim and the Welford accumulation is
       replayed here in instance order, because [Stats.Accum.add] is
       floating-point order-sensitive — merging partial accumulators
       would not be byte-identical to the sequential loop. *)
    let outputs =
      Pool.map ~jobs:shards
        (fun run_seed ->
          let child = Option.map Plookup_obs.Obs.child obs in
          let service = Service.create ~seed:run_seed ?obs:child ~n config in
          let gen = Entry.Gen.create () in
          Service.place service (Entry.Gen.batch gen entries);
          let costs = Array.make lookups_per_run 0 in
          let fails = ref 0 in
          for k = 0 to lookups_per_run - 1 do
            let result = Service.partial_lookup service t in
            costs.(k) <- result.Plookup.Lookup_result.servers_contacted;
            if not (Plookup.Lookup_result.satisfied result) then incr fails
          done;
          (costs, !fails, child))
        (instance_seeds master runs)
    in
    Array.iter
      (fun (costs, fails, child) ->
        Array.iter (fun c -> Stats.Accum.add acc (float_of_int c)) costs;
        failures := !failures + fails;
        match (obs, child) with
        | Some parent, Some c -> Plookup_obs.Obs.merge parent c
        | _ -> ())
      outputs
  end;
  finish acc failures
