(** Hash-y (Sections 3.5, 5.5): entry [v] is stored at the servers
    [f_1(v) .. f_y(v)] given by [y] independent hash functions.

    Placement needs no coordination and — unlike Round-Robin — updates
    touch only the [<= y] servers the hash functions name: an add or
    delete costs one client message plus at most [y] point-to-point
    messages, no broadcast, no migration, no dedicated counters.  The
    trade-offs are uneven server loads (some lookups contact an extra
    server) and the inherent placement bias that caps its fairness
    (Fig. 9).

    The hash-function family is derived deterministically from the
    cluster seed, so placements are replayable. *)

open Plookup_store

type t

val create : Cluster.t -> y:int -> t
(** [y] must be at least 1. *)

val y : t -> int
val cluster : t -> Cluster.t

val servers_of : t -> Entry.t -> int list
(** The distinct servers [f_1(v) .. f_y(v)] (collisions deduplicated —
    "if two hash functions assign an entry to the same server, the entry
    is stored only once"). *)

val place : ?budget:int -> t -> Entry.t list -> unit
(** [budget] caps total stored copies (round-major: all of f_1 first),
    for the Fig. 6 coverage study. *)

val add : t -> Entry.t -> unit
val delete : t -> Entry.t -> unit
val partial_lookup : ?reachable:(int -> bool) -> t -> int -> Lookup_result.t
(** Random-order probing, like RandomServer-x. *)

val check_invariants : t -> placed:Entry.t list -> (unit, string) result
(** After a non-truncated place (and any adds/deletes folded into
    [placed]), every entry must live at exactly [servers_of] and nowhere
    else.  For tests. *)

module Strategy : Strategy_intf.S with type t = t
(** The packed form registered in {!Strategy_registry}. *)
