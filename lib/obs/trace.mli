(** Typed simulation tracing.

    A trace mints {!Span} ids and fans spans out to its sinks: a bounded
    in-memory ring it always owns (for quick dumps and tests) plus any
    attached extra sinks (e.g. a {!Sink.jsonl} file for
    [plookup trace --trace-out]).  A disabled trace drops events in
    O(1) — the hot paths check {!enabled} before building a payload.

    The ring is bounded, so long runs evict oldest spans — but never
    silently: {!dropped} counts what a full dump is missing (the seed
    repo's ring evicted silently, making truncated dumps look
    complete). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the retained ring (default 4096); older spans are
    evicted first and counted in {!dropped}.  Extra sinks see every
    span regardless of capacity.  Tracing starts disabled. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val capacity : t -> int

val add_sink : t -> Sink.t -> unit
(** Attach an extra sink; sinks fire in attachment order, after the
    ring. *)

val emit : t -> time:float -> ?cause:int -> Span.kind -> int
(** Record one span and return its id (for [cause] links on subsequent
    spans).  Returns 0 without recording when the trace is disabled. *)

val record : t -> time:float -> label:string -> string -> unit
(** Free-form annotation — emits a [Mark] span (the legacy string-record
    interface). *)

val spans : t -> Span.t list
(** The ring's contents, oldest first. *)

val length : t -> int
(** Spans currently retained in the ring. *)

val emitted : t -> int
(** Total spans ever emitted (including evicted and absorbed ones). *)

val dropped : t -> int
(** Spans missing from {!spans}: evicted from the ring, plus drops
    carried over by {!absorb}.  [emitted t = length t + dropped t]. *)

val clear : t -> unit
(** Empty the ring and reset the id, emitted and dropped counts (extra
    sinks are kept and not notified). *)

val absorb : t -> t -> unit
(** [absorb t child] re-emits the child's retained spans into [t] in
    order, remapping span ids (and their cause links) past [t]'s
    current id watermark, and adds the child's dropped count to [t]'s.
    This is how per-replicate traces merge deterministically into the
    experiment context's trace ({!Plookup_experiments.Runner}). *)

val flush : t -> unit
(** Flush every attached sink. *)

val dump : t -> string
(** Human-readable rendering of {!spans}, one line each
    ({!Span.pp}). *)
