(** Terminal line plots for experiment series.

    The paper's results are figures; the CLI renders its regenerated
    series as ASCII scatter/line charts so curve shapes (staircases,
    decays, crossovers) are visible without leaving the terminal.  Each
    series gets its own glyph; points landing on the same cell show the
    glyph of the first series plotted there. *)

type series = { label : string; points : (float * float) list }

val render :
  ?width:int -> ?height:int -> ?x_label:string -> ?y_label:string -> series list -> string
(** [render series] draws all series into one frame (default 64x16 plot
    cells, plus axes and a legend).  Axis ranges are the combined data
    bounds, padded when degenerate.  Series with no points are listed in
    the legend but draw nothing.  Raises [Invalid_argument] for
    non-positive dimensions or if every series is empty. *)

val of_table :
  ?width:int ->
  ?height:int ->
  x:string ->
  columns:string list ->
  Table.t ->
  (string, string) result
(** Plot the named numeric [columns] of a {!Table.t} against column [x].
    [Error] when a column is missing or contains non-numeric cells. *)
