(** Simulated message-passing network between [n] servers and external
    clients, with the paper's message-cost accounting.

    Section 6.4 defines the overhead model: "we count the total number of
    messages received and processed by all the servers... a broadcast has
    overhead cost n where n is the number of servers.  A point-to-point
    message has cost 1."  This module is the single place those counters
    live, so every strategy is measured identically.

    Delivery is synchronous: a send invokes the destination handler
    before returning, and an RPC returns the handler's reply.  This
    matches the paper's simulation (which measures message *counts*, not
    latencies).  An optional latency model routes deliveries through a
    {!Plookup_sim.Engine} instead, for latency-aware examples.

    Nodes can be failed and recovered; messages to a failed node are
    dropped (and counted as dropped, not received).

    Beyond binary up/down servers, a deterministic {e fault-injection}
    layer models lossy links: seeded per-link message loss, duplication
    and delay jitter ({!set_faults}), plus named network partitions
    ({!partition}) that cut client-to-server and server-to-server links.
    All fault decisions are drawn from per-link RNG streams derived from
    the fault seed, so a given seed always yields the identical
    drop/duplicate/jitter schedule. *)

type ('msg, 'reply) t

type sender =
  | Client  (** A request originating outside the server set. *)
  | Server of int

val create : ?metrics:Plookup_obs.Metrics.t -> n:int -> unit -> ('msg, 'reply) t
(** A network of [n] servers with no handlers installed.  [n] must be
    positive.

    Every counter below is a cell on [metrics] (default: a private
    registry), named [net.*]: per-server [net.messages.received]
    (labelled [server=i]), [net.messages.dropped]/[lost]/[blocked]/
    [duplicated], [net.broadcasts], [net.client_requests],
    [net.messages.repair], plus a [net.delivery.delay] histogram of
    engine-routed delivery delays.  Cells are private to this instance —
    the accessors report exactly this network's traffic even when many
    networks share one registry (a registry snapshot aggregates them). *)

val n : ('msg, 'reply) t -> int

val metrics : ('msg, 'reply) t -> Plookup_obs.Metrics.t
(** The registry this network's counters live on. *)

val set_planes :
  ('msg, 'reply) t -> names:string array -> classify:('msg -> int) -> unit
(** Install per-plane accounting: each delivered message is also counted
    on a [net.messages.received] cell labelled [plane=names.(classify
    msg)].  {!Plookup.Cluster} wires this to [Msg.plane_index]. *)

val set_trace :
  ('msg, 'reply) t ->
  Plookup_obs.Trace.t ->
  coder:('msg -> int) ->
  unit
(** Attach a trace: every server-bound transmission emits a [Send] span
    and its resolution a cause-linked [Recv] or [Drop]
    ({!Plookup_obs.Span}).  [coder msg] is the packed plane/msg code for
    the message, from {!Plookup_obs.Trace.intern_message} against this
    trace — precompute it per constructor at setup
    ({!Plookup.Msg.trace_coder}) so an event costs no string work.
    Whether the trace is disabled or on, the hot path allocates
    nothing. *)

val set_handler : ('msg, 'reply) t -> (int -> sender -> 'msg -> 'reply) -> unit
(** Install the message handler, called as [handler dst src msg].  All
    servers share one handler (they dispatch on [dst]); this mirrors the
    paper where every server runs the same strategy code. *)

val wrap_handler :
  ('msg, 'reply) t ->
  ((int -> sender -> 'msg -> 'reply) -> int -> sender -> 'msg -> 'reply) ->
  unit
(** Middleware: replace the installed handler with a wrapper around it —
    tracing, wire-encoding proxies, targeted fault injection.  Raises
    [Invalid_argument] if no handler is installed yet. *)

(** {1 Failure injection} *)

val fail : ('msg, 'reply) t -> int -> unit
val recover : ('msg, 'reply) t -> int -> unit

val set_status_listener : ('msg, 'reply) t -> (int -> up:bool -> unit) -> unit
(** Called on every fail/recover *transition* (not on no-op repeats).
    Strategies use this to react to membership changes — e.g. the
    replicated Round-Robin coordinator re-syncs a recovering replica.
    Replaces every previously installed listener, mirroring
    {!set_handler}; use {!add_status_listener} to stack another. *)

val add_status_listener : ('msg, 'reply) t -> (int -> up:bool -> unit) -> unit
(** Install an additional status listener; listeners fire in
    installation order.  The repair subsystem stacks its recovery-sync
    trigger on top of a strategy's own listener this way. *)

val set_drop_listener : ('msg, 'reply) t -> (src:sender -> dst:int -> 'msg -> unit) -> unit
(** Called whenever a transmission is dropped because its destination is
    down (not for link loss or partitions — those model the message
    vanishing in the network, where no one can observe it; a dead server
    is observable membership state the sender can react to).  One
    listener, last wins.  Hinted handoff hooks in here. *)

val is_up : ('msg, 'reply) t -> int -> bool
val up_servers : ('msg, 'reply) t -> int list

val up_count : ('msg, 'reply) t -> int
(** Number of up servers — O(1), maintained across fail/recover. *)

val kth_up : ('msg, 'reply) t -> int -> int
(** [kth_up t k] is the k-th smallest up server id (0-based) — the same
    element [List.nth (up_servers t) k] names, in O(log n).  Requires
    [0 <= k < up_count t]. *)

val up_servers_into : ('msg, 'reply) t -> int array -> int
(** Fill [buf] with the up server ids in ascending order and return how
    many there are — {!up_servers} without the list allocation.  [buf]
    must hold at least {!up_count} elements. *)

val fail_exactly : ('msg, 'reply) t -> int list -> unit
(** Recover everyone, then fail exactly the given servers. *)

(** {1 Stripe views}

    A contiguous partition of the server id space into near-equal
    stripes, each with its own up-server Fenwick mirror.  These exist
    for the domain-sharded simulation (see {!Plookup_sim.Shard} and
    DESIGN.md, "Parallelism"): a shard that owns stripe [s] can answer
    "how many of {e my} servers are up" and "pick the k-th up server of
    {e my} stripe" without touching the global Fenwick that events on
    other shards are concurrently updating through their own nets.
    Views are maintained incrementally by {!fail}/{!recover}. *)

val attach_stripe_views : ('msg, 'reply) t -> stripes:int -> unit
(** Partition [0 .. n-1] into [stripes] contiguous stripes whose sizes
    differ by at most one (the first [n mod stripes] stripes take the
    extra server) and build their up-view Fenwicks from the current up
    state.  [stripes > n] is legal and leaves the tail stripes empty —
    the oversubscribed [--shards] case.  Re-attaching replaces the
    previous views.  Raises [Invalid_argument] on [stripes < 1]. *)

val stripes : ('msg, 'reply) t -> int
(** Number of attached stripes; [0] when none are attached. *)

val stripe_of : ('msg, 'reply) t -> int -> int
(** Stripe owning server [i].  Raises if no views are attached. *)

val stripe_bounds : ('msg, 'reply) t -> int -> int * int
(** [stripe_bounds t s] is the global id interval [(lo, hi)] (half-open
    [\[lo, hi)]) covered by stripe [s]. *)

val stripe_up_count : ('msg, 'reply) t -> int -> int
(** Up servers inside stripe [s] — O(1). *)

val stripe_kth_up : ('msg, 'reply) t -> int -> int -> int
(** [stripe_kth_up t s k] is the {e global} id of the k-th smallest up
    server inside stripe [s].  Requires [0 <= k < stripe_up_count t s].
    O(log stripe size). *)

(** {1 Fault injection}

    Orthogonal to whole-server failures: faults act on individual
    message transmissions.  [loss] drops a transmission outright,
    [duplication] delivers it twice, and [jitter] adds an independent
    uniform [0, jitter) delay to each engine-routed delivery (the
    synchronous {!send}/{!broadcast} path has no clock, so jitter only
    affects {!post} and {!call_async}).  Every directed link (client or
    server X to server or client Y) draws from its own RNG stream seeded
    from [seed], so the fault schedule is a deterministic function of
    the seed and the per-link traffic sequence. *)

val set_faults :
  ('msg, 'reply) t ->
  seed:int ->
  ?loss:float ->
  ?duplication:float ->
  ?jitter:float ->
  unit ->
  unit
(** Install (and enable) the fault layer.  [loss] must be in [0, 1),
    [duplication] in [0, 1], [jitter] non-negative; all default to 0.
    Replaces any previous fault configuration and resets the per-link
    streams. *)

val clear_faults : ('msg, 'reply) t -> unit
(** Remove the fault layer entirely. *)

val set_faults_enabled : ('msg, 'reply) t -> bool -> unit
(** Toggle the installed fault layer mid-run without discarding its
    per-link RNG state.  No-op while no layer is installed. *)

val faults_enabled : ('msg, 'reply) t -> bool

(** {2 Server capacity and gray failure (overload model)}

    By default servers process messages instantly — the paper's
    infinitely-fast world.  Installing a {e capacity model} turns each
    server into a single-threaded queueing station: engine-routed
    deliveries ({!post}, {!call_async}) wait in the destination's
    bounded inbox and then hold the server for one service time before
    the handler runs, so delivery time becomes network latency +
    queueing + service.  When the inbox is full the server {e sheds}
    the request at arrival time: silently, or — when a [nack] reply is
    configured — by answering immediately with it at zero service cost
    (the fast [Busy] nack of {!Plookup.Msg.reply}).

    The model also expresses {e gray failure}: {!set_degraded}
    multiplies one server's service time (10–100x models a server that
    is alive but crawling — the failure mode binary up/down cannot
    express and retry logic handles worst).

    The synchronous {!send}/{!broadcast} path has no clock and is
    unaffected, exactly like jitter.  Registry cells: a per-server
    [net.queue.depth] gauge holding the high-water inbox occupancy and
    a [net.messages.shed] counter.  Shed requests are not counted as
    received (they were never processed) and do not reach the drop
    listener (the server is alive — hinting would be wrong). *)

val set_capacity :
  ('msg, 'reply) t -> service_rate:float -> queue_limit:int -> ?nack:'reply -> unit -> unit
(** Install (or replace) the capacity model: every server serves
    [service_rate] messages per time unit ([> 0]) and queues at most
    [queue_limit] ([>= 1]) requests (waiting + in service).  [nack]
    chooses the shed behaviour: [Some reply] answers a full-queue
    arrival with that reply instantly; [None] (default) drops it
    silently, indistinguishable from loss to the client. *)

val clear_capacity : ('msg, 'reply) t -> unit
val has_capacity : ('msg, 'reply) t -> bool

val set_degraded : ('msg, 'reply) t -> int -> factor:float -> unit
(** Gray-fail one server: multiply its service time by [factor]
    ([>= 1]; [1.0] restores full health).  Requires an installed
    capacity model ([Invalid_argument] otherwise — without one there is
    no service time to stretch). *)

val degraded_factor : ('msg, 'reply) t -> int -> float
(** Current multiplier (1.0 when healthy or no capacity model). *)

val queue_depth : ('msg, 'reply) t -> int -> int
(** Current inbox occupancy (0 without a capacity model). *)

val messages_shed : ('msg, 'reply) t -> int
(** Requests rejected by a full inbox (dropped or nacked). *)

(** {2 Partitions}

    A named partition splits the world into two sides, [a] and [b];
    transmissions crossing the cut are silently dropped (and counted as
    blocked).  Servers listed on neither side are unaffected.  Clients
    collectively sit on side [clients] (default [`A]).  Partitions
    compose: a link is cut if {e any} active partition cuts it.  They
    act regardless of {!set_faults_enabled}, and are independent of
    server up/down state. *)

val partition :
  ('msg, 'reply) t ->
  name:string ->
  ?clients:[ `A | `B ] ->
  a:int list ->
  b:int list ->
  unit ->
  unit
(** Install or replace the partition called [name].  A server may not
    appear on both sides. *)

val heal : ('msg, 'reply) t -> name:string -> unit
(** Remove one named partition (no-op if absent). *)

val heal_all : ('msg, 'reply) t -> unit

val partitions : ('msg, 'reply) t -> string list
(** Names of the active partitions, oldest first. *)

val reachable : ('msg, 'reply) t -> src:sender -> dst:int -> bool
(** Whether a transmission [src -> dst] would cross any active
    partition ([true] = no cut; ignores up/down state and loss). *)

(** {1 Messaging} *)

val send : ('msg, 'reply) t -> src:sender -> dst:int -> 'msg -> 'reply option
(** Point-to-point.  [None] if [dst] is down (message dropped), the link
    is partitioned (blocked) or the fault layer loses the request;
    otherwise the handler's reply.  Counts 1 received message per
    delivery (2 when duplication fires — the duplicate is processed and
    its reply discarded, as a datagram server would). *)

val broadcast : ('msg, 'reply) t -> src:sender -> 'msg -> (int * 'reply) list
(** Deliver to every *up* server, in server order (including the sender
    if it is an up server — the paper charges broadcasts n messages).
    Counts one received message per delivery and one broadcast. *)

(** {1 Accounting} *)

val messages_received : ('msg, 'reply) t -> int
(** Total messages received and processed by servers — the paper's
    overhead-cost metric. *)

val messages_received_by : ('msg, 'reply) t -> int -> int

val messages_dropped : ('msg, 'reply) t -> int
(** Transmissions that reached a {e down} server. *)

val messages_lost : ('msg, 'reply) t -> int
(** Transmissions dropped by injected link loss. *)

val messages_blocked : ('msg, 'reply) t -> int
(** Transmissions cut by an active partition. *)

val duplicates_delivered : ('msg, 'reply) t -> int
(** Extra copies delivered by injected duplication. *)

val broadcasts : ('msg, 'reply) t -> int
val client_requests : ('msg, 'reply) t -> int
(** Messages whose sender was {!Client}. *)

val repair_messages : ('msg, 'reply) t -> int
(** The subset of {!messages_received} delivered inside
    {!tally_as_repair} — repair-subsystem overhead, reported separately
    from the lookup/update message cost. *)

val tally_as_repair : ('msg, 'reply) t -> (unit -> 'a) -> 'a
(** [tally_as_repair t f] runs [f]; every message received during it
    (including nested handler-triggered sends) is additionally counted
    in {!repair_messages}.  Nests and restores the previous tally state
    on exit. *)

val reset_counters : ('msg, 'reply) t -> unit

(** {1 Latency-aware delivery (optional)} *)

val attach_engine :
  ('msg, 'reply) t -> Plookup_sim.Engine.t -> latency:(src:sender -> dst:int -> float) -> unit
(** After attaching, {!post} delivers through the engine with the given
    per-hop latency.  [send] and [broadcast] stay synchronous (RPC-style)
    regardless. *)

val now : ('msg, 'reply) t -> float
(** The attached engine's clock, 0 without one — the timestamp the
    network's own trace spans carry. *)

val post : ('msg, 'reply) t -> src:sender -> dst:int -> 'msg -> unit
(** Fire-and-forget delivery.  With an engine attached the handler runs
    at [now + latency]; liveness of [dst] is checked at delivery time.
    Without an engine this is [send] with the reply ignored. *)

val call_async :
  ('msg, 'reply) t ->
  Plookup_sim.Engine.t ->
  latency:(src:sender -> dst:int -> float) ->
  src:sender ->
  dst:int ->
  'msg ->
  ('reply -> unit) ->
  unit
(** Full asynchronous round trip: the request is delivered at
    [now + latency], handled there, and the reply callback fires another
    latency later (each direction draws its own latency).  If [dst] is
    down at delivery time the request is lost and the callback never
    fires — callers implement their own timeouts, exactly like a real
    datagram client.  The fault layer applies independently to each
    direction: a lost or partition-blocked request (or reply) silences
    the callback, jitter stretches either hop, and duplication can make
    the callback fire more than once per call — callers must tolerate
    duplicate replies.  Message accounting matches {!send}. *)

val pp_sender : Format.formatter -> sender -> unit
