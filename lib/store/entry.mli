(** Entry identity.

    The paper's service maps one key to a set of entries {v1..vh}; an
    entry is opaque (an IP address, a URL, a file location...).  For the
    reproduction an entry carries a dense integer id — which the metrics
    layer exploits for bitset snapshots — plus an optional human-readable
    payload used by the examples. *)

type t

val id : t -> int
val payload : t -> string option

val v : ?payload:string -> int -> t
(** [v id] makes an entry with a given id.  Ids are the identity: two
    entries with equal ids are equal regardless of payload. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Gen : sig
  type entry := t
  type t
  (** A fresh-id source.  The workload generator owns one so entry ids
      are dense and increase with creation time. *)

  val create : unit -> t
  val fresh : ?payload:string -> t -> entry
  val next_id : t -> int
  (** The id {!fresh} would assign next — also an upper bound on all ids
      handed out so far, usable as a bitset capacity. *)

  val batch : t -> int -> entry list
  (** [batch g h] is [h] fresh entries. *)
end

module Set : Stdlib.Set.S with type elt = t
module Map : Stdlib.Map.S with type key = t

val dedup : t list -> t list
(** Order-preserving removal of duplicate entries. *)
